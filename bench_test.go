// Benchmarks regenerating every figure and quantitative claim of the
// paper (one per experiment; see DESIGN.md §4 and EXPERIMENTS.md), plus
// microbenchmarks of the substrate. Each experiment benchmark runs its
// full workload in virtual time and reports headline results as custom
// metrics, so `go test -bench=.` reproduces the paper end to end.
package necro

import (
	"testing"

	"repro/internal/experiments"
)

// benchExperiment runs one experiment per iteration, reporting virtual
// results through b.Log on the first iteration.
func benchExperiment(b *testing.B, run func(experiments.Scale) (*experiments.Result, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := run(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.String())
		}
	}
}

// BenchmarkE1Figure1 regenerates Figure 1 (channel-bound reads vs
// chip-bound writes).
func BenchmarkE1Figure1(b *testing.B) { benchExperiment(b, experiments.E1Figure1) }

// BenchmarkE2GCInterference regenerates the Figure 2 claim: GC traffic
// interferes with host I/O.
func BenchmarkE2GCInterference(b *testing.B) { benchExperiment(b, experiments.E2GCInterference) }

// BenchmarkE3ChipVsSSD regenerates Myth 1 (SSD ≠ chip).
func BenchmarkE3ChipVsSSD(b *testing.B) { benchExperiment(b, experiments.E3ChipVsSSD) }

// BenchmarkE4BimodalMistake regenerates Myth 1b (host-pinned placement
// forfeits scheduling freedom).
func BenchmarkE4BimodalMistake(b *testing.B) { benchExperiment(b, experiments.E4Bimodal) }

// BenchmarkE5RandVsSeqWrites regenerates Myth 2 (random vs sequential
// writes across device generations).
func BenchmarkE5RandVsSeqWrites(b *testing.B) { benchExperiment(b, experiments.E5RandVsSeqWrites) }

// BenchmarkE6WriteAmplification regenerates Myth 2b (random writes raise
// GC write amplification).
func BenchmarkE6WriteAmplification(b *testing.B) {
	benchExperiment(b, experiments.E6WriteAmplification)
}

// BenchmarkE7ReadTailLatency regenerates Myth 3 (reads stall behind
// erases; writes hide in the cache).
func BenchmarkE7ReadTailLatency(b *testing.B) { benchExperiment(b, experiments.E7ReadTailLatency) }

// BenchmarkE8ReadVsWriteParallelism regenerates Myth 3b (reads inherit
// placement, writes choose it).
func BenchmarkE8ReadVsWriteParallelism(b *testing.B) {
	benchExperiment(b, experiments.E8ReadVsWriteParallelism)
}

// BenchmarkE9ChannelChipScaling regenerates Myth 3c (reads scale with
// channels, writes with chips).
func BenchmarkE9ChannelChipScaling(b *testing.B) {
	benchExperiment(b, experiments.E9ChannelChipScaling)
}

// BenchmarkE10CommitLatency regenerates §3.1 (sync to PCM, async to
// flash).
func BenchmarkE10CommitLatency(b *testing.B) { benchExperiment(b, experiments.E10CommitLatency) }

// BenchmarkE11Codesign regenerates §3.2 (nameless writes, trim, atomic
// writes).
func BenchmarkE11Codesign(b *testing.B) { benchExperiment(b, experiments.E11Codesign) }

// BenchmarkE12StackOverhead regenerates §3.3 (the stack binds at SSD
// latencies).
func BenchmarkE12StackOverhead(b *testing.B) { benchExperiment(b, experiments.E12StackOverhead) }

// BenchmarkE13PCMSSD regenerates §2.4 (PCM doesn't dissolve the device
// problem).
func BenchmarkE13PCMSSD(b *testing.B) { benchExperiment(b, experiments.E13PCMSSD) }

// BenchmarkE14UFLIP regenerates the uFLIP characterization matrix.
func BenchmarkE14UFLIP(b *testing.B) { benchExperiment(b, experiments.E14UFLIP) }

// BenchmarkE15TenantIsolation measures multi-tenant isolation under the
// sched arbiter versus FIFO across the three stacks.
func BenchmarkE15TenantIsolation(b *testing.B) {
	benchExperiment(b, experiments.E15TenantIsolation)
}

// BenchmarkE16ServingFabric measures the sharded KV serving fabric with
// and without shard-boundary admission control under overload.
func BenchmarkE16ServingFabric(b *testing.B) {
	benchExperiment(b, experiments.E16ServingFabric)
}

// BenchmarkE17GCCoordination measures host→device GC coordination (the
// fabric leasing GC deferrals from its devices) off versus on.
func BenchmarkE17GCCoordination(b *testing.B) {
	benchExperiment(b, experiments.E17GCCoordination)
}

// BenchmarkE18AdaptiveControlPlane measures the adaptive control plane
// (observed-service-time feedback: cost calibration, adaptive
// deadlines, SLO autoscaling, urgency-sized GC leases) against the
// static constants on devices that age mid-run.
func BenchmarkE18AdaptiveControlPlane(b *testing.B) {
	benchExperiment(b, experiments.E18AdaptiveControlPlane)
}

// BenchmarkE19ReplicatedPlacement measures replica placement: GC-steered
// replicated reads against single placement on aged devices, plus a
// drift-triggered live shard migration under load.
func BenchmarkE19ReplicatedPlacement(b *testing.B) {
	benchExperiment(b, experiments.E19ReplicatedPlacement)
}

// BenchmarkE20Observability measures the tracing spine: per-request
// spans threaded through every layer, span-vs-client closure, stage
// attribution of the p99 and the tracing-overhead check.
func BenchmarkE20Observability(b *testing.B) {
	benchExperiment(b, experiments.E20Observability)
}

// BenchmarkE21ContinuousMonitoring measures the continuous-telemetry
// layer: drift detection latency from sampled series, false-alert
// immunity on unaged baselines, and the zero-serving-cost check.
func BenchmarkE21ContinuousMonitoring(b *testing.B) {
	benchExperiment(b, experiments.E21ContinuousMonitoring)
}

// BenchmarkE22DeviceDeath measures the failure domain: a device killed
// at half-window under full load, groups degrading to their survivors,
// and the rebuild onto the spare — scored on lost acked writes (zero),
// time to re-replication and degraded-window p99.
func BenchmarkE22DeviceDeath(b *testing.B) {
	benchExperiment(b, experiments.E22DeviceDeath)
}

// BenchmarkE23Throughput measures the hot-path overhaul: the batched
// submission/completion rings and multi-op group commit against the
// per-request path, scored on saturated ops/sec and CPU ns per op.
func BenchmarkE23Throughput(b *testing.B) {
	benchExperiment(b, experiments.E23Throughput)
}

// BenchmarkE24ResourceProfile measures the resource profiler over the
// saturation sweep: exact per-resource busy-time attribution at zero
// virtual-time overhead, scored on closure and the bottleneck shift.
func BenchmarkE24ResourceProfile(b *testing.B) {
	benchExperiment(b, experiments.E24ResourceProfile)
}

// ---- substrate microbenchmarks (real wall-clock cost of the simulator) ----

// BenchmarkSimulatedPageWrite measures simulator throughput for the full
// write path (host link -> FTL -> channel -> chip).
func BenchmarkSimulatedPageWrite(b *testing.B) {
	eng := NewEngine()
	dev, err := BuildDevice(eng, Enterprise2012, DeviceOptions{Channels: 2, ChipsPerChannel: 2, BlocksPerPlane: 64})
	if err != nil {
		b.Fatal(err)
	}
	span := dev.Capacity()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dev.Write(int64(i)%span, nil, func(error) {})
		if i%256 == 255 {
			eng.Run()
		}
	}
	eng.Run()
}

// BenchmarkSimulatedPageRead measures the read path.
func BenchmarkSimulatedPageRead(b *testing.B) {
	eng := NewEngine()
	dev, err := BuildDevice(eng, Enterprise2012, DeviceOptions{Channels: 2, ChipsPerChannel: 2, BlocksPerPlane: 64})
	if err != nil {
		b.Fatal(err)
	}
	span := dev.Capacity()
	for l := int64(0); l < span; l++ {
		dev.Write(l, nil, func(error) {})
	}
	eng.Run()
	rng := NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dev.Read(rng.Int63n(span), func([]byte, error) {})
		if i%256 == 255 {
			eng.Run()
		}
	}
	eng.Run()
}

// BenchmarkKVCommitProgressive measures engine commit cost over the
// progressive stack (PCM log).
func BenchmarkKVCommitProgressive(b *testing.B) {
	benchKVCommit(b, true)
}

// BenchmarkKVCommitConservative measures engine commit cost over the
// conservative stack (block-device log).
func BenchmarkKVCommitConservative(b *testing.B) {
	benchKVCommit(b, false)
}

func benchKVCommit(b *testing.B, progressive bool) {
	eng := NewEngine()
	var sys *KVSystem
	eng.Go(func(p *Proc) {
		d, err := BuildDevice(eng, Enterprise2012, DeviceOptions{Channels: 2, ChipsPerChannel: 2, BlocksPerPlane: 128})
		if err != nil {
			b.Error(err)
			return
		}
		flash := d.(*FlashDevice)
		if progressive {
			mb, err := NewMemBus(eng, "pcm", DefaultPCMConfig())
			if err != nil {
				b.Error(err)
				return
			}
			sys, err = BuildProgressiveKV(p, eng, flash, mb, 1<<22, 2, KVConfig{CheckpointBytes: 1 << 20})
			if err != nil {
				b.Error(err)
			}
		} else {
			var err error
			sys, err = BuildConservativeKV(p, eng, flash, 256, 2, KVConfig{CheckpointBytes: 1 << 20})
			if err != nil {
				b.Error(err)
			}
		}
	})
	eng.Run()
	if sys == nil {
		b.Fatal("setup failed")
	}
	b.ResetTimer()
	eng.Go(func(p *Proc) {
		for i := 0; i < b.N; i++ {
			tx := sys.Store.Begin()
			tx.Put([]byte("bench-key"), []byte("bench-value"))
			if err := tx.Commit(p); err != nil {
				b.Error(err)
				return
			}
		}
	})
	eng.Run()
}
