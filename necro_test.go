package necro

import (
	"bytes"
	"fmt"
	"testing"
)

// TestPublicAPIDeviceRoundTrip exercises the facade end to end: build a
// preset device, write, read, inspect metrics.
func TestPublicAPIDeviceRoundTrip(t *testing.T) {
	eng := NewEngine()
	dev, err := BuildDevice(eng, Enterprise2012, DeviceOptions{
		Channels: 1, ChipsPerChannel: 2, BlocksPerPlane: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, dev.PageSize())
	copy(payload, "hello")
	dev.Write(7, payload, func(err error) {
		if err != nil {
			t.Errorf("write: %v", err)
		}
	})
	eng.Run()
	var got []byte
	dev.Read(7, func(d []byte, err error) {
		if err != nil {
			t.Errorf("read: %v", err)
		}
		got = d
	})
	eng.Run()
	if !bytes.HasPrefix(got, []byte("hello")) {
		t.Fatal("round trip failed through public API")
	}
	if dev.Metrics().Writes.Ops != 1 {
		t.Fatal("metrics not visible through public API")
	}
}

// TestPublicAPIAllPresetsBuild ensures every exported preset builds.
func TestPublicAPIAllPresetsBuild(t *testing.T) {
	for _, p := range []DevicePreset{Consumer2008, Enterprise2012, Enterprise2012Unbuffered, DFTL2012, PCM2012} {
		eng := NewEngine()
		if _, err := BuildDevice(eng, p, DeviceOptions{Channels: 1, ChipsPerChannel: 1, BlocksPerPlane: 32}); err != nil {
			t.Errorf("BuildDevice(%v): %v", p, err)
		}
	}
}

// TestPublicAPIKVAcrossBothStacks runs the engine through the facade on
// both assemblies and crashes it.
func TestPublicAPIKVAcrossBothStacks(t *testing.T) {
	for _, progressive := range []bool{false, true} {
		progressive := progressive
		t.Run(fmt.Sprintf("progressive=%v", progressive), func(t *testing.T) {
			eng := NewEngine()
			eng.Go(func(p *Proc) {
				d, err := BuildDevice(eng, Enterprise2012, DeviceOptions{
					Channels: 1, ChipsPerChannel: 2, BlocksPerPlane: 64,
				})
				if err != nil {
					t.Error(err)
					return
				}
				flash := d.(*FlashDevice)
				var sys *KVSystem
				if progressive {
					mb, err := NewMemBus(eng, "pcm", DefaultPCMConfig())
					if err != nil {
						t.Error(err)
						return
					}
					sys, err = BuildProgressiveKV(p, eng, flash, mb, 1<<20, 1, KVConfig{})
					if err != nil {
						t.Error(err)
						return
					}
				} else {
					var err error
					sys, err = BuildConservativeKV(p, eng, flash, 64, 1, KVConfig{})
					if err != nil {
						t.Error(err)
						return
					}
				}
				tx := sys.Store.Begin()
				tx.Put([]byte("k"), []byte("v"))
				if err := tx.Commit(p); err != nil {
					t.Errorf("commit: %v", err)
					return
				}
				fresh, _, err := sys.Crash(p)
				if err != nil {
					t.Errorf("crash: %v", err)
					return
				}
				got, err := fresh.Store.Get(p, []byte("k"))
				if err != nil || string(got) != "v" {
					t.Errorf("after crash: %q %v", got, err)
				}
			})
			eng.Run()
		})
	}
}

// TestPublicAPIStackModes drives the three stack modes via the facade.
func TestPublicAPIStackModes(t *testing.T) {
	for _, mode := range []StackMode{SingleQueue, MultiQueue, DirectAccess} {
		eng := NewEngine()
		dev, err := BuildDevice(eng, PCM2012, DeviceOptions{Channels: 2})
		if err != nil {
			t.Fatal(err)
		}
		stack, err := NewStack(eng, dev, DefaultStackConfig(mode))
		if err != nil {
			t.Fatal(err)
		}
		ok := false
		eng.Go(func(p *Proc) {
			if err := stack.WriteSync(p, 0, 1, nil); err != nil {
				t.Errorf("%v write: %v", mode, err)
				return
			}
			if _, err := stack.ReadSync(p, 0, 1); err != nil {
				t.Errorf("%v read: %v", mode, err)
				return
			}
			ok = true
		})
		eng.Run()
		if !ok {
			t.Fatalf("mode %v did not complete", mode)
		}
	}
}

// TestPublicAPIWorkloadsAndExperiments sanity-checks the remaining
// exports.
func TestPublicAPIWorkloadsAndExperiments(t *testing.T) {
	g, err := NewWorkload(RW, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a := g.Next(); a.LPN < 0 || a.LPN >= 100 {
		t.Fatal("workload out of range")
	}
	if len(Experiments()) != 24 {
		t.Fatalf("Experiments() = %d entries, want 24", len(Experiments()))
	}
	rng := NewRNG(1)
	if rng.Intn(10) < 0 {
		t.Fatal("rng broken")
	}
	if Quick == Full {
		t.Fatal("scales must differ")
	}
	plan := RandomFaultPlan(7, FaultPlanConfig{Devices: 2, Injections: 3, MaxKills: 1})
	if len(plan) != 3 {
		t.Fatalf("fault plan has %d injections, want 3", len(plan))
	}
	if FaultKillDevice.String() != "kill-device" {
		t.Fatalf("fault kind name = %q", FaultKillDevice.String())
	}
}

// TestPublicAPIProgressiveStoreObjects exercises nameless objects via
// the facade.
func TestPublicAPIProgressiveStoreObjects(t *testing.T) {
	eng := NewEngine()
	d, err := BuildDevice(eng, Enterprise2012, DeviceOptions{Channels: 1, ChipsPerChannel: 2, BlocksPerPlane: 32})
	if err != nil {
		t.Fatal(err)
	}
	flash := d.(*FlashDevice)
	mb, err := NewMemBus(eng, "pcm", DefaultPCMConfig())
	if err != nil {
		t.Fatal(err)
	}
	store, err := NewProgressiveStore(eng, mb, 1<<20, flash, 1)
	if err != nil {
		t.Fatal(err)
	}
	if store.Objects == nil {
		t.Fatal("progressive store lacks objects")
	}
	eng.Go(func(p *Proc) {
		data := make([]byte, flash.PageSize())
		data[0] = 0x5C
		tok, err := store.Objects.Put(p, data)
		if err != nil {
			t.Errorf("put: %v", err)
			return
		}
		got, err := store.Objects.Get(p, tok)
		if err != nil || got[0] != 0x5C {
			t.Errorf("get: %v %v", got, err)
		}
		if _, err := store.Log.Append(p, []byte("rec")); err != nil {
			t.Errorf("log: %v", err)
		}
		if err := store.Log.Sync(p); err != nil {
			t.Errorf("sync: %v", err)
		}
	})
	eng.Run()
}
