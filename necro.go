// Package necro is the public API of this reproduction of "The
// Necessary Death of the Block Device Interface" (Bjørling, Bonnet,
// Bouganim, Dayan — CIDR 2013).
//
// It re-exports the stable surface of the internal packages:
//
//   - a deterministic discrete-event simulation kernel (Engine, Proc);
//   - simulated storage hardware: NAND flash arrays behind four FTL
//     generations, PCM on the memory bus, and assembled SSD presets
//     spanning 2008-2012;
//   - the OS block layer in single-queue, multi-queue and direct forms;
//   - the paper's proposed post-block-device interface: sync/async
//     separation, nameless writes, trim, atomic writes (package core);
//   - a transactional KV storage engine that runs over both the
//     conservative and the progressive stack;
//   - a multi-tenant I/O scheduler (weighted fair queueing, rate caps,
//     GC-aware deferral fed by device notifications) on the
//     submission path;
//   - a replica placement layer over the fabric: quorum writes,
//     GC-steered reads, drift-triggered live shard migration;
//   - an observability spine: per-request trace spans stamped by every
//     layer, tail-sampled flight recording, a unified telemetry
//     registry, a time-series sampler with an SLO burn-rate and drift
//     health engine, and live HTTP exposition (package obs);
//   - a deterministic seeded fault-injection harness (package faults):
//     kill, stall or slow a device or single chip at exact virtual
//     times, with device death degrading and repairing replica groups;
//   - the experiment suite E1-E23: E1-E14 regenerate every figure and
//     quantitative claim in the paper, E15-E23 grow the served system.
//
// Quick start:
//
//	eng := necro.NewEngine()
//	dev, _ := necro.BuildDevice(eng, necro.Enterprise2012, necro.DeviceOptions{})
//	dev.Write(0, nil, func(err error) { fmt.Println("written", err) })
//	eng.Run()
//
// See examples/ for complete programs and DESIGN.md for the system map.
package necro

import (
	"repro/internal/blockdev"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/ftl"
	"repro/internal/kvstore"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/pcm"
	"repro/internal/place"
	"repro/internal/sched"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/ssd"
	"repro/internal/workload"
)

// Simulation kernel.
type (
	// Engine is the deterministic discrete-event simulator every model
	// runs on.
	Engine = sim.Engine
	// Proc is a simulated process (blocking-style client code).
	Proc = sim.Proc
	// Time is virtual time in nanoseconds.
	Time = sim.Time
	// RNG is the deterministic random source.
	RNG = sim.RNG
	// Server is an exclusive FIFO resource on the virtual clock (a
	// chip LUN, a channel, a CPU); the resource profiler taps its
	// reservations.
	Server = sim.Server
)

// Common durations.
const (
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// NewEngine returns a fresh simulation engine at time zero.
func NewEngine() *Engine { return sim.NewEngine() }

// NewRNG returns a seeded deterministic random source.
func NewRNG(seed uint64) *RNG { return sim.NewRNG(seed) }

// NewServer returns a named exclusive FIFO resource on eng's clock.
func NewServer(eng *Engine, name string) *Server { return sim.NewServer(eng, name) }

// Devices.
type (
	// Device is the host-visible contract of a simulated SSD.
	Device = ssd.Dev
	// FlashDevice is a flash SSD with the extended (§3) command set.
	FlashDevice = ssd.Device
	// PCMSSD is a PCM SSD behind the block interface.
	PCMSSD = ssd.PCMSSD
	// DeviceOptions scales a preset.
	DeviceOptions = ssd.Options
	// DevicePreset selects a device generation.
	DevicePreset = ssd.Preset
	// MemBus is PCM attached to the memory bus (store + persist).
	MemBus = pcm.MemBus
	// PCMConfig parameterizes a PCM part.
	PCMConfig = pcm.Config
)

// Device presets.
const (
	// Consumer2008 is the pre-2009 hybrid-FTL device (Myth 2 era).
	Consumer2008 = ssd.Consumer2008
	// Enterprise2012 is the page-mapped, battery-buffered device.
	Enterprise2012 = ssd.Enterprise2012
	// Enterprise2012Unbuffered isolates the write buffer's effect.
	Enterprise2012Unbuffered = ssd.Enterprise2012Unbuffered
	// DFTL2012 uses a demand-paged mapping cache.
	DFTL2012 = ssd.DFTL2012
	// PCM2012 is an Onyx-style PCM SSD.
	PCM2012 = ssd.PCM2012
)

// BuildDevice constructs a preset device on eng.
func BuildDevice(eng *Engine, p DevicePreset, opt DeviceOptions) (Device, error) {
	return ssd.Build(eng, p, opt)
}

// NewMemBus attaches a PCM part to the memory bus.
func NewMemBus(eng *Engine, name string, cfg PCMConfig) (*MemBus, error) {
	dev, err := pcm.New(eng, name, cfg)
	if err != nil {
		return nil, err
	}
	return pcm.NewMemBus(eng, dev), nil
}

// DefaultPCMConfig returns the 2012-flavoured PCM parameterization.
func DefaultPCMConfig() PCMConfig { return pcm.DefaultConfig() }

// The I/O stack.
type (
	// Stack is one configured OS I/O path to a device.
	Stack = blockdev.Stack
	// StackConfig parameterizes the stack.
	StackConfig = blockdev.Config
	// StackMode selects single-queue, multi-queue or direct submission.
	StackMode = blockdev.Mode
)

// Stack modes.
const (
	// SingleQueue is the classic shared-lock block layer.
	SingleQueue = blockdev.SingleQueue
	// MultiQueue is the blk-mq-style per-core design.
	MultiQueue = blockdev.MultiQueue
	// DirectAccess bypasses the block layer entirely.
	DirectAccess = blockdev.Direct
)

// NewStack builds an I/O stack over dev.
func NewStack(eng *Engine, dev Device, cfg StackConfig) (*Stack, error) {
	return blockdev.New(eng, dev, cfg)
}

// DefaultStackConfig mirrors a 2012 Linux stack.
func DefaultStackConfig(mode StackMode) StackConfig { return blockdev.DefaultConfig(mode) }

// Multi-tenant scheduling (package sched).
type (
	// Scheduler arbitrates tenant-tagged requests on the submission
	// path (weighted fair queueing, rate caps, GC-aware deferral).
	Scheduler = sched.Scheduler
	// SchedulerConfig parameterizes a Scheduler.
	SchedulerConfig = sched.Config
	// Tenant is one registered traffic source.
	Tenant = sched.Tenant
	// TenantClass separates latency-sensitive from throughput tenants.
	TenantClass = sched.Class
	// GCControl is the host→device GC shaping surface a scheduler uses
	// to park background collection during latency bursts (the other
	// half of the peer interface; ssd devices implement it).
	GCControl = sched.GCControl
	// SchedItem is one request of a batched enqueue
	// (Scheduler.EnqueueBatch): cost, trace span and dispatch closure.
	SchedItem = sched.Item
)

// Tenant classes.
const (
	// LatencySensitive tenants are protected by fair queueing and the
	// GC-aware policy.
	LatencySensitive = sched.LatencySensitive
	// Throughput tenants tolerate deferral for aggregate bandwidth.
	Throughput = sched.Throughput
)

// NewScheduler builds a multi-tenant scheduler on eng; attach it with
// Stack.AttachScheduler and tag requests with tenants from AddTenant.
func NewScheduler(eng *Engine, cfg SchedulerConfig) *Scheduler { return sched.New(eng, cfg) }

// DefaultSchedulerConfig returns the standard arbitration parameters.
func DefaultSchedulerConfig() SchedulerConfig { return sched.DefaultConfig() }

// The paper's interface (package core).
type (
	// Store is the assembled storage interface (sync log + async pages
	// + nameless objects).
	Store = core.Store
	// ObjectStore is the nameless-write object interface.
	ObjectStore = core.ObjectStore
	// Token is a host handle for a nameless object.
	Token = core.Token
	// PPA is a device physical page address.
	PPA = ftl.PPA
)

// NewProgressiveStore assembles the paper's proposed stack.
func NewProgressiveStore(eng *Engine, membus *MemBus, logBytes int64, flash *FlashDevice, cpus int) (*Store, error) {
	return core.NewProgressive(eng, membus, logBytes, flash, cpus)
}

// NewConservativeStore assembles the classic stack.
func NewConservativeStore(eng *Engine, flash Device, logPages int64, cpus int) (*Store, error) {
	return core.NewConservative(eng, flash, logPages, cpus)
}

// The storage engine.
type (
	// KV is the transactional key-value storage engine.
	KV = kvstore.Store
	// KVTxn is one transaction.
	KVTxn = kvstore.Txn
	// KVConfig tunes the engine.
	KVConfig = kvstore.Config
	// KVSystem bundles an engine with its devices for crash testing.
	KVSystem = kvstore.System
	// KVBatchOp is one operation of a multi-op group commit
	// (KV.ApplyBatch): N puts/deletes, one WAL sync.
	KVBatchOp = kvstore.BatchOp
)

// BuildConservativeKV assembles the engine over the conservative stack.
func BuildConservativeKV(p *Proc, eng *Engine, flash Device, logPages int64, cpus int, cfg KVConfig) (*KVSystem, error) {
	return kvstore.BuildConservative(p, eng, flash, logPages, cpus, cfg)
}

// BuildProgressiveKV assembles the engine over the progressive stack.
func BuildProgressiveKV(p *Proc, eng *Engine, flash *FlashDevice, membus *MemBus, logBytes int64, cpus int, cfg KVConfig) (*KVSystem, error) {
	return kvstore.BuildProgressive(p, eng, flash, membus, logBytes, cpus, cfg)
}

// The serving fabric (package serve).
type (
	// Fabric is the sharded multi-tenant KV serving fabric: N KV shards
	// multiplexed over shared devices, each its own scheduler tenant,
	// behind shard-boundary admission control.
	Fabric = serve.Fabric
	// FabricConfig parameterizes a Fabric.
	FabricConfig = serve.Config
	// FabricShard is one KV slice of the fabric.
	FabricShard = serve.Shard
	// Frontend hash-routes keys to shards and drives client mixes.
	Frontend = serve.Frontend
	// AdmissionConfig bounds per-shard queues, rates and deadlines.
	AdmissionConfig = serve.AdmissionConfig
	// FabricBatchConfig turns on the ring serving path: batched shard
	// drains, multi-op group commits and batched device submission.
	FabricBatchConfig = serve.BatchConfig
	// ShardStats is the per-shard admission/serving ledger.
	ShardStats = metrics.ShardStats
)

// NewFabric assembles a serving fabric; call from a simulated process.
func NewFabric(p *Proc, eng *Engine, cfg FabricConfig) (*Fabric, error) {
	return serve.New(p, eng, cfg)
}

// NewFrontend builds a client frontend over fab with the given key
// space and value size.
func NewFrontend(fab *Fabric, keys int64, valueSize int) *Frontend {
	return serve.NewFrontend(fab, keys, valueSize)
}

// Replica placement over the fabric (package place).
type (
	// Placement groups a replicated fabric's shards into replica groups
	// (quorum writes, GC-steered reads) and routes the frontend to them.
	Placement = place.Placement
	// ReplicaGroup is one logical shard's replica set.
	ReplicaGroup = place.Group
	// Mover performs drift- and miss-triggered live shard migration.
	Mover = place.Mover
	// MoverConfig tunes the migration controller.
	MoverConfig = place.MoverConfig
	// PlaceLedger is the steering/quorum/migration accounting.
	PlaceLedger = metrics.PlaceLedger
	// DriftAlarm is the windowed service-time trend alarm migration
	// consumes.
	DriftAlarm = metrics.DriftAlarm
)

// NewPlacement groups a fabric built with FabricConfig.Replicas into
// replica groups; attach it to a Frontend to serve through them.
func NewPlacement(f *Fabric) (*Placement, error) {
	return place.New(f)
}

// Observability (package obs).
type (
	// Tracer opens, binds and aggregates per-request trace spans.
	Tracer = obs.Tracer
	// TraceSpan is one request's life, stamped stage by stage.
	TraceSpan = obs.Span
	// TraceStage names one exclusive segment of a span.
	TraceStage = obs.Stage
	// TraceRecord is an immutable closed-span record (flight recorder).
	TraceRecord = obs.SpanRecord
	// TraceRegistry merges the stack's scattered ledgers into one
	// exportable telemetry snapshot.
	TraceRegistry = obs.Registry
	// TraceHistSummary is a histogram condensed for export.
	TraceHistSummary = obs.HistSummary
)

// Trace stages.
const (
	// StageFrontend is routing/dispatch before shard admission.
	StageFrontend = obs.StageFrontend
	// StageAdmission is the shard admission-queue wait.
	StageAdmission = obs.StageAdmission
	// StageSched is DRR queue wait in the I/O scheduler.
	StageSched = obs.StageSched
	// StageDevice is dispatch→complete device service.
	StageDevice = obs.StageDevice
	// StageServe is shard serving time outside the stages above.
	StageServe = obs.StageServe
)

// NewTracer builds a tracer whose flight recorder keeps the slowest
// keep spans per class (0 picks the default).
func NewTracer(keep int) *Tracer { return obs.NewTracer(keep) }

// NewTraceRegistry builds an empty telemetry registry.
func NewTraceRegistry() *TraceRegistry { return obs.NewRegistry() }

// Continuous telemetry (package obs): the time-series sampler, the SLO
// health engine over it, and live HTTP exposition.
type (
	// Sampler snapshots every fabric ledger into per-series rings on
	// the sim clock, charging zero virtual time.
	Sampler = obs.Sampler
	// SampleConfig sizes a Sampler (FabricConfig.Sample).
	SampleConfig = obs.SampleConfig
	// SeriesDump is the sampler's full ring state as a JSON artifact.
	SeriesDump = obs.SeriesDump
	// SeriesData is one exported series with its points and rates.
	SeriesData = obs.SeriesData
	// SeriesPoint is one sample: virtual time and value.
	SeriesPoint = obs.SeriesPoint
	// Monitor is the SLO health engine: burn-rate, drift, and
	// threshold watches over sampled series, plus the typed health
	// event timeline.
	Monitor = obs.Monitor
	// MonitorConfig tunes the health engine (FabricConfig.Monitor).
	MonitorConfig = obs.MonitorConfig
	// HealthEvent is one typed occurrence on the health timeline.
	HealthEvent = obs.HealthEvent
	// HealthEventKind classifies a health event.
	HealthEventKind = obs.EventKind
	// EventSink receives health events; the acting layers hold one.
	EventSink = obs.EventSink
	// Exposition serves live telemetry over HTTP (/metrics, /snapshot,
	// /series, /events, /profile).
	Exposition = obs.Exposition
)

// Resource profiling (package obs): per-resource busy-time attribution
// with exact closure, utilization gauges and the flame export.
type (
	// Profiler attributes every tapped server's busy time to a typed
	// resource and cause (FabricConfig.Profile wires one up).
	Profiler = obs.Profiler
	// ResourceKind types a profiled resource (chip, channel, link,
	// cpu, lock).
	ResourceKind = obs.ResourceKind
	// ResourceProfile is one resource's attributed window.
	ResourceProfile = obs.ResourceProfile
	// Profile is one profiler snapshot: resources, wait overlays, and
	// the folded-stack flame export.
	Profile = obs.Profile
	// TopResource names a kind's most-utilized resource and the cause
	// holding most of its time.
	TopResource = obs.TopResource
)

// Resource kinds.
const (
	// ResChip is a NAND chip (its LUN servers as one group).
	ResChip = obs.ResChip
	// ResChannel is a flash bus channel.
	ResChannel = obs.ResChannel
	// ResLink is a device's host interconnect.
	ResLink = obs.ResLink
	// ResCPU is a stack submission/completion core.
	ResCPU = obs.ResCPU
	// ResLock is the single-queue stack's shared submission lock.
	ResLock = obs.ResLock
)

// NewProfiler returns an empty resource profiler; Attach taps servers
// into it.
func NewProfiler() *Profiler { return obs.NewProfiler() }

// Health event kinds.
const (
	// EventLeaseGrant: the device granted a GC-deferral lease.
	EventLeaseGrant = obs.EventLeaseGrant
	// EventLeaseDecline: the device refused a lease (urgent headroom).
	EventLeaseDecline = obs.EventLeaseDecline
	// EventFloorHit: the free-pool floor forced a collection.
	EventFloorHit = obs.EventFloorHit
	// EventForcedGC: collection ran despite an active deferral lease.
	EventForcedGC = obs.EventForcedGC
	// EventGCStorm: the floor-hit rate crossed its watch threshold.
	EventGCStorm = obs.EventGCStorm
	// EventAdmissionCollapse: the reject fraction crossed its threshold.
	EventAdmissionCollapse = obs.EventAdmissionCollapse
	// EventFloorProximity: GC headroom dropped below its watch floor.
	EventFloorProximity = obs.EventFloorProximity
	// EventDrift: observed service time drifted off its latched baseline.
	EventDrift = obs.EventDrift
	// EventSLOBurn: both burn-rate windows exceeded the error budget.
	EventSLOBurn = obs.EventSLOBurn
	// EventSLOClear: a firing SLO alert cleared after quiet windows.
	EventSLOClear = obs.EventSLOClear
	// EventMigrationStart: a replica began evacuating its device.
	EventMigrationStart = obs.EventMigrationStart
	// EventMigrationFinish: the replica set swapped onto the new device.
	EventMigrationFinish = obs.EventMigrationFinish
	// EventMigrationAbort: the copy was abandoned; the source stays.
	EventMigrationAbort = obs.EventMigrationAbort
	// EventAutoscaleWalk: the SLO controller moved workers or rates.
	EventAutoscaleWalk = obs.EventAutoscaleWalk
	// EventDeviceDown: a device died; its replicas are lost.
	EventDeviceDown = obs.EventDeviceDown
	// EventRepairStart: a group began rebuilding onto a spare slot.
	EventRepairStart = obs.EventRepairStart
	// EventRepairDone: the rebuilt replica joined; full strength again.
	EventRepairDone = obs.EventRepairDone
	// EventRepairAbort: the rebuild was abandoned (no spare, source
	// lost); the group stays degraded.
	EventRepairAbort = obs.EventRepairAbort
)

// NewTelemetrySampler builds a sampler with the given period and ring
// capacity (zeros pick 1ms and 256 points).
func NewTelemetrySampler(interval Time, capacity int) *Sampler {
	return obs.NewSampler(interval, capacity)
}

// NewMonitor builds a health engine over a sampler's series; the
// tracer may be nil (alerts then carry no span explanations).
func NewMonitor(sam *Sampler, tracer *Tracer, cfg MonitorConfig) *Monitor {
	return obs.NewMonitor(sam, tracer, cfg)
}

// NewExposition returns an HTTP exposition with no sources attached;
// Set installs a live run's registry, sampler and monitor.
func NewExposition() *Exposition { return obs.NewExposition() }

// Fault injection (package faults).
type (
	// FaultInjector arms a fault plan against a target and fires it at
	// exact virtual times — deterministically reproducible per seed.
	FaultInjector = faults.Injector
	// FaultPlan is one scenario's scheduled failures.
	FaultPlan = faults.Plan
	// FaultInjection is one scheduled failure.
	FaultInjection = faults.Injection
	// FaultKind classifies an injectable failure mode.
	FaultKind = faults.Kind
	// FaultPlanConfig bounds the schedules RandomFaultPlan draws.
	FaultPlanConfig = faults.PlanConfig
	// FaultTarget is the fault surface the harness drives; Fabric
	// implements it.
	FaultTarget = faults.Target
	// RepairLedger is the placement layer's failure-domain accounting:
	// deaths, degraded serving, rebuilds, aborts, crash resyncs.
	RepairLedger = metrics.RepairLedger
)

// Failure modes.
const (
	// FaultKillDevice fails a whole device permanently.
	FaultKillDevice = faults.KillDevice
	// FaultStallDevice freezes a device's controller for a duration.
	FaultStallDevice = faults.StallDevice
	// FaultSlowDevice scales a device's flash timings (aging, throttle).
	FaultSlowDevice = faults.SlowDevice
	// FaultKillChip fails a single flash die.
	FaultKillChip = faults.KillChip
	// FaultStallChip freezes a single flash die for a duration.
	FaultStallChip = faults.StallChip
	// FaultSlowChip scales a single flash die's timings.
	FaultSlowChip = faults.SlowChip
)

// ErrDeviceDown reports a request routed at a shard whose device died;
// the placement layer retries surviving replicas before surfacing it.
var ErrDeviceDown = serve.ErrDeviceDown

// NewFaultInjector builds an injector driving t (typically a Fabric).
func NewFaultInjector(eng *Engine, t FaultTarget) *FaultInjector {
	return faults.NewInjector(eng, t)
}

// RandomFaultPlan draws a reproducible fault schedule from seed.
func RandomFaultPlan(seed uint64, cfg FaultPlanConfig) FaultPlan {
	return faults.RandomPlan(seed, cfg)
}

// Workloads.
type (
	// Workload generates uFLIP-style access patterns.
	Workload = workload.Generator
	// WorkloadPattern names a pattern (SR, RR, SW, RW, ...).
	WorkloadPattern = workload.Pattern
)

// uFLIP patterns.
const (
	SR  = workload.SR
	RR  = workload.RR
	SW  = workload.SW
	RW  = workload.RW
	ZR  = workload.ZR
	ZW  = workload.ZW
	MIX = workload.MIX
)

// NewWorkload builds a pattern generator over LPNs [0, span).
func NewWorkload(p WorkloadPattern, span int64, seed uint64) (*Workload, error) {
	return workload.NewGenerator(p, span, seed)
}

// Experiments.
type (
	// Experiment is one runner from the E1-E23 suite.
	Experiment = experiments.Runner
	// ExperimentResult is a runner's tables, figures and finding.
	ExperimentResult = experiments.Result
	// ExperimentScale selects Quick or Full effort.
	ExperimentScale = experiments.Scale
)

// Experiment scales.
const (
	// Quick keeps runtimes interactive.
	Quick = experiments.Quick
	// Full is the report scale.
	Full = experiments.Full
)

// Experiments lists the full E1-E23 suite in paper order.
func Experiments() []Experiment { return experiments.All }
