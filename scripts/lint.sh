#!/usr/bin/env sh
# lint.sh — the docs-and-code lint gate run by CI (and by hand).
#
#   1. gofmt -l: no unformatted Go files;
#   2. go vet ./...: no vet findings;
#   3. every internal/* package carries a package comment ("// Package
#      <name> ..."), so godoc never renders an undocumented subsystem.
#
# Exits non-zero on the first failing check.
set -eu
cd "$(dirname "$0")/.."

fail=0

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    fail=1
fi

if ! go vet ./...; then
    fail=1
fi

for dir in internal/*/; do
    pkg=$(basename "$dir")
    if ! grep -q "^// Package $pkg " "$dir"*.go; then
        echo "package comment missing: $dir has no '// Package $pkg ...' doc comment" >&2
        fail=1
    fi
done

if [ "$fail" -ne 0 ]; then
    echo "lint: FAILED" >&2
    exit 1
fi
echo "lint: OK"
