#!/usr/bin/env sh
# lint.sh — the docs-and-code lint gate run by CI (and by hand).
#
#   1. gofmt -l: no unformatted Go files;
#   2. go vet ./...: no vet findings;
#   3. every internal/* package carries a package comment ("// Package
#      <name> ..."), so godoc never renders an undocumented subsystem;
#   4. staticcheck (pinned STATICCHECK_VERSION) when the binary is
#      available — CI installs it; offline checkouts skip with a note
#      rather than fetching modules.
#
# Exits non-zero on the first failing check.
set -eu
cd "$(dirname "$0")/.."

# The staticcheck release CI pins (go install \
# honnef.co/go/tools/cmd/staticcheck@$STATICCHECK_VERSION).
STATICCHECK_VERSION=2025.1.1

fail=0

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    fail=1
fi

if ! go vet ./...; then
    fail=1
fi

for dir in internal/*/; do
    pkg=$(basename "$dir")
    if ! grep -q "^// Package $pkg " "$dir"*.go; then
        echo "package comment missing: $dir has no '// Package $pkg ...' doc comment" >&2
        fail=1
    fi
done

if command -v staticcheck >/dev/null 2>&1; then
    if ! staticcheck ./...; then
        fail=1
    fi
else
    echo "lint: staticcheck not installed; skipping (CI pins $STATICCHECK_VERSION)" >&2
fi

if [ "$fail" -ne 0 ]; then
    echo "lint: FAILED" >&2
    exit 1
fi
echo "lint: OK"
