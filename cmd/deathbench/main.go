// deathbench runs the full experiment suite (E1-E17): E1-E14 reproduce
// every figure and quantitative claim of "The Necessary Death of the
// Block Device Interface", and E15-E17 extend the reproduction with the
// multi-tenant studies built on the paper's communication abstraction:
// scheduler isolation (internal/sched), the sharded KV serving fabric
// with admission control (internal/serve), and host→device GC
// coordination (the scheduler leasing GC deferrals from the device).
// It prints the paper-style tables. docs/EXPERIMENTS.md indexes every
// experiment with its headline result.
//
// Usage:
//
//	deathbench [-scale quick|full] [-only E5,E10]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	scaleFlag := flag.String("scale", "quick", "experiment scale: quick or full")
	onlyFlag := flag.String("only", "", "comma-separated experiment IDs (e.g. E5,E10); empty = all")
	flag.Parse()

	scale := experiments.Quick
	switch *scaleFlag {
	case "quick":
	case "full":
		scale = experiments.Full
	default:
		fmt.Fprintf(os.Stderr, "deathbench: unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}

	want := map[string]bool{}
	if *onlyFlag != "" {
		for _, id := range strings.Split(*onlyFlag, ",") {
			want[strings.TrimSpace(strings.ToUpper(id))] = true
		}
	}

	failed := 0
	for _, r := range experiments.All {
		if len(want) > 0 && !want[r.ID] {
			continue
		}
		res, err := r.Run(scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", r.ID, err)
			failed++
			continue
		}
		fmt.Println(res.String())
	}
	if failed > 0 {
		os.Exit(1)
	}
}
