// deathbench runs the full experiment suite (E1-E24): E1-E14 reproduce
// every figure and quantitative claim of "The Necessary Death of the
// Block Device Interface", and E15-E24 extend the reproduction with the
// multi-tenant studies built on the paper's communication abstraction:
// scheduler isolation (internal/sched), the sharded KV serving fabric
// with admission control (internal/serve), host→device GC coordination
// (the scheduler leasing GC deferrals from the device), the adaptive
// control plane (observed-service-time feedback closing the loop around
// billing, deadlines, admission and GC leases), replicated shard
// placement with GC-steered reads and drift-triggered live migration
// (internal/place), end-to-end request tracing with per-stage
// tail-latency attribution (internal/obs), continuous telemetry — the
// time-series sampler and SLO burn-rate health engine over it — fault
// injection (internal/faults): whole-device death under load with
// degraded serving and rebuild onto a spare — the hot-path
// throughput overhaul: batched submission/completion rings and
// multi-op group commit swept against the per-request path at
// saturation (E23) — and resource profiling: per-chip/channel/CPU
// busy-time attribution with exact closure, folded-stack flame export
// and bottleneck identification across the saturation sweep (E24).
// It prints the paper-style tables. docs/EXPERIMENTS.md indexes every
// experiment with its headline result.
//
// Usage:
//
//	deathbench [-scale quick|full] [-only E5,E10] [-json results.json]
//	           [-obs telemetry.json] [-series series.json]
//	           [-profile profile.json]
//	           [-goldenseries scripts/series_golden.txt] [-serve :9464]
//
// With -json, machine-readable per-experiment results (id, title,
// scale, finding, headline metrics) are written to the given path, so
// the bench trajectory (BENCH_*.json) can be captured per run. With
// -obs, the unified telemetry snapshots (obs.Registry exports) of the
// experiments that keep one are written as a map keyed by experiment
// ID; -series does the same for sampled time-series ring dumps, and
// -profile for resource-attribution snapshots (per-resource causes,
// wait overlays, and the folded flame lines a flamegraph renderer can
// consume directly). -goldenseries compares the telemetry schema this
// run produced — every registry source name and every sampled series
// name — against a golden list and exits 1 on drift, printing a
// unified diff of the two name lists, so renamed or dropped telemetry
// fails CI with an actionable patch instead of silently breaking
// dashboards. -serve starts an HTTP listener exposing the most
// recently started monitored fabric live at /metrics (Prometheus
// text), /snapshot, /series, /events, and /profile (folded flame
// text; ?format=json for the full snapshot), and keeps serving the
// final state after the suite finishes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"

	"repro/internal/experiments"
	"repro/internal/obs"
)

// jsonResult is one experiment's machine-readable record.
type jsonResult struct {
	ID       string             `json:"id"`
	Title    string             `json:"title"`
	Scale    string             `json:"scale"`
	Finding  string             `json:"finding"`
	Headline map[string]float64 `json:"headline,omitempty"`
}

func main() {
	scaleFlag := flag.String("scale", "quick", "experiment scale: quick or full")
	onlyFlag := flag.String("only", "", "comma-separated experiment IDs (e.g. E5,E10); empty = all")
	jsonFlag := flag.String("json", "", "write machine-readable per-experiment results to this path")
	obsFlag := flag.String("obs", "", "write per-experiment telemetry snapshots (registry exports) to this path")
	seriesFlag := flag.String("series", "", "write per-experiment sampled time-series dumps to this path")
	profileFlag := flag.String("profile", "", "write per-experiment resource-attribution profiles (folded flame stacks included) to this path")
	goldenFlag := flag.String("goldenseries", "", "compare registry source and series names against this golden list; exit 1 on drift")
	serveFlag := flag.String("serve", "", "serve live telemetry over HTTP on this address (e.g. :9464)")
	flag.Parse()

	scale := experiments.Quick
	switch *scaleFlag {
	case "quick":
	case "full":
		scale = experiments.Full
	default:
		fmt.Fprintf(os.Stderr, "deathbench: unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}

	if *serveFlag != "" {
		handler := obs.LiveExposition().Handler()
		go func() {
			if err := http.ListenAndServe(*serveFlag, handler); err != nil {
				fmt.Fprintf(os.Stderr, "deathbench: serve %s: %v\n", *serveFlag, err)
				os.Exit(1)
			}
		}()
		fmt.Printf("serving live telemetry on %s (/metrics /snapshot /series /events)\n\n", *serveFlag)
	}

	want := map[string]bool{}
	if *onlyFlag != "" {
		for _, id := range strings.Split(*onlyFlag, ",") {
			want[strings.TrimSpace(strings.ToUpper(id))] = true
		}
	}

	failed := 0
	var records []jsonResult
	snapshots := map[string]map[string]any{}
	series := map[string]*obs.SeriesDump{}
	profiles := map[string]*obs.Profile{}
	schema := map[string]bool{}
	for _, r := range experiments.All {
		if len(want) > 0 && !want[r.ID] {
			continue
		}
		res, err := r.Run(scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", r.ID, err)
			failed++
			continue
		}
		fmt.Println(res.String())
		records = append(records, jsonResult{
			ID:       res.ID,
			Title:    res.Title,
			Scale:    *scaleFlag,
			Finding:  res.Finding,
			Headline: res.Headline,
		})
		if res.Obs != nil {
			snapshots[res.ID] = res.Obs
			for src := range res.Obs {
				schema["registry:"+src] = true
			}
		}
		if res.Series != nil {
			series[res.ID] = res.Series
			for _, s := range res.Series.Series {
				schema["series:"+s.Name] = true
			}
		}
		if res.Profile != nil {
			profiles[res.ID] = res.Profile
		}
	}
	if *jsonFlag != "" {
		writeJSON(*jsonFlag, records)
	}
	if *obsFlag != "" {
		writeJSON(*obsFlag, snapshots)
	}
	if *seriesFlag != "" {
		writeJSON(*seriesFlag, series)
	}
	if *profileFlag != "" {
		writeJSON(*profileFlag, profiles)
	}
	if *goldenFlag != "" && !checkGolden(*goldenFlag, schema) {
		failed++
	}
	if failed > 0 {
		os.Exit(1)
	}
	if *serveFlag != "" {
		fmt.Println("suite done; still serving the final telemetry state (interrupt to exit)")
		select {}
	}
}

// checkGolden diffs the telemetry schema this run produced against the
// golden list (one name per line, # comments allowed). Both missing and
// unexpected names are drift: a rename breaks whatever consumed the old
// name, and an unlisted addition means the golden list no longer
// describes the exported surface. On drift it prints a unified diff of
// the two sorted name lists — applying the "+"/"-" lines to the golden
// file is exactly the fix.
func checkGolden(path string, got map[string]bool) bool {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "deathbench: goldenseries: %v\n", err)
		return false
	}
	want := map[string]bool{}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		want[line] = true
	}
	union := map[string]bool{}
	for name := range want {
		union[name] = true
	}
	for name := range got {
		union[name] = true
	}
	names := make([]string, 0, len(union))
	for name := range union {
		names = append(names, name)
	}
	sort.Strings(names)
	drift := 0
	var body strings.Builder
	for _, name := range names {
		switch {
		case want[name] && got[name]:
			fmt.Fprintf(&body, " %s\n", name)
		case want[name]: // in the golden list, missing from this run
			fmt.Fprintf(&body, "-%s\n", name)
			drift++
		default: // produced by this run, not in the golden list
			fmt.Fprintf(&body, "+%s\n", name)
			drift++
		}
	}
	if drift > 0 {
		fmt.Fprintf(os.Stderr, "deathbench: telemetry schema drift (%d names):\n", drift)
		fmt.Fprintf(os.Stderr, "--- %s\n+++ this run\n@@ -1,%d +1,%d @@\n%s",
			path, len(want), len(got), body.String())
		return false
	}
	fmt.Printf("telemetry schema matches %s (%d names)\n", path, len(want))
	return true
}

// writeJSON marshals v indented and writes it to path, exiting on error.
func writeJSON(path string, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "deathbench: marshal %s: %v\n", path, err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "deathbench: write %s: %v\n", path, err)
		os.Exit(1)
	}
}
