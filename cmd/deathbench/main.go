// deathbench runs the full experiment suite (E1-E20): E1-E14 reproduce
// every figure and quantitative claim of "The Necessary Death of the
// Block Device Interface", and E15-E20 extend the reproduction with the
// multi-tenant studies built on the paper's communication abstraction:
// scheduler isolation (internal/sched), the sharded KV serving fabric
// with admission control (internal/serve), host→device GC coordination
// (the scheduler leasing GC deferrals from the device), the adaptive
// control plane (observed-service-time feedback closing the loop around
// billing, deadlines, admission and GC leases), replicated shard
// placement with GC-steered reads and drift-triggered live migration
// (internal/place), and end-to-end request tracing with per-stage
// tail-latency attribution (internal/obs).
// It prints the paper-style tables. docs/EXPERIMENTS.md indexes every
// experiment with its headline result.
//
// Usage:
//
//	deathbench [-scale quick|full] [-only E5,E10] [-json results.json] [-obs telemetry.json]
//
// With -json, machine-readable per-experiment results (id, title,
// scale, finding, headline metrics) are written to the given path, so
// the bench trajectory (BENCH_*.json) can be captured per run. With
// -obs, the unified telemetry snapshots (obs.Registry exports) of the
// experiments that keep one are written as a map keyed by experiment ID.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

// jsonResult is one experiment's machine-readable record.
type jsonResult struct {
	ID       string             `json:"id"`
	Title    string             `json:"title"`
	Scale    string             `json:"scale"`
	Finding  string             `json:"finding"`
	Headline map[string]float64 `json:"headline,omitempty"`
}

func main() {
	scaleFlag := flag.String("scale", "quick", "experiment scale: quick or full")
	onlyFlag := flag.String("only", "", "comma-separated experiment IDs (e.g. E5,E10); empty = all")
	jsonFlag := flag.String("json", "", "write machine-readable per-experiment results to this path")
	obsFlag := flag.String("obs", "", "write per-experiment telemetry snapshots (registry exports) to this path")
	flag.Parse()

	scale := experiments.Quick
	switch *scaleFlag {
	case "quick":
	case "full":
		scale = experiments.Full
	default:
		fmt.Fprintf(os.Stderr, "deathbench: unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}

	want := map[string]bool{}
	if *onlyFlag != "" {
		for _, id := range strings.Split(*onlyFlag, ",") {
			want[strings.TrimSpace(strings.ToUpper(id))] = true
		}
	}

	failed := 0
	var records []jsonResult
	snapshots := map[string]map[string]any{}
	for _, r := range experiments.All {
		if len(want) > 0 && !want[r.ID] {
			continue
		}
		res, err := r.Run(scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", r.ID, err)
			failed++
			continue
		}
		fmt.Println(res.String())
		records = append(records, jsonResult{
			ID:       res.ID,
			Title:    res.Title,
			Scale:    *scaleFlag,
			Finding:  res.Finding,
			Headline: res.Headline,
		})
		if res.Obs != nil {
			snapshots[res.ID] = res.Obs
		}
	}
	if *jsonFlag != "" {
		writeJSON(*jsonFlag, records)
	}
	if *obsFlag != "" {
		writeJSON(*obsFlag, snapshots)
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// writeJSON marshals v indented and writes it to path, exiting on error.
func writeJSON(path string, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "deathbench: marshal %s: %v\n", path, err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "deathbench: write %s: %v\n", path, err)
		os.Exit(1)
	}
}
