// ssdsim runs a single device preset under one access pattern and
// prints latency and bandwidth statistics — a small device-exploration
// tool over the simulator.
//
// Usage:
//
//	ssdsim [-device Enterprise2012] [-pattern RW] [-ops 5000] [-qd 8] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/sim"
	"repro/internal/ssd"
	"repro/internal/workload"
)

var presets = map[string]ssd.Preset{
	"Consumer2008":             ssd.Consumer2008,
	"Enterprise2012":           ssd.Enterprise2012,
	"Enterprise2012Unbuffered": ssd.Enterprise2012Unbuffered,
	"DFTL2012":                 ssd.DFTL2012,
	"PCM2012":                  ssd.PCM2012,
}

var patterns = map[string]workload.Pattern{
	"SR": workload.SR, "RR": workload.RR, "SW": workload.SW,
	"RW": workload.RW, "ZR": workload.ZR, "ZW": workload.ZW, "MIX": workload.MIX,
}

func main() {
	deviceFlag := flag.String("device", "Enterprise2012", "device preset")
	patternFlag := flag.String("pattern", "RW", "access pattern (SR RR SW RW ZR ZW MIX)")
	opsFlag := flag.Int("ops", 5000, "number of accesses")
	qdFlag := flag.Int("qd", 8, "outstanding requests")
	seedFlag := flag.Uint64("seed", 1, "workload seed")
	flag.Parse()

	preset, ok := presets[*deviceFlag]
	if !ok {
		fmt.Fprintf(os.Stderr, "ssdsim: unknown device %q (try Consumer2008, Enterprise2012, DFTL2012, PCM2012)\n", *deviceFlag)
		os.Exit(2)
	}
	pattern, ok := patterns[*patternFlag]
	if !ok {
		fmt.Fprintf(os.Stderr, "ssdsim: unknown pattern %q\n", *patternFlag)
		os.Exit(2)
	}

	eng := sim.NewEngine()
	dev, err := ssd.Build(eng, preset, ssd.Options{Seed: *seedFlag})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ssdsim:", err)
		os.Exit(1)
	}
	span := dev.Capacity() * 3 / 4
	gen, err := workload.NewGenerator(pattern, span, *seedFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ssdsim:", err)
		os.Exit(1)
	}

	// Precondition: one sequential fill so reads and overwrites are real.
	fmt.Printf("device %s: %d pages x %d B (%.1f GiB logical)\n",
		dev.Name(), dev.Capacity(), dev.PageSize(),
		float64(dev.Capacity())*float64(dev.PageSize())/(1<<30))
	fmt.Printf("preconditioning (%d sequential writes)...\n", span)
	runLoop(eng, dev, int(span), *qdFlag, func(i int) (bool, int64) { return true, int64(i) % span })
	dev.Metrics().Reset()

	fmt.Printf("running %s x %d ops at QD%d...\n", pattern, *opsFlag, *qdFlag)
	start := eng.Now()
	runLoop(eng, dev, *opsFlag, *qdFlag, func(i int) (bool, int64) {
		a := gen.Next()
		return a.Kind == workload.Write, a.LPN
	})
	elapsed := eng.Now() - start

	m := dev.Metrics()
	fmt.Printf("\nvirtual elapsed: %v\n", elapsed)
	total := m.Reads.Ops + m.Writes.Ops
	fmt.Printf("IOPS: %.0f  bandwidth: %.1f MB/s\n",
		float64(total)/elapsed.Seconds(),
		float64(m.Reads.Bytes+m.Writes.Bytes)/1e6/elapsed.Seconds())
	if m.Reads.Ops > 0 {
		fmt.Printf("reads : %s\n", m.ReadLat.Summary())
	}
	if m.Writes.Ops > 0 {
		fmt.Printf("writes: %s\n", m.WriteLat.Summary())
	}
}

func runLoop(eng *sim.Engine, dev ssd.Dev, n, qd int, next func(i int) (bool, int64)) {
	issued := 0
	var submit func()
	submit = func() {
		if issued >= n {
			return
		}
		i := issued
		issued++
		write, lpn := next(i)
		if write {
			dev.Write(lpn, nil, func(error) { submit() })
		} else {
			dev.Read(lpn, func([]byte, error) { submit() })
		}
	}
	for k := 0; k < qd && k < n; k++ {
		submit()
	}
	eng.Run()
}
