// uflip runs the uFLIP-style characterization matrix (the measurement
// methodology of the paper's refs [2,3,6]) over every device preset and
// prints the IOPS table.
//
// Usage:
//
//	uflip [-scale quick|full]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	scaleFlag := flag.String("scale", "quick", "quick or full")
	flag.Parse()
	scale := experiments.Quick
	if *scaleFlag == "full" {
		scale = experiments.Full
	}
	res, err := experiments.E14UFLIP(scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "uflip:", err)
		os.Exit(1)
	}
	fmt.Println(res.String())
}
