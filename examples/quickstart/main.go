// Quickstart: build a simulated 2012 enterprise SSD, write and read a
// page, and look at the latency the whole stack produced — all in
// deterministic virtual time.
package main

import (
	"fmt"
	"log"

	necro "repro"
)

func main() {
	eng := necro.NewEngine()

	dev, err := necro.BuildDevice(eng, necro.Enterprise2012, necro.DeviceOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built %s: %d pages x %d B\n", dev.Name(), dev.Capacity(), dev.PageSize())

	// Write one page, then read it back. Completions are callbacks in
	// virtual time; eng.Run() drains the event loop.
	payload := make([]byte, dev.PageSize())
	copy(payload, "the necessary death of the block device interface")

	dev.Write(42, payload, func(err error) {
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("write acknowledged at t=%v (hit the safe cache)\n", eng.Now())
	})
	eng.Run()

	dev.Read(42, func(data []byte, err error) {
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("read %q... at t=%v\n", data[:22], eng.Now())
	})
	eng.Run()

	m := dev.Metrics()
	fmt.Printf("device metrics — reads: %s\n", m.ReadLat.Summary())
	fmt.Printf("device metrics — writes: %s\n", m.WriteLat.Summary())

	// The same API drives simulated processes for blocking-style code:
	eng.Go(func(p *necro.Proc) {
		p.Sleep(5 * necro.Millisecond)
		fmt.Printf("a simulated process woke at t=%v\n", p.Now())
	})
	eng.Run()
}
