// uFLIP: characterize each simulated device generation with the
// measurement discipline of the paper's refs [2,3,6] — and watch the
// generations separate on random writes (Myth 2) while PCM stays flat.
package main

import (
	"fmt"
	"log"

	necro "repro"
)

func main() {
	presets := []necro.DevicePreset{
		necro.Consumer2008, necro.Enterprise2012, necro.PCM2012,
	}
	patterns := []necro.WorkloadPattern{necro.SR, necro.RR, necro.SW, necro.RW}

	fmt.Println("uFLIP pattern matrix (IOPS, 4K pages, QD 8)")
	fmt.Printf("%-26s", "device")
	for _, pat := range patterns {
		fmt.Printf("%10s", pat)
	}
	fmt.Println()

	for _, preset := range presets {
		fmt.Printf("%-26s", preset)
		for _, pat := range patterns {
			eng := necro.NewEngine()
			dev, err := necro.BuildDevice(eng, preset, necro.DeviceOptions{
				Channels: 2, ChipsPerChannel: 2, BlocksPerPlane: 64,
			})
			if err != nil {
				log.Fatal(err)
			}
			span := dev.Capacity() * 3 / 4
			gen, err := necro.NewWorkload(pat, span, 7)
			if err != nil {
				log.Fatal(err)
			}
			// Precondition, then measure.
			drive(eng, dev, int(span), func(i int) (bool, int64) { return true, int64(i) % span })
			start := eng.Now()
			const ops = 800
			drive(eng, dev, ops, func(i int) (bool, int64) {
				a := gen.Next()
				return a.Kind == 1, a.LPN
			})
			iops := float64(ops) / (eng.Now() - start).Seconds()
			fmt.Printf("%10.0f", iops)
		}
		fmt.Println()
	}
	fmt.Println("\nThe 2008 device collapses on RW; the 2012 device does not: Myth 2 is generational.")
}

func drive(eng *necro.Engine, dev necro.Device, n int, next func(i int) (bool, int64)) {
	issued := 0
	var submit func()
	submit = func() {
		if issued >= n {
			return
		}
		i := issued
		issued++
		w, lpn := next(i)
		if w {
			dev.Write(lpn, nil, func(error) { submit() })
		} else {
			dev.Read(lpn, func([]byte, error) { submit() })
		}
	}
	for k := 0; k < 8 && k < n; k++ {
		submit()
	}
	eng.Run()
}
