// Myths: run the three SSD myths of the paper's §2.3 end to end and
// print the evidence against each — the heart of the reproduction.
package main

import (
	"fmt"
	"log"

	"repro/internal/experiments"
)

func main() {
	fmt.Println("Debunking the three SSD myths of §2.3")
	fmt.Println("======================================")
	fmt.Println()

	// Myth 1: "SSDs behave as the non-volatile memory they contain."
	res, err := experiments.E3ChipVsSSD(experiments.Quick)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.String())

	// Myth 2: "Random writes are very costly and should be avoided."
	res, err = experiments.E5RandVsSeqWrites(experiments.Quick)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.String())

	// Myth 3: "Reads are cheaper than writes."
	res, err = experiments.E7ReadTailLatency(experiments.Quick)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.String())

	fmt.Println("All three assumptions fail on the simulated devices, exactly as the paper argues.")
}
