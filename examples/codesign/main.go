// Codesign: run the same transactional storage engine over the
// conservative stack (everything through a block device) and over the
// paper's progressive stack (log on memory-bus PCM, pages on flash via
// the direct path, nameless objects, atomic metadata writes), then
// crash both and recover — the §3 vision as working code.
package main

import (
	"fmt"
	"log"

	necro "repro"
)

func run(progressive bool) {
	eng := necro.NewEngine()
	name := "conservative (block device only)"
	if progressive {
		name = "progressive (PCM log + direct flash)"
	}
	eng.Go(func(p *necro.Proc) {
		d, err := necro.BuildDevice(eng, necro.Enterprise2012, necro.DeviceOptions{
			Channels: 2, ChipsPerChannel: 2, BlocksPerPlane: 128,
		})
		if err != nil {
			log.Fatal(err)
		}
		flash := d.(*necro.FlashDevice)

		var sys *necro.KVSystem
		if progressive {
			mb, err := necro.NewMemBus(eng, "pcm0", necro.DefaultPCMConfig())
			if err != nil {
				log.Fatal(err)
			}
			sys, err = necro.BuildProgressiveKV(p, eng, flash, mb, 1<<22, 2, necro.KVConfig{})
			if err != nil {
				log.Fatal(err)
			}
		} else {
			var err error
			sys, err = necro.BuildConservativeKV(p, eng, flash, 256, 2, necro.KVConfig{})
			if err != nil {
				log.Fatal(err)
			}
		}

		// A little OLTP: 200 transactions of 3 updates each.
		start := p.Now()
		for i := 0; i < 200; i++ {
			tx := sys.Store.Begin()
			for j := 0; j < 3; j++ {
				tx.Put([]byte(fmt.Sprintf("acct%04d", (i*3+j)%500)),
					[]byte(fmt.Sprintf("balance=%d", i*100+j)))
			}
			if err := tx.Commit(p); err != nil {
				log.Fatal(err)
			}
		}
		elapsed := p.Now() - start
		w := sys.Store.WAL()
		fmt.Printf("%s:\n", name)
		fmt.Printf("  200 txns in %v of virtual time (%.0f txns/s)\n",
			elapsed, 200/elapsed.Seconds())
		fmt.Printf("  %d log syncs for %d commits (group commit batching %.1fx)\n",
			w.Syncs, w.Commits, float64(w.Commits)/float64(w.Syncs))

		// Pull the plug and recover.
		fresh, lost, err := sys.Crash(p)
		if err != nil {
			log.Fatal(err)
		}
		got, err := fresh.Store.Get(p, []byte("acct0000"))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  crash + recovery: acct0000 = %q (volatile pages lost: %d)\n\n", got, len(lost))
	})
	eng.Run()
}

func main() {
	fmt.Println("One storage engine, two persistence stacks (§3)")
	fmt.Println("================================================")
	fmt.Println()
	run(false)
	run(true)
	fmt.Println("Same engine, same workload, same durability — only the interface changed.")
}
