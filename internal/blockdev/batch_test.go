package blockdev

import (
	"errors"
	"testing"

	"repro/internal/sched"
	"repro/internal/sim"
)

// batchStack builds a Batch-enabled stack over the fast PCM device.
func batchStack(t *testing.T, eng *sim.Engine, mode Mode) *Stack {
	t.Helper()
	cfg := DefaultConfig(mode)
	cfg.Batch = true
	s, err := New(eng, fastDev(t, eng), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSubmitBatchRoundTrip(t *testing.T) {
	for _, mode := range []Mode{SingleQueue, MultiQueue, Direct} {
		t.Run(mode.String(), func(t *testing.T) {
			eng := sim.NewEngine()
			s := batchStack(t, eng, mode)
			const n = 24
			eng.Go(func(p *sim.Proc) {
				writes := make([]Request, n)
				for i := range writes {
					data := make([]byte, s.Device().PageSize())
					data[0] = byte(i + 1)
					writes[i] = Request{Op: OpWrite, LPN: int64(i), Data: data}
				}
				if err := s.SubmitBatchSync(p, 0, writes); err != nil {
					t.Errorf("batch write: %v", err)
				}
				reads := make([]Request, n)
				got := make([][]byte, n)
				for i := range reads {
					i := i
					reads[i] = Request{Op: OpRead, LPN: int64(i), Done: func(d []byte, err error) { got[i] = d }}
				}
				if err := s.SubmitBatchSync(p, 1, reads); err != nil {
					t.Errorf("batch read: %v", err)
				}
				for i := range got {
					if len(got[i]) == 0 || got[i][0] != byte(i+1) {
						t.Fatalf("lpn %d: round trip failed", i)
					}
				}
			})
			eng.Run()
			if s.Submitted != 2*n || s.Completed != 2*n {
				t.Fatalf("submitted=%d completed=%d, want %d each", s.Submitted, s.Completed, 2*n)
			}
		})
	}
}

// TestSubmitBatchAdmission checks that a batch overflowing a tenant's
// scheduler queue limit fails exactly the overflow with ErrQueueLimit,
// every Done fires exactly once, and the reject ledger matches.
func TestSubmitBatchAdmission(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig(MultiQueue)
	cfg.Batch = true
	cfg.QueueDepth = 1
	s, err := New(eng, fastDev(t, eng), cfg)
	if err != nil {
		t.Fatal(err)
	}
	sc := sched.New(eng, sched.DefaultConfig())
	s.AttachScheduler(sc)
	tn := sc.AddTenant("t", sched.Throughput, 1)
	tn.SetQueueLimit(8)

	const n = 20
	outcomes := make([]int, n) // per request: done-called count
	var rejected int
	reqs := make([]Request, n)
	for i := range reqs {
		i := i
		data := make([]byte, s.Device().PageSize())
		reqs[i] = Request{Op: OpWrite, LPN: int64(i), Data: data, Tenant: tn, Done: func(_ []byte, err error) {
			outcomes[i]++
			if errors.Is(err, ErrQueueLimit) {
				rejected++
			} else if err != nil {
				t.Errorf("req %d: %v", i, err)
			}
		}}
	}
	eng.Go(func(p *sim.Proc) { s.SubmitBatch(0, reqs) })
	eng.Run()
	for i, c := range outcomes {
		if c != 1 {
			t.Fatalf("req %d: done fired %d times", i, c)
		}
	}
	// QueueDepth 1 means at most 1 in flight + 8 queued admitted from
	// the batch; the batch lands in one instant, so the overflow is
	// n - queueLimit - anything pumped before the batch finished
	// enqueueing. EnqueueBatch admits per tenant-run in one pass, so
	// exactly queueLimit are admitted and the rest reject.
	if rejected != n-8 || tn.Rejected != int64(n-8) {
		t.Fatalf("rejected=%d tenant.Rejected=%d, want %d", rejected, tn.Rejected, n-8)
	}
	if s.Completed != 8 {
		t.Fatalf("completed=%d, want 8", s.Completed)
	}
}

// TestBatchSubmitCheaperCPU is the amortization claim at the stack
// boundary: the same op stream costs less submitting-core busy time
// batched than one request at a time.
func TestBatchSubmitCheaperCPU(t *testing.T) {
	run := func(batch bool) sim.Time {
		eng := sim.NewEngine()
		cfg := DefaultConfig(SingleQueue)
		cfg.Batch = batch
		s, err := New(eng, fastDev(t, eng), cfg)
		if err != nil {
			t.Fatal(err)
		}
		eng.Go(func(p *sim.Proc) {
			for round := 0; round < 8; round++ {
				reqs := make([]Request, 16)
				for i := range reqs {
					data := make([]byte, s.Device().PageSize())
					reqs[i] = Request{Op: OpWrite, LPN: int64(i), Data: data}
				}
				if err := s.SubmitBatchSync(p, 0, reqs); err != nil {
					t.Errorf("batch: %v", err)
				}
			}
		})
		eng.Run()
		return s.CPUBusy()
	}
	old := run(false)
	ring := run(true)
	if ring >= old {
		t.Fatalf("batched CPU %v not below per-op CPU %v", ring, old)
	}
}
