// Batched submission and completion (Config.Batch): the ring path of
// the hot-path throughput overhaul. SubmitBatch charges one core the
// full per-request setup cost once and the marginal BatchOpCost for
// every further request, takes the SingleQueue lock once per batch,
// and hands consecutive same-tenant runs to sched.EnqueueBatch so DRR
// admission settles in one bookkeeping pass. Completions post into a
// completion ring drained once per instant: spans are stamped and
// estimator samples recorded in one pass, the device queue is
// refilled with a single pump, and completion CPU is billed first-op-
// full, rest-marginal per core — the blk-mq/scsi-mq amortization the
// paper's §2.2 anticipates, applied to all three stacks.
package blockdev

import (
	"repro/internal/ftl"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/sim"
)

// completion is one finished request parked in the completion ring
// until the per-instant drain settles it.
type completion struct {
	req    Request
	cpu    int
	data   []byte
	err    error
	issued sim.Time
	pre    ftl.GCTouch
}

// SubmitBatch runs reqs through the stack from core cpu as one batch.
// With Batch off (or a single request) it degrades to per-request
// Submit, so callers can hand every submission to it unconditionally.
// The first request pays the mode's full submit cost; each further
// request pays BatchOpCost, and SingleQueue serializes on the queue
// lock once for the whole batch instead of once per request.
func (s *Stack) SubmitBatch(cpu int, reqs []Request) {
	if len(reqs) == 0 {
		return
	}
	if !s.cfg.Batch || len(reqs) == 1 {
		for _, req := range reqs {
			s.Submit(cpu, req)
		}
		return
	}
	if s.closed {
		for _, req := range reqs {
			if req.Done != nil {
				req.Done(nil, ErrStackClosed)
			}
		}
		return
	}
	s.Submitted += int64(len(reqs))
	core := s.cpus[cpu%len(s.cpus)]
	tail := sim.Time(len(reqs)-1) * s.cfg.BatchOpCost
	switch s.cfg.Mode {
	case Direct:
		core.Use(s.cfg.DirectCost+tail, "direct-submit-batch", func(_, _ sim.Time) {
			s.batchToDevice(cpu, reqs)
		})
	case MultiQueue:
		core.Use(s.cfg.SubmitCost+tail, "mq-submit-batch", func(_, _ sim.Time) {
			s.batchToDevice(cpu, reqs)
		})
	default: // SingleQueue
		core.Use(s.cfg.SubmitCost+tail, "sq-submit-batch", func(_, _ sim.Time) {
			s.lock.Use(s.cfg.LockHold, "queue-lock", func(_, _ sim.Time) {
				s.batchToDevice(cpu, reqs)
			})
		})
	}
}

// batchToDevice routes a submitted batch toward the device. With a
// scheduler attached, consecutive same-tenant runs become one
// EnqueueBatch call (per-request billing identical to EnqueueSpan;
// the batch amortizes admission bookkeeping and GC-lease decisions),
// requests past a tenant's queue limit fail fast with ErrQueueLimit,
// and one pump drains the whole admitted batch into free queue slots.
func (s *Stack) batchToDevice(cpu int, reqs []Request) {
	if s.sched == nil {
		for _, req := range reqs {
			s.dispatch(cpu, req)
		}
		return
	}
	for start := 0; start < len(reqs); {
		t := reqs[start].Tenant
		if t == nil {
			t = s.fallback
		}
		end := start + 1
		for end < len(reqs) {
			nt := reqs[end].Tenant
			if nt == nil {
				nt = s.fallback
			}
			if nt != t {
				break
			}
			end++
		}
		items := make([]sched.Item, 0, end-start)
		for i := start; i < end; i++ {
			req := reqs[i]
			items = append(items, sched.Item{
				Cost:     s.costOf(req.Op),
				Span:     req.Span,
				Dispatch: func() { s.dispatch(cpu, req) },
			})
		}
		admitted := s.sched.EnqueueBatch(t, items)
		for i := start + admitted; i < end; i++ {
			if reqs[i].Done != nil {
				reqs[i].Done(nil, ErrQueueLimit)
			}
		}
		start = end
	}
	s.pump()
}

// postCompletion parks one finished request in the completion ring and
// arms the per-instant drain. The device-queue slot frees immediately
// (the device is done with it); everything else — span stamps, GC
// probes, estimator samples, queue refill, completion CPU — waits for
// the drain so it settles once per batch.
func (s *Stack) postCompletion(c completion) {
	s.outstanding--
	s.compq = append(s.compq, c)
	if !s.compArmed {
		s.compArmed = true
		s.eng.Schedule(s.eng.Now(), s.drainCompletions)
	}
}

// drainCompletions settles every completion that landed this instant:
// one pass of span stamping and calibration samples, one waitq refill
// plus one pump to repopulate the device queue, then completion CPU
// charged per core at full cost for its first completion and
// BatchOpCost for the rest (IRQ coalescing: one interrupt's worth of
// path setup covers the whole batch).
func (s *Stack) drainCompletions() {
	s.compArmed = false
	batch := s.compq
	s.compq = nil
	if len(batch) == 0 {
		return
	}
	now := s.eng.Now()
	for i := range batch {
		c := &batch[i]
		if c.req.Span != nil {
			c.req.Span.Stamp(obs.StageDevice, now-c.issued)
			if s.prober != nil && c.req.Op != OpFlush {
				post := s.prober.GCTouch(c.req.LPN)
				chip := post.Chip
				if chip < 0 {
					chip = c.pre.Chip
				}
				c.req.Span.NoteGC(chip, c.pre.Collecting || post.Collecting,
					c.pre.Deferred || post.Deferred, post.FloorHits-c.pre.FloorHits)
			}
		}
		if c.err == nil {
			s.observe(c.req.Op, c.issued)
		}
	}
	for len(s.waitq) > 0 && s.outstanding < s.cfg.QueueDepth {
		next := s.waitq[0]
		s.waitq = s.waitq[0:copy(s.waitq, s.waitq[1:])]
		next()
	}
	s.pump()
	full := s.cfg.CompleteCost
	if s.cfg.Mode == Direct {
		full = s.cfg.DirectCost
	}
	first := make(map[int]bool, len(s.cpus))
	for i := range batch {
		c := batch[i]
		core := c.cpu % len(s.cpus)
		cost := s.cfg.BatchOpCost
		if !first[core] {
			first[core] = true
			cost = full
		}
		s.cpus[core].Use(cost, "complete-batch", func(_, _ sim.Time) {
			s.Completed++
			if c.req.Done != nil {
				c.req.Done(c.data, c.err)
			}
		})
	}
}

// SubmitBatchSync submits reqs as one batch and blocks the calling
// process until every request completes, returning the first error.
// Per-request Done callbacks still fire (before the error is folded
// in). Only ONE spanless request inherits the process's bound span:
// the batch's requests run concurrently inside the device, so stamping
// each overlapping round trip onto the shared span would sum past the
// span's own life and trip the E20 overrun check. One carrier request
// stamps one in-flight interval; the rest of the batch's wall time
// lands in the span's serve remainder.
func (s *Stack) SubmitBatchSync(p *sim.Proc, cpu int, reqs []Request) error {
	if len(reqs) == 0 {
		return nil
	}
	c := sim.NewCond(p.Engine())
	pending := len(reqs)
	var first error
	inherited := false
	for i := range reqs {
		req := &reqs[i]
		if req.Span == nil && !inherited {
			req.Span = s.tracer.At(p)
			inherited = req.Span != nil
		}
		done := req.Done
		req.Done = func(data []byte, err error) {
			if done != nil {
				done(data, err)
			}
			if err != nil && first == nil {
				first = err
			}
			pending--
			if pending == 0 {
				c.Fire()
			}
		}
	}
	s.SubmitBatch(cpu, reqs)
	c.Await(p)
	return first
}

// CPUBusy sums the busy time of every submitting core plus the shared
// queue lock (SingleQueue) — the numerator of E23's per-op CPU
// accounting, measured where the host actually burns cycles.
func (s *Stack) CPUBusy() sim.Time {
	var total sim.Time
	for _, core := range s.cpus {
		total += core.Busy()
	}
	if s.lock != nil {
		total += s.lock.Busy()
	}
	return total
}
