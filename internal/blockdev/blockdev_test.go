package blockdev

import (
	"testing"

	"repro/internal/pcm"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/ssd"
)

// fastDev builds a PCM SSD so the software stack, not the medium, is the
// bottleneck (the regime the paper cares about).
func fastDev(t *testing.T, eng *sim.Engine) ssd.Dev {
	t.Helper()
	cfg := pcm.DefaultConfig()
	cfg.CapacityBytes = 1 << 22
	d, err := ssd.NewPCMSSD(eng, "fast", 8, 4096, cfg, ssd.PCIe4)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestStackReadWriteRoundTrip(t *testing.T) {
	eng := sim.NewEngine()
	dev := fastDev(t, eng)
	s, err := New(eng, dev, DefaultConfig(SingleQueue))
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, dev.PageSize())
	data[0] = 0x42
	eng.Go(func(p *sim.Proc) {
		if err := s.WriteSync(p, 0, 7, data); err != nil {
			t.Errorf("write: %v", err)
		}
		got, err := s.ReadSync(p, 0, 7)
		if err != nil {
			t.Errorf("read: %v", err)
		}
		if got[0] != 0x42 {
			t.Error("round trip failed")
		}
		if err := s.FlushSync(p, 0); err != nil {
			t.Errorf("flush: %v", err)
		}
	})
	eng.Run()
	if s.Submitted != 3 || s.Completed != 3 {
		t.Fatalf("submitted=%d completed=%d", s.Submitted, s.Completed)
	}
}

func TestModeStrings(t *testing.T) {
	if SingleQueue.String() != "SingleQueue" || MultiQueue.String() != "MultiQueue" || Direct.String() != "Direct" {
		t.Fatal("mode names wrong")
	}
	if Mode(9).String() == "" {
		t.Fatal("unknown mode should still format")
	}
}

func TestInvalidConfig(t *testing.T) {
	eng := sim.NewEngine()
	dev := fastDev(t, eng)
	if _, err := New(eng, dev, Config{CPUs: 0}); err == nil {
		t.Fatal("zero CPUs accepted")
	}
}

func TestClosedStackRejects(t *testing.T) {
	eng := sim.NewEngine()
	dev := fastDev(t, eng)
	s, err := New(eng, dev, DefaultConfig(Direct))
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	var gotErr error
	s.Submit(0, Request{Op: OpRead, LPN: 0, Done: func(_ []byte, err error) { gotErr = err }})
	eng.Run()
	if gotErr != ErrStackClosed {
		t.Fatalf("err = %v", gotErr)
	}
}

func TestQueueDepthBounds(t *testing.T) {
	eng := sim.NewEngine()
	dev := fastDev(t, eng)
	cfg := DefaultConfig(MultiQueue)
	cfg.QueueDepth = 2
	s, err := New(eng, dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	completed := 0
	for i := 0; i < 10; i++ {
		s.Submit(i, Request{Op: OpRead, LPN: int64(i), Done: func([]byte, error) { completed++ }})
	}
	eng.Run()
	if completed != 10 {
		t.Fatalf("completed = %d, want 10 (waitq must drain)", completed)
	}
}

// runClosedLoop measures IOPS with one reader proc per CPU.
func runClosedLoop(t *testing.T, mode Mode, cpus int) float64 {
	t.Helper()
	eng := sim.NewEngine()
	dev := fastDev(t, eng)
	cfg := DefaultConfig(mode)
	cfg.CPUs = cpus
	s, err := New(eng, dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	const horizon = 50 * sim.Millisecond
	done := 0
	for c := 0; c < cpus; c++ {
		c := c
		eng.Go(func(p *sim.Proc) {
			rng := sim.NewRNG(uint64(c + 1))
			for p.Now() < horizon {
				if _, err := s.ReadSync(p, c, rng.Int63n(dev.Capacity())); err != nil {
					t.Errorf("read: %v", err)
					return
				}
				done++
			}
		})
	}
	eng.Run()
	return float64(done) / horizon.Seconds()
}

func TestSingleQueueStopsScaling(t *testing.T) {
	iops1 := runClosedLoop(t, SingleQueue, 1)
	iops8 := runClosedLoop(t, SingleQueue, 8)
	// The shared lock must prevent anything near linear scaling.
	if iops8 > 5*iops1 {
		t.Fatalf("single queue scaled %0.fx; lock contention should cap it", iops8/iops1)
	}
}

func TestMultiQueueScalesBetterThanSingle(t *testing.T) {
	sq := runClosedLoop(t, SingleQueue, 8)
	mq := runClosedLoop(t, MultiQueue, 8)
	if mq <= sq {
		t.Fatalf("multi-queue (%.0f IOPS) should beat single queue (%.0f IOPS) at 8 cores", mq, sq)
	}
}

func TestDirectBeatsBlockLayer(t *testing.T) {
	mq := runClosedLoop(t, MultiQueue, 8)
	direct := runClosedLoop(t, Direct, 8)
	if direct <= mq {
		t.Fatalf("direct path (%.0f IOPS) should beat multi-queue (%.0f IOPS)", direct, mq)
	}
}

func TestCompletionChargedToSubmittingCore(t *testing.T) {
	eng := sim.NewEngine()
	dev := fastDev(t, eng)
	s, err := New(eng, dev, DefaultConfig(MultiQueue))
	if err != nil {
		t.Fatal(err)
	}
	eng.Go(func(p *sim.Proc) {
		if _, err := s.ReadSync(p, 2, 0); err != nil {
			t.Errorf("read: %v", err)
		}
	})
	eng.Run()
	if s.CPU(2).Busy() == 0 {
		t.Fatal("core 2 shows no work")
	}
	if s.CPU(0).Busy() != 0 {
		t.Fatal("core 0 shows work it did not do")
	}
}

// TestMultiQueueConcurrentSubmitters drives a MultiQueue stack from
// many cores at once with a shallow device queue, the contention case:
// every request must complete, the depth bound must hold throughout,
// and each submitting core must have done its own submission work.
func TestMultiQueueConcurrentSubmitters(t *testing.T) {
	eng := sim.NewEngine()
	dev := fastDev(t, eng)
	cfg := DefaultConfig(MultiQueue)
	cfg.CPUs = 8
	cfg.QueueDepth = 4
	s, err := New(eng, dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	const perCore = 50
	completed := make([]int, cfg.CPUs)
	for c := 0; c < cfg.CPUs; c++ {
		c := c
		eng.Go(func(p *sim.Proc) {
			rng := sim.NewRNG(uint64(c + 1))
			for i := 0; i < perCore; i++ {
				if rng.Bool(0.5) {
					if err := s.WriteSync(p, c, rng.Int63n(dev.Capacity()), nil); err != nil {
						t.Errorf("core %d write: %v", c, err)
						return
					}
				} else {
					if _, err := s.ReadSync(p, c, rng.Int63n(dev.Capacity())); err != nil {
						t.Errorf("core %d read: %v", c, err)
						return
					}
				}
				completed[c]++
			}
		})
	}
	eng.Run()
	for c, n := range completed {
		if n != perCore {
			t.Errorf("core %d completed %d/%d", c, n, perCore)
		}
	}
	if s.Submitted != int64(cfg.CPUs*perCore) || s.Completed != s.Submitted {
		t.Fatalf("submitted=%d completed=%d, want %d", s.Submitted, s.Completed, cfg.CPUs*perCore)
	}
	if s.outstanding != 0 || len(s.waitq) != 0 {
		t.Fatalf("queue not drained: outstanding=%d waitq=%d", s.outstanding, len(s.waitq))
	}
	for c := 0; c < cfg.CPUs; c++ {
		if s.CPU(c).Busy() == 0 {
			t.Errorf("core %d shows no submission work", c)
		}
	}
}

// TestMultiQueueDepthNeverExceeded watches the outstanding count from
// completion callbacks under heavy concurrent submission.
func TestMultiQueueDepthNeverExceeded(t *testing.T) {
	eng := sim.NewEngine()
	dev := fastDev(t, eng)
	cfg := DefaultConfig(MultiQueue)
	cfg.CPUs = 8
	cfg.QueueDepth = 3
	s, err := New(eng, dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	maxOut := 0
	done := 0
	for i := 0; i < 200; i++ {
		s.Submit(i, Request{Op: OpRead, LPN: int64(i) % dev.Capacity(), Done: func([]byte, error) {
			done++
			if s.outstanding > maxOut {
				maxOut = s.outstanding
			}
		}})
		if s.outstanding > maxOut {
			maxOut = s.outstanding
		}
	}
	eng.Run()
	if done != 200 {
		t.Fatalf("completed %d/200", done)
	}
	if maxOut > cfg.QueueDepth {
		t.Fatalf("outstanding peaked at %d, depth is %d", maxOut, cfg.QueueDepth)
	}
}

// TestScheduledStackPrioritizesTaggedTenant is the blockdev-level
// integration of package sched: a weighted latency tenant's reads jump
// the queue that untagged FIFO traffic would have to drain.
func TestScheduledStackPrioritizesTaggedTenant(t *testing.T) {
	runOnce := func(scheduled bool) int64 {
		eng := sim.NewEngine()
		dev := fastDev(t, eng)
		cfg := DefaultConfig(MultiQueue)
		cfg.CPUs = 4
		cfg.QueueDepth = 2
		s, err := New(eng, dev, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var lat, bulk *sched.Tenant
		if scheduled {
			sc := sched.New(eng, sched.DefaultConfig())
			lat = sc.AddTenant("lat", sched.LatencySensitive, 8)
			bulk = sc.AddTenant("bulk", sched.Throughput, 1)
			s.AttachScheduler(sc)
		}
		// Flood with bulk writes, then issue one latency read once the
		// backlog is deep: FIFO makes it drain the queue, the scheduler
		// lets it jump.
		for i := 0; i < 256; i++ {
			s.Submit(0, Request{Op: OpWrite, LPN: int64(i), Tenant: bulk, Done: nil})
		}
		var readDone sim.Time
		eng.Go(func(p *sim.Proc) {
			p.Sleep(30 * sim.Microsecond)
			if _, err := s.ReadSyncAs(p, lat, 1, 0); err != nil {
				t.Errorf("read: %v", err)
			}
			readDone = p.Now()
		})
		eng.Run()
		return int64(readDone)
	}
	fifo := runOnce(false)
	prio := runOnce(true)
	if prio >= fifo {
		t.Fatalf("scheduled read finished at %d, FIFO at %d; scheduling should help", prio, fifo)
	}
}

// TestUntaggedTrafficCannotStarveTenants floods a scheduled stack with
// untagged requests: they must ride the fallback tenant's queue, so a
// tagged tenant keeps making progress alongside them.
func TestUntaggedTrafficCannotStarveTenants(t *testing.T) {
	eng := sim.NewEngine()
	dev := fastDev(t, eng)
	cfg := DefaultConfig(MultiQueue)
	cfg.CPUs = 4
	cfg.QueueDepth = 2
	s, err := New(eng, dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sc := sched.New(eng, sched.DefaultConfig())
	tagged := sc.AddTenant("tagged", sched.Throughput, 1)
	s.AttachScheduler(sc)

	// A closed-loop untagged flood that would monopolize a FIFO queue.
	untaggedDone, taggedDone := 0, 0
	var floodNext func()
	floodNext = func() {
		untaggedDone++
		if untaggedDone < 400 {
			s.Submit(0, Request{Op: OpRead, LPN: 0, Done: func([]byte, error) { floodNext() }})
		}
	}
	for i := 0; i < 8; i++ {
		s.Submit(0, Request{Op: OpRead, LPN: 0, Done: func([]byte, error) { floodNext() }})
	}
	for i := 0; i < 50; i++ {
		s.Submit(1, Request{Op: OpRead, LPN: 1, Tenant: tagged,
			Done: func([]byte, error) { taggedDone++ }})
	}
	eng.Run()
	if taggedDone != 50 {
		t.Fatalf("tagged tenant completed %d/50 under untagged flood", taggedDone)
	}
	for _, tn := range sc.Tenants() {
		if tn.Name() == "untagged" && tn.Dispatched == 0 {
			t.Fatal("untagged traffic did not ride the fallback tenant")
		}
	}
}

// fixedDev is a device with exactly known service times, so the cost
// calibrator can be tested against a configured ground truth.
type fixedDev struct {
	eng               *sim.Engine
	readLat, writeLat sim.Time
	m                 ssd.DeviceMetrics
}

func (d *fixedDev) Name() string                { return "fixed" }
func (d *fixedDev) PageSize() int               { return 4096 }
func (d *fixedDev) Capacity() int64             { return 1 << 20 }
func (d *fixedDev) Trim(int64) error            { return nil }
func (d *fixedDev) Flush(done func())           { d.eng.After(d.readLat, done) }
func (d *fixedDev) Metrics() *ssd.DeviceMetrics { return &d.m }
func (d *fixedDev) Read(_ int64, done func([]byte, error)) {
	d.eng.After(d.readLat, func() { done(nil, nil) })
}
func (d *fixedDev) Write(_ int64, _ []byte, done func(error)) {
	d.eng.After(d.writeLat, func() { done(nil) })
}

// driveMixed issues alternating read/write singles so each request's
// observed service time is exactly the device latency (depth 1: no
// queueing inside the device).
func driveMixed(eng *sim.Engine, s *Stack, n int) {
	eng.Go(func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			if i%2 == 0 {
				if _, err := s.ReadSync(p, 0, int64(i)); err != nil {
					panic(err)
				}
			} else {
				if err := s.WriteSync(p, 0, int64(i), nil); err != nil {
					panic(err)
				}
			}
		}
	})
	eng.Run()
}

// TestCostCalibrationConvergesToConfiguredRatio drives a stack over a
// device with a known 6:1 write:read service ratio: the calibrated DRR
// billing must converge to that ratio (within bucket resolution), then
// track the device when it ages mid-run to 15:1 — with the static
// WriteCost seed visible only before the estimator warms up.
func TestCostCalibrationConvergesToConfiguredRatio(t *testing.T) {
	eng := sim.NewEngine()
	dev := &fixedDev{eng: eng, readLat: 50 * sim.Microsecond, writeLat: 300 * sim.Microsecond}
	cfg := DefaultConfig(Direct)
	cfg.ReadCost = 1
	cfg.WriteCost = 16
	cfg.Calibrate = true
	s, err := New(eng, dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Seed billing before any samples: the static costs.
	if r, w := s.CalibratedCosts(); r != 1 || w != 16 {
		t.Fatalf("seed costs = %d/%d, want 1/16", r, w)
	}
	driveMixed(eng, s, 200)
	r, w := s.CalibratedCosts()
	ratio := float64(w) / float64(r)
	if ratio < 5.0 || ratio > 7.0 {
		t.Fatalf("calibrated ratio = %.2f (%d/%d), want ~6", ratio, w, r)
	}
	// The device ages: writes now cost 15x reads. The EWMA window must
	// pull the billing to the new truth.
	dev.writeLat = 750 * sim.Microsecond
	driveMixed(eng, s, 200)
	r, w = s.CalibratedCosts()
	ratio = float64(w) / float64(r)
	if ratio < 12.0 || ratio > 18.0 {
		t.Fatalf("post-aging ratio = %.2f (%d/%d), want ~15", ratio, w, r)
	}
	if s.ServiceEstimator() == nil {
		t.Fatal("calibrating stack must expose its estimator")
	}
}

// TestCostCalibrationClampsRatio bounds the billing no matter how
// extreme the observed service ratio gets.
func TestCostCalibrationClampsRatio(t *testing.T) {
	eng := sim.NewEngine()
	dev := &fixedDev{eng: eng, readLat: 1 * sim.Microsecond, writeLat: 10 * sim.Millisecond}
	cfg := DefaultConfig(Direct)
	cfg.Calibrate = true
	cfg.MaxCostRatio = 32
	s, err := New(eng, dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	driveMixed(eng, s, 100)
	r, w := s.CalibratedCosts()
	if got := float64(w) / float64(r); got > 32.5 {
		t.Fatalf("ratio %.1f exceeds MaxCostRatio 32", got)
	}
}

// TestGCControlRequiresControllableGC: the GC shaping surface is only
// exposed for devices whose GC the host can actually shape. PCM has no
// GC at all; a 2008 hybrid-FTL device carries the control methods but
// refuses every lease, so wiring it would just spam doomed requests.
func TestGCControlRequiresControllableGC(t *testing.T) {
	eng := sim.NewEngine()
	pcmStack, err := New(eng, fastDev(t, eng), DefaultConfig(Direct))
	if err != nil {
		t.Fatal(err)
	}
	if pcmStack.GCControl() != nil {
		t.Error("PCM SSD exposed a GC control surface")
	}

	legacy, err := ssd.Build(eng, ssd.Consumer2008, ssd.Options{
		Channels: 1, ChipsPerChannel: 2, BlocksPerPlane: 16, PagesPerBlock: 8})
	if err != nil {
		t.Fatal(err)
	}
	legacyStack, err := New(eng, legacy, DefaultConfig(Direct))
	if err != nil {
		t.Fatal(err)
	}
	if legacyStack.GCControl() != nil {
		t.Error("hybrid-FTL device exposed a GC control surface it can only refuse")
	}

	modern, err := ssd.Build(eng, ssd.Enterprise2012, ssd.Options{
		Channels: 1, ChipsPerChannel: 2, BlocksPerPlane: 16, PagesPerBlock: 8})
	if err != nil {
		t.Fatal(err)
	}
	modernStack, err := New(eng, modern, DefaultConfig(Direct))
	if err != nil {
		t.Fatal(err)
	}
	if modernStack.GCControl() == nil {
		t.Error("page-mapped device exposed no GC control surface")
	}
	// A scheduler attached to an uncontrollable device must not lease.
	sc := sched.New(eng, sched.Config{GCCoordinate: true})
	legacyStack.AttachScheduler(sc)
	ls := sc.AddTenant("ls", sched.LatencySensitive, 1)
	sc.Enqueue(ls, 1, func() {})
	if sc.GCDeferRequests != 0 {
		t.Errorf("scheduler leased %d deferrals from an uncontrollable device", sc.GCDeferRequests)
	}
}
