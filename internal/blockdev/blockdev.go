// Package blockdev models the operating-system block layer between
// applications and a device: per-request CPU work on the submitting
// core, the single shared queue lock of the classic Linux block layer,
// the per-core software queues of its multi-queue successor, and the
// direct user-space submission path (FusionIO's ioMemory SDK) that
// bypasses the block layer entirely — the three stacks experiment E12
// compares.
//
// The paper's §2.2 notes the block layer evolution ("CPU overhead has
// been reduced ... lock contention has been reduced ... management of
// multiple IO queues ... under implementation"); this package makes
// those costs explicit and measurable.
package blockdev

import (
	"errors"
	"fmt"

	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/ssd"
)

// Package errors.
var (
	// ErrStackClosed reports submission after Close.
	ErrStackClosed = errors.New("blockdev: stack closed")
	// ErrQueueLimit reports a request rejected by its tenant's scheduler
	// queue limit (admission control) instead of being backlogged.
	ErrQueueLimit = errors.New("blockdev: tenant queue limit reached")
)

// Mode selects the submission path.
type Mode int

// Submission paths.
const (
	// SingleQueue is the classic block layer: one request queue, one
	// lock shared by every submitting core.
	SingleQueue Mode = iota
	// MultiQueue is the blk-mq design: a software queue per core, no
	// shared lock on the submission path.
	MultiQueue
	// Direct bypasses the block layer: minimal per-request CPU cost, no
	// shared state (the "communication abstraction" needs this path).
	Direct
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case SingleQueue:
		return "SingleQueue"
	case MultiQueue:
		return "MultiQueue"
	case Direct:
		return "Direct"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config parameterizes the stack.
type Config struct {
	Mode Mode
	// CPUs is the number of submitting cores.
	CPUs int
	// SubmitCost is the CPU work to build and route one request
	// (bio allocation, scheduler hooks). Direct mode pays DirectCost
	// instead.
	SubmitCost sim.Time
	// CompleteCost is the CPU work on the completion path (IRQ +
	// softirq + callback), charged to the submitting core.
	CompleteCost sim.Time
	// LockHold is the queue-lock critical section per request
	// (SingleQueue only) — the serialization point that caps IOPS.
	LockHold sim.Time
	// DirectCost is the per-request CPU work of the bypass path.
	DirectCost sim.Time
	// QueueDepth bounds requests outstanding at the device; excess
	// requests wait in the scheduler queue.
	QueueDepth int
	// ReadCost and WriteCost are the per-request charges a tenant
	// scheduler bills in DRR units (zero means 1). Deficit round robin
	// shares *cost*, not op count, so setting WriteCost near the
	// device's program/read service-time ratio keeps cheap reads from
	// being crowded out by expensive writes.
	ReadCost, WriteCost int
}

// DefaultConfig mirrors a 2012 Linux stack on a fast SSD.
func DefaultConfig(mode Mode) Config {
	return Config{
		Mode:         mode,
		CPUs:         4,
		SubmitCost:   4 * sim.Microsecond,
		CompleteCost: 4 * sim.Microsecond,
		LockHold:     1200 * sim.Nanosecond,
		DirectCost:   800 * sim.Nanosecond,
		QueueDepth:   32,
	}
}

// Stack is one configured I/O path to one device.
type Stack struct {
	eng *sim.Engine
	dev ssd.Dev
	cfg Config

	cpus []*sim.Server
	lock *sim.Server // SingleQueue only

	// sched, when attached, arbitrates tenant-tagged requests onto the
	// device queue instead of the FIFO waitq; untagged requests ride
	// the fallback tenant so they can neither starve nor be starved.
	sched    *sched.Scheduler
	fallback *sched.Tenant

	outstanding int
	waitq       []func()
	closed      bool

	// Submitted and Completed count requests through this stack.
	Submitted int64
	Completed int64
}

// New builds a stack over dev.
func New(eng *sim.Engine, dev ssd.Dev, cfg Config) (*Stack, error) {
	if cfg.CPUs <= 0 {
		return nil, fmt.Errorf("blockdev: CPUs %d must be positive", cfg.CPUs)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 32
	}
	s := &Stack{eng: eng, dev: dev, cfg: cfg}
	for i := 0; i < cfg.CPUs; i++ {
		s.cpus = append(s.cpus, sim.NewServer(eng, fmt.Sprintf("cpu%d", i)))
	}
	if cfg.Mode == SingleQueue {
		s.lock = sim.NewServer(eng, "queue-lock")
	}
	return s, nil
}

// Device returns the device under this stack.
func (s *Stack) Device() ssd.Dev { return s.dev }

// Config returns the stack configuration.
func (s *Stack) Config() Config { return s.cfg }

// CPU exposes core i's server (for utilization probes).
func (s *Stack) CPU(i int) *sim.Server { return s.cpus[i%len(s.cpus)] }

// Close rejects further submissions.
func (s *Stack) Close() { s.closed = true }

// AttachScheduler inserts a multi-tenant scheduler between the
// submission path and the device queue. Requests carrying a Tenant tag
// are arbitrated by it (weighted fair queueing, rate caps, GC-aware
// deferral); untagged requests are charged to a built-in "untagged"
// tenant, so legacy traffic shares the queue under the same arbitration
// instead of bypassing it (a bypass would hand untagged streams strict
// priority and starve every tenant behind a full device queue). The
// fallback is latency-class so attaching a scheduler never exposes
// unaware callers to GC deferral. The scheduler's kick is pointed at
// this stack's queue pump, so deferred work resumes when rate tokens
// refill or device GC state changes. When the device exposes the
// host→device GC control surface it is wired into the scheduler too —
// on every stack mode — so sched.Config.GCCoordinate can shape device
// GC around latency bursts (the other half of the peer interface).
func (s *Stack) AttachScheduler(sc *sched.Scheduler) {
	s.sched = sc
	s.fallback = sc.AddTenant("untagged", sched.LatencySensitive, 1)
	sc.SetKick(s.pump)
	if ctl := s.GCControl(); ctl != nil {
		sc.SetGCControl(ctl)
	}
}

// GCControl returns the device's host→device GC shaping surface, or
// nil when the device has no controllable GC (PCM, block/hybrid FTLs).
// Devices that carry the control methods but report themselves
// uncontrollable (ssd.Device over a legacy FTL) also yield nil, so a
// scheduler never leases deferrals a device can only refuse. The
// surface is independent of the submission mode: SingleQueue,
// MultiQueue and Direct stacks all expose it, because it rides the
// control plane, not the data path.
func (s *Stack) GCControl() sched.GCControl {
	ctl, ok := s.dev.(sched.GCControl)
	if !ok {
		return nil
	}
	if probe, ok := s.dev.(interface{ GCControllable() bool }); ok && !probe.GCControllable() {
		return nil
	}
	return ctl
}

// Scheduler returns the attached scheduler, or nil.
func (s *Stack) Scheduler() *sched.Scheduler { return s.sched }

// Op identifies the request type.
type Op int

// Request operations.
const (
	OpRead Op = iota
	OpWrite
	OpFlush
)

// Request is one block-layer request.
type Request struct {
	Op   Op
	LPN  int64
	Data []byte
	// Tenant, when a scheduler is attached, routes the request through
	// that tenant's queue; nil requests are charged to the stack's
	// built-in "untagged" tenant. Without a scheduler the tag is
	// ignored (pure FIFO).
	Tenant *sched.Tenant
	// Done receives the read payload (for OpRead) and the outcome.
	Done func(data []byte, err error)
}

// Submit runs req through the stack from core cpu. Completion costs are
// charged back to the same core (completion steering, as the upgraded
// block layer does).
func (s *Stack) Submit(cpu int, req Request) {
	if s.closed {
		if req.Done != nil {
			req.Done(nil, ErrStackClosed)
		}
		return
	}
	s.Submitted++
	core := s.cpus[cpu%len(s.cpus)]
	switch s.cfg.Mode {
	case Direct:
		core.Use(s.cfg.DirectCost, "direct-submit", func(_, _ sim.Time) {
			s.toDevice(cpu, req)
		})
	case MultiQueue:
		core.Use(s.cfg.SubmitCost, "mq-submit", func(_, _ sim.Time) {
			s.toDevice(cpu, req)
		})
	default: // SingleQueue
		core.Use(s.cfg.SubmitCost, "sq-submit", func(_, _ sim.Time) {
			s.lock.Use(s.cfg.LockHold, "queue-lock", func(_, _ sim.Time) {
				s.toDevice(cpu, req)
			})
		})
	}
}

// toDevice routes a post-submission request toward the device: through
// the attached scheduler for tenant-tagged requests, or straight to the
// FIFO depth gate otherwise.
func (s *Stack) toDevice(cpu int, req Request) {
	if s.sched != nil {
		t := req.Tenant
		if t == nil {
			t = s.fallback
		}
		if !s.sched.Enqueue(t, s.costOf(req.Op), func() { s.dispatch(cpu, req) }) {
			// Rejected at admission: fail fast rather than queue.
			if req.Done != nil {
				req.Done(nil, ErrQueueLimit)
			}
			return
		}
		s.pump()
		return
	}
	s.dispatch(cpu, req)
}

// costOf maps an op to its scheduler charge.
func (s *Stack) costOf(op Op) int {
	switch op {
	case OpWrite:
		return s.cfg.WriteCost
	default:
		return s.cfg.ReadCost
	}
}

// pump pulls scheduled requests into free device-queue slots. It is the
// scheduler's kick target, so it also runs when rate tokens refill or
// GC deferrals expire.
func (s *Stack) pump() {
	if s.sched == nil {
		return
	}
	for s.outstanding < s.cfg.QueueDepth {
		d, ok := s.sched.Next()
		if !ok {
			return
		}
		d()
	}
}

// dispatch issues one request when queue depth allows.
func (s *Stack) dispatch(cpu int, req Request) {
	if s.outstanding >= s.cfg.QueueDepth {
		s.waitq = append(s.waitq, func() { s.dispatch(cpu, req) })
		return
	}
	s.outstanding++
	complete := func(data []byte, err error) {
		s.outstanding--
		if len(s.waitq) > 0 {
			next := s.waitq[0]
			s.waitq = s.waitq[0:copy(s.waitq, s.waitq[1:])]
			next()
		} else {
			s.pump()
		}
		cost := s.cfg.CompleteCost
		if s.cfg.Mode == Direct {
			cost = s.cfg.DirectCost
		}
		s.cpus[cpu%len(s.cpus)].Use(cost, "complete", func(_, _ sim.Time) {
			s.Completed++
			if req.Done != nil {
				req.Done(data, err)
			}
		})
	}
	switch req.Op {
	case OpRead:
		s.dev.Read(req.LPN, complete)
	case OpWrite:
		s.dev.Write(req.LPN, req.Data, func(err error) { complete(nil, err) })
	case OpFlush:
		s.dev.Flush(func() { complete(nil, nil) })
	default:
		complete(nil, fmt.Errorf("blockdev: unknown op %d", req.Op))
	}
}

// ReadSync issues a read from core cpu and blocks the calling process.
func (s *Stack) ReadSync(p *sim.Proc, cpu int, lpn int64) ([]byte, error) {
	return s.ReadSyncAs(p, nil, cpu, lpn)
}

// ReadSyncAs is ReadSync with the request charged to tenant t's
// scheduler queue (t may be nil for the unscheduled path).
func (s *Stack) ReadSyncAs(p *sim.Proc, t *sched.Tenant, cpu int, lpn int64) ([]byte, error) {
	c := sim.NewCond(p.Engine())
	var data []byte
	var rerr error
	s.Submit(cpu, Request{Op: OpRead, LPN: lpn, Tenant: t, Done: func(d []byte, err error) {
		data, rerr = d, err
		c.Fire()
	}})
	c.Await(p)
	return data, rerr
}

// WriteSync issues a write from core cpu and blocks the calling process.
func (s *Stack) WriteSync(p *sim.Proc, cpu int, lpn int64, data []byte) error {
	return s.WriteSyncAs(p, nil, cpu, lpn, data)
}

// WriteSyncAs is WriteSync with the request charged to tenant t's
// scheduler queue (t may be nil for the unscheduled path).
func (s *Stack) WriteSyncAs(p *sim.Proc, t *sched.Tenant, cpu int, lpn int64, data []byte) error {
	c := sim.NewCond(p.Engine())
	var werr error
	s.Submit(cpu, Request{Op: OpWrite, LPN: lpn, Data: data, Tenant: t, Done: func(_ []byte, err error) {
		werr = err
		c.Fire()
	}})
	c.Await(p)
	return werr
}

// FlushSync issues a flush barrier and blocks the calling process —
// the fsync step of the conservative commit path.
func (s *Stack) FlushSync(p *sim.Proc, cpu int) error {
	c := sim.NewCond(p.Engine())
	var ferr error
	s.Submit(cpu, Request{Op: OpFlush, Done: func(_ []byte, err error) {
		ferr = err
		c.Fire()
	}})
	c.Await(p)
	return ferr
}
