// Package blockdev models the operating-system block layer between
// applications and a device: per-request CPU work on the submitting
// core, the single shared queue lock of the classic Linux block layer,
// the per-core software queues of its multi-queue successor, and the
// direct user-space submission path (FusionIO's ioMemory SDK) that
// bypasses the block layer entirely — the three stacks experiment E12
// compares.
//
// The paper's §2.2 notes the block layer evolution ("CPU overhead has
// been reduced ... lock contention has been reduced ... management of
// multiple IO queues ... under implementation"); this package makes
// those costs explicit and measurable.
package blockdev

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/ftl"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/ssd"
)

// Package errors.
var (
	// ErrStackClosed reports submission after Close.
	ErrStackClosed = errors.New("blockdev: stack closed")
	// ErrQueueLimit reports a request rejected by its tenant's scheduler
	// queue limit (admission control) instead of being backlogged.
	ErrQueueLimit = errors.New("blockdev: tenant queue limit reached")
)

// Mode selects the submission path.
type Mode int

// Submission paths.
const (
	// SingleQueue is the classic block layer: one request queue, one
	// lock shared by every submitting core.
	SingleQueue Mode = iota
	// MultiQueue is the blk-mq design: a software queue per core, no
	// shared lock on the submission path.
	MultiQueue
	// Direct bypasses the block layer: minimal per-request CPU cost, no
	// shared state (the "communication abstraction" needs this path).
	Direct
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case SingleQueue:
		return "SingleQueue"
	case MultiQueue:
		return "MultiQueue"
	case Direct:
		return "Direct"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config parameterizes the stack.
type Config struct {
	Mode Mode
	// CPUs is the number of submitting cores.
	CPUs int
	// SubmitCost is the CPU work to build and route one request
	// (bio allocation, scheduler hooks). Direct mode pays DirectCost
	// instead.
	SubmitCost sim.Time
	// CompleteCost is the CPU work on the completion path (IRQ +
	// softirq + callback), charged to the submitting core.
	CompleteCost sim.Time
	// LockHold is the queue-lock critical section per request
	// (SingleQueue only) — the serialization point that caps IOPS.
	LockHold sim.Time
	// DirectCost is the per-request CPU work of the bypass path.
	DirectCost sim.Time
	// QueueDepth bounds requests outstanding at the device; excess
	// requests wait in the scheduler queue.
	QueueDepth int
	// ReadCost and WriteCost are the per-request charges a tenant
	// scheduler bills in DRR units (zero means 1). Deficit round robin
	// shares *cost*, not op count, so setting WriteCost near the
	// device's program/read service-time ratio keeps cheap reads from
	// being crowded out by expensive writes.
	ReadCost, WriteCost int
	// Calibrate replaces the static ReadCost/WriteCost billing with
	// online cost calibration: the stack measures every request's device
	// service time (dispatch to completion, the span the block interface
	// reports and nothing more) into a windowed estimator and re-derives
	// the read/write billing from the observed EWMA ratio. The static
	// costs remain the seed — billing until both op classes have
	// samples — so a cold stack behaves exactly like an uncalibrated
	// one. This is the honest version of the WriteCost guess above: a
	// device whose programs slow with age is billed at what its writes
	// actually cost today, not at what they cost when configured.
	Calibrate bool
	// CalibrateWindow is the estimator sub-window (zero = 2ms; the full
	// observation window is 4 sub-windows).
	CalibrateWindow sim.Time
	// MaxCostRatio clamps the calibrated expensive:cheap billing ratio,
	// bounding how hard one op class can be billed relative to the
	// other no matter what the estimator reports (zero = 64).
	MaxCostRatio int
	// Batch turns on the ring submission path: SubmitBatch amortizes
	// the per-request submit cost (first op pays full SubmitCost /
	// DirectCost, the rest BatchOpCost each, and SingleQueue takes the
	// queue lock once per batch), the scheduler is drained via
	// NextBatch with one kick per drain, and completions post through
	// a completion ring that settles spans and estimator samples in
	// one pass before charging batched completion CPU.
	Batch bool
	// BatchOpCost is the incremental CPU cost of each request after
	// the first in a batched submit or completion (zero = a quarter of
	// the mode's per-request cost: the marginal work of appending to a
	// ring already resident in cache, vs the full path setup).
	BatchOpCost sim.Time
}

// Service-time estimator class names (also the keys experiments read).
const (
	SvcRead  = "read"
	SvcWrite = "write"
)

// costGrain is the billing unit of calibrated costs: the cheaper op
// class is billed costGrain units so ratios below 2 are still
// representable in integer DRR costs (at grain 1 everything between
// 1.0x and 1.5x would round to parity).
const costGrain = 8

// calSeedSamples is how many lifetime samples each op class needs
// before calibrated billing replaces the static seed costs.
const calSeedSamples = 8

// DefaultConfig mirrors a 2012 Linux stack on a fast SSD.
func DefaultConfig(mode Mode) Config {
	return Config{
		Mode:         mode,
		CPUs:         4,
		SubmitCost:   4 * sim.Microsecond,
		CompleteCost: 4 * sim.Microsecond,
		LockHold:     1200 * sim.Nanosecond,
		DirectCost:   800 * sim.Nanosecond,
		QueueDepth:   32,
	}
}

// Stack is one configured I/O path to one device.
type Stack struct {
	eng *sim.Engine
	dev ssd.Dev
	cfg Config

	cpus []*sim.Server
	lock *sim.Server // SingleQueue only

	// sched, when attached, arbitrates tenant-tagged requests onto the
	// device queue instead of the FIFO waitq; untagged requests ride
	// the fallback tenant so they can neither starve nor be starved.
	sched    *sched.Scheduler
	fallback *sched.Tenant

	// Online cost calibration (Config.Calibrate): the observed
	// service-time estimator and the billing it currently implies.
	svc               *metrics.Estimator
	calRead, calWrite int

	// Tracing (SetTracer): spans are resolved from the submitting
	// process, stamped with device service time, and annotated with
	// per-LPN GC context when the device can report it.
	tracer *obs.Tracer
	prober gcProber

	outstanding int
	waitq       []func()
	closed      bool

	// Completion ring (Config.Batch): completions land here and are
	// settled in one drain pass per instant instead of re-entering the
	// pump and span machinery once per op.
	compq     []completion
	compArmed bool

	// Submitted and Completed count requests through this stack.
	Submitted int64
	Completed int64
}

// New builds a stack over dev.
func New(eng *sim.Engine, dev ssd.Dev, cfg Config) (*Stack, error) {
	if cfg.CPUs <= 0 {
		return nil, fmt.Errorf("blockdev: CPUs %d must be positive", cfg.CPUs)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 32
	}
	if cfg.MaxCostRatio <= 0 {
		cfg.MaxCostRatio = 64
	}
	if cfg.CalibrateWindow <= 0 {
		cfg.CalibrateWindow = 2 * sim.Millisecond
	}
	if cfg.Batch && cfg.BatchOpCost <= 0 {
		switch cfg.Mode {
		case Direct:
			cfg.BatchOpCost = cfg.DirectCost / 4
		default:
			cfg.BatchOpCost = cfg.SubmitCost / 4
		}
	}
	s := &Stack{eng: eng, dev: dev, cfg: cfg}
	if cfg.Calibrate {
		s.svc = metrics.NewEstimator(int64(cfg.CalibrateWindow), 4, 0.1)
	}
	for i := 0; i < cfg.CPUs; i++ {
		s.cpus = append(s.cpus, sim.NewServer(eng, fmt.Sprintf("cpu%d", i)))
	}
	if cfg.Mode == SingleQueue {
		s.lock = sim.NewServer(eng, "queue-lock")
	}
	return s, nil
}

// Device returns the device under this stack.
func (s *Stack) Device() ssd.Dev { return s.dev }

// Config returns the stack configuration.
func (s *Stack) Config() Config { return s.cfg }

// CPU exposes core i's server (for utilization probes).
func (s *Stack) CPU(i int) *sim.Server { return s.cpus[i%len(s.cpus)] }

// CPUs reports the number of submission/completion cores.
func (s *Stack) CPUs() int { return len(s.cpus) }

// Lock exposes the shared submission lock server (SingleQueue only;
// nil on the other modes).
func (s *Stack) Lock() *sim.Server { return s.lock }

// Close rejects further submissions.
func (s *Stack) Close() { s.closed = true }

// AttachScheduler inserts a multi-tenant scheduler between the
// submission path and the device queue. Requests carrying a Tenant tag
// are arbitrated by it (weighted fair queueing, rate caps, GC-aware
// deferral); untagged requests are charged to a built-in "untagged"
// tenant, so legacy traffic shares the queue under the same arbitration
// instead of bypassing it (a bypass would hand untagged streams strict
// priority and starve every tenant behind a full device queue). The
// fallback is latency-class so attaching a scheduler never exposes
// unaware callers to GC deferral. The scheduler's kick is pointed at
// this stack's queue pump, so deferred work resumes when rate tokens
// refill or device GC state changes. When the device exposes the
// host→device GC control surface it is wired into the scheduler too —
// on every stack mode — so sched.Config.GCCoordinate can shape device
// GC around latency bursts (the other half of the peer interface).
func (s *Stack) AttachScheduler(sc *sched.Scheduler) {
	s.sched = sc
	s.fallback = sc.AddTenant("untagged", sched.LatencySensitive, 1)
	sc.SetKick(s.pump)
	// On the ring path, token refills and GC edges inside one batch
	// drain coalesce to a single pump wakeup per instant.
	sc.SetKickCoalesced(s.cfg.Batch)
	if ctl := s.GCControl(); ctl != nil {
		sc.SetGCControl(ctl)
	}
}

// GCControl returns the device's host→device GC shaping surface, or
// nil when the device has no controllable GC (PCM, block/hybrid FTLs).
// Devices that carry the control methods but report themselves
// uncontrollable (ssd.Device over a legacy FTL) also yield nil, so a
// scheduler never leases deferrals a device can only refuse. The
// surface is independent of the submission mode: SingleQueue,
// MultiQueue and Direct stacks all expose it, because it rides the
// control plane, not the data path.
func (s *Stack) GCControl() sched.GCControl {
	ctl, ok := s.dev.(sched.GCControl)
	if !ok {
		return nil
	}
	if probe, ok := s.dev.(interface{ GCControllable() bool }); ok && !probe.GCControllable() {
		return nil
	}
	return ctl
}

// Scheduler returns the attached scheduler, or nil.
func (s *Stack) Scheduler() *sched.Scheduler { return s.sched }

// gcProber is the per-LPN GC-context probe trace annotation uses;
// ssd.Device implements it by forwarding to the page-mapped FTL.
type gcProber interface {
	GCTouch(lpn int64) ftl.GCTouch
}

// SetTracer enables span tracing on this stack: requests issued
// through the Sync wrappers inherit the span bound to the calling
// process (obs.Tracer.Bind), the dispatch→complete device service is
// stamped on it, and — when the device can report per-LPN GC context —
// each I/O is annotated with the GC interference it saw. A nil tracer
// disables tracing.
func (s *Stack) SetTracer(tr *obs.Tracer) {
	s.tracer = tr
	s.prober, _ = s.dev.(gcProber)
}

// Op identifies the request type.
type Op int

// Request operations.
const (
	OpRead Op = iota
	OpWrite
	OpFlush
)

// Request is one block-layer request.
type Request struct {
	Op   Op
	LPN  int64
	Data []byte
	// Tenant, when a scheduler is attached, routes the request through
	// that tenant's queue; nil requests are charged to the stack's
	// built-in "untagged" tenant. Without a scheduler the tag is
	// ignored (pure FIFO).
	Tenant *sched.Tenant
	// Done receives the read payload (for OpRead) and the outcome.
	Done func(data []byte, err error)
	// Span, when tracing, is the request's trace span: the stack
	// stamps scheduler-queue wait and device service time on it. The
	// Sync wrappers fill it from the calling process's binding.
	Span *obs.Span
}

// Submit runs req through the stack from core cpu. Completion costs are
// charged back to the same core (completion steering, as the upgraded
// block layer does).
func (s *Stack) Submit(cpu int, req Request) {
	if s.closed {
		if req.Done != nil {
			req.Done(nil, ErrStackClosed)
		}
		return
	}
	s.Submitted++
	core := s.cpus[cpu%len(s.cpus)]
	switch s.cfg.Mode {
	case Direct:
		core.Use(s.cfg.DirectCost, "direct-submit", func(_, _ sim.Time) {
			s.toDevice(cpu, req)
		})
	case MultiQueue:
		core.Use(s.cfg.SubmitCost, "mq-submit", func(_, _ sim.Time) {
			s.toDevice(cpu, req)
		})
	default: // SingleQueue
		core.Use(s.cfg.SubmitCost, "sq-submit", func(_, _ sim.Time) {
			s.lock.Use(s.cfg.LockHold, "queue-lock", func(_, _ sim.Time) {
				s.toDevice(cpu, req)
			})
		})
	}
}

// toDevice routes a post-submission request toward the device: through
// the attached scheduler for tenant-tagged requests, or straight to the
// FIFO depth gate otherwise.
func (s *Stack) toDevice(cpu int, req Request) {
	if s.sched != nil {
		t := req.Tenant
		if t == nil {
			t = s.fallback
		}
		if !s.sched.EnqueueSpan(t, s.costOf(req.Op), req.Span, func() { s.dispatch(cpu, req) }) {
			// Rejected at admission: fail fast rather than queue.
			if req.Done != nil {
				req.Done(nil, ErrQueueLimit)
			}
			return
		}
		s.pump()
		return
	}
	s.dispatch(cpu, req)
}

// costOf maps an op to its scheduler charge: the calibrated billing
// once the estimator is seeded, the static config costs until then.
func (s *Stack) costOf(op Op) int {
	if s.calRead > 0 {
		if op == OpWrite {
			return s.calWrite
		}
		return s.calRead
	}
	switch op {
	case OpWrite:
		return s.cfg.WriteCost
	default:
		return s.cfg.ReadCost
	}
}

// observe feeds one completed request's device service time into the
// estimator and re-derives the DRR billing. The cheaper op class is
// billed costGrain units, the dearer one costGrain times the observed
// EWMA ratio (clamped to MaxCostRatio), so billing tracks what the
// device is doing now — a device whose programs slow under aging bills
// writes more, automatically, and recovers just as automatically.
func (s *Stack) observe(op Op, start sim.Time) {
	if s.svc == nil || op == OpFlush {
		return
	}
	class := SvcRead
	if op == OpWrite {
		class = SvcWrite
	}
	now := s.eng.Now()
	s.svc.Record(class, int64(now), int64(now-start))
	r, w := s.svc.Class(SvcRead), s.svc.Class(SvcWrite)
	if r.Count() < calSeedSamples || w.Count() < calSeedSamples {
		return // still on the seed billing
	}
	// Roll both windows to now first: a class that went quiet must age
	// out of its own window rather than freeze a stale mean into the
	// ratio. Then bill from the rolling window when it holds enough of
	// both classes — it forgets the device's former self completely,
	// where the EWMA (the fallback for thin windows) carries decayed
	// memory of it.
	r.Observe(int64(now))
	w.Observe(int64(now))
	rm, wm := r.EWMA(), w.EWMA()
	if r.WindowCount() >= calSeedSamples && w.WindowCount() >= calSeedSamples {
		rm, wm = r.Mean(), w.Mean()
	}
	ratio := wm / rm
	if limit := float64(s.cfg.MaxCostRatio); ratio > limit {
		ratio = limit
	} else if ratio < 1/limit {
		ratio = 1 / limit
	}
	if ratio >= 1 {
		s.calRead = costGrain
		s.calWrite = int(math.Round(costGrain * ratio))
	} else {
		s.calRead = int(math.Round(costGrain / ratio))
		s.calWrite = costGrain
	}
}

// CalibratedCosts reports the billing currently charged per read and
// write in DRR units. Before the estimator seeds (or with Calibrate
// off) it reports the static config costs, floored at 1 the way
// sched.Enqueue bills them.
func (s *Stack) CalibratedCosts() (read, write int) {
	read, write = s.cfg.ReadCost, s.cfg.WriteCost
	if s.calRead > 0 {
		read, write = s.calRead, s.calWrite
	}
	if read < 1 {
		read = 1
	}
	if write < 1 {
		write = 1
	}
	return read, write
}

// ServiceEstimator exposes the observed device service-time estimator
// (classes SvcRead/SvcWrite), or nil with Calibrate off.
func (s *Stack) ServiceEstimator() *metrics.Estimator { return s.svc }

// pump pulls scheduled requests into free device-queue slots. It is the
// scheduler's kick target, so it also runs when rate tokens refill or
// GC deferrals expire.
func (s *Stack) pump() {
	if s.sched == nil {
		return
	}
	if s.cfg.Batch {
		// Ring path: drain up to the free device-queue depth in one
		// scheduler pass — one lock acquisition's worth of DRR
		// bookkeeping for the whole batch instead of one per op.
		if free := s.cfg.QueueDepth - s.outstanding; free > 0 {
			for _, d := range s.sched.NextBatch(free) {
				d()
			}
		}
		return
	}
	for s.outstanding < s.cfg.QueueDepth {
		d, ok := s.sched.Next()
		if !ok {
			return
		}
		d()
	}
}

// dispatch issues one request when queue depth allows.
func (s *Stack) dispatch(cpu int, req Request) {
	if s.outstanding >= s.cfg.QueueDepth {
		gated := s.eng.Now()
		s.waitq = append(s.waitq, func() {
			// Depth-gate wait is queueing before the device, same as
			// scheduler-queue time: bill it to the sched stage.
			req.Span.Stamp(obs.StageSched, s.eng.Now()-gated)
			s.dispatch(cpu, req)
		})
		return
	}
	s.outstanding++
	issued := s.eng.Now()
	var pre ftl.GCTouch
	if req.Span != nil {
		req.Span.NoteIO()
		if s.prober != nil && req.Op != OpFlush {
			pre = s.prober.GCTouch(req.LPN)
		}
	}
	complete := func(data []byte, err error) {
		if s.cfg.Batch {
			s.postCompletion(completion{req: req, cpu: cpu, data: data, err: err, issued: issued, pre: pre})
			return
		}
		s.outstanding--
		if req.Span != nil {
			req.Span.Stamp(obs.StageDevice, s.eng.Now()-issued)
			if s.prober != nil && req.Op != OpFlush {
				// Bracketing probes: the op interfered with GC if its
				// chip was collecting on either side of the I/O, and a
				// floor-hit delta means a forced collection fired in
				// its shadow.
				post := s.prober.GCTouch(req.LPN)
				chip := post.Chip
				if chip < 0 {
					chip = pre.Chip
				}
				req.Span.NoteGC(chip, pre.Collecting || post.Collecting,
					pre.Deferred || post.Deferred, post.FloorHits-pre.FloorHits)
			}
		}
		if err == nil {
			// The span from device issue to completion is the service
			// time the host can actually observe through the interface —
			// queueing inside the device included, by design: that *is*
			// what an op of this class costs the host right now.
			s.observe(req.Op, issued)
		}
		if len(s.waitq) > 0 {
			next := s.waitq[0]
			s.waitq = s.waitq[0:copy(s.waitq, s.waitq[1:])]
			next()
		} else {
			s.pump()
		}
		cost := s.cfg.CompleteCost
		if s.cfg.Mode == Direct {
			cost = s.cfg.DirectCost
		}
		s.cpus[cpu%len(s.cpus)].Use(cost, "complete", func(_, _ sim.Time) {
			s.Completed++
			if req.Done != nil {
				req.Done(data, err)
			}
		})
	}
	switch req.Op {
	case OpRead:
		s.dev.Read(req.LPN, complete)
	case OpWrite:
		s.dev.Write(req.LPN, req.Data, func(err error) { complete(nil, err) })
	case OpFlush:
		s.dev.Flush(func() { complete(nil, nil) })
	default:
		complete(nil, fmt.Errorf("blockdev: unknown op %d", req.Op))
	}
}

// ReadSync issues a read from core cpu and blocks the calling process.
func (s *Stack) ReadSync(p *sim.Proc, cpu int, lpn int64) ([]byte, error) {
	return s.ReadSyncAs(p, nil, cpu, lpn)
}

// ReadSyncAs is ReadSync with the request charged to tenant t's
// scheduler queue (t may be nil for the unscheduled path).
func (s *Stack) ReadSyncAs(p *sim.Proc, t *sched.Tenant, cpu int, lpn int64) ([]byte, error) {
	c := sim.NewCond(p.Engine())
	var data []byte
	var rerr error
	s.Submit(cpu, Request{Op: OpRead, LPN: lpn, Tenant: t, Span: s.tracer.At(p), Done: func(d []byte, err error) {
		data, rerr = d, err
		c.Fire()
	}})
	c.Await(p)
	return data, rerr
}

// WriteSync issues a write from core cpu and blocks the calling process.
func (s *Stack) WriteSync(p *sim.Proc, cpu int, lpn int64, data []byte) error {
	return s.WriteSyncAs(p, nil, cpu, lpn, data)
}

// WriteSyncAs is WriteSync with the request charged to tenant t's
// scheduler queue (t may be nil for the unscheduled path).
func (s *Stack) WriteSyncAs(p *sim.Proc, t *sched.Tenant, cpu int, lpn int64, data []byte) error {
	c := sim.NewCond(p.Engine())
	var werr error
	s.Submit(cpu, Request{Op: OpWrite, LPN: lpn, Data: data, Tenant: t, Span: s.tracer.At(p), Done: func(_ []byte, err error) {
		werr = err
		c.Fire()
	}})
	c.Await(p)
	return werr
}

// FlushSync issues a flush barrier and blocks the calling process —
// the fsync step of the conservative commit path.
func (s *Stack) FlushSync(p *sim.Proc, cpu int) error {
	c := sim.NewCond(p.Engine())
	var ferr error
	s.Submit(cpu, Request{Op: OpFlush, Span: s.tracer.At(p), Done: func(_ []byte, err error) {
		ferr = err
		c.Fire()
	}})
	c.Await(p)
	return ferr
}
