package wal

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/pcm"
	"repro/internal/sim"
)

func newPCMWAL(t *testing.T) (*sim.Engine, *WAL) {
	t.Helper()
	eng := sim.NewEngine()
	cfg := pcm.DefaultConfig()
	cfg.CapacityBytes = 1 << 22
	dev, err := pcm.New(eng, "pcm", cfg)
	if err != nil {
		t.Fatal(err)
	}
	log, err := core.NewPCMLog(pcm.NewMemBus(eng, dev), 0, 1<<21)
	if err != nil {
		t.Fatal(err)
	}
	return eng, New(eng, log)
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(kind uint8, txn uint64, key, value []byte, lsnRaw uint32) bool {
		lsn := int64(lsnRaw)
		r := Record{Kind: Kind(kind%4 + 1), Txn: txn, Key: key, Value: value}
		buf := EncodeAt(r, lsn)
		got, n, err := decode(buf, lsn)
		if err != nil || n != len(buf) {
			return false
		}
		// A stale-LSN decode must fail.
		if _, _, err := decode(buf, lsn+1); err == nil {
			return false
		}
		return got.Kind == r.Kind && got.Txn == r.Txn &&
			bytes.Equal(got.Key, r.Key) && bytes.Equal(got.Value, r.Value)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	buf := EncodeAt(Record{Kind: KindPut, Txn: 1, Key: []byte("k"), Value: []byte("v")}, 0)
	buf[len(buf)-1] ^= 0xFF
	if _, _, err := decode(buf, 0); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bit flip not detected: %v", err)
	}
	short := EncodeAt(Record{Kind: KindPut}, 0)[:10]
	if _, _, err := decode(short, 0); !errors.Is(err, ErrEndOfLog) {
		t.Fatalf("short buffer: %v", err)
	}
	bad := EncodeAt(Record{Kind: KindPut}, 0)
	bad[0] = 0x00
	if _, _, err := decode(bad, 0); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic: %v", err)
	}
}

func TestCommitMakesDurable(t *testing.T) {
	eng, w := newPCMWAL(t)
	eng.Go(func(p *sim.Proc) {
		if _, err := w.Append(p, Record{Kind: KindPut, Txn: 1, Key: []byte("a"), Value: []byte("1")}); err != nil {
			t.Errorf("append: %v", err)
		}
		if err := w.Commit(p, 1); err != nil {
			t.Errorf("commit: %v", err)
		}
		if w.Durable() != w.LogDevice().Tail() {
			t.Error("commit left undurable bytes")
		}
	})
	eng.Run()
	if w.Syncs != 1 || w.Commits != 1 {
		t.Fatalf("syncs=%d commits=%d", w.Syncs, w.Commits)
	}
}

func TestGroupCommitBatchesSyncs(t *testing.T) {
	eng, w := newPCMWAL(t)
	const clients = 16
	for i := 0; i < clients; i++ {
		i := i
		eng.Go(func(p *sim.Proc) {
			for round := 0; round < 10; round++ {
				w.Append(p, Record{Kind: KindPut, Txn: uint64(i), Key: []byte{byte(i)}, Value: []byte{byte(round)}})
				if err := w.Commit(p, uint64(i)); err != nil {
					t.Errorf("commit: %v", err)
				}
			}
		})
	}
	eng.Run()
	if w.Commits != clients*10 {
		t.Fatalf("commits = %d", w.Commits)
	}
	if w.Syncs >= w.Commits {
		t.Fatalf("no batching: %d syncs for %d commits", w.Syncs, w.Commits)
	}
}

func TestScanReplaysInOrder(t *testing.T) {
	eng, w := newPCMWAL(t)
	want := []Record{
		{Kind: KindPut, Txn: 1, Key: []byte("a"), Value: []byte("1")},
		{Kind: KindPut, Txn: 1, Key: []byte("b"), Value: []byte("2")},
		{Kind: KindCommit, Txn: 1},
		{Kind: KindDelete, Txn: 2, Key: []byte("a")},
		{Kind: KindCommit, Txn: 2},
	}
	eng.Go(func(p *sim.Proc) {
		for _, r := range want {
			if r.Kind == KindCommit {
				if err := w.Commit(p, r.Txn); err != nil {
					t.Fatalf("commit: %v", err)
				}
				continue
			}
			if _, err := w.Append(p, r); err != nil {
				t.Fatalf("append: %v", err)
			}
		}
		var got []Record
		if err := w.Scan(p, 0, func(_ int64, r Record) error {
			got = append(got, r)
			return nil
		}); err != nil {
			t.Fatalf("scan: %v", err)
		}
		if len(got) != len(want) {
			t.Fatalf("scanned %d records, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i].Kind != want[i].Kind || got[i].Txn != want[i].Txn ||
				!bytes.Equal(got[i].Key, want[i].Key) || !bytes.Equal(got[i].Value, want[i].Value) {
				t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
			}
		}
	})
	eng.Run()
}

func TestCheckpointTruncates(t *testing.T) {
	eng, w := newPCMWAL(t)
	eng.Go(func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			w.Append(p, Record{Kind: KindPut, Txn: 1, Key: []byte{byte(i)}, Value: []byte("x")})
		}
		w.Commit(p, 1)
		lsn, err := w.Checkpoint(p)
		if err != nil {
			t.Fatalf("checkpoint: %v", err)
		}
		// Scan from the checkpoint: only the checkpoint record remains.
		count := 0
		w.Scan(p, lsn, func(_ int64, r Record) error {
			count++
			if count == 1 && r.Kind != KindCheckpoint {
				t.Errorf("first record kind %d", r.Kind)
			}
			return nil
		})
		if count != 1 {
			t.Errorf("scanned %d records after checkpoint", count)
		}
	})
	eng.Run()
}

func TestPCMCommitLatencyIsMicroseconds(t *testing.T) {
	eng, w := newPCMWAL(t)
	var elapsed sim.Time
	eng.Go(func(p *sim.Proc) {
		start := p.Now()
		w.Append(p, Record{Kind: KindPut, Txn: 1, Key: []byte("k"), Value: make([]byte, 100)})
		w.Commit(p, 1)
		elapsed = p.Now() - start
	})
	eng.Run()
	if elapsed > 20*sim.Microsecond {
		t.Fatalf("PCM commit took %v; the sync path should be microseconds", elapsed)
	}
}

func TestRecoverFindsTrueTail(t *testing.T) {
	eng, w := newPCMWAL(t)
	eng.Go(func(p *sim.Proc) {
		for i := 0; i < 8; i++ {
			if _, err := w.Append(p, Record{Kind: KindPut, Txn: 1, Key: []byte{byte(i)}, Value: []byte("v")}); err != nil {
				t.Fatalf("append: %v", err)
			}
		}
		if err := w.Commit(p, 1); err != nil {
			t.Fatalf("commit: %v", err)
		}
		// Simulate a crash: rebuild a fresh WAL over the same device
		// with zeroed bookkeeping, then recover.
		w2 := New(eng, w.LogDevice())
		if err := w2.LogDevice().Reset(p, 0, 0); err != nil {
			t.Fatalf("amnesia reset: %v", err)
		}
		var got []Record
		if err := w2.Recover(p, 0, func(_ int64, r Record) error {
			got = append(got, r)
			return nil
		}); err != nil {
			t.Fatalf("recover: %v", err)
		}
		if len(got) != 9 { // 8 puts + 1 commit
			t.Fatalf("recovered %d records, want 9", len(got))
		}
		// The WAL must be appendable after recovery.
		if _, err := w2.Append(p, Record{Kind: KindPut, Txn: 2, Key: []byte("x"), Value: []byte("y")}); err != nil {
			t.Fatalf("append after recover: %v", err)
		}
		if err := w2.Commit(p, 2); err != nil {
			t.Fatalf("commit after recover: %v", err)
		}
	})
	eng.Run()
}
