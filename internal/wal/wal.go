// Package wal implements a write-ahead log with group commit over
// either synchronous-domain device of package core: PCM on the memory
// bus (the paper's §3 recommendation for "synchronous patterns: log
// writes") or a page region of a block device (the conservative
// baseline). The record format is self-describing and checksummed, so
// recovery can scan the log after a crash.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/core"
	"repro/internal/sim"
)

// Package errors.
var (
	// ErrCorrupt reports a record failing its checksum (torn write).
	ErrCorrupt = errors.New("wal: corrupt record")
	// ErrEndOfLog reports a clean end of the record stream.
	ErrEndOfLog = errors.New("wal: end of log")
)

// Kind tags a log record.
type Kind uint8

// Record kinds.
const (
	// KindPut logs a key/value insertion or update.
	KindPut Kind = iota + 1
	// KindDelete logs a key removal.
	KindDelete
	// KindCommit marks a transaction durable.
	KindCommit
	// KindCheckpoint marks a completed checkpoint; records before it
	// are redundant.
	KindCheckpoint
)

// Record is one WAL entry.
type Record struct {
	Kind  Kind
	Txn   uint64
	Key   []byte
	Value []byte
}

// header: magic(1) kind(1) txn(8) lsn(8) klen(4) vlen(4) crc(4) = 30
// bytes. The embedded LSN lets a ring-recovery scan reject stale records
// from a previous lap of the ring: a record is only valid at the offset
// it was written to.
const headerSize = 30

const magic = 0xA5

// EncodeAt serializes a record stamped with the LSN it will occupy.
func EncodeAt(r Record, lsn int64) []byte {
	buf := make([]byte, headerSize+len(r.Key)+len(r.Value))
	buf[0] = magic
	buf[1] = byte(r.Kind)
	binary.LittleEndian.PutUint64(buf[2:], r.Txn)
	binary.LittleEndian.PutUint64(buf[10:], uint64(lsn))
	binary.LittleEndian.PutUint32(buf[18:], uint32(len(r.Key)))
	binary.LittleEndian.PutUint32(buf[22:], uint32(len(r.Value)))
	copy(buf[headerSize:], r.Key)
	copy(buf[headerSize+len(r.Key):], r.Value)
	crc := crc32.ChecksumIEEE(buf[headerSize:])
	crc = crc32.Update(crc, crc32.IEEETable, buf[:26])
	binary.LittleEndian.PutUint32(buf[26:], crc)
	return buf
}

// decode parses one record from b, validating the checksum and, when
// expectLSN >= 0, the embedded LSN.
func decode(b []byte, expectLSN int64) (Record, int, error) {
	if len(b) < headerSize {
		return Record{}, 0, ErrEndOfLog
	}
	if b[0] != magic {
		return Record{}, 0, fmt.Errorf("%w: bad magic %#x", ErrCorrupt, b[0])
	}
	lsn := int64(binary.LittleEndian.Uint64(b[10:]))
	if expectLSN >= 0 && lsn != expectLSN {
		return Record{}, 0, fmt.Errorf("%w: stale record (lsn %d at offset %d)", ErrCorrupt, lsn, expectLSN)
	}
	klen := binary.LittleEndian.Uint32(b[18:])
	vlen := binary.LittleEndian.Uint32(b[22:])
	total := headerSize + int(klen) + int(vlen)
	if klen > 1<<20 || vlen > 1<<24 || len(b) < total {
		return Record{}, 0, fmt.Errorf("%w: truncated record", ErrCorrupt)
	}
	want := binary.LittleEndian.Uint32(b[26:])
	crc := crc32.ChecksumIEEE(b[headerSize:total])
	crc = crc32.Update(crc, crc32.IEEETable, b[:26])
	if crc != want {
		return Record{}, 0, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	r := Record{
		Kind: Kind(b[1]),
		Txn:  binary.LittleEndian.Uint64(b[2:]),
	}
	if klen > 0 {
		r.Key = append([]byte(nil), b[headerSize:headerSize+klen]...)
	}
	if vlen > 0 {
		r.Value = append([]byte(nil), b[headerSize+klen:total]...)
	}
	return r, total, nil
}

// WAL is the group-committing write-ahead log.
type WAL struct {
	eng *sim.Engine
	log core.LogDevice

	durable int64 // bytes made durable so far
	syncing bool
	waiters []*sim.Cond

	// Syncs counts physical sync operations; Commits counts commit
	// calls. Commits/Syncs is the group-commit batching factor.
	Syncs   int64
	Commits int64
}

// New builds a WAL over a core log device.
func New(eng *sim.Engine, log core.LogDevice) *WAL {
	return &WAL{eng: eng, log: log}
}

// LogDevice exposes the underlying device.
func (w *WAL) LogDevice() core.LogDevice { return w.log }

// Append stages a record without waiting for durability and returns its
// LSN (byte offset). The tail read and the device append happen without
// an intervening yield, so the stamped LSN always matches the offset.
func (w *WAL) Append(p *sim.Proc, r Record) (int64, error) {
	lsn := w.log.Tail()
	off, err := w.log.Append(p, EncodeAt(r, lsn))
	if err != nil {
		return 0, err
	}
	if off != lsn {
		return 0, fmt.Errorf("wal: reserved lsn %d but wrote at %d", lsn, off)
	}
	return off, nil
}

// Commit appends the transaction's commit record and blocks until it is
// durable. Concurrent committers share sync operations (group commit):
// whoever finds no sync in progress becomes the leader; committers
// arriving during a sync ride the next one.
func (w *WAL) Commit(p *sim.Proc, txn uint64) error {
	if _, err := w.Append(p, Record{Kind: KindCommit, Txn: txn}); err != nil {
		return err
	}
	w.Commits++
	target := w.log.Tail()
	for w.durable < target {
		if !w.syncing {
			w.syncing = true
			covered := w.log.Tail()
			w.Syncs++
			err := w.log.Sync(p)
			w.syncing = false
			if err == nil && covered > w.durable {
				w.durable = covered
			}
			ws := w.waiters
			w.waiters = nil
			for _, c := range ws {
				c.Fire()
			}
			if err != nil {
				return fmt.Errorf("wal: sync: %w", err)
			}
			continue
		}
		c := sim.NewCond(w.eng)
		w.waiters = append(w.waiters, c)
		c.Await(p)
	}
	return nil
}

// Durable reports the durable byte horizon.
func (w *WAL) Durable() int64 { return w.durable }

// Checkpoint appends a checkpoint record, makes it durable, and
// truncates everything before it.
func (w *WAL) Checkpoint(p *sim.Proc) (int64, error) {
	lsn, err := w.Append(p, Record{Kind: KindCheckpoint})
	if err != nil {
		return 0, err
	}
	if err := w.log.Sync(p); err != nil {
		return 0, err
	}
	w.Syncs++
	if t := w.log.Tail(); t > w.durable {
		w.durable = t
	}
	if err := w.log.Truncate(lsn); err != nil {
		return 0, err
	}
	return lsn, nil
}

// Scan replays records in [from, durable tail), invoking fn for each
// with its LSN. A corrupt record ends the scan silently (torn tail
// write: everything after it was never acknowledged).
func (w *WAL) Scan(p *sim.Proc, from int64, fn func(lsn int64, r Record) error) error {
	off := from
	for off < w.log.Tail() {
		// Read a header first, then the body.
		hdr, err := w.log.ReadAt(p, off, headerSize)
		if err != nil {
			return nil // past the readable region: stop
		}
		klen := binary.LittleEndian.Uint32(hdr[18:])
		vlen := binary.LittleEndian.Uint32(hdr[22:])
		if hdr[0] != magic || klen > 1<<20 || vlen > 1<<24 {
			return nil
		}
		total := headerSize + int(klen) + int(vlen)
		buf, err := w.log.ReadAt(p, off, total)
		if err != nil {
			return nil
		}
		rec, n, err := decode(buf, off)
		if err != nil {
			return nil
		}
		if err := fn(off, rec); err != nil {
			return err
		}
		off += int64(n)
	}
	return nil
}

// Recover scans the log from head with no trusted host bookkeeping
// (after a crash): records are validated by magic, embedded LSN and
// checksum; the scan stops at the first invalid record, which is the
// true log tail. It resets the device window to [head, tail), replays
// every valid record through fn, and leaves the WAL ready for appends.
func (w *WAL) Recover(p *sim.Proc, head int64, fn func(lsn int64, r Record) error) error {
	off := head
	for {
		hdr, err := w.log.RawReadAt(p, off, headerSize)
		if err != nil {
			break
		}
		if hdr[0] != magic {
			break
		}
		if int64(binary.LittleEndian.Uint64(hdr[10:])) != off {
			break // stale record from a previous ring lap
		}
		klen := binary.LittleEndian.Uint32(hdr[18:])
		vlen := binary.LittleEndian.Uint32(hdr[22:])
		if klen > 1<<20 || vlen > 1<<24 {
			break
		}
		total := headerSize + int(klen) + int(vlen)
		buf, err := w.log.RawReadAt(p, off, total)
		if err != nil {
			break
		}
		rec, n, err := decode(buf, off)
		if err != nil {
			break
		}
		if err := fn(off, rec); err != nil {
			return err
		}
		off += int64(n)
	}
	if err := w.log.Reset(p, head, off); err != nil {
		return fmt.Errorf("wal: reset after recovery: %w", err)
	}
	w.durable = off
	return nil
}
