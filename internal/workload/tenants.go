package workload

import (
	"fmt"

	"repro/internal/sim"
)

// TenantSpec describes one tenant's stream in a multi-tenant mix — the
// serving scenarios (many concurrent users over one device) that the
// scheduling experiments replay. The spec is deliberately free of
// scheduler types: experiments map LatencySensitive/Weight onto
// whatever arbitration they are evaluating.
type TenantSpec struct {
	// Name labels the tenant in results.
	Name string
	// LatencySensitive marks tenants whose tail latency is the metric
	// (point lookups, commits); the rest are throughput/batch tenants.
	LatencySensitive bool
	// Weight is the tenant's fair share relative to its neighbors.
	Weight int
	// Pattern is the tenant's access pattern over its span.
	Pattern Pattern
	// ThinkTime paces an open-loop tenant: one access every ThinkTime.
	// Zero means closed-loop (back-to-back at Depth outstanding).
	ThinkTime sim.Time
	// Depth is the closed-loop concurrency (outstanding requests);
	// minimum 1. Ignored for open-loop tenants.
	Depth int
	// Seed offsets the tenant's RNG so streams differ.
	Seed uint64
}

// normalize fills defaults in place.
func (t *TenantSpec) normalize(i int) {
	if t.Name == "" {
		t.Name = fmt.Sprintf("tenant%d", i)
	}
	if t.Weight < 1 {
		t.Weight = 1
	}
	if t.Depth < 1 {
		t.Depth = 1
	}
	if t.Seed == 0 {
		t.Seed = uint64(i + 1)
	}
}

// NewTenantGenerator builds the access generator for one spec over
// LPNs [0, span).
func NewTenantGenerator(spec TenantSpec, span int64) (*Generator, error) {
	return NewGenerator(spec.Pattern, span, spec.Seed)
}

// NoisyNeighborMix is the isolation scenario of experiment E15: one
// latency-sensitive tenant doing paced random point reads while n
// noisy neighbors hammer the device with closed-loop random writes.
func NoisyNeighborMix(n int) []TenantSpec {
	specs := []TenantSpec{{
		Name:             "ls-reader",
		LatencySensitive: true,
		Weight:           8,
		Pattern:          RR,
		ThinkTime:        200 * sim.Microsecond,
	}}
	for i := 0; i < n; i++ {
		specs = append(specs, TenantSpec{
			Name:    fmt.Sprintf("noisy%d", i),
			Weight:  1,
			Pattern: RW,
			Depth:   2,
		})
	}
	return normalizeAll(specs)
}

// MixedRWMix is a serving mix: latency-sensitive Zipf readers sharing
// the device with a write-heavy ingest tenant and a 50/50 updater.
func MixedRWMix() []TenantSpec {
	return normalizeAll([]TenantSpec{
		{Name: "point-reads", LatencySensitive: true, Weight: 6, Pattern: ZR, ThinkTime: 150 * sim.Microsecond},
		{Name: "ingest", Weight: 2, Pattern: SW, Depth: 4},
		{Name: "updater", Weight: 1, Pattern: MIX, Depth: 2},
	})
}

// ScanHeavyMix pits paced point reads against sequential scan tenants —
// the analytics-next-to-OLTP scenario.
func ScanHeavyMix(scans int) []TenantSpec {
	specs := []TenantSpec{{
		Name:             "point-reads",
		LatencySensitive: true,
		Weight:           8,
		Pattern:          RR,
		ThinkTime:        100 * sim.Microsecond,
	}}
	for i := 0; i < scans; i++ {
		specs = append(specs, TenantSpec{
			Name:    fmt.Sprintf("scan%d", i),
			Weight:  1,
			Pattern: SR,
			Depth:   8,
		})
	}
	return normalizeAll(specs)
}

func normalizeAll(specs []TenantSpec) []TenantSpec {
	for i := range specs {
		specs[i].normalize(i)
	}
	return specs
}
