package workload

import (
	"testing"
)

func TestPatternNames(t *testing.T) {
	names := map[Pattern]string{SR: "SR", RR: "RR", SW: "SW", RW: "RW", ZR: "ZR", ZW: "ZW", MIX: "MIX"}
	for p, want := range names {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), want)
		}
	}
	if Pattern(42).String() == "" {
		t.Error("unknown pattern should still format")
	}
}

func TestSequentialAdvancesAndWraps(t *testing.T) {
	g, err := NewGenerator(SW, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	var got []int64
	for i := 0; i < 6; i++ {
		a := g.Next()
		if a.Kind != Write {
			t.Fatal("SW produced a read")
		}
		got = append(got, a.LPN)
	}
	want := []int64{0, 1, 2, 3, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("seq = %v, want %v", got, want)
		}
	}
}

func TestStride(t *testing.T) {
	g, _ := NewGenerator(SR, 16, 1)
	g.SetStride(4)
	a, b := g.Next(), g.Next()
	if a.LPN != 0 || b.LPN != 4 {
		t.Fatalf("stride accesses %d, %d", a.LPN, b.LPN)
	}
	if a.Kind != Read {
		t.Fatal("SR produced a write")
	}
	g.SetStride(0) // ignored
	if g.stride != 4 {
		t.Fatal("zero stride should be ignored")
	}
}

func TestRandomInRangeAndDeterministic(t *testing.T) {
	g1, _ := NewGenerator(RW, 100, 7)
	g2, _ := NewGenerator(RW, 100, 7)
	for i := 0; i < 1000; i++ {
		a, b := g1.Next(), g2.Next()
		if a.LPN != b.LPN {
			t.Fatal("same seed diverged")
		}
		if a.LPN < 0 || a.LPN >= 100 {
			t.Fatalf("LPN %d out of range", a.LPN)
		}
		if a.Kind != Write {
			t.Fatal("RW produced a read")
		}
	}
}

func TestZipfSkewed(t *testing.T) {
	g, _ := NewGenerator(ZW, 1000, 3)
	counts := map[int64]int{}
	for i := 0; i < 20000; i++ {
		counts[g.Next().LPN]++
	}
	if counts[0] < 20*counts[500]+1 {
		t.Fatalf("zipf not skewed: hot=%d cold=%d", counts[0], counts[500])
	}
}

func TestMixHasBothKinds(t *testing.T) {
	g, _ := NewGenerator(MIX, 100, 9)
	reads, writes := 0, 0
	for i := 0; i < 1000; i++ {
		if g.Next().Kind == Read {
			reads++
		} else {
			writes++
		}
	}
	if reads < 300 || writes < 300 {
		t.Fatalf("mix unbalanced: %d reads, %d writes", reads, writes)
	}
}

func TestInvalidSpanRejected(t *testing.T) {
	if _, err := NewGenerator(SR, 0, 1); err == nil {
		t.Fatal("zero span accepted")
	}
}

func TestTxnGenerator(t *testing.T) {
	g, err := NewTxnGenerator(1000, 100, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	sawDelete := false
	for i := 0; i < 200; i++ {
		txn := g.Next()
		if len(txn.Puts) == 0 && len(txn.Deletes) == 0 {
			t.Fatal("empty transaction")
		}
		for k, v := range txn.Puts {
			if len(k) == 0 || len(v) != 100 {
				t.Fatalf("bad put %q -> %d bytes", k, len(v))
			}
		}
		if len(txn.Deletes) > 0 {
			sawDelete = true
		}
	}
	if !sawDelete {
		t.Fatal("no deletes in 200 txns at 5% delete rate")
	}
}

func TestTxnGeneratorRejectsBadParams(t *testing.T) {
	if _, err := NewTxnGenerator(0, 10, 1, 1); err == nil {
		t.Fatal("zero keys accepted")
	}
	if _, err := NewTxnGenerator(10, 10, 0, 1); err == nil {
		t.Fatal("zero ops accepted")
	}
}

func TestNoisyNeighborMixShape(t *testing.T) {
	specs := NoisyNeighborMix(4)
	if len(specs) != 5 {
		t.Fatalf("got %d specs, want 5", len(specs))
	}
	if !specs[0].LatencySensitive || specs[0].ThinkTime == 0 {
		t.Fatal("first tenant must be an open-loop latency-sensitive reader")
	}
	for i, s := range specs[1:] {
		if s.LatencySensitive {
			t.Fatalf("neighbor %d marked latency-sensitive", i)
		}
		if s.Depth < 1 || s.Weight < 1 || s.Seed == 0 || s.Name == "" {
			t.Fatalf("neighbor %d not normalized: %+v", i, s)
		}
	}
	if specs[0].Weight <= specs[1].Weight {
		t.Fatal("latency-sensitive tenant should outweigh a neighbor")
	}
}

func TestTenantMixGeneratorsDiffer(t *testing.T) {
	specs := NoisyNeighborMix(2)
	g1, err := NewTenantGenerator(specs[1], 1000)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := NewTenantGenerator(specs[2], 1000)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := 0; i < 16; i++ {
		if g1.Next().LPN != g2.Next().LPN {
			same = false
		}
	}
	if same {
		t.Fatal("neighbor streams identical; seeds not differentiated")
	}
}

func TestScanHeavyAndMixedMixes(t *testing.T) {
	if n := len(ScanHeavyMix(3)); n != 4 {
		t.Fatalf("scan mix size %d, want 4", n)
	}
	for _, s := range MixedRWMix() {
		if s.Name == "" || s.Weight < 1 || s.Depth < 1 {
			t.Fatalf("mixed spec not normalized: %+v", s)
		}
	}
}
