// Package workload generates the I/O patterns the experiments replay:
// the uFLIP-style microbenchmark patterns (sequential/random reads and
// writes, the matrix the authors used in refs [2,3,6] to establish the
// myths), skewed (Zipf) accesses, partitioned patterns, and a small
// transactional workload for the storage-engine experiments.
package workload

import (
	"fmt"

	"repro/internal/sim"
)

// Kind is the operation type of a generated access.
type Kind int

// Access kinds.
const (
	Read Kind = iota
	Write
)

// Access is one generated I/O.
type Access struct {
	Kind Kind
	LPN  int64
}

// Pattern names a uFLIP-style access pattern.
type Pattern int

// uFLIP base patterns.
const (
	// SR: sequential reads.
	SR Pattern = iota
	// RR: uniform random reads.
	RR
	// SW: sequential writes.
	SW
	// RW: uniform random writes.
	RW
	// ZR: Zipf-skewed reads.
	ZR
	// ZW: Zipf-skewed writes.
	ZW
	// MIX: 50/50 random reads and writes.
	MIX
)

// String names the pattern like the uFLIP papers do.
func (p Pattern) String() string {
	switch p {
	case SR:
		return "SR"
	case RR:
		return "RR"
	case SW:
		return "SW"
	case RW:
		return "RW"
	case ZR:
		return "ZR"
	case ZW:
		return "ZW"
	case MIX:
		return "MIX"
	default:
		return fmt.Sprintf("Pattern(%d)", int(p))
	}
}

// Patterns lists the standard matrix.
var Patterns = []Pattern{SR, RR, SW, RW}

// Generator produces a deterministic access stream.
type Generator struct {
	pattern Pattern
	span    int64 // LPN range [0, span)
	rng     *sim.RNG
	zipf    *sim.Zipf
	next    int64
	stride  int64
}

// NewGenerator builds a generator over LPNs [0, span).
func NewGenerator(pattern Pattern, span int64, seed uint64) (*Generator, error) {
	if span <= 0 {
		return nil, fmt.Errorf("workload: span %d must be positive", span)
	}
	g := &Generator{pattern: pattern, span: span, rng: sim.NewRNG(seed), stride: 1}
	if pattern == ZR || pattern == ZW {
		g.zipf = sim.NewZipf(g.rng, span, 0.99)
	}
	return g, nil
}

// SetStride makes sequential patterns advance by n LPNs per access
// (stride 1 is pure sequential; stride = #chips defeats static striping
// — the Myth 3 placement-collision probe).
func (g *Generator) SetStride(n int64) {
	if n > 0 {
		g.stride = n
	}
}

// Next returns the next access.
func (g *Generator) Next() Access {
	switch g.pattern {
	case SR, SW:
		lpn := g.next % g.span
		g.next += g.stride
		k := Read
		if g.pattern == SW {
			k = Write
		}
		return Access{Kind: k, LPN: lpn}
	case RR:
		return Access{Kind: Read, LPN: g.rng.Int63n(g.span)}
	case RW:
		return Access{Kind: Write, LPN: g.rng.Int63n(g.span)}
	case ZR:
		return Access{Kind: Read, LPN: g.zipf.Next()}
	case ZW:
		return Access{Kind: Write, LPN: g.zipf.Next()}
	default: // MIX
		k := Read
		if g.rng.Bool(0.5) {
			k = Write
		}
		return Access{Kind: k, LPN: g.rng.Int63n(g.span)}
	}
}

// Txn is one generated transaction for the engine experiments.
type Txn struct {
	// Puts maps keys to values.
	Puts map[string][]byte
	// Deletes lists keys to remove.
	Deletes []string
}

// TxnGenerator produces update transactions over a bounded key space,
// with Zipf-skewed key popularity (an OLTP-flavoured stream).
type TxnGenerator struct {
	rng       *sim.RNG
	zipf      *sim.Zipf
	keys      int64
	valueSize int
	opsPerTxn int
	deletePct float64
	counter   uint64
}

// NewTxnGenerator builds a transactional workload generator.
func NewTxnGenerator(keys int64, valueSize, opsPerTxn int, seed uint64) (*TxnGenerator, error) {
	if keys <= 0 || valueSize < 0 || opsPerTxn <= 0 {
		return nil, fmt.Errorf("workload: bad txn parameters")
	}
	rng := sim.NewRNG(seed)
	return &TxnGenerator{
		rng:       rng,
		zipf:      sim.NewZipf(rng, keys, 0.9),
		keys:      keys,
		valueSize: valueSize,
		opsPerTxn: opsPerTxn,
		deletePct: 0.05,
	}, nil
}

// Next generates one transaction.
func (t *TxnGenerator) Next() Txn {
	txn := Txn{Puts: make(map[string][]byte)}
	for i := 0; i < t.opsPerTxn; i++ {
		key := fmt.Sprintf("key%08d", t.zipf.Next())
		if t.rng.Bool(t.deletePct) {
			txn.Deletes = append(txn.Deletes, key)
			delete(txn.Puts, key)
			continue
		}
		t.counter++
		val := make([]byte, t.valueSize)
		for j := range val {
			val[j] = byte(t.counter + uint64(j))
		}
		txn.Puts[key] = val
	}
	return txn
}
