package faults

import (
	"reflect"
	"testing"

	"repro/internal/sim"
)

// recorder is a Target that logs calls instead of failing hardware.
type recorder struct {
	devices, chips int
	calls          []Injection
}

func (r *recorder) Devices() int  { return r.devices }
func (r *recorder) Chips(int) int { return r.chips }
func (r *recorder) KillDevice(d int) {
	r.calls = append(r.calls, Injection{Kind: KillDevice, Device: d})
}
func (r *recorder) StallDevice(d int, dur sim.Time) {
	r.calls = append(r.calls, Injection{Kind: StallDevice, Device: d, Duration: dur})
}
func (r *recorder) SlowDevice(d int, read, program, erase float64) {
	r.calls = append(r.calls, Injection{Kind: SlowDevice, Device: d, Read: read, Program: program, Erase: erase})
}
func (r *recorder) KillChip(d, c int) {
	r.calls = append(r.calls, Injection{Kind: KillChip, Device: d, Chip: c})
}
func (r *recorder) StallChip(d, c int, dur sim.Time) {
	r.calls = append(r.calls, Injection{Kind: StallChip, Device: d, Chip: c, Duration: dur})
}
func (r *recorder) SlowChip(d, c int, read, program, erase float64) {
	r.calls = append(r.calls, Injection{Kind: SlowChip, Device: d, Chip: c, Read: read, Program: program, Erase: erase})
}

func TestRandomPlanDeterministic(t *testing.T) {
	cfg := PlanConfig{Devices: 4, Chips: 8, Injections: 12, MaxKills: 2}
	for seed := uint64(1); seed < 20; seed++ {
		a := RandomPlan(seed, cfg)
		b := RandomPlan(seed, cfg)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: two draws differ:\n%v\n%v", seed, a, b)
		}
		if len(a) != cfg.Injections {
			t.Fatalf("seed %d: %d injections, want %d", seed, len(a), cfg.Injections)
		}
		kills := 0
		for _, inj := range a {
			if inj.Kind == KillDevice {
				kills++
				if inj.Frac > 0.6 {
					t.Fatalf("seed %d: kill at fraction %v, want <= 0.6 so repair has runway", seed, inj.Frac)
				}
			}
		}
		if kills > cfg.MaxKills {
			t.Fatalf("seed %d: %d kills, cap %d", seed, kills, cfg.MaxKills)
		}
	}
	if !reflect.DeepEqual(RandomPlan(7, cfg), RandomPlan(7, cfg)) {
		t.Fatal("same seed must draw the same plan")
	}
	if reflect.DeepEqual(RandomPlan(7, cfg), RandomPlan(8, cfg)) {
		t.Fatal("different seeds should draw different plans")
	}
}

func TestRandomPlanValidates(t *testing.T) {
	rec := &recorder{devices: 4, chips: 8}
	cfg := PlanConfig{Devices: rec.devices, Chips: rec.chips, Injections: 16, MaxKills: 3}
	for seed := uint64(0); seed < 50; seed++ {
		if err := RandomPlan(seed, cfg).Validate(rec); err != nil {
			t.Fatalf("seed %d: generated plan invalid: %v", seed, err)
		}
	}
	// No chips configured: chip faults must not be drawn.
	for seed := uint64(0); seed < 20; seed++ {
		for _, inj := range RandomPlan(seed, PlanConfig{Devices: 2, Injections: 8}) {
			switch inj.Kind {
			case KillChip, StallChip, SlowChip:
				t.Fatalf("seed %d: chip fault %s drawn with Chips=0", seed, inj.Kind)
			}
		}
	}
}

func TestValidateRejects(t *testing.T) {
	rec := &recorder{devices: 2, chips: 4}
	bad := []struct {
		name string
		pl   Plan
	}{
		{"device out of range", Plan{{Kind: KillDevice, Device: 2}}},
		{"negative device", Plan{{Kind: KillDevice, Device: -1}}},
		{"chip out of range", Plan{{Kind: KillChip, Device: 0, Chip: 4}}},
		{"fraction above one", Plan{{Kind: KillDevice, Device: 0, Frac: 1.5}}},
		{"stall without duration", Plan{{Kind: StallDevice, Device: 0}}},
		{"slow without factors", Plan{{Kind: SlowChip, Device: 0, Chip: 0, Frac: 0.5}}},
	}
	for _, tc := range bad {
		if err := tc.pl.Validate(rec); err == nil {
			t.Errorf("%s: Validate accepted %v", tc.name, tc.pl)
		}
	}
	if err := (Plan{}).Validate(rec); err != nil {
		t.Errorf("empty plan must validate: %v", err)
	}
}

func TestInjectorFiresOnSchedule(t *testing.T) {
	eng := sim.NewEngine()
	rec := &recorder{devices: 2, chips: 4}
	in := NewInjector(eng, rec)
	horizon := 10 * sim.Millisecond
	pl := Plan{
		{Kind: StallDevice, Device: 0, Frac: 0.25, Duration: sim.Millisecond},
		{Kind: KillDevice, Device: 1, Frac: 0.5},
		{Kind: SlowChip, Device: 0, Chip: 3, At: 9 * sim.Millisecond, Read: 2, Program: 2, Erase: 2},
	}
	if err := in.Arm(pl, 0, horizon); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if len(rec.calls) != 3 {
		t.Fatalf("%d target calls, want 3: %v", len(rec.calls), rec.calls)
	}
	if rec.calls[0].Kind != StallDevice || rec.calls[1].Kind != KillDevice || rec.calls[2].Kind != SlowChip {
		t.Fatalf("firing order wrong: %v", rec.calls)
	}
	if got := in.Fired(); len(got) != 3 {
		t.Fatalf("Fired logged %d, want 3", len(got))
	}
	// Arming an invalid plan must refuse before anything schedules.
	if err := in.Arm(Plan{{Kind: KillDevice, Device: 9}}, 0, horizon); err == nil {
		t.Fatal("Arm accepted an out-of-range device")
	}
}
