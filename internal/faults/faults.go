// Package faults is the deterministic fault-injection harness: a
// seeded schedule of device and chip failures — kills, stalls, slow
// media — armed against a serving fabric and fired at exact virtual
// times or workload fractions. Because the simulation is
// deterministic, a fault plan is perfectly reproducible: the same seed
// produces the same schedule, firing at the same instants, against the
// same interleaving of requests, so a failure scenario that trips an
// invariant replays exactly under a debugger. The harness knows
// nothing about devices beyond the Target surface (serve.Fabric
// implements it), which keeps the dependency one-way: faults drives
// the fabric, the fabric never sees the harness.
package faults

import (
	"fmt"

	"repro/internal/sim"
)

// Kind is one injectable failure mode.
type Kind int

// Failure modes, device-scoped then chip-scoped.
const (
	// KillDevice fails a whole device permanently: volatile buffer gone,
	// every future command errors — the device-death event replica
	// placement degrades and repairs on.
	KillDevice Kind = iota
	// StallDevice freezes a device's controller for Duration (firmware
	// hang): commands queue behind the stall and complete late.
	StallDevice
	// SlowDevice scales a device's flash timings by Read/Program/Erase
	// (media aging, thermal throttle) — the drift signal live migration
	// evacuates on.
	SlowDevice
	// KillChip fails a single flash die: programs and erases fail,
	// reads return uncorrectable data, the FTL retires its blocks.
	KillChip
	// StallChip freezes a single flash die for Duration.
	StallChip
	// SlowChip scales a single flash die's timings.
	SlowChip
)

// String names the kind for logs and test tables.
func (k Kind) String() string {
	switch k {
	case KillDevice:
		return "kill-device"
	case StallDevice:
		return "stall-device"
	case SlowDevice:
		return "slow-device"
	case KillChip:
		return "kill-chip"
	case StallChip:
		return "stall-chip"
	case SlowChip:
		return "slow-chip"
	}
	return "fault"
}

// Target is the fault surface the harness drives. serve.Fabric
// implements it; tests substitute recorders.
type Target interface {
	Devices() int
	Chips(d int) int
	KillDevice(d int)
	StallDevice(d int, dur sim.Time)
	SlowDevice(d int, read, program, erase float64)
	KillChip(d, chip int)
	StallChip(d, chip int, dur sim.Time)
	SlowChip(d, chip int, read, program, erase float64)
}

// Injection is one scheduled failure.
type Injection struct {
	Kind   Kind
	Device int
	Chip   int // chip-scoped kinds only
	// At fires the injection at an absolute virtual time. When zero,
	// Frac locates it instead, as a fraction of the armed window — the
	// "kill at half-window" idiom that scales with the experiment
	// horizon.
	At   sim.Time
	Frac float64
	// Duration is the stall length (stall kinds).
	Duration sim.Time
	// Read, Program, Erase are latency scale factors (slow kinds).
	Read, Program, Erase float64
}

// Plan is a fault schedule: the injections of one scenario.
type Plan []Injection

// Validate checks pl against t: device and chip indices in range,
// stalls with positive durations, slow factors positive, fractions in
// [0, 1]. An invalid plan is a harness bug, caught before anything is
// armed.
func (pl Plan) Validate(t Target) error {
	for i, inj := range pl {
		if inj.Device < 0 || inj.Device >= t.Devices() {
			return fmt.Errorf("faults: injection %d (%s): device %d out of range [0,%d)", i, inj.Kind, inj.Device, t.Devices())
		}
		if inj.Frac < 0 || inj.Frac > 1 {
			return fmt.Errorf("faults: injection %d (%s): fraction %v outside [0,1]", i, inj.Kind, inj.Frac)
		}
		switch inj.Kind {
		case KillChip, StallChip, SlowChip:
			if n := t.Chips(inj.Device); inj.Chip < 0 || inj.Chip >= n {
				return fmt.Errorf("faults: injection %d (%s): chip %d out of range [0,%d) on device %d", i, inj.Kind, inj.Chip, n, inj.Device)
			}
		}
		switch inj.Kind {
		case StallDevice, StallChip:
			if inj.Duration <= 0 {
				return fmt.Errorf("faults: injection %d (%s): stall needs a positive duration", i, inj.Kind)
			}
		case SlowDevice, SlowChip:
			if inj.Read <= 0 || inj.Program <= 0 || inj.Erase <= 0 {
				return fmt.Errorf("faults: injection %d (%s): slow factors must be positive", i, inj.Kind)
			}
		}
	}
	return nil
}

// Injector arms fault plans on a simulation engine.
type Injector struct {
	eng   *sim.Engine
	t     Target
	fired []Injection
}

// NewInjector builds an injector driving t on eng.
func NewInjector(eng *sim.Engine, t Target) *Injector {
	return &Injector{eng: eng, t: t}
}

// Arm validates pl and schedules every injection over the window
// [start, horizon]: absolute times (At) are taken as given, fractional
// placements fire at start + Frac × (horizon − start). Arming charges
// no virtual time; the failures fire from the engine's event loop at
// their instants.
func (in *Injector) Arm(pl Plan, start, horizon sim.Time) error {
	if err := pl.Validate(in.t); err != nil {
		return err
	}
	for _, inj := range pl {
		at := inj.At
		if at == 0 {
			at = start + sim.Time(inj.Frac*float64(horizon-start))
		}
		inj := inj
		in.eng.Schedule(at, func() { in.fire(inj) })
	}
	return nil
}

// fire delivers one injection to the target and logs it.
func (in *Injector) fire(inj Injection) {
	switch inj.Kind {
	case KillDevice:
		in.t.KillDevice(inj.Device)
	case StallDevice:
		in.t.StallDevice(inj.Device, inj.Duration)
	case SlowDevice:
		in.t.SlowDevice(inj.Device, inj.Read, inj.Program, inj.Erase)
	case KillChip:
		in.t.KillChip(inj.Device, inj.Chip)
	case StallChip:
		in.t.StallChip(inj.Device, inj.Chip, inj.Duration)
	case SlowChip:
		in.t.SlowChip(inj.Device, inj.Chip, inj.Read, inj.Program, inj.Erase)
	}
	in.fired = append(in.fired, inj)
}

// Fired returns the injections delivered so far, in firing order.
func (in *Injector) Fired() []Injection { return in.fired }

// PlanConfig bounds RandomPlan's draw.
type PlanConfig struct {
	// Devices is the device pool injections aim at (required).
	Devices int
	// Chips per device; 0 disables chip-scoped faults.
	Chips int
	// Injections is the schedule length (0 = 4).
	Injections int
	// MaxKills caps whole-device kills (0 = 1 — an R=2 fabric survives
	// any single death but not two, so soak tests default to one).
	MaxKills int
	// MaxStall bounds stall durations (0 = 2ms).
	MaxStall sim.Time
}

// RandomPlan derives a deterministic fault schedule from seed: kinds,
// targets, placements and magnitudes all come from one seeded stream,
// so a seed names a scenario. Device kills land in the first 60% of
// the window (the rebuild needs runway to complete before scoring);
// everything else lands anywhere in [0.1, 0.9]. Kills never repeat a
// device — killing a corpse is a no-op, and the cap is about live
// deaths.
func RandomPlan(seed uint64, cfg PlanConfig) Plan {
	if cfg.Injections <= 0 {
		cfg.Injections = 4
	}
	if cfg.MaxKills == 0 {
		cfg.MaxKills = 1
	}
	if cfg.MaxStall <= 0 {
		cfg.MaxStall = 2 * sim.Millisecond
	}
	rng := sim.NewRNG(seed)
	kinds := []Kind{StallDevice, SlowDevice}
	if cfg.Chips > 0 {
		kinds = append(kinds, KillChip, StallChip, SlowChip)
	}
	var pl Plan
	kills := 0
	killed := map[int]bool{}
	for len(pl) < cfg.Injections {
		inj := Injection{Device: rng.Intn(cfg.Devices)}
		// One draw decides kill-vs-milder so the stream stays aligned
		// whether or not the kill budget is spent.
		if rng.Float64() < 0.25 && kills < cfg.MaxKills && !killed[inj.Device] {
			inj.Kind = KillDevice
			inj.Frac = 0.1 + 0.5*rng.Float64()
			kills++
			killed[inj.Device] = true
			pl = append(pl, inj)
			continue
		}
		inj.Kind = kinds[rng.Intn(len(kinds))]
		inj.Frac = 0.1 + 0.8*rng.Float64()
		switch inj.Kind {
		case StallDevice, StallChip:
			inj.Duration = 100*sim.Microsecond + sim.Time(rng.Int63n(int64(cfg.MaxStall-100*sim.Microsecond)+1))
		case SlowDevice, SlowChip:
			inj.Read = 1 + 2*rng.Float64()
			inj.Program = 1 + 2*rng.Float64()
			inj.Erase = 1 + 2*rng.Float64()
		}
		switch inj.Kind {
		case KillChip, StallChip, SlowChip:
			inj.Chip = rng.Intn(cfg.Chips)
		}
		pl = append(pl, inj)
	}
	return pl
}
