package kvstore

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/pcm"
	"repro/internal/sim"
	"repro/internal/ssd"
	"repro/internal/wal"
)

// System bundles a Store with the devices underneath it, so experiments
// can crash the machine (losing volatile state) and reopen the store
// from the surviving media.
type System struct {
	Store *Store
	Core  *core.Store

	eng   *sim.Engine
	flash ssd.Dev

	// rebuild reopens the same assembly from surviving media (the host
	// half of a crash). Every builder installs one, so shard flavors and
	// whole-device flavors share the crash machinery.
	rebuild func(p *sim.Proc) (*System, error)

	// ownsDevice reports whether Crash may drop the device's volatile
	// state. Shard systems share their device with siblings, so the
	// owning Fabric crashes the device once for all of them.
	ownsDevice bool
}

// BuildConservative assembles the baseline: one flash device behind the
// single-queue block layer holding both the WAL (first logPages pages)
// and the tree pages; metadata uses the double-write discipline; no
// trims.
func BuildConservative(p *sim.Proc, eng *sim.Engine, flash ssd.Dev, logPages int64, cpus int, cfg Config) (*System, error) {
	cs, err := core.NewConservative(eng, flash, logPages, cpus)
	if err != nil {
		return nil, err
	}
	cfg.MetaMode = MetaDoubleWrite
	cfg.AtomicDevice = nil
	st, err := Open(p, eng, wal.New(eng, cs.Log), cs.Pages, cfg)
	if err != nil {
		return nil, err
	}
	sys := &System{Store: st, Core: cs, eng: eng, flash: flash, ownsDevice: true}
	sys.rebuild = func(p *sim.Proc) (*System, error) {
		return BuildConservative(p, eng, flash, logPages, cpus, cfg)
	}
	return sys, nil
}

// BuildProgressive assembles the paper's stack: WAL on memory-bus PCM,
// tree pages on flash via the direct path, atomic meta writes, trims
// for freed pages.
func BuildProgressive(p *sim.Proc, eng *sim.Engine, flash *ssd.Device, membus *pcm.MemBus, logBytes int64, cpus int, cfg Config) (*System, error) {
	cs, err := core.NewProgressive(eng, membus, logBytes, flash, cpus)
	if err != nil {
		return nil, err
	}
	cfg.MetaMode = MetaAtomic
	cfg.AtomicDevice = flash
	cfg.TrimFreed = true
	st, err := Open(p, eng, wal.New(eng, cs.Log), cs.Pages, cfg)
	if err != nil {
		return nil, err
	}
	sys := &System{Store: st, Core: cs, eng: eng, flash: flash, ownsDevice: true}
	sys.rebuild = func(p *sim.Proc) (*System, error) {
		return BuildProgressive(p, eng, flash, membus, logBytes, cpus, cfg)
	}
	return sys, nil
}

// Crash models power loss and restart: volatile device state is
// dropped, all host memory is forgotten, and a fresh System is opened
// from the surviving media, running recovery. The old System must not
// be used afterwards. It returns the LPNs the device lost from a
// volatile write cache (nil for safe buffers).
//
// Shard systems built over a shared device (BuildShard*) must not be
// crashed individually — dropping the shared device's volatile state
// would silently corrupt sibling shards still holding host state. Their
// Fabric crashes the device once and Reopens every shard.
func (sys *System) Crash(p *sim.Proc) (*System, []int64, error) {
	if !sys.ownsDevice {
		return nil, nil, fmt.Errorf("kvstore: shard system shares its device; crash the fabric instead")
	}
	var lost []int64
	if d, ok := sys.flash.(*ssd.Device); ok {
		lost = d.Crash()
	}
	fresh, err := sys.Reopen(p)
	if err != nil {
		return nil, lost, err
	}
	return fresh, lost, nil
}

// Reopen forgets all host memory and reopens the same assembly from the
// surviving media, running recovery. Unlike Crash it leaves the device's
// volatile state alone: callers orchestrating a multi-shard crash drop
// the device state once, then Reopen each shard.
func (sys *System) Reopen(p *sim.Proc) (*System, error) {
	sys.Store.closed = true
	return sys.rebuild(p)
}
