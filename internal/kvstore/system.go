package kvstore

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/pcm"
	"repro/internal/sim"
	"repro/internal/ssd"
	"repro/internal/wal"
)

// System bundles a Store with the devices underneath it, so experiments
// can crash the machine (losing volatile state) and reopen the store
// from the surviving media.
type System struct {
	Store *Store
	Core  *core.Store

	eng      *sim.Engine
	flash    ssd.Dev
	membus   *pcm.MemBus // nil for the conservative assembly
	logSize  int64
	cpus     int
	cfg      Config
	pcmStack bool
}

// BuildConservative assembles the baseline: one flash device behind the
// single-queue block layer holding both the WAL (first logPages pages)
// and the tree pages; metadata uses the double-write discipline; no
// trims.
func BuildConservative(p *sim.Proc, eng *sim.Engine, flash ssd.Dev, logPages int64, cpus int, cfg Config) (*System, error) {
	cs, err := core.NewConservative(eng, flash, logPages, cpus)
	if err != nil {
		return nil, err
	}
	cfg.MetaMode = MetaDoubleWrite
	cfg.AtomicDevice = nil
	st, err := Open(p, eng, wal.New(eng, cs.Log), cs.Pages, cfg)
	if err != nil {
		return nil, err
	}
	return &System{
		Store: st, Core: cs, eng: eng, flash: flash,
		logSize: logPages, cpus: cpus, cfg: cfg,
	}, nil
}

// BuildProgressive assembles the paper's stack: WAL on memory-bus PCM,
// tree pages on flash via the direct path, atomic meta writes, trims
// for freed pages.
func BuildProgressive(p *sim.Proc, eng *sim.Engine, flash *ssd.Device, membus *pcm.MemBus, logBytes int64, cpus int, cfg Config) (*System, error) {
	cs, err := core.NewProgressive(eng, membus, logBytes, flash, cpus)
	if err != nil {
		return nil, err
	}
	cfg.MetaMode = MetaAtomic
	cfg.AtomicDevice = flash
	cfg.TrimFreed = true
	st, err := Open(p, eng, wal.New(eng, cs.Log), cs.Pages, cfg)
	if err != nil {
		return nil, err
	}
	return &System{
		Store: st, Core: cs, eng: eng, flash: flash, membus: membus,
		logSize: logBytes, cpus: cpus, cfg: cfg, pcmStack: true,
	}, nil
}

// Crash models power loss and restart: volatile device state is
// dropped, all host memory is forgotten, and a fresh System is opened
// from the surviving media, running recovery. The old System must not
// be used afterwards. It returns the LPNs the device lost from a
// volatile write cache (nil for safe buffers).
func (sys *System) Crash(p *sim.Proc) (*System, []int64, error) {
	sys.Store.closed = true
	var lost []int64
	if d, ok := sys.flash.(*ssd.Device); ok {
		lost = d.Crash()
	}
	var fresh *System
	var err error
	if sys.pcmStack {
		d, ok := sys.flash.(*ssd.Device)
		if !ok {
			return nil, nil, fmt.Errorf("kvstore: progressive system without extended device")
		}
		fresh, err = BuildProgressive(p, sys.eng, d, sys.membus, sys.logSize, sys.cpus, sys.cfg)
	} else {
		fresh, err = BuildConservative(p, sys.eng, sys.flash, sys.logSize, sys.cpus, sys.cfg)
	}
	if err != nil {
		return nil, lost, err
	}
	return fresh, lost, nil
}
