package kvstore

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/sim"
)

func TestApplyBatchRoundTrip(t *testing.T) {
	withSystem(t, false, func(p *sim.Proc, sys *System) {
		ops := make([]BatchOp, 16)
		for i := range ops {
			ops[i] = BatchOp{Key: []byte(fmt.Sprintf("k%02d", i)), Value: []byte(fmt.Sprintf("v%02d", i))}
		}
		if err := sys.Store.ApplyBatch(p, ops); err != nil {
			t.Fatalf("apply: %v", err)
		}
		for i := range ops {
			got, err := sys.Store.Get(p, ops[i].Key)
			if err != nil || string(got) != string(ops[i].Value) {
				t.Fatalf("key %d: %q %v", i, got, err)
			}
		}
		if sys.Store.BatchCommits != 1 || sys.Store.BatchOps != 16 {
			t.Fatalf("batch stats %d/%d, want 1/16", sys.Store.BatchCommits, sys.Store.BatchOps)
		}
		if sys.Store.Commits != 1 {
			t.Fatalf("commits %d: a batch must be one group commit, not one per op", sys.Store.Commits)
		}
		// Deletes and later-op-wins duplicates ride the same path.
		if err := sys.Store.ApplyBatch(p, []BatchOp{
			{Key: []byte("k00"), Delete: true},
			{Key: []byte("k01"), Value: []byte("first")},
			{Key: []byte("k01"), Value: []byte("last")},
		}); err != nil {
			t.Fatalf("apply 2: %v", err)
		}
		if _, err := sys.Store.Get(p, []byte("k00")); !errors.Is(err, ErrNotFound) {
			t.Fatalf("k00 survived batched delete: %v", err)
		}
		if got, _ := sys.Store.Get(p, []byte("k01")); string(got) != "last" {
			t.Fatalf("k01 = %q, want later op to win", got)
		}
	})
}

// TestApplyBatchAtomicAcrossCrash checks the group-commit durability
// contract: a synced batch survives a crash whole — all N keys
// recovered, none partially.
func TestApplyBatchAtomicAcrossCrash(t *testing.T) {
	withSystem(t, false, func(p *sim.Proc, sys *System) {
		ops := make([]BatchOp, 12)
		for i := range ops {
			ops[i] = BatchOp{Key: []byte(fmt.Sprintf("b%02d", i)), Value: []byte(fmt.Sprintf("x%02d", i))}
		}
		if err := sys.Store.ApplyBatch(p, ops); err != nil {
			t.Fatalf("apply: %v", err)
		}
		fresh, _, err := sys.Crash(p)
		if err != nil {
			t.Fatalf("crash: %v", err)
		}
		for i := range ops {
			got, err := fresh.Store.Get(p, ops[i].Key)
			if err != nil || string(got) != string(ops[i].Value) {
				t.Fatalf("after crash, key %d: %q %v", i, got, err)
			}
		}
	})
}

// TestApplyBatchLogFullRetries checks that a batch hitting a full WAL
// rides the same checkpoint-and-retry path a plain commit does instead
// of failing upward.
func TestApplyBatchLogFullRetries(t *testing.T) {
	withSystem(t, false, func(p *sim.Proc, sys *System) {
		big := make([]byte, 512)
		for round := 0; round < 64; round++ {
			ops := make([]BatchOp, 8)
			for i := range ops {
				ops[i] = BatchOp{Key: []byte(fmt.Sprintf("r%02d-%d", round, i)), Value: big}
			}
			if err := sys.Store.ApplyBatch(p, ops); err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
		}
		if sys.Store.Checkpoints == 0 {
			t.Fatal("workload never checkpointed; log-full path untested")
		}
		got, err := sys.Store.Get(p, []byte("r63-7"))
		if err != nil || len(got) != len(big) {
			t.Fatalf("last batch key: %d bytes, %v", len(got), err)
		}
	})
}

func TestApplyBatchEmptyAndClosed(t *testing.T) {
	withSystem(t, false, func(p *sim.Proc, sys *System) {
		if err := sys.Store.ApplyBatch(p, nil); err != nil {
			t.Fatalf("empty batch: %v", err)
		}
		if sys.Store.BatchCommits != 0 {
			t.Fatal("empty batch counted as a commit")
		}
		if err := sys.Store.Close(p); err != nil {
			t.Fatalf("close: %v", err)
		}
		err := sys.Store.ApplyBatch(p, []BatchOp{{Key: []byte("k"), Value: []byte("v")}})
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("closed store: %v", err)
		}
	})
}
