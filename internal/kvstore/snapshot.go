package kvstore

// Consistent point-in-time reads while the store keeps serving — the
// region snapshot/clone primitive behind live shard migration (package
// place). The checkpointed B+tree is copy-on-write, so a snapshot is
// cheap: retain the current tree handle, copy the (small) memtable
// overlay, and keep the old tree's pages readable until release by
// quarantining anything later checkpoints free instead of trimming and
// recycling it.

import (
	"sort"

	"repro/internal/sim"
)

// Snapshot is a consistent view of the store at the instant it was
// taken. Writes committed afterwards are invisible to it; the store
// serves them concurrently. Callers must Release the snapshot so the
// pages it pins can be trimmed and recycled.
type Snapshot struct {
	s        *Store
	tree     treeHandle
	mem      map[string]memVal
	released bool
}

// treeHandle is the subset of btree.Tree a snapshot scan needs (the
// concrete tree is immutable, so holding it is the snapshot).
type treeHandle interface {
	Scan(p *sim.Proc, fn func(key, value []byte) bool) error
}

// Snapshot captures the store's current state for reading while writes
// continue. It copies the memtable layers and retains the current
// copy-on-write tree version; pages that later checkpoints free are
// quarantined — neither trimmed nor recycled — until Release, so the
// retained tree stays readable however far the live store moves on.
func (s *Store) Snapshot() (*Snapshot, error) {
	if s.closed {
		return nil, ErrClosed
	}
	mem := make(map[string]memVal, len(s.mem)+len(s.frozen))
	for k, v := range s.frozen {
		mem[k] = v
	}
	for k, v := range s.mem {
		mem[k] = v
	}
	s.snapshots++
	return &Snapshot{s: s, tree: s.tree, mem: mem}, nil
}

// Scan visits every live key of the snapshot in order. Like Store.Scan
// it merges the retained tree with the captured memtable overlay;
// unlike Store.Scan the result is pinned — concurrent commits and
// checkpoints on the live store cannot change what it reports.
func (sn *Snapshot) Scan(p *sim.Proc, fn func(key, value []byte) bool) error {
	merged := map[string][]byte{}
	if err := sn.tree.Scan(p, func(k, v []byte) bool {
		merged[string(k)] = append([]byte(nil), v...)
		return true
	}); err != nil {
		return err
	}
	for k, v := range sn.mem {
		if v.tombstone {
			delete(merged, k)
		} else {
			merged[k] = v.value
		}
	}
	keys := make([]string, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if !fn([]byte(k), merged[k]) {
			return nil
		}
	}
	return nil
}

// Release unpins the snapshot. When the last live snapshot releases,
// every quarantined page goes through the disposal it was spared —
// cache invalidation, trim (progressive assembly), recycling — at the
// store's next checkpoint. Release is idempotent.
func (sn *Snapshot) Release() {
	if sn.released {
		return
	}
	sn.released = true
	s := sn.s
	s.snapshots--
	if s.snapshots > 0 {
		return
	}
	// Hand the quarantined pages back to the normal deferred-free path:
	// the next checkpoint disposes of them after its meta flip, exactly
	// as if they had been freed by it.
	s.pendingFree = append(s.pendingFree, s.quarantine...)
	s.quarantine = nil
}

// CopyInto streams a consistent snapshot of s into dst in transactions
// of batch keys (minimum 1; 0 means 8), returning the number of keys
// copied. The source keeps serving while the copy runs: writes that
// land after the snapshot are invisible to it and are the caller's
// delta to catch up afterwards — the copy phase of live shard
// migration (place.Mover). Reads are billed to s's page store, writes
// to dst's WAL and pages, so the traffic lands on the devices (and
// scheduler tenants) each store is built over.
func (s *Store) CopyInto(p *sim.Proc, dst *Store, batch int) (int64, error) {
	if batch < 1 {
		batch = 8
	}
	sn, err := s.Snapshot()
	if err != nil {
		return 0, err
	}
	defer sn.Release()
	type kv struct{ k, v []byte }
	var pending []kv
	var copied int64
	if err := sn.Scan(p, func(k, v []byte) bool {
		pending = append(pending, kv{k: k, v: v})
		copied++
		return true
	}); err != nil {
		return copied, err
	}
	for i := 0; i < len(pending); i += batch {
		end := i + batch
		if end > len(pending) {
			end = len(pending)
		}
		tx := dst.Begin()
		for _, e := range pending[i:end] {
			tx.Put(e.k, e.v)
		}
		if err := tx.Commit(p); err != nil {
			return copied, err
		}
	}
	return copied, nil
}
