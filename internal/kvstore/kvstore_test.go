package kvstore

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/pcm"
	"repro/internal/sim"
	"repro/internal/ssd"
)

// buildFlash makes a small enterprise device with a safe buffer.
func buildFlash(t testing.TB, eng *sim.Engine) *ssd.Device {
	t.Helper()
	d, err := ssd.Build(eng, ssd.Enterprise2012, ssd.Options{
		Channels: 2, ChipsPerChannel: 2, BlocksPerPlane: 64, PagesPerBlock: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d.(*ssd.Device)
}

func buildMemBus(t testing.TB, eng *sim.Engine) *pcm.MemBus {
	t.Helper()
	cfg := pcm.DefaultConfig()
	cfg.CapacityBytes = 1 << 22
	dev, err := pcm.New(eng, "pcm0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	return pcm.NewMemBus(eng, dev)
}

// withSystem runs fn inside a proc with a freshly-built system.
func withSystem(t *testing.T, progressive bool, fn func(p *sim.Proc, sys *System)) {
	t.Helper()
	eng := sim.NewEngine()
	eng.Go(func(p *sim.Proc) {
		flash := buildFlash(t, eng)
		var sys *System
		var err error
		if progressive {
			sys, err = BuildProgressive(p, eng, flash, buildMemBus(t, eng), 1<<20, 2, Config{CheckpointBytes: 8 << 10})
		} else {
			sys, err = BuildConservative(p, eng, flash, 64, 2, Config{CheckpointBytes: 8 << 10})
		}
		if err != nil {
			t.Errorf("build: %v", err)
			return
		}
		fn(p, sys)
	})
	eng.Run()
}

func TestPutGetCommit(t *testing.T) {
	for _, prog := range []bool{false, true} {
		prog := prog
		t.Run(fmt.Sprintf("progressive=%v", prog), func(t *testing.T) {
			withSystem(t, prog, func(p *sim.Proc, sys *System) {
				tx := sys.Store.Begin()
				tx.Put([]byte("hello"), []byte("world"))
				tx.Put([]byte("answer"), []byte("42"))
				if err := tx.Commit(p); err != nil {
					t.Fatalf("commit: %v", err)
				}
				got, err := sys.Store.Get(p, []byte("hello"))
				if err != nil || string(got) != "world" {
					t.Fatalf("get: %q %v", got, err)
				}
				if _, err := sys.Store.Get(p, []byte("missing")); !errors.Is(err, ErrNotFound) {
					t.Fatalf("missing key: %v", err)
				}
			})
		})
	}
}

func TestTxnReadYourWrites(t *testing.T) {
	withSystem(t, true, func(p *sim.Proc, sys *System) {
		tx := sys.Store.Begin()
		tx.Put([]byte("k"), []byte("v1"))
		if got, err := tx.Get(p, []byte("k")); err != nil || string(got) != "v1" {
			t.Fatalf("own write invisible: %q %v", got, err)
		}
		tx.Delete([]byte("k"))
		if _, err := tx.Get(p, []byte("k")); !errors.Is(err, ErrNotFound) {
			t.Fatalf("own delete invisible: %v", err)
		}
		// Uncommitted writes invisible outside the txn.
		if _, err := sys.Store.Get(p, []byte("k")); !errors.Is(err, ErrNotFound) {
			t.Fatalf("uncommitted write leaked: %v", err)
		}
	})
}

func TestDeleteRemoves(t *testing.T) {
	withSystem(t, false, func(p *sim.Proc, sys *System) {
		tx := sys.Store.Begin()
		tx.Put([]byte("k"), []byte("v"))
		tx.Commit(p)
		tx2 := sys.Store.Begin()
		tx2.Delete([]byte("k"))
		if err := tx2.Commit(p); err != nil {
			t.Fatalf("commit: %v", err)
		}
		if _, err := sys.Store.Get(p, []byte("k")); !errors.Is(err, ErrNotFound) {
			t.Fatalf("deleted key readable: %v", err)
		}
	})
}

func TestEmptyCommitIsNoop(t *testing.T) {
	withSystem(t, true, func(p *sim.Proc, sys *System) {
		tx := sys.Store.Begin()
		if err := tx.Commit(p); err != nil {
			t.Fatalf("empty commit: %v", err)
		}
		if sys.Store.Commits != 0 {
			t.Fatal("empty commit counted")
		}
	})
}

func TestDoubleCommitRejected(t *testing.T) {
	withSystem(t, true, func(p *sim.Proc, sys *System) {
		tx := sys.Store.Begin()
		tx.Put([]byte("a"), []byte("b"))
		if err := tx.Commit(p); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(p); err == nil {
			t.Fatal("double commit accepted")
		}
	})
}

func TestCheckpointAndReadBack(t *testing.T) {
	withSystem(t, true, func(p *sim.Proc, sys *System) {
		for i := 0; i < 50; i++ {
			tx := sys.Store.Begin()
			tx.Put([]byte(fmt.Sprintf("key%03d", i)), bytes.Repeat([]byte{byte(i)}, 64))
			if err := tx.Commit(p); err != nil {
				t.Fatalf("commit %d: %v", i, err)
			}
		}
		if err := sys.Store.Checkpoint(p); err != nil {
			t.Fatalf("checkpoint: %v", err)
		}
		if sys.Store.Checkpoints == 0 {
			t.Fatal("no checkpoint recorded")
		}
		for i := 0; i < 50; i++ {
			got, err := sys.Store.Get(p, []byte(fmt.Sprintf("key%03d", i)))
			if err != nil || got[0] != byte(i) {
				t.Fatalf("key%03d after checkpoint: %v %v", i, got, err)
			}
		}
	})
}

func TestScanMergesLayers(t *testing.T) {
	withSystem(t, false, func(p *sim.Proc, sys *System) {
		// Tree layer.
		tx := sys.Store.Begin()
		tx.Put([]byte("a"), []byte("1"))
		tx.Put([]byte("b"), []byte("2"))
		tx.Commit(p)
		sys.Store.Checkpoint(p)
		// Mem layer: overwrite + delete + new.
		tx2 := sys.Store.Begin()
		tx2.Put([]byte("a"), []byte("10"))
		tx2.Delete([]byte("b"))
		tx2.Put([]byte("c"), []byte("3"))
		tx2.Commit(p)
		var keys, vals []string
		sys.Store.Scan(p, func(k, v []byte) bool {
			keys = append(keys, string(k))
			vals = append(vals, string(v))
			return true
		})
		if len(keys) != 2 || keys[0] != "a" || keys[1] != "c" || vals[0] != "10" || vals[1] != "3" {
			t.Fatalf("scan = %v %v", keys, vals)
		}
	})
}

func TestCrashRecoveryPreservesCommitted(t *testing.T) {
	for _, prog := range []bool{false, true} {
		prog := prog
		t.Run(fmt.Sprintf("progressive=%v", prog), func(t *testing.T) {
			withSystem(t, prog, func(p *sim.Proc, sys *System) {
				// Committed before checkpoint.
				tx := sys.Store.Begin()
				tx.Put([]byte("stable"), []byte("yes"))
				tx.Commit(p)
				sys.Store.Checkpoint(p)
				// Committed after checkpoint (lives only in WAL + mem).
				tx2 := sys.Store.Begin()
				tx2.Put([]byte("recent"), []byte("also"))
				tx2.Commit(p)
				// Uncommitted.
				tx3 := sys.Store.Begin()
				tx3.Put([]byte("dirty"), []byte("no"))

				fresh, _, err := sys.Crash(p)
				if err != nil {
					t.Fatalf("crash: %v", err)
				}
				if got, err := fresh.Store.Get(p, []byte("stable")); err != nil || string(got) != "yes" {
					t.Fatalf("stable: %q %v", got, err)
				}
				if got, err := fresh.Store.Get(p, []byte("recent")); err != nil || string(got) != "also" {
					t.Fatalf("recent: %q %v", got, err)
				}
				if _, err := fresh.Store.Get(p, []byte("dirty")); !errors.Is(err, ErrNotFound) {
					t.Fatalf("uncommitted survived: %v", err)
				}
				if fresh.Store.Recoveries == 0 && fresh.Store.WAL().Commits == 0 {
					t.Log("note: recovery path had nothing to replay")
				}
			})
		})
	}
}

func TestCrashDuringHeavyTrafficThenRecover(t *testing.T) {
	withSystem(t, true, func(p *sim.Proc, sys *System) {
		model := map[string]string{}
		for i := 0; i < 120; i++ {
			tx := sys.Store.Begin()
			k := fmt.Sprintf("k%03d", i%40)
			v := fmt.Sprintf("v%d", i)
			tx.Put([]byte(k), []byte(v))
			if i%7 == 6 {
				dk := fmt.Sprintf("k%03d", (i+13)%40)
				tx.Delete([]byte(dk))
				delete(model, dk)
				if dk == k {
					// Delete after put in the same txn: delete wins.
					if err := tx.Commit(p); err != nil {
						t.Fatalf("commit: %v", err)
					}
					continue
				}
			}
			model[k] = v
			if err := tx.Commit(p); err != nil {
				t.Fatalf("commit %d: %v", i, err)
			}
		}
		fresh, _, err := sys.Crash(p)
		if err != nil {
			t.Fatalf("crash: %v", err)
		}
		for k, v := range model {
			got, err := fresh.Store.Get(p, []byte(k))
			if err != nil || string(got) != v {
				t.Fatalf("%s = %q (%v), want %q", k, got, err, v)
			}
		}
	})
}

func TestCloseThenUseFails(t *testing.T) {
	withSystem(t, false, func(p *sim.Proc, sys *System) {
		if err := sys.Store.Close(p); err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Store.Get(p, []byte("x")); !errors.Is(err, ErrClosed) {
			t.Fatalf("get after close: %v", err)
		}
		tx := sys.Store.Begin()
		tx.Put([]byte("x"), []byte("y"))
		if err := tx.Commit(p); !errors.Is(err, ErrClosed) {
			t.Fatalf("commit after close: %v", err)
		}
		if err := sys.Store.Close(p); !errors.Is(err, ErrClosed) {
			t.Fatalf("double close: %v", err)
		}
	})
}

func TestConcurrentClients(t *testing.T) {
	eng := sim.NewEngine()
	var sys *System
	ready := sim.NewCond(eng)
	eng.Go(func(p *sim.Proc) {
		flash := buildFlash(t, eng)
		var err error
		sys, err = BuildProgressive(p, eng, flash, buildMemBus(t, eng), 1<<20, 4, Config{CheckpointBytes: 16 << 10})
		if err != nil {
			t.Errorf("build: %v", err)
		}
		ready.Fire()
	})
	const clients = 8
	total := 0
	for c := 0; c < clients; c++ {
		c := c
		eng.Go(func(p *sim.Proc) {
			ready.Await(p)
			for i := 0; i < 30; i++ {
				tx := sys.Store.Begin()
				tx.Put([]byte(fmt.Sprintf("c%dk%d", c, i)), []byte(fmt.Sprintf("v%d", i)))
				if err := tx.Commit(p); err != nil {
					t.Errorf("client %d commit %d: %v", c, i, err)
					return
				}
				total++
			}
		})
	}
	eng.Run()
	if total != clients*30 {
		t.Fatalf("total commits = %d", total)
	}
	// Verify all data in one last proc.
	eng.Go(func(p *sim.Proc) {
		for c := 0; c < clients; c++ {
			for i := 0; i < 30; i++ {
				got, err := sys.Store.Get(p, []byte(fmt.Sprintf("c%dk%d", c, i)))
				if err != nil || string(got) != fmt.Sprintf("v%d", i) {
					t.Errorf("c%dk%d: %q %v", c, i, got, err)
					return
				}
			}
		}
	})
	eng.Run()
}

// Property: a random op sequence with interleaved checkpoints and one
// crash behaves like a map of the committed prefix.
func TestPropertyKVStoreMatchesModelAcrossCrash(t *testing.T) {
	f := func(ops []uint16, crashAtRaw uint8) bool {
		eng := sim.NewEngine()
		okResult := true
		eng.Go(func(p *sim.Proc) {
			flash := buildFlash(t, eng)
			sys, err := BuildProgressive(p, eng, flash, buildMemBus(t, eng), 1<<20, 2, Config{CheckpointBytes: 4 << 10})
			if err != nil {
				okResult = false
				return
			}
			model := map[string]string{}
			crashAt := int(crashAtRaw)
			for i, op := range ops {
				k := fmt.Sprintf("k%02d", op%24)
				tx := sys.Store.Begin()
				if op%6 == 5 {
					tx.Delete([]byte(k))
					if err := tx.Commit(p); err != nil {
						okResult = false
						return
					}
					delete(model, k)
				} else {
					v := fmt.Sprintf("v%04d", op)
					tx.Put([]byte(k), []byte(v))
					if err := tx.Commit(p); err != nil {
						okResult = false
						return
					}
					model[k] = v
				}
				if i == crashAt {
					sys, _, err = sys.Crash(p)
					if err != nil {
						okResult = false
						return
					}
				}
			}
			for k, v := range model {
				got, err := sys.Store.Get(p, []byte(k))
				if err != nil || string(got) != v {
					okResult = false
					return
				}
			}
		})
		eng.Run()
		return okResult
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestLogFullForcesCheckpoint(t *testing.T) {
	// A tiny WAL and a huge checkpoint threshold: commits must survive
	// log exhaustion by forcing checkpoints that truncate the log.
	eng := sim.NewEngine()
	eng.Go(func(p *sim.Proc) {
		flash := buildFlash(t, eng)
		mb := buildMemBus(t, eng)
		sys, err := BuildProgressive(p, eng, flash, mb, 4<<10 /* 4 KiB log */, 1,
			Config{CheckpointBytes: 1 << 30})
		if err != nil {
			t.Fatalf("build: %v", err)
		}
		for i := 0; i < 300; i++ {
			tx := sys.Store.Begin()
			tx.Put([]byte(fmt.Sprintf("k%03d", i%50)), bytes.Repeat([]byte{byte(i)}, 64))
			if err := tx.Commit(p); err != nil {
				t.Fatalf("commit %d: %v", i, err)
			}
		}
		if sys.Store.Checkpoints == 0 {
			t.Fatal("log exhaustion never forced a checkpoint")
		}
		// All newest values must survive, including across a crash.
		fresh, _, err := sys.Crash(p)
		if err != nil {
			t.Fatalf("crash: %v", err)
		}
		for i := 250; i < 300; i++ {
			k := fmt.Sprintf("k%03d", i%50)
			got, err := fresh.Store.Get(p, []byte(k))
			if err != nil || got[0] != byte(i) {
				t.Fatalf("%s = %v (%v), want fill %d", k, got, err, byte(i))
			}
		}
	})
	eng.Run()
}
