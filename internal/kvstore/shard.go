package kvstore

// Shard assemblies: many Systems carved out of one device behind one
// shared block-layer stack, each tagged as its own scheduler tenant.
// This is the substrate of the serving fabric (package serve): the
// device fabric is shared, the stores are not.

import (
	"fmt"

	"repro/internal/blockdev"
	"repro/internal/core"
	"repro/internal/pcm"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/ssd"
	"repro/internal/wal"
)

// ShardRegion names one shard's slice of the shared hardware.
type ShardRegion struct {
	// Base and Span delimit the shard's page region [Base, Base+Span) on
	// the flash device under the shared stack.
	Base, Span int64
	// LogPages (conservative assembly) is the WAL region at the start of
	// the page span.
	LogPages int64
	// LogBase and LogBytes (progressive assembly) delimit the shard's
	// WAL region on the shared memory-bus PCM.
	LogBase, LogBytes int64
	// Tenant tags all of the shard's I/O on the shared stack's scheduler
	// (nil = untagged).
	Tenant *sched.Tenant
	// SubmitCore picks the stack core for the shard's WAL traffic.
	SubmitCore int
}

// BuildShardConservative assembles a store over region [Base, Base+Span)
// of the device under a shared stack: WAL in the first LogPages pages of
// the region, tree pages in the rest, double-write metadata. All I/O is
// tagged with the region's tenant.
func BuildShardConservative(p *sim.Proc, eng *sim.Engine, stack *blockdev.Stack, r ShardRegion, cfg Config) (*System, error) {
	if r.LogPages <= 0 || r.LogPages >= r.Span {
		return nil, fmt.Errorf("kvstore: shard log %d pages out of span %d", r.LogPages, r.Span)
	}
	blog, err := core.NewBlockLog(stack, r.Base, r.LogPages)
	if err != nil {
		return nil, err
	}
	blog.SetTenant(r.Tenant)
	blog.SetSubmitCore(r.SubmitCore)
	pages, err := core.NewStackPagesRegion(stack, r.Base+r.LogPages, r.Span-r.LogPages)
	if err != nil {
		return nil, err
	}
	pages.SetTenant(r.Tenant)
	cfg.MetaMode = MetaDoubleWrite
	cfg.AtomicDevice = nil
	st, err := Open(p, eng, wal.New(eng, blog), pages, cfg)
	if err != nil {
		return nil, err
	}
	sys := &System{
		Store: st,
		Core:  &core.Store{Log: blog, Pages: pages},
		eng:   eng,
		flash: stack.Device(),
	}
	sys.rebuild = func(p *sim.Proc) (*System, error) {
		return BuildShardConservative(p, eng, stack, r, cfg)
	}
	return sys, nil
}

// BuildShardProgressive assembles a store with its WAL on a region of
// shared memory-bus PCM and its tree pages on region [Base, Base+Span)
// of the flash device under a shared stack, metadata flipped with the
// device's atomic write at the region base, freed pages trimmed.
func BuildShardProgressive(p *sim.Proc, eng *sim.Engine, stack *blockdev.Stack, membus *pcm.MemBus, r ShardRegion, cfg Config) (*System, error) {
	dev, ok := stack.Device().(*ssd.Device)
	if !ok {
		return nil, fmt.Errorf("kvstore: progressive shard needs an extended device, have %T", stack.Device())
	}
	plog, err := core.NewPCMLog(membus, r.LogBase, r.LogBytes)
	if err != nil {
		return nil, err
	}
	pages, err := core.NewStackPagesRegion(stack, r.Base, r.Span)
	if err != nil {
		return nil, err
	}
	pages.SetTenant(r.Tenant)
	cfg.MetaMode = MetaAtomic
	cfg.AtomicDevice = dev
	cfg.AtomicBase = r.Base
	cfg.TrimFreed = true
	st, err := Open(p, eng, wal.New(eng, plog), pages, cfg)
	if err != nil {
		return nil, err
	}
	sys := &System{
		Store: st,
		Core:  &core.Store{Log: plog, Pages: pages},
		eng:   eng,
		flash: dev,
	}
	sys.rebuild = func(p *sim.Proc) (*System, error) {
		return BuildShardProgressive(p, eng, stack, membus, r, cfg)
	}
	return sys, nil
}
