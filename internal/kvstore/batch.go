package kvstore

import "repro/internal/sim"

// BatchOp is one operation of a multi-op batch commit.
type BatchOp struct {
	Key   []byte
	Value []byte
	// Delete removes Key instead of writing Value.
	Delete bool
}

// ApplyBatch commits ops as one transaction: one log append run, one
// group-commit sync, one memtable publish — the multi-op commit the
// ring path drains whole batches into, so N keys from the same drained
// batch cost one tree descent and one durability round trip instead of
// N. Atomicity is the transaction's: either every op in the batch is
// recovered after a crash or none is. Later ops win on duplicate keys,
// exactly as repeated Txn.Put calls would.
func (s *Store) ApplyBatch(p *sim.Proc, ops []BatchOp) error {
	if s.closed {
		return ErrClosed
	}
	if len(ops) == 0 {
		return nil
	}
	tx := s.Begin()
	for _, op := range ops {
		if op.Delete {
			tx.Delete(op.Key)
		} else {
			tx.Put(op.Key, op.Value)
		}
	}
	if err := tx.Commit(p); err != nil {
		return err
	}
	s.BatchCommits++
	s.BatchOps += int64(len(ops))
	return nil
}
