// Package kvstore is the database storage manager the experiments run:
// a transactional key-value engine with a write-ahead log, an in-memory
// memtable of committed-but-not-checkpointed updates, and an immutable
// copy-on-write B+tree checkpointed in batches.
//
// The engine is persistence-agnostic: it runs unchanged over the
// conservative stack (log and tree pages on one flash SSD behind the
// single-queue block layer) and over the paper's progressive stack (log
// on memory-bus PCM, tree pages on flash via the direct path, metadata
// flipped with an atomic write, dead pages trimmed). Comparing the two
// is experiments E10/E11.
package kvstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/btree"
	"repro/internal/bufpool"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/ssd"
	"repro/internal/wal"
)

// Package errors.
var (
	// ErrNotFound reports a missing key.
	ErrNotFound = errors.New("kvstore: key not found")
	// ErrClosed reports use after Close.
	ErrClosed = errors.New("kvstore: store closed")
)

// MetaMode selects how the checkpoint metadata flip is made crash-safe.
type MetaMode int

// Metadata flip strategies.
const (
	// MetaDoubleWrite ping-pongs between two meta slots with version
	// numbers and checksums, syncing after each write — the classic
	// torn-write defence on a plain block device.
	MetaDoubleWrite MetaMode = iota
	// MetaAtomic uses the device's atomic-write command: one I/O,
	// no flush choreography (Ouyang et al., cited in §3).
	MetaAtomic
)

// Config tunes the engine.
type Config struct {
	// CacheFrames sizes the page read cache.
	CacheFrames int
	// CheckpointBytes triggers a checkpoint when the memtable holds
	// this many bytes of committed updates (0 = 256 KiB).
	CheckpointBytes int
	// MetaMode selects the metadata flip strategy. MetaAtomic requires
	// the page store's device to support atomic writes.
	MetaMode MetaMode
	// AtomicDevice is the device handle for MetaAtomic (nil otherwise).
	AtomicDevice *ssd.Device
	// AtomicBase offsets MetaAtomic slot LPNs into the device's absolute
	// address space. A store owning a whole device leaves it zero; a
	// shard carved out of a shared device sets it to the shard's page
	// region base, because the atomic command addresses the device while
	// the shard's page store is region-relative.
	AtomicBase int64
	// TrimFreed sends TRIM for pages freed by checkpoints (the
	// progressive stack does; a conservative 2008-era stack did not).
	TrimFreed bool
}

// Store is the engine.
type Store struct {
	eng   *sim.Engine
	log   *wal.WAL
	pages core.PageStore
	cache *bufpool.Pool
	cfg   Config

	tree     *btree.Tree
	mem      map[string]memVal // committed, not yet checkpointed
	memBytes int
	frozen   map[string]memVal // snapshot being checkpointed

	nextTxn     uint64
	nextPage    int64
	freePages   []int64
	pendingFree []int64
	metaVer     uint64
	replayLSN   int64 // WAL replay horizon persisted in meta

	// Live snapshots (Snapshot) pin old tree versions: while any exist,
	// pages freed by checkpoints are quarantined — neither trimmed nor
	// recycled — so retained trees stay readable. Release drains the
	// quarantine back into pendingFree.
	snapshots  int
	quarantine []int64

	active        map[uint64]int64 // txn -> first LSN (for replay horizon)
	checkpointing bool
	cpWaiters     []*sim.Cond
	closed        bool

	// Stats.
	Commits     int64
	Checkpoints int64
	Recoveries  int64
	// BatchCommits counts ApplyBatch group commits; BatchOps counts the
	// operations they carried (BatchOps/BatchCommits is the realized
	// amortization factor of the ring path).
	BatchCommits int64
	BatchOps     int64
}

type memVal struct {
	value     []byte
	tombstone bool
}

// metaPages reserves the first two pages of the page store for the
// ping-pong metadata slots.
const metaPages = 2

// Open initializes a Store over a WAL and page store, running recovery
// if the devices hold a previous incarnation's state. It must be called
// from a simulated process.
func Open(p *sim.Proc, eng *sim.Engine, w *wal.WAL, pages core.PageStore, cfg Config) (*Store, error) {
	if cfg.CacheFrames <= 0 {
		cfg.CacheFrames = 256
	}
	if cfg.CheckpointBytes <= 0 {
		cfg.CheckpointBytes = 256 << 10
	}
	if cfg.MetaMode == MetaAtomic && cfg.AtomicDevice == nil {
		return nil, fmt.Errorf("kvstore: MetaAtomic requires AtomicDevice")
	}
	cache, err := bufpool.New(pages, cfg.CacheFrames)
	if err != nil {
		return nil, err
	}
	s := &Store{
		eng:    eng,
		log:    w,
		pages:  pages,
		cache:  cache,
		cfg:    cfg,
		mem:    make(map[string]memVal),
		active: make(map[uint64]int64),
	}
	if err := s.recover(p); err != nil {
		return nil, err
	}
	return s, nil
}

// WAL exposes the log (experiment instrumentation).
func (s *Store) WAL() *wal.WAL { return s.log }

// Cache exposes the page cache (experiment instrumentation).
func (s *Store) Cache() *bufpool.Pool { return s.cache }

// TreeHeight reports the current checkpointed tree height.
func (s *Store) TreeHeight() int { return s.tree.Height() }

// Close flushes a final checkpoint and stops the store.
func (s *Store) Close(p *sim.Proc) error {
	if s.closed {
		return ErrClosed
	}
	if err := s.checkpoint(p); err != nil {
		return err
	}
	s.closed = true
	return nil
}

// ---- meta page handling ----

// meta layout: magic u32, version u64, root i64, height i64, nextPage
// i64, replayLSN i64, crc u32.
const metaMagic = 0xDEADB10C

func (s *Store) encodeMeta() []byte {
	buf := make([]byte, s.pages.PageSize())
	binary.LittleEndian.PutUint32(buf[0:], metaMagic)
	binary.LittleEndian.PutUint64(buf[4:], s.metaVer)
	binary.LittleEndian.PutUint64(buf[12:], uint64(s.tree.Root()))
	binary.LittleEndian.PutUint64(buf[20:], uint64(int64(s.tree.Height())))
	binary.LittleEndian.PutUint64(buf[28:], uint64(s.nextPage))
	binary.LittleEndian.PutUint64(buf[36:], uint64(s.replayLSN))
	binary.LittleEndian.PutUint32(buf[44:], crc32.ChecksumIEEE(buf[:44]))
	return buf
}

func decodeMeta(buf []byte) (ver uint64, root int64, height int, nextPage, replayLSN int64, ok bool) {
	if len(buf) < 48 || binary.LittleEndian.Uint32(buf[0:]) != metaMagic {
		return 0, 0, 0, 0, 0, false
	}
	if crc32.ChecksumIEEE(buf[:44]) != binary.LittleEndian.Uint32(buf[44:]) {
		return 0, 0, 0, 0, 0, false
	}
	ver = binary.LittleEndian.Uint64(buf[4:])
	root = int64(binary.LittleEndian.Uint64(buf[12:]))
	height = int(int64(binary.LittleEndian.Uint64(buf[20:])))
	nextPage = int64(binary.LittleEndian.Uint64(buf[28:]))
	replayLSN = int64(binary.LittleEndian.Uint64(buf[36:]))
	return ver, root, height, nextPage, replayLSN, true
}

// writeMeta persists the metadata using the configured strategy.
func (s *Store) writeMeta(p *sim.Proc) error {
	s.metaVer++
	buf := s.encodeMeta()
	slot := int64(s.metaVer % metaPages)
	if s.cfg.MetaMode == MetaAtomic {
		// One atomic command; the safe buffer makes it durable.
		return core.AtomicWrite(p, s.cfg.AtomicDevice, []int64{s.cfg.AtomicBase + slot}, [][]byte{buf})
	}
	// Double-write discipline: write the slot, then flush so a torn
	// write cannot destroy both generations.
	if err := s.pages.WritePage(p, slot, buf); err != nil {
		return err
	}
	return s.pages.Flush(p)
}

// readMeta loads the newest valid meta slot.
func (s *Store) readMeta(p *sim.Proc) (found bool, err error) {
	var bestVer uint64
	for slot := int64(0); slot < metaPages; slot++ {
		buf, rerr := s.pages.ReadPage(p, slot)
		if rerr != nil || buf == nil {
			continue
		}
		ver, root, height, nextPage, replayLSN, ok := decodeMeta(buf)
		if !ok || ver < bestVer {
			continue
		}
		bestVer = ver
		s.metaVer = ver
		s.tree = btree.New(s.pager(), root, height)
		s.nextPage = nextPage
		s.replayLSN = replayLSN
		found = true
	}
	return found, nil
}

// ---- pager (btree storage adapter) ----

type pagerAdapter struct{ s *Store }

func (s *Store) pager() btree.Pager { return pagerAdapter{s} }

func (a pagerAdapter) PageSize() int { return a.s.pages.PageSize() }

func (a pagerAdapter) Alloc() int64 {
	s := a.s
	if n := len(s.freePages); n > 0 {
		id := s.freePages[n-1]
		s.freePages = s.freePages[:n-1]
		return id
	}
	if s.nextPage < metaPages {
		s.nextPage = metaPages
	}
	id := s.nextPage
	s.nextPage++
	return id
}

func (a pagerAdapter) WritePage(p *sim.Proc, pageID int64, data []byte) error {
	if err := a.s.pages.WritePage(p, pageID, data); err != nil {
		return err
	}
	a.s.cache.Put(pageID, append([]byte(nil), data...))
	return nil
}

func (a pagerAdapter) ReadPage(p *sim.Proc, pageID int64) ([]byte, error) {
	return a.s.cache.Get(p, pageID)
}

func (a pagerAdapter) Free(pageID int64) {
	// Deferred: recycled only after the meta flip publishes the new
	// tree, so a crash mid-checkpoint still finds the old version.
	a.s.pendingFree = append(a.s.pendingFree, pageID)
}
