package kvstore

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/btree"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/wal"
)

// Txn is a transaction: a private write set published at commit.
type Txn struct {
	s      *Store
	id     uint64
	writes map[string]memVal
	order  []string
	logged bool
}

// Begin starts a transaction.
func (s *Store) Begin() *Txn {
	s.nextTxn++
	return &Txn{s: s, id: s.nextTxn, writes: make(map[string]memVal)}
}

// ID returns the transaction identifier.
func (tx *Txn) ID() uint64 { return tx.id }

// Put stages a key/value update.
func (tx *Txn) Put(key, value []byte) {
	k := string(key)
	if _, ok := tx.writes[k]; !ok {
		tx.order = append(tx.order, k)
	}
	tx.writes[k] = memVal{value: append([]byte(nil), value...)}
}

// Delete stages a key removal.
func (tx *Txn) Delete(key []byte) {
	k := string(key)
	if _, ok := tx.writes[k]; !ok {
		tx.order = append(tx.order, k)
	}
	tx.writes[k] = memVal{tombstone: true}
}

// Get reads through the transaction: own writes, then the store.
func (tx *Txn) Get(p *sim.Proc, key []byte) ([]byte, error) {
	if v, ok := tx.writes[string(key)]; ok {
		if v.tombstone {
			return nil, ErrNotFound
		}
		return v.value, nil
	}
	return tx.s.Get(p, key)
}

// Commit logs the write set, waits for durability (group commit), and
// publishes the updates. It may run a checkpoint inline when the
// memtable is full — the write stall real engines exhibit.
func (tx *Txn) Commit(p *sim.Proc) error {
	s := tx.s
	if s.closed {
		return ErrClosed
	}
	if len(tx.order) == 0 {
		return nil
	}
	if tx.logged {
		return fmt.Errorf("kvstore: transaction %d already committed", tx.id)
	}
	tx.logged = true
	appendAll := func() error {
		for i, k := range tx.order {
			v := tx.writes[k]
			kind := wal.KindPut
			var value []byte
			if v.tombstone {
				kind = wal.KindDelete
			} else {
				value = v.value
			}
			lsn, err := s.log.Append(p, wal.Record{Kind: kind, Txn: tx.id, Key: []byte(k), Value: value})
			if err != nil {
				return err
			}
			if i == 0 {
				s.active[tx.id] = lsn
			}
		}
		return nil
	}
	if err := appendAll(); err != nil {
		if !errors.Is(err, core.ErrLogFull) {
			return fmt.Errorf("kvstore: log append: %w", err)
		}
		// The log is full: abandon our partial records (they have no
		// commit record, so they are dead weight), checkpoint to
		// truncate, then re-append from scratch.
		delete(s.active, tx.id)
		if cerr := s.checkpoint(p); cerr != nil {
			return fmt.Errorf("kvstore: forced checkpoint: %w", cerr)
		}
		if err := appendAll(); err != nil {
			return fmt.Errorf("kvstore: log append after checkpoint: %w", err)
		}
	}
	if err := s.log.Commit(p, tx.id); err != nil {
		delete(s.active, tx.id)
		return fmt.Errorf("kvstore: log commit: %w", err)
	}
	delete(s.active, tx.id)
	// Publish to the memtable.
	for k, v := range tx.writes {
		s.mem[k] = v
		s.memBytes += len(k) + len(v.value) + 16
	}
	s.Commits++
	if s.memBytes >= s.cfg.CheckpointBytes && !s.checkpointing {
		if err := s.checkpoint(p); err != nil {
			return fmt.Errorf("kvstore: checkpoint: %w", err)
		}
	}
	return nil
}

// Get reads a key from the store (memtable, frozen snapshot, then tree).
func (s *Store) Get(p *sim.Proc, key []byte) ([]byte, error) {
	if s.closed {
		return nil, ErrClosed
	}
	k := string(key)
	if v, ok := s.mem[k]; ok {
		if v.tombstone {
			return nil, ErrNotFound
		}
		return v.value, nil
	}
	if s.frozen != nil {
		if v, ok := s.frozen[k]; ok {
			if v.tombstone {
				return nil, ErrNotFound
			}
			return v.value, nil
		}
	}
	got, err := s.tree.Get(p, key)
	if err == btree.ErrNotFound {
		return nil, ErrNotFound
	}
	return got, err
}

// Scan visits all live keys in order (merging memtable layers with the
// tree) — used by verification and examples.
func (s *Store) Scan(p *sim.Proc, fn func(key, value []byte) bool) error {
	merged := map[string][]byte{}
	if err := s.tree.Scan(p, func(k, v []byte) bool {
		merged[string(k)] = append([]byte(nil), v...)
		return true
	}); err != nil {
		return err
	}
	for _, layer := range []map[string]memVal{s.frozen, s.mem} {
		for k, v := range layer {
			if v.tombstone {
				delete(merged, k)
			} else {
				merged[k] = v.value
			}
		}
	}
	keys := make([]string, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if !fn([]byte(k), merged[k]) {
			return nil
		}
	}
	return nil
}

// checkpoint drains the memtable into a new tree version and publishes
// it: apply batch (COW), flush data, flip meta, truncate WAL, trim and
// recycle old pages.
func (s *Store) checkpoint(p *sim.Proc) error {
	for s.checkpointing {
		// Another process is checkpointing; wait for it instead of
		// stacking snapshots.
		c := sim.NewCond(s.eng)
		s.cpWaiters = append(s.cpWaiters, c)
		c.Await(p)
		if s.memBytes < s.cfg.CheckpointBytes {
			return nil
		}
	}
	if len(s.mem) == 0 && s.log.LogDevice().Tail() == s.replayLSN {
		return nil // nothing to persist, nothing to truncate
	}
	s.checkpointing = true
	defer func() {
		s.checkpointing = false
		ws := s.cpWaiters
		s.cpWaiters = nil
		for _, c := range ws {
			c.Fire()
		}
	}()

	// Snapshot: later commits go to a fresh memtable. The replay horizon
	// must cover any transaction still writing its records.
	s.frozen = s.mem
	s.mem = make(map[string]memVal)
	s.memBytes = 0
	horizon := s.log.LogDevice().Tail()
	for _, first := range s.active {
		if first < horizon {
			horizon = first
		}
	}

	batch := make([]btree.Entry, 0, len(s.frozen))
	for k, v := range s.frozen {
		batch = append(batch, btree.Entry{Key: []byte(k), Value: v.value, Tombstone: v.tombstone})
	}
	sort.Slice(batch, func(i, j int) bool { return string(batch[i].Key) < string(batch[j].Key) })

	newTree, err := s.tree.ApplyBatch(p, batch)
	if err != nil {
		return err
	}
	// Data pages must be durable before the meta flip points at them.
	if err := s.pages.Flush(p); err != nil {
		return err
	}
	s.tree = newTree
	s.replayLSN = horizon
	if err := s.writeMeta(p); err != nil {
		return err
	}
	// Old tree version is dead: reclaim — unless a live snapshot still
	// reads it, in which case the pages sit in quarantine (content
	// intact, not trimmed, not reallocated) until the snapshot releases.
	freed := s.pendingFree
	s.pendingFree = nil
	if s.snapshots > 0 {
		s.quarantine = append(s.quarantine, freed...)
	} else {
		for _, id := range freed {
			s.cache.Invalidate(id)
			if s.cfg.TrimFreed {
				_ = s.pages.Trim(id)
			}
		}
		s.freePages = append(s.freePages, freed...)
	}
	s.frozen = nil
	if err := s.log.LogDevice().Truncate(horizon); err != nil {
		return err
	}
	s.Checkpoints++
	return nil
}

// Checkpoint forces a checkpoint (tests, shutdown, benchmarks).
func (s *Store) Checkpoint(p *sim.Proc) error {
	if s.closed {
		return ErrClosed
	}
	return s.checkpoint(p)
}

// recover loads the last checkpoint and replays the WAL after it.
func (s *Store) recover(p *sim.Proc) error {
	s.tree = btree.New(s.pager(), btree.NilPage, 0)
	s.nextPage = metaPages
	found, err := s.readMeta(p)
	if err != nil {
		return err
	}
	head := int64(0)
	if found {
		head = s.replayLSN
		s.Recoveries++
	}
	// Replay: collect per-transaction ops, apply in commit order.
	type op struct {
		key   string
		v     memVal
		order int
	}
	pending := map[uint64][]op{}
	seq := 0
	var committed []uint64
	err = s.log.Recover(p, head, func(_ int64, r wal.Record) error {
		switch r.Kind {
		case wal.KindPut:
			pending[r.Txn] = append(pending[r.Txn], op{key: string(r.Key), v: memVal{value: r.Value}, order: seq})
		case wal.KindDelete:
			pending[r.Txn] = append(pending[r.Txn], op{key: string(r.Key), v: memVal{tombstone: true}, order: seq})
		case wal.KindCommit:
			committed = append(committed, r.Txn)
		}
		seq++
		if r.Txn >= s.nextTxn {
			s.nextTxn = r.Txn
		}
		return nil
	})
	if err != nil {
		return err
	}
	for _, txn := range committed {
		for _, o := range pending[txn] {
			s.mem[o.key] = o.v
			s.memBytes += len(o.key) + len(o.v.value) + 16
		}
	}
	// Rebuild the free list: every allocated page not reachable from the
	// tree (and not a meta slot) is free.
	if found && s.tree.Root() != btree.NilPage {
		live := map[int64]bool{}
		if err := s.collectLive(p, s.tree.Root(), live); err != nil {
			return err
		}
		for id := int64(metaPages); id < s.nextPage; id++ {
			if !live[id] {
				s.freePages = append(s.freePages, id)
			}
		}
	} else if found {
		for id := int64(metaPages); id < s.nextPage; id++ {
			s.freePages = append(s.freePages, id)
		}
	}
	return nil
}

// collectLive walks the tree marking reachable pages.
func (s *Store) collectLive(p *sim.Proc, pageID int64, live map[int64]bool) error {
	live[pageID] = true
	data, err := s.cache.Get(p, pageID)
	if err != nil {
		return err
	}
	if data[0] != 2 { // internal page tag (see btree layout)
		return nil
	}
	children, err := btree.InternalChildren(data)
	if err != nil {
		return err
	}
	for _, c := range children {
		if err := s.collectLive(p, c, live); err != nil {
			return err
		}
	}
	return nil
}
