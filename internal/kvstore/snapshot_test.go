package kvstore

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/sim"
)

// TestSnapshotPinsStateAcrossCheckpoints: a snapshot taken mid-life
// must keep reporting the state at capture while the live store churns
// through overwrites, checkpoints, page frees and (progressive
// assembly) trims — the property live migration's copy phase stands on.
func TestSnapshotPinsStateAcrossCheckpoints(t *testing.T) {
	for _, prog := range []bool{false, true} {
		prog := prog
		t.Run(fmt.Sprintf("progressive=%v", prog), func(t *testing.T) {
			withSystem(t, prog, func(p *sim.Proc, sys *System) {
				st := sys.Store
				const n = 60
				key := func(i int) []byte { return []byte(fmt.Sprintf("k%04d", i)) }
				write := func(salt string) {
					for i := 0; i < n; i += 8 {
						tx := st.Begin()
						for j := i; j < i+8 && j < n; j++ {
							tx.Put(key(j), []byte(salt+string(key(j))))
						}
						if err := tx.Commit(p); err != nil {
							t.Fatalf("commit: %v", err)
						}
					}
					if err := st.Checkpoint(p); err != nil {
						t.Fatalf("checkpoint: %v", err)
					}
				}
				write("old-")
				sn, err := st.Snapshot()
				if err != nil {
					t.Fatalf("snapshot: %v", err)
				}
				// Churn the live store hard enough that, without the
				// quarantine, the snapshot tree's pages would have been
				// recycled (and trimmed, progressively) several times over.
				for r := 0; r < 4; r++ {
					write(fmt.Sprintf("new%d-", r))
				}
				seen := 0
				if err := sn.Scan(p, func(k, v []byte) bool {
					seen++
					if want := append([]byte("old-"), k...); !bytes.Equal(v, want) {
						t.Errorf("snapshot %s = %q, want %q", k, v, want)
						return false
					}
					return true
				}); err != nil {
					t.Fatalf("snapshot scan: %v", err)
				}
				if seen != n {
					t.Fatalf("snapshot saw %d keys, want %d", seen, n)
				}
				// The live store meanwhile serves the newest values.
				got, err := st.Get(p, key(0))
				if err != nil || !bytes.HasPrefix(got, []byte("new3-")) {
					t.Fatalf("live get = %q, %v; want new3- prefix", got, err)
				}
				// Release (idempotently) and keep writing: the quarantined
				// pages drain back through the normal free path.
				sn.Release()
				sn.Release()
				if st.snapshots != 0 {
					t.Fatalf("snapshot count = %d after release", st.snapshots)
				}
				write("final-")
				if len(st.quarantine) != 0 {
					t.Fatalf("%d pages still quarantined after release + checkpoint", len(st.quarantine))
				}
			})
		})
	}
}

// TestCopyIntoClonesLiveStore: CopyInto must reproduce the source's
// snapshot exactly in the destination, while writes landing after the
// snapshot stay out of the copy.
func TestCopyIntoClonesLiveStore(t *testing.T) {
	eng := sim.NewEngine()
	eng.Go(func(p *sim.Proc) {
		src, err := BuildConservative(p, eng, buildFlash(t, eng), 64, 2, Config{CheckpointBytes: 8 << 10})
		if err != nil {
			t.Errorf("build src: %v", err)
			return
		}
		dst, err := BuildConservative(p, eng, buildFlash(t, eng), 64, 2, Config{CheckpointBytes: 8 << 10})
		if err != nil {
			t.Errorf("build dst: %v", err)
			return
		}
		const n = 40
		key := func(i int) []byte { return []byte(fmt.Sprintf("k%04d", i)) }
		tx := src.Store.Begin()
		for i := 0; i < n; i++ {
			tx.Put(key(i), []byte(fmt.Sprintf("v%d", i)))
		}
		if err := tx.Commit(p); err != nil {
			t.Errorf("commit: %v", err)
			return
		}
		copied, err := src.Store.CopyInto(p, dst.Store, 8)
		if err != nil {
			t.Errorf("copy: %v", err)
			return
		}
		if copied != n {
			t.Errorf("copied %d keys, want %d", copied, n)
		}
		for i := 0; i < n; i++ {
			got, err := dst.Store.Get(p, key(i))
			if err != nil || !bytes.Equal(got, []byte(fmt.Sprintf("v%d", i))) {
				t.Errorf("dst %s = %q, %v", key(i), got, err)
			}
		}
	})
	eng.Run()
}
