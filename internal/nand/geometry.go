// Package nand models NAND flash chips at the fidelity the paper's
// arguments need: pages, blocks, planes and LUNs; read/program/erase
// timing; and the four flash constraints the paper lists in §2.2:
//
//	C1: reads and writes happen at page granularity;
//	C2: a block must be erased before any page in it is rewritten;
//	C3: writes within a block must be sequential;
//	C4: a block survives a limited number of erase cycles.
//
// Chips are passive timed devices: operations occupy a LUN (the unit of
// operation interleaving) for their datasheet duration on the simulation
// engine, and report completion through callbacks. Data transfer to and
// from the chip is the channel's job (package bus).
package nand

import "fmt"

// Geometry describes the physical layout of one chip.
type Geometry struct {
	PageSize       int // data bytes per page
	OOBSize        int // out-of-band (spare) bytes per page
	PagesPerBlock  int
	BlocksPerPlane int
	PlanesPerLUN   int
	LUNsPerChip    int
}

// Validate reports an error if any dimension is non-positive.
func (g Geometry) Validate() error {
	switch {
	case g.PageSize <= 0:
		return fmt.Errorf("nand: PageSize %d must be positive", g.PageSize)
	case g.PagesPerBlock <= 0:
		return fmt.Errorf("nand: PagesPerBlock %d must be positive", g.PagesPerBlock)
	case g.BlocksPerPlane <= 0:
		return fmt.Errorf("nand: BlocksPerPlane %d must be positive", g.BlocksPerPlane)
	case g.PlanesPerLUN <= 0:
		return fmt.Errorf("nand: PlanesPerLUN %d must be positive", g.PlanesPerLUN)
	case g.LUNsPerChip <= 0:
		return fmt.Errorf("nand: LUNsPerChip %d must be positive", g.LUNsPerChip)
	case g.OOBSize < 0:
		return fmt.Errorf("nand: OOBSize %d must be non-negative", g.OOBSize)
	}
	return nil
}

// BlocksPerLUN reports blocks across all planes of one LUN.
func (g Geometry) BlocksPerLUN() int { return g.BlocksPerPlane * g.PlanesPerLUN }

// PagesPerLUN reports pages in one LUN.
func (g Geometry) PagesPerLUN() int { return g.BlocksPerLUN() * g.PagesPerBlock }

// PagesPerChip reports pages in the whole chip.
func (g Geometry) PagesPerChip() int { return g.PagesPerLUN() * g.LUNsPerChip }

// BlocksPerChip reports blocks in the whole chip.
func (g Geometry) BlocksPerChip() int { return g.BlocksPerLUN() * g.LUNsPerChip }

// CapacityBytes reports the chip's data capacity in bytes.
func (g Geometry) CapacityBytes() int64 {
	return int64(g.PagesPerChip()) * int64(g.PageSize)
}

// Addr identifies one page inside a chip.
type Addr struct {
	LUN   int
	Plane int
	Block int // block index within the plane
	Page  int // page index within the block
}

// String formats the address as l/p/b/pg.
func (a Addr) String() string {
	return fmt.Sprintf("lun%d/pl%d/blk%d/pg%d", a.LUN, a.Plane, a.Block, a.Page)
}

// BlockAddr identifies one block inside a chip.
type BlockAddr struct {
	LUN   int
	Plane int
	Block int
}

// String formats the block address.
func (b BlockAddr) String() string {
	return fmt.Sprintf("lun%d/pl%d/blk%d", b.LUN, b.Plane, b.Block)
}

// Block returns a's containing block.
func (a Addr) BlockAddr() BlockAddr {
	return BlockAddr{LUN: a.LUN, Plane: a.Plane, Block: a.Block}
}
