package nand

import "repro/internal/sim"

// Timing holds datasheet operation latencies for one chip class.
// Command/address cycles and data transfer are charged by the channel
// (package bus); these are array-operation times only.
type Timing struct {
	ReadPage    sim.Time // tR: array -> page register
	ProgramPage sim.Time // tPROG: page register -> array
	EraseBlock  sim.Time // tBERS
}

// Reliability parameterizes wear-out and raw bit errors.
type Reliability struct {
	// RatedCycles is the endurance rating (C4). Erases beyond it see a
	// steeply growing failure probability.
	RatedCycles int
	// BaseBER is the raw bit error rate of a fresh block.
	BaseBER float64
	// BERGrowth scales how fast BER grows with wear: at full rated wear
	// the BER is BaseBER * (1 + BERGrowth).
	BERGrowth float64
	// FactoryBadBlockRate is the fraction of blocks marked bad at
	// manufacture.
	FactoryBadBlockRate float64
}

// Class presets, parameterized after circa-2012 datasheets. The paper's
// trend note (§2.2): density up, cell lifetime down, raw performance
// down — visible across these three presets.
var (
	// SLC: fast, 100k cycles.
	SLC = Spec{
		Name: "SLC",
		Geometry: Geometry{
			PageSize: 4096, OOBSize: 128, PagesPerBlock: 64,
			BlocksPerPlane: 1024, PlanesPerLUN: 2, LUNsPerChip: 1,
		},
		Timing:      Timing{ReadPage: 25 * sim.Microsecond, ProgramPage: 200 * sim.Microsecond, EraseBlock: 1500 * sim.Microsecond},
		Reliability: Reliability{RatedCycles: 100000, BaseBER: 1e-9, BERGrowth: 50, FactoryBadBlockRate: 0.002},
	}

	// MLC: the mainstream 2012 part used by default in experiments.
	MLC = Spec{
		Name: "MLC",
		Geometry: Geometry{
			PageSize: 4096, OOBSize: 224, PagesPerBlock: 128,
			BlocksPerPlane: 2048, PlanesPerLUN: 2, LUNsPerChip: 1,
		},
		Timing:      Timing{ReadPage: 50 * sim.Microsecond, ProgramPage: 600 * sim.Microsecond, EraseBlock: 3 * sim.Millisecond},
		Reliability: Reliability{RatedCycles: 5000, BaseBER: 1e-7, BERGrowth: 200, FactoryBadBlockRate: 0.005},
	}

	// TLC: dense, slow, 5000-cycle endurance per the paper's §2.2
	// ("5000 cycles for triple-level-cell flash") — we keep the paper's
	// number even though contemporary parts were often worse.
	TLC = Spec{
		Name: "TLC",
		Geometry: Geometry{
			PageSize: 8192, OOBSize: 448, PagesPerBlock: 256,
			BlocksPerPlane: 2048, PlanesPerLUN: 2, LUNsPerChip: 1,
		},
		Timing:      Timing{ReadPage: 75 * sim.Microsecond, ProgramPage: 1300 * sim.Microsecond, EraseBlock: 3500 * sim.Microsecond},
		Reliability: Reliability{RatedCycles: 5000, BaseBER: 5e-7, BERGrowth: 400, FactoryBadBlockRate: 0.01},
	}
)

// Spec bundles the full parameterization of one chip model.
type Spec struct {
	Name        string
	Geometry    Geometry
	Timing      Timing
	Reliability Reliability
	// SupportsRandomProgram relaxes constraint C3: old small-block SLC
	// parts (the chips inside pre-2009 devices) allowed programming the
	// pages of a block in any order, which block-mapped FTLs rely on.
	// Modern MLC/TLC chips require strictly sequential programming.
	SupportsRandomProgram bool
}

// LegacySLC is an old small-block part with random page programming, as
// found in the pre-2009 consumer devices whose FTLs were block-mapped or
// hybrid (Myth 2's "early flash-based SSDs").
var LegacySLC = Spec{
	Name: "LegacySLC",
	Geometry: Geometry{
		PageSize: 2048, OOBSize: 64, PagesPerBlock: 64,
		BlocksPerPlane: 1024, PlanesPerLUN: 1, LUNsPerChip: 1,
	},
	Timing:                Timing{ReadPage: 25 * sim.Microsecond, ProgramPage: 300 * sim.Microsecond, EraseBlock: 2 * sim.Millisecond},
	Reliability:           Reliability{RatedCycles: 50000, BaseBER: 1e-9, BERGrowth: 50, FactoryBadBlockRate: 0.002},
	SupportsRandomProgram: true,
}
