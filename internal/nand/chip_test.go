package nand

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// testSpec is a tiny chip for fast tests, with reliability disabled by
// passing a nil RNG where determinism of content matters.
func testSpec() Spec {
	return Spec{
		Name: "test",
		Geometry: Geometry{
			PageSize: 512, OOBSize: 16, PagesPerBlock: 4,
			BlocksPerPlane: 8, PlanesPerLUN: 2, LUNsPerChip: 2,
		},
		Timing: Timing{
			ReadPage:    50 * sim.Microsecond,
			ProgramPage: 600 * sim.Microsecond,
			EraseBlock:  3 * sim.Millisecond,
		},
		Reliability: Reliability{RatedCycles: 100, BaseBER: 0, BERGrowth: 0, FactoryBadBlockRate: 0},
	}
}

func newTestChip(t *testing.T) (*sim.Engine, *Chip) {
	t.Helper()
	eng := sim.NewEngine()
	c, err := NewChip(eng, testSpec(), nil, "chip0")
	if err != nil {
		t.Fatalf("NewChip: %v", err)
	}
	return eng, c
}

func page512(fill byte) []byte {
	d := make([]byte, 512)
	for i := range d {
		d[i] = fill
	}
	return d
}

func TestGeometryValidate(t *testing.T) {
	good := testSpec().Geometry
	if err := good.Validate(); err != nil {
		t.Fatalf("valid geometry rejected: %v", err)
	}
	bad := good
	bad.PageSize = 0
	if bad.Validate() == nil {
		t.Error("zero PageSize accepted")
	}
	bad = good
	bad.OOBSize = -1
	if bad.Validate() == nil {
		t.Error("negative OOBSize accepted")
	}
	bad = good
	bad.LUNsPerChip = 0
	if bad.Validate() == nil {
		t.Error("zero LUNs accepted")
	}
}

func TestGeometryDerived(t *testing.T) {
	g := testSpec().Geometry
	if g.BlocksPerLUN() != 16 {
		t.Errorf("BlocksPerLUN = %d, want 16", g.BlocksPerLUN())
	}
	if g.PagesPerLUN() != 64 {
		t.Errorf("PagesPerLUN = %d, want 64", g.PagesPerLUN())
	}
	if g.PagesPerChip() != 128 {
		t.Errorf("PagesPerChip = %d, want 128", g.PagesPerChip())
	}
	if g.BlocksPerChip() != 32 {
		t.Errorf("BlocksPerChip = %d, want 32", g.BlocksPerChip())
	}
	if g.CapacityBytes() != 128*512 {
		t.Errorf("CapacityBytes = %d", g.CapacityBytes())
	}
}

func TestAddrStrings(t *testing.T) {
	a := Addr{LUN: 1, Plane: 0, Block: 3, Page: 2}
	if a.String() != "lun1/pl0/blk3/pg2" {
		t.Errorf("Addr.String = %q", a.String())
	}
	if a.BlockAddr().String() != "lun1/pl0/blk3" {
		t.Errorf("BlockAddr.String = %q", a.BlockAddr().String())
	}
}

func TestProgramThenReadRoundTrip(t *testing.T) {
	eng, c := newTestChip(t)
	a := Addr{LUN: 0, Plane: 0, Block: 0, Page: 0}
	want := page512(0xAB)
	oob := []byte("meta")
	var got ReadResult
	if err := c.Program(a, want, oob, func(ok bool) {
		if !ok {
			t.Error("program failed")
		}
		if err := c.Read(a, func(r ReadResult, err error) {
			if err != nil {
				t.Errorf("read: %v", err)
			}
			got = r
		}); err != nil {
			t.Fatalf("Read: %v", err)
		}
	}); err != nil {
		t.Fatalf("Program: %v", err)
	}
	eng.Run()
	if !bytes.Equal(got.Data, want) {
		t.Fatal("read data differs from programmed data")
	}
	if !bytes.Equal(got.OOB, oob) {
		t.Fatalf("OOB = %q, want %q", got.OOB, oob)
	}
}

func TestReadReturnsCopy(t *testing.T) {
	eng, c := newTestChip(t)
	a := Addr{}
	orig := page512(0x11)
	c.Program(a, orig, nil, func(bool) {})
	var first []byte
	c.Read(a, func(r ReadResult, _ error) { first = r.Data })
	eng.Run()
	first[0] = 0xFF // mutate the returned slice
	var second []byte
	c.Read(a, func(r ReadResult, _ error) { second = r.Data })
	eng.Run()
	if second[0] != 0x11 {
		t.Fatal("chip data was mutated through a returned read buffer")
	}
}

func TestProgramCopiesPayload(t *testing.T) {
	eng, c := newTestChip(t)
	a := Addr{}
	buf := page512(0x22)
	c.Program(a, buf, nil, func(bool) {})
	buf[0] = 0xEE // caller reuses its buffer immediately
	var got []byte
	c.Read(a, func(r ReadResult, _ error) { got = r.Data })
	eng.Run()
	if got[0] != 0x22 {
		t.Fatal("chip aliased the caller's buffer instead of copying")
	}
}

func TestC1PageSizeEnforced(t *testing.T) {
	_, c := newTestChip(t)
	err := c.Program(Addr{}, make([]byte, 100), nil, func(bool) {})
	if !errors.Is(err, ErrPageSize) {
		t.Fatalf("short payload: err = %v, want ErrPageSize", err)
	}
}

func TestC2EraseBeforeRewrite(t *testing.T) {
	eng, c := newTestChip(t)
	a := Addr{}
	c.Program(a, nil, nil, func(bool) {})
	eng.Run()
	err := c.Program(a, nil, nil, func(bool) {})
	if !errors.Is(err, ErrPageProgrammed) {
		t.Fatalf("rewrite without erase: err = %v, want ErrPageProgrammed", err)
	}
	// After erase the page is writable again.
	c.Erase(a.BlockAddr(), func(ok bool) {
		if !ok {
			t.Error("erase failed")
		}
	})
	eng.Run()
	if err := c.Program(a, nil, nil, func(bool) {}); err != nil {
		t.Fatalf("program after erase: %v", err)
	}
	eng.Run()
}

func TestC3SequentialWithinBlock(t *testing.T) {
	eng, c := newTestChip(t)
	// Page 1 before page 0 must be rejected.
	err := c.Program(Addr{Page: 1}, nil, nil, func(bool) {})
	if !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("out-of-order program: err = %v, want ErrOutOfOrder", err)
	}
	// 0,1,2,3 in order is fine.
	for p := 0; p < 4; p++ {
		if err := c.Program(Addr{Page: p}, nil, nil, func(bool) {}); err != nil {
			t.Fatalf("sequential program page %d: %v", p, err)
		}
	}
	eng.Run()
}

func TestC4WearFailuresPastRating(t *testing.T) {
	eng := sim.NewEngine()
	spec := testSpec()
	spec.Reliability.RatedCycles = 10
	c, err := NewChip(eng, spec, sim.NewRNG(7), "worn")
	if err != nil {
		t.Fatal(err)
	}
	b := BlockAddr{}
	fails := 0
	// Hammer the block far past its rating; failures must appear.
	for i := 0; i < 400; i++ {
		if c.IsBad(b) {
			break
		}
		err := c.Erase(b, func(ok bool) {
			if !ok {
				fails++
			}
		})
		if err != nil {
			break
		}
		eng.Run()
	}
	if fails == 0 {
		t.Fatal("no wear-induced erase failures after 40x rated cycles")
	}
	if !c.IsBad(b) {
		t.Fatal("block not marked bad after erase failure")
	}
}

func TestReadOfErasedPageFails(t *testing.T) {
	eng, c := newTestChip(t)
	var gotErr error
	c.Read(Addr{}, func(_ ReadResult, err error) { gotErr = err })
	eng.Run()
	if !errors.Is(gotErr, ErrNotProgrammed) {
		t.Fatalf("read of erased page: err = %v, want ErrNotProgrammed", gotErr)
	}
}

func TestBadAddressRejected(t *testing.T) {
	_, c := newTestChip(t)
	cases := []Addr{
		{LUN: 2}, {Plane: 2}, {Block: 8}, {Page: 4}, {LUN: -1},
	}
	for _, a := range cases {
		if err := c.Read(a, nil); !errors.Is(err, ErrBadAddress) {
			t.Errorf("Read(%v): err = %v, want ErrBadAddress", a, err)
		}
	}
}

func TestOOBTooLargeRejected(t *testing.T) {
	_, c := newTestChip(t)
	err := c.Program(Addr{}, nil, make([]byte, 17), func(bool) {})
	if !errors.Is(err, ErrOOBSize) {
		t.Fatalf("oversized OOB: err = %v, want ErrOOBSize", err)
	}
}

func TestTimingReadVsProgramVsErase(t *testing.T) {
	eng, c := newTestChip(t)
	var readDone, progDone, eraseDone sim.Time
	c.Program(Addr{}, nil, nil, func(bool) { progDone = eng.Now() })
	eng.Run()
	c.Read(Addr{}, func(ReadResult, error) { readDone = eng.Now() })
	eng.Run()
	c.Erase(BlockAddr{Plane: 1}, func(bool) { eraseDone = eng.Now() })
	eng.Run()
	if progDone != 600*sim.Microsecond {
		t.Errorf("program completed at %v, want 600µs", progDone)
	}
	if readDone != progDone+50*sim.Microsecond {
		t.Errorf("read completed at %v, want prog+50µs", readDone)
	}
	if eraseDone != readDone+3*sim.Millisecond {
		t.Errorf("erase completed at %v, want read+3ms", eraseDone)
	}
}

func TestLUNSerializationAndParallelism(t *testing.T) {
	eng, c := newTestChip(t)
	// Two programs to the same LUN serialize; a program to another LUN
	// overlaps.
	var sameLUN, otherLUN sim.Time
	c.Program(Addr{LUN: 0, Block: 0}, nil, nil, func(bool) {})
	c.Program(Addr{LUN: 0, Block: 1}, nil, nil, func(bool) { sameLUN = eng.Now() })
	c.Program(Addr{LUN: 1, Block: 0}, nil, nil, func(bool) { otherLUN = eng.Now() })
	eng.Run()
	if sameLUN != 1200*sim.Microsecond {
		t.Errorf("same-LUN second program at %v, want 1200µs (serialized)", sameLUN)
	}
	if otherLUN != 600*sim.Microsecond {
		t.Errorf("other-LUN program at %v, want 600µs (parallel)", otherLUN)
	}
}

func TestEraseResetsSequentialCursor(t *testing.T) {
	eng, c := newTestChip(t)
	for p := 0; p < 4; p++ {
		c.Program(Addr{Page: p}, nil, nil, func(bool) {})
	}
	eng.Run()
	c.Erase(BlockAddr{}, func(bool) {})
	eng.Run()
	if err := c.Program(Addr{Page: 0}, nil, nil, func(bool) {}); err != nil {
		t.Fatalf("program page 0 after erase: %v", err)
	}
	eng.Run()
	if c.PageStateAt(Addr{Page: 1}) != PageErased {
		t.Fatal("page 1 should be erased")
	}
}

func TestCopyBack(t *testing.T) {
	eng, c := newTestChip(t)
	src := Addr{Block: 0, Page: 0}
	dst := Addr{Block: 1, Page: 0}
	want := page512(0x5A)
	c.Program(src, want, []byte("m"), func(bool) {})
	eng.Run()
	var done sim.Time
	if err := c.CopyBack(src, dst, func(ok bool) {
		if !ok {
			t.Error("copyback failed")
		}
		done = eng.Now()
	}); err != nil {
		t.Fatalf("CopyBack: %v", err)
	}
	eng.Run()
	if done != 600*sim.Microsecond+50*sim.Microsecond+600*sim.Microsecond {
		t.Errorf("copyback completed at %v", done)
	}
	var got ReadResult
	c.Read(dst, func(r ReadResult, _ error) { got = r })
	eng.Run()
	if !bytes.Equal(got.Data, want) || !bytes.Equal(got.OOB, []byte("m")) {
		t.Fatal("copyback did not preserve data+OOB")
	}
}

func TestCopyBackCrossPlaneRejected(t *testing.T) {
	eng, c := newTestChip(t)
	c.Program(Addr{}, nil, nil, func(bool) {})
	eng.Run()
	err := c.CopyBack(Addr{}, Addr{Plane: 1}, func(bool) {})
	if err == nil {
		t.Fatal("cross-plane copyback accepted")
	}
}

func TestBadBlockRejectsOps(t *testing.T) {
	eng, c := newTestChip(t)
	// Program a page first so the salvage read below has data.
	c.Program(Addr{Block: 2}, page512(0x42), nil, func(bool) {})
	eng.Run()
	b := BlockAddr{Block: 2}
	c.MarkBad(b)
	if err := c.Program(Addr{Block: 2, Page: 1}, nil, nil, func(bool) {}); !errors.Is(err, ErrBadBlock) {
		t.Errorf("program to bad block: %v", err)
	}
	if err := c.Erase(b, func(bool) {}); !errors.Is(err, ErrBadBlock) {
		t.Errorf("erase of bad block: %v", err)
	}
	// Reads of bad blocks are allowed: controllers salvage live data.
	var got []byte
	if err := c.Read(Addr{Block: 2}, func(r ReadResult, err error) {
		if err == nil {
			got = r.Data
		}
	}); err != nil {
		t.Errorf("salvage read of bad block rejected: %v", err)
	}
	eng.Run()
	if len(got) == 0 || got[0] != 0x42 {
		t.Error("salvage read did not return data")
	}
}

func TestFactoryBadBlocks(t *testing.T) {
	eng := sim.NewEngine()
	spec := testSpec()
	spec.Reliability.FactoryBadBlockRate = 0.5
	c, err := NewChip(eng, spec, sim.NewRNG(3), "factory")
	if err != nil {
		t.Fatal(err)
	}
	bad := 0
	g := spec.Geometry
	for l := 0; l < g.LUNsPerChip; l++ {
		for p := 0; p < g.PlanesPerLUN; p++ {
			for b := 0; b < g.BlocksPerPlane; b++ {
				if c.IsBad(BlockAddr{LUN: l, Plane: p, Block: b}) {
					bad++
				}
			}
		}
	}
	if bad < 5 || bad > 27 {
		t.Fatalf("factory bad blocks = %d of 32 at 50%% rate", bad)
	}
}

func TestStatsCount(t *testing.T) {
	eng, c := newTestChip(t)
	c.Program(Addr{}, nil, nil, func(bool) {})
	eng.Run()
	c.Read(Addr{}, func(ReadResult, error) {})
	c.Read(Addr{}, func(ReadResult, error) {})
	eng.Run()
	c.Erase(BlockAddr{Plane: 1}, func(bool) {})
	eng.Run()
	s := c.Stats()
	if s.Programs != 1 || s.Reads != 2 || s.Erases != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestBitErrorsGrowWithWear(t *testing.T) {
	eng := sim.NewEngine()
	spec := testSpec()
	spec.Reliability = Reliability{RatedCycles: 100, BaseBER: 1e-5, BERGrowth: 500}
	c, err := NewChip(eng, spec, sim.NewRNG(11), "wearber")
	if err != nil {
		t.Fatal(err)
	}
	sumFresh, sumWorn := 0, 0
	// Fresh block reads.
	a := Addr{}
	c.Program(a, nil, nil, func(bool) {})
	eng.Run()
	for i := 0; i < 200; i++ {
		c.Read(a, func(r ReadResult, _ error) { sumFresh += r.BitErrors })
		eng.Run()
	}
	// Wear the block to its rating, then read again.
	for i := 0; i < 100; i++ {
		c.Erase(a.BlockAddr(), func(bool) {})
		eng.Run()
	}
	c.Program(a, nil, nil, func(bool) {})
	eng.Run()
	for i := 0; i < 200; i++ {
		c.Read(a, func(r ReadResult, _ error) { sumWorn += r.BitErrors })
		eng.Run()
	}
	if sumWorn <= sumFresh {
		t.Fatalf("bit errors did not grow with wear: fresh=%d worn=%d", sumFresh, sumWorn)
	}
}

// Property: under any sequence of (block, fill) writes done in valid
// order, a read of each written page returns the last value written
// since the preceding erase.
func TestPropertyReadYourWrites(t *testing.T) {
	f := func(ops []uint8) bool {
		eng := sim.NewEngine()
		c, err := NewChip(eng, testSpec(), nil, "prop")
		if err != nil {
			return false
		}
		// model[block][page] = fill byte written, or -1 for erased
		type key struct{ blk, pg int }
		model := map[key]int{}
		cursor := map[int]int{} // block -> next page
		for _, op := range ops {
			blk := int(op % 8)
			fill := byte(op)
			pg, okPg := cursor[blk]
			if !okPg {
				pg = 0
			}
			if pg >= 4 {
				// Block full: erase it.
				c.Erase(BlockAddr{Block: blk}, func(ok bool) {})
				eng.Run()
				for p := 0; p < 4; p++ {
					delete(model, key{blk, p})
				}
				cursor[blk] = 0
				pg = 0
			}
			a := Addr{Block: blk, Page: pg}
			if err := c.Program(a, page512(fill), nil, func(bool) {}); err != nil {
				return false
			}
			eng.Run()
			model[key{blk, pg}] = int(fill)
			cursor[blk] = pg + 1
		}
		// Verify all modeled pages.
		for k, fill := range model {
			var got []byte
			c.Read(Addr{Block: k.blk, Page: k.pg}, func(r ReadResult, err error) {
				if err == nil {
					got = r.Data
				}
			})
			eng.Run()
			if got == nil || got[0] != byte(fill) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
