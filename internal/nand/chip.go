package nand

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/sim"
)

// Sentinel errors for constraint violations and device failures.
var (
	// ErrBadAddress reports an address outside the chip geometry.
	ErrBadAddress = errors.New("nand: address out of range")
	// ErrPageProgrammed reports a program to an already-programmed page
	// (constraint C2: erase before rewrite).
	ErrPageProgrammed = errors.New("nand: page already programmed (erase block first)")
	// ErrOutOfOrder reports a program that skips ahead or behind the
	// block's sequential-write cursor (constraint C3).
	ErrOutOfOrder = errors.New("nand: program out of order within block")
	// ErrBadBlock reports an operation on a block marked bad.
	ErrBadBlock = errors.New("nand: block is marked bad")
	// ErrPageSize reports a payload that does not match the page size.
	ErrPageSize = errors.New("nand: payload does not match page size")
	// ErrOOBSize reports OOB metadata larger than the spare area.
	ErrOOBSize = errors.New("nand: OOB metadata exceeds spare area")
	// ErrNotProgrammed reports a read of an erased (never written) page.
	// Real chips return all-ones; we surface it so FTL bugs fail loudly.
	ErrNotProgrammed = errors.New("nand: page not programmed")
)

// PageState tracks the lifecycle of one physical page.
type PageState uint8

// Page lifecycle states.
const (
	PageErased PageState = iota
	PageProgrammed
)

type page struct {
	state PageState
	data  []byte // nil when the write carried no payload
	oob   []byte
}

type block struct {
	pages      []page
	nextPage   int // C3 cursor: next programmable page index
	eraseCount int
	bad        bool
}

// lun is the unit of operation interleaving: ops on distinct LUNs
// overlap, ops on one LUN serialize (via the server).
type lun struct {
	srv    *sim.Server
	planes [][]*block // [plane][block]
}

// Stats counts chip-level operations, for verifying where traffic went.
type Stats struct {
	Reads    int64
	Programs int64
	Erases   int64
	// ProgramFails and EraseFails count wear-induced status failures.
	ProgramFails int64
	EraseFails   int64
}

// Chip is one simulated NAND flash device.
type Chip struct {
	eng  *sim.Engine
	rng  *sim.RNG
	spec Spec
	luns []*lun

	// baseTiming preserves the datasheet latencies so SetTimingScale
	// composes from a fixed origin instead of compounding.
	baseTiming Timing

	// failed marks a dead die (fault injection): every program and erase
	// reports a status failure, every read comes back with an
	// uncorrectable raw bit-error count. The chip still accepts and
	// times operations — a dead die answers the bus, it just answers
	// wrong — so the FTL's own failure handling (block retirement, ECC
	// rejection) is what surfaces the death.
	failed bool
	// stallUntil freezes the chip (firmware hang, fault injection):
	// operations submitted before it do not begin occupying their LUN
	// until it passes. In-flight operations keep the completion they
	// started with.
	stallUntil sim.Time

	stats Stats
}

// NewChip builds a chip from spec on eng. The rng drives factory bad
// blocks, wear-out failures and bit-error sampling; pass a chip-specific
// seed for reproducibility.
func NewChip(eng *sim.Engine, spec Spec, rng *sim.RNG, name string) (*Chip, error) {
	if err := spec.Geometry.Validate(); err != nil {
		return nil, err
	}
	c := &Chip{eng: eng, rng: rng, spec: spec, baseTiming: spec.Timing}
	g := spec.Geometry
	for l := 0; l < g.LUNsPerChip; l++ {
		lu := &lun{srv: sim.NewServer(eng, fmt.Sprintf("%s/lun%d", name, l))}
		for p := 0; p < g.PlanesPerLUN; p++ {
			blocks := make([]*block, g.BlocksPerPlane)
			for b := range blocks {
				blk := &block{pages: make([]page, g.PagesPerBlock)}
				if rng != nil && rng.Bool(spec.Reliability.FactoryBadBlockRate) {
					blk.bad = true
				}
				blocks[b] = blk
			}
			lu.planes = append(lu.planes, blocks)
		}
		c.luns = append(c.luns, lu)
	}
	return c, nil
}

// Spec returns the chip's parameterization. Timing reflects the current
// effective latencies (after any SetTimingScale), not the datasheet.
func (c *Chip) Spec() Spec { return c.spec }

// SetTimingScale multiplies the chip's datasheet operation latencies by
// the given factors — the service-time drift of an aging part (reads
// slow a little as ECC retries mount; programs and erases slow a lot as
// cells wear). Factors apply to the original datasheet timing, so
// repeated calls replace rather than compound; a factor <= 0 restores
// that operation's datasheet timing. Operations already in flight keep
// the latency they started with.
func (c *Chip) SetTimingScale(read, program, erase float64) {
	scale := func(t sim.Time, f float64) sim.Time {
		if f <= 0 {
			return t
		}
		return sim.Time(float64(t) * f)
	}
	c.spec.Timing.ReadPage = scale(c.baseTiming.ReadPage, read)
	c.spec.Timing.ProgramPage = scale(c.baseTiming.ProgramPage, program)
	c.spec.Timing.EraseBlock = scale(c.baseTiming.EraseBlock, erase)
}

// Fail kills the die: from now on programs and erases report status
// failures and reads return uncorrectable bit-error counts. There is no
// recovery — chip death models a failed die, not a transient.
func (c *Chip) Fail() { c.failed = true }

// Failed reports whether the die has been killed.
func (c *Chip) Failed() bool { return c.failed }

// Stall freezes the chip until the given virtual time: operations
// submitted before then queue behind the stall instead of starting.
// Later stalls extend, earlier ones never shorten.
func (c *Chip) Stall(until sim.Time) {
	if until > c.stallUntil {
		c.stallUntil = until
	}
}

// ready chains an operation's LUN occupancy behind any active stall.
func (c *Chip) ready(t sim.Time) sim.Time {
	if c.stallUntil > t {
		return c.stallUntil
	}
	return t
}

// Geometry returns the chip's layout.
func (c *Chip) Geometry() Geometry { return c.spec.Geometry }

// Stats returns a snapshot of operation counters.
func (c *Chip) Stats() Stats { return c.stats }

// LUNServer exposes the timing server of a LUN so the SSD assembly can
// trace occupancy (Figure 1) and compute utilization.
func (c *Chip) LUNServer(l int) *sim.Server { return c.luns[l].srv }

// checkAddr validates a page address.
func (c *Chip) checkAddr(a Addr) error {
	g := c.spec.Geometry
	if a.LUN < 0 || a.LUN >= g.LUNsPerChip ||
		a.Plane < 0 || a.Plane >= g.PlanesPerLUN ||
		a.Block < 0 || a.Block >= g.BlocksPerPlane ||
		a.Page < 0 || a.Page >= g.PagesPerBlock {
		return fmt.Errorf("%w: %v", ErrBadAddress, a)
	}
	return nil
}

func (c *Chip) blockAt(b BlockAddr) *block {
	return c.luns[b.LUN].planes[b.Plane][b.Block]
}

// ReadResult carries a completed page read.
type ReadResult struct {
	Data []byte // nil if the program carried no payload
	OOB  []byte
	// BitErrors is the number of raw bit errors the read suffered; the
	// ECC layer decides whether they are correctable.
	BitErrors int
}

// Read starts a page read (C1: page granularity). The LUN is busy for
// tR; done receives the result when the data is ready in the page
// register. Transfer off-chip is charged separately by the channel.
// A synchronous error means the operation was rejected and not started.
// Reads of bad blocks are permitted: controllers salvage live pages out
// of failing blocks before retiring them.
func (c *Chip) Read(a Addr, done func(ReadResult, error)) error {
	return c.ReadAs(a, "read", done)
}

// ReadAs is Read with an explicit occupancy label, so callers moving
// pages for their own housekeeping (GC relocation, hybrid-log merges)
// attribute the LUN time to their cause instead of masquerading as host
// reads. Timing and semantics are identical to Read.
func (c *Chip) ReadAs(a Addr, label string, done func(ReadResult, error)) error {
	if err := c.checkAddr(a); err != nil {
		return err
	}
	blk := c.blockAt(a.BlockAddr())
	pg := &blk.pages[a.Page]
	c.stats.Reads++
	wear := blk.eraseCount
	c.luns[a.LUN].srv.UseFrom(c.ready(c.eng.Now()), c.spec.Timing.ReadPage, label, func(_, _ sim.Time) {
		if pg.state != PageProgrammed {
			done(ReadResult{}, fmt.Errorf("%w: %v", ErrNotProgrammed, a))
			return
		}
		res := ReadResult{BitErrors: c.sampleBitErrors(wear)}
		if pg.data != nil {
			res.Data = append([]byte(nil), pg.data...)
		}
		if pg.oob != nil {
			res.OOB = append([]byte(nil), pg.oob...)
		}
		done(res, nil)
	})
	return nil
}

// Program starts a page program. data may be nil for metadata-only
// simulation (capacity experiments that do not need payloads); otherwise
// it must be exactly one page. oob is optional spare-area metadata.
// done receives ok=false on a wear-induced program status failure, in
// which case the FTL must treat the block as bad (C4 management).
func (c *Chip) Program(a Addr, data, oob []byte, done func(ok bool)) error {
	return c.ProgramFrom(c.eng.Now(), a, data, oob, done)
}

// ProgramFrom is Program with the LUN occupancy starting no earlier than
// ready — used by controllers that reserve the channel for the data
// transfer first and want the array operation chained behind it, with
// constraint validation still happening up front at submission.
func (c *Chip) ProgramFrom(ready sim.Time, a Addr, data, oob []byte, done func(ok bool)) error {
	return c.ProgramFromAs(ready, a, data, oob, "prog", done)
}

// ProgramFromAs is ProgramFrom with an explicit occupancy label (see
// ReadAs).
func (c *Chip) ProgramFromAs(ready sim.Time, a Addr, data, oob []byte, label string, done func(ok bool)) error {
	if err := c.checkAddr(a); err != nil {
		return err
	}
	g := c.spec.Geometry
	if data != nil && len(data) != g.PageSize {
		return fmt.Errorf("%w: got %d, want %d", ErrPageSize, len(data), g.PageSize)
	}
	if len(oob) > g.OOBSize {
		return fmt.Errorf("%w: got %d, max %d", ErrOOBSize, len(oob), g.OOBSize)
	}
	blk := c.blockAt(a.BlockAddr())
	if blk.bad {
		return fmt.Errorf("%w: %v", ErrBadBlock, a.BlockAddr())
	}
	pg := &blk.pages[a.Page]
	if pg.state == PageProgrammed {
		return fmt.Errorf("%w: %v", ErrPageProgrammed, a)
	}
	if a.Page != blk.nextPage && !c.spec.SupportsRandomProgram {
		return fmt.Errorf("%w: %v, expected page %d", ErrOutOfOrder, a, blk.nextPage)
	}
	// Commit state at submission: the page register is loaded and the
	// sequential cursor advances. Failure is reported at completion.
	if a.Page >= blk.nextPage {
		blk.nextPage = a.Page + 1
	}
	pg.state = PageProgrammed
	if data != nil {
		pg.data = append(pg.data[:0], data...)
	}
	if oob != nil {
		pg.oob = append([]byte(nil), oob...)
	}
	c.stats.Programs++
	fail := c.wearFailure(blk.eraseCount)
	c.luns[a.LUN].srv.UseFrom(c.ready(ready), c.spec.Timing.ProgramPage, label, func(_, _ sim.Time) {
		if fail {
			c.stats.ProgramFails++
			done(false)
			return
		}
		done(true)
	})
	return nil
}

// Erase starts a block erase (C2). done receives ok=false on wear-out
// failure; the block is then marked bad (grown bad block).
func (c *Chip) Erase(b BlockAddr, done func(ok bool)) error {
	return c.EraseFrom(c.eng.Now(), b, done)
}

// EraseFrom is Erase with the LUN occupancy starting no earlier than
// ready (chained behind the channel command cycle).
func (c *Chip) EraseFrom(ready sim.Time, b BlockAddr, done func(ok bool)) error {
	if err := c.checkAddr(Addr{LUN: b.LUN, Plane: b.Plane, Block: b.Block}); err != nil {
		return err
	}
	blk := c.blockAt(b)
	if blk.bad {
		return fmt.Errorf("%w: %v", ErrBadBlock, b)
	}
	blk.eraseCount++
	fail := c.wearFailure(blk.eraseCount)
	c.stats.Erases++
	c.luns[b.LUN].srv.UseFrom(c.ready(ready), c.spec.Timing.EraseBlock, "erase", func(_, _ sim.Time) {
		if fail {
			c.stats.EraseFails++
			blk.bad = true
			done(false)
			return
		}
		for i := range blk.pages {
			blk.pages[i] = page{}
		}
		blk.nextPage = 0
		done(true)
	})
	return nil
}

// CopyBack starts an on-chip copy (read into register, program to a new
// page in the same plane) without occupying the channel — the classic GC
// optimization. Destination constraints are the same as Program.
func (c *Chip) CopyBack(src, dst Addr, done func(ok bool)) error {
	if err := c.checkAddr(src); err != nil {
		return err
	}
	if err := c.checkAddr(dst); err != nil {
		return err
	}
	if src.LUN != dst.LUN || src.Plane != dst.Plane {
		return fmt.Errorf("nand: copyback must stay within one plane (src %v, dst %v)", src, dst)
	}
	sblk := c.blockAt(src.BlockAddr())
	dblk := c.blockAt(dst.BlockAddr())
	if dblk.bad {
		return fmt.Errorf("%w: copyback dest %v", ErrBadBlock, dst)
	}
	spg := &sblk.pages[src.Page]
	if spg.state != PageProgrammed {
		return fmt.Errorf("%w: copyback source %v", ErrNotProgrammed, src)
	}
	dpg := &dblk.pages[dst.Page]
	if dpg.state == PageProgrammed {
		return fmt.Errorf("%w: copyback dest %v", ErrPageProgrammed, dst)
	}
	if dst.Page != dblk.nextPage && !c.spec.SupportsRandomProgram {
		return fmt.Errorf("%w: copyback dest %v, expected page %d", ErrOutOfOrder, dst, dblk.nextPage)
	}
	if dst.Page >= dblk.nextPage {
		dblk.nextPage = dst.Page + 1
	}
	dpg.state = PageProgrammed
	dpg.data = append([]byte(nil), spg.data...)
	dpg.oob = append([]byte(nil), spg.oob...)
	c.stats.Reads++
	c.stats.Programs++
	fail := c.wearFailure(dblk.eraseCount)
	dur := c.spec.Timing.ReadPage + c.spec.Timing.ProgramPage
	c.luns[src.LUN].srv.UseFrom(c.ready(c.eng.Now()), dur, "copyback", func(_, _ sim.Time) {
		if fail {
			c.stats.ProgramFails++
			done(false)
			return
		}
		done(true)
	})
	return nil
}

// EraseCount reports how many times a block has been erased.
func (c *Chip) EraseCount(b BlockAddr) int { return c.blockAt(b).eraseCount }

// IsBad reports whether a block is factory- or grown-bad.
func (c *Chip) IsBad(b BlockAddr) bool { return c.blockAt(b).bad }

// MarkBad flags a block bad (the FTL does this after a program failure).
func (c *Chip) MarkBad(b BlockAddr) { c.blockAt(b).bad = true }

// PageStateAt reports the lifecycle state of a page (for tests and
// invariant checks).
func (c *Chip) PageStateAt(a Addr) PageState {
	return c.blockAt(a.BlockAddr()).pages[a.Page].state
}

// wearFailure samples whether an operation fails due to wear (C4).
// Below rated cycles the probability is negligible; past the rating it
// climbs steeply.
func (c *Chip) wearFailure(eraseCount int) bool {
	if c.failed {
		return true
	}
	if c.rng == nil {
		return false
	}
	r := c.spec.Reliability
	if r.RatedCycles <= 0 {
		return false
	}
	frac := float64(eraseCount) / float64(r.RatedCycles)
	if frac <= 1 {
		return c.rng.Bool(1e-7 * frac)
	}
	// Past rating: failure probability ramps from ~0.1% toward certainty.
	p := 0.001 * math.Pow(frac, 8)
	if p > 0.9 {
		p = 0.9
	}
	return c.rng.Bool(p)
}

// sampleBitErrors draws the raw bit error count for a read from a block
// with the given wear, using a Poisson approximation of the binomial.
func (c *Chip) sampleBitErrors(eraseCount int) int {
	if c.failed {
		// A dead die's raw read-back is garbage: no ECC corrects it.
		return c.spec.Geometry.PageSize * 8
	}
	if c.rng == nil {
		return 0
	}
	r := c.spec.Reliability
	ber := r.BaseBER
	if r.RatedCycles > 0 {
		frac := float64(eraseCount) / float64(r.RatedCycles)
		ber *= 1 + r.BERGrowth*frac*frac
	}
	lambda := ber * float64(c.spec.Geometry.PageSize*8)
	return c.poisson(lambda)
}

// poisson samples a Poisson(lambda) variate (Knuth's method; lambda is
// small in practice).
func (c *Chip) poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= c.rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 1<<20 {
			return k // defensive: lambda absurdly large
		}
	}
}
