// Package sched is a multi-tenant I/O scheduler for the submission
// path. The paper's thesis is that the block interface must die because
// it hides the information both sides need to schedule well; once host
// and device are communicating peers (package core), the host can run
// real per-tenant arbitration right above the device queue. This
// package provides that arbitration.
//
// # Tenant classes
//
// Every traffic source registers as a Tenant in one of two classes:
//
//   - LatencySensitive: per-request tail latency is the metric (point
//     lookups, commit waits). These tenants are protected by the
//     GC-aware policies below and are the trigger for host→device GC
//     coordination.
//   - Throughput: aggregate bandwidth is the metric (scans, batch
//     loads, background maintenance). These tenants tolerate bounded
//     deferral when the device is collecting.
//
// Arbitration across tenants is weighted deficit-round-robin fair
// queueing over per-request *costs* (a write can be billed near the
// program/read service-time ratio via blockdev.Config.WriteCost), so
// one noisy neighbor cannot monopolize the device queue no matter how
// expensive its requests are.
//
// # Admission semantics
//
// Two mechanisms turn overload into accountable rejects instead of
// silent backlog growth, and package serve builds its shard-boundary
// admission control from them:
//
//   - Tenant.SetQueueLimit(n) bounds a tenant's queue: Enqueue returns
//     false (and blockdev surfaces ErrQueueLimit) instead of queueing
//     past the bound; Tenant.Rejected counts, OnReject hooks.
//   - Tenant.SetRateLimit(opsPerSec, burst) caps arrival rate with a
//     TokenBucket (the shared admission currency); an empty bucket
//     stalls the queue until tokens refill, and the scheduler arms a
//     virtual-time wake-up so the downstream stack pulls again.
//
// # The GC conversation (both halves of the peer interface)
//
// Device→host: SetGCActiveChips is the notification sink for
// ssd.Device.SetGCNotifier. With Config.GCAware, throughput-class
// dispatches are deferred (bounded by Config.GCDeferLimit) while the
// device reports active collection and a latency-sensitive tenant has
// requests at risk.
//
// Host→device: with Config.GCCoordinate, the scheduler drives the
// device's GC control surface (GCControl, wired by
// blockdev.Stack.AttachScheduler on every stack mode). While the
// latency-sensitive backlog is at or above Config.GCDeferBacklog, it
// leases deferrals of background collection (Config.GCDeferSlice per
// lease, renewed while the burst persists) and releases the lease when
// the burst drains. The device bounds every lease with its own
// free-pool floor, so the host can be greedy without being dangerous.
// With Config.GCLeaseAdaptive the slice is sized by the device's
// reported urgency on every lease decision (full when relaxed, half
// when elevated, declined without a round-trip when urgent — the
// adaptive control plane's GC loop, measured by E18).
// GCCoord returns the host-side control-traffic ledger.
//
// The scheduler is pull-based: a downstream stack (package blockdev)
// enqueues tenant-tagged requests and pops the next dispatch whenever a
// device-queue slot frees. When nothing is eligible now but will be
// later (rate caps refilling, GC deferrals expiring), the scheduler
// arms a virtual-time timer and invokes the registered kick callback so
// the stack pulls again.
package sched
