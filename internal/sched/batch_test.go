package sched

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/sim"
)

// arrival is one step of a pre-generated enqueue schedule: a run of
// same-tenant requests landing at one instant. The batched scheduler
// admits the run through one EnqueueBatch; the unbatched one enqueues
// the same requests one by one.
type arrival struct {
	at     sim.Time
	tenant int
	costs  []int
}

// mkSchedule generates a seeded mix: three tenants (one rate-capped
// latency tenant with a queue limit, two throughput tenants of unequal
// weight), runs of 1..4 requests, costs 1..3.
func mkSchedule(seed int64, n int) []arrival {
	rng := rand.New(rand.NewSource(seed))
	var out []arrival
	at := sim.Time(0)
	for len(out) < n {
		at += sim.Time(100+rng.Intn(400)) * sim.Nanosecond
		run := 1 + rng.Intn(4)
		costs := make([]int, run)
		for i := range costs {
			costs[i] = 1 + rng.Intn(3)
		}
		out = append(out, arrival{at: at, tenant: rng.Intn(3), costs: costs})
	}
	return out
}

// traceRig drains a scheduler the way blockdev's pump does — per-op
// Next on the old path, NextBatch on the ring path — and records every
// dispatch as a (virtual time, tenant, cost) triple.
type traceRig struct {
	eng      *sim.Engine
	sc       *Scheduler
	slots    int
	inflight int
	service  sim.Time
	batch    bool
	trace    []string
}

func (r *traceRig) pump() {
	if r.batch {
		if free := r.slots - r.inflight; free > 0 {
			for _, d := range r.sc.NextBatch(free) {
				d()
			}
		}
		return
	}
	for r.inflight < r.slots {
		d, ok := r.sc.Next()
		if !ok {
			return
		}
		d()
	}
}

func (r *traceRig) dispatch(name string, cost int) func() {
	return func() {
		r.inflight++
		r.trace = append(r.trace, fmt.Sprintf("%v %s c%d", r.eng.Now(), name, cost))
		r.eng.After(r.service, func() {
			r.inflight--
			r.pump()
		})
	}
}

// runTrace replays the schedule into a fresh scheduler and returns the
// dispatch trace plus per-tenant (dispatched, rejected, tokens) state.
func runTrace(sched []arrival, batch bool) (trace []string, state []string) {
	eng := sim.NewEngine()
	sc := New(eng, DefaultConfig())
	lat := sc.AddTenant("lat", LatencySensitive, 2)
	lat.SetRateLimit(200000, 4)
	lat.SetQueueLimit(16)
	bulk := sc.AddTenant("bulk", Throughput, 2)
	bg := sc.AddTenant("bg", Throughput, 1)
	tenants := []*Tenant{lat, bulk, bg}
	r := &traceRig{eng: eng, sc: sc, slots: 2, service: 5 * sim.Microsecond, batch: batch}
	sc.SetKick(r.pump)
	sc.SetKickCoalesced(batch)
	for _, a := range sched {
		a := a
		t := tenants[a.tenant]
		eng.After(a.at, func() {
			if batch {
				items := make([]Item, len(a.costs))
				for i, c := range a.costs {
					items[i] = Item{Cost: c, Dispatch: r.dispatch(t.Name(), c)}
				}
				sc.EnqueueBatch(t, items)
			} else {
				for _, c := range a.costs {
					sc.Enqueue(t, c, r.dispatch(t.Name(), c))
				}
			}
			r.pump()
		})
	}
	eng.RunUntil(50 * sim.Millisecond)
	for _, t := range tenants {
		state = append(state, fmt.Sprintf("%s dispatched=%d enqueued=%d rejected=%d backlog=%d tokens=%.3f",
			t.Name(), t.Dispatched, t.Enqueued, t.Rejected, t.Backlog(), t.Tokens()))
	}
	return r.trace, state
}

// TestBatchedDrainMatchesUnbatched is the batch-semantics contract:
// the same seeded arrival mix produces the identical virtual-time
// dispatch trace, the identical DRR fairness outcome, the identical
// admission rejects and the identical token balances whether the
// scheduler is driven per-op (Enqueue + Next) or in batches
// (EnqueueBatch + NextBatch with coalesced kicks). Batching may only
// amortize control work — never change what is scheduled or when.
func TestBatchedDrainMatchesUnbatched(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		sched := mkSchedule(seed, 800)
		oldTrace, oldState := runTrace(sched, false)
		ringTrace, ringState := runTrace(sched, true)
		if len(oldTrace) == 0 {
			t.Fatalf("seed %d: empty trace", seed)
		}
		if len(oldTrace) != len(ringTrace) {
			t.Fatalf("seed %d: %d dispatches unbatched vs %d batched", seed, len(oldTrace), len(ringTrace))
		}
		for i := range oldTrace {
			if oldTrace[i] != ringTrace[i] {
				t.Fatalf("seed %d: dispatch %d diverged: %q vs %q", seed, i, oldTrace[i], ringTrace[i])
			}
		}
		for i := range oldState {
			if oldState[i] != ringState[i] {
				t.Errorf("seed %d: tenant state diverged:\n  old:  %s\n  ring: %s", seed, oldState[i], ringState[i])
			}
		}
	}
}

// TestEnqueueBatchAdmissionPrefix checks the batch admission contract:
// items are admitted in order up to the queue limit, the rest are
// rejected (counted and reported upward via the admitted prefix), and
// rejection accounting matches per-op enqueues making the same
// overflow.
func TestEnqueueBatchAdmissionPrefix(t *testing.T) {
	eng := sim.NewEngine()
	sc := New(eng, DefaultConfig())
	tn := sc.AddTenant("t", Throughput, 1)
	tn.SetQueueLimit(5)
	rejects := 0
	tn.OnReject(func() { rejects++ })
	items := make([]Item, 8)
	ran := make([]bool, 8)
	for i := range items {
		i := i
		items[i] = Item{Cost: 1, Dispatch: func() { ran[i] = true }}
	}
	admitted := sc.EnqueueBatch(tn, items)
	if admitted != 5 {
		t.Fatalf("admitted %d, want 5", admitted)
	}
	if tn.Rejected != 3 || rejects != 3 {
		t.Fatalf("rejected=%d onReject=%d, want 3/3", tn.Rejected, rejects)
	}
	if tn.BacklogOps() != 5 {
		t.Fatalf("backlog %d ops, want 5", tn.BacklogOps())
	}
	for _, d := range sc.NextBatch(8) {
		d()
	}
	for i := 0; i < 5; i++ {
		if !ran[i] {
			t.Fatalf("admitted item %d never dispatched", i)
		}
	}
	for i := 5; i < 8; i++ {
		if ran[i] {
			t.Fatalf("rejected item %d dispatched", i)
		}
	}
	if tn.BacklogOps() != 0 {
		t.Fatalf("backlog %d after drain", tn.BacklogOps())
	}
}

// benchPopDepth measures one enqueue+dispatch cycle against a standing
// backlog of the given depth. The head-index ring makes the pop O(1),
// so ns/op must stay flat as the backlog grows 16× — the slice-shift
// dequeue this replaced copied the whole backlog per pop and scaled
// linearly here.
func benchPopDepth(b *testing.B, depth int) {
	eng := sim.NewEngine()
	sc := New(eng, DefaultConfig())
	tn := sc.AddTenant("t", Throughput, 1)
	for i := 0; i < depth; i++ {
		sc.Enqueue(tn, 1, func() {})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, ok := sc.Next()
		if !ok {
			b.Fatal("backlog drained")
		}
		d()
		sc.Enqueue(tn, 1, func() {})
	}
}

func BenchmarkRingPopDepth1k(b *testing.B)  { benchPopDepth(b, 1<<10) }
func BenchmarkRingPopDepth16k(b *testing.B) { benchPopDepth(b, 1<<14) }

// BenchmarkRingDrainBatch measures a full NextBatch drain of 32
// requests against a deep backlog (the pump's per-refill shape).
func BenchmarkRingDrainBatch(b *testing.B) {
	eng := sim.NewEngine()
	sc := New(eng, DefaultConfig())
	tn := sc.AddTenant("t", Throughput, 1)
	for i := 0; i < 1<<14; i++ {
		sc.Enqueue(tn, 1, func() {})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds := sc.NextBatch(32)
		for _, d := range ds {
			d()
		}
		for range ds {
			sc.Enqueue(tn, 1, func() {})
		}
	}
}
