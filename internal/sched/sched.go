// Package sched is a multi-tenant I/O scheduler for the submission
// path. The paper's thesis is that the block interface must die because
// it hides the information both sides need to schedule well; once host
// and device are communicating peers (package core), the host can run
// real per-tenant arbitration right above the device queue. This
// package provides that arbitration:
//
//   - tenant-tagged request classes: latency-sensitive tenants (point
//     lookups, commits) versus throughput tenants (scans, batch loads);
//   - weighted deficit-round-robin fair queueing across tenants, so one
//     noisy neighbor cannot monopolize the device queue;
//   - token-bucket rate caps per tenant, for hard QoS ceilings;
//   - a GC-aware mode that consumes the device-to-host GC-activity
//     notifications (the communication abstraction at work) and defers
//     throughput-class dispatches while the device is relocating data
//     and a latency-sensitive tenant has requests at risk.
//
// The scheduler is pull-based: a downstream stack (package blockdev)
// enqueues tenant-tagged requests and pops the next dispatch whenever a
// device-queue slot frees. When nothing is eligible now but will be
// later (rate caps refilling, GC deferrals expiring), the scheduler
// arms a virtual-time timer and invokes the registered kick callback so
// the stack pulls again.
package sched

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// Class partitions tenants by what they are optimizing for.
type Class int

// Tenant classes.
const (
	// LatencySensitive tenants care about per-request tail latency
	// (point reads, commit waits).
	LatencySensitive Class = iota
	// Throughput tenants care about aggregate bandwidth (scans,
	// batch loads, background maintenance) and tolerate deferral.
	Throughput
)

// String names the class.
func (c Class) String() string {
	switch c {
	case LatencySensitive:
		return "latency"
	case Throughput:
		return "throughput"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Config parameterizes a Scheduler.
type Config struct {
	// Quantum is the deficit credit per unit weight per round (cost
	// units). Larger quanta lower scheduling overhead but coarsen
	// interleaving. Zero means 1.
	Quantum int
	// GCAware enables deferral of throughput-class dispatches while the
	// device reports active garbage collection and a latency-sensitive
	// tenant has queued requests.
	GCAware bool
	// GCDeferLimit bounds how long one throughput request may be held
	// back by GC-awareness, so background tenants cannot starve
	// outright. Zero means 2ms.
	GCDeferLimit sim.Time
}

// DefaultConfig returns the standard scheduler parameters.
func DefaultConfig() Config {
	return Config{Quantum: 1, GCAware: true, GCDeferLimit: 2 * sim.Millisecond}
}

// request is one queued dispatch.
type request struct {
	cost       int
	at         sim.Time // enqueue time
	deferred   bool     // GC-deferral in effect (counted once)
	deferredAt sim.Time // when the deferral began
	dispatch   func()
}

// Tenant is one registered traffic source. Create with
// Scheduler.AddTenant; fields are managed by the scheduler.
type Tenant struct {
	s      *Scheduler
	name   string
	class  Class
	weight int

	deficit int
	q       []request

	// Token-bucket rate cap (ops/sec); rate 0 means uncapped.
	rate       float64
	burst      float64
	tokens     float64
	lastRefill sim.Time

	// Enqueued and Dispatched count requests through this tenant.
	Enqueued   int64
	Dispatched int64
	// Wait records per-request queue delay (enqueue to dispatch) in
	// nanoseconds.
	Wait metrics.Histogram
}

// Name returns the tenant's registered name.
func (t *Tenant) Name() string { return t.name }

// Class returns the tenant's class.
func (t *Tenant) Class() Class { return t.class }

// Weight returns the tenant's fair-share weight.
func (t *Tenant) Weight() int { return t.weight }

// Backlog reports the tenant's queued request count.
func (t *Tenant) Backlog() int { return len(t.q) }

// SetRateLimit caps the tenant at opsPerSec with the given burst
// allowance (ops). opsPerSec <= 0 removes the cap.
func (t *Tenant) SetRateLimit(opsPerSec float64, burst int) {
	if opsPerSec <= 0 {
		t.rate = 0
		return
	}
	if burst < 1 {
		burst = 1
	}
	t.rate = opsPerSec
	t.burst = float64(burst)
	t.tokens = t.burst
	t.lastRefill = t.s.eng.Now()
}

// refill tops the token bucket up to now.
func (t *Tenant) refill(now sim.Time) {
	if t.rate == 0 || now <= t.lastRefill {
		return
	}
	t.tokens += t.rate * (now - t.lastRefill).Seconds()
	if t.tokens > t.burst {
		t.tokens = t.burst
	}
	t.lastRefill = now
}

// Scheduler arbitrates tenant-tagged requests onto a single downstream
// queue. It is single-threaded, like everything on a sim.Engine.
type Scheduler struct {
	eng *sim.Engine
	cfg Config

	tenants []*Tenant
	rr      int // round-robin scan origin

	backlog        int // queued requests, all tenants
	latencyBacklog int // queued requests of latency-sensitive tenants

	gcChips int // device-reported chips currently garbage-collecting
	kick    func()

	// GCDeferrals counts throughput requests held back at least once by
	// the GC-aware policy.
	GCDeferrals int64
}

// New builds a scheduler on eng.
func New(eng *sim.Engine, cfg Config) *Scheduler {
	if cfg.Quantum <= 0 {
		cfg.Quantum = 1
	}
	if cfg.GCDeferLimit <= 0 {
		cfg.GCDeferLimit = 2 * sim.Millisecond
	}
	return &Scheduler{eng: eng, cfg: cfg}
}

// AddTenant registers a traffic source. Weight sets its fair share
// relative to other tenants (minimum 1).
func (s *Scheduler) AddTenant(name string, class Class, weight int) *Tenant {
	if weight < 1 {
		weight = 1
	}
	t := &Tenant{s: s, name: name, class: class, weight: weight}
	s.tenants = append(s.tenants, t)
	return t
}

// Tenants returns the registered tenants in registration order.
func (s *Scheduler) Tenants() []*Tenant { return s.tenants }

// Backlog reports the total queued request count.
func (s *Scheduler) Backlog() int { return s.backlog }

// SetKick registers the callback invoked when previously ineligible
// work becomes dispatchable (rate tokens refill, GC state changes).
// The downstream stack points this at its queue pump.
func (s *Scheduler) SetKick(fn func()) { s.kick = fn }

// SetGCActiveChips is the device-to-host notification sink: the device
// reports how many of its chips are currently garbage-collecting (or
// wear-leveling). Wire it to ssd.Device.SetGCNotifier.
func (s *Scheduler) SetGCActiveChips(chips int) {
	was := s.gcChips
	s.gcChips = chips
	if was != chips && s.kick != nil {
		// Both edges matter: GC starting may demote throughput work that
		// is already queued; GC ending frees it.
		s.kick()
	}
}

// GCActiveChips reports the device GC load last notified.
func (s *Scheduler) GCActiveChips() int { return s.gcChips }

// Enqueue adds one request for tenant t. cost is the request's size in
// scheduling units (1 for a page I/O); dispatch runs when the scheduler
// selects the request via Next.
func (s *Scheduler) Enqueue(t *Tenant, cost int, dispatch func()) {
	if cost < 1 {
		cost = 1
	}
	t.q = append(t.q, request{cost: cost, at: s.eng.Now(), dispatch: dispatch})
	t.Enqueued++
	s.backlog++
	if t.class == LatencySensitive {
		s.latencyBacklog++
	}
}

// eligible reports whether tenant t's head request may dispatch now.
func (s *Scheduler) eligible(t *Tenant, now sim.Time) bool {
	head := &t.q[0]
	t.refill(now)
	// The bucket is in ops, not DRR cost units: a rate cap promises
	// "this many requests per second" regardless of how expensively
	// each request is billed to the fair-queueing deficit.
	if t.rate > 0 && t.tokens < 1 {
		return false
	}
	if s.cfg.GCAware && s.gcChips > 0 && t.class == Throughput && s.latencyBacklog > 0 {
		if !head.deferred {
			head.deferred = true
			head.deferredAt = now
			s.GCDeferrals++
		}
		// The limit bounds time spent deferred, not total queue age, so
		// a request that already waited its fair-queueing turn can still
		// be held back briefly while GC and latency traffic overlap.
		if now-head.deferredAt < s.cfg.GCDeferLimit {
			return false
		}
	}
	return true
}

// pop dequeues tenant t's head request and settles its accounting.
func (s *Scheduler) pop(t *Tenant, now sim.Time) request {
	head := t.q[0]
	t.q = t.q[0:copy(t.q, t.q[1:])]
	if len(t.q) == 0 {
		// Standard DRR: an idling tenant forfeits its deficit, so credit
		// cannot be hoarded across idle periods.
		t.deficit = 0
	}
	if t.rate > 0 {
		t.tokens--
	}
	t.Dispatched++
	t.Wait.Record(int64(now - head.at))
	s.backlog--
	if t.class == LatencySensitive {
		s.latencyBacklog--
	}
	return head
}

// Next selects the next request under deficit round robin, honoring
// rate caps and the GC-aware policy. It returns the request's dispatch
// function, or ok=false when nothing is eligible right now (in which
// case a wake-up timer is armed if eligibility will arrive on its own).
func (s *Scheduler) Next() (dispatch func(), ok bool) {
	if s.backlog == 0 {
		return nil, false
	}
	now := s.eng.Now()
	n := len(s.tenants)
	// Two scans at most: if the first finds eligible tenants but none
	// affordable, crediting jumps everyone forward by exactly the
	// number of whole DRR rounds that makes the cheapest head
	// affordable (equivalent to iterating rounds one by one, without a
	// bound that a large per-op cost could exhaust), so the second
	// scan dispatches.
	for {
		anyEligible := false
		for i := 0; i < n; i++ {
			idx := (s.rr + i) % n
			t := s.tenants[idx]
			if len(t.q) == 0 || !s.eligible(t, now) {
				continue
			}
			anyEligible = true
			if t.deficit >= t.q[0].cost {
				t.deficit -= t.q[0].cost
				head := s.pop(t, now)
				s.rr = (idx + 1) % n
				return head.dispatch, true
			}
		}
		if !anyEligible {
			break
		}
		rounds := 0
		for _, t := range s.tenants {
			if len(t.q) == 0 || !s.eligible(t, now) {
				continue
			}
			per := s.cfg.Quantum * t.weight
			need := (t.q[0].cost - t.deficit + per - 1) / per
			if need < 1 {
				need = 1
			}
			if rounds == 0 || need < rounds {
				rounds = need
			}
		}
		for _, t := range s.tenants {
			if len(t.q) > 0 && s.eligible(t, now) {
				t.deficit += rounds * s.cfg.Quantum * t.weight
			}
		}
	}
	s.armWakeup(now)
	return nil, false
}

// armWakeup schedules a kick at the earliest future instant at which a
// currently ineligible head request becomes dispatchable: a token
// bucket refilling past its head cost, or a GC deferral aging past
// GCDeferLimit. Stale timers are harmless — the kick just finds
// nothing eligible and re-arms.
func (s *Scheduler) armWakeup(now sim.Time) {
	if s.kick == nil {
		return
	}
	wake := sim.MaxTime
	for _, t := range s.tenants {
		if len(t.q) == 0 {
			continue
		}
		head := &t.q[0]
		if t.rate > 0 && t.tokens < 1 {
			need := 1 - t.tokens
			at := now + sim.Time(need/t.rate*float64(sim.Second)) + 1
			if at < wake {
				wake = at
			}
		}
		if s.cfg.GCAware && s.gcChips > 0 && t.class == Throughput && s.latencyBacklog > 0 && head.deferred {
			at := head.deferredAt + s.cfg.GCDeferLimit
			if at < wake {
				wake = at
			}
		}
	}
	if wake == sim.MaxTime {
		return
	}
	if wake <= now {
		wake = now + 1
	}
	s.eng.Schedule(wake, s.kick)
}

// WaitTable renders each tenant's queue-wait distribution, for
// experiment output.
func (s *Scheduler) WaitTable(title string) *metrics.Table {
	t := metrics.NewTable(title, "tenant", "class", "weight", "enq", "disp", "wait p50 (µs)", "wait p99 (µs)")
	for _, tn := range s.tenants {
		t.AddRow(tn.name, tn.class.String(), tn.weight, tn.Enqueued, tn.Dispatched,
			fmt.Sprintf("%.1f", float64(tn.Wait.P50())/1e3),
			fmt.Sprintf("%.1f", float64(tn.Wait.P99())/1e3))
	}
	return t
}
