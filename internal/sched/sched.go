package sched

import (
	"fmt"

	"repro/internal/ftl"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Class partitions tenants by what they are optimizing for.
type Class int

// Tenant classes.
const (
	// LatencySensitive tenants care about per-request tail latency
	// (point reads, commit waits).
	LatencySensitive Class = iota
	// Throughput tenants care about aggregate bandwidth (scans,
	// batch loads, background maintenance) and tolerate deferral.
	Throughput
)

// classSlot maps a class onto the two-slot per-class ledgers (latency
// first; anything unknown is billed as throughput).
func classSlot(c Class) int {
	if c == LatencySensitive {
		return 0
	}
	return 1
}

// String names the class.
func (c Class) String() string {
	switch c {
	case LatencySensitive:
		return "latency"
	case Throughput:
		return "throughput"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Config parameterizes a Scheduler.
type Config struct {
	// Quantum is the deficit credit per unit weight per round (cost
	// units). Larger quanta lower scheduling overhead but coarsen
	// interleaving. Zero means 1.
	Quantum int
	// GCAware enables deferral of throughput-class dispatches while the
	// device reports active garbage collection and a latency-sensitive
	// tenant has queued requests.
	GCAware bool
	// GCDeferLimit bounds how long one throughput request may be held
	// back by GC-awareness, so background tenants cannot starve
	// outright. Zero means 2ms.
	GCDeferLimit sim.Time
	// GCCoordinate enables the host→device half of the peer interface:
	// while latency-sensitive tenants are backlogged, the scheduler
	// leases GC deferrals from the device (SetGCControl), so background
	// relocation traffic yields the LUNs to the burst; the lease is
	// released when the burst drains and is always bounded by the
	// device's own free-pool floor.
	GCCoordinate bool
	// GCDeferSlice is the lease length of each defer request; the lease
	// is renewed while the burst persists, so its length only bounds how
	// long GC stays parked after the host goes quiet without an explicit
	// resume. Zero means 1ms.
	GCDeferSlice sim.Time
	// GCDeferBacklog is the latency-sensitive backlog (requests) at or
	// above which the scheduler leases a deferral. Zero means 1: any
	// latency-class request waiting is reason to hold background GC.
	GCDeferBacklog int
	// GCLeaseAdaptive sizes each lease by the device's reported
	// reclamation pressure instead of the fixed GCDeferSlice: the
	// scheduler polls GCUrgency on every lease decision (when the
	// control surface exposes it — see GCUrgencyProbe) and asks for the
	// full slice from a relaxed device, half a slice from an elevated
	// one, and nothing at all from an urgent one — declining locally
	// instead of spending a round-trip the device would refuse.
	GCLeaseAdaptive bool
}

// DefaultConfig returns the standard scheduler parameters.
func DefaultConfig() Config {
	return Config{Quantum: 1, GCAware: true, GCDeferLimit: 2 * sim.Millisecond}
}

// TokenBucket is a virtual-time token bucket: rate tokens per second up
// to a burst cap, starting full. It is the admission currency shared by
// tenant rate caps here and shard-boundary admission control (package
// serve). The zero value is inactive: never empty, never refilled.
type TokenBucket struct {
	rate   float64
	burst  float64
	tokens float64
	last   sim.Time
}

// NewTokenBucket returns a full bucket refilling at rate tokens/sec up
// to burst (minimum 1). rate <= 0 yields an inactive bucket.
func NewTokenBucket(rate float64, burst int, now sim.Time) TokenBucket {
	if rate <= 0 {
		return TokenBucket{}
	}
	if burst < 1 {
		burst = 1
	}
	return TokenBucket{rate: rate, burst: float64(burst), tokens: float64(burst), last: now}
}

// Active reports whether the bucket enforces a rate.
func (b *TokenBucket) Active() bool { return b.rate > 0 }

// Refill tops the bucket up to now. Refilling at or before the last
// refill instant mints nothing.
func (b *TokenBucket) Refill(now sim.Time) {
	if b.rate == 0 || now <= b.last {
		return
	}
	b.tokens += b.rate * (now - b.last).Seconds()
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = now
}

// Tokens reports the balance after refilling to now.
func (b *TokenBucket) Tokens(now sim.Time) float64 {
	b.Refill(now)
	return b.tokens
}

// Take consumes one token (callers gate on Tokens first).
func (b *TokenBucket) Take() {
	if b.rate > 0 {
		b.tokens--
	}
}

// TryTake consumes one token if available, reporting success. An
// inactive bucket always succeeds.
func (b *TokenBucket) TryTake(now sim.Time) bool {
	if b.rate == 0 {
		return true
	}
	b.Refill(now)
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// WakeAt reports the instant the bucket will next hold a whole token
// (call only on an active bucket that is currently short).
func (b *TokenBucket) WakeAt(now sim.Time) sim.Time {
	need := 1 - b.tokens
	return now + sim.Time(need/b.rate*float64(sim.Second)) + 1
}

// request is one queued dispatch.
type request struct {
	cost       int
	at         sim.Time // enqueue time
	deferred   bool     // GC-deferral in effect (counted once)
	deferredAt sim.Time // when the deferral began
	dispatch   func()

	// Trace plumbing: the request's span (nil when tracing is off),
	// and the token-starvation accounting that feeds its
	// tokens-blocked overlay.
	span         *obs.Span
	tokenFrom    sim.Time // when the head last became token-blocked (0 = not blocked)
	tokenBlocked sim.Time // accumulated token-blocked time
}

// Tenant is one registered traffic source. Create with
// Scheduler.AddTenant; fields are managed by the scheduler.
type Tenant struct {
	s      *Scheduler
	name   string
	class  Class
	weight int

	deficit int
	// The queue is a head-index ring: dequeue advances qhead instead of
	// shifting the slice, so a pop is O(1) no matter how deep the
	// backlog (the slice-shift it replaced copied the whole queue per
	// op). Capacity is kept a power of two so positions mask instead of
	// divide.
	q           []request
	qhead       int // ring index of the head request
	qn          int // live requests in the ring
	backlogCost int // queued cost units (sum over the ring)

	// Admission control: queueLimit bounds the queue (ops); enqueues
	// past it are rejected instead of silently backlogged, and onReject
	// runs once per rejection.
	queueLimit int
	onReject   func()

	// Token-bucket rate cap (ops/sec); an inactive bucket is uncapped.
	bucket TokenBucket

	// Enqueued and Dispatched count requests through this tenant.
	Enqueued   int64
	Dispatched int64
	// Rejected counts enqueues refused by the queue limit.
	Rejected int64
	// Wait records per-request queue delay (enqueue to dispatch) in
	// nanoseconds.
	Wait metrics.Histogram
}

// qAt returns the i-th queued request (0 = head) in place.
func (t *Tenant) qAt(i int) *request {
	return &t.q[(t.qhead+i)&(len(t.q)-1)]
}

// qPush appends a request to the ring, doubling capacity when full.
func (t *Tenant) qPush(r request) {
	if t.qn == len(t.q) {
		ncap := 2 * len(t.q)
		if ncap < 16 {
			ncap = 16
		}
		grown := make([]request, ncap)
		for i := 0; i < t.qn; i++ {
			grown[i] = *t.qAt(i)
		}
		t.q, t.qhead = grown, 0
	}
	*t.qAt(t.qn) = r
	t.qn++
}

// qPop dequeues the head request. The vacated slot is zeroed so the
// ring does not pin dispatch closures and spans past their dispatch.
func (t *Tenant) qPop() request {
	head := t.q[t.qhead]
	t.q[t.qhead] = request{}
	t.qhead = (t.qhead + 1) & (len(t.q) - 1)
	t.qn--
	return head
}

// Name returns the tenant's registered name.
func (t *Tenant) Name() string { return t.name }

// Class returns the tenant's class.
func (t *Tenant) Class() Class { return t.class }

// Weight returns the tenant's fair-share weight.
func (t *Tenant) Weight() int { return t.weight }

// Backlog reports the tenant's queued work in cost units (the same
// units deficit round robin arbitrates), so a backlog of expensive
// writes and a backlog of cheap reads compare honestly. BacklogOps
// reports the op count.
func (t *Tenant) Backlog() int { return t.backlogCost }

// BacklogOps reports the tenant's queued request count.
func (t *Tenant) BacklogOps() int { return t.qn }

// SetQueueLimit bounds the tenant's queue to n requests; further
// enqueues are rejected (Enqueue returns false) until dispatches drain
// the queue below the limit. n <= 0 removes the bound. Combined with
// SetRateLimit this is admission control: an empty token bucket stalls
// the queue, the limit turns the resulting overflow into immediate
// rejects instead of silent backlog.
func (t *Tenant) SetQueueLimit(n int) {
	if n < 0 {
		n = 0
	}
	t.queueLimit = n
}

// QueueLimit reports the tenant's queue bound (0 = unbounded).
func (t *Tenant) QueueLimit() int { return t.queueLimit }

// OnReject registers a callback invoked once per rejected enqueue
// (admission-control accounting hooks).
func (t *Tenant) OnReject(fn func()) { t.onReject = fn }

// Tokens reports the tenant's current rate-cap token balance after
// refilling to now (meaningless when no rate limit is set).
func (t *Tenant) Tokens() float64 {
	return t.bucket.Tokens(t.s.eng.Now())
}

// SetRateLimit caps the tenant at opsPerSec with the given burst
// allowance (ops). opsPerSec <= 0 removes the cap.
func (t *Tenant) SetRateLimit(opsPerSec float64, burst int) {
	t.bucket = NewTokenBucket(opsPerSec, burst, t.s.eng.Now())
}

// Scheduler arbitrates tenant-tagged requests onto a single downstream
// queue. It is single-threaded, like everything on a sim.Engine.
type Scheduler struct {
	eng *sim.Engine
	cfg Config

	tenants []*Tenant
	rr      int // round-robin scan origin

	backlog        int // queued requests, all tenants
	latencyBacklog int // queued requests of latency-sensitive tenants

	gcChips int // device-reported chips currently garbage-collecting
	kick    func()

	// Kick coalescing (SetKickCoalesced): with coalesce set, state
	// changes that would each kick the pump instead arm one kick event
	// per instant, so a batch of notifications wakes the pump once.
	coalesce  bool
	kickArmed bool

	// Host→device GC coordination (Config.GCCoordinate): the device
	// control handle, the expiry of the currently leased deferral, and
	// the earliest instant a refused lease may be retried.
	gcctl        GCControl
	gcDeferUntil sim.Time
	gcRetryAt    sim.Time
	gcLeaseSlice sim.Time // length of the currently granted lease

	// Health-event sink for lease decisions (obs.Monitor when the
	// fabric monitors; nil otherwise) and the device label it reports
	// under.
	evsink  obs.EventSink
	evlabel string

	// GCDeferrals counts throughput requests held back at least once by
	// the GC-aware policy.
	GCDeferrals int64
	// GCDeferRequests, GCDeferRefused and GCResumeRequests count the
	// host→device control traffic: deferral leases requested (fresh or
	// renewal), leases the device refused for lack of headroom, and
	// explicit resumes when the latency backlog drained.
	GCDeferRequests  int64
	GCDeferRefused   int64
	GCResumeRequests int64
	// GCDeferDeclined counts lease decisions the adaptive policy
	// (Config.GCLeaseAdaptive) skipped because the device reported
	// itself urgent — requests that were never sent because the answer
	// was already known.
	GCDeferDeclined int64

	// waitByClass accumulates total queue wait (enqueue to dispatch)
	// per request class — the scheduler-side contention overlay the
	// resource profiler reports beside the busy-time attribution.
	waitByClass [2]sim.Time
	// waitObs, when set, observes each dispatch's queue wait on the sim
	// thread (the profiler's wait sink).
	waitObs func(c Class, d sim.Time)
}

// GCControl is what the scheduler needs from a device to shape its
// garbage collection — the host→device half of the paper's peer
// interface. ssd.Device implements it; blockdev.Stack.AttachScheduler
// wires it up on every stack mode.
type GCControl interface {
	// DeferGC asks the device to park background GC until the deadline,
	// reporting whether the request was honored (a device at its floor
	// refuses). Honored deferrals remain bounded by the device's own
	// free-pool floor.
	DeferGC(deadline sim.Time) bool
	// ResumeGC releases an active deferral early.
	ResumeGC()
}

// GCUrgencyProbe is the optional pressure-reporting half of the control
// surface: devices that can say how much deferral headroom remains
// (ssd.Device forwards ftl.PageFTL's urgency) let an adaptive scheduler
// size its leases — the GCLeaseAdaptive policy. A GCControl without the
// probe is driven with fixed slices.
type GCUrgencyProbe interface {
	GCUrgency() ftl.GCUrgency
}

// New builds a scheduler on eng.
func New(eng *sim.Engine, cfg Config) *Scheduler {
	if cfg.Quantum <= 0 {
		cfg.Quantum = 1
	}
	if cfg.GCDeferLimit <= 0 {
		cfg.GCDeferLimit = 2 * sim.Millisecond
	}
	if cfg.GCDeferSlice <= 0 {
		cfg.GCDeferSlice = sim.Millisecond
	}
	if cfg.GCDeferBacklog <= 0 {
		cfg.GCDeferBacklog = 1
	}
	return &Scheduler{eng: eng, cfg: cfg}
}

// SetGCControl hands the scheduler the device's GC control surface.
// With Config.GCCoordinate unset the handle is kept but unused, so
// wiring it unconditionally (as blockdev.Stack.AttachScheduler does) is
// free.
func (s *Scheduler) SetGCControl(ctl GCControl) { s.gcctl = ctl }

// SetEventSink wires a health-event sink for lease grant/decline
// moments, labeled with the device this scheduler fronts. A nil sink
// detaches.
func (s *Scheduler) SetEventSink(sink obs.EventSink, label string) {
	s.evsink, s.evlabel = sink, label
}

// GCCoordActive reports whether the scheduler currently holds a GC
// deferral lease on the device.
func (s *Scheduler) GCCoordActive() bool { return s.gcDeferUntil > s.eng.Now() }

// maybeDeferGC leases (or renews) a device GC deferral when the
// latency-sensitive backlog warrants it. It runs on latency enqueues
// and on pops that leave the backlog above the threshold, so a burst
// that drains slowly keeps its lease alive. Leases are renewed once
// the previous one is at least half spent, and a refusal backs off for
// half a slice, so the control traffic stays O(1) per lease rather
// than per request. With GCLeaseAdaptive the slice itself is sized by
// the device's reported headroom on every lease decision.
func (s *Scheduler) maybeDeferGC() {
	if !s.cfg.GCCoordinate || s.gcctl == nil || s.latencyBacklog < s.cfg.GCDeferBacklog {
		return
	}
	now := s.eng.Now()
	if now < s.gcRetryAt {
		return // the device refused (or we declined) recently; don't spam it
	}
	// Freshness is judged against the length of the lease actually
	// granted (an elevated-urgency half-slice renews at its own
	// half-life), and gates everything below: urgency is polled only
	// when a lease decision is due, so a momentarily urgent device
	// under a fresh lease neither inflates the declined ledger nor
	// backs off a renewal that was not yet wanted.
	fresh := s.gcLeaseSlice
	if fresh <= 0 {
		fresh = s.cfg.GCDeferSlice
	}
	if s.gcDeferUntil-now > fresh/2 {
		return // current lease still fresh
	}
	slice := s.cfg.GCDeferSlice
	if s.cfg.GCLeaseAdaptive {
		if probe, ok := s.gcctl.(GCUrgencyProbe); ok {
			switch probe.GCUrgency() {
			case ftl.GCUrgent:
				// No headroom: the device would refuse anyway. Declining
				// locally skips the doomed round-trip and backs off the
				// same way a refusal would.
				s.GCDeferDeclined++
				s.gcRetryAt = now + s.cfg.GCDeferSlice/2
				if s.evsink != nil {
					s.evsink.Emit(obs.HealthEvent{
						Kind: obs.EventLeaseDecline, At: now, Name: s.evlabel,
						Value:  float64(s.latencyBacklog),
						Detail: "lease declined locally: device urgent",
					})
				}
				return
			case ftl.GCElevated:
				// GC already wants to run: every deferred instant spends
				// real free-pool headroom, so lease in half slices and
				// re-poll sooner.
				slice /= 2
			}
		}
	}
	until := now + slice
	s.GCDeferRequests++
	if s.gcctl.DeferGC(until) {
		s.gcDeferUntil = until
		s.gcLeaseSlice = slice
		if s.evsink != nil {
			s.evsink.Emit(obs.HealthEvent{
				Kind: obs.EventLeaseGrant, At: now, Name: s.evlabel,
				Value:  slice.Micros(),
				Detail: "GC deferral leased for " + slice.String(),
			})
		}
	} else {
		s.GCDeferRefused++
		s.gcRetryAt = now + s.cfg.GCDeferSlice/2
		if s.evsink != nil {
			s.evsink.Emit(obs.HealthEvent{
				Kind: obs.EventLeaseDecline, At: now, Name: s.evlabel,
				Value:  float64(s.latencyBacklog),
				Detail: "lease refused by device",
			})
		}
	}
}

// GCCoord returns the host side of the coordination ledger (merge it
// with the device side via metrics.GCCoord.Add, as serve.Fabric does).
func (s *Scheduler) GCCoord() metrics.GCCoord {
	g := metrics.NewGCCoord()
	g.HostRequests = s.GCDeferRequests
	g.HostResumes = s.GCResumeRequests
	g.HostDeclined = s.GCDeferDeclined
	return g
}

// maybeResumeGC releases the deferral lease once no latency-sensitive
// request is waiting — the burst drained, the device may collect. The
// device call is deferred to the event loop rather than made inline:
// resuming kicks GC, whose activity notification re-enters this
// scheduler's kick/pump while the triggering pop is still unwinding,
// and the nested pump would dispatch throughput work ahead of the very
// latency request that drained the burst.
func (s *Scheduler) maybeResumeGC() {
	if !s.cfg.GCCoordinate || s.gcctl == nil || s.latencyBacklog > 0 {
		return
	}
	if s.gcDeferUntil > s.eng.Now() {
		s.gcDeferUntil = 0
		s.GCResumeRequests++
		ctl := s.gcctl
		s.eng.Schedule(s.eng.Now(), func() {
			if s.gcDeferUntil > s.eng.Now() {
				return // a fresh lease raced in before the resume fired
			}
			ctl.ResumeGC()
		})
	}
}

// AddTenant registers a traffic source. Weight sets its fair share
// relative to other tenants (minimum 1).
func (s *Scheduler) AddTenant(name string, class Class, weight int) *Tenant {
	if weight < 1 {
		weight = 1
	}
	t := &Tenant{s: s, name: name, class: class, weight: weight}
	s.tenants = append(s.tenants, t)
	return t
}

// Tenants returns the registered tenants in registration order.
func (s *Scheduler) Tenants() []*Tenant { return s.tenants }

// Backlog reports the total queued request count across tenants (ops,
// not cost units; see Tenant.Backlog for per-tenant cost backlog).
func (s *Scheduler) Backlog() int { return s.backlog }

// SetWaitObserver installs a per-dispatch queue-wait observer (nil
// removes it), called on the sim thread inside the dispatch event —
// how the resource profiler's wait overlay subscribes without reading
// scheduler state from other goroutines.
func (s *Scheduler) SetWaitObserver(fn func(c Class, d sim.Time)) { s.waitObs = fn }

// WaitTotals reports cumulative queue wait (enqueue to dispatch) per
// request class, keyed by class name — the dispatch-wait overlay the
// resource profiler attaches as a per-device wait source.
func (s *Scheduler) WaitTotals() map[string]sim.Time {
	return map[string]sim.Time{
		LatencySensitive.String(): s.waitByClass[0],
		Throughput.String():       s.waitByClass[1],
	}
}

// SetKick registers the callback invoked when previously ineligible
// work becomes dispatchable (rate tokens refill, GC state changes).
// The downstream stack points this at its queue pump.
func (s *Scheduler) SetKick(fn func()) { s.kick = fn }

// SetKickCoalesced switches kick delivery to coalesced mode: each
// notification that would kick the pump synchronously (a per-chip GC
// edge, for example) instead arms at most one kick event at the
// current instant, so a burst of notifications — or notifications
// arriving mid-drain — trigger a single pump wakeup after the burst.
// Off (the default) preserves the synchronous per-notification kick.
func (s *Scheduler) SetKickCoalesced(on bool) { s.coalesce = on }

// requestKick delivers one kick under the current coalescing policy.
func (s *Scheduler) requestKick() {
	if s.kick == nil {
		return
	}
	if !s.coalesce {
		s.kick()
		return
	}
	if s.kickArmed {
		return
	}
	s.kickArmed = true
	s.eng.Schedule(s.eng.Now(), func() {
		s.kickArmed = false
		s.kick()
	})
}

// SetGCActiveChips is the device-to-host notification sink: the device
// reports how many of its chips are currently garbage-collecting (or
// wear-leveling). Wire it to ssd.Device.SetGCNotifier.
func (s *Scheduler) SetGCActiveChips(chips int) {
	was := s.gcChips
	s.gcChips = chips
	if was != chips {
		// Both edges matter: GC starting may demote throughput work that
		// is already queued; GC ending frees it.
		s.requestKick()
	}
}

// GCActiveChips reports the device GC load last notified.
func (s *Scheduler) GCActiveChips() int { return s.gcChips }

// Enqueue adds one request for tenant t. cost is the request's size in
// scheduling units (1 for a page I/O); dispatch runs when the scheduler
// selects the request via Next. It reports whether the request was
// admitted: a tenant at its queue limit rejects instead of queueing
// (dispatch will never run; the caller must fail the request upward).
func (s *Scheduler) Enqueue(t *Tenant, cost int, dispatch func()) bool {
	return s.EnqueueSpan(t, cost, nil, dispatch)
}

// EnqueueSpan is Enqueue carrying a trace span: the scheduler stamps
// the span's queue-wait stage at dispatch, plus tokens-blocked and
// GC-deferral overlay time. A nil span traces nothing.
func (s *Scheduler) EnqueueSpan(t *Tenant, cost int, span *obs.Span, dispatch func()) bool {
	if cost < 1 {
		cost = 1
	}
	if t.queueLimit > 0 && t.qn >= t.queueLimit {
		t.Rejected++
		if t.onReject != nil {
			t.onReject()
		}
		return false
	}
	t.qPush(request{cost: cost, at: s.eng.Now(), dispatch: dispatch, span: span})
	t.backlogCost += cost
	t.Enqueued++
	s.backlog++
	if t.class == LatencySensitive {
		s.latencyBacklog++
		s.maybeDeferGC()
	}
	return true
}

// Item is one request of a batched enqueue (EnqueueBatch).
type Item struct {
	// Cost is the request's DRR billing (minimum 1, like Enqueue).
	Cost int
	// Span is the request's trace span (nil traces nothing).
	Span *obs.Span
	// Dispatch runs when the scheduler selects the request.
	Dispatch func()
}

// EnqueueBatch admits a batch of requests for tenant t in one
// bookkeeping pass. Items queue in order until the tenant's queue
// limit is reached; admitted reports how many got in, and the caller
// must fail items[admitted:] upward — their Dispatch will never run.
// Per-request billing is identical to calling EnqueueSpan per item.
// What the batch amortizes is the per-op control work: rejection
// accounting settles once, and the GC-deferral lease decision runs
// once per batch instead of once per latency-class request.
func (s *Scheduler) EnqueueBatch(t *Tenant, items []Item) (admitted int) {
	admitted = len(items)
	if t.queueLimit > 0 && t.qn+admitted > t.queueLimit {
		admitted = t.queueLimit - t.qn
		if admitted < 0 {
			admitted = 0
		}
		rejected := len(items) - admitted
		t.Rejected += int64(rejected)
		if t.onReject != nil {
			for i := 0; i < rejected; i++ {
				t.onReject()
			}
		}
	}
	if admitted == 0 {
		return 0
	}
	now := s.eng.Now()
	for _, it := range items[:admitted] {
		cost := it.Cost
		if cost < 1 {
			cost = 1
		}
		t.qPush(request{cost: cost, at: now, dispatch: it.Dispatch, span: it.Span})
		t.backlogCost += cost
	}
	t.Enqueued += int64(admitted)
	s.backlog += admitted
	if t.class == LatencySensitive {
		s.latencyBacklog += admitted
		s.maybeDeferGC()
	}
	return admitted
}

// eligible reports whether tenant t's head request may dispatch now.
func (s *Scheduler) eligible(t *Tenant, now sim.Time) bool {
	head := t.qAt(0)
	// The bucket is in ops, not DRR cost units: a rate cap promises
	// "this many requests per second" regardless of how expensively
	// each request is billed to the fair-queueing deficit.
	if t.bucket.Active() && t.bucket.Tokens(now) < 1 {
		if head.tokenFrom == 0 {
			head.tokenFrom = now
		}
		return false
	}
	if head.tokenFrom > 0 {
		head.tokenBlocked += now - head.tokenFrom
		head.tokenFrom = 0
	}
	if s.cfg.GCAware && s.gcChips > 0 && t.class == Throughput && s.latencyBacklog > 0 {
		if !head.deferred {
			head.deferred = true
			head.deferredAt = now
			s.GCDeferrals++
		}
		// The limit bounds time spent deferred, not total queue age, so
		// a request that already waited its fair-queueing turn can still
		// be held back briefly while GC and latency traffic overlap.
		if now-head.deferredAt < s.cfg.GCDeferLimit {
			return false
		}
	}
	return true
}

// pop dequeues tenant t's head request and settles its accounting.
// The ring pop is O(1); the slice-shift this replaced copied the whole
// remaining queue on every dispatch.
func (s *Scheduler) pop(t *Tenant, now sim.Time) request {
	head := t.qPop()
	t.backlogCost -= head.cost
	if t.qn == 0 {
		// Standard DRR: an idling tenant forfeits its deficit, so credit
		// cannot be hoarded across idle periods.
		t.deficit = 0
	}
	t.bucket.Take()
	t.Dispatched++
	t.Wait.Record(int64(now - head.at))
	s.waitByClass[classSlot(t.class)] += now - head.at
	if s.waitObs != nil {
		s.waitObs(t.class, now-head.at)
	}
	if sp := head.span; sp != nil {
		sp.Stamp(obs.StageSched, now-head.at)
		sp.NoteTokensBlocked(head.tokenBlocked)
		if head.deferred {
			sp.NoteGCDeferred(now - head.deferredAt)
		}
	}
	s.backlog--
	if t.class == LatencySensitive {
		s.latencyBacklog--
		if s.latencyBacklog == 0 {
			s.maybeResumeGC()
		} else {
			// The burst is still draining: keep the lease alive even if
			// no new latency request arrives to renew it.
			s.maybeDeferGC()
		}
	}
	return head
}

// Next selects the next request under deficit round robin, honoring
// rate caps and the GC-aware policy. It returns the request's dispatch
// function, or ok=false when nothing is eligible right now (in which
// case a wake-up timer is armed if eligibility will arrive on its own).
func (s *Scheduler) Next() (dispatch func(), ok bool) {
	if s.backlog == 0 {
		return nil, false
	}
	now := s.eng.Now()
	if d, ok := s.selectOne(now); ok {
		return d, true
	}
	s.armWakeup(now)
	return nil, false
}

// NextBatch drains up to max eligible dispatches in one call — the
// batched form of Next. Selection and deficit billing are the shared
// selectOne loop, identical per request to the one-at-a-time path;
// what a batch saves is the per-op control traffic: the wake-up timer
// is armed once per drain instead of once per miss, and the caller
// makes one drain decision for the whole batch. A short return means
// nothing further is eligible at this instant.
func (s *Scheduler) NextBatch(max int) []func() {
	if max <= 0 || s.backlog == 0 {
		return nil
	}
	now := s.eng.Now()
	var out []func()
	for len(out) < max {
		d, ok := s.selectOne(now)
		if !ok {
			s.armWakeup(now)
			break
		}
		out = append(out, d)
	}
	return out
}

// selectOne runs one DRR selection at instant now, without arming a
// wake-up on failure (Next and NextBatch arm it at their own cadence).
func (s *Scheduler) selectOne(now sim.Time) (dispatch func(), ok bool) {
	n := len(s.tenants)
	// Two scans at most: if the first finds eligible tenants but none
	// affordable, crediting jumps everyone forward by exactly the
	// number of whole DRR rounds that makes the cheapest head
	// affordable (equivalent to iterating rounds one by one, without a
	// bound that a large per-op cost could exhaust), so the second
	// scan dispatches.
	for {
		anyEligible := false
		for i := 0; i < n; i++ {
			idx := (s.rr + i) % n
			t := s.tenants[idx]
			if t.qn == 0 || !s.eligible(t, now) {
				continue
			}
			anyEligible = true
			if cost := t.qAt(0).cost; t.deficit >= cost {
				t.deficit -= cost
				head := s.pop(t, now)
				s.rr = (idx + 1) % n
				return head.dispatch, true
			}
		}
		if !anyEligible {
			return nil, false
		}
		rounds := 0
		for _, t := range s.tenants {
			if t.qn == 0 || !s.eligible(t, now) {
				continue
			}
			per := s.cfg.Quantum * t.weight
			need := (t.qAt(0).cost - t.deficit + per - 1) / per
			if need < 1 {
				need = 1
			}
			if rounds == 0 || need < rounds {
				rounds = need
			}
		}
		for _, t := range s.tenants {
			if t.qn > 0 && s.eligible(t, now) {
				t.deficit += rounds * s.cfg.Quantum * t.weight
			}
		}
	}
}

// armWakeup schedules a kick at the earliest future instant at which a
// currently ineligible head request becomes dispatchable: a token
// bucket refilling past its head cost, or a GC deferral aging past
// GCDeferLimit. Stale timers are harmless — the kick just finds
// nothing eligible and re-arms.
func (s *Scheduler) armWakeup(now sim.Time) {
	if s.kick == nil {
		return
	}
	wake := sim.MaxTime
	for _, t := range s.tenants {
		if t.qn == 0 {
			continue
		}
		head := t.qAt(0)
		if t.bucket.Active() && t.bucket.Tokens(now) < 1 {
			if at := t.bucket.WakeAt(now); at < wake {
				wake = at
			}
		}
		if s.cfg.GCAware && s.gcChips > 0 && t.class == Throughput && s.latencyBacklog > 0 && head.deferred {
			at := head.deferredAt + s.cfg.GCDeferLimit
			if at < wake {
				wake = at
			}
		}
	}
	if wake == sim.MaxTime {
		return
	}
	if wake <= now {
		wake = now + 1
	}
	s.eng.Schedule(wake, s.kick)
}

// WaitTable renders each tenant's queue-wait distribution, for
// experiment output.
func (s *Scheduler) WaitTable(title string) *metrics.Table {
	t := metrics.NewTable(title, "tenant", "class", "weight", "enq", "rej", "disp", "wait p50 (µs)", "wait p99 (µs)")
	for _, tn := range s.tenants {
		t.AddRow(tn.name, tn.class.String(), tn.weight, tn.Enqueued, tn.Rejected, tn.Dispatched,
			fmt.Sprintf("%.1f", float64(tn.Wait.P50())/1e3),
			fmt.Sprintf("%.1f", float64(tn.Wait.P99())/1e3))
	}
	return t
}
