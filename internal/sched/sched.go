// Package sched is a multi-tenant I/O scheduler for the submission
// path. The paper's thesis is that the block interface must die because
// it hides the information both sides need to schedule well; once host
// and device are communicating peers (package core), the host can run
// real per-tenant arbitration right above the device queue. This
// package provides that arbitration:
//
//   - tenant-tagged request classes: latency-sensitive tenants (point
//     lookups, commits) versus throughput tenants (scans, batch loads);
//   - weighted deficit-round-robin fair queueing across tenants, so one
//     noisy neighbor cannot monopolize the device queue;
//   - token-bucket rate caps per tenant, for hard QoS ceilings;
//   - per-tenant queue limits with reject callbacks, so admission
//     control (package serve) can turn overload into immediate,
//     accountable rejects instead of silent backlog growth;
//   - a GC-aware mode that consumes the device-to-host GC-activity
//     notifications (the communication abstraction at work) and defers
//     throughput-class dispatches while the device is relocating data
//     and a latency-sensitive tenant has requests at risk.
//
// The scheduler is pull-based: a downstream stack (package blockdev)
// enqueues tenant-tagged requests and pops the next dispatch whenever a
// device-queue slot frees. When nothing is eligible now but will be
// later (rate caps refilling, GC deferrals expiring), the scheduler
// arms a virtual-time timer and invokes the registered kick callback so
// the stack pulls again.
package sched

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// Class partitions tenants by what they are optimizing for.
type Class int

// Tenant classes.
const (
	// LatencySensitive tenants care about per-request tail latency
	// (point reads, commit waits).
	LatencySensitive Class = iota
	// Throughput tenants care about aggregate bandwidth (scans,
	// batch loads, background maintenance) and tolerate deferral.
	Throughput
)

// String names the class.
func (c Class) String() string {
	switch c {
	case LatencySensitive:
		return "latency"
	case Throughput:
		return "throughput"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Config parameterizes a Scheduler.
type Config struct {
	// Quantum is the deficit credit per unit weight per round (cost
	// units). Larger quanta lower scheduling overhead but coarsen
	// interleaving. Zero means 1.
	Quantum int
	// GCAware enables deferral of throughput-class dispatches while the
	// device reports active garbage collection and a latency-sensitive
	// tenant has queued requests.
	GCAware bool
	// GCDeferLimit bounds how long one throughput request may be held
	// back by GC-awareness, so background tenants cannot starve
	// outright. Zero means 2ms.
	GCDeferLimit sim.Time
}

// DefaultConfig returns the standard scheduler parameters.
func DefaultConfig() Config {
	return Config{Quantum: 1, GCAware: true, GCDeferLimit: 2 * sim.Millisecond}
}

// TokenBucket is a virtual-time token bucket: rate tokens per second up
// to a burst cap, starting full. It is the admission currency shared by
// tenant rate caps here and shard-boundary admission control (package
// serve). The zero value is inactive: never empty, never refilled.
type TokenBucket struct {
	rate   float64
	burst  float64
	tokens float64
	last   sim.Time
}

// NewTokenBucket returns a full bucket refilling at rate tokens/sec up
// to burst (minimum 1). rate <= 0 yields an inactive bucket.
func NewTokenBucket(rate float64, burst int, now sim.Time) TokenBucket {
	if rate <= 0 {
		return TokenBucket{}
	}
	if burst < 1 {
		burst = 1
	}
	return TokenBucket{rate: rate, burst: float64(burst), tokens: float64(burst), last: now}
}

// Active reports whether the bucket enforces a rate.
func (b *TokenBucket) Active() bool { return b.rate > 0 }

// Refill tops the bucket up to now. Refilling at or before the last
// refill instant mints nothing.
func (b *TokenBucket) Refill(now sim.Time) {
	if b.rate == 0 || now <= b.last {
		return
	}
	b.tokens += b.rate * (now - b.last).Seconds()
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = now
}

// Tokens reports the balance after refilling to now.
func (b *TokenBucket) Tokens(now sim.Time) float64 {
	b.Refill(now)
	return b.tokens
}

// Take consumes one token (callers gate on Tokens first).
func (b *TokenBucket) Take() {
	if b.rate > 0 {
		b.tokens--
	}
}

// TryTake consumes one token if available, reporting success. An
// inactive bucket always succeeds.
func (b *TokenBucket) TryTake(now sim.Time) bool {
	if b.rate == 0 {
		return true
	}
	b.Refill(now)
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// WakeAt reports the instant the bucket will next hold a whole token
// (call only on an active bucket that is currently short).
func (b *TokenBucket) WakeAt(now sim.Time) sim.Time {
	need := 1 - b.tokens
	return now + sim.Time(need/b.rate*float64(sim.Second)) + 1
}

// request is one queued dispatch.
type request struct {
	cost       int
	at         sim.Time // enqueue time
	deferred   bool     // GC-deferral in effect (counted once)
	deferredAt sim.Time // when the deferral began
	dispatch   func()
}

// Tenant is one registered traffic source. Create with
// Scheduler.AddTenant; fields are managed by the scheduler.
type Tenant struct {
	s      *Scheduler
	name   string
	class  Class
	weight int

	deficit     int
	q           []request
	backlogCost int // queued cost units (sum of q[i].cost)

	// Admission control: queueLimit bounds the queue (ops); enqueues
	// past it are rejected instead of silently backlogged, and onReject
	// runs once per rejection.
	queueLimit int
	onReject   func()

	// Token-bucket rate cap (ops/sec); an inactive bucket is uncapped.
	bucket TokenBucket

	// Enqueued and Dispatched count requests through this tenant.
	Enqueued   int64
	Dispatched int64
	// Rejected counts enqueues refused by the queue limit.
	Rejected int64
	// Wait records per-request queue delay (enqueue to dispatch) in
	// nanoseconds.
	Wait metrics.Histogram
}

// Name returns the tenant's registered name.
func (t *Tenant) Name() string { return t.name }

// Class returns the tenant's class.
func (t *Tenant) Class() Class { return t.class }

// Weight returns the tenant's fair-share weight.
func (t *Tenant) Weight() int { return t.weight }

// Backlog reports the tenant's queued work in cost units (the same
// units deficit round robin arbitrates), so a backlog of expensive
// writes and a backlog of cheap reads compare honestly. BacklogOps
// reports the op count.
func (t *Tenant) Backlog() int { return t.backlogCost }

// BacklogOps reports the tenant's queued request count.
func (t *Tenant) BacklogOps() int { return len(t.q) }

// SetQueueLimit bounds the tenant's queue to n requests; further
// enqueues are rejected (Enqueue returns false) until dispatches drain
// the queue below the limit. n <= 0 removes the bound. Combined with
// SetRateLimit this is admission control: an empty token bucket stalls
// the queue, the limit turns the resulting overflow into immediate
// rejects instead of silent backlog.
func (t *Tenant) SetQueueLimit(n int) {
	if n < 0 {
		n = 0
	}
	t.queueLimit = n
}

// QueueLimit reports the tenant's queue bound (0 = unbounded).
func (t *Tenant) QueueLimit() int { return t.queueLimit }

// OnReject registers a callback invoked once per rejected enqueue
// (admission-control accounting hooks).
func (t *Tenant) OnReject(fn func()) { t.onReject = fn }

// Tokens reports the tenant's current rate-cap token balance after
// refilling to now (meaningless when no rate limit is set).
func (t *Tenant) Tokens() float64 {
	return t.bucket.Tokens(t.s.eng.Now())
}

// SetRateLimit caps the tenant at opsPerSec with the given burst
// allowance (ops). opsPerSec <= 0 removes the cap.
func (t *Tenant) SetRateLimit(opsPerSec float64, burst int) {
	t.bucket = NewTokenBucket(opsPerSec, burst, t.s.eng.Now())
}

// Scheduler arbitrates tenant-tagged requests onto a single downstream
// queue. It is single-threaded, like everything on a sim.Engine.
type Scheduler struct {
	eng *sim.Engine
	cfg Config

	tenants []*Tenant
	rr      int // round-robin scan origin

	backlog        int // queued requests, all tenants
	latencyBacklog int // queued requests of latency-sensitive tenants

	gcChips int // device-reported chips currently garbage-collecting
	kick    func()

	// GCDeferrals counts throughput requests held back at least once by
	// the GC-aware policy.
	GCDeferrals int64
}

// New builds a scheduler on eng.
func New(eng *sim.Engine, cfg Config) *Scheduler {
	if cfg.Quantum <= 0 {
		cfg.Quantum = 1
	}
	if cfg.GCDeferLimit <= 0 {
		cfg.GCDeferLimit = 2 * sim.Millisecond
	}
	return &Scheduler{eng: eng, cfg: cfg}
}

// AddTenant registers a traffic source. Weight sets its fair share
// relative to other tenants (minimum 1).
func (s *Scheduler) AddTenant(name string, class Class, weight int) *Tenant {
	if weight < 1 {
		weight = 1
	}
	t := &Tenant{s: s, name: name, class: class, weight: weight}
	s.tenants = append(s.tenants, t)
	return t
}

// Tenants returns the registered tenants in registration order.
func (s *Scheduler) Tenants() []*Tenant { return s.tenants }

// Backlog reports the total queued request count across tenants (ops,
// not cost units; see Tenant.Backlog for per-tenant cost backlog).
func (s *Scheduler) Backlog() int { return s.backlog }

// SetKick registers the callback invoked when previously ineligible
// work becomes dispatchable (rate tokens refill, GC state changes).
// The downstream stack points this at its queue pump.
func (s *Scheduler) SetKick(fn func()) { s.kick = fn }

// SetGCActiveChips is the device-to-host notification sink: the device
// reports how many of its chips are currently garbage-collecting (or
// wear-leveling). Wire it to ssd.Device.SetGCNotifier.
func (s *Scheduler) SetGCActiveChips(chips int) {
	was := s.gcChips
	s.gcChips = chips
	if was != chips && s.kick != nil {
		// Both edges matter: GC starting may demote throughput work that
		// is already queued; GC ending frees it.
		s.kick()
	}
}

// GCActiveChips reports the device GC load last notified.
func (s *Scheduler) GCActiveChips() int { return s.gcChips }

// Enqueue adds one request for tenant t. cost is the request's size in
// scheduling units (1 for a page I/O); dispatch runs when the scheduler
// selects the request via Next. It reports whether the request was
// admitted: a tenant at its queue limit rejects instead of queueing
// (dispatch will never run; the caller must fail the request upward).
func (s *Scheduler) Enqueue(t *Tenant, cost int, dispatch func()) bool {
	if cost < 1 {
		cost = 1
	}
	if t.queueLimit > 0 && len(t.q) >= t.queueLimit {
		t.Rejected++
		if t.onReject != nil {
			t.onReject()
		}
		return false
	}
	t.q = append(t.q, request{cost: cost, at: s.eng.Now(), dispatch: dispatch})
	t.backlogCost += cost
	t.Enqueued++
	s.backlog++
	if t.class == LatencySensitive {
		s.latencyBacklog++
	}
	return true
}

// eligible reports whether tenant t's head request may dispatch now.
func (s *Scheduler) eligible(t *Tenant, now sim.Time) bool {
	head := &t.q[0]
	// The bucket is in ops, not DRR cost units: a rate cap promises
	// "this many requests per second" regardless of how expensively
	// each request is billed to the fair-queueing deficit.
	if t.bucket.Active() && t.bucket.Tokens(now) < 1 {
		return false
	}
	if s.cfg.GCAware && s.gcChips > 0 && t.class == Throughput && s.latencyBacklog > 0 {
		if !head.deferred {
			head.deferred = true
			head.deferredAt = now
			s.GCDeferrals++
		}
		// The limit bounds time spent deferred, not total queue age, so
		// a request that already waited its fair-queueing turn can still
		// be held back briefly while GC and latency traffic overlap.
		if now-head.deferredAt < s.cfg.GCDeferLimit {
			return false
		}
	}
	return true
}

// pop dequeues tenant t's head request and settles its accounting.
func (s *Scheduler) pop(t *Tenant, now sim.Time) request {
	head := t.q[0]
	t.q = t.q[0:copy(t.q, t.q[1:])]
	t.backlogCost -= head.cost
	if len(t.q) == 0 {
		// Standard DRR: an idling tenant forfeits its deficit, so credit
		// cannot be hoarded across idle periods.
		t.deficit = 0
	}
	t.bucket.Take()
	t.Dispatched++
	t.Wait.Record(int64(now - head.at))
	s.backlog--
	if t.class == LatencySensitive {
		s.latencyBacklog--
	}
	return head
}

// Next selects the next request under deficit round robin, honoring
// rate caps and the GC-aware policy. It returns the request's dispatch
// function, or ok=false when nothing is eligible right now (in which
// case a wake-up timer is armed if eligibility will arrive on its own).
func (s *Scheduler) Next() (dispatch func(), ok bool) {
	if s.backlog == 0 {
		return nil, false
	}
	now := s.eng.Now()
	n := len(s.tenants)
	// Two scans at most: if the first finds eligible tenants but none
	// affordable, crediting jumps everyone forward by exactly the
	// number of whole DRR rounds that makes the cheapest head
	// affordable (equivalent to iterating rounds one by one, without a
	// bound that a large per-op cost could exhaust), so the second
	// scan dispatches.
	for {
		anyEligible := false
		for i := 0; i < n; i++ {
			idx := (s.rr + i) % n
			t := s.tenants[idx]
			if len(t.q) == 0 || !s.eligible(t, now) {
				continue
			}
			anyEligible = true
			if t.deficit >= t.q[0].cost {
				t.deficit -= t.q[0].cost
				head := s.pop(t, now)
				s.rr = (idx + 1) % n
				return head.dispatch, true
			}
		}
		if !anyEligible {
			break
		}
		rounds := 0
		for _, t := range s.tenants {
			if len(t.q) == 0 || !s.eligible(t, now) {
				continue
			}
			per := s.cfg.Quantum * t.weight
			need := (t.q[0].cost - t.deficit + per - 1) / per
			if need < 1 {
				need = 1
			}
			if rounds == 0 || need < rounds {
				rounds = need
			}
		}
		for _, t := range s.tenants {
			if len(t.q) > 0 && s.eligible(t, now) {
				t.deficit += rounds * s.cfg.Quantum * t.weight
			}
		}
	}
	s.armWakeup(now)
	return nil, false
}

// armWakeup schedules a kick at the earliest future instant at which a
// currently ineligible head request becomes dispatchable: a token
// bucket refilling past its head cost, or a GC deferral aging past
// GCDeferLimit. Stale timers are harmless — the kick just finds
// nothing eligible and re-arms.
func (s *Scheduler) armWakeup(now sim.Time) {
	if s.kick == nil {
		return
	}
	wake := sim.MaxTime
	for _, t := range s.tenants {
		if len(t.q) == 0 {
			continue
		}
		head := &t.q[0]
		if t.bucket.Active() && t.bucket.Tokens(now) < 1 {
			if at := t.bucket.WakeAt(now); at < wake {
				wake = at
			}
		}
		if s.cfg.GCAware && s.gcChips > 0 && t.class == Throughput && s.latencyBacklog > 0 && head.deferred {
			at := head.deferredAt + s.cfg.GCDeferLimit
			if at < wake {
				wake = at
			}
		}
	}
	if wake == sim.MaxTime {
		return
	}
	if wake <= now {
		wake = now + 1
	}
	s.eng.Schedule(wake, s.kick)
}

// WaitTable renders each tenant's queue-wait distribution, for
// experiment output.
func (s *Scheduler) WaitTable(title string) *metrics.Table {
	t := metrics.NewTable(title, "tenant", "class", "weight", "enq", "rej", "disp", "wait p50 (µs)", "wait p99 (µs)")
	for _, tn := range s.tenants {
		t.AddRow(tn.name, tn.class.String(), tn.weight, tn.Enqueued, tn.Rejected, tn.Dispatched,
			fmt.Sprintf("%.1f", float64(tn.Wait.P50())/1e3),
			fmt.Sprintf("%.1f", float64(tn.Wait.P99())/1e3))
	}
	return t
}
