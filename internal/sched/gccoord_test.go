package sched

import (
	"testing"

	"repro/internal/sim"
)

// fakeGCControl records the control traffic a scheduler sends to its
// device.
type fakeGCControl struct {
	defers  int
	resumes int
	until   sim.Time
	refuse  bool
}

func (c *fakeGCControl) DeferGC(deadline sim.Time) bool {
	c.defers++
	if c.refuse {
		return false
	}
	c.until = deadline
	return true
}

func (c *fakeGCControl) ResumeGC() { c.resumes++ }

// TestGCCoordinationLeasesAndReleases checks the host policy: a
// latency-sensitive backlog leases a deferral, a fresh lease is not
// re-requested per enqueue, and draining the backlog releases it.
func TestGCCoordinationLeasesAndReleases(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.GCCoordinate = true
	cfg.GCDeferSlice = sim.Millisecond
	sc := New(eng, cfg)
	ctl := &fakeGCControl{}
	sc.SetGCControl(ctl)
	r := newRig(eng, sc, 1, 100*sim.Microsecond)
	ls := sc.AddTenant("ls", LatencySensitive, 1)
	tp := sc.AddTenant("tp", Throughput, 1)

	// Throughput work alone must not lease anything.
	r.enqueueN(tp, 4)
	if ctl.defers != 0 {
		t.Fatalf("throughput backlog leased a deferral (%d)", ctl.defers)
	}

	// The first latency request leases; the burst right behind it rides
	// the same fresh lease.
	r.enqueueN(ls, 3)
	if ctl.defers != 1 {
		t.Fatalf("defers = %d after a latency burst, want 1 (lease reuse)", ctl.defers)
	}
	if want := eng.Now() + cfg.GCDeferSlice; ctl.until != want {
		t.Fatalf("lease deadline = %v, want %v", ctl.until, want)
	}
	if !sc.GCCoordActive() {
		t.Fatal("no active lease after a granted defer")
	}

	// Draining the latency backlog releases the lease exactly once.
	r.pump()
	eng.Run()
	if ctl.resumes != 1 {
		t.Fatalf("resumes = %d after the burst drained, want 1", ctl.resumes)
	}
	if sc.GCCoordActive() {
		t.Fatal("lease still active after resume")
	}
	g := sc.GCCoord()
	if g.HostRequests != int64(ctl.defers) || g.HostResumes != int64(ctl.resumes) {
		t.Fatalf("ledger %+v disagrees with control traffic (%d/%d)", g, ctl.defers, ctl.resumes)
	}
}

// TestGCCoordinationHandlesRefusal checks that a device at its floor
// refusing the lease is accounted and does not wedge the scheduler.
func TestGCCoordinationHandlesRefusal(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.GCCoordinate = true
	sc := New(eng, cfg)
	ctl := &fakeGCControl{refuse: true}
	sc.SetGCControl(ctl)
	r := newRig(eng, sc, 1, 100*sim.Microsecond)
	ls := sc.AddTenant("ls", LatencySensitive, 1)

	r.enqueueN(ls, 2)
	if ctl.defers == 0 {
		t.Fatal("no defer attempted")
	}
	if sc.GCCoordActive() {
		t.Fatal("lease recorded active despite device refusal")
	}
	if sc.GCDeferRefused == 0 {
		t.Fatal("refusal not accounted")
	}
	r.pump()
	eng.Run()
	if ctl.resumes != 0 {
		t.Fatalf("resumed a lease that was never granted (%d)", ctl.resumes)
	}
}

// TestGCCoordinationOffByDefault: without GCCoordinate the scheduler
// must never touch the control surface, even when one is wired.
func TestGCCoordinationOffByDefault(t *testing.T) {
	eng := sim.NewEngine()
	sc := New(eng, DefaultConfig())
	ctl := &fakeGCControl{}
	sc.SetGCControl(ctl)
	r := newRig(eng, sc, 1, 100*sim.Microsecond)
	ls := sc.AddTenant("ls", LatencySensitive, 1)
	r.enqueueN(ls, 4)
	r.pump()
	eng.Run()
	if ctl.defers != 0 || ctl.resumes != 0 {
		t.Fatalf("control traffic (%d defers, %d resumes) with coordination off", ctl.defers, ctl.resumes)
	}
}
