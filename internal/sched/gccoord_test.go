package sched

import (
	"testing"

	"repro/internal/ftl"
	"repro/internal/sim"
)

// fakeGCControl records the control traffic a scheduler sends to its
// device.
type fakeGCControl struct {
	defers  int
	resumes int
	until   sim.Time
	refuse  bool
}

// fakeGCProbe is a fakeGCControl that also reports urgency (the
// adaptive lease policy's input).
type fakeGCProbe struct {
	fakeGCControl
	urgency ftl.GCUrgency
}

func (c *fakeGCProbe) GCUrgency() ftl.GCUrgency { return c.urgency }

func (c *fakeGCControl) DeferGC(deadline sim.Time) bool {
	c.defers++
	if c.refuse {
		return false
	}
	c.until = deadline
	return true
}

func (c *fakeGCControl) ResumeGC() { c.resumes++ }

// TestGCCoordinationLeasesAndReleases checks the host policy: a
// latency-sensitive backlog leases a deferral, a fresh lease is not
// re-requested per enqueue, and draining the backlog releases it.
func TestGCCoordinationLeasesAndReleases(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.GCCoordinate = true
	cfg.GCDeferSlice = sim.Millisecond
	sc := New(eng, cfg)
	ctl := &fakeGCControl{}
	sc.SetGCControl(ctl)
	r := newRig(eng, sc, 1, 100*sim.Microsecond)
	ls := sc.AddTenant("ls", LatencySensitive, 1)
	tp := sc.AddTenant("tp", Throughput, 1)

	// Throughput work alone must not lease anything.
	r.enqueueN(tp, 4)
	if ctl.defers != 0 {
		t.Fatalf("throughput backlog leased a deferral (%d)", ctl.defers)
	}

	// The first latency request leases; the burst right behind it rides
	// the same fresh lease.
	r.enqueueN(ls, 3)
	if ctl.defers != 1 {
		t.Fatalf("defers = %d after a latency burst, want 1 (lease reuse)", ctl.defers)
	}
	if want := eng.Now() + cfg.GCDeferSlice; ctl.until != want {
		t.Fatalf("lease deadline = %v, want %v", ctl.until, want)
	}
	if !sc.GCCoordActive() {
		t.Fatal("no active lease after a granted defer")
	}

	// Draining the latency backlog releases the lease exactly once.
	r.pump()
	eng.Run()
	if ctl.resumes != 1 {
		t.Fatalf("resumes = %d after the burst drained, want 1", ctl.resumes)
	}
	if sc.GCCoordActive() {
		t.Fatal("lease still active after resume")
	}
	g := sc.GCCoord()
	if g.HostRequests != int64(ctl.defers) || g.HostResumes != int64(ctl.resumes) {
		t.Fatalf("ledger %+v disagrees with control traffic (%d/%d)", g, ctl.defers, ctl.resumes)
	}
}

// TestGCCoordinationHandlesRefusal checks that a device at its floor
// refusing the lease is accounted and does not wedge the scheduler.
func TestGCCoordinationHandlesRefusal(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.GCCoordinate = true
	sc := New(eng, cfg)
	ctl := &fakeGCControl{refuse: true}
	sc.SetGCControl(ctl)
	r := newRig(eng, sc, 1, 100*sim.Microsecond)
	ls := sc.AddTenant("ls", LatencySensitive, 1)

	r.enqueueN(ls, 2)
	if ctl.defers == 0 {
		t.Fatal("no defer attempted")
	}
	if sc.GCCoordActive() {
		t.Fatal("lease recorded active despite device refusal")
	}
	if sc.GCDeferRefused == 0 {
		t.Fatal("refusal not accounted")
	}
	r.pump()
	eng.Run()
	if ctl.resumes != 0 {
		t.Fatalf("resumed a lease that was never granted (%d)", ctl.resumes)
	}
}

// TestGCLeaseAdaptiveSizing checks the urgency-driven lease policy: a
// relaxed device gets the full slice, an elevated one half, and an
// urgent one is not asked at all (declined locally, with backoff, and
// accounted in the ledger).
func TestGCLeaseAdaptiveSizing(t *testing.T) {
	lease := func(urgency ftl.GCUrgency) (*Scheduler, *fakeGCProbe, sim.Time) {
		eng := sim.NewEngine()
		cfg := DefaultConfig()
		cfg.GCCoordinate = true
		cfg.GCLeaseAdaptive = true
		cfg.GCDeferSlice = sim.Millisecond
		sc := New(eng, cfg)
		ctl := &fakeGCProbe{urgency: urgency}
		sc.SetGCControl(ctl)
		r := newRig(eng, sc, 1, 100*sim.Microsecond)
		ls := sc.AddTenant("ls", LatencySensitive, 1)
		r.enqueueN(ls, 2)
		return sc, ctl, eng.Now()
	}

	sc, ctl, now := lease(ftl.GCRelaxed)
	if ctl.defers != 1 || ctl.until != now+sim.Millisecond {
		t.Fatalf("relaxed: defers=%d until=%v, want full 1ms slice", ctl.defers, ctl.until)
	}
	if sc.GCDeferDeclined != 0 {
		t.Fatalf("relaxed: declined %d leases", sc.GCDeferDeclined)
	}

	_, ctl, now = lease(ftl.GCElevated)
	if ctl.defers != 1 || ctl.until != now+sim.Millisecond/2 {
		t.Fatalf("elevated: defers=%d until=%v, want half slice", ctl.defers, ctl.until)
	}

	sc, ctl, _ = lease(ftl.GCUrgent)
	if ctl.defers != 0 {
		t.Fatalf("urgent: device was asked %d times, want 0 (declined locally)", ctl.defers)
	}
	if sc.GCDeferDeclined == 0 {
		t.Fatal("urgent: decline not accounted")
	}
	if g := sc.GCCoord(); g.HostDeclined != sc.GCDeferDeclined {
		t.Fatalf("ledger HostDeclined = %d, counter %d", g.HostDeclined, sc.GCDeferDeclined)
	}
	if sc.GCCoordActive() {
		t.Fatal("urgent: lease recorded active without a grant")
	}
}

// TestGCLeaseAdaptiveWithoutProbe: a control surface that cannot report
// urgency is driven exactly like the fixed-slice policy.
func TestGCLeaseAdaptiveWithoutProbe(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.GCCoordinate = true
	cfg.GCLeaseAdaptive = true
	cfg.GCDeferSlice = sim.Millisecond
	sc := New(eng, cfg)
	ctl := &fakeGCControl{}
	sc.SetGCControl(ctl)
	r := newRig(eng, sc, 1, 100*sim.Microsecond)
	ls := sc.AddTenant("ls", LatencySensitive, 1)
	r.enqueueN(ls, 2)
	if ctl.defers != 1 || ctl.until != eng.Now()+sim.Millisecond {
		t.Fatalf("probe-less adaptive: defers=%d until=%v, want full slice", ctl.defers, ctl.until)
	}
}

// TestGCCoordinationOffByDefault: without GCCoordinate the scheduler
// must never touch the control surface, even when one is wired.
func TestGCCoordinationOffByDefault(t *testing.T) {
	eng := sim.NewEngine()
	sc := New(eng, DefaultConfig())
	ctl := &fakeGCControl{}
	sc.SetGCControl(ctl)
	r := newRig(eng, sc, 1, 100*sim.Microsecond)
	ls := sc.AddTenant("ls", LatencySensitive, 1)
	r.enqueueN(ls, 4)
	r.pump()
	eng.Run()
	if ctl.defers != 0 || ctl.resumes != 0 {
		t.Fatalf("control traffic (%d defers, %d resumes) with coordination off", ctl.defers, ctl.resumes)
	}
}
