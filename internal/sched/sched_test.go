package sched

import (
	"testing"

	"repro/internal/sim"
)

// rig emulates the downstream stack: a device queue with a fixed number
// of slots and fixed per-request service time, pulling from the
// scheduler exactly the way blockdev's pump does.
type rig struct {
	eng      *sim.Engine
	sc       *Scheduler
	slots    int
	inflight int
	service  sim.Time
}

func newRig(eng *sim.Engine, sc *Scheduler, slots int, service sim.Time) *rig {
	r := &rig{eng: eng, sc: sc, slots: slots, service: service}
	sc.SetKick(r.pump)
	return r
}

func (r *rig) pump() {
	for r.inflight < r.slots {
		d, ok := r.sc.Next()
		if !ok {
			return
		}
		r.inflight++
		d()
	}
}

// enqueueN adds n unit-cost requests for t whose dispatch occupies one
// rig slot for the service time.
func (r *rig) enqueueN(t *Tenant, n int) {
	for i := 0; i < n; i++ {
		r.sc.Enqueue(t, 1, func() {
			r.eng.After(r.service, func() {
				r.inflight--
				r.pump()
			})
		})
	}
}

func TestWeightedFairness(t *testing.T) {
	eng := sim.NewEngine()
	sc := New(eng, DefaultConfig())
	a := sc.AddTenant("a", Throughput, 4)
	b := sc.AddTenant("b", Throughput, 2)
	c := sc.AddTenant("c", Throughput, 1)
	r := newRig(eng, sc, 4, 10*sim.Microsecond)
	r.enqueueN(a, 20000)
	r.enqueueN(b, 20000)
	r.enqueueN(c, 20000)
	r.pump()
	eng.RunUntil(20 * sim.Millisecond)

	total := a.Dispatched + b.Dispatched + c.Dispatched
	if total < 1000 {
		t.Fatalf("only %d dispatches in the window", total)
	}
	for _, tn := range []*Tenant{a, b, c} {
		if tn.Backlog() == 0 {
			t.Fatalf("tenant %s drained; shares are no longer comparable", tn.Name())
		}
		share := float64(tn.Dispatched) / float64(total)
		want := float64(tn.Weight()) / 7
		if share < want*0.9 || share > want*1.1 {
			t.Errorf("tenant %s got share %.3f, want %.3f ±10%%", tn.Name(), share, want)
		}
	}
}

func TestEqualWeightsSplitEvenly(t *testing.T) {
	eng := sim.NewEngine()
	sc := New(eng, DefaultConfig())
	a := sc.AddTenant("a", Throughput, 1)
	b := sc.AddTenant("b", Throughput, 1)
	r := newRig(eng, sc, 2, 5*sim.Microsecond)
	r.enqueueN(a, 10000)
	r.enqueueN(b, 10000)
	r.pump()
	eng.RunUntil(10 * sim.Millisecond)
	if a.Dispatched == 0 || b.Dispatched == 0 {
		t.Fatal("a tenant starved")
	}
	diff := a.Dispatched - b.Dispatched
	if diff < 0 {
		diff = -diff
	}
	if float64(diff) > 0.05*float64(a.Dispatched+b.Dispatched) {
		t.Fatalf("equal weights diverged: a=%d b=%d", a.Dispatched, b.Dispatched)
	}
}

func TestRateCapEnforced(t *testing.T) {
	eng := sim.NewEngine()
	sc := New(eng, DefaultConfig())
	capped := sc.AddTenant("capped", Throughput, 1)
	capped.SetRateLimit(10000, 1) // 10 ops per millisecond
	r := newRig(eng, sc, 8, 1*sim.Microsecond)
	r.enqueueN(capped, 1000)
	r.pump()
	eng.RunUntil(5 * sim.Millisecond)
	// 5ms at 10 ops/ms is ~50 dispatches plus the burst allowance; the
	// device is far faster, so only the bucket can be the limiter.
	if capped.Dispatched < 45 || capped.Dispatched > 60 {
		t.Fatalf("capped tenant dispatched %d in 5ms, want ~50", capped.Dispatched)
	}
}

func TestRateCapDoesNotStealFromOthers(t *testing.T) {
	eng := sim.NewEngine()
	sc := New(eng, DefaultConfig())
	capped := sc.AddTenant("capped", Throughput, 8)
	free := sc.AddTenant("free", Throughput, 1)
	capped.SetRateLimit(1000, 1)
	r := newRig(eng, sc, 1, 2*sim.Microsecond)
	r.enqueueN(capped, 5000)
	r.enqueueN(free, 5000)
	r.pump()
	eng.RunUntil(4 * sim.Millisecond)
	// The uncapped tenant must absorb the bandwidth the capped tenant's
	// bucket refuses, despite its lower weight.
	if free.Dispatched < 10*capped.Dispatched {
		t.Fatalf("uncapped tenant got %d vs capped %d; cap should free the queue",
			free.Dispatched, capped.Dispatched)
	}
}

func TestGCAwareDefersThroughputUnderLatencyBacklog(t *testing.T) {
	eng := sim.NewEngine()
	sc := New(eng, DefaultConfig())
	lat := sc.AddTenant("lat", LatencySensitive, 1)
	bg := sc.AddTenant("bg", Throughput, 8)
	r := newRig(eng, sc, 1, 10*sim.Microsecond)

	sc.SetGCActiveChips(2) // device says: GC running on two chips
	r.enqueueN(bg, 50)
	r.enqueueN(lat, 50)
	r.pump()
	eng.RunUntil(400 * sim.Microsecond)

	if lat.Dispatched < 30 {
		t.Fatalf("latency tenant made no progress under GC: %d", lat.Dispatched)
	}
	if bg.Dispatched != 0 {
		t.Fatalf("throughput tenant dispatched %d during GC with latency backlog", bg.Dispatched)
	}
	if sc.GCDeferrals == 0 {
		t.Fatal("no GC deferrals recorded")
	}

	// GC ends: the backlog of background work drains.
	sc.SetGCActiveChips(0)
	eng.Run()
	if bg.Dispatched != 50 || lat.Dispatched != 50 {
		t.Fatalf("after GC cleared: bg=%d lat=%d, want 50/50", bg.Dispatched, lat.Dispatched)
	}
}

func TestGCDeferralBoundedByLimit(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.GCDeferLimit = 500 * sim.Microsecond
	sc := New(eng, cfg)
	lat := sc.AddTenant("lat", LatencySensitive, 1)
	bg := sc.AddTenant("bg", Throughput, 1)
	r := newRig(eng, sc, 1, 10*sim.Microsecond)

	sc.SetGCActiveChips(1)
	r.enqueueN(bg, 1)
	r.enqueueN(lat, 10000) // latency backlog never drains in the window
	r.pump()

	eng.RunUntil(400 * sim.Microsecond)
	if bg.Dispatched != 0 {
		t.Fatalf("background request dispatched %d before the defer limit", bg.Dispatched)
	}
	eng.RunUntil(2 * sim.Millisecond)
	if bg.Dispatched != 1 {
		t.Fatalf("background request still starved after the defer limit: %d", bg.Dispatched)
	}
}

func TestNotGCAwareIgnoresNotifications(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.GCAware = false
	sc := New(eng, cfg)
	lat := sc.AddTenant("lat", LatencySensitive, 1)
	bg := sc.AddTenant("bg", Throughput, 1)
	r := newRig(eng, sc, 1, 10*sim.Microsecond)
	sc.SetGCActiveChips(4)
	r.enqueueN(lat, 20)
	r.enqueueN(bg, 20)
	r.pump()
	eng.Run()
	if bg.Dispatched != 20 || sc.GCDeferrals != 0 {
		t.Fatalf("GC-unaware scheduler deferred: bg=%d deferrals=%d", bg.Dispatched, sc.GCDeferrals)
	}
}

func TestIdleTenantForfeitsDeficit(t *testing.T) {
	eng := sim.NewEngine()
	sc := New(eng, DefaultConfig())
	a := sc.AddTenant("a", Throughput, 10)
	b := sc.AddTenant("b", Throughput, 1)
	r := newRig(eng, sc, 1, 10*sim.Microsecond)
	// a drains completely, goes idle, then returns: it must not have
	// banked credit from the idle period.
	r.enqueueN(a, 5)
	r.pump()
	eng.Run()
	if a.deficit != 0 {
		t.Fatalf("idle tenant kept deficit %d", a.deficit)
	}
	r.enqueueN(a, 100)
	r.enqueueN(b, 100)
	r.pump()
	eng.RunUntil(eng.Now() + 500*sim.Microsecond)
	if b.Dispatched == 0 {
		t.Fatal("low-weight tenant starved after rival's idle period")
	}
}

func TestWaitHistogramRecords(t *testing.T) {
	eng := sim.NewEngine()
	sc := New(eng, DefaultConfig())
	a := sc.AddTenant("a", LatencySensitive, 1)
	r := newRig(eng, sc, 1, 100*sim.Microsecond)
	r.enqueueN(a, 10)
	r.pump()
	eng.Run()
	if a.Wait.Count() != 10 {
		t.Fatalf("wait samples = %d, want 10", a.Wait.Count())
	}
	// The 10th request waited behind nine 100µs services.
	if a.Wait.Max() < int64(800*sim.Microsecond) {
		t.Fatalf("max wait %d implausibly low", a.Wait.Max())
	}
	tbl := sc.WaitTable("waits")
	if tbl.Rows() != 1 {
		t.Fatal("wait table missing tenant row")
	}
}

// enqueueCostN is enqueueN with an explicit DRR cost per request.
func (r *rig) enqueueCostN(t *Tenant, cost, n int) {
	for i := 0; i < n; i++ {
		r.sc.Enqueue(t, cost, func() {
			r.eng.After(r.service, func() {
				r.inflight--
				r.pump()
			})
		})
	}
}

func TestLargeCostDispatchesFromIdle(t *testing.T) {
	eng := sim.NewEngine()
	sc := New(eng, DefaultConfig())
	a := sc.AddTenant("a", Throughput, 1)
	r := newRig(eng, sc, 1, 10*sim.Microsecond)
	// Cost far beyond any fixed crediting-pass budget: the deficit jump
	// must cover it in one Next call, or the engine deadlocks.
	r.enqueueCostN(a, 10000, 3)
	r.pump()
	eng.Run()
	if a.Dispatched != 3 {
		t.Fatalf("dispatched %d of 3 large-cost requests", a.Dispatched)
	}
}

func TestEnqueuePastLimitRejected(t *testing.T) {
	eng := sim.NewEngine()
	sc := New(eng, DefaultConfig())
	a := sc.AddTenant("a", Throughput, 1)
	a.SetQueueLimit(4)
	rejects := 0
	a.OnReject(func() { rejects++ })
	// No rig attached: nothing drains, so the 5th..10th enqueues must be
	// rejected, not backlogged.
	admitted := 0
	for i := 0; i < 10; i++ {
		if sc.Enqueue(a, 3, func() {}) {
			admitted++
		}
	}
	if admitted != 4 || a.Enqueued != 4 {
		t.Fatalf("admitted %d (counter %d), want 4", admitted, a.Enqueued)
	}
	if a.Rejected != 6 || rejects != 6 {
		t.Fatalf("rejected %d (callback %d), want 6", a.Rejected, rejects)
	}
	if a.BacklogOps() != 4 {
		t.Fatalf("backlog ops %d, want 4", a.BacklogOps())
	}
	// Backlog reports cost units, not ops: 4 requests at cost 3.
	if a.Backlog() != 12 {
		t.Fatalf("backlog cost %d, want 12", a.Backlog())
	}
	if sc.Backlog() != 4 {
		t.Fatalf("scheduler backlog (ops) %d, want 4", sc.Backlog())
	}
	// Draining one slot readmits exactly one request.
	if d, ok := sc.Next(); !ok {
		t.Fatal("nothing dispatchable")
	} else {
		d()
	}
	if a.Backlog() != 9 {
		t.Fatalf("backlog cost after pop %d, want 9", a.Backlog())
	}
	if !sc.Enqueue(a, 1, func() {}) {
		t.Fatal("enqueue below restored limit rejected")
	}
	if sc.Enqueue(a, 1, func() {}) {
		t.Fatal("enqueue at restored limit admitted")
	}
}

func TestQueueLimitComposesWithRateCap(t *testing.T) {
	eng := sim.NewEngine()
	sc := New(eng, DefaultConfig())
	capped := sc.AddTenant("capped", Throughput, 1)
	capped.SetRateLimit(1000, 1) // 1 op/ms
	capped.SetQueueLimit(2)
	r := newRig(eng, sc, 8, 1*sim.Microsecond)
	// Admission control over an empty bucket: the queue absorbs up to
	// its limit while tokens refill; overflow is rejected immediately
	// instead of growing the backlog.
	r.enqueueN(capped, 20)
	if capped.Rejected == 0 {
		t.Fatal("no rejects despite empty bucket and full queue")
	}
	if capped.BacklogOps() > 2 {
		t.Fatalf("backlog %d exceeds queue limit 2", capped.BacklogOps())
	}
	eng.RunUntil(10 * sim.Millisecond)
	// ~1 op/ms for 10ms plus the burst: the admitted requests drain on
	// the bucket's schedule; rejected ones never run.
	if capped.Dispatched+int64(capped.BacklogOps()) != capped.Enqueued {
		t.Fatalf("admitted %d != dispatched %d + queued %d",
			capped.Enqueued, capped.Dispatched, capped.BacklogOps())
	}
}

func TestRateRefillAtTimeBoundaries(t *testing.T) {
	eng := sim.NewEngine()
	sc := New(eng, DefaultConfig())
	a := sc.AddTenant("a", Throughput, 1)
	a.SetRateLimit(1000, 1) // exactly one token per millisecond
	r := newRig(eng, sc, 8, 1*sim.Microsecond)
	r.enqueueN(a, 3)
	r.pump()

	// t=0: only the burst token dispatches.
	if a.Dispatched != 1 {
		t.Fatalf("at t=0 dispatched %d, want 1 (burst)", a.Dispatched)
	}
	// Just before the refill boundary nothing more may run; just after
	// it exactly one more op does. The armed wake-up timer must land in
	// (1ms, ~1ms+ε], not at the boundary's open edge.
	eng.RunUntil(999 * sim.Microsecond)
	if a.Dispatched != 1 {
		t.Fatalf("before 1ms boundary dispatched %d, want 1", a.Dispatched)
	}
	eng.RunUntil(1100 * sim.Microsecond)
	if a.Dispatched != 2 {
		t.Fatalf("after 1ms boundary dispatched %d, want 2", a.Dispatched)
	}
	eng.RunUntil(2100 * sim.Microsecond)
	if a.Dispatched != 3 {
		t.Fatalf("after 2ms boundary dispatched %d, want 3", a.Dispatched)
	}

	// Refill at the same instant is a no-op (now <= lastRefill must not
	// mint tokens), and long idling clamps at the burst, not rate×idle.
	if got := a.Tokens(); got >= 1 {
		t.Fatalf("tokens %v immediately after dispatch, want < 1", got)
	}
	eng.RunUntil(50 * sim.Millisecond)
	if got := a.Tokens(); got != 1 {
		t.Fatalf("tokens after long idle = %v, want clamped at burst 1", got)
	}
}

func TestRateCapCountsOpsNotCost(t *testing.T) {
	eng := sim.NewEngine()
	sc := New(eng, DefaultConfig())
	capped := sc.AddTenant("capped", Throughput, 1)
	capped.SetRateLimit(10000, 1) // 10 ops per millisecond, in OPS
	r := newRig(eng, sc, 8, 1*sim.Microsecond)
	// Each op billed 16 DRR cost units (a write on a stack with
	// WriteCost 16): the cap must still deliver ~10 ops/ms, and a
	// burst smaller than the cost must not livelock the wake-up timer.
	r.enqueueCostN(capped, 16, 1000)
	r.pump()
	eng.RunUntil(5 * sim.Millisecond)
	if capped.Dispatched < 45 || capped.Dispatched > 60 {
		t.Fatalf("capped tenant dispatched %d in 5ms, want ~50 ops regardless of cost", capped.Dispatched)
	}
}
