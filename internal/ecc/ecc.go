// Package ecc models the error-correction layer every SSD controller
// wraps around raw NAND reads — part of the paper's Myth 1 argument:
// chip-level behaviour (raw bit errors) is not device-level behaviour,
// because the controller must manage errors, and exposing raw chips to
// the host would push that burden up the stack.
package ecc

import (
	"errors"
	"fmt"
)

// ErrUncorrectable reports more raw bit errors in a codeword than the
// scheme can repair.
var ErrUncorrectable = errors.New("ecc: uncorrectable codeword")

// Scheme describes a BCH-style code: the page is split into codewords,
// each independently correcting up to T bit errors.
type Scheme struct {
	// CodewordBytes is the data covered by one codeword (e.g. 512).
	CodewordBytes int
	// T is the correctable bit errors per codeword.
	T int
}

// BCH8Per512 is a typical 2012 MLC requirement: 8 bits per 512 bytes.
var BCH8Per512 = Scheme{CodewordBytes: 512, T: 8}

// BCH24Per1K is a stronger late-MLC/TLC code.
var BCH24Per1K = Scheme{CodewordBytes: 1024, T: 24}

// Codewords reports how many codewords cover a page of pageSize bytes.
func (s Scheme) Codewords(pageSize int) int {
	if s.CodewordBytes <= 0 {
		return 1
	}
	n := pageSize / s.CodewordBytes
	if pageSize%s.CodewordBytes != 0 {
		n++
	}
	if n < 1 {
		n = 1
	}
	return n
}

// rand abstracts the sim RNG so the package has no dependency cycle.
type rand interface {
	Intn(n int) int
}

// Outcome summarizes decoding one page.
type Outcome struct {
	// Corrected is the number of repaired bit errors.
	Corrected int
	// MaxPerCodeword is the largest error count seen in one codeword.
	MaxPerCodeword int
}

// Decode distributes bitErrors uniformly over the page's codewords and
// reports whether every codeword stayed within the correction budget.
// It returns ErrUncorrectable (wrapped with the overflowing count)
// otherwise.
func (s Scheme) Decode(pageSize, bitErrors int, rng rand) (Outcome, error) {
	n := s.Codewords(pageSize)
	if bitErrors <= 0 {
		return Outcome{}, nil
	}
	counts := make([]int, n)
	if rng == nil {
		// Deterministic fallback: spread evenly, remainder on the first.
		base, rem := bitErrors/n, bitErrors%n
		for i := range counts {
			counts[i] = base
		}
		counts[0] += rem
	} else {
		for i := 0; i < bitErrors; i++ {
			counts[rng.Intn(n)]++
		}
	}
	out := Outcome{Corrected: bitErrors}
	for _, c := range counts {
		if c > out.MaxPerCodeword {
			out.MaxPerCodeword = c
		}
	}
	if out.MaxPerCodeword > s.T {
		return out, fmt.Errorf("%w: %d errors in one codeword, T=%d", ErrUncorrectable, out.MaxPerCodeword, s.T)
	}
	return out, nil
}
