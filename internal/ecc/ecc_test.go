package ecc

import (
	"errors"
	"testing"

	"repro/internal/sim"
)

func TestCodewords(t *testing.T) {
	s := BCH8Per512
	if got := s.Codewords(4096); got != 8 {
		t.Fatalf("Codewords(4096) = %d, want 8", got)
	}
	if got := s.Codewords(4097); got != 9 {
		t.Fatalf("Codewords(4097) = %d, want 9", got)
	}
	if got := s.Codewords(100); got != 1 {
		t.Fatalf("Codewords(100) = %d, want 1", got)
	}
	if got := (Scheme{}).Codewords(4096); got != 1 {
		t.Fatalf("zero scheme Codewords = %d, want 1", got)
	}
}

func TestDecodeClean(t *testing.T) {
	out, err := BCH8Per512.Decode(4096, 0, nil)
	if err != nil || out.Corrected != 0 {
		t.Fatalf("clean page: out=%+v err=%v", out, err)
	}
}

func TestDecodeCorrectable(t *testing.T) {
	rng := sim.NewRNG(1)
	out, err := BCH8Per512.Decode(4096, 10, rng)
	if err != nil {
		t.Fatalf("10 errors over 8 codewords should usually correct: %v (max=%d)", err, out.MaxPerCodeword)
	}
	if out.Corrected != 10 {
		t.Fatalf("Corrected = %d, want 10", out.Corrected)
	}
}

func TestDecodeUncorrectable(t *testing.T) {
	rng := sim.NewRNG(1)
	// 200 errors over 8 codewords averages 25 per codeword, far over T=8.
	_, err := BCH8Per512.Decode(4096, 200, rng)
	if !errors.Is(err, ErrUncorrectable) {
		t.Fatalf("err = %v, want ErrUncorrectable", err)
	}
}

func TestDecodeDeterministicFallback(t *testing.T) {
	// Without an RNG errors spread evenly: 16 over 8 codewords = 2 each.
	out, err := BCH8Per512.Decode(4096, 16, nil)
	if err != nil {
		t.Fatalf("even spread should correct: %v", err)
	}
	if out.MaxPerCodeword != 2 {
		t.Fatalf("MaxPerCodeword = %d, want 2", out.MaxPerCodeword)
	}
	// 65 evenly over 8 → 9 in the first codeword: uncorrectable.
	if _, err := BCH8Per512.Decode(4096, 65, nil); !errors.Is(err, ErrUncorrectable) {
		t.Fatalf("err = %v, want ErrUncorrectable", err)
	}
}

func TestStrongerSchemeCorrectsMore(t *testing.T) {
	rng1, rng2 := sim.NewRNG(9), sim.NewRNG(9)
	weakFails, strongFails := 0, 0
	for i := 0; i < 200; i++ {
		if _, err := BCH8Per512.Decode(4096, 40, rng1); err != nil {
			weakFails++
		}
		if _, err := BCH24Per1K.Decode(4096, 40, rng2); err != nil {
			strongFails++
		}
	}
	if strongFails >= weakFails {
		t.Fatalf("stronger code should fail less: weak=%d strong=%d", weakFails, strongFails)
	}
}
