package place

import (
	"fmt"

	"repro/internal/blockdev"
	"repro/internal/ftl"
	"repro/internal/metrics"
	"repro/internal/serve"
)

// Placement groups a replicated fabric's physical shards into replica
// groups and serves as the frontend's router: one routing target per
// logical shard, quorum writes and steered reads inside each.
type Placement struct {
	fab     *serve.Fabric
	groups  []*Group
	targets []serve.Target
	mover   *Mover
}

// New builds the placement over a fabric assembled with
// serve.Config.Replicas. Every logical shard must have its full
// replica set, each replica on a distinct device — which serve.New
// guarantees; the check here catches fabrics modified since.
func New(f *serve.Fabric) (*Placement, error) {
	cfg := f.Config()
	pl := &Placement{fab: f}
	pl.groups = make([]*Group, cfg.Shards)
	for i := range pl.groups {
		pl.groups[i] = &Group{pl: pl, idx: i}
	}
	for _, sh := range f.Shards() {
		l := sh.Logical()
		if l < 0 || l >= len(pl.groups) {
			return nil, fmt.Errorf("place: shard %s names logical shard %d of %d", sh.Name(), l, len(pl.groups))
		}
		pl.groups[l].replicas = append(pl.groups[l].replicas, sh)
	}
	for _, g := range pl.groups {
		if len(g.replicas) != cfg.Replicas {
			return nil, fmt.Errorf("place: logical shard %d has %d replicas, want %d", g.idx, len(g.replicas), cfg.Replicas)
		}
		seen := map[int]bool{}
		for _, sh := range g.replicas {
			if seen[sh.DeviceIndex()] {
				return nil, fmt.Errorf("place: logical shard %d has two replicas on device %d", g.idx, sh.DeviceIndex())
			}
			seen[sh.DeviceIndex()] = true
		}
	}
	pl.targets = make([]serve.Target, len(pl.groups))
	for i, g := range pl.groups {
		pl.targets[i] = g
	}
	// The placement's steering/quorum/migration ledger joins the
	// fabric's unified telemetry snapshot, and — when the fabric runs a
	// sampler — the headline steering counters become time series too,
	// so migration activity lines up against latency on one clock.
	f.Registry().Attach("place_ledger", func() any { return pl.Ledger() })
	if s := f.Sampler(); s != nil {
		s.AddCounter("place.steered_reads", func() float64 { return float64(pl.Ledger().SteeredReads) })
		s.AddCounter("place.avoided_gc", func() float64 { return float64(pl.Ledger().AvoidedGC) })
		s.AddCounter("place.migrations", func() float64 { return float64(pl.Ledger().Migrations) })
		s.AddCounter("place.migrations_aborted", func() float64 { return float64(pl.Ledger().MigrationsAborted) })
	}
	return pl, nil
}

// Targets implements serve.Router: one stable target per logical
// shard. Group membership changes under migration, but the table —
// and therefore every key's assignment — does not.
func (pl *Placement) Targets() []serve.Target { return pl.targets }

// Attach points the frontend's routing at the replica groups.
func (pl *Placement) Attach(fe *serve.Frontend) { fe.SetRouter(pl) }

// Fabric returns the underlying serving fabric.
func (pl *Placement) Fabric() *serve.Fabric { return pl.fab }

// Groups returns the replica groups in logical-shard order.
func (pl *Placement) Groups() []*Group { return pl.groups }

// Group returns logical shard i's replica group.
func (pl *Placement) Group(i int) *Group { return pl.groups[i] }

// Mover returns the live-migration controller, or nil before
// StartMover.
func (pl *Placement) Mover() *Mover { return pl.mover }

// Ledger merges every group's steering/quorum ledger with the mover's
// migration ledger into one placement-wide view.
func (pl *Placement) Ledger() metrics.PlaceLedger {
	var l metrics.PlaceLedger
	for _, g := range pl.groups {
		l.Add(g.led)
	}
	if pl.mover != nil {
		l.Add(pl.mover.led)
	}
	return l
}

// devScore is one device's health as the steering and destination
// policies see it, compared lexicographically: chips currently
// garbage-collecting (the live relocation traffic reads would queue
// behind), then reported reclamation urgency (collection about to
// start), then observed read service time (the slow-aging signal).
type devScore struct {
	chips   int
	urgency int
	svc     float64
}

func (a devScore) less(b devScore) bool {
	if a.chips != b.chips {
		return a.chips < b.chips
	}
	if a.urgency != b.urgency {
		return a.urgency < b.urgency
	}
	return a.svc < b.svc
}

// deviceScore reads device d's current health signals. Every signal is
// optional — an unscheduled fabric has no GC notifications, an
// uncalibrated stack no estimator — and absent signals score zero, so
// steering degrades toward round-robin as the fabric gets blinder.
func (pl *Placement) deviceScore(d int) devScore {
	var s devScore
	if sc := pl.fab.Scheduler(d); sc != nil {
		s.chips = sc.GCActiveChips()
	}
	stack := pl.fab.Stack(d)
	if dev, ok := stack.Device().(interface{ GCUrgency() ftl.GCUrgency }); ok {
		s.urgency = int(dev.GCUrgency())
	}
	if est := stack.ServiceEstimator(); est != nil {
		s.svc = est.EWMA(blockdev.SvcRead)
	}
	return s
}
