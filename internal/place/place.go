package place

import (
	"fmt"

	"repro/internal/blockdev"
	"repro/internal/ftl"
	"repro/internal/metrics"
	"repro/internal/serve"
	"repro/internal/sim"
)

// Placement groups a replicated fabric's physical shards into replica
// groups and serves as the frontend's router: one routing target per
// logical shard, quorum writes and steered reads inside each.
type Placement struct {
	fab      *serve.Fabric
	groups   []*Group
	targets  []serve.Target
	mover    *Mover
	replicas int // configured replication factor (full strength)

	// repled is the failure-domain ledger: device deaths, the degraded
	// window they open, and what the repair machinery did about them.
	repled metrics.RepairLedger
}

// New builds the placement over a fabric assembled with
// serve.Config.Replicas. Every logical shard must have its full
// replica set, each replica on a distinct device — which serve.New
// guarantees; the check here catches fabrics modified since.
func New(f *serve.Fabric) (*Placement, error) {
	cfg := f.Config()
	pl := &Placement{fab: f, replicas: cfg.Replicas}
	pl.groups = make([]*Group, cfg.Shards)
	for i := range pl.groups {
		pl.groups[i] = &Group{pl: pl, idx: i}
	}
	for _, sh := range f.Shards() {
		l := sh.Logical()
		if l < 0 || l >= len(pl.groups) {
			return nil, fmt.Errorf("place: shard %s names logical shard %d of %d", sh.Name(), l, len(pl.groups))
		}
		pl.groups[l].replicas = append(pl.groups[l].replicas, sh)
	}
	for _, g := range pl.groups {
		if len(g.replicas) != cfg.Replicas {
			return nil, fmt.Errorf("place: logical shard %d has %d replicas, want %d", g.idx, len(g.replicas), cfg.Replicas)
		}
		seen := map[int]bool{}
		for _, sh := range g.replicas {
			if seen[sh.DeviceIndex()] {
				return nil, fmt.Errorf("place: logical shard %d has two replicas on device %d", g.idx, sh.DeviceIndex())
			}
			seen[sh.DeviceIndex()] = true
		}
	}
	pl.targets = make([]serve.Target, len(pl.groups))
	for i, g := range pl.groups {
		pl.targets[i] = g
	}
	// The placement's steering/quorum/migration ledger joins the
	// fabric's unified telemetry snapshot, and — when the fabric runs a
	// sampler — the headline steering counters become time series too,
	// so migration activity lines up against latency on one clock.
	f.Registry().Attach("place_ledger", func() any { return pl.Ledger() })
	f.Registry().Attach("repair_ledger", func() any { return pl.repled })
	if s := f.Sampler(); s != nil {
		s.AddCounter("place.steered_reads", func() float64 { return float64(pl.Ledger().SteeredReads) })
		s.AddCounter("place.avoided_gc", func() float64 { return float64(pl.Ledger().AvoidedGC) })
		s.AddCounter("place.migrations", func() float64 { return float64(pl.Ledger().Migrations) })
		s.AddCounter("place.migrations_aborted", func() float64 { return float64(pl.Ledger().MigrationsAborted) })
		s.AddCounter("place.device_deaths", func() float64 { return float64(pl.repled.DeviceDeaths) })
		s.AddCounter("place.replicas_lost", func() float64 { return float64(pl.repled.ReplicasLost) })
		s.AddCounter("place.degraded_writes", func() float64 { return float64(pl.repled.DegradedWrites) })
		s.AddCounter("place.repairs", func() float64 { return float64(pl.repled.Repairs) })
		s.AddCounter("place.repairs_aborted", func() float64 { return float64(pl.repled.RepairsAborted) })
	}
	// Subscribe to device deaths: the fabric has already downed the dead
	// device's shards when this fires, so dropping them from their groups
	// completes the degrade — reads steer to survivors, quorum shrinks,
	// and the Mover's next poll starts the rebuild.
	f.OnDeviceDown(func(d int) {
		pl.repled.DeviceDeaths++
		now := f.Engine().Now()
		for _, g := range pl.groups {
			g.deviceDown(d, now)
		}
	})
	return pl, nil
}

// RepairLedger returns the placement's failure-domain accounting.
func (pl *Placement) RepairLedger() metrics.RepairLedger { return pl.repled }

// Targets implements serve.Router: one stable target per logical
// shard. Group membership changes under migration, but the table —
// and therefore every key's assignment — does not.
func (pl *Placement) Targets() []serve.Target { return pl.targets }

// Attach points the frontend's routing at the replica groups.
func (pl *Placement) Attach(fe *serve.Frontend) { fe.SetRouter(pl) }

// Fabric returns the underlying serving fabric.
func (pl *Placement) Fabric() *serve.Fabric { return pl.fab }

// Groups returns the replica groups in logical-shard order.
func (pl *Placement) Groups() []*Group { return pl.groups }

// Group returns logical shard i's replica group.
func (pl *Placement) Group(i int) *Group { return pl.groups[i] }

// Mover returns the live-migration controller, or nil before
// StartMover.
func (pl *Placement) Mover() *Mover { return pl.mover }

// Ledger merges every group's steering/quorum ledger with the mover's
// migration ledger into one placement-wide view.
func (pl *Placement) Ledger() metrics.PlaceLedger {
	var l metrics.PlaceLedger
	for _, g := range pl.groups {
		l.Add(g.led)
	}
	if pl.mover != nil {
		l.Add(pl.mover.led)
	}
	return l
}

// CrashDevice models sudden power loss and restart of device d under
// replication — the fix for the volatile-ack trap at quorum scope. A
// quorum-acked write may have been volatile-buffered on the crashing
// replica and lost with the power, but quorum means every replica
// completed it before the ack, so each survivor holds it; the reopened
// replica therefore must not serve until it has resynced from a
// survivor. The sequence, all before any simulated time passes: the
// crashed replicas leave their groups (no read steers at a store about
// to reopen behind its peers) and a delta ledger starts recording the
// writes the survivors keep serving; then the device crashes and its
// shards reopen; then each reopened replica is bulk-copied and caught
// up from its group's healthiest survivor and rejoins under a cutover
// hold. A group with no survivor gets its reopened replica back as-is:
// at R=1 the volatile-ack loss is the device's own durability trap
// (E7), not replication's.
func (pl *Placement) CrashDevice(p *sim.Proc, d int) error {
	type hit struct {
		g  *Group
		sh *serve.Shard
	}
	var hits []hit
	for _, g := range pl.groups {
		for _, sh := range g.replicas {
			if sh.DeviceIndex() != d {
				continue
			}
			if g.mig != nil {
				return fmt.Errorf("place: group %d is mid-migration; crash of device %d unsupported until it settles", g.idx, d)
			}
			hits = append(hits, hit{g, sh})
			break
		}
	}
	for _, h := range hits {
		h.g.dropReplica(h.sh)
		h.g.mig = &migration{dst: h.sh, dirty: map[string]struct{}{}}
	}
	if err := pl.fab.CrashDevice(p, d); err != nil {
		return err
	}
	const batch = 8
	for _, h := range hits {
		g, dst := h.g, h.sh
		mig := g.mig
		fail := func(err error) error {
			held := mig.held
			mig.held = nil
			g.mig = nil
			g.releaseHeld(held)
			return fmt.Errorf("place: resync shard %s after device %d crash: %w", dst.Name(), d, err)
		}
		if len(g.replicas) == 0 {
			g.replicas = append(g.replicas, dst)
			held := mig.held
			mig.held = nil
			g.mig = nil
			g.releaseHeld(held)
			continue
		}
		from := g.replicas[0]
		for _, sh := range g.replicas[1:] {
			if pl.deviceScore(sh.DeviceIndex()).less(pl.deviceScore(from.DeviceIndex())) {
				from = sh
			}
		}
		if _, err := from.System().Store.CopyInto(p, dst.System().Store, batch); err != nil {
			return fail(err)
		}
		for round := 0; round < 4 && len(mig.dirty) > 16; round++ {
			if _, err := pl.copyDelta(p, from, dst, mig, batch); err != nil {
				return fail(err)
			}
		}
		mig.cutover = true
		g.awaitWrites(p)
		if _, err := pl.copyDelta(p, from, dst, mig, batch); err != nil {
			return fail(err)
		}
		if err := dst.System().Store.Checkpoint(p); err != nil {
			return fail(err)
		}
		g.replicas = append(g.replicas, dst)
		pl.repled.CrashResyncs++
		held := mig.held
		mig.held = nil
		g.mig = nil
		g.releaseHeld(held)
	}
	return nil
}

// devScore is one device's health as the steering and destination
// policies see it, compared lexicographically: chips currently
// garbage-collecting (the live relocation traffic reads would queue
// behind), then reported reclamation urgency (collection about to
// start), then observed read service time (the slow-aging signal).
type devScore struct {
	chips   int
	urgency int
	svc     float64
}

func (a devScore) less(b devScore) bool {
	if a.chips != b.chips {
		return a.chips < b.chips
	}
	if a.urgency != b.urgency {
		return a.urgency < b.urgency
	}
	return a.svc < b.svc
}

// deviceScore reads device d's current health signals. Every signal is
// optional — an unscheduled fabric has no GC notifications, an
// uncalibrated stack no estimator — and absent signals score zero, so
// steering degrades toward round-robin as the fabric gets blinder.
func (pl *Placement) deviceScore(d int) devScore {
	var s devScore
	if sc := pl.fab.Scheduler(d); sc != nil {
		s.chips = sc.GCActiveChips()
	}
	stack := pl.fab.Stack(d)
	if dev, ok := stack.Device().(interface{ GCUrgency() ftl.GCUrgency }); ok {
		s.urgency = int(dev.GCUrgency())
	}
	if est := stack.ServiceEstimator(); est != nil {
		s.svc = est.EWMA(blockdev.SvcRead)
	}
	return s
}
