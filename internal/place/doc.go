// Package place is the replica-placement subsystem over the serving
// fabric: the first layer where the device→host signals of the peer
// interface choose *where* I/O goes, not just when.
//
// A Placement groups each logical shard's physical replicas (built by
// serve.Config.Replicas on distinct devices, each its own scheduler
// tenant) into a ReplicaGroup that serves as one frontend routing
// target. Writes are committed on every replica before the ack —
// group-level admission refuses a write whole rather than half-apply
// it — and every read is steered, per request, to the replica whose
// device currently looks healthiest: fewest chips garbage-collecting
// (the E15 notification), lowest reported GC urgency (the E17 control
// surface), lowest observed read service time (the E18 estimator),
// round-robin on a full tie. A device that starts collecting or aging
// stops receiving reads the moment its signals say so, instead of
// every request pinned to it waiting the collection out.
//
// On top of the groups, Mover performs live shard migration: when a
// device's windowed service-time trend trips its drift alarm
// (metrics.DriftAlarm over the stack's calibration estimator), or a
// group's interval deadline-miss rate stays high, the group's replica
// on that device is rebuilt elsewhere while the group keeps serving —
// bulk copy from the healthiest surviving replica (a consistent
// kvstore snapshot; the sick device is not asked to stream its own
// region), delta catch-up of the keys the write path touched
// meanwhile, then a brief cutover that holds new writes, drains
// in-flight ones, copies the final delta and swaps the replica set.
// The old replica retires and its region slot frees. No acknowledged
// write is lost or served stale across the move; experiment E19
// verifies that by read-back.
package place
