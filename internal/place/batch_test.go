package place

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/serve"
	"repro/internal/sim"
)

// TestQuorumWritesRideBatchCommit: on a Batch-enabled fabric, quorum
// writes drain through the replicas' batched workers and multi-op
// group commits, and the replication contract is unchanged — every
// acked write is readable from both replica stores, concurrent writes
// included.
func TestQuorumWritesRideBatchCommit(t *testing.T) {
	cfg := replicatedConfig(2)
	cfg.Batch = serve.BatchConfig{Enabled: true}
	withPlacement(t, cfg, func(p *sim.Proc, f *serve.Fabric, pl *Placement, fe *serve.Frontend) {
		// Concurrent puts so whole runs land in one admission ring and
		// drain as one batch on each replica.
		const n = 48
		wg := sim.NewWaitGroup(p.Engine())
		wg.Add(n)
		acked := make([]bool, n)
		for i := 0; i < n; i++ {
			i := i
			key := int64(i % 64)
			fe.Submit(serve.Op{Kind: serve.OpPut, Key: fe.Key(key), Value: []byte(fmt.Sprintf("v%d", key))},
				func(err error) {
					acked[i] = err == nil
					wg.Done()
				})
		}
		wg.Wait(p)
		for i := 0; i < n; i++ {
			if !acked[i] {
				continue // unacked writes carry no durability promise
			}
			key := fe.Key(int64(i % 64))
			want := []byte(fmt.Sprintf("v%d", i%64))
			systems := fe.TargetFor(key).Systems()
			if len(systems) != 2 {
				t.Fatalf("write %d target has %d systems, want 2", i, len(systems))
			}
			for ri, sys := range systems {
				got, err := sys.Store.Get(p, key)
				if err != nil || !bytes.Equal(got, want) {
					t.Fatalf("acked write %d lost on replica %d: %q, %v", i, ri, got, err)
				}
			}
		}
		// The batched engine actually engaged: at least one replica
		// store committed a multi-op batch.
		batched := int64(0)
		for _, sh := range f.Shards() {
			batched += sh.System().Store.BatchCommits
		}
		if batched == 0 {
			t.Fatal("no batch commits on any replica: quorum writes never rode the ring path")
		}
		if f.Errors != 0 {
			t.Errorf("engine errors: %d", f.Errors)
		}
	})
}
