package place

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/blockdev"
	"repro/internal/kvstore"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/sim"
)

// MoverConfig tunes the live-migration controller.
type MoverConfig struct {
	// Interval is the poll cadence (0 = 1ms).
	Interval sim.Time
	// DriftThreshold arms drift alarms per device over the stack's
	// calibration estimator, one per op class: a device whose windowed
	// read or write service time reaches this multiple of its armed
	// baseline is evacuated. Both classes are watched because steering
	// itself moves reads off a sick device — quorum writes cannot be
	// steered away, so the write class keeps reporting a device the
	// read class has gone quiet on. 0 = 1.5; needs
	// serve.Config.Calibrate, silently inactive without it (the
	// estimator is the sensor).
	DriftThreshold float64
	// DriftMinSamples is the window occupancy required before a
	// device's baseline arms or its trend is trusted (0 = 24).
	DriftMinSamples int64
	// MissRate, when positive, migrates a group whose interval
	// deadline-miss rate (across its replicas) stays at or above this
	// for MissIntervals consecutive polls — the SLO-side trigger the
	// ROADMAP queued alongside the drift alarm.
	MissRate      float64
	MissIntervals int // 0 = 3
	// MissMinServed is the served-requests floor per interval below
	// which the miss rate is noise, not signal (0 = 16).
	MissMinServed int64
	// CopyBatch is keys per bulk/delta copy transaction (0 = 8).
	CopyBatch int
	// CatchupRounds bounds pre-cutover delta passes; whatever delta
	// remains after them is copied under the cutover hold (0 = 4).
	CatchupRounds int
	// CatchupThreshold is the dirty-key count small enough to stop
	// catching up and cut over (0 = 16).
	CatchupThreshold int
}

// Mover watches the fabric's health signals and performs live replica
// migrations: drift-alarmed devices are evacuated, persistently
// missing groups are moved off their worst device. One migration runs
// at a time (the mover is one process); groups keep serving throughout.
type Mover struct {
	pl  *Placement
	cfg MoverConfig
	led metrics.PlaceLedger

	alarms [][]*metrics.DriftAlarm // per device, read+write class; empty without an estimator
	evac   []bool                  // devices already being drained

	// Interval miss-rate state per group.
	lastMissed, lastServed []int64
	badIntervals           []int
}

// StartMover builds the migration controller and starts its polling
// process on the fabric's engine. It stops itself when the fabric
// stops.
func (pl *Placement) StartMover(cfg MoverConfig) *Mover {
	if cfg.Interval <= 0 {
		cfg.Interval = sim.Millisecond
	}
	if cfg.DriftThreshold <= 0 {
		cfg.DriftThreshold = 1.5
	}
	if cfg.DriftMinSamples <= 0 {
		cfg.DriftMinSamples = 24
	}
	if cfg.MissIntervals <= 0 {
		cfg.MissIntervals = 3
	}
	if cfg.MissMinServed <= 0 {
		cfg.MissMinServed = 16
	}
	if cfg.CopyBatch <= 0 {
		cfg.CopyBatch = 8
	}
	if cfg.CatchupRounds <= 0 {
		cfg.CatchupRounds = 4
	}
	if cfg.CatchupThreshold <= 0 {
		cfg.CatchupThreshold = 16
	}
	m := &Mover{
		pl:           pl,
		cfg:          cfg,
		alarms:       make([][]*metrics.DriftAlarm, pl.fab.Devices()),
		evac:         make([]bool, pl.fab.Devices()),
		lastMissed:   make([]int64, len(pl.groups)),
		lastServed:   make([]int64, len(pl.groups)),
		badIntervals: make([]int, len(pl.groups)),
	}
	for d := 0; d < pl.fab.Devices(); d++ {
		if est := pl.fab.Stack(d).ServiceEstimator(); est != nil {
			m.alarms[d] = []*metrics.DriftAlarm{
				est.Class(blockdev.SvcRead).DriftAlarm(cfg.DriftThreshold, cfg.DriftMinSamples),
				est.Class(blockdev.SvcWrite).DriftAlarm(cfg.DriftThreshold, cfg.DriftMinSamples),
			}
		}
	}
	pl.mover = m
	pl.fab.Engine().Go(m.run)
	return m
}

// Ledger returns the mover's migration accounting.
func (m *Mover) Ledger() metrics.PlaceLedger { return m.led }

// Alarms exposes device d's drift alarms — read then write class
// (empty without an estimator).
func (m *Mover) Alarms(d int) []*metrics.DriftAlarm { return m.alarms[d] }

// DriftTripped reports whether any of device d's drift alarms has
// fired.
func (m *Mover) DriftTripped(d int) bool {
	for _, a := range m.alarms[d] {
		if a.Tripped() {
			return true
		}
	}
	return false
}

// run is the mover process: poll, trigger, migrate, repeat.
func (m *Mover) run(p *sim.Proc) {
	for {
		p.Sleep(m.cfg.Interval)
		if m.pl.fab.Stopped() {
			return
		}
		m.poll(p)
	}
}

// poll checks every trigger once and performs any migrations they
// demand, serially.
func (m *Mover) poll(p *sim.Proc) {
	now := int64(p.Now())
	// Repair outranks every performance trigger: a group running below
	// full replication is one more death from unavailable, so rebuilds
	// go first. A group that found no destination (spare slots
	// exhausted) is retried every poll and rebuilds the moment a slot
	// frees.
	for _, g := range m.pl.groups {
		if m.pl.fab.Stopped() {
			return
		}
		if len(g.replicas) > 0 && len(g.replicas) < m.pl.replicas && g.mig == nil {
			m.repair(p, g)
		}
	}
	// Drift: a tripped device is evacuated — every group with a replica
	// there moves it elsewhere. The evacuation flag persists, and every
	// poll retries whatever is still stranded on the device: a replica
	// that found no destination this round (spare slots exhausted,
	// sibling constraints) leaves again the moment a slot frees.
	for d, as := range m.alarms {
		if len(as) == 0 {
			continue
		}
		if !m.evac[d] {
			tripped := false
			for _, a := range as {
				if a.Check(now) {
					tripped = true
				}
			}
			if !tripped {
				continue
			}
			m.led.DriftTrips++
			m.evac[d] = true
		}
		for _, g := range m.pl.groups {
			if m.pl.fab.Stopped() {
				return
			}
			for _, sh := range g.replicas {
				if sh.DeviceIndex() == d {
					m.migrate(p, g, sh)
					break
				}
			}
		}
	}
	// Sustained interval miss rate: move the group's replica on the
	// worst-scoring device.
	if m.cfg.MissRate <= 0 {
		return
	}
	for gi, g := range m.pl.groups {
		var missed, served int64
		for _, sh := range g.replicas {
			missed += sh.Stats().DeadlineMissed
			served += sh.Stats().Served
		}
		dm, ds := missed-m.lastMissed[gi], served-m.lastServed[gi]
		m.lastMissed[gi], m.lastServed[gi] = missed, served
		if ds < m.cfg.MissMinServed || float64(dm)/float64(ds) < m.cfg.MissRate {
			m.badIntervals[gi] = 0
			continue
		}
		if m.badIntervals[gi]++; m.badIntervals[gi] < m.cfg.MissIntervals {
			continue
		}
		m.badIntervals[gi] = 0
		worst := g.replicas[0]
		for _, sh := range g.replicas[1:] {
			if m.pl.deviceScore(worst.DeviceIndex()).less(m.pl.deviceScore(sh.DeviceIndex())) {
				worst = sh
			}
		}
		m.led.MissTrips++
		m.migrate(p, g, worst)
	}
}

// destination picks the device for g's new replica: not a device the
// group already occupies, not dead, not under evacuation, with a free
// region slot, healthiest first (spares usually win — they are idle),
// free slots breaking ties. The dead-device check matters even though
// a dead device keeps its slots: a *repair* destination search runs
// while the ex-replica's device no longer appears in g.replicas, so
// only DeviceDown keeps the rebuild off the device that just died.
func (m *Mover) destination(g *Group) (int, error) {
	taken := map[int]bool{}
	for _, sh := range g.replicas {
		taken[sh.DeviceIndex()] = true
	}
	best, bestFree := -1, 0
	var bestScore devScore
	for d := 0; d < m.pl.fab.Devices(); d++ {
		if taken[d] || m.evac[d] || m.pl.fab.DeviceDown(d) {
			continue
		}
		free := m.pl.fab.FreeSlots(d)
		if free == 0 {
			continue
		}
		s := m.pl.deviceScore(d)
		if best < 0 || s.less(bestScore) || (!bestScore.less(s) && free > bestFree) {
			best, bestScore, bestFree = d, s, free
		}
	}
	if best < 0 {
		return 0, fmt.Errorf("place: no destination device for logical shard %d", g.idx)
	}
	return best, nil
}

// copySource picks the replica a copy streams from: the healthiest
// member excluding skip (the replica being moved — it streams only
// when it is the group's sole member).
func (m *Mover) copySource(g *Group, skip *serve.Shard) *serve.Shard {
	var from *serve.Shard
	for _, sh := range g.replicas {
		if sh == skip {
			continue
		}
		if from == nil || m.pl.deviceScore(sh.DeviceIndex()).less(m.pl.deviceScore(from.DeviceIndex())) {
			from = sh
		}
	}
	if from == nil {
		return skip
	}
	return from
}

// migrate moves g's replica src to a fresh shard elsewhere while the
// group keeps serving: bulk copy from the healthiest surviving
// replica's snapshot, delta catch-up of keys written meanwhile, then a
// cutover that holds new writes, drains in-flight ones, copies the
// last delta and swaps. A fabric stop mid-copy aborts cleanly.
func (m *Mover) migrate(p *sim.Proc, g *Group, src *serve.Shard) {
	if g.mig != nil || m.pl.fab.Stopped() {
		return
	}
	d, err := m.destination(g)
	if err != nil {
		// Nowhere to go: not an error loop, just nothing to do now.
		return
	}
	dst, err := m.pl.fab.AddReplica(p, g.idx, d)
	if err != nil {
		return
	}
	mig := &migration{src: src, dst: dst, dirty: map[string]struct{}{}}
	g.mig = mig
	m.event(p, obs.EventMigrationStart, g, fmt.Sprintf(
		"replica leaving device %d for device %d", src.DeviceIndex(), d))

	// The copy source: the healthiest *surviving* replica — acked data
	// is identical on all of them, and the device being evacuated is
	// the last one that should stream a whole region, so src is only
	// read when it is the group's sole replica.
	from := m.copySource(g, src)

	// As in repair: a copy source whose device died cannot be trusted to
	// feed the new replica, even while host RAM still answers for it.
	srcLost := func() bool { return m.pl.fab.DeviceDown(from.DeviceIndex()) }

	abort := func() {
		held := mig.held
		mig.held = nil
		g.mig = nil
		m.pl.fab.Retire(dst)
		m.led.MigrationsAborted++
		m.event(p, obs.EventMigrationAbort, g, fmt.Sprintf(
			"copy to device %d abandoned; source replica stays on device %d",
			d, src.DeviceIndex()))
		g.releaseHeld(held) // fails with ErrStopped on a stopped fabric
	}

	copied, err := from.System().Store.CopyInto(p, dst.System().Store, m.cfg.CopyBatch)
	m.led.CopiedKeys += copied
	if err != nil || srcLost() || m.pl.fab.Stopped() {
		abort()
		return
	}
	// Delta catch-up: re-copy what the write path touched while the
	// bulk copy ran; repeat while the delta stays large, bounded.
	for round := 0; round < m.cfg.CatchupRounds && len(mig.dirty) > m.cfg.CatchupThreshold; round++ {
		if err := m.copyDelta(p, g, from, dst, mig); err != nil || srcLost() || m.pl.fab.Stopped() {
			abort()
			return
		}
	}
	// Cutover: new writes hold, in-flight writes settle everywhere,
	// the final delta lands, the replica set swaps.
	mig.cutover = true
	g.awaitWrites(p)
	if err := m.copyDelta(p, g, from, dst, mig); err != nil || srcLost() || m.pl.fab.Stopped() {
		abort()
		return
	}
	if err := dst.System().Store.Checkpoint(p); err != nil {
		abort()
		return
	}
	if g.contains(src) {
		g.swap(src, dst)
		m.pl.fab.Retire(src)
	} else {
		// src's device died mid-copy and deviceDown already dropped it:
		// the migration just became the rebuild, so the new replica joins
		// instead of swapping in.
		g.replicas = append(g.replicas, dst)
	}
	held := mig.held
	mig.held = nil
	g.mig = nil
	g.restored(p.Now())
	m.led.Migrations++
	m.event(p, obs.EventMigrationFinish, g, fmt.Sprintf(
		"replica settled on device %d; %d keys bulk-copied", d, copied))
	g.releaseHeld(held)
}

// repair rebuilds a group running below full replication: a fresh
// replica is carved on the healthiest live device with a free slot,
// bulk-copied from the healthiest survivor's snapshot, caught up
// through the delta ledger, and joined to the replica set under a
// cutover hold — the migration machinery with no source to retire.
// Death of the last survivor mid-copy aborts loudly: the copy errors,
// the half-built replica retires, and the group refuses requests with
// ErrDeviceDown rather than serving a partial store.
func (m *Mover) repair(p *sim.Proc, g *Group) {
	if g.mig != nil || m.pl.fab.Stopped() {
		return
	}
	d, err := m.destination(g)
	if err != nil {
		// Spare slots exhausted: the group stays degraded, counted, and
		// rebuilds the moment a slot frees.
		m.pl.repled.RepairStalls++
		return
	}
	dst, err := m.pl.fab.AddReplica(p, g.idx, d)
	if err != nil {
		m.pl.repled.RepairStalls++
		return
	}
	mig := &migration{dst: dst, dirty: map[string]struct{}{}}
	g.mig = mig
	m.event(p, obs.EventRepairStart, g, fmt.Sprintf(
		"rebuilding lost replica on device %d from %d survivor(s)", d, len(g.replicas)))

	from := m.copySource(g, nil)

	// srcLost: the survivor feeding this rebuild died. Host RAM may
	// still answer reads for its store, but nothing behind those pages
	// is durable anymore and the delta keys may exist nowhere else —
	// finishing the rebuild from a dead source would be silent loss, so
	// it aborts loudly instead.
	srcLost := func() bool { return m.pl.fab.DeviceDown(from.DeviceIndex()) }

	abort := func() {
		held := mig.held
		mig.held = nil
		g.mig = nil
		m.pl.fab.Retire(dst)
		m.pl.repled.RepairsAborted++
		m.event(p, obs.EventRepairAbort, g, fmt.Sprintf(
			"rebuild on device %d abandoned; group stays at %d replica(s)", d, len(g.replicas)))
		g.releaseHeld(held)
	}

	copied, err := from.System().Store.CopyInto(p, dst.System().Store, m.cfg.CopyBatch)
	m.led.CopiedKeys += copied
	if err != nil || srcLost() || m.pl.fab.Stopped() {
		abort()
		return
	}
	for round := 0; round < m.cfg.CatchupRounds && len(mig.dirty) > m.cfg.CatchupThreshold; round++ {
		if err := m.copyDelta(p, g, from, dst, mig); err != nil || srcLost() || m.pl.fab.Stopped() {
			abort()
			return
		}
	}
	// Cutover: writes accepted during the rebuild hold, in-flight ones
	// settle, the last delta lands, the rebuilt replica joins.
	mig.cutover = true
	g.awaitWrites(p)
	if err := m.copyDelta(p, g, from, dst, mig); err != nil || srcLost() || m.pl.fab.Stopped() {
		abort()
		return
	}
	if err := dst.System().Store.Checkpoint(p); err != nil {
		abort()
		return
	}
	g.replicas = append(g.replicas, dst)
	held := mig.held
	mig.held = nil
	g.mig = nil
	g.restored(p.Now())
	m.event(p, obs.EventRepairDone, g, fmt.Sprintf(
		"replica rebuilt on device %d; %d keys copied from survivor", d, copied))
	g.releaseHeld(held)
}

// event reports one migration lifecycle transition to the fabric's
// health monitor (inert when monitoring is off).
func (m *Mover) event(p *sim.Proc, kind obs.EventKind, g *Group, detail string) {
	m.pl.fab.Monitor().Emit(obs.HealthEvent{
		Kind: kind, At: p.Now(), Name: fmt.Sprintf("shard%d", g.idx),
		Detail: detail, Value: float64(m.led.Migrations),
	})
}

// copyDelta drains the migration's dirty set once, charging the
// mover's catch-up ledger.
func (m *Mover) copyDelta(p *sim.Proc, g *Group, from, dst *serve.Shard, mig *migration) error {
	n, err := m.pl.copyDelta(p, from, dst, mig, m.cfg.CopyBatch)
	m.led.CatchupRounds++
	m.led.DeltaKeys += n
	return err
}

// copyDelta drains mig's dirty set once: the current keys are re-read
// from the copy source and written to the destination in batches; keys
// written while this pass runs land in a fresh dirty set for the next
// pass (or the cutover's final one). It returns the keys copied. It is
// placement-level, not mover-level, because crash resync
// (Placement.CrashDevice) catches up a reopened replica the same way.
func (pl *Placement) copyDelta(p *sim.Proc, from, dst *serve.Shard, mig *migration, batch int) (int64, error) {
	keys := make([]string, 0, len(mig.dirty))
	for k := range mig.dirty {
		keys = append(keys, k)
	}
	// Map order is random; the simulation is not. Sort so every run
	// issues the same I/O sequence.
	sort.Strings(keys)
	mig.dirty = map[string]struct{}{}
	var copied int64
	for i := 0; i < len(keys); i += batch {
		end := i + batch
		if end > len(keys) {
			end = len(keys)
		}
		tx := dst.System().Store.Begin()
		n := 0
		for _, k := range keys[i:end] {
			v, err := from.System().Store.Get(p, []byte(k))
			if errors.Is(err, kvstore.ErrNotFound) {
				continue // written but rejected everywhere, or deleted
			}
			if err != nil {
				return copied, err
			}
			tx.Put([]byte(k), v)
			n++
			copied++
		}
		if n > 0 {
			if err := tx.Commit(p); err != nil {
				return copied, err
			}
		}
	}
	return copied, nil
}
