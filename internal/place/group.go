package place

import (
	"repro/internal/kvstore"
	"repro/internal/metrics"
	"repro/internal/serve"
	"repro/internal/sim"
)

// Group is one logical shard's replica set: R physical shards on
// distinct devices serving as a single frontend target. Reads are
// steered to the currently healthiest replica's device; writes commit
// on every replica before the ack.
type Group struct {
	pl       *Placement
	idx      int
	replicas []*serve.Shard
	rr       int
	led      metrics.PlaceLedger

	inflight int         // quorum writes submitted, not yet fully settled
	drain    []*sim.Cond // procs awaiting inflight == 0 (cutover)
	mig      *migration  // non-nil while this group's shard is moving

	// Under-replication clock: degraded is set when a device death drops
	// the group below full replication, degradedSince stamps when — the
	// window the repair ledger charges when the rebuild lands.
	degraded      bool
	degradedSince sim.Time
}

// heldOp is a write parked during a migration cutover.
type heldOp struct {
	op   serve.Op
	done func(error)
	at   sim.Time
}

// migration is one in-flight replica move, owned by the Mover.
type migration struct {
	src, dst *serve.Shard
	// dirty is the delta the write path feeds: every key written to the
	// group since the current copy pass began. Catch-up swaps in a
	// fresh map and re-copies these from a surviving replica.
	dirty   map[string]struct{}
	cutover bool
	held    []heldOp
}

// Index returns the group's logical shard index.
func (g *Group) Index() int { return g.idx }

// Replicas returns the group's current replica set.
func (g *Group) Replicas() []*serve.Shard { return g.replicas }

// Migrating reports whether the group has a replica move in flight.
func (g *Group) Migrating() bool { return g.mig != nil }

// Degraded reports whether the group is serving below full replication
// (a device death dropped a replica that has not been rebuilt yet).
func (g *Group) Degraded() bool { return g.degraded }

// Ledger returns the group's steering and quorum accounting.
func (g *Group) Ledger() metrics.PlaceLedger { return g.led }

// Systems implements serve.Target: every replica's KV system, so
// preload and churn write all replicas and the group starts identical.
func (g *Group) Systems() []*kvstore.System {
	out := make([]*kvstore.System, len(g.replicas))
	for i, sh := range g.replicas {
		out[i] = sh.System()
	}
	return out
}

// Submit implements serve.Target: reads steer, writes commit on every
// replica before the ack. A group with no live replica left refuses
// loudly with ErrDeviceDown — unavailability is an error the client
// sees, never a silently dropped request.
func (g *Group) Submit(op serve.Op, done func(error)) {
	if len(g.replicas) == 0 {
		g.pl.repled.Unavailable++
		if done != nil {
			done(serve.ErrDeviceDown)
		}
		return
	}
	if op.Kind == serve.OpPut {
		g.submitWrite(op, done)
		return
	}
	if g.degraded {
		g.pl.repled.DegradedReads++
	}
	sh, steered, avoided := g.steer()
	if steered {
		// Trace annotation: this read was routed by live device
		// signals, possibly away from a collecting device.
		op.Span.NoteSteered(avoided)
	}
	sh.Submit(op, done)
}

// steer picks the replica for one read: the device that currently
// reports the least GC activity, the lowest reclamation urgency and
// the lowest observed read service time wins; replicas whose devices
// tie are taken round-robin. The signals are the peer interface's —
// a block-device fabric has none of them and can only route blind.
func (g *Group) steer() (pick *serve.Shard, steered, avoidedGC bool) {
	n := len(g.replicas)
	if n == 1 {
		return g.replicas[0], false, false
	}
	scores := make([]devScore, n)
	best := 0
	ties := 1
	maxChips := 0
	for i := range g.replicas {
		scores[i] = g.pl.deviceScore(g.replicas[i].DeviceIndex())
		if c := scores[i].chips; c > maxChips {
			maxChips = c
		}
		if i == 0 {
			continue
		}
		switch {
		case scores[i].less(scores[best]):
			best, ties = i, 1
		case !scores[best].less(scores[i]):
			ties++
		}
	}
	if ties == len(g.replicas) {
		// Every device looks the same: fall back to round-robin so load
		// still spreads.
		g.led.TieReads++
		pick = g.replicas[g.rr%n]
		g.rr++
		return pick, false, false
	}
	g.led.SteeredReads++
	if maxChips > 0 && scores[best].chips < maxChips {
		g.led.AvoidedGC++
		avoidedGC = true
	}
	return g.replicas[best], true, avoidedGC
}

// submitWrite runs one write through group admission and, when
// admitted, commits it on every replica before acking. During a
// migration the key joins the dirty delta; during its cutover the
// write parks until the new replica set is live.
func (g *Group) submitWrite(op serve.Op, done func(error)) {
	fab := g.pl.fab
	if len(g.replicas) == 0 {
		g.pl.repled.Unavailable++
		if done != nil {
			done(serve.ErrDeviceDown)
		}
		return
	}
	if fab.Stopped() || fab.Crashing() {
		// The shard path reports the right terminal error without
		// applying anything.
		g.replicas[0].Submit(op, done)
		return
	}
	if m := g.mig; m != nil && m.cutover {
		m.held = append(m.held, heldOp{op: op, done: done, at: fab.Engine().Now()})
		g.led.HeldWrites++
		return
	}
	// Group-level admission: every replica must admit the write, or no
	// replica sees it — a quorum write must never be half-applied
	// because one queue was full. The peeks and the submits below run
	// in the same event, so the answers cannot go stale in between.
	for _, sh := range g.replicas {
		if !sh.Admits(op.Class) {
			g.led.WriteRejects++
			if done != nil {
				done(serve.ErrRejected)
			}
			return
		}
	}
	g.led.QuorumWrites++
	if g.degraded {
		// Committed on fewer replicas than configured: acked, durable on
		// the survivors, but one more death away from unavailable — the
		// exposure the repair ledger totals.
		g.pl.repled.DegradedWrites++
	}
	g.inflight++
	remaining := len(g.replicas)
	var werr error
	settle := func(err error) {
		if err != nil && werr == nil {
			werr = err
		}
		if remaining--; remaining > 0 {
			return
		}
		// The migration delta is recorded at *completion*, not at
		// submission: only now is the value published in the replica
		// stores, so only now can a catch-up copy actually read it. A
		// write that was already in flight when the migration began
		// (invisible to both the snapshot and any submit-time ledger)
		// lands here too — and in-flight writes drained by the cutover
		// barrier land before the barrier lifts, so the final delta
		// pass never misses them.
		if m := g.mig; m != nil {
			m.dirty[string(op.Key)] = struct{}{}
		}
		g.inflight--
		if g.inflight == 0 && len(g.drain) > 0 {
			ws := g.drain
			g.drain = nil
			for _, c := range ws {
				c.Fire()
			}
		}
		if done != nil {
			done(werr)
		}
	}
	// Each replica fan-out lands in that shard's admission queue like
	// any other op; on a Batch-enabled fabric the batched workers drain
	// quorum writes alongside client traffic and group them into
	// multi-op commits (kvstore.ApplyBatch) — replication rides the
	// ring path with no placement-level special case.
	for i, sh := range g.replicas {
		rop := op
		if i > 0 {
			// One replica carries the trace span; stamping all of them
			// would double-count every stage against one request.
			rop.Span = nil
		}
		sh.Submit(rop, settle)
	}
}

// awaitWrites blocks the calling process until every in-flight quorum
// write has settled on all its replicas — the cutover barrier: after
// it returns (with cutover already set, so nothing new enters), every
// acknowledged write is durably on the surviving replicas and the
// final delta copy will see it.
func (g *Group) awaitWrites(p *sim.Proc) {
	for g.inflight > 0 {
		c := sim.NewCond(p.Engine())
		g.drain = append(g.drain, c)
		c.Await(p)
	}
}

// swap replaces src with dst in the replica set (the cutover's last
// step, after the final delta landed).
func (g *Group) swap(src, dst *serve.Shard) {
	for i, sh := range g.replicas {
		if sh == src {
			g.replicas[i] = dst
		}
	}
}

// releaseHeld replays the writes parked during cutover against the
// (new) replica set, charging the hold time to the ledger. The
// migration must already be cleared so the replay takes the normal
// path.
func (g *Group) releaseHeld(held []heldOp) {
	now := g.pl.fab.Engine().Now()
	for _, h := range held {
		g.led.HoldNs += int64(now - h.at)
		g.submitWrite(h.op, h.done)
	}
}

// contains reports whether sh is in the replica set.
func (g *Group) contains(sh *serve.Shard) bool {
	for _, r := range g.replicas {
		if r == sh {
			return true
		}
	}
	return false
}

// dropReplica removes sh from the replica set (no retire, no copy —
// the bookkeeping half of losing a replica). It reports whether sh was
// a member.
func (g *Group) dropReplica(sh *serve.Shard) bool {
	for i, r := range g.replicas {
		if r == sh {
			g.replicas = append(g.replicas[:i], g.replicas[i+1:]...)
			return true
		}
	}
	return false
}

// deviceDown handles device d's death for this group: replicas there
// leave the set immediately (the group serves degraded from the
// survivors — or refuses, loudly, if none remain), and the
// under-replication clock starts. The Mover's poll finds the group
// below strength and rebuilds it onto a spare.
func (g *Group) deviceDown(d int, now sim.Time) {
	for i := 0; i < len(g.replicas); {
		if g.replicas[i].DeviceIndex() != d {
			i++
			continue
		}
		if !g.degraded {
			g.degraded = true
			g.degradedSince = now
		}
		g.pl.repled.ReplicasLost++
		g.replicas = append(g.replicas[:i], g.replicas[i+1:]...)
	}
}

// restored settles the under-replication clock once the replica set is
// back at full strength (a completed repair, or a migration that
// doubled as one).
func (g *Group) restored(now sim.Time) {
	if !g.degraded || len(g.replicas) < g.pl.replicas {
		return
	}
	g.degraded = false
	g.pl.repled.Repairs++
	g.pl.repled.RepairNs += int64(now - g.degradedSince)
}
