package place

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/blockdev"
	"repro/internal/kvstore"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/ssd"
)

// smallDevice keeps placement tests fast.
var smallDevice = ssd.Options{Channels: 2, ChipsPerChannel: 2, BlocksPerPlane: 48, PagesPerBlock: 16}

func replicatedConfig(shards int) serve.Config {
	return serve.Config{
		Shards:        shards,
		Replicas:      2,
		Devices:       2,
		Mode:          blockdev.MultiQueue,
		DeviceOptions: smallDevice,
		Scheduled:     true,
		WriteCost:     16,
		QueueDepth:    4,
		LogPages:      12,
		Store:         kvstore.Config{CacheFrames: 8, CheckpointBytes: 8 << 10},
	}
}

// withPlacement runs fn in a simulated process over a fresh replicated
// fabric with its placement router attached.
func withPlacement(t *testing.T, cfg serve.Config, fn func(p *sim.Proc, f *serve.Fabric, pl *Placement, fe *serve.Frontend)) {
	t.Helper()
	eng := sim.NewEngine()
	eng.Go(func(p *sim.Proc) {
		f, err := serve.New(p, eng, cfg)
		if err != nil {
			t.Errorf("new fabric: %v", err)
			return
		}
		pl, err := New(f)
		if err != nil {
			t.Errorf("new placement: %v", err)
			return
		}
		fe := serve.NewFrontend(f, 64, 32)
		pl.Attach(fe)
		fn(p, f, pl, fe)
		f.Stop(true)
	})
	eng.Run()
}

// TestQuorumWritesLandOnEveryReplica: an acked write must be readable
// from both replica stores; reads through the group must succeed; the
// ledger must account the quorum traffic.
func TestQuorumWritesLandOnEveryReplica(t *testing.T) {
	withPlacement(t, replicatedConfig(2), func(p *sim.Proc, f *serve.Fabric, pl *Placement, fe *serve.Frontend) {
		for i := int64(0); i < 32; i++ {
			if err := fe.Put(p, i, []byte(fmt.Sprintf("v%d", i))); err != nil {
				t.Fatalf("put %d: %v", i, err)
			}
		}
		for i := int64(0); i < 32; i++ {
			if err := fe.Get(p, i); err != nil {
				t.Fatalf("get %d: %v", i, err)
			}
			key := fe.Key(i)
			systems := fe.TargetFor(key).Systems()
			if len(systems) != 2 {
				t.Fatalf("key %d target has %d systems, want 2", i, len(systems))
			}
			for ri, sys := range systems {
				got, err := sys.Store.Get(p, key)
				if err != nil || !bytes.Equal(got, []byte(fmt.Sprintf("v%d", i))) {
					t.Fatalf("key %d replica %d: %q, %v", i, ri, got, err)
				}
			}
		}
		led := pl.Ledger()
		if led.QuorumWrites != 32 {
			t.Errorf("quorum writes = %d, want 32", led.QuorumWrites)
		}
		if reads := led.SteeredReads + led.TieReads; reads != 32 {
			t.Errorf("steered+tie reads = %d, want 32", reads)
		}
		// Each group has replicas on both devices, distinct.
		for _, g := range pl.Groups() {
			if g.Replicas()[0].DeviceIndex() == g.Replicas()[1].DeviceIndex() {
				t.Errorf("group %d replicas share device %d", g.Index(), g.Replicas()[0].DeviceIndex())
			}
		}
	})
}

// TestGroupAdmissionNeverHalfApplies: when one replica cannot admit,
// the write is refused whole — afterwards both replica stores must be
// byte-identical, or replica divergence would poison steered reads.
func TestGroupAdmissionNeverHalfApplies(t *testing.T) {
	cfg := replicatedConfig(1)
	cfg.WorkersPerShard = 1
	cfg.Admission = serve.AdmissionConfig{Enabled: true, QueueLimit: 3}
	withPlacement(t, cfg, func(p *sim.Proc, f *serve.Fabric, pl *Placement, fe *serve.Frontend) {
		const n = 60
		wg := sim.NewWaitGroup(p.Engine())
		wg.Add(n)
		rejected := 0
		for i := 0; i < n; i++ {
			i := i
			fe.Submit(serve.Op{Kind: serve.OpPut, Key: fe.Key(int64(i % 16)),
				Value: []byte(fmt.Sprintf("x%d", i))},
				func(err error) {
					if err == serve.ErrRejected {
						rejected++
					}
					wg.Done()
				})
		}
		wg.Wait(p)
		led := pl.Ledger()
		if rejected == 0 || led.WriteRejects != int64(rejected) {
			t.Errorf("rejects: callbacks %d, ledger %d (want > 0, equal)", rejected, led.WriteRejects)
		}
		// Both replicas must have identical contents key by key.
		g := pl.Group(0)
		a, b := g.Replicas()[0].System().Store, g.Replicas()[1].System().Store
		mismatches := 0
		if err := a.Scan(p, func(k, v []byte) bool {
			bv, err := b.Get(p, k)
			if err != nil || !bytes.Equal(bv, v) {
				mismatches++
			}
			return true
		}); err != nil {
			t.Fatalf("scan: %v", err)
		}
		if mismatches != 0 {
			t.Errorf("%d keys diverge between replicas after rejects", mismatches)
		}
	})
}

// TestSteeringAvoidsCollectingDevice: a device reporting GC in flight
// must stop receiving steered reads while its peer is clean.
func TestSteeringAvoidsCollectingDevice(t *testing.T) {
	withPlacement(t, replicatedConfig(1), func(p *sim.Proc, f *serve.Fabric, pl *Placement, fe *serve.Frontend) {
		for i := int64(0); i < 16; i++ {
			if err := fe.Put(p, i, []byte("v")); err != nil {
				t.Fatalf("put: %v", err)
			}
		}
		g := pl.Group(0)
		var onBusy, onClean *serve.Shard
		for _, sh := range g.Replicas() {
			if sh.DeviceIndex() == 0 {
				onBusy = sh
			} else {
				onClean = sh
			}
		}
		// Device 0 reports three chips collecting (the E15 notification,
		// injected directly); device 1 stays clean.
		f.Scheduler(0).SetGCActiveChips(3)
		before := onClean.Stats().Served
		for i := int64(0); i < 24; i++ {
			if err := fe.Get(p, i%16); err != nil {
				t.Fatalf("get: %v", err)
			}
		}
		f.Scheduler(0).SetGCActiveChips(0)
		if served := onClean.Stats().Served - before; served != 24 {
			t.Errorf("clean replica served %d of 24 reads during peer GC", served)
		}
		led := pl.Ledger()
		if led.AvoidedGC < 24 {
			t.Errorf("AvoidedGC = %d, want >= 24", led.AvoidedGC)
		}
		_ = onBusy
	})
}

// TestLiveMigrationLosesNoAcknowledgedWrite is the acceptance test for
// drift-triggered live migration: writers and readers keep the group
// under load, a device ages mid-run, the drift alarm trips, the mover
// streams the shard to the spare device, and afterwards every replica
// of every group holds exactly the last acknowledged value of every
// key — zero lost, zero stale.
func TestLiveMigrationLosesNoAcknowledgedWrite(t *testing.T) {
	cfg := replicatedConfig(2)
	cfg.Spares = 1
	// Unbuffered flash so programs pay real (and, once aged, drifted)
	// latency the estimator can see; a 20ms observation window smooths
	// the thin per-device sample rate.
	cfg.DeviceOptions.BufferPages = -1
	cfg.Calibrate = true
	cfg.CalibrateWindow = 5 * sim.Millisecond
	cfg.Store = kvstore.Config{CacheFrames: 4, CheckpointBytes: 8 << 10}
	eng := sim.NewEngine()
	const keys = 256
	const valueSize = 48
	// preloadValue mirrors Frontend's deterministic preload payload.
	preloadValue := func(i int64) []byte {
		v := make([]byte, valueSize)
		for j := range v {
			v[j] = byte(int64(j) + i)
		}
		return v
	}
	acked := make(map[int64][]byte)
	var pl *Placement
	var fe *serve.Frontend
	var fab *serve.Fabric
	eng.Go(func(p *sim.Proc) {
		f, err := serve.New(p, eng, cfg)
		if err != nil {
			t.Errorf("new fabric: %v", err)
			return
		}
		fab = f
		pl, err = New(f)
		if err != nil {
			t.Errorf("new placement: %v", err)
			return
		}
		fe = serve.NewFrontend(f, keys, valueSize)
		pl.Attach(fe)
		if err := fe.Preload(p); err != nil {
			t.Errorf("preload: %v", err)
			return
		}
		for i := int64(0); i < keys; i++ {
			acked[i] = preloadValue(i)
		}
		pl.StartMover(MoverConfig{
			Interval:        250 * sim.Microsecond,
			DriftThreshold:  1.5,
			DriftMinSamples: 12,
			CopyBatch:       16,
		})
		horizon := p.Now() + 40*sim.Millisecond
		// Device 0 ages 10ms in: reads and programs slow 3x — the drift
		// the alarm exists to notice.
		eng.Schedule(p.Now()+10*sim.Millisecond, func() {
			if dev, ok := f.Stack(0).Device().(*ssd.Device); ok {
				dev.AgeTiming(3, 3, 2)
			}
		})
		// Six writers own disjoint key ranges (so per-key writes are
		// sequential and "last acked" is well defined); two readers keep
		// strided read traffic flowing for the estimator and steering.
		for w := 0; w < 6; w++ {
			w := w
			eng.Go(func(p *sim.Proc) {
				seq := 0
				for p.Now() < horizon {
					k := int64(w + 6*(seq%(keys/6)))
					v := []byte(fmt.Sprintf("w%d-s%d", w, seq))
					seq++
					if err := fe.Put(p, k, v); err == nil {
						acked[k] = v
					} else {
						p.Sleep(50 * sim.Microsecond)
					}
				}
			})
		}
		for r := 0; r < 2; r++ {
			eng.Go(func(p *sim.Proc) {
				for i := int64(0); p.Now() < horizon; i++ {
					if err := fe.Get(p, (i*61)%keys); err != nil {
						p.Sleep(50 * sim.Microsecond)
					}
				}
			})
		}
		// Stop well past the horizon so in-flight migrations finish
		// (bulk-copying a shard onto fresh unbuffered flash pays real
		// program latency for every page).
		f.StopAt(horizon+120*sim.Millisecond, true)
	})
	eng.Run()
	if t.Failed() {
		return
	}

	led := pl.Ledger()
	if led.DriftTrips < 1 {
		t.Fatalf("drift alarm never tripped (ledger %+v)", led)
	}
	if led.Migrations < 1 {
		t.Fatalf("no migration completed (aborted %d)", led.MigrationsAborted)
	}
	// Something must now live on the spare device, and nothing of the
	// surviving placement on the evacuated one.
	onSpare := 0
	for _, g := range pl.Groups() {
		for _, sh := range g.Replicas() {
			if sh.Retired() {
				t.Errorf("group %d still routes to retired shard %s", g.Index(), sh.Name())
			}
			if sh.DeviceIndex() >= fab.PlacedDevices() {
				onSpare++
			}
		}
	}
	if onSpare == 0 {
		t.Error("no replica landed on the spare device")
	}

	// Read-back: every replica of every key's group must hold exactly
	// the last acknowledged value.
	lost, stale := 0, 0
	eng.Go(func(p *sim.Proc) {
		for i := int64(0); i < keys; i++ {
			key := fe.Key(i)
			for _, sys := range fe.TargetFor(key).Systems() {
				got, err := sys.Store.Get(p, key)
				if err != nil {
					lost++
					continue
				}
				if !bytes.Equal(got, acked[i]) {
					stale++
				}
			}
		}
	})
	eng.Run()
	if lost != 0 || stale != 0 {
		t.Fatalf("post-migration read-back: %d lost, %d stale acknowledged writes", lost, stale)
	}
}
