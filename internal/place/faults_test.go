package place

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/ssd"
)

// faultConfig is replicatedConfig plus the failure-domain extras every
// test here needs: a spare device for rebuilds and the health monitor
// the repair machinery reports through.
func faultConfig(shards, spares int) serve.Config {
	cfg := replicatedConfig(shards)
	cfg.Spares = spares
	cfg.Monitor = obs.MonitorConfig{Enabled: true}
	return cfg
}

// soakSummary is one soak run's observable outcome — compared across
// runs of the same seed to prove the harness replays exactly.
type soakSummary struct {
	killed     bool
	deaths     int64
	lost       int64
	repairs    int64
	aborted    int64
	stalls     int64
	downEvents int64
	doneEvents int64
}

// runSoak drives one seeded fault scenario against a replicated fabric
// under live writers and readers, then audits the invariants the
// failure domain promises: no acknowledged write lost (per replica, by
// full read-back), no region slot owned twice, the monitor told the
// story (device-down and repair-done events), and every group back at
// full strength on distinct devices. Device kills are capped at one
// (R=2 survives any single death, not two) and chip faults are left to
// the ssd-level tests — a chip death on the survivor would be a second
// fault domain, outside what R=2 promises.
func runSoak(t *testing.T, seed uint64) soakSummary {
	t.Helper()
	cfg := faultConfig(2, 1)
	plan := faults.RandomPlan(seed, faults.PlanConfig{
		Devices: cfg.Devices, Injections: 5, MaxKills: 1,
	})
	eng := sim.NewEngine()
	const keys, writers = 96, 4
	acked := make(map[int64][]byte)
	racers := make(map[int64]map[string]bool)
	var pl *Placement
	var fe *serve.Frontend
	var fab *serve.Fabric
	inj := (*faults.Injector)(nil)
	eng.Go(func(p *sim.Proc) {
		f, err := serve.New(p, eng, cfg)
		if err != nil {
			t.Errorf("new fabric: %v", err)
			return
		}
		fab = f
		if pl, err = New(f); err != nil {
			t.Errorf("new placement: %v", err)
			return
		}
		fe = serve.NewFrontend(f, keys, 32)
		pl.Attach(fe)
		if err := fe.Preload(p); err != nil {
			t.Errorf("preload: %v", err)
			return
		}
		for i := int64(0); i < keys; i++ {
			v := make([]byte, 32)
			for j := range v {
				v[j] = byte(int64(j) + i)
			}
			acked[i] = v
		}
		pl.StartMover(MoverConfig{Interval: 200 * sim.Microsecond, CopyBatch: 8})
		horizon := p.Now() + 20*sim.Millisecond
		inj = faults.NewInjector(eng, f)
		if err := inj.Arm(plan, p.Now(), horizon); err != nil {
			t.Errorf("arm plan: %v", err)
			return
		}
		for w := 0; w < writers; w++ {
			w := w
			eng.Go(func(p *sim.Proc) {
				seq := 0
				for p.Now() < horizon {
					k := int64(w) + writers*int64(seq%(keys/writers))
					v := []byte(fmt.Sprintf("w%d-s%d", w, seq))
					seq++
					if err := fe.Put(p, k, v); err == nil {
						acked[k] = v
						delete(racers, k)
					} else {
						// A failed quorum write may still have applied on one
						// replica before the fault hit the other: remember the
						// value so read-back can tell that race from real loss.
						if racers[k] == nil {
							racers[k] = map[string]bool{}
						}
						racers[k][string(v)] = true
						p.Sleep(50 * sim.Microsecond)
					}
				}
			})
		}
		for r := 0; r < 2; r++ {
			eng.Go(func(p *sim.Proc) {
				for i := int64(0); p.Now() < horizon; i++ {
					if err := fe.Get(p, (i*31)%keys); err != nil {
						p.Sleep(50 * sim.Microsecond)
					}
				}
			})
		}
		// Generous post-horizon runway: a stall or slow factor on the
		// survivor stretches the rebuild, and the invariant is that it
		// completes, not that it is fast.
		f.StopAt(horizon+200*sim.Millisecond, true)
	})
	eng.Run()
	if t.Failed() {
		return soakSummary{}
	}

	sum := soakSummary{
		deaths:     pl.repled.DeviceDeaths,
		repairs:    pl.repled.Repairs,
		aborted:    pl.repled.RepairsAborted,
		stalls:     pl.repled.RepairStalls,
		downEvents: fab.Monitor().Count(obs.EventDeviceDown),
		doneEvents: fab.Monitor().Count(obs.EventRepairDone),
	}
	for _, in := range inj.Fired() {
		if in.Kind == faults.KillDevice {
			sum.killed = true
		}
	}

	// Invariant: the monitor always narrates a death and its repair.
	if sum.killed {
		if sum.downEvents == 0 {
			t.Errorf("seed %d: device killed but no device-down event", seed)
		}
		if sum.doneEvents == 0 {
			t.Errorf("seed %d: device killed but no repair-done event", seed)
		}
		if sum.deaths == 0 {
			t.Errorf("seed %d: device killed but repair ledger counts no death", seed)
		}
	} else if sum.downEvents != 0 || sum.deaths != 0 {
		t.Errorf("seed %d: no kill in plan but %d down events, %d ledger deaths",
			seed, sum.downEvents, sum.deaths)
	}

	// Invariant: every group ends at full strength on distinct devices —
	// a kill was repaired onto the spare, milder faults moved nothing.
	for _, g := range pl.Groups() {
		if g.Degraded() || len(g.Replicas()) != cfg.Replicas {
			t.Errorf("seed %d: group %d ends with %d replicas (degraded=%v), want %d",
				seed, g.Index(), len(g.Replicas()), g.Degraded(), cfg.Replicas)
		}
		seen := map[int]bool{}
		for _, sh := range g.Replicas() {
			if seen[sh.DeviceIndex()] {
				t.Errorf("seed %d: group %d has two replicas on device %d",
					seed, g.Index(), sh.DeviceIndex())
			}
			seen[sh.DeviceIndex()] = true
		}
	}

	// Invariant: no region slot is owned by two live shards.
	type devslot struct{ dev, slot int }
	owners := map[devslot]string{}
	for _, sh := range fab.Shards() {
		ds := devslot{sh.DeviceIndex(), sh.Slot()}
		if prev, dup := owners[ds]; dup {
			t.Errorf("seed %d: device %d slot %d owned by both %s and %s",
				seed, ds.dev, ds.slot, prev, sh.Name())
		}
		owners[ds] = sh.Name()
	}

	// Invariant: zero lost acknowledged writes. Every live replica of
	// every key must hold the last acked value or a racer.
	eng.Go(func(p *sim.Proc) {
		for i := int64(0); i < keys; i++ {
			key := fe.Key(i)
			for ri, sys := range fe.TargetFor(key).Systems() {
				got, err := sys.Store.Get(p, key)
				if err != nil {
					sum.lost++
					t.Errorf("seed %d: key %d replica %d unreadable: %v", seed, i, ri, err)
					continue
				}
				if bytes.Equal(got, acked[i]) || racers[i][string(got)] {
					continue
				}
				sum.lost++
				t.Errorf("seed %d: key %d replica %d holds %q, want %q or a recorded racer",
					seed, i, ri, got, acked[i])
			}
		}
	})
	eng.Run()
	return sum
}

// TestFaultSoak replays a table of seeded fault scenarios — each seed
// names one deterministic schedule of kills, stalls and slow media —
// and asserts the failure-domain invariants hold under every one of
// them. -short keeps the PR-CI subset quick; the full table runs in
// the scheduled soak job.
func TestFaultSoak(t *testing.T) {
	seeds := []uint64{1, 2, 3, 5, 8, 13}
	if testing.Short() {
		seeds = seeds[:2]
	}
	killsSeen := false
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			sum := runSoak(t, seed)
			if sum.killed {
				killsSeen = true
			}
			t.Logf("seed %d: killed=%v deaths=%d repairs=%d aborted=%d stalls=%d",
				seed, sum.killed, sum.deaths, sum.repairs, sum.aborted, sum.stalls)
		})
	}
	if !killsSeen {
		t.Errorf("no seed in the table draws a device kill; the soak never exercises repair")
	}
}

// TestFaultSoakDeterministic runs the same seed twice and demands
// identical outcomes — the property that makes a failing seed a
// debuggable reproduction instead of a flake.
func TestFaultSoakDeterministic(t *testing.T) {
	a := runSoak(t, 1)
	b := runSoak(t, 1)
	if a != b {
		t.Errorf("seed 1 diverged across runs:\n first: %+v\nsecond: %+v", a, b)
	}
}

// TestRepairStallsUntilSlotFrees pins the spare-slots-exhausted path
// E19's migrations never reach: a device dies while the spare has no
// free region slot. The groups must stay up degraded — still taking
// writes — with the stall counted, and must rebuild the moment slots
// free.
func TestRepairStallsUntilSlotFrees(t *testing.T) {
	cfg := faultConfig(2, 1)
	eng := sim.NewEngine()
	eng.Go(func(p *sim.Proc) {
		f, err := serve.New(p, eng, cfg)
		if err != nil {
			t.Errorf("new fabric: %v", err)
			return
		}
		pl, err := New(f)
		if err != nil {
			t.Errorf("new placement: %v", err)
			return
		}
		fe := serve.NewFrontend(f, 64, 32)
		pl.Attach(fe)
		if err := fe.Preload(p); err != nil {
			t.Errorf("preload: %v", err)
			return
		}
		// Occupy every region slot on the spare before the death.
		spare := cfg.Devices
		var grafts []*serve.Shard
		for f.FreeSlots(spare) > 0 {
			sh, err := f.AddReplica(p, 0, spare)
			if err != nil {
				t.Errorf("graft on spare: %v", err)
				return
			}
			grafts = append(grafts, sh)
		}
		pl.StartMover(MoverConfig{Interval: 200 * sim.Microsecond, CopyBatch: 8})
		f.KillDevice(0)
		p.Sleep(2 * sim.Millisecond)

		if pl.repled.RepairStalls == 0 {
			t.Errorf("no repair stall counted with every spare slot taken")
		}
		if pl.repled.Repairs != 0 {
			t.Errorf("%d repairs completed with nowhere to rebuild", pl.repled.Repairs)
		}
		for _, g := range pl.Groups() {
			if !g.Degraded() || len(g.Replicas()) != 1 {
				t.Errorf("group %d: degraded=%v replicas=%d, want degraded at 1",
					g.Index(), g.Degraded(), len(g.Replicas()))
			}
		}
		// Degraded is not down: writes must still be accepted at R=1.
		if err := fe.Put(p, 7, []byte("degraded-write")); err != nil {
			t.Errorf("put while stalled degraded: %v", err)
		}
		if pl.repled.DegradedWrites == 0 {
			t.Errorf("degraded write not counted")
		}

		// Free the slots; every poll retries, so the rebuild starts now.
		for _, sh := range grafts {
			f.Retire(sh)
		}
		p.Sleep(40 * sim.Millisecond)
		for _, g := range pl.Groups() {
			if g.Degraded() || len(g.Replicas()) != cfg.Replicas {
				t.Errorf("group %d not rebuilt after slots freed: degraded=%v replicas=%d",
					g.Index(), g.Degraded(), len(g.Replicas()))
			}
		}
		if got := pl.repled.Repairs; got != int64(cfg.Shards) {
			t.Errorf("repairs = %d, want %d", got, cfg.Shards)
		}
		if n := f.Monitor().Count(obs.EventRepairDone); n != int64(cfg.Shards) {
			t.Errorf("repair-done events = %d, want %d", n, cfg.Shards)
		}
		f.Stop(true)
	})
	eng.Run()
}

// TestRepairRetriesAfterDestinationDeath kills the rebuild's
// destination device mid-copy: the half-built replica must be
// abandoned loudly (abort counted, abort event emitted) and the next
// poll must rebuild onto the remaining spare — with every preloaded
// value intact on both final replicas.
func TestRepairRetriesAfterDestinationDeath(t *testing.T) {
	cfg := faultConfig(2, 2)
	eng := sim.NewEngine()
	eng.Go(func(p *sim.Proc) {
		f, err := serve.New(p, eng, cfg)
		if err != nil {
			t.Errorf("new fabric: %v", err)
			return
		}
		pl, err := New(f)
		if err != nil {
			t.Errorf("new placement: %v", err)
			return
		}
		fe := serve.NewFrontend(f, 128, 48)
		pl.Attach(fe)
		if err := fe.Preload(p); err != nil {
			t.Errorf("preload: %v", err)
			return
		}
		pl.StartMover(MoverConfig{Interval: 100 * sim.Microsecond, CopyBatch: 4})
		// Kill the destination the instant a rebuild is in flight on it.
		eng.Go(func(p *sim.Proc) {
			for {
				for _, g := range pl.groups {
					if g.mig != nil {
						f.KillDevice(g.mig.dst.DeviceIndex())
						return
					}
				}
				p.Sleep(50 * sim.Microsecond)
			}
		})
		f.KillDevice(0)
		p.Sleep(60 * sim.Millisecond)

		if pl.repled.RepairsAborted == 0 {
			t.Errorf("destination died mid-copy but no repair abort counted")
		}
		if n := f.Monitor().Count(obs.EventRepairAbort); n == 0 {
			t.Errorf("no repair-abort event emitted")
		}
		if got := pl.repled.Repairs; got != int64(cfg.Shards) {
			t.Errorf("repairs = %d, want %d (rebuild must retry on the second spare)", got, cfg.Shards)
		}
		for _, g := range pl.Groups() {
			if g.Degraded() || len(g.Replicas()) != cfg.Replicas {
				t.Errorf("group %d: degraded=%v replicas=%d after retry",
					g.Index(), g.Degraded(), len(g.Replicas()))
			}
			for _, sh := range g.Replicas() {
				if f.DeviceDown(sh.DeviceIndex()) {
					t.Errorf("group %d routes to dead device %d", g.Index(), sh.DeviceIndex())
				}
			}
		}
		// Nothing preloaded may be missing from either surviving replica.
		for i := int64(0); i < fe.Keys; i++ {
			key := fe.Key(i)
			for ri, sys := range fe.TargetFor(key).Systems() {
				if _, err := sys.Store.Get(p, key); err != nil {
					t.Errorf("key %d replica %d unreadable after retried rebuild: %v", i, ri, err)
				}
			}
		}
		f.Stop(true)
	})
	eng.Run()
}

// TestRepairAbortsLoudlyWhenSurvivorDies kills the copy source — the
// group's last replica — while the rebuild streams from it. The repair
// must abort (never install a partial store), and from then on the
// group must refuse every request with ErrDeviceDown: unavailability
// is an error the client sees, not a silent loss.
func TestRepairAbortsLoudlyWhenSurvivorDies(t *testing.T) {
	cfg := faultConfig(2, 1)
	eng := sim.NewEngine()
	eng.Go(func(p *sim.Proc) {
		f, err := serve.New(p, eng, cfg)
		if err != nil {
			t.Errorf("new fabric: %v", err)
			return
		}
		pl, err := New(f)
		if err != nil {
			t.Errorf("new placement: %v", err)
			return
		}
		fe := serve.NewFrontend(f, 128, 48)
		pl.Attach(fe)
		if err := fe.Preload(p); err != nil {
			t.Errorf("preload: %v", err)
			return
		}
		pl.StartMover(MoverConfig{Interval: 100 * sim.Microsecond, CopyBatch: 4})
		f.KillDevice(0)
		// Wait for a rebuild to be streaming from the survivor, then kill it.
		for {
			streaming := false
			for _, g := range pl.groups {
				if g.mig != nil {
					streaming = true
				}
			}
			if streaming {
				break
			}
			p.Sleep(50 * sim.Microsecond)
		}
		f.KillDevice(1)
		// The in-flight bulk copy still has to grind through its batch
		// commits before the mover notices the source is gone; give it
		// room to finish and abort.
		p.Sleep(60 * sim.Millisecond)

		if pl.repled.RepairsAborted == 0 {
			t.Errorf("survivor died mid-copy but no repair abort counted")
		}
		if pl.repled.Repairs != 0 {
			t.Errorf("%d repairs completed with no live source", pl.repled.Repairs)
		}
		if n := f.Monitor().Count(obs.EventDeviceDown); n != 2 {
			t.Errorf("device-down events = %d, want 2", n)
		}
		if n := f.Monitor().Count(obs.EventRepairAbort); n == 0 {
			t.Errorf("no repair-abort event emitted")
		}
		for _, g := range pl.Groups() {
			if len(g.Replicas()) != 0 {
				t.Errorf("group %d still routes to %d replicas with both devices dead",
					g.Index(), len(g.Replicas()))
			}
		}
		unavailBefore := pl.repled.Unavailable
		if err := fe.Put(p, 3, []byte("after the fall")); err != serve.ErrDeviceDown {
			t.Errorf("put on dead fabric: %v, want ErrDeviceDown", err)
		}
		if err := fe.Get(p, 3); err != serve.ErrDeviceDown {
			t.Errorf("get on dead fabric: %v, want ErrDeviceDown", err)
		}
		if pl.repled.Unavailable != unavailBefore+2 {
			t.Errorf("unavailable = %d, want %d", pl.repled.Unavailable, unavailBefore+2)
		}
		f.Stop(true)
	})
	eng.Run()
}

// TestCrashLosesVolatileAcksAtDevice pins the volatile-ack trap to the
// layer where it lives. A volatile write buffer acks host writes at RAM
// speed; power loss (ssd.Device.Crash) throws those acks away, and the
// device reports exactly which LPNs died. Two guards keep the trap out
// of the serving fabric: every store commit flushes before
// acknowledging, and AtomicWrite — the one command whose durability
// contract leans on the buffer surviving ("the safe buffer makes it
// durable") — refuses a volatile buffer outright instead of lying. So
// at fabric scope the remaining exposure is a whole device crashing
// with state its peers don't have, which the quorum test below proves
// the placement layer absorbs.
func TestCrashLosesVolatileAcksAtDevice(t *testing.T) {
	eng := sim.NewEngine()
	built, err := ssd.Build(eng, ssd.Enterprise2012, ssd.Options{
		Channels: 2, ChipsPerChannel: 2, BlocksPerPlane: 16, PagesPerBlock: 8,
		BufferPages: 16, BufferVolatile: true,
	})
	if err != nil {
		t.Fatalf("build device: %v", err)
	}
	d := built.(*ssd.Device)
	const n = 4 // well below the buffer's flush watermark: acks stay volatile
	acked := 0
	for lpn := int64(0); lpn < n; lpn++ {
		data := bytes.Repeat([]byte{byte(0xA0 + lpn)}, d.PageSize())
		d.Write(lpn, data, func(err error) {
			if err == nil {
				acked++
			}
		})
	}
	eng.Run()
	if acked != n {
		t.Fatalf("acked %d of %d buffered writes", acked, n)
	}
	lost := d.Crash()
	if len(lost) != n {
		t.Errorf("crash lost %d LPNs, want all %d acked writes: %v", len(lost), n, lost)
	}
	for lpn := int64(0); lpn < n; lpn++ {
		var got []byte
		d.Read(lpn, func(b []byte, err error) { got = b })
		eng.Run()
		if len(got) > 0 && got[0] == byte(0xA0+lpn) {
			t.Errorf("lpn %d still holds its acked write after a volatile crash", lpn)
		}
	}
	var atomicErr error
	d.AtomicWrite([]int64{0}, [][]byte{make([]byte, d.PageSize())}, func(err error) { atomicErr = err })
	eng.Run()
	if !errors.Is(atomicErr, ssd.ErrAtomicUnsupported) {
		t.Errorf("atomic write on a volatile buffer: %v, want ErrAtomicUnsupported", atomicErr)
	}
}

// TestCrashDeviceKeepsQuorumAckedWrites is the regression test for the
// volatile-ack trap at quorum scope: a write acked by the quorum has
// completed on every replica, so any single-device crash must be
// survivable — Placement.CrashDevice resyncs the reopened replica from
// its survivor before routing to it again. The devices run volatile
// buffers, so each crash genuinely drops whatever the buffer held, and
// crashes land at several points in the write sequence, on both devices,
// including right after the freshest ack.
func TestCrashDeviceKeepsQuorumAckedWrites(t *testing.T) {
	cfg := faultConfig(2, 0)
	cfg.DeviceOptions.BufferVolatile = true
	withPlacement(t, cfg, func(p *sim.Proc, f *serve.Fabric, pl *Placement, fe *serve.Frontend) {
		const n = 90
		crashAt := map[int64]int{30: 0, 60: 1, n: 0}
		crashes := 0
		for i := int64(0); i < n; i++ {
			if err := fe.Put(p, i, []byte(fmt.Sprintf("q%d", i))); err != nil {
				t.Fatalf("put %d: %v", i, err)
			}
			if d, ok := crashAt[i+1]; ok {
				if err := pl.CrashDevice(p, d); err != nil {
					t.Fatalf("crash device %d after %d writes: %v", d, i+1, err)
				}
				crashes++
			}
		}
		for i := int64(0); i < n; i++ {
			key := fe.Key(i)
			want := []byte(fmt.Sprintf("q%d", i))
			systems := fe.TargetFor(key).Systems()
			if len(systems) != 2 {
				t.Fatalf("key %d routes to %d replicas, want 2", i, len(systems))
			}
			for ri, sys := range systems {
				got, err := sys.Store.Get(p, key)
				if err != nil || !bytes.Equal(got, want) {
					t.Errorf("key %d replica %d after %d crashes: %q, %v; want %q",
						i, ri, crashes, got, err, want)
				}
			}
		}
		// Every crash resynced each group with a replica on the crashed
		// device — both groups, every time.
		if got, want := pl.RepairLedger().CrashResyncs, int64(crashes*len(pl.Groups())); got != want {
			t.Errorf("crash resyncs = %d, want %d", got, want)
		}
	})
}
