package metrics

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty quantile should be 0")
	}
}

func TestHistogramBasicStats(t *testing.T) {
	var h Histogram
	for _, v := range []int64{10, 20, 30, 40} {
		h.Record(v)
	}
	if h.Count() != 4 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Sum() != 100 {
		t.Fatalf("Sum = %d", h.Sum())
	}
	if h.Mean() != 25 {
		t.Fatalf("Mean = %v", h.Mean())
	}
	if h.Min() != 10 || h.Max() != 40 {
		t.Fatalf("Min/Max = %d/%d", h.Min(), h.Max())
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Record(-5)
	if h.Min() != 0 {
		t.Fatalf("Min = %d, want 0", h.Min())
	}
}

func TestHistogramQuantileExactSmall(t *testing.T) {
	var h Histogram
	for v := int64(1); v <= 10; v++ {
		h.Record(v)
	}
	// Small values are exact (one bucket each below subBuckets).
	if got := h.Quantile(0.5); got != 5 {
		t.Fatalf("median = %d, want 5", got)
	}
	if got := h.Quantile(1.0); got != 10 {
		t.Fatalf("p100 = %d, want 10", got)
	}
	if got := h.Quantile(0.0); got != 1 {
		t.Fatalf("p0 = %d, want 1", got)
	}
}

func TestHistogramQuantileApproxLarge(t *testing.T) {
	var h Histogram
	for v := int64(1); v <= 100000; v++ {
		h.Record(v)
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		got := float64(h.Quantile(q))
		want := q * 100000
		if math.Abs(got-want)/want > 0.05 {
			t.Fatalf("q%.2f = %v, want within 5%% of %v", q, got, want)
		}
	}
}

// Property: histogram quantile within bucket error of true quantile.
func TestPropertyHistogramQuantile(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		var h Histogram
		vals := make([]int64, len(raw))
		for i, r := range raw {
			vals[i] = int64(r % 10_000_000)
			h.Record(vals[i])
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		for _, q := range []float64{0.5, 0.95, 1.0} {
			idx := int(math.Ceil(q*float64(len(vals)))) - 1
			if idx < 0 {
				idx = 0
			}
			truth := vals[idx]
			got := h.Quantile(q)
			// Bucketing gives the lower bound of the bucket holding the
			// truth: got <= truth and truth-got bounded by ~2/32 relative.
			if got > truth {
				return false
			}
			if truth > 64 && float64(truth-got) > 0.07*float64(truth) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBucketRoundTrip(t *testing.T) {
	for _, v := range []int64{0, 1, 31, 32, 33, 63, 64, 100, 1000, 1 << 20, 1<<40 + 12345} {
		b := bucketOf(v)
		lo := bucketLow(b)
		if lo > v {
			t.Fatalf("bucketLow(%d)=%d exceeds value %d", b, lo, v)
		}
		if bucketOf(lo) != b {
			t.Fatalf("bucketOf(bucketLow(%d))=%d, want %d", b, bucketOf(lo), b)
		}
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Record(10)
	a.Record(20)
	b.Record(5)
	b.Record(100)
	a.Merge(&b)
	if a.Count() != 4 {
		t.Fatalf("Count = %d", a.Count())
	}
	if a.Min() != 5 || a.Max() != 100 {
		t.Fatalf("Min/Max = %d/%d", a.Min(), a.Max())
	}
	a.Merge(nil) // must not panic
}

func TestHistogramMergeIntoEmpty(t *testing.T) {
	var a, b Histogram
	b.Record(7)
	a.Merge(&b)
	if a.Count() != 1 || a.Min() != 7 || a.Max() != 7 {
		t.Fatal("merge into empty lost data")
	}
}

func TestHistogramReset(t *testing.T) {
	var h Histogram
	h.Record(5)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestHistogramSummaryAndBar(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Record(int64(i * 1000))
	}
	if !strings.Contains(h.Summary(), "n=100") {
		t.Fatalf("Summary = %q", h.Summary())
	}
	if h.Bar(40) == "(empty)" {
		t.Fatal("Bar on non-empty histogram returned (empty)")
	}
	var empty Histogram
	if empty.Bar(40) != "(empty)" {
		t.Fatal("Bar on empty histogram should say (empty)")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Results", "pattern", "MB/s")
	tb.AddRow("SR", 250.0)
	tb.AddRow("RR", 248.5)
	out := tb.String()
	if !strings.Contains(out, "Results") || !strings.Contains(out, "pattern") {
		t.Fatalf("table output missing pieces:\n%s", out)
	}
	if !strings.Contains(out, "250.00") {
		t.Fatalf("float not formatted: %s", out)
	}
	if tb.Rows() != 2 {
		t.Fatalf("Rows = %d", tb.Rows())
	}
	if tb.Cell(0, 0) != "SR" || tb.Cell(1, 1) != "248.50" {
		t.Fatal("Cell accessor wrong")
	}
	if tb.Cell(5, 5) != "" {
		t.Fatal("out-of-range Cell should be empty")
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Add(4096)
	c.Add(4096)
	if c.Ops != 2 || c.Bytes != 8192 {
		t.Fatalf("Counter = %+v", c)
	}
	if got := c.IOPS(1e9); got != 2 {
		t.Fatalf("IOPS = %v", got)
	}
	if got := c.MBps(1e9); math.Abs(got-8192.0/1e6) > 1e-9 {
		t.Fatalf("MBps = %v", got)
	}
	if c.IOPS(0) != 0 || c.MBps(-5) != 0 {
		t.Fatal("zero/negative elapsed should report 0")
	}
}

func TestGanttRendering(t *testing.T) {
	g := NewGantt(60)
	g.AddLane("channel", []GanttSpan{{Start: 0, End: 100, Label: "xfer"}, {Start: 200, End: 300, Label: "xfer"}})
	g.AddLane("chip0", []GanttSpan{{Start: 100, End: 700, Label: "prog"}})
	out := g.String()
	if !strings.Contains(out, "channel") || !strings.Contains(out, "chip0") {
		t.Fatalf("gantt missing lanes:\n%s", out)
	}
	if !strings.Contains(out, "x=xfer") || !strings.Contains(out, "p=prog") {
		t.Fatalf("gantt missing legend:\n%s", out)
	}
	if g.Lanes() != 2 {
		t.Fatalf("Lanes = %d", g.Lanes())
	}
}

func TestGanttEmpty(t *testing.T) {
	g := NewGantt(40)
	if g.String() != "(empty gantt)" {
		t.Fatal("empty gantt should render placeholder")
	}
	g.AddLane("idle", nil)
	if g.String() != "(empty gantt)" {
		t.Fatal("gantt with no intervals should render placeholder")
	}
}

func TestGanttTinySpanVisible(t *testing.T) {
	g := NewGantt(40)
	g.AddLane("c", []GanttSpan{{Start: 0, End: 1, Label: "a"}, {Start: 0, End: 1000000, Label: "b"}})
	out := g.String()
	if !strings.Contains(out, "a=a") {
		t.Fatalf("tiny span not rendered:\n%s", out)
	}
}

func TestTenantLatenciesRecordAndTable(t *testing.T) {
	tl := NewTenantLatencies()
	for i := 0; i < 100; i++ {
		tl.Record("a", int64(1000+i))
		tl.Record("b", int64(50000+i))
	}
	if got := tl.Tenants(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("tenant order %v", got)
	}
	if tl.Hist("a").Count() != 100 || tl.Hist("b").Count() != 100 {
		t.Fatal("sample counts wrong")
	}
	if tl.Hist("a").P99() >= tl.Hist("b").P50() {
		t.Fatal("tenant distributions not separated")
	}
	tbl := tl.Table("per-tenant latency")
	if tbl.Rows() != 2 {
		t.Fatalf("table rows = %d, want 2", tbl.Rows())
	}
	if tbl.Cell(0, 0) != "a" || tbl.Cell(1, 0) != "b" {
		t.Fatal("table tenant column wrong")
	}
}

func TestTenantLatenciesMergeAndReset(t *testing.T) {
	a := NewTenantLatencies()
	b := NewTenantLatencies()
	a.Record("x", 10)
	b.Record("x", 20)
	b.Record("y", 30)
	a.Merge(b)
	if a.Hist("x").Count() != 2 || a.Hist("y").Count() != 1 {
		t.Fatal("merge lost samples")
	}
	a.Reset()
	if a.Hist("x").Count() != 0 || len(a.Tenants()) != 2 {
		t.Fatal("reset must clear samples but keep tenants")
	}
}

func TestShardStats(t *testing.T) {
	s := NewShardStats()
	a := s.Shard("shard0")
	a.Submitted, a.Admitted, a.Rejected, a.Served, a.DeadlineMissed, a.MaxQueue = 10, 8, 2, 8, 4, 5
	b := s.Shard("shard1")
	b.Submitted, b.Admitted, b.Served, b.MaxQueue = 4, 4, 4, 9
	if got := s.Shards(); len(got) != 2 || got[0] != "shard0" || got[1] != "shard1" {
		t.Fatalf("shard order %v", got)
	}
	if s.Shard("shard0") != a {
		t.Fatal("lookup did not return the same counters")
	}
	tot := s.Totals()
	if tot.Submitted != 14 || tot.Rejected != 2 || tot.Served != 12 {
		t.Fatalf("totals %+v", tot)
	}
	if tot.MaxQueue != 9 {
		t.Fatalf("totals MaxQueue = %d, want max across shards", tot.MaxQueue)
	}
	if r := a.RejectRate(); r != 0.2 {
		t.Fatalf("reject rate %v, want 0.2", r)
	}
	if m := a.MissRate(); m != 0.5 {
		t.Fatalf("miss rate %v, want 0.5", m)
	}
	var zero ShardCounters
	if zero.RejectRate() != 0 || zero.MissRate() != 0 {
		t.Fatal("zero counters must not divide by zero")
	}
	tbl := s.Table("shards")
	if tbl.Rows() != 3 {
		t.Fatalf("table rows = %d, want 2 shards + totals", tbl.Rows())
	}
	s.Reset()
	if s.Totals().Submitted != 0 || len(s.Shards()) != 2 {
		t.Fatal("reset must zero counters but keep the shard set")
	}
}
