package metrics

import "fmt"

// ShardCounters is one shard's serving-boundary accounting: what
// arrived, what admission let through, what was served within its
// deadline. The serving fabric (package serve) increments these at the
// shard boundary; experiments render them next to TenantLatencies.
type ShardCounters struct {
	// Submitted counts every request routed to the shard.
	Submitted int64
	// Admitted counts requests accepted into the shard queue.
	Admitted int64
	// Rejected counts requests refused at admission (queue full, token
	// bucket empty, or predicted to miss — every refusal, whatever the
	// reason).
	Rejected int64
	// EarlyDropped counts the subset of Rejected refused by the
	// p99-aware early drop: the observed service-time distribution said
	// the request's queue position already implied a deadline miss.
	EarlyDropped int64
	// Dropped counts admitted requests abandoned unserved (fabric
	// stopped with a backlog).
	Dropped int64
	// Served counts requests executed to completion.
	Served int64
	// Failed counts admitted requests whose execution errored in the
	// storage engine (they are neither served nor latency samples).
	Failed int64
	// DeadlineMissed counts served requests that completed after their
	// class deadline.
	DeadlineMissed int64
	// MaxQueue is the high-water queued-request count.
	MaxQueue int
}

// Add folds other into c, field by field (MaxQueue takes the max).
func (c *ShardCounters) Add(other ShardCounters) {
	c.Submitted += other.Submitted
	c.Admitted += other.Admitted
	c.Rejected += other.Rejected
	c.EarlyDropped += other.EarlyDropped
	c.Dropped += other.Dropped
	c.Served += other.Served
	c.Failed += other.Failed
	c.DeadlineMissed += other.DeadlineMissed
	if other.MaxQueue > c.MaxQueue {
		c.MaxQueue = other.MaxQueue
	}
}

// RejectRate is Rejected / Submitted.
func (c *ShardCounters) RejectRate() float64 { return rate(c.Rejected, c.Submitted) }

// MissRate is DeadlineMissed / Served.
func (c *ShardCounters) MissRate() float64 { return rate(c.DeadlineMissed, c.Served) }

func rate(part, whole int64) float64 {
	if whole == 0 {
		return 0
	}
	return float64(part) / float64(whole)
}

// ShardStats keys ShardCounters by shard name, preserving first-seen
// order so tables render deterministically — the serving-side sibling
// of TenantLatencies.
type ShardStats struct {
	order  []string
	shards map[string]*ShardCounters
}

// NewShardStats returns an empty per-shard counter set.
func NewShardStats() *ShardStats {
	return &ShardStats{shards: make(map[string]*ShardCounters)}
}

// Shard returns the named shard's counters, creating them on first use.
func (s *ShardStats) Shard(name string) *ShardCounters {
	c, ok := s.shards[name]
	if !ok {
		c = &ShardCounters{}
		s.shards[name] = c
		s.order = append(s.order, name)
	}
	return c
}

// Shards lists shard names in first-seen order.
func (s *ShardStats) Shards() []string { return s.order }

// Totals sums every shard's counters (MaxQueue is the max across
// shards).
func (s *ShardStats) Totals() ShardCounters {
	var t ShardCounters
	for _, name := range s.order {
		t.Add(*s.shards[name])
	}
	return t
}

// Reset zeroes every shard's counters but keeps the shard set.
func (s *ShardStats) Reset() {
	for _, c := range s.shards {
		*c = ShardCounters{}
	}
}

// Table renders one row per shard plus a totals row: submissions,
// admission outcomes, deadline misses and queue high-water.
func (s *ShardStats) Table(title string) *Table {
	tbl := NewTable(title, "shard", "submitted", "admitted", "rejected", "edrop", "dropped", "served", "failed", "misses", "rej %", "miss %", "max q")
	row := func(name string, c ShardCounters) {
		tbl.AddRow(name, c.Submitted, c.Admitted, c.Rejected, c.EarlyDropped, c.Dropped, c.Served, c.Failed, c.DeadlineMissed,
			fmt.Sprintf("%.1f", 100*c.RejectRate()),
			fmt.Sprintf("%.1f", 100*c.MissRate()),
			c.MaxQueue)
	}
	for _, name := range s.order {
		row(name, *s.shards[name])
	}
	if len(s.order) > 1 {
		row("total", s.Totals())
	}
	return tbl
}
