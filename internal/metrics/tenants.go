package metrics

import "fmt"

// TenantLatencies keys latency histograms by tenant name, preserving
// first-seen order so tables and comparisons render deterministically.
// It is the measurement side of multi-tenant scheduling (package sched):
// experiments record each tenant's end-to-end request latency here and
// print one row per tenant.
type TenantLatencies struct {
	order []string
	hists map[string]*Histogram
}

// NewTenantLatencies returns an empty per-tenant latency set.
func NewTenantLatencies() *TenantLatencies {
	return &TenantLatencies{hists: make(map[string]*Histogram)}
}

// Hist returns tenant's histogram, creating it on first use.
func (t *TenantLatencies) Hist(tenant string) *Histogram {
	h, ok := t.hists[tenant]
	if !ok {
		h = &Histogram{}
		t.hists[tenant] = h
		t.order = append(t.order, tenant)
	}
	return h
}

// Record adds one latency sample (nanoseconds) for tenant.
func (t *TenantLatencies) Record(tenant string, v int64) {
	t.Hist(tenant).Record(v)
}

// Tenants lists tenant names in first-seen order.
func (t *TenantLatencies) Tenants() []string { return t.order }

// Merge folds all of other's samples into t, tenant by tenant.
func (t *TenantLatencies) Merge(other *TenantLatencies) {
	if other == nil {
		return
	}
	for _, name := range other.order {
		t.Hist(name).Merge(other.hists[name])
	}
}

// Reset discards every tenant's samples but keeps the tenant set.
func (t *TenantLatencies) Reset() {
	for _, h := range t.hists {
		h.Reset()
	}
}

// Table renders one row per tenant: sample count, mean, p50, p99 and
// max in microseconds.
func (t *TenantLatencies) Table(title string) *Table {
	tbl := NewTable(title, "tenant", "n", "mean (µs)", "p50 (µs)", "p99 (µs)", "max (µs)")
	for _, name := range t.order {
		h := t.hists[name]
		tbl.AddRow(name, h.Count(),
			fmt.Sprintf("%.1f", h.Mean()/1e3),
			fmt.Sprintf("%.1f", float64(h.P50())/1e3),
			fmt.Sprintf("%.1f", float64(h.P99())/1e3),
			fmt.Sprintf("%.1f", float64(h.Max())/1e3))
	}
	return tbl
}
