package metrics

import "testing"

func TestDriftAlarmTripsOnSustainedSlowdown(t *testing.T) {
	e := NewEstimator(1*ms, 4, 0.2)
	c := e.Class("read")
	a := c.DriftAlarm(1.5, 16)
	var gotRatio float64
	a.OnTrip(func(r float64) { gotRatio = r })

	// Cold checks: nothing recorded, nothing armed.
	if a.Check(0) || a.Armed() {
		t.Fatal("cold alarm must neither arm nor trip")
	}
	// A healthy window arms the baseline.
	for i := int64(0); i < 32; i++ {
		c.Record(i*1000, 100_000)
	}
	if a.Check(32_000) {
		t.Fatal("healthy window must not trip")
	}
	if !a.Armed() || a.Baseline() < 90_000 || a.Baseline() > 110_000 {
		t.Fatalf("baseline = %v, want ~100000", a.Baseline())
	}
	// Same service level: no trip, ratio near 1.
	for i := int64(0); i < 32; i++ {
		c.Record(ms+i*1000, 100_000)
	}
	if a.Check(ms + 32_000) {
		t.Fatal("steady service must not trip")
	}
	if r := a.Ratio(); r < 0.9 || r > 1.1 {
		t.Fatalf("steady ratio = %v, want ~1", r)
	}
	// The device ages: 2.5× slower. Let the old windows roll out, then
	// the trend ratio crosses the threshold and the alarm latches.
	for w := int64(5); w <= 8; w++ {
		for i := int64(0); i < 32; i++ {
			c.Record(w*ms+i*1000, 250_000)
		}
	}
	if !a.Check(8*ms + 32_000) {
		t.Fatalf("2.5x slowdown must trip a 1.5x alarm (ratio %v)", a.Ratio())
	}
	if gotRatio < 2.0 || gotRatio > 3.0 {
		t.Fatalf("trip callback ratio = %v, want ~2.5", gotRatio)
	}
	if !a.Tripped() || !a.Check(9*ms) {
		t.Fatal("alarm must latch once tripped")
	}
	// Reset re-arms from the current (slow) regime: the new normal.
	a.Reset()
	if a.Tripped() || a.Armed() {
		t.Fatal("Reset must clear trip and baseline")
	}
	for i := int64(0); i < 32; i++ {
		c.Record(10*ms+i*1000, 250_000)
	}
	if a.Check(10*ms + 32_000) {
		t.Fatal("post-reset steady slow service must not trip")
	}
	if a.Baseline() < 200_000 {
		t.Fatalf("post-reset baseline = %v, want the slow regime", a.Baseline())
	}
}

func TestDriftAlarmDoesNotTripBelowThresholdOrOnColdWindow(t *testing.T) {
	e := NewEstimator(1*ms, 4, 0.2)
	c := e.Class("read")
	a := c.DriftAlarm(2.0, 16)
	for i := int64(0); i < 32; i++ {
		c.Record(i*1000, 100_000)
	}
	a.Check(32_000) // arms
	// 1.5× drift under a 2× threshold: no trip, ratio visible.
	for w := int64(5); w <= 8; w++ {
		for i := int64(0); i < 32; i++ {
			c.Record(w*ms+i*1000, 150_000)
		}
	}
	if a.Check(8*ms + 32_000) {
		t.Fatalf("1.5x drift must not trip a 2x alarm (ratio %v)", a.Ratio())
	}
	if r := a.Ratio(); r < 1.3 || r > 1.7 {
		t.Fatalf("ratio = %v, want ~1.5", r)
	}
	// A long silence empties the window; a handful of slow stragglers
	// must not trip the alarm while the window is cold.
	c.Observe(100 * ms)
	for i := int64(0); i < 8; i++ {
		c.Record(100*ms+i*1000, 400_000)
	}
	if a.Check(100*ms + 8_000) {
		t.Fatal("cold window (below minSamples) must not trip")
	}

	// Defaults: threshold <= 1 and minSamples < 1 fall back sanely.
	d := c.DriftAlarm(0, 0)
	if d.threshold != 1.5 || d.minSamples != 16 {
		t.Fatalf("defaults = %v/%v, want 1.5/16", d.threshold, d.minSamples)
	}
}
