package metrics

// Estimator is the windowed service-time estimator every adaptive
// policy in the control plane consumes: per operation class it keeps a
// ring of rolling sub-window histograms (so quantiles reflect only the
// recent past and forget a device's former self) plus an EWMA mean (so
// ratio queries are smooth). Times are int64 nanoseconds, matching
// Histogram; callers pass the current virtual time explicitly so the
// package stays clock-free.
//
// One Estimator feeds several actuators at once: blockdev calibrates
// DRR read/write billing from the class EWMAs, serve derives per-class
// admission deadlines and early-drop predictions from the window
// quantiles, and the SLO controller reads the same window the admission
// path does.
type Estimator struct {
	window int64 // sub-window span (ns)
	slots  int
	alpha  float64
	order  []string
	byName map[string]*ClassEstimate
}

// ClassEstimate is one op class's live estimate. The ring holds `slots`
// sub-windows; `merged` is kept equal to the sum of all live slots at
// all times (records land in both, roll-over rebuilds it), so quantile
// queries cost one histogram walk and never a sort or merge.
type ClassEstimate struct {
	e *Estimator

	ewma   float64
	seeded bool
	total  int64 // lifetime samples

	ring      []Histogram
	cur       int
	slotStart int64 // start instant of ring[cur]; -1 until first sample
	merged    Histogram
}

// NewEstimator builds an estimator with the given sub-window span in
// nanoseconds, ring size, and EWMA smoothing factor. window <= 0 means
// 2ms, slots < 2 means 4, alpha outside (0,1] means 0.2.
func NewEstimator(window int64, slots int, alpha float64) *Estimator {
	if window <= 0 {
		window = 2_000_000
	}
	if slots < 2 {
		slots = 4
	}
	if alpha <= 0 || alpha > 1 {
		alpha = 0.2
	}
	return &Estimator{
		window: window,
		slots:  slots,
		alpha:  alpha,
		byName: make(map[string]*ClassEstimate),
	}
}

// Window reports the estimator's total observation span in nanoseconds
// (sub-window × slots): how far back its quantiles can see.
func (e *Estimator) Window() int64 { return e.window * int64(e.slots) }

// Class returns the named class's estimate, creating it on first use.
func (e *Estimator) Class(name string) *ClassEstimate {
	c, ok := e.byName[name]
	if !ok {
		c = &ClassEstimate{e: e, ring: make([]Histogram, e.slots), slotStart: -1}
		e.byName[name] = c
		e.order = append(e.order, name)
	}
	return c
}

// Classes lists class names in first-seen order.
func (e *Estimator) Classes() []string { return e.order }

// Record adds one service-time sample (ns) for class at virtual time
// now (ns).
func (e *Estimator) Record(class string, now, v int64) {
	e.Class(class).Record(now, v)
}

// EWMA reports the class's smoothed mean service time in nanoseconds,
// or 0 before any sample.
func (e *Estimator) EWMA(class string) float64 {
	if c, ok := e.byName[class]; ok {
		return c.EWMA()
	}
	return 0
}

// Quantile reports the q-quantile of the class's rolling window, or 0
// with no samples in the window.
func (e *Estimator) Quantile(class string, q float64) int64 {
	if c, ok := e.byName[class]; ok {
		return c.Quantile(q)
	}
	return 0
}

// Ratio reports EWMA(a)/EWMA(b) — the cost-calibration primitive — or
// 0 until both classes have samples.
func (e *Estimator) Ratio(a, b string) float64 {
	ea, eb := e.EWMA(a), e.EWMA(b)
	if ea <= 0 || eb <= 0 {
		return 0
	}
	return ea / eb
}

// Record adds one sample at virtual time now.
func (c *ClassEstimate) Record(now, v int64) {
	if v < 0 {
		v = 0
	}
	c.roll(now)
	c.ring[c.cur].Record(v)
	c.merged.Record(v)
	c.total++
	if !c.seeded {
		c.ewma = float64(v)
		c.seeded = true
	} else {
		c.ewma += c.e.alpha * (float64(v) - c.ewma)
	}
}

// roll advances the ring so ring[cur] covers now. A gap longer than the
// whole ring discards everything (the window saw nothing; stale
// quantiles must not outlive their span).
func (c *ClassEstimate) roll(now int64) {
	w := c.e.window
	if c.slotStart < 0 {
		c.slotStart = now - now%w
		return
	}
	if now < c.slotStart+w {
		return
	}
	steps := (now - c.slotStart) / w
	if steps >= int64(len(c.ring)) {
		for i := range c.ring {
			c.ring[i].Reset()
		}
		c.merged.Reset()
		c.cur = 0
		c.slotStart = now - now%w
		return
	}
	for ; steps > 0; steps-- {
		c.cur = (c.cur + 1) % len(c.ring)
		c.ring[c.cur].Reset()
		c.slotStart += w
	}
	c.merged.Reset()
	for i := range c.ring {
		c.merged.Merge(&c.ring[i])
	}
}

// Observe rolls the window forward to now without recording a sample,
// so a class that went quiet ages out of its own estimate.
func (c *ClassEstimate) Observe(now int64) { c.roll(now) }

// EWMA reports the smoothed mean in nanoseconds (0 before any sample).
func (c *ClassEstimate) EWMA() float64 { return c.ewma }

// Quantile reports the q-quantile over the live window (0 when the
// window is empty). Callers that need freshness against a silent class
// should Observe(now) first.
func (c *ClassEstimate) Quantile(q float64) int64 { return c.merged.Quantile(q) }

// Mean reports the arithmetic mean over the live window (unlike EWMA,
// it weighs every windowed sample equally).
func (c *ClassEstimate) Mean() float64 { return c.merged.Mean() }

// WindowCount reports samples currently inside the window.
func (c *ClassEstimate) WindowCount() int64 { return c.merged.Count() }

// Count reports lifetime samples.
func (c *ClassEstimate) Count() int64 { return c.total }
