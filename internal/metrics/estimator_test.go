package metrics

import (
	"math"
	"sort"
	"testing"
)

const ms = int64(1_000_000) // ns per millisecond

func TestEstimatorWindowRollOver(t *testing.T) {
	e := NewEstimator(1*ms, 4, 0.2)
	c := e.Class("read")
	// Fill the first sub-window with slow samples.
	for i := int64(0); i < 100; i++ {
		c.Record(i*1000, 80_000)
	}
	if got := c.Quantile(0.5); got < 70_000 {
		t.Fatalf("p50 = %d, want ~80000", got)
	}
	// Three more sub-windows of fast samples: the slow window is still
	// inside the ring, so the tail remembers it.
	for w := int64(1); w <= 3; w++ {
		for i := int64(0); i < 100; i++ {
			c.Record(w*ms+i*1000, 10_000)
		}
	}
	if got := c.Quantile(0.99); got < 70_000 {
		t.Fatalf("p99 = %d, want the slow window still visible", got)
	}
	if got, want := c.WindowCount(), int64(400); got != want {
		t.Fatalf("WindowCount = %d, want %d", got, want)
	}
	// One more sub-window evicts the slow one: the whole window is fast.
	for i := int64(0); i < 100; i++ {
		c.Record(4*ms+i*1000, 10_000)
	}
	if got := c.Quantile(0.99); got > 20_000 {
		t.Fatalf("p99 = %d after roll-over, slow window should be forgotten", got)
	}
	if got, want := c.WindowCount(), int64(400); got != want {
		t.Fatalf("WindowCount after roll-over = %d, want %d", got, want)
	}
	if got, want := c.Count(), int64(500); got != want {
		t.Fatalf("lifetime Count = %d, want %d", got, want)
	}
}

func TestEstimatorLongGapDiscardsWindow(t *testing.T) {
	e := NewEstimator(1*ms, 4, 0.2)
	c := e.Class("read")
	for i := int64(0); i < 50; i++ {
		c.Record(i*1000, 50_000)
	}
	// Silence far longer than the whole ring, then Observe: everything
	// recorded before the gap must age out without a new sample.
	c.Observe(100 * ms)
	if got := c.WindowCount(); got != 0 {
		t.Fatalf("WindowCount after long gap = %d, want 0", got)
	}
	if got := c.Quantile(0.99); got != 0 {
		t.Fatalf("Quantile after long gap = %d, want 0", got)
	}
	// Lifetime stats and the EWMA survive the gap.
	if got := c.Count(); got != 50 {
		t.Fatalf("lifetime Count = %d, want 50", got)
	}
	if got := c.EWMA(); got == 0 {
		t.Fatal("EWMA should survive the window gap")
	}
}

func TestEstimatorEWMAConvergence(t *testing.T) {
	e := NewEstimator(1*ms, 4, 0.2)
	c := e.Class("write")
	// Seed at one level, then shift the true service time: the EWMA must
	// converge to the new level geometrically.
	for i := int64(0); i < 50; i++ {
		c.Record(i*1000, 100_000)
	}
	if got := c.EWMA(); math.Abs(got-100_000) > 1 {
		t.Fatalf("EWMA = %v, want 100000", got)
	}
	for i := int64(0); i < 50; i++ {
		c.Record(ms+i*1000, 400_000)
	}
	// After 50 samples at alpha 0.2, the residual of the old level is
	// (0.8)^50 ≈ 1e-5: effectively converged.
	if got := c.EWMA(); math.Abs(got-400_000) > 100 {
		t.Fatalf("EWMA = %v, want ~400000 after shift", got)
	}
	// Ratio of the two classes tracks their EWMA means.
	e.Record("read", 2*ms, 100_000)
	if got := e.Ratio("write", "read"); math.Abs(got-4.0) > 0.01 {
		t.Fatalf("Ratio = %v, want ~4", got)
	}
}

func TestEstimatorQuantileAccuracyVsExact(t *testing.T) {
	e := NewEstimator(10*ms, 4, 0.2)
	c := e.Class("read")
	// A deterministic spread of samples, all inside one sub-window.
	var samples []int64
	v := int64(1)
	for i := 0; i < 2000; i++ {
		v = (v*1103515245 + 12345) % 1_000_000
		if v < 0 {
			v = -v
		}
		samples = append(samples, v)
		c.Record(int64(i)*1000, v)
	}
	sorted := append([]int64(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, q := range []float64{0.5, 0.9, 0.99} {
		idx := int(math.Ceil(q*float64(len(sorted)))) - 1
		exact := sorted[idx]
		got := c.Quantile(q)
		// Histogram buckets bound relative error to ~1/subBuckets ≈ 3%;
		// allow 5% slack.
		if math.Abs(float64(got-exact)) > 0.05*float64(exact) {
			t.Fatalf("Quantile(%v) = %d, exact %d (>5%% off)", q, got, exact)
		}
	}
}

func TestEstimatorUnseededQueries(t *testing.T) {
	e := NewEstimator(0, 0, 0) // defaults
	if e.EWMA("nope") != 0 || e.Quantile("nope", 0.99) != 0 || e.Ratio("a", "b") != 0 {
		t.Fatal("unseeded estimator should report zeros")
	}
	e.Record("a", 0, 100)
	if e.Ratio("a", "b") != 0 {
		t.Fatal("Ratio with one unseeded side should be 0")
	}
	if got := e.Window(); got != 8_000_000 {
		t.Fatalf("default Window = %d, want 8ms", got)
	}
	if got := e.Classes(); len(got) != 1 || got[0] != "a" {
		t.Fatalf("Classes = %v", got)
	}
}
