package metrics

import (
	"math"
	"testing"
)

func TestHistogramVariance(t *testing.T) {
	var h Histogram
	if h.Variance() != 0 {
		t.Fatal("empty histogram has variance")
	}
	h.Record(1000)
	if h.Variance() != 0 {
		t.Fatal("single sample has variance")
	}
	h.Record(2000)
	h.Record(3000)
	// Population variance of {1000, 2000, 3000} = 2e6/3.
	want := 2e6 / 3
	if got := h.Variance(); math.Abs(got-want) > 1e-6*want {
		t.Fatalf("variance = %v, want %v", got, want)
	}
	// Near-constant samples: cancellation must clamp at zero, never
	// go negative (stddev would be NaN).
	var c Histogram
	for i := 0; i < 1000; i++ {
		c.Record(1_000_000_007)
	}
	if got := c.Variance(); got < 0 {
		t.Fatalf("variance = %v, want >= 0", got)
	}
}

func TestHistogramClone(t *testing.T) {
	var nilH *Histogram
	if c := nilH.Clone(); c == nil || c.Count() != 0 {
		t.Fatal("nil clone not empty")
	}
	var h Histogram
	h.Record(100)
	h.Record(900)
	c := h.Clone()
	if c.Count() != 2 || c.Sum() != 1000 || c.Min() != 100 || c.Max() != 900 {
		t.Fatalf("clone stats = n%d sum%d min%d max%d", c.Count(), c.Sum(), c.Min(), c.Max())
	}
	// Independence both ways.
	h.Record(5000)
	c.Record(7)
	if c.Count() != 3 || c.Max() != 900 {
		t.Fatalf("clone saw the original's writes: n=%d max=%d", c.Count(), c.Max())
	}
	if h.Count() != 3 || h.Min() != 100 {
		t.Fatalf("original saw the clone's writes: n=%d min=%d", h.Count(), h.Min())
	}
}

func TestHistogramDeltaFrom(t *testing.T) {
	var h Histogram
	h.Record(1000)
	h.Record(2000)
	prev := h.Clone()

	// Empty interval: no new samples since prev.
	if d := h.DeltaFrom(prev); d.Count() != 0 {
		t.Fatalf("idle delta n = %d, want 0", d.Count())
	}

	h.Record(4000)
	h.Record(8000)
	d := h.DeltaFrom(prev)
	if d.Count() != 2 || d.Sum() != 12000 {
		t.Fatalf("delta n=%d sum=%d, want 2/12000", d.Count(), d.Sum())
	}
	// Interval mean and variance come from exact subtraction.
	if got := d.Mean(); got != 6000 {
		t.Fatalf("delta mean = %v, want 6000", got)
	}
	wantVar := 4e6 // population variance of {4000, 8000}
	if got := d.Variance(); math.Abs(got-wantVar) > 1 {
		t.Fatalf("delta variance = %v, want %v", got, wantVar)
	}
	// Interval min/max: bucket-resolution approximations of 4000/8000 —
	// never the cumulative 1000.
	if d.Min() < 3000 || d.Min() > 4000 {
		t.Fatalf("delta min = %d, want ~4000", d.Min())
	}
	if d.Max() < 7000 || d.Max() > 8000 {
		t.Fatalf("delta max = %d, want ~8000", d.Max())
	}
	// The cumulative max moved during the interval, so it is exact.
	if d.Max() != 8000 {
		t.Fatalf("delta max = %d; cumulative max moved, so want exactly 8000", d.Max())
	}

	// A new cumulative minimum inside the interval is exact too.
	prev2 := h.Clone()
	h.Record(10)
	d2 := h.DeltaFrom(prev2)
	if d2.Count() != 1 || d2.Min() != 10 || d2.Max() != 10 {
		t.Fatalf("delta2 n=%d min=%d max=%d, want 1/10/10", d2.Count(), d2.Min(), d2.Max())
	}

	// Nil and empty prev mean "everything is new".
	if d := h.DeltaFrom(nil); d.Count() != h.Count() {
		t.Fatalf("delta from nil n = %d, want %d", d.Count(), h.Count())
	}
	if d := h.DeltaFrom(&Histogram{}); d.Count() != h.Count() {
		t.Fatalf("delta from empty n = %d, want %d", d.Count(), h.Count())
	}
	var nilH *Histogram
	if d := nilH.DeltaFrom(prev); d.Count() != 0 {
		t.Fatal("nil delta not empty")
	}

	// A reset-under-us cumulative (n regressed) yields empty, not
	// negative counts.
	var fresh Histogram
	fresh.Record(500)
	if d := fresh.DeltaFrom(prev); d.Count() != 0 {
		t.Fatalf("regressed delta n = %d, want 0", d.Count())
	}
}
