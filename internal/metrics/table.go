package metrics

import (
	"fmt"
	"strings"
)

// Table accumulates rows and renders them with aligned columns, in the
// style of the result tables the benchmark harness prints.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// Rows reports the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Cell returns the formatted cell at (row, col), or "" if out of range.
func (t *Table) Cell(row, col int) string {
	if row < 0 || row >= len(t.rows) || col < 0 || col >= len(t.rows[row]) {
		return ""
	}
	return t.rows[row][col]
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Counter tracks a monotonically increasing count with a byte total,
// e.g. completed I/Os and bytes moved.
type Counter struct {
	Ops   int64
	Bytes int64
}

// Add records one operation of n bytes.
func (c *Counter) Add(n int) {
	c.Ops++
	c.Bytes += int64(n)
}

// MBps reports throughput in megabytes (1e6) per second over a window of
// elapsed nanoseconds.
func (c *Counter) MBps(elapsedNs int64) float64 {
	if elapsedNs <= 0 {
		return 0
	}
	return float64(c.Bytes) / 1e6 / (float64(elapsedNs) / 1e9)
}

// IOPS reports operations per second over a window of elapsed
// nanoseconds.
func (c *Counter) IOPS(elapsedNs int64) float64 {
	if elapsedNs <= 0 {
		return 0
	}
	return float64(c.Ops) / (float64(elapsedNs) / 1e9)
}
