package metrics

// RepairLedger is the failure-domain accounting of package place: what
// device deaths cost and what the repair machinery did about them. Like
// PlaceLedger it is plain counters with Add, owned by the Placement (one
// per fabric — device death is a fabric-wide event, not a per-group one).
type RepairLedger struct {
	// DeviceDeaths counts devices killed under the placement;
	// ReplicasLost counts the replicas those deaths dropped out of their
	// groups (a device usually carries one replica of many groups).
	DeviceDeaths int64
	ReplicasLost int64
	// DegradedWrites and DegradedReads count requests served while their
	// group ran below full replication — the exposure window repairs
	// exist to close.
	DegradedWrites int64
	DegradedReads  int64
	// Unavailable counts requests refused because a group had no live
	// replica at all (the survivor died before or during rebuild) — the
	// loud failure mode: clients see errors, never silently lost acks.
	Unavailable int64

	// Repairs counts rebuilds completed (a lost replica re-created on a
	// spare from the survivor's snapshot plus delta catch-up);
	// RepairsAborted counts rebuilds abandoned mid-copy (survivor died,
	// destination drifted, fabric stopped); RepairStalls counts poll
	// rounds where an under-replicated group found no destination with a
	// free slot (spares exhausted — retried every round).
	Repairs        int64
	RepairsAborted int64
	RepairStalls   int64
	// RepairNs is total virtual time groups spent under-replicated
	// before a completed repair re-replicated them (summed per repair:
	// replica loss to cutover).
	RepairNs int64
	// CrashResyncs counts replicas re-synchronized from their survivor
	// after a single-device crash dropped that device's volatile acks.
	CrashResyncs int64
}

// Add folds other into l, field by field.
func (l *RepairLedger) Add(other RepairLedger) {
	l.DeviceDeaths += other.DeviceDeaths
	l.ReplicasLost += other.ReplicasLost
	l.DegradedWrites += other.DegradedWrites
	l.DegradedReads += other.DegradedReads
	l.Unavailable += other.Unavailable
	l.Repairs += other.Repairs
	l.RepairsAborted += other.RepairsAborted
	l.RepairStalls += other.RepairStalls
	l.RepairNs += other.RepairNs
	l.CrashResyncs += other.CrashResyncs
}

// Table renders the ledger for experiment output.
func (l *RepairLedger) Table(title string) *Table {
	t := NewTable(title, "metric", "value")
	t.AddRow("device deaths", l.DeviceDeaths)
	t.AddRow("replicas lost", l.ReplicasLost)
	t.AddRow("degraded writes", l.DegradedWrites)
	t.AddRow("degraded reads", l.DegradedReads)
	t.AddRow("unavailable requests", l.Unavailable)
	t.AddRow("repairs completed", l.Repairs)
	t.AddRow("repairs aborted", l.RepairsAborted)
	t.AddRow("repair stalls (no slot)", l.RepairStalls)
	t.AddRow("under-replicated time (µs)", l.RepairNs/1e3)
	t.AddRow("crash resyncs", l.CrashResyncs)
	return t
}
