// Package metrics provides the measurement toolkit for experiments:
// log-scale latency histograms with percentile queries, throughput
// counters, aligned text tables, and ASCII Gantt charts for rendering
// resource-occupancy figures.
package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
)

// subBuckets controls histogram resolution: each power-of-two range is
// split into this many linear sub-buckets, bounding relative error to
// about 1/subBuckets.
const subBuckets = 32

// Histogram records int64 samples (typically latencies in nanoseconds)
// in logarithmic buckets. The zero value is ready to use.
type Histogram struct {
	counts map[int]int64
	keys   []int // occupied buckets, always sorted ascending
	n      int64
	sum    int64
	sumsq  float64 // sum of squared samples, for Variance
	min    int64
	max    int64
}

const log2SubBuckets = 5 // log2(subBuckets)

// bucketOf maps a value to its bucket index. Values below subBuckets map
// to themselves; a value with highest set bit exp lands in bucket
// (exp-log2SubBuckets+2)*subBuckets + linear-offset-within-its-octave.
func bucketOf(v int64) int {
	if v < subBuckets {
		return int(v)
	}
	exp := 63 - bits.LeadingZeros64(uint64(v))
	offset := int((v >> uint(exp-log2SubBuckets)) - subBuckets)
	return (exp-log2SubBuckets+2)*subBuckets + offset
}

// bucketLow returns the smallest value mapping to bucket b, the inverse
// of bucketOf up to bucket granularity.
func bucketLow(b int) int64 {
	if b < 2*subBuckets {
		return int64(b)
	}
	exp := b/subBuckets + log2SubBuckets - 2
	within := b % subBuckets
	return (int64(subBuckets) + int64(within)) << uint(exp-log2SubBuckets)
}

// addBucket credits c samples to bucket b, keeping the sorted key list
// current. New buckets are rare after warm-up (the bucket universe is
// small and log-spaced), so the occasional sorted insert amortizes to
// nothing — and Quantile never has to sort.
func (h *Histogram) addBucket(b int, c int64) {
	if _, ok := h.counts[b]; !ok {
		i := sort.SearchInts(h.keys, b)
		h.keys = append(h.keys, 0)
		copy(h.keys[i+1:], h.keys[i:])
		h.keys[i] = b
	}
	h.counts[b] += c
}

// Record adds one sample. Negative samples are clamped to zero.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	if h.counts == nil {
		h.counts = make(map[int]int64)
		h.min = math.MaxInt64
	}
	h.addBucket(bucketOf(v), 1)
	h.n++
	h.sum += v
	h.sumsq += float64(v) * float64(v)
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count reports the number of recorded samples.
func (h *Histogram) Count() int64 { return h.n }

// Sum reports the sum of all samples.
func (h *Histogram) Sum() int64 { return h.sum }

// Mean reports the arithmetic mean, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Variance reports the population variance of the samples, or 0 with
// fewer than two. Units are the square of the sample unit.
func (h *Histogram) Variance() float64 {
	if h.n < 2 {
		return 0
	}
	mean := float64(h.sum) / float64(h.n)
	v := h.sumsq/float64(h.n) - mean*mean
	if v < 0 { // floating-point cancellation on near-constant samples
		v = 0
	}
	return v
}

// Min reports the smallest sample, or 0 with no samples.
func (h *Histogram) Min() int64 {
	if h.n == 0 {
		return 0
	}
	return h.min
}

// Max reports the largest sample, or 0 with no samples.
func (h *Histogram) Max() int64 { return h.max }

// Quantile reports an approximation of the q-quantile (q in [0,1]),
// accurate to bucket resolution (~3%). Quantile(0.5) is the median.
func (h *Histogram) Quantile(q float64) int64 {
	if h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(math.Ceil(q * float64(h.n)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for _, k := range h.keys {
		cum += h.counts[k]
		if cum >= target {
			lo := bucketLow(k)
			if lo < h.min {
				lo = h.min
			}
			if lo > h.max {
				lo = h.max
			}
			return lo
		}
	}
	return h.max
}

// P50, P95, P99 are convenience quantile accessors.
func (h *Histogram) P50() int64 { return h.Quantile(0.50) }

// P95 reports the 95th percentile.
func (h *Histogram) P95() int64 { return h.Quantile(0.95) }

// P99 reports the 99th percentile.
func (h *Histogram) P99() int64 { return h.Quantile(0.99) }

// Merge adds all samples of other into h.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.n == 0 {
		return
	}
	if h.counts == nil {
		h.counts = make(map[int]int64)
		h.min = math.MaxInt64
	}
	for _, k := range other.keys {
		h.addBucket(k, other.counts[k])
	}
	h.n += other.n
	h.sum += other.sum
	h.sumsq += other.sumsq
	if other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
}

// Clone returns an independent copy of the histogram. Cloning nil or
// the zero value yields an empty histogram.
func (h *Histogram) Clone() *Histogram {
	c := &Histogram{}
	if h == nil || h.n == 0 {
		return c
	}
	c.counts = make(map[int]int64, len(h.counts))
	for k, v := range h.counts {
		c.counts[k] = v
	}
	c.keys = append([]int(nil), h.keys...)
	c.n, c.sum, c.sumsq, c.min, c.max = h.n, h.sum, h.sumsq, h.min, h.max
	return c
}

// DeltaFrom returns the histogram of samples recorded since prev, where
// prev is an earlier Clone of the same cumulative histogram. Bucket
// counts, n, sum, and sum-of-squares subtract exactly; min/max cannot
// be recovered per-interval from cumulative state, so they are
// approximated by the interval's occupied bucket bounds — unless the
// cumulative min/max themselves moved during the interval, in which
// case the new extreme is exact. A nil or empty prev returns a clone.
func (h *Histogram) DeltaFrom(prev *Histogram) *Histogram {
	if h == nil {
		return &Histogram{}
	}
	if prev == nil || prev.n == 0 {
		return h.Clone()
	}
	d := &Histogram{counts: make(map[int]int64), min: math.MaxInt64}
	for _, k := range h.keys {
		if c := h.counts[k] - prev.counts[k]; c > 0 {
			d.addBucket(k, c)
		}
	}
	d.n = h.n - prev.n
	if d.n <= 0 {
		return &Histogram{}
	}
	d.sum = h.sum - prev.sum
	d.sumsq = h.sumsq - prev.sumsq
	if d.sumsq < 0 {
		d.sumsq = 0
	}
	if len(d.keys) > 0 {
		d.min = bucketLow(d.keys[0])
		d.max = bucketLow(d.keys[len(d.keys)-1])
	}
	if h.min < prev.min && h.min < d.min {
		d.min = h.min
	}
	if h.max > prev.max {
		d.max = h.max
	}
	if d.min > d.max {
		d.min = d.max
	}
	return d
}

// Reset discards all samples.
func (h *Histogram) Reset() {
	h.counts = nil
	h.keys = nil
	h.n, h.sum, h.min, h.max = 0, 0, 0, 0
	h.sumsq = 0
}

// Summary formats count/mean/p50/p99/max in microseconds.
func (h *Histogram) Summary() string {
	return fmt.Sprintf("n=%d mean=%.1fµs p50=%.1fµs p99=%.1fµs max=%.1fµs",
		h.n, h.Mean()/1e3, float64(h.P50())/1e3, float64(h.P99())/1e3, float64(h.max)/1e3)
}

// Bar renders a crude ASCII distribution sketch of the histogram over
// its occupied buckets, for debugging and example programs.
func (h *Histogram) Bar(width int) string {
	if h.n == 0 || width <= 0 {
		return "(empty)"
	}
	var maxC int64
	for _, c := range h.counts {
		if c > maxC {
			maxC = c
		}
	}
	var b strings.Builder
	for _, k := range h.keys {
		c := h.counts[k]
		bar := int(float64(width) * float64(c) / float64(maxC))
		if bar == 0 {
			bar = 1
		}
		fmt.Fprintf(&b, "%10.1fµs |%s %d\n", float64(bucketLow(k))/1e3, strings.Repeat("#", bar), c)
	}
	return b.String()
}
