package metrics

// GCCoord is the host↔device GC-coordination ledger: one side records
// what the host's scheduler asked for (defer background garbage
// collection, resume it), the other what the device granted and what
// its free-pool floor forced. Package ftl fills the device-side fields,
// package sched the host-side ones, and package serve merges both
// across the devices of a fabric. Together the counters prove the
// mechanism engaged — and that deferral never starved the free pool.
type GCCoord struct {
	// HostRequests counts defer requests issued by the host scheduler
	// (fresh leases and renewals alike).
	HostRequests int64
	// HostResumes counts explicit resume calls issued by the host when
	// the latency burst that motivated a deferral drained.
	HostResumes int64
	// HostDeclined counts lease decisions the host skipped without
	// asking because the device already reported itself urgent — the
	// adaptive lease policy saving round-trips the device would refuse.
	HostDeclined int64

	// Defers counts defer requests the device accepted as a fresh
	// deferral session; Renewals counts accepted deadline extensions of
	// an already-active session.
	Defers   int64
	Renewals int64
	// Refused counts defer requests the device turned down because its
	// free pool was already at the floor (urgent state) — the bound
	// "deferral is limited by the device's headroom" in action.
	Refused int64
	// Expires counts sessions that lapsed at their deadline without a
	// host resume.
	Expires int64
	// FloorHits counts chip GC runs forced during an active session
	// because that chip reached the defer floor (or had writes parked
	// waiting for space); ForcedResumes counts sessions that hit the
	// floor at least once. FloorHits > ForcedResumes means several chips
	// (or several episodes) forced work within one session.
	FloorHits     int64
	ForcedResumes int64

	// MinHeadroomPages is the smallest free-pool headroom (in pages,
	// whole free blocks plus the GC frontier remainder) observed on any
	// chip while a deferral was active; -1 means no deferral was ever
	// active. The floor guarantee holds iff this never drops below the
	// device's GC reserve.
	MinHeadroomPages int
}

// NewGCCoord returns an empty ledger with MinHeadroomPages marked
// "never deferred".
func NewGCCoord() GCCoord { return GCCoord{MinHeadroomPages: -1} }

// Engaged reports whether any deferral session was ever granted.
func (g *GCCoord) Engaged() bool { return g.Defers > 0 }

// Add folds other into g (counters sum; MinHeadroomPages takes the
// minimum over sides that ever deferred).
func (g *GCCoord) Add(other GCCoord) {
	g.HostRequests += other.HostRequests
	g.HostResumes += other.HostResumes
	g.HostDeclined += other.HostDeclined
	g.Defers += other.Defers
	g.Renewals += other.Renewals
	g.Refused += other.Refused
	g.Expires += other.Expires
	g.FloorHits += other.FloorHits
	g.ForcedResumes += other.ForcedResumes
	if other.MinHeadroomPages >= 0 &&
		(g.MinHeadroomPages < 0 || other.MinHeadroomPages < g.MinHeadroomPages) {
		g.MinHeadroomPages = other.MinHeadroomPages
	}
}

// Table renders the ledger as a one-row table, for experiment output.
func (g *GCCoord) Table(title string) *Table {
	t := NewTable(title, "host req", "host resume", "host declined", "defers", "renewals",
		"refused", "expires", "floor hits", "forced resumes", "min headroom (pages)")
	t.AddRow(g.HostRequests, g.HostResumes, g.HostDeclined, g.Defers, g.Renewals, g.Refused,
		g.Expires, g.FloorHits, g.ForcedResumes, g.MinHeadroomPages)
	return t
}
