package metrics

// PlaceLedger is the replica-placement and migration accounting of
// package place: how reads were steered between replicas, how quorum
// writes fared, and what every live migration moved. Like GCCoord it is
// plain counters with Add, so per-group ledgers merge into one
// fabric-wide view for experiment tables.
type PlaceLedger struct {
	// SteeredReads counts reads routed by live device signals (GC
	// activity, urgency, observed service time) to a replica that the
	// round-robin cursor would not have picked; TieReads counts reads
	// where every replica scored equal and round-robin decided.
	SteeredReads int64
	TieReads     int64
	// AvoidedGC counts the subset of SteeredReads that moved away from
	// a device with garbage collection in flight — the paper's tail
	// mechanism, dodged per request.
	AvoidedGC int64
	// QuorumWrites counts writes committed on every replica before the
	// ack; WriteRejects counts writes refused at group admission because
	// some replica would not admit them (refused whole: no replica
	// applies a write the group cannot ack).
	QuorumWrites int64
	WriteRejects int64
	// HeldWrites counts writes parked during a migration cutover and
	// released to the new replica set; HoldNs is the total virtual time
	// writes spent parked (the cutover cost clients actually paid).
	HeldWrites int64
	HoldNs     int64

	// Migrations counts completed live migrations; MigrationsAborted
	// counts migrations abandoned (fabric stopped mid-flight).
	Migrations        int64
	MigrationsAborted int64
	// DriftTrips and MissTrips count what pulled the trigger: a device
	// service-time drift alarm, or a sustained interval miss rate.
	DriftTrips int64
	MissTrips  int64
	// CopiedKeys counts keys streamed in bulk-copy phases, DeltaKeys the
	// keys re-copied by delta catch-up (written while the copy ran), and
	// CatchupRounds the catch-up passes taken before cutover.
	CopiedKeys    int64
	DeltaKeys     int64
	CatchupRounds int64
}

// Add folds other into l, field by field.
func (l *PlaceLedger) Add(other PlaceLedger) {
	l.SteeredReads += other.SteeredReads
	l.TieReads += other.TieReads
	l.AvoidedGC += other.AvoidedGC
	l.QuorumWrites += other.QuorumWrites
	l.WriteRejects += other.WriteRejects
	l.HeldWrites += other.HeldWrites
	l.HoldNs += other.HoldNs
	l.Migrations += other.Migrations
	l.MigrationsAborted += other.MigrationsAborted
	l.DriftTrips += other.DriftTrips
	l.MissTrips += other.MissTrips
	l.CopiedKeys += other.CopiedKeys
	l.DeltaKeys += other.DeltaKeys
	l.CatchupRounds += other.CatchupRounds
}

// Table renders the ledger for experiment output.
func (l *PlaceLedger) Table(title string) *Table {
	t := NewTable(title, "metric", "value")
	t.AddRow("steered reads", l.SteeredReads)
	t.AddRow("tie (round-robin) reads", l.TieReads)
	t.AddRow("reads steered off GC", l.AvoidedGC)
	t.AddRow("quorum writes", l.QuorumWrites)
	t.AddRow("write rejects", l.WriteRejects)
	t.AddRow("writes held at cutover", l.HeldWrites)
	t.AddRow("cutover hold (µs)", l.HoldNs/1e3)
	t.AddRow("migrations", l.Migrations)
	t.AddRow("migrations aborted", l.MigrationsAborted)
	t.AddRow("drift trips", l.DriftTrips)
	t.AddRow("miss trips", l.MissTrips)
	t.AddRow("bulk keys copied", l.CopiedKeys)
	t.AddRow("delta keys copied", l.DeltaKeys)
	t.AddRow("catch-up rounds", l.CatchupRounds)
	return t
}
