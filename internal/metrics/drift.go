package metrics

// DriftAlarm watches one class's windowed mean service time for a
// sustained trend away from a baseline captured when the device was
// last known-good — the "device aging" signal the ROADMAP queued after
// E18. The estimator's rolling window already forgets the device's
// former self; the alarm is the piece that *remembers* it: the first
// warm window arms the baseline, and every later check compares the
// current windowed mean against it. A ratio at or above the threshold
// trips the alarm (latched, callback fired once), which is what a
// placement layer consumes to trigger live shard migration before the
// SLO shows the damage.
//
// The alarm deliberately reads the windowed mean, not the EWMA: the
// EWMA carries decayed memory of the pre-drift device, so it understates
// a step change exactly when the alarm should be loudest.
type DriftAlarm struct {
	cls        *ClassEstimate
	threshold  float64
	minSamples int64

	armed    bool
	baseline float64
	last     float64 // last observed trend ratio
	tripped  bool
	onTrip   func(ratio float64)
}

// DriftAlarm builds an alarm over the class: it arms its baseline from
// the first window holding at least minSamples samples, and trips when
// a later window's mean reaches threshold × baseline. threshold <= 1
// means 1.5; minSamples < 1 means 16.
func (c *ClassEstimate) DriftAlarm(threshold float64, minSamples int64) *DriftAlarm {
	if threshold <= 1 {
		threshold = 1.5
	}
	if minSamples < 1 {
		minSamples = 16
	}
	return &DriftAlarm{cls: c, threshold: threshold, minSamples: minSamples}
}

// OnTrip registers a callback invoked once, at the Check that trips the
// alarm, with the observed trend ratio.
func (a *DriftAlarm) OnTrip(fn func(ratio float64)) { a.onTrip = fn }

// Check rolls the class window to now, arms the baseline if it is warm
// and not yet armed, and reports whether the alarm is tripped. Checks
// against a cold window (fewer than minSamples samples) neither arm nor
// trip: a quiet class must not alarm on a handful of stragglers.
func (a *DriftAlarm) Check(now int64) bool {
	if a.tripped {
		return true
	}
	a.cls.Observe(now)
	if a.cls.WindowCount() < a.minSamples {
		return false
	}
	mean := a.cls.Mean()
	if !a.armed {
		a.armed = true
		a.baseline = mean
		a.last = 1
		return false
	}
	if a.baseline <= 0 {
		return false
	}
	a.last = mean / a.baseline
	if a.last >= a.threshold {
		a.tripped = true
		if a.onTrip != nil {
			a.onTrip(a.last)
		}
	}
	return a.tripped
}

// Tripped reports whether the alarm has fired.
func (a *DriftAlarm) Tripped() bool { return a.tripped }

// Armed reports whether the baseline has been captured.
func (a *DriftAlarm) Armed() bool { return a.armed }

// Baseline reports the armed baseline mean in nanoseconds (0 before
// arming).
func (a *DriftAlarm) Baseline() float64 { return a.baseline }

// Ratio reports the last observed trend ratio (current window mean /
// baseline; 1 until a post-arm Check).
func (a *DriftAlarm) Ratio() float64 {
	if !a.armed {
		return 1
	}
	if a.last == 0 {
		return 1
	}
	return a.last
}

// Reset re-arms the alarm: the trip latch and baseline are cleared, so
// the next warm window becomes the new known-good (after a migration
// moved the load to a fresh device, say).
func (a *DriftAlarm) Reset() {
	a.tripped = false
	a.armed = false
	a.baseline = 0
	a.last = 0
}
