package metrics

import (
	"fmt"
	"strings"
)

// GanttLane is one resource row in a Gantt chart: a name plus its
// occupancy intervals in nanoseconds.
type GanttLane struct {
	Name      string
	Intervals []GanttSpan
}

// GanttSpan is one occupancy interval with a single-rune label class.
type GanttSpan struct {
	Start, End int64
	Label      string // first rune is drawn; full label appears in the legend
}

// Gantt renders resource occupancy over time as ASCII art — used to
// regenerate the paper's Figure 1 (channel-bound reads vs chip-bound
// writes).
type Gantt struct {
	lanes []GanttLane
	width int
}

// NewGantt returns a chart that renders across width character columns.
func NewGantt(width int) *Gantt {
	if width < 10 {
		width = 10
	}
	return &Gantt{width: width}
}

// AddLane appends a resource row.
func (g *Gantt) AddLane(name string, spans []GanttSpan) {
	g.lanes = append(g.lanes, GanttLane{Name: name, Intervals: spans})
}

// Lanes reports the number of rows added.
func (g *Gantt) Lanes() int { return len(g.lanes) }

// String renders the chart. Each lane is a row; time flows left to
// right; '·' marks idle time; span cells repeat the first rune of the
// span's label.
func (g *Gantt) String() string {
	var minT, maxT int64
	first := true
	for _, l := range g.lanes {
		for _, s := range l.Intervals {
			if first || s.Start < minT {
				minT = s.Start
			}
			if first || s.End > maxT {
				maxT = s.End
				first = false
			}
			if s.End > maxT {
				maxT = s.End
			}
		}
	}
	if first || maxT <= minT {
		return "(empty gantt)"
	}
	span := maxT - minT
	nameW := 0
	for _, l := range g.lanes {
		if len(l.Name) > nameW {
			nameW = len(l.Name)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-*s 0%s%s\n", nameW, "time", strings.Repeat(" ", g.width-len(fmtDur(span))-1), fmtDur(span))
	labels := map[string]bool{}
	for _, l := range g.lanes {
		row := make([]rune, g.width)
		for i := range row {
			row[i] = '·'
		}
		for _, s := range l.Intervals {
			c := '#'
			if s.Label != "" {
				c = []rune(s.Label)[0]
				labels[s.Label] = true
			}
			from := int(float64(s.Start-minT) / float64(span) * float64(g.width))
			to := int(float64(s.End-minT) / float64(span) * float64(g.width))
			if to <= from {
				to = from + 1
			}
			if to > g.width {
				to = g.width
			}
			for i := from; i < to; i++ {
				row[i] = c
			}
		}
		fmt.Fprintf(&b, "%-*s |%s|\n", nameW, l.Name, string(row))
	}
	if len(labels) > 0 {
		keys := make([]string, 0, len(labels))
		for k := range labels {
			keys = append(keys, k)
		}
		sortStrings(keys)
		b.WriteString("legend:")
		for _, k := range keys {
			fmt.Fprintf(&b, " %c=%s", []rune(k)[0], k)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func fmtDur(ns int64) string {
	switch {
	case ns < 1e3:
		return fmt.Sprintf("%dns", ns)
	case ns < 1e6:
		return fmt.Sprintf("%.0fµs", float64(ns)/1e3)
	case ns < 1e9:
		return fmt.Sprintf("%.1fms", float64(ns)/1e6)
	default:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	}
}
