// Package bufpool provides a CLOCK page cache over a core.PageStore.
// The storage engine's B+tree pages are immutable (copy-on-write), so
// the cache holds clean pages only: eviction never writes back, and a
// cached page can never be stale — it can only be freed, which
// invalidates it explicitly.
package bufpool

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
)

// Pool is a CLOCK read cache.
type Pool struct {
	store  core.PageStore
	frames []frame
	table  map[int64]int
	hand   int

	// Hits and Misses count lookups; Evictions counts replaced frames.
	Hits, Misses, Evictions int64
}

type frame struct {
	pageID int64
	data   []byte
	ref    bool
	used   bool
}

// New builds a pool of n frames over store.
func New(store core.PageStore, n int) (*Pool, error) {
	if n <= 0 {
		return nil, fmt.Errorf("bufpool: %d frames", n)
	}
	return &Pool{
		store:  store,
		frames: make([]frame, n),
		table:  make(map[int64]int),
	}, nil
}

// Store returns the backing page store.
func (bp *Pool) Store() core.PageStore { return bp.store }

// Get returns page pageID's contents. The returned slice is the cached
// copy: callers must not modify it (pages are immutable by design).
func (bp *Pool) Get(p *sim.Proc, pageID int64) ([]byte, error) {
	if idx, ok := bp.table[pageID]; ok {
		bp.Hits++
		bp.frames[idx].ref = true
		return bp.frames[idx].data, nil
	}
	bp.Misses++
	data, err := bp.store.ReadPage(p, pageID)
	if err != nil {
		return nil, fmt.Errorf("bufpool: read page %d: %w", pageID, err)
	}
	if data == nil {
		data = make([]byte, bp.store.PageSize())
	}
	bp.insert(pageID, data)
	return data, nil
}

// Put caches a page the caller just wrote (write-through population, so
// a checkpoint's own pages are warm afterwards).
func (bp *Pool) Put(pageID int64, data []byte) {
	if idx, ok := bp.table[pageID]; ok {
		bp.frames[idx].data = data
		bp.frames[idx].ref = true
		return
	}
	bp.insert(pageID, data)
}

// insert places a page in a frame chosen by CLOCK.
func (bp *Pool) insert(pageID int64, data []byte) {
	for {
		f := &bp.frames[bp.hand]
		idx := bp.hand
		bp.hand = (bp.hand + 1) % len(bp.frames)
		if !f.used {
			*f = frame{pageID: pageID, data: data, ref: true, used: true}
			bp.table[pageID] = idx
			return
		}
		if f.ref {
			f.ref = false
			continue
		}
		bp.Evictions++
		delete(bp.table, f.pageID)
		*f = frame{pageID: pageID, data: data, ref: true, used: true}
		bp.table[pageID] = idx
		return
	}
}

// Invalidate drops a freed page from the cache.
func (bp *Pool) Invalidate(pageID int64) {
	if idx, ok := bp.table[pageID]; ok {
		delete(bp.table, pageID)
		bp.frames[idx] = frame{}
	}
}

// InvalidateAll empties the cache (crash simulation).
func (bp *Pool) InvalidateAll() {
	bp.table = make(map[int64]int)
	for i := range bp.frames {
		bp.frames[i] = frame{}
	}
}

// Resident reports the number of cached pages.
func (bp *Pool) Resident() int { return len(bp.table) }

// HitRate reports hits/(hits+misses), or 0 with no lookups.
func (bp *Pool) HitRate() float64 {
	total := bp.Hits + bp.Misses
	if total == 0 {
		return 0
	}
	return float64(bp.Hits) / float64(total)
}
