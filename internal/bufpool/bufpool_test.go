package bufpool

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/ssd"
)

func newPool(t *testing.T, frames int) (*sim.Engine, *Pool, core.PageStore) {
	t.Helper()
	eng := sim.NewEngine()
	dev, err := ssd.Build(eng, ssd.PCM2012, ssd.Options{Channels: 2})
	if err != nil {
		t.Fatal(err)
	}
	stackPages := newDirectPages(t, eng, dev)
	bp, err := New(stackPages, frames)
	if err != nil {
		t.Fatal(err)
	}
	return eng, bp, stackPages
}

func newDirectPages(t *testing.T, eng *sim.Engine, dev ssd.Dev) core.PageStore {
	t.Helper()
	st, err := core.NewConservative(eng, dev, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	return st.Pages
}

func TestPoolMissThenHit(t *testing.T) {
	eng, bp, store := newPool(t, 4)
	eng.Go(func(p *sim.Proc) {
		data := make([]byte, store.PageSize())
		data[0] = 0x55
		if err := store.WritePage(p, 3, data); err != nil {
			t.Errorf("seed write: %v", err)
		}
		got, err := bp.Get(p, 3)
		if err != nil || got[0] != 0x55 {
			t.Errorf("first get: %v %v", got, err)
		}
		got, err = bp.Get(p, 3)
		if err != nil || got[0] != 0x55 {
			t.Errorf("second get: %v %v", got, err)
		}
	})
	eng.Run()
	if bp.Misses != 1 || bp.Hits != 1 {
		t.Fatalf("hits=%d misses=%d", bp.Hits, bp.Misses)
	}
	if bp.HitRate() != 0.5 {
		t.Fatalf("hit rate = %v", bp.HitRate())
	}
}

func TestPoolEvictsWithClock(t *testing.T) {
	eng, bp, _ := newPool(t, 2)
	eng.Go(func(p *sim.Proc) {
		for id := int64(0); id < 5; id++ {
			if _, err := bp.Get(p, id); err != nil {
				t.Errorf("get %d: %v", id, err)
			}
		}
	})
	eng.Run()
	if bp.Evictions == 0 {
		t.Fatal("no evictions with 5 pages in 2 frames")
	}
	if bp.Resident() > 2 {
		t.Fatalf("resident = %d > frames", bp.Resident())
	}
}

func TestPoolPutPopulates(t *testing.T) {
	eng, bp, _ := newPool(t, 4)
	data := make([]byte, 4096)
	data[0] = 0x77
	bp.Put(9, data)
	eng.Go(func(p *sim.Proc) {
		got, err := bp.Get(p, 9)
		if err != nil || got[0] != 0x77 {
			t.Errorf("get after put: %v %v", got, err)
		}
	})
	eng.Run()
	if bp.Misses != 0 {
		t.Fatal("Put did not avoid the miss")
	}
	// Put of an existing page replaces contents.
	data2 := make([]byte, 4096)
	data2[0] = 0x88
	bp.Put(9, data2)
	eng.Go(func(p *sim.Proc) {
		got, _ := bp.Get(p, 9)
		if got[0] != 0x88 {
			t.Error("Put did not replace")
		}
	})
	eng.Run()
}

func TestPoolInvalidate(t *testing.T) {
	eng, bp, _ := newPool(t, 4)
	bp.Put(1, make([]byte, 4096))
	bp.Invalidate(1)
	if bp.Resident() != 0 {
		t.Fatal("Invalidate left the page resident")
	}
	bp.Invalidate(1) // double-invalidate is a no-op
	bp.Put(1, make([]byte, 4096))
	bp.Put(2, make([]byte, 4096))
	bp.InvalidateAll()
	if bp.Resident() != 0 {
		t.Fatal("InvalidateAll left pages")
	}
	eng.Run()
}

func TestPoolRejectsZeroFrames(t *testing.T) {
	if _, err := New(nil, 0); err == nil {
		t.Fatal("zero frames accepted")
	}
}

func TestPoolHitRateEmpty(t *testing.T) {
	_, bp, _ := newPool(t, 2)
	if bp.HitRate() != 0 {
		t.Fatal("empty pool hit rate should be 0")
	}
}
