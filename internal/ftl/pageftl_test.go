package ftl

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/bus"
	"repro/internal/ecc"
	"repro/internal/nand"
	"repro/internal/sim"
)

// tinySpec is a minimal chip for FTL tests: 256 B pages, 4 pages/block,
// 8 blocks/plane, 1 plane, 1 LUN -> 8 blocks, 32 pages per chip.
func tinySpec() nand.Spec {
	return nand.Spec{
		Name: "tiny",
		Geometry: nand.Geometry{
			PageSize: 256, OOBSize: 16, PagesPerBlock: 4,
			BlocksPerPlane: 8, PlanesPerLUN: 1, LUNsPerChip: 1,
		},
		Timing: nand.Timing{
			ReadPage:    50 * sim.Microsecond,
			ProgramPage: 600 * sim.Microsecond,
			EraseBlock:  3 * sim.Millisecond,
		},
		Reliability: nand.Reliability{RatedCycles: 1_000_000},
	}
}

func tinyArray(t *testing.T, channels, chipsPerChannel int) (*sim.Engine, *Array) {
	t.Helper()
	eng := sim.NewEngine()
	arr, err := NewArray(eng, ArrayConfig{
		Channels:        channels,
		ChipsPerChannel: chipsPerChannel,
		Chip:            tinySpec(),
		Channel:         bus.Config{MBPerSec: 200, CmdOverhead: sim.Microsecond},
	}, 0)
	if err != nil {
		t.Fatalf("NewArray: %v", err)
	}
	return eng, arr
}

// writeThroughConfig disables buffering so every host write hits flash.
func writeThroughConfig() Config {
	return Config{
		OverProvision: 0.25,
		GCLowWater:    2, GCHighWater: 3, GCReserve: 1,
		GCPolicy:  GCGreedy,
		Placement: PlaceDynamic,
		ECC:       ecc.BCH8Per512,
		Seed:      1,
	}
}

func newTinyFTL(t *testing.T, cfg Config) (*sim.Engine, *PageFTL) {
	t.Helper()
	eng, arr := tinyArray(t, 2, 2)
	f, err := NewPageFTL(arr, cfg)
	if err != nil {
		t.Fatalf("NewPageFTL: %v", err)
	}
	return eng, f
}

func pageData(ps int, fill byte) []byte {
	d := make([]byte, ps)
	for i := range d {
		d[i] = fill
	}
	return d
}

func mustWrite(t *testing.T, eng *sim.Engine, f *PageFTL, lpn int64, fill byte) {
	t.Helper()
	var gotErr error
	done := false
	f.WriteLPN(lpn, pageData(f.PageSize(), fill), func(err error) {
		gotErr, done = err, true
	})
	eng.Run()
	if !done {
		t.Fatalf("write lpn %d never completed", lpn)
	}
	if gotErr != nil {
		t.Fatalf("write lpn %d: %v", lpn, gotErr)
	}
}

func mustRead(t *testing.T, eng *sim.Engine, f *PageFTL, lpn int64) []byte {
	t.Helper()
	var data []byte
	var gotErr error
	done := false
	f.ReadLPN(lpn, func(d []byte, err error) { data, gotErr, done = d, err, true })
	eng.Run()
	if !done {
		t.Fatalf("read lpn %d never completed", lpn)
	}
	if gotErr != nil {
		t.Fatalf("read lpn %d: %v", lpn, gotErr)
	}
	return data
}

func TestPageFTLRoundTrip(t *testing.T) {
	eng, f := newTinyFTL(t, writeThroughConfig())
	mustWrite(t, eng, f, 5, 0xAA)
	got := mustRead(t, eng, f, 5)
	if !bytes.Equal(got, pageData(256, 0xAA)) {
		t.Fatal("round trip failed")
	}
}

func TestPageFTLUnwrittenReadsNil(t *testing.T) {
	eng, f := newTinyFTL(t, writeThroughConfig())
	if got := mustRead(t, eng, f, 7); got != nil {
		t.Fatalf("unwritten read returned %v", got)
	}
}

func TestPageFTLOverwrite(t *testing.T) {
	eng, f := newTinyFTL(t, writeThroughConfig())
	mustWrite(t, eng, f, 3, 0x01)
	mustWrite(t, eng, f, 3, 0x02)
	got := mustRead(t, eng, f, 3)
	if got[0] != 0x02 {
		t.Fatalf("overwrite lost: got %x", got[0])
	}
}

func TestPageFTLLPNRange(t *testing.T) {
	eng, f := newTinyFTL(t, writeThroughConfig())
	var gotErr error
	f.WriteLPN(f.Capacity(), nil, func(err error) { gotErr = err })
	eng.Run()
	if !errors.Is(gotErr, ErrLPNRange) {
		t.Fatalf("out-of-range write: %v", gotErr)
	}
	f.ReadLPN(-1, func(_ []byte, err error) { gotErr = err })
	eng.Run()
	if !errors.Is(gotErr, ErrLPNRange) {
		t.Fatalf("out-of-range read: %v", gotErr)
	}
	if err := f.Trim(f.Capacity() + 3); !errors.Is(err, ErrLPNRange) {
		t.Fatalf("out-of-range trim: %v", err)
	}
}

func TestPageFTLWrongPayloadSize(t *testing.T) {
	eng, f := newTinyFTL(t, writeThroughConfig())
	var gotErr error
	f.WriteLPN(0, make([]byte, 10), func(err error) { gotErr = err })
	eng.Run()
	if gotErr == nil {
		t.Fatal("short payload accepted")
	}
}

func TestPageFTLTrim(t *testing.T) {
	eng, f := newTinyFTL(t, writeThroughConfig())
	mustWrite(t, eng, f, 9, 0x77)
	if err := f.Trim(9); err != nil {
		t.Fatalf("trim: %v", err)
	}
	if got := mustRead(t, eng, f, 9); got != nil {
		t.Fatal("trimmed page still readable")
	}
	if f.Stats().HostTrims != 1 {
		t.Fatal("trim not counted")
	}
}

func TestPageFTLCapacityReflectsOverProvision(t *testing.T) {
	_, f := newTinyFTL(t, writeThroughConfig())
	// 4 chips x 32 pages = 128 total, 25% OP -> 96 exported.
	if f.Capacity() != 96 {
		t.Fatalf("Capacity = %d, want 96", f.Capacity())
	}
}

func TestPageFTLGCReclaimsAndPreservesData(t *testing.T) {
	eng, f := newTinyFTL(t, writeThroughConfig())
	// A hot working set at ~80% of exported capacity (device holds 128
	// physical pages): GC must run and must relocate live pages.
	const ws = 76
	const rounds = 15
	for round := 0; round < rounds; round++ {
		for l := int64(0); l < ws; l++ {
			mustWrite(t, eng, f, l, byte(round)^byte(l))
		}
	}
	for l := int64(0); l < ws; l++ {
		got := mustRead(t, eng, f, l)
		want := byte(rounds-1) ^ byte(l)
		if got[0] != want {
			t.Fatalf("lpn %d: got %x want %x after GC churn", l, got[0], want)
		}
	}
	if f.Stats().GCErases == 0 {
		t.Fatal("no GC happened despite 40x overwrites")
	}
	if f.Stats().GCMoves == 0 {
		t.Fatal("GC never moved a valid page")
	}
}

func TestPageFTLWriteAmplificationSequentialVsRandom(t *testing.T) {
	runWA := func(random bool) float64 {
		eng, arr := tinyArray(t, 2, 2)
		f, err := NewPageFTL(arr, writeThroughConfig())
		if err != nil {
			t.Fatal(err)
		}
		rng := sim.NewRNG(99)
		n := f.Capacity()
		for i := int64(0); i < 12*n; i++ {
			lpn := i % n
			if random {
				lpn = rng.Int63n(n)
			}
			f.WriteLPN(lpn, nil, func(error) {})
			eng.Run()
		}
		return WriteAmplification(f, arr)
	}
	seqWA := runWA(false)
	randWA := runWA(true)
	if seqWA < 1 || randWA < 1 {
		t.Fatalf("WA below 1: seq=%v rand=%v", seqWA, randWA)
	}
	if randWA <= seqWA {
		t.Fatalf("random WA (%v) should exceed sequential WA (%v)", randWA, seqWA)
	}
}

func TestPageFTLTrimReducesGCWork(t *testing.T) {
	run := func(trim bool) int64 {
		eng, arr := tinyArray(t, 2, 2)
		f, err := NewPageFTL(arr, writeThroughConfig())
		if err != nil {
			t.Fatal(err)
		}
		n := f.Capacity()
		for round := 0; round < 12; round++ {
			for l := int64(0); l < n*3/4; l++ {
				f.WriteLPN(l, nil, func(error) {})
				eng.Run()
				if trim && l%2 == 0 {
					// Host declares half its pages dead right after
					// writing (e.g. dropped temp tables).
					if err := f.Trim(l); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		return f.Stats().GCMoves
	}
	withTrim := run(true)
	withoutTrim := run(false)
	if withTrim >= withoutTrim {
		t.Fatalf("trim should reduce GC moves: with=%d without=%d", withTrim, withoutTrim)
	}
}

func TestPageFTLStaticPlacementPinsChips(t *testing.T) {
	eng, arr := tinyArray(t, 2, 2)
	cfg := writeThroughConfig()
	cfg.Placement = PlaceStatic
	f, err := NewPageFTL(arr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Write lpns 0,4,8,... -> all must land on chip 0.
	for i := int64(0); i < 8; i++ {
		f.WriteLPN(i*4, nil, func(error) {})
		eng.Run()
	}
	if arr.Chip(0).Stats().Programs == 0 {
		t.Fatal("chip 0 got no programs")
	}
	for c := 1; c < 4; c++ {
		if arr.Chip(c).Stats().Programs != 0 {
			t.Fatalf("static placement leaked to chip %d", c)
		}
	}
}

func TestPageFTLDynamicPlacementStripes(t *testing.T) {
	eng, arr := tinyArray(t, 2, 2)
	f, err := NewPageFTL(arr, writeThroughConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Issue 8 concurrent writes; dynamic placement must use all chips.
	for i := int64(0); i < 8; i++ {
		f.WriteLPN(i, nil, func(error) {})
	}
	eng.Run()
	for c := 0; c < 4; c++ {
		if arr.Chip(c).Stats().Programs == 0 {
			t.Fatalf("dynamic placement left chip %d idle", c)
		}
	}
}

func TestPageFTLBufferAcksFast(t *testing.T) {
	cfg := writeThroughConfig()
	cfg.BufferPages = 16
	cfg.BufferSafe = true
	eng, f := newTinyFTL(t, cfg)
	var ackAt sim.Time = -1
	f.WriteLPN(0, pageData(256, 1), func(err error) {
		if err != nil {
			t.Errorf("buffered write: %v", err)
		}
		ackAt = eng.Now()
	})
	eng.RunUntil(10 * sim.Microsecond)
	if ackAt != bufferAckLatency {
		t.Fatalf("buffered write acked at %v, want %v", ackAt, bufferAckLatency)
	}
	eng.Run()
}

func TestPageFTLBufferReadHit(t *testing.T) {
	cfg := writeThroughConfig()
	cfg.BufferPages = 16
	eng, f := newTinyFTL(t, cfg)
	f.WriteLPN(0, pageData(256, 0x3C), func(error) {})
	var got []byte
	var readAt sim.Time
	eng.Schedule(3*sim.Microsecond, func() {
		f.ReadLPN(0, func(d []byte, err error) {
			got, readAt = d, eng.Now()
			if err != nil {
				t.Errorf("read: %v", err)
			}
		})
	})
	eng.Run()
	if got == nil || got[0] != 0x3C {
		t.Fatal("buffer read hit returned wrong data")
	}
	if readAt-3*sim.Microsecond != bufferHitLatency {
		t.Fatalf("buffer hit took %v, want %v", readAt-3*sim.Microsecond, bufferHitLatency)
	}
	if f.Stats().BufferHits != 1 {
		t.Fatal("buffer hit not counted")
	}
	eng.Run()
}

func TestPageFTLFlushDrainsBuffer(t *testing.T) {
	cfg := writeThroughConfig()
	cfg.BufferPages = 64
	eng, f := newTinyFTL(t, cfg)
	for i := int64(0); i < 10; i++ {
		f.WriteLPN(i, pageData(256, byte(i)), func(error) {})
	}
	flushed := false
	f.Flush(func() { flushed = true })
	eng.Run()
	if !flushed {
		t.Fatal("flush never completed")
	}
	if f.arr.PagePrograms < 10 {
		t.Fatalf("only %d programs after flush, want >= 10", f.arr.PagePrograms)
	}
	// Post-flush data still correct (now from flash, not buffer).
	for i := int64(0); i < 10; i++ {
		if got := mustRead(t, eng, f, i); got[0] != byte(i) {
			t.Fatalf("lpn %d wrong after flush", i)
		}
	}
}

func TestPageFTLBufferCoalescesOverwrites(t *testing.T) {
	cfg := writeThroughConfig()
	cfg.BufferPages = 64
	eng, f := newTinyFTL(t, cfg)
	for i := 0; i < 10; i++ {
		f.WriteLPN(0, pageData(256, byte(i)), func(error) {})
	}
	f.Flush(func() {})
	eng.Run()
	// 10 overwrites of one LPN should coalesce to very few programs.
	if f.arr.PagePrograms > 2 {
		t.Fatalf("%d programs for 10 coalescable writes", f.arr.PagePrograms)
	}
	if got := mustRead(t, eng, f, 0); got[0] != 9 {
		t.Fatal("coalesced value wrong")
	}
}

func TestPageFTLVolatileBufferLosesData(t *testing.T) {
	cfg := writeThroughConfig()
	cfg.BufferPages = 64
	cfg.BufferSafe = false
	eng, f := newTinyFTL(t, cfg)
	f.WriteLPN(1, pageData(256, 0xEE), func(error) {})
	eng.Run() // ack arrives; flush may not have started (below high water)
	lost := f.DropVolatileBuffer()
	if len(lost) == 0 {
		t.Fatal("volatile buffer reported nothing lost")
	}
	if got := mustRead(t, eng, f, 1); got != nil {
		t.Fatal("lost write still readable after crash")
	}
}

func TestPageFTLSafeBufferKeepsData(t *testing.T) {
	cfg := writeThroughConfig()
	cfg.BufferPages = 64
	cfg.BufferSafe = true
	eng, f := newTinyFTL(t, cfg)
	f.WriteLPN(1, pageData(256, 0xEE), func(error) {})
	eng.Run()
	if lost := f.DropVolatileBuffer(); lost != nil {
		t.Fatalf("battery-backed buffer lost %v", lost)
	}
	if got := mustRead(t, eng, f, 1); got == nil || got[0] != 0xEE {
		t.Fatal("data missing after crash with safe buffer")
	}
}

func TestPageFTLNamelessWriteAndRelocation(t *testing.T) {
	eng, f := newTinyFTL(t, writeThroughConfig())
	// Track relocations like the host side of the co-design interface.
	current := make(map[PPA]PPA) // original -> current
	f.SetRelocationNotifier(func(old, new PPA) {
		for orig, cur := range current {
			if cur == old {
				current[orig] = new
			}
		}
	})
	var token PPA = InvalidPPA
	f.WriteNameless(pageData(256, 0x42), func(ppa PPA, err error) {
		if err != nil {
			t.Errorf("nameless write: %v", err)
		}
		token = ppa
	})
	eng.Run()
	if token == InvalidPPA {
		t.Fatal("no PPA returned")
	}
	current[token] = token
	// Churn the device so GC relocates the nameless page eventually.
	for round := 0; round < 60; round++ {
		for l := int64(0); l < 20; l++ {
			f.WriteLPN(l, nil, func(error) {})
			eng.Run()
		}
	}
	var got []byte
	f.ReadPhys(current[token], func(d []byte, err error) {
		if err != nil {
			t.Errorf("ReadPhys: %v", err)
		}
		got = d
	})
	eng.Run()
	if got == nil || got[0] != 0x42 {
		t.Fatal("nameless page unreadable after churn")
	}
	if err := f.TrimPhys(current[token]); err != nil {
		t.Fatalf("TrimPhys: %v", err)
	}
}

func TestPageFTLSurvivesWornChips(t *testing.T) {
	// Rated for only 30 cycles: grown bad blocks guaranteed; the FTL
	// must keep data correct while retiring blocks.
	eng := sim.NewEngine()
	spec := tinySpec()
	spec.Reliability = nand.Reliability{RatedCycles: 30}
	arr, err := NewArray(eng, ArrayConfig{
		Channels: 2, ChipsPerChannel: 2,
		Chip:    spec,
		Channel: bus.Config{MBPerSec: 200, CmdOverhead: sim.Microsecond},
	}, 77)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewPageFTL(arr, writeThroughConfig())
	if err != nil {
		t.Fatal(err)
	}
	const ws = 16
	for round := 0; round < 80; round++ {
		for l := int64(0); l < ws; l++ {
			var werr error
			f.WriteLPN(l, pageData(256, byte(round)), func(err error) { werr = err })
			eng.Run()
			if werr != nil {
				// Device legitimately full of bad blocks; stop writing.
				t.Skipf("device wore out entirely at round %d: %v", round, werr)
			}
		}
	}
	for l := int64(0); l < ws; l++ {
		got := mustRead(t, eng, f, l)
		if got == nil || got[0] != 79 {
			t.Fatalf("lpn %d corrupted on worn device", l)
		}
	}
}

func TestWriteAmplificationHelper(t *testing.T) {
	eng, arr := tinyArray(t, 1, 1)
	f, err := NewPageFTL(arr, writeThroughConfig())
	if err != nil {
		t.Fatal(err)
	}
	if WriteAmplification(f, arr) != 0 {
		t.Fatal("WA with no writes should be 0")
	}
	f.WriteLPN(0, nil, func(error) {})
	eng.Run()
	if got := WriteAmplification(f, arr); got != 1 {
		t.Fatalf("WA after one write = %v, want 1", got)
	}
}

// Property: a random mix of writes, overwrites and trims behaves like a
// map, even across forced GC churn, in both buffered and write-through
// configurations.
func TestPropertyPageFTLMatchesModel(t *testing.T) {
	run := func(ops []uint16, buffered bool) bool {
		eng, arr := tinyArray(t, 2, 2)
		cfg := writeThroughConfig()
		if buffered {
			cfg.BufferPages = 8
		}
		f, err := NewPageFTL(arr, cfg)
		if err != nil {
			return false
		}
		model := map[int64]byte{}
		n := f.Capacity()
		for _, op := range ops {
			lpn := int64(op%uint16(n)) % n
			switch {
			case op%5 == 4: // trim
				if f.Trim(lpn) != nil {
					return false
				}
				delete(model, lpn)
			default:
				fill := byte(op >> 8)
				ok := true
				f.WriteLPN(lpn, pageData(256, fill), func(err error) { ok = err == nil })
				eng.Run()
				if !ok {
					return false
				}
				model[lpn] = fill
			}
		}
		fdone := false
		f.Flush(func() { fdone = true })
		eng.Run()
		if !fdone {
			return false
		}
		for lpn := int64(0); lpn < n; lpn++ {
			var got []byte
			var gerr error
			f.ReadLPN(lpn, func(d []byte, err error) { got, gerr = d, err })
			eng.Run()
			if gerr != nil {
				return false
			}
			want, ok := model[lpn]
			if !ok {
				if got != nil {
					return false
				}
				continue
			}
			if got == nil || got[0] != want {
				return false
			}
		}
		return true
	}
	f1 := func(ops []uint16) bool { return run(ops, false) }
	f2 := func(ops []uint16) bool { return run(ops, true) }
	if err := quick.Check(f1, &quick.Config{MaxCount: 25}); err != nil {
		t.Errorf("write-through: %v", err)
	}
	if err := quick.Check(f2, &quick.Config{MaxCount: 25}); err != nil {
		t.Errorf("buffered: %v", err)
	}
}
