package ftl

// writeBuffer models the controller's RAM write-back cache — the paper's
// first reason random writes got cheap: "high-end SSDs now include safe
// RAM buffers (with batteries) ... a write I/O request completes as soon
// as it hits the cache". Writes coalesce by LPN; a background flusher
// drains oldest-first with bounded fanout so flushes stripe over chips;
// when the buffer fills, host writes stall until space frees
// (back-pressure, visible as write tail latency).
type writeBuffer struct {
	f      *PageFTL
	cap    int
	high   int // start background flush above this
	low    int // stop background flush at or below this
	fanout int // concurrent flush programs

	entries map[int64]*bufEntry
	fifo    []int64 // admission order; may contain superseded lpns

	flushing int
	draining bool
	waiting  []writeJob // host writes stalled on a full buffer
}

type bufEntry struct {
	data  []byte
	hasIt bool // distinguishes nil-payload entries from absence
}

func newWriteBuffer(f *PageFTL, capPages, fanout int) *writeBuffer {
	if fanout <= 0 {
		fanout = f.arr.Chips()
	}
	return &writeBuffer{
		f:       f,
		cap:     capPages,
		high:    capPages * 3 / 4,
		low:     capPages / 2,
		entries: make(map[int64]*bufEntry),
		fanout:  fanout,
	}
}

func (b *writeBuffer) empty() bool {
	return len(b.entries) == 0 && b.flushing == 0 && len(b.waiting) == 0
}

// get serves a read hit from the buffer.
func (b *writeBuffer) get(lpn int64) ([]byte, bool) {
	e, ok := b.entries[lpn]
	if !ok {
		return nil, false
	}
	if e.data == nil {
		return nil, true
	}
	return append([]byte(nil), e.data...), true
}

// drop removes a trimmed LPN.
func (b *writeBuffer) drop(lpn int64) {
	delete(b.entries, lpn)
}

// insert admits a host write, coalescing with any buffered version.
// The ack (done) fires at RAM speed unless the buffer is full, in which
// case the write stalls until a flush frees space.
func (b *writeBuffer) insert(lpn int64, data []byte, done func(error)) {
	if e, ok := b.entries[lpn]; ok {
		// Overwrite in place: no new slot consumed.
		if data != nil {
			e.data = append(e.data[:0], data...)
		} else {
			e.data = nil
		}
		b.f.eng.After(bufferAckLatency, func() { done(nil) })
		return
	}
	if len(b.entries) >= b.cap {
		b.f.stats.BufferStalls++
		b.waiting = append(b.waiting, writeJob{lpn: lpn, data: cloneBytes(data), done: func(_ PPA, err error) { done(err) }})
		b.kick()
		return
	}
	b.admit(lpn, data)
	b.f.eng.After(bufferAckLatency, func() { done(nil) })
	if len(b.entries) > b.high {
		b.kick()
	}
}

func cloneBytes(d []byte) []byte {
	if d == nil {
		return nil
	}
	return append([]byte(nil), d...)
}

func (b *writeBuffer) admit(lpn int64, data []byte) {
	b.entries[lpn] = &bufEntry{data: cloneBytes(data), hasIt: true}
	b.fifo = append(b.fifo, lpn)
}

// target is the entry count the flusher is currently driving toward.
func (b *writeBuffer) target() int {
	if b.draining || len(b.waiting) > 0 {
		return 0
	}
	return b.low
}

// kick starts flush work up to the fanout limit.
func (b *writeBuffer) kick() {
	for b.flushing < b.fanout && len(b.entries) > b.target() {
		lpn, ok := b.popOldest()
		if !ok {
			return
		}
		e := b.entries[lpn]
		delete(b.entries, lpn)
		b.flushing++
		b.f.writePhys(writeJob{lpn: lpn, data: e.data, done: func(_ PPA, err error) {
			b.flushing--
			b.admitWaiting()
			if b.draining && len(b.entries) == 0 && b.flushing == 0 {
				b.draining = false
			}
			b.kick()
			if b.empty() {
				b.f.wakeFlushWaiters()
			}
			_ = err // flash-level failures were already retried by the FTL
		}})
	}
}

// popOldest returns the oldest LPN still resident in the buffer.
func (b *writeBuffer) popOldest() (int64, bool) {
	for len(b.fifo) > 0 {
		lpn := b.fifo[0]
		b.fifo = b.fifo[1:]
		if _, ok := b.entries[lpn]; ok {
			return lpn, true
		}
	}
	return 0, false
}

// admitWaiting moves stalled writes into freed slots.
func (b *writeBuffer) admitWaiting() {
	for len(b.waiting) > 0 && len(b.entries) < b.cap {
		job := b.waiting[0]
		b.waiting = b.waiting[0:copy(b.waiting, b.waiting[1:])]
		if e, ok := b.entries[job.lpn]; ok {
			e.data = cloneBytes(job.data)
		} else {
			b.admit(job.lpn, job.data)
		}
		done := job.done
		b.f.eng.After(bufferAckLatency, func() { done(InvalidPPA, nil) })
	}
}

// drainAll flushes everything (Flush / shutdown).
func (b *writeBuffer) drainAll() {
	b.draining = true
	b.kick()
	if len(b.entries) == 0 {
		b.draining = false
	}
}

// dropVolatile models power loss with a volatile buffer: un-flushed
// entries vanish. It returns the lost LPNs (for tests).
func (b *writeBuffer) dropVolatile() []int64 {
	var lost []int64
	for lpn := range b.entries {
		lost = append(lost, lpn)
	}
	b.entries = make(map[int64]*bufEntry)
	b.fifo = nil
	for _, j := range b.waiting {
		j.done(InvalidPPA, nil) // acked writes lost silently, like real volatile caches
	}
	b.waiting = nil
	return lost
}
