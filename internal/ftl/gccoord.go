package ftl

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sim"
)

// This file is the host→device half of the paper's "communicating
// peers" interface: the GC control surface. The device→host half
// (SetGCNotifier) tells the host when relocation traffic is running;
// this half lets the host shape *when* that traffic runs — defer
// background garbage collection while latency-sensitive work is in
// flight, bounded by a hard free-pool floor the host cannot override.

// GCUrgency classifies the device's reclamation pressure, coarsely
// enough to cross the host interface.
type GCUrgency int

// Urgency levels.
const (
	// GCRelaxed: every chip is at or above the low watermark; no GC
	// wants to run, deferral is free.
	GCRelaxed GCUrgency = iota
	// GCElevated: some chip is below the low watermark, so background
	// GC wants to run; deferral is honored but spends real headroom.
	GCElevated
	// GCUrgent: some chip is at or below the defer floor, or has writes
	// parked waiting for space. Defer requests are refused and forced
	// collection may already be running.
	GCUrgent
)

// String names the urgency level.
func (u GCUrgency) String() string {
	switch u {
	case GCRelaxed:
		return "relaxed"
	case GCElevated:
		return "elevated"
	default:
		return "urgent"
	}
}

// GCUrgency reports the device's current reclamation pressure — the
// host-visible summary a scheduler can poll before spending a defer
// request.
func (f *PageFTL) GCUrgency() GCUrgency {
	worst := GCRelaxed
	for c := range f.chips {
		cs := &f.chips[c]
		if len(cs.free) <= f.deferFloor || len(cs.pending) > 0 {
			return GCUrgent
		}
		if len(cs.free) < f.cfg.GCLowWater {
			worst = GCElevated
		}
	}
	return worst
}

// DeferGC asks the device to park background garbage collection (and
// static wear leveling) until the given virtual-time deadline. It
// reports whether the request was honored: a device whose free pool is
// already at the defer floor (GCUrgent) refuses, and an honored
// deferral is still bounded by that floor — any chip that reaches it,
// or accumulates parked writes, collects anyway (a floor hit). Calling
// again with a later deadline extends the active session (a renewal);
// an earlier deadline leaves the session untouched. GC already in
// flight finishes its current victim but stops at the low watermark
// instead of the high one, returning the device to quiet as early as
// safety allows.
func (f *PageFTL) DeferGC(deadline sim.Time) bool {
	now := f.eng.Now()
	if deadline <= now {
		return false
	}
	if f.GCUrgency() == GCUrgent {
		f.coord.Refused++
		return false
	}
	if deadline <= f.gcDeferUntil {
		return true // already covered by the active session
	}
	if f.gcDeferUntil > now {
		f.coord.Renewals++
	} else {
		f.coord.Defers++
		f.deferFloorHit = false
	}
	f.gcDeferUntil = deadline
	f.eng.Schedule(deadline, f.deferExpired)
	return true
}

// ResumeGC ends an active deferral session immediately and kicks
// collection on every chip below its low watermark — the host's signal
// that the latency burst it was protecting has drained. (Resume counts
// live on the host side of the ledger; see sched.Scheduler.GCCoord.)
func (f *PageFTL) ResumeGC() {
	f.gcDeferUntil = 0
	f.kickAllGC()
}

// GCDeferred reports whether a deferral session is active right now.
func (f *PageFTL) GCDeferred() bool { return f.gcDeferUntil > f.eng.Now() }

// SetEventSink wires a health-event sink for the device-side GC
// coordination moments (floor hits, forced collection), labeled with
// the device's name. A nil sink detaches.
func (f *PageFTL) SetEventSink(sink obs.EventSink, label string) {
	f.evsink, f.evlabel = sink, label
}

// GCCoord returns the device-side coordination ledger.
func (f *PageFTL) GCCoord() metrics.GCCoord { return f.coord }

// deferExpired runs at a session deadline: if the session was neither
// resumed nor renewed past this instant, it lapses and parked GC runs.
func (f *PageFTL) deferExpired() {
	if f.gcDeferUntil == 0 || f.gcDeferUntil > f.eng.Now() {
		return // resumed early, or renewed to a later deadline
	}
	f.gcDeferUntil = 0
	f.coord.Expires++
	f.kickAllGC()
}

// kickAllGC re-evaluates GC on every chip (after a deferral ends).
func (f *PageFTL) kickAllGC() {
	for c := range f.chips {
		f.maybeStartGC(c)
	}
}

// deferredNow reports whether background GC on chip is parked by an
// active deferral session, charging floor accounting when the session
// is overridden. Callers have already established that chip wants GC.
func (f *PageFTL) deferredNow(chip int) bool {
	if f.gcDeferUntil <= f.eng.Now() {
		return false
	}
	cs := &f.chips[chip]
	if h := f.headroomPages(chip); f.coord.MinHeadroomPages < 0 || h < f.coord.MinHeadroomPages {
		f.coord.MinHeadroomPages = h
	}
	if len(cs.free) > f.deferFloor && len(cs.pending) == 0 {
		return true // honored: stay parked
	}
	// The hard floor: this chip is out of discretionary headroom (or
	// host writes are already parked on it). Collect regardless of the
	// host's wishes; the session stays active for healthier chips.
	f.coord.FloorHits++
	if f.evsink != nil {
		f.evsink.Emit(obs.HealthEvent{
			Kind: obs.EventFloorHit, At: f.eng.Now(), Name: f.evlabel,
			Value:  float64(f.headroomPages(chip)),
			Detail: fmt.Sprintf("chip %d free pool at defer floor", chip),
		})
	}
	if !f.deferFloorHit {
		f.deferFloorHit = true
		f.coord.ForcedResumes++
		if f.evsink != nil {
			f.evsink.Emit(obs.HealthEvent{
				Kind: obs.EventForcedGC, At: f.eng.Now(), Name: f.evlabel,
				Value:  float64(chip),
				Detail: fmt.Sprintf("collection forced over an active lease on chip %d", chip),
			})
		}
	}
	return false
}

// gcStopWater is the free-block count at which a running GC pass
// parks: the high watermark normally, but only the low watermark while
// a deferral session is active — reclaim to safety, not to comfort,
// then hand the LUNs back to host traffic.
func (f *PageFTL) gcStopWater(chip int) int {
	if f.gcDeferUntil > f.eng.Now() && len(f.chips[chip].pending) == 0 {
		return f.cfg.GCLowWater
	}
	return f.cfg.GCHighWater
}

// GCTouch is a point-in-time probe of the GC state relevant to one
// logical page: which chip currently holds it, whether that chip is
// collecting right now, whether a host defer lease is active, and the
// cumulative forced-collection counter (so a caller bracketing an I/O
// can detect a forced GC firing in its shadow). The observability
// layer (package obs, via blockdev) uses it to annotate trace spans.
type GCTouch struct {
	Chip       int   `json:"chip"`
	Collecting bool  `json:"collecting"`
	Deferred   bool  `json:"deferred"`
	FloorHits  int64 `json:"floor_hits"`
}

// GCTouch probes the GC context of lpn. For an unmapped or
// out-of-range lpn the chip is -1 and Collecting reports whether any
// chip is collecting (a write's destination chip is not yet known).
func (f *PageFTL) GCTouch(lpn int64) GCTouch {
	t := GCTouch{Chip: -1, Deferred: f.GCDeferred(), FloorHits: f.coord.FloorHits}
	if lpn >= 0 && lpn < int64(len(f.mapping)) {
		if ppa := f.mapping[lpn]; ppa != InvalidPPA {
			c := f.arr.ChipOf(ppa)
			t.Chip = c
			t.Collecting = f.chips[c].gcActive
			return t
		}
	}
	t.Collecting = f.gcBusy > 0
	return t
}
