package ftl

import (
	"testing"

	"repro/internal/sim"
)

// eraseSpread reports min/max erase counts over the good blocks of a
// PageFTL.
func eraseSpread(f *PageFTL) (min, max int32) {
	min = 1 << 30
	for i := range f.blocks {
		bm := &f.blocks[i]
		if bm.state == blockBad {
			continue
		}
		if bm.eraseCount < min {
			min = bm.eraseCount
		}
		if bm.eraseCount > max {
			max = bm.eraseCount
		}
	}
	return min, max
}

// hotColdChurn writes a hot working set repeatedly while a cold region
// sits untouched — the pattern static wear leveling exists for.
func hotColdChurn(t *testing.T, cfg Config, rounds int) *PageFTL {
	t.Helper()
	eng, arr := tinyArray(t, 1, 1)
	f, err := NewPageFTL(arr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := f.Capacity()
	// Cold data fills the first half once.
	for l := int64(0); l < n/2; l++ {
		f.WriteLPN(l, nil, func(error) {})
		eng.Run()
	}
	// Hot churn over a few pages in the second half.
	for r := 0; r < rounds; r++ {
		for l := n / 2; l < n/2+4; l++ {
			f.WriteLPN(l, nil, func(error) {})
			eng.Run()
		}
	}
	return f
}

func TestStaticWearLevelingNarrowsSpread(t *testing.T) {
	base := writeThroughConfig()
	rounds := 400

	noWL := hotColdChurn(t, base, rounds)
	_, maxOff := eraseSpread(noWL)

	withWL := base
	withWL.StaticWearThreshold = 8
	wl := hotColdChurn(t, withWL, rounds)
	minOn, maxOn := eraseSpread(wl)

	if wl.Stats().WearMoves == 0 {
		t.Fatal("static wear leveling never moved a page")
	}
	// With WL the most-worn block should be clearly less worn than
	// without: cold blocks absorbed part of the churn.
	if maxOn >= maxOff {
		t.Fatalf("static WL did not cap wear: max %d with WL, %d without", maxOn, maxOff)
	}
	// WL is throttled (one cold block per check window), so the
	// steady-state spread is bounded by the threshold plus the check
	// cadence times the number of cold blocks (3 here), not by the
	// threshold alone.
	bound := 8 + staticWLCheckRate*4
	if int(maxOn-minOn) > bound {
		t.Fatalf("erase spread %d exceeds throttle bound %d", maxOn-minOn, bound)
	}
}

func TestStaticWearLevelingPreservesData(t *testing.T) {
	cfg := writeThroughConfig()
	cfg.StaticWearThreshold = 6
	eng, arr := tinyArray(t, 1, 1)
	f, err := NewPageFTL(arr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := f.Capacity()
	// Cold half with recognizable payloads.
	for l := int64(0); l < n/2; l++ {
		mustWrite(t, eng, f, l, byte(l+1))
	}
	for r := 0; r < 300; r++ {
		for l := n / 2; l < n/2+4; l++ {
			f.WriteLPN(l, nil, func(error) {})
			eng.Run()
		}
	}
	if f.Stats().WearMoves == 0 {
		t.Skip("wear leveling never triggered at this scale")
	}
	for l := int64(0); l < n/2; l++ {
		got := mustRead(t, eng, f, l)
		if got == nil || got[0] != byte(l+1) {
			t.Fatalf("cold lpn %d corrupted by wear leveling", l)
		}
	}
}

func TestCostBenefitBeatsGreedyOnSkew(t *testing.T) {
	// Under a skewed (hot/cold) update stream, cost-benefit cleaning
	// should not do more GC work than greedy does; classically it does
	// less because it avoids re-cleaning hot blocks too early.
	run := func(policy GCPolicy) float64 {
		eng, arr := tinyArray(t, 2, 2)
		cfg := writeThroughConfig()
		cfg.GCPolicy = policy
		f, err := NewPageFTL(arr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		n := f.Capacity()
		rng := sim.NewRNG(5)
		zipf := sim.NewZipf(rng, n, 0.9)
		for i := int64(0); i < n; i++ {
			f.WriteLPN(i, nil, func(error) {})
			eng.Run()
		}
		for i := 0; i < int(n)*8; i++ {
			f.WriteLPN(zipf.Next(), nil, func(error) {})
			eng.Run()
		}
		return WriteAmplification(f, arr)
	}
	greedy := run(GCGreedy)
	cb := run(GCCostBenefit)
	if cb > greedy*1.3 {
		t.Fatalf("cost-benefit WA %.2f much worse than greedy %.2f on skewed stream", cb, greedy)
	}
}

func TestGCPolicyBothSurviveUniform(t *testing.T) {
	for _, policy := range []GCPolicy{GCGreedy, GCCostBenefit} {
		eng, arr := tinyArray(t, 2, 2)
		cfg := writeThroughConfig()
		cfg.GCPolicy = policy
		f, err := NewPageFTL(arr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		n := f.Capacity()
		rng := sim.NewRNG(9)
		for i := int64(0); i < 6*n; i++ {
			var werr error
			f.WriteLPN(rng.Int63n(n), nil, func(err error) { werr = err })
			eng.Run()
			if werr != nil {
				t.Fatalf("policy %d: write failed: %v", policy, werr)
			}
		}
		if wa := WriteAmplification(f, arr); wa < 1 {
			t.Fatalf("policy %d: WA %v < 1", policy, wa)
		}
	}
}
