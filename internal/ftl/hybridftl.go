package ftl

import (
	"fmt"

	"repro/internal/sim"
)

// HybridFTL is a FAST-style hybrid log-block FTL — the design inside
// pre-2009 consumer SSDs. Data blocks are block-mapped; a small pool of
// page-mapped log blocks absorbs overwrites. Sequential overwrites of a
// whole logical block resolve with a cheap "switch merge" (remap the log
// block as the data block). Random overwrites scatter pages of many
// logical blocks across the log pool, so reclaiming one log block forces
// a "full merge" per logical block it touches — the log-block thrashing
// that made random writes 10-100x slower than sequential ones (Myth 2).
type HybridFTL struct {
	eng *sim.Engine
	arr *Array

	ops opQueue

	capacity int64
	lbnToPbn []PBA
	written  []bool // logical slot live (newest version may be in log)
	burned   []bool // physical slot of mapped data block programmed

	maxLogBlocks int
	logBlocks    []PBA           // active log blocks, oldest first
	logOwner     map[PBA][]int64 // per log block: owning lpn per page, -1 dead
	logPtr       int             // next page in newest log block
	logMap       map[int64]PPA   // lpn -> newest version in the log

	freeBlocks [][]PBA
	stats      Stats
}

var _ FTL = (*HybridFTL)(nil)

// NewHybridFTL builds the hybrid FTL with the given log pool size
// (FAST used a handful of log blocks; 4-16 is era-accurate).
func NewHybridFTL(arr *Array, overProvision float64, logBlocks int) (*HybridFTL, error) {
	if !arr.Spec().SupportsRandomProgram {
		return nil, fmt.Errorf("%w: hybrid mapping needs random-page-program chips", ErrArrayGeometry)
	}
	if logBlocks < 1 {
		logBlocks = 4
	}
	if overProvision < 0.05 {
		overProvision = 0.05
	}
	if overProvision > 0.5 {
		overProvision = 0.5
	}
	f := &HybridFTL{
		eng:          arr.Engine(),
		arr:          arr,
		maxLogBlocks: logBlocks,
		logOwner:     make(map[PBA][]int64),
		logMap:       make(map[int64]PPA),
	}
	totalBlocks := arr.TotalBlocks()
	exported := int64(float64(totalBlocks)*(1-overProvision)) - int64(logBlocks)
	if exported < 1 {
		return nil, fmt.Errorf("%w: device too small for %d log blocks", ErrArrayGeometry, logBlocks)
	}
	f.capacity = exported * int64(arr.PagesPerBlock())
	f.lbnToPbn = make([]PBA, exported)
	for i := range f.lbnToPbn {
		f.lbnToPbn[i] = InvalidPBA
	}
	f.written = make([]bool, f.capacity)
	f.burned = make([]bool, f.capacity)
	f.freeBlocks = make([][]PBA, arr.Chips())
	for c := 0; c < arr.Chips(); c++ {
		for b := int64(0); b < arr.BlocksPerChip(); b++ {
			pba := PBA(int64(c)*arr.BlocksPerChip() + b)
			_, baddr, err := arr.SplitPBA(pba)
			if err != nil {
				return nil, err
			}
			if arr.Chip(c).IsBad(baddr) {
				continue
			}
			f.freeBlocks[c] = append(f.freeBlocks[c], pba)
		}
	}
	return f, nil
}

// Capacity implements FTL.
func (f *HybridFTL) Capacity() int64 { return f.capacity }

// PageSize implements FTL.
func (f *HybridFTL) PageSize() int { return f.arr.PageSize() }

// Stats implements FTL.
func (f *HybridFTL) Stats() Stats { return f.stats }

// Flush implements FTL (no volatile data cache).
func (f *HybridFTL) Flush(done func()) { f.eng.After(0, done) }

func (f *HybridFTL) split(lpn int64) (lbn int64, off int) {
	return lpn / int64(f.arr.PagesPerBlock()), int(lpn % int64(f.arr.PagesPerBlock()))
}

func (f *HybridFTL) checkLPN(lpn int64) error {
	if lpn < 0 || lpn >= f.capacity {
		return fmt.Errorf("%w: lpn %d, capacity %d", ErrLPNRange, lpn, f.capacity)
	}
	return nil
}

func (f *HybridFTL) allocBlock(preferred int) (PBA, bool) {
	n := f.arr.Chips()
	for i := 0; i < n; i++ {
		c := (preferred + i) % n
		if len(f.freeBlocks[c]) > 0 {
			fb := f.freeBlocks[c]
			pba := fb[len(fb)-1]
			f.freeBlocks[c] = fb[:len(fb)-1]
			return pba, true
		}
	}
	return InvalidPBA, false
}

func (f *HybridFTL) freeBlock(pba PBA) {
	c := f.arr.ChipOfBlock(pba)
	f.freeBlocks[c] = append(f.freeBlocks[c], pba)
}

// ReadLPN implements FTL: the log pool holds the newest version.
// Commands execute one at a time (see opQueue).
func (f *HybridFTL) ReadLPN(lpn int64, done func([]byte, error)) {
	if err := f.checkLPN(lpn); err != nil {
		done(nil, err)
		return
	}
	f.ops.run(func(next func()) {
		f.readLPN(lpn, func(d []byte, err error) {
			done(d, err)
			next()
		})
	})
}

func (f *HybridFTL) readLPN(lpn int64, done func([]byte, error)) {
	f.stats.HostReads++
	if ppa, ok := f.logMap[lpn]; ok {
		f.arr.ReadPage(ppa, func(data, _ []byte, _ int, err error) { done(data, err) })
		return
	}
	lbn, off := f.split(lpn)
	pbn := f.lbnToPbn[lbn]
	if pbn == InvalidPBA || !f.written[lpn] {
		f.eng.After(unmappedLatency, func() { done(nil, nil) })
		return
	}
	f.arr.ReadPage(f.arr.PPAOfBlock(pbn, off), func(data, _ []byte, _ int, err error) { done(data, err) })
}

// WriteLPN implements FTL. In-place fills go straight to the data block;
// overwrites go to the log pool, merging when the pool is exhausted.
func (f *HybridFTL) WriteLPN(lpn int64, data []byte, done func(error)) {
	if err := f.checkLPN(lpn); err != nil {
		done(err)
		return
	}
	if data != nil && len(data) != f.PageSize() {
		done(fmt.Errorf("ftl: payload %d bytes, page is %d", len(data), f.PageSize()))
		return
	}
	f.ops.run(func(next func()) {
		f.writeLPN(lpn, data, func(err error) {
			done(err)
			next()
		})
	})
}

func (f *HybridFTL) writeLPN(lpn int64, data []byte, done func(error)) {
	f.stats.HostWrites++
	lbn, off := f.split(lpn)
	pbn := f.lbnToPbn[lbn]
	if pbn == InvalidPBA {
		newPbn, ok := f.allocBlock(int(lbn) % f.arr.Chips())
		if !ok {
			done(fmt.Errorf("%w: no free blocks", ErrDeviceFull))
			return
		}
		f.lbnToPbn[lbn] = newPbn
		f.programData(newPbn, lpn, off, data, done)
		return
	}
	if !f.burned[lpn] {
		f.programData(pbn, lpn, off, data, done)
		return
	}
	f.appendLog(lpn, data, done)
}

func (f *HybridFTL) programData(pbn PBA, lpn int64, off int, data []byte, done func(error)) {
	f.written[lpn] = true
	f.burned[lpn] = true
	f.arr.WritePage(f.arr.PPAOfBlock(pbn, off), data, oobFor(lpn), func(ok bool) {
		if !ok {
			done(fmt.Errorf("ftl: program failure at block %d", pbn))
			return
		}
		done(nil)
	})
}

// appendLog writes the page into the newest log block, merging the
// oldest log block first if the pool is full.
func (f *HybridFTL) appendLog(lpn int64, data []byte, done func(error)) {
	ppb := f.arr.PagesPerBlock()
	if len(f.logBlocks) == 0 || f.logPtr >= ppb {
		if len(f.logBlocks) >= f.maxLogBlocks {
			f.mergeOldestLog(func(err error) {
				if err != nil {
					done(err)
					return
				}
				f.appendLog(lpn, data, done)
			})
			return
		}
		nb, ok := f.allocBlock(len(f.logBlocks) % f.arr.Chips())
		if !ok {
			done(fmt.Errorf("%w: no log blocks", ErrDeviceFull))
			return
		}
		f.logBlocks = append(f.logBlocks, nb)
		owners := make([]int64, ppb)
		for i := range owners {
			owners[i] = -1
		}
		f.logOwner[nb] = owners
		f.logPtr = 0
	}
	cur := f.logBlocks[len(f.logBlocks)-1]
	slot := f.logPtr
	f.logPtr++
	// Invalidate any older version in the log.
	if old, ok := f.logMap[lpn]; ok {
		f.invalidateLogEntry(old)
	}
	ppa := f.arr.PPAOfBlock(cur, slot)
	f.logOwner[cur][slot] = lpn
	f.logMap[lpn] = ppa
	f.written[lpn] = true
	f.arr.WritePage(ppa, data, oobFor(lpn), func(ok bool) {
		if !ok {
			done(fmt.Errorf("ftl: program failure in log block %d", cur))
			return
		}
		done(nil)
	})
}

func (f *HybridFTL) invalidateLogEntry(ppa PPA) {
	blk := f.arr.BlockOf(ppa)
	owners, ok := f.logOwner[blk]
	if !ok {
		return
	}
	chip, addr, err := f.arr.SplitPPA(ppa)
	if err != nil {
		return
	}
	_ = chip
	owners[addr.Page] = -1
}

// mergeOldestLog reclaims the oldest log block. If it holds exactly one
// logical block's pages in order, a switch merge just remaps it;
// otherwise every logical block it touches pays a full merge.
func (f *HybridFTL) mergeOldestLog(done func(error)) {
	victim := f.logBlocks[0]
	owners := f.logOwner[victim]
	ppb := f.arr.PagesPerBlock()

	if lbn, ok := f.switchMergeable(victim); ok {
		// Switch merge: the log block becomes the data block.
		f.stats.SwitchMerges++
		old := f.lbnToPbn[lbn]
		f.lbnToPbn[lbn] = victim
		base := lbn * int64(ppb)
		for p := 0; p < ppb; p++ {
			delete(f.logMap, base+int64(p))
			f.burned[base+int64(p)] = true
		}
		f.popLogBlock(victim)
		if old == InvalidPBA {
			f.eng.After(0, func() { done(nil) })
			return
		}
		f.arr.EraseBlock(old, func(ok bool) {
			if ok {
				f.freeBlock(old)
			}
			done(nil)
		})
		return
	}

	// Collect the distinct logical blocks with live pages in the victim.
	seen := map[int64]bool{}
	var lbns []int64
	for p := 0; p < ppb; p++ {
		if owners[p] < 0 {
			continue
		}
		lbn, _ := f.split(owners[p])
		if !seen[lbn] {
			seen[lbn] = true
			lbns = append(lbns, lbn)
		}
	}
	var step func(i int)
	step = func(i int) {
		if i >= len(lbns) {
			f.popLogBlock(victim)
			f.arr.EraseBlock(victim, func(ok bool) {
				if ok {
					f.freeBlock(victim)
				}
				done(nil)
			})
			return
		}
		f.fullMergeLbn(lbns[i], func(err error) {
			if err != nil {
				done(err)
				return
			}
			step(i + 1)
		})
	}
	step(0)
}

// switchMergeable reports whether a log block contains exactly the full,
// in-order contents of one logical block.
func (f *HybridFTL) switchMergeable(victim PBA) (int64, bool) {
	owners := f.logOwner[victim]
	ppb := f.arr.PagesPerBlock()
	if owners[0] < 0 || owners[0]%int64(ppb) != 0 {
		return 0, false
	}
	lbn := owners[0] / int64(ppb)
	for p := 0; p < ppb; p++ {
		want := lbn*int64(ppb) + int64(p)
		if owners[p] != want {
			return 0, false
		}
		// The log must hold the newest version of every page.
		if cur, ok := f.logMap[want]; !ok || f.arr.BlockOf(cur) != victim {
			return 0, false
		}
	}
	return lbn, true
}

func (f *HybridFTL) popLogBlock(victim PBA) {
	delete(f.logOwner, victim)
	for i, b := range f.logBlocks {
		if b == victim {
			f.logBlocks = append(f.logBlocks[:i], f.logBlocks[i+1:]...)
			break
		}
	}
	if len(f.logBlocks) == 0 {
		f.logPtr = f.arr.PagesPerBlock()
	}
}

// fullMergeLbn folds the newest version of every page of lbn (from data
// block and log pool) into a fresh block.
func (f *HybridFTL) fullMergeLbn(lbn int64, done func(error)) {
	f.stats.MergeOps++
	ppb := f.arr.PagesPerBlock()
	base := lbn * int64(ppb)
	oldPbn := f.lbnToPbn[lbn]
	newPbn, ok := f.allocBlock(int(lbn) % f.arr.Chips())
	if !ok {
		done(fmt.Errorf("%w: no merge block", ErrDeviceFull))
		return
	}

	// Snapshot sources before mutating state.
	type src struct {
		ppa  PPA
		live bool
	}
	srcs := make([]src, ppb)
	for p := 0; p < ppb; p++ {
		lpn := base + int64(p)
		if !f.written[lpn] {
			continue
		}
		if ppa, ok := f.logMap[lpn]; ok {
			srcs[p] = src{ppa: ppa, live: true}
			f.invalidateLogEntry(ppa)
			delete(f.logMap, lpn)
		} else if f.burned[lpn] && oldPbn != InvalidPBA {
			srcs[p] = src{ppa: f.arr.PPAOfBlock(oldPbn, p), live: true}
		}
	}
	f.lbnToPbn[lbn] = newPbn
	for p := 0; p < ppb; p++ {
		f.burned[base+int64(p)] = srcs[p].live
	}

	var step func(p int)
	step = func(p int) {
		if p >= ppb {
			if oldPbn == InvalidPBA {
				f.eng.After(0, func() { done(nil) })
				return
			}
			f.arr.EraseBlock(oldPbn, func(ok bool) {
				if ok {
					f.freeBlock(oldPbn)
				}
				done(nil)
			})
			return
		}
		if !srcs[p].live {
			step(p + 1)
			return
		}
		f.arr.CopyPage(srcs[p].ppa, f.arr.PPAOfBlock(newPbn, p), func(bool) { step(p + 1) })
	}
	step(0)
}

// Trim implements FTL (page-level trim just marks the slot dead).
func (f *HybridFTL) Trim(lpn int64) error {
	if err := f.checkLPN(lpn); err != nil {
		return err
	}
	f.stats.HostTrims++
	f.written[lpn] = false
	if ppa, ok := f.logMap[lpn]; ok {
		f.invalidateLogEntry(ppa)
		delete(f.logMap, lpn)
	}
	return nil
}
