package ftl

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/bus"
	"repro/internal/nand"
	"repro/internal/sim"
)

// legacySpec is a tiny random-program chip for legacy FTL tests.
func legacySpec() nand.Spec {
	s := tinySpec()
	s.SupportsRandomProgram = true
	return s
}

func legacyArray(t *testing.T, channels, chips int) (*sim.Engine, *Array) {
	t.Helper()
	eng := sim.NewEngine()
	arr, err := NewArray(eng, ArrayConfig{
		Channels:        channels,
		ChipsPerChannel: chips,
		Chip:            legacySpec(),
		Channel:         bus.Config{MBPerSec: 40, CmdOverhead: 2 * sim.Microsecond},
	}, 0)
	if err != nil {
		t.Fatalf("NewArray: %v", err)
	}
	return eng, arr
}

func ftlWrite(t *testing.T, eng *sim.Engine, f FTL, lpn int64, fill byte) {
	t.Helper()
	var gotErr error
	done := false
	f.WriteLPN(lpn, pageData(f.PageSize(), fill), func(err error) { gotErr, done = err, true })
	eng.Run()
	if !done || gotErr != nil {
		t.Fatalf("write lpn %d: done=%v err=%v", lpn, done, gotErr)
	}
}

func ftlRead(t *testing.T, eng *sim.Engine, f FTL, lpn int64) []byte {
	t.Helper()
	var data []byte
	var gotErr error
	done := false
	f.ReadLPN(lpn, func(d []byte, err error) { data, gotErr, done = d, err, true })
	eng.Run()
	if !done || gotErr != nil {
		t.Fatalf("read lpn %d: done=%v err=%v", lpn, done, gotErr)
	}
	return data
}

func TestBlockFTLRejectsSequentialOnlyChips(t *testing.T) {
	eng := sim.NewEngine()
	arr, err := NewArray(eng, ArrayConfig{
		Channels: 1, ChipsPerChannel: 1,
		Chip:    tinySpec(), // sequential-program-only
		Channel: bus.ONFI1,
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewBlockFTL(arr, 0.1); err == nil {
		t.Fatal("BlockFTL accepted sequential-only chips")
	}
	if _, err := NewHybridFTL(arr, 0.1, 4); err == nil {
		t.Fatal("HybridFTL accepted sequential-only chips")
	}
}

func TestBlockFTLRoundTrip(t *testing.T) {
	eng, arr := legacyArray(t, 1, 2)
	f, err := NewBlockFTL(arr, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	ftlWrite(t, eng, f, 5, 0x5A)
	if got := ftlRead(t, eng, f, 5); !bytes.Equal(got, pageData(256, 0x5A)) {
		t.Fatal("round trip failed")
	}
	if got := ftlRead(t, eng, f, 6); got != nil {
		t.Fatal("unwritten page returned data")
	}
}

func TestBlockFTLInPlaceFillNoMerge(t *testing.T) {
	eng, arr := legacyArray(t, 1, 2)
	f, err := NewBlockFTL(arr, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	// Fill a logical block in arbitrary order (random-program chips):
	// no merges should occur.
	for _, off := range []int64{2, 0, 3, 1} {
		ftlWrite(t, eng, f, off, byte(off))
	}
	if f.Stats().MergeOps != 0 {
		t.Fatalf("in-place fill triggered %d merges", f.Stats().MergeOps)
	}
	for off := int64(0); off < 4; off++ {
		if got := ftlRead(t, eng, f, off); got[0] != byte(off) {
			t.Fatalf("lpn %d wrong", off)
		}
	}
}

func TestBlockFTLOverwriteForcesMerge(t *testing.T) {
	eng, arr := legacyArray(t, 1, 2)
	f, err := NewBlockFTL(arr, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	ftlWrite(t, eng, f, 0, 0x01)
	ftlWrite(t, eng, f, 1, 0x02)
	ftlWrite(t, eng, f, 0, 0x03) // overwrite -> full merge
	if f.Stats().MergeOps != 1 {
		t.Fatalf("MergeOps = %d, want 1", f.Stats().MergeOps)
	}
	if got := ftlRead(t, eng, f, 0); got[0] != 0x03 {
		t.Fatal("overwrite lost")
	}
	if got := ftlRead(t, eng, f, 1); got[0] != 0x02 {
		t.Fatal("merge dropped sibling page")
	}
}

func TestBlockFTLMergeChainPreservesAll(t *testing.T) {
	eng, arr := legacyArray(t, 1, 2)
	f, err := NewBlockFTL(arr, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		ftlWrite(t, eng, f, int64(i), byte(i))
	}
	for round := 1; round <= 5; round++ {
		for i := 0; i < 4; i++ {
			ftlWrite(t, eng, f, int64(i), byte(10*round+i))
		}
	}
	for i := 0; i < 4; i++ {
		if got := ftlRead(t, eng, f, int64(i)); got[0] != byte(50+i) {
			t.Fatalf("lpn %d = %d, want %d", i, got[0], 50+i)
		}
	}
	if f.Stats().MergeOps == 0 {
		t.Fatal("no merges recorded")
	}
}

func TestBlockFTLTrimWholeBlockFreesIt(t *testing.T) {
	eng, arr := legacyArray(t, 1, 1)
	f, err := NewBlockFTL(arr, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 4; i++ {
		ftlWrite(t, eng, f, i, 1)
	}
	before := arr.BlockErases
	for i := int64(0); i < 4; i++ {
		if err := f.Trim(i); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	if arr.BlockErases != before+1 {
		t.Fatalf("whole-block trim should erase once: %d -> %d", before, arr.BlockErases)
	}
	if got := ftlRead(t, eng, f, 0); got != nil {
		t.Fatal("trimmed page still readable")
	}
	// The block is reusable in place.
	ftlWrite(t, eng, f, 0, 9)
	if got := ftlRead(t, eng, f, 0); got[0] != 9 {
		t.Fatal("rewrite after trim failed")
	}
}

func TestBlockFTLEveryOverwriteMerges(t *testing.T) {
	// Pure block mapping has no log blocks: sequential AND random
	// overwrites both pay a full merge per write. (The seq/rand
	// asymmetry only appears with hybrid FTLs.)
	run := func(random bool) (int64, int64) {
		eng, arr := legacyArray(t, 1, 2)
		f, err := NewBlockFTL(arr, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		rng := sim.NewRNG(5)
		n := int64(40)
		for i := int64(0); i < n; i++ {
			f.WriteLPN(i, nil, func(error) {})
			eng.Run()
		}
		for i := int64(0); i < 2*n; i++ {
			lpn := i % n
			if random {
				lpn = rng.Int63n(n)
			}
			f.WriteLPN(lpn, nil, func(error) {})
			eng.Run()
		}
		return f.Stats().MergeOps, 2 * n
	}
	for _, random := range []bool{false, true} {
		merges, overwrites := run(random)
		if merges < overwrites*8/10 {
			t.Fatalf("random=%v: %d merges for %d overwrites; block mapping should merge nearly every overwrite",
				random, merges, overwrites)
		}
	}
}

func TestHybridFTLRoundTripAndLog(t *testing.T) {
	eng, arr := legacyArray(t, 1, 2)
	f, err := NewHybridFTL(arr, 0.2, 2)
	if err != nil {
		t.Fatal(err)
	}
	ftlWrite(t, eng, f, 0, 0x11)
	ftlWrite(t, eng, f, 0, 0x22) // goes to log
	if got := ftlRead(t, eng, f, 0); got[0] != 0x22 {
		t.Fatal("log version not served")
	}
	if f.Stats().MergeOps != 0 {
		t.Fatal("small overwrite should not merge yet")
	}
}

func TestHybridFTLSequentialSwitchMerge(t *testing.T) {
	eng, arr := legacyArray(t, 1, 2)
	f, err := NewHybridFTL(arr, 0.2, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Three logical blocks overwritten fully, in order, repeatedly: each
	// evicted log block holds exactly one complete, newest logical block
	// -> switch merges, no page copies.
	const nLPN = 12
	for round := 0; round < 6; round++ {
		for i := int64(0); i < nLPN; i++ {
			ftlWrite(t, eng, f, i, byte(round*10+int(i)))
		}
	}
	for i := int64(0); i < nLPN; i++ {
		if got := ftlRead(t, eng, f, i); got[0] != byte(50+int(i)) {
			t.Fatalf("lpn %d = %d, want %d", i, got[0], 50+int(i))
		}
	}
	if f.Stats().SwitchMerges == 0 {
		t.Fatal("sequential whole-block overwrites produced no switch merges")
	}
	if arr.CopyBacks != 0 {
		t.Fatalf("sequential overwrite did %d page copies; switch merge should avoid them", arr.CopyBacks)
	}
}

func TestHybridFTLRandomThrashes(t *testing.T) {
	type result struct {
		elapsed sim.Time
		merges  int64
	}
	run := func(random bool) result {
		eng, arr := legacyArray(t, 1, 2)
		f, err := NewHybridFTL(arr, 0.2, 2)
		if err != nil {
			t.Fatal(err)
		}
		rng := sim.NewRNG(5)
		n := int64(40)
		for i := int64(0); i < n; i++ {
			f.WriteLPN(i, nil, func(error) {})
			eng.Run()
		}
		start := eng.Now()
		for i := int64(0); i < 3*n; i++ {
			lpn := i % n
			if random {
				lpn = rng.Int63n(n)
			}
			f.WriteLPN(lpn, nil, func(error) {})
			eng.Run()
		}
		return result{eng.Now() - start, f.Stats().MergeOps}
	}
	seq := run(false)
	rnd := run(true)
	if rnd.elapsed <= 2*seq.elapsed {
		t.Fatalf("random (%v) should be >2x slower than sequential (%v) on hybrid mapping", rnd.elapsed, seq.elapsed)
	}
	if rnd.merges <= seq.merges {
		t.Fatalf("random merges (%d) should exceed sequential merges (%d)", rnd.merges, seq.merges)
	}
}

func TestHybridFTLTrim(t *testing.T) {
	eng, arr := legacyArray(t, 1, 2)
	f, err := NewHybridFTL(arr, 0.2, 2)
	if err != nil {
		t.Fatal(err)
	}
	ftlWrite(t, eng, f, 3, 0x44)
	if err := f.Trim(3); err != nil {
		t.Fatal(err)
	}
	if got := ftlRead(t, eng, f, 3); got != nil {
		t.Fatal("trimmed page still readable")
	}
}

// Property: BlockFTL and HybridFTL behave like a map under random write
// and overwrite sequences.
func TestPropertyLegacyFTLsMatchModel(t *testing.T) {
	run := func(ops []uint16, hybrid bool) bool {
		eng, arr := legacyArray(t, 1, 2)
		var f FTL
		var err error
		if hybrid {
			f, err = NewHybridFTL(arr, 0.2, 2)
		} else {
			f, err = NewBlockFTL(arr, 0.2)
		}
		if err != nil {
			return false
		}
		model := map[int64]byte{}
		n := int64(24) // keep below capacity so merges always have room
		for _, op := range ops {
			lpn := int64(op) % n
			fill := byte(op >> 8)
			ok := true
			f.WriteLPN(lpn, pageData(256, fill), func(err error) { ok = err == nil })
			eng.Run()
			if !ok {
				return false
			}
			model[lpn] = fill
		}
		for lpn := int64(0); lpn < n; lpn++ {
			var got []byte
			var gerr error
			f.ReadLPN(lpn, func(d []byte, err error) { got, gerr = d, err })
			eng.Run()
			if gerr != nil {
				return false
			}
			want, ok := model[lpn]
			if !ok {
				if got != nil {
					return false
				}
				continue
			}
			if got == nil || got[0] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(func(ops []uint16) bool { return run(ops, false) }, &quick.Config{MaxCount: 20}); err != nil {
		t.Errorf("block: %v", err)
	}
	if err := quick.Check(func(ops []uint16) bool { return run(ops, true) }, &quick.Config{MaxCount: 20}); err != nil {
		t.Errorf("hybrid: %v", err)
	}
}

func TestDFTLChargesMapTraffic(t *testing.T) {
	eng, arr := tinyArray(t, 1, 2)
	inner, err := NewPageFTL(arr, writeThroughConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Each translation page covers 256/8 = 32 lpns; CMT of 1 page.
	d := NewDFTL(inner, 1)
	// lpn 0 (tpn 0): cold miss.
	ftlWrite(t, eng, d, 0, 1)
	if d.Stats().MapReads != 1 {
		t.Fatalf("MapReads = %d, want 1", d.Stats().MapReads)
	}
	// lpn 1 (same tpn): hit.
	ftlWrite(t, eng, d, 1, 1)
	if d.Stats().MapReads != 1 {
		t.Fatalf("MapReads after hit = %d, want 1", d.Stats().MapReads)
	}
	// lpn 40 (tpn 1): miss, evicts dirty tpn 0 -> map write + map read.
	ftlWrite(t, eng, d, 40, 1)
	if d.Stats().MapReads != 2 || d.Stats().MapWrites != 1 {
		t.Fatalf("MapReads=%d MapWrites=%d, want 2/1", d.Stats().MapReads, d.Stats().MapWrites)
	}
	// Data still correct through the cache.
	if got := ftlRead(t, eng, d, 0); got[0] != 1 {
		t.Fatal("data lost through DFTL")
	}
}

func TestDFTLColdCacheSlowerThanWarm(t *testing.T) {
	elapsed := func(cmtPages int) sim.Time {
		eng, arr := tinyArray(t, 1, 2)
		inner, err := NewPageFTL(arr, writeThroughConfig())
		if err != nil {
			t.Fatal(err)
		}
		d := NewDFTL(inner, cmtPages)
		rng := sim.NewRNG(7)
		start := eng.Now()
		for i := 0; i < 60; i++ {
			d.WriteLPN(rng.Int63n(d.Capacity()), nil, func(error) {})
			eng.Run()
		}
		return eng.Now() - start
	}
	small := elapsed(1)
	big := elapsed(64)
	if small <= big {
		t.Fatalf("thrashing CMT (%v) should be slower than large CMT (%v)", small, big)
	}
}

func TestDFTLErrorsPropagate(t *testing.T) {
	eng, arr := tinyArray(t, 1, 2)
	inner, err := NewPageFTL(arr, writeThroughConfig())
	if err != nil {
		t.Fatal(err)
	}
	d := NewDFTL(inner, 2)
	var gotErr error
	d.WriteLPN(d.Capacity()+1, nil, func(err error) { gotErr = err })
	eng.Run()
	if !errors.Is(gotErr, ErrLPNRange) {
		t.Fatalf("err = %v", gotErr)
	}
	if err := d.Trim(-1); !errors.Is(err, ErrLPNRange) {
		t.Fatalf("trim err = %v", err)
	}
}
