package ftl

// opQueue serializes the commands of the legacy FTLs. Block-mapped and
// hybrid controllers of the pre-2009 generation processed one command
// at a time — their merge state machines were not reentrant — so their
// simulated counterparts queue host commands the same way. (This is
// itself part of Myth 2's story: no internal concurrency to hide merge
// cost behind.)
type opQueue struct {
	busy bool
	q    []func(done func())
}

// run enqueues op; op receives a completion callback it must invoke
// exactly once. Ops execute strictly one at a time in FIFO order.
func (o *opQueue) run(op func(done func())) {
	o.q = append(o.q, op)
	if o.busy {
		return
	}
	o.busy = true
	o.step()
}

func (o *opQueue) step() {
	if len(o.q) == 0 {
		o.busy = false
		return
	}
	op := o.q[0]
	o.q = o.q[0:copy(o.q, o.q[1:])]
	op(func() { o.step() })
}
