// Package ftl implements the flash translation layer family the paper's
// Figure 2 describes — scheduling & mapping, garbage collection, and
// wear leveling over a shared flash array — in four generations:
//
//   - PageFTL: full page-level mapping with write-back buffering, the
//     "modern 2012 enterprise" design (random writes ≈ sequential);
//   - BlockFTL: pure block mapping (early flash devices);
//   - HybridFTL: FAST-style log blocks over block mapping, the pre-2009
//     consumer design whose random writes collapse (Myth 2);
//   - DFTL: page mapping with a demand-paged mapping cache (Gupta et
//     al., ASPLOS 2009), referenced directly by the paper.
//
// All of them drive an Array: channels × chips with real operation
// timing, so FTL policy differences surface as latency and bandwidth.
//
// # Garbage collection and the watermarks
//
// PageFTL collects per chip: when a chip's free-block pool drops below
// Config.GCLowWater, a GC loop picks victims (greedy or cost-benefit,
// Config.GCPolicy), evacuates their live pages to the chip's GC
// frontier and erases them, stopping at Config.GCHighWater.
// Config.GCReserve blocks per chip are allocatable only by GC itself,
// so cleaning can always make progress; host writes that outrun
// reclamation park on the chip and drain as space returns.
//
// # The peer interface: GC state up, GC control down
//
// The paper's replacement for the block contract is a pair of
// communicating peers, and this package carries both halves of that
// conversation for background collection:
//
//   - Device→host: SetGCNotifier reports every change in the number of
//     chips currently collecting or wear-leveling, so a host scheduler
//     (package sched) can steer latency-sensitive traffic around
//     relocation bursts. SetRelocationNotifier announces nameless-page
//     moves so a host that tracks physical addresses stays current.
//
//   - Host→device: DeferGC(deadline) leases a pause of background
//     collection and static wear leveling — the host shaping *when* the
//     device cleans. ResumeGC releases the lease early. The lease is
//     bounded by a hard floor (Config.GCDeferFloor, never below
//     GCReserve): a chip that reaches the floor, or accumulates parked
//     writes, collects regardless, and a device already at its floor
//     refuses the lease outright (GCUrgency reports that pressure as
//     relaxed/elevated/urgent). While a lease is active, collection
//     that is forced anyway stops at the low watermark instead of the
//     high one — reclaim to safety, then yield the LUNs back.
//
// GCCoord returns the coordination ledger (sessions granted, renewals,
// refusals, expiries, floor hits, minimum observed headroom) — the
// evidence experiments use to show the mechanism engaged and the floor
// held.
package ftl
