package ftl

import (
	"encoding/binary"
	"fmt"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Reverse-map sentinels.
const (
	rmapDead     int64 = -1 // physical page holds no live data
	rmapNameless int64 = -2 // physical page is live but host-addressed
)

// blockState tracks a physical block through its lifecycle.
type blockState uint8

const (
	blockFree blockState = iota
	blockOpen
	blockFull
	blockBad
)

// blockMeta is the FTL's bookkeeping for one physical block.
type blockMeta struct {
	state      blockState
	valid      int32
	writePtr   int32
	eraseCount int32
	lastWrite  sim.Time
}

// writeJob is a (possibly deferred) physical write request.
type writeJob struct {
	lpn  int64 // >= 0 logical, rmapNameless for nameless writes
	data []byte
	done func(ppa PPA, err error)
}

// chipState is per-chip allocation and GC state.
type chipState struct {
	free        []PBA
	open        PBA // host write frontier
	gcOpen      PBA // GC/wear-leveling destination frontier
	gcActive    bool
	pending     []writeJob // writes stalled waiting for reclaimed space
	erases      int64      // for periodic static-WL checks
	lastWLCheck int64      // erase count at the previous static-WL check
}

// Controller-internal latencies.
const (
	bufferHitLatency  = 2 * sim.Microsecond // RAM lookup + return path
	unmappedLatency   = 1 * sim.Microsecond // mapping miss answered from RAM
	bufferAckLatency  = 2 * sim.Microsecond // write-back ack once buffered
	staticWLCheckRate = 16                  // erases between static-WL checks
)

// PageFTL is a page-level mapped FTL: any logical page can live on any
// physical page, so the scheduler is free to stripe writes over chips —
// the design the paper credits for making random writes cheap (Myth 2)
// — with greedy or cost-benefit GC, dynamic and static wear leveling,
// and an optional battery-backed write-back buffer.
type PageFTL struct {
	eng *sim.Engine
	arr *Array
	cfg Config
	rng *sim.RNG

	capacity int64
	mapping  []PPA   // lpn -> ppa
	rmap     []int64 // ppa -> lpn | rmapDead | rmapNameless
	blocks   []blockMeta
	chips    []chipState

	buf      *writeBuffer
	relocate func(old, new PPA)    // nameless-page relocation notifier
	gcNotify func(activeChips int) // GC/wear-leveling activity notifier
	gcBusy   int                   // chips currently collecting

	// Host→device GC coordination (gccoord.go): while the virtual clock
	// is before gcDeferUntil, background GC stays parked on every chip
	// whose free pool is above deferFloor (blocks) with nothing pending.
	gcDeferUntil  sim.Time
	deferFloor    int
	deferFloorHit bool // this session already charged a ForcedResume
	coord         metrics.GCCoord
	evsink        obs.EventSink // health-event sink (floor hits, forced GC)
	evlabel       string

	inFlight     int64 // outstanding flash programs + GC copies
	flushWaiters []func()

	rr    int // round-robin tiebreaker for placement
	stats Stats
}

var _ FTL = (*PageFTL)(nil)

// NewPageFTL builds a page-mapped FTL over arr.
func NewPageFTL(arr *Array, cfg Config) (*PageFTL, error) {
	cfg.normalize()
	f := &PageFTL{
		eng:        arr.Engine(),
		arr:        arr,
		cfg:        cfg,
		rng:        sim.NewRNG(cfg.Seed),
		deferFloor: cfg.GCDeferFloor,
		coord:      metrics.NewGCCoord(),
	}
	total := arr.TotalPages()
	f.capacity = int64(float64(total) * (1 - cfg.OverProvision))
	f.mapping = make([]PPA, f.capacity)
	for i := range f.mapping {
		f.mapping[i] = InvalidPPA
	}
	f.rmap = make([]int64, total)
	for i := range f.rmap {
		f.rmap[i] = rmapDead
	}
	f.blocks = make([]blockMeta, arr.TotalBlocks())
	f.chips = make([]chipState, arr.Chips())
	blocksPerChip := arr.BlocksPerChip()
	for c := range f.chips {
		cs := &f.chips[c]
		cs.open, cs.gcOpen = InvalidPBA, InvalidPBA
		for b := int64(0); b < blocksPerChip; b++ {
			pba := PBA(int64(c)*blocksPerChip + b)
			_, baddr, err := arr.SplitPBA(pba)
			if err != nil {
				return nil, err
			}
			if arr.Chip(c).IsBad(baddr) {
				f.blocks[pba].state = blockBad
				continue
			}
			cs.free = append(cs.free, pba)
		}
		if len(cs.free) <= cfg.GCReserve+1 {
			return nil, fmt.Errorf("%w: chip %d has only %d usable blocks", ErrArrayGeometry, c, len(cs.free))
		}
	}
	if cfg.BufferPages > 0 {
		f.buf = newWriteBuffer(f, cfg.BufferPages, cfg.FlushFanout)
	}
	return f, nil
}

// Array returns the underlying flash fabric.
func (f *PageFTL) Array() *Array { return f.arr }

// Capacity reports the exported logical size in pages.
func (f *PageFTL) Capacity() int64 { return f.capacity }

// PageSize reports the page size in bytes.
func (f *PageFTL) PageSize() int { return f.arr.PageSize() }

// Stats returns a snapshot of the traffic counters.
func (f *PageFTL) Stats() Stats { return f.stats }

// SetRelocationNotifier registers the callback invoked when GC moves a
// nameless (host-addressed) page — the device-to-host half of the
// paper's "communicating peers" interface.
func (f *PageFTL) SetRelocationNotifier(fn func(old, new PPA)) { f.relocate = fn }

// SetGCNotifier registers the callback invoked whenever the number of
// chips running garbage collection or static wear leveling changes —
// the device-state half of the paper's communication abstraction, which
// a host-side scheduler (package sched) uses to keep latency-sensitive
// traffic ahead of background relocations.
func (f *PageFTL) SetGCNotifier(fn func(activeChips int)) { f.gcNotify = fn }

// GCActiveChips reports how many chips are collecting right now.
func (f *PageFTL) GCActiveChips() int { return f.gcBusy }

// setGCActive flips one chip's GC interlock and fires the notifier on
// every change, so the host sees relocation activity start and stop.
func (f *PageFTL) setGCActive(chip int, active bool) {
	cs := &f.chips[chip]
	if cs.gcActive == active {
		return
	}
	cs.gcActive = active
	if active {
		f.gcBusy++
	} else {
		f.gcBusy--
	}
	if f.gcNotify != nil {
		f.gcNotify(f.gcBusy)
	}
}

// BufferSafe reports whether the write buffer survives power loss
// (battery/capacitor backed). A device without a buffer is trivially
// safe but cannot stage atomic groups, so this reports false then.
func (f *PageFTL) BufferSafe() bool { return f.buf != nil && f.cfg.BufferSafe }

// DropVolatileBuffer models a power failure: with a volatile buffer the
// un-flushed writes vanish (their LPNs are returned, for tests); with a
// battery-backed buffer (Config.BufferSafe) nothing is lost. Part of the
// Myth 2/Myth 3 story: the write-back cache that makes writes fast is a
// durability liability unless it is made safe.
func (f *PageFTL) DropVolatileBuffer() []int64 {
	if f.buf == nil || f.cfg.BufferSafe {
		return nil
	}
	return f.buf.dropVolatile()
}

// oobFor encodes the owning LPN into OOB metadata, as real FTLs do to
// rebuild their mapping after power loss.
func oobFor(lpn int64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(lpn))
	return b[:]
}

func (f *PageFTL) checkLPN(lpn int64) error {
	if lpn < 0 || lpn >= f.capacity {
		return fmt.Errorf("%w: lpn %d, capacity %d", ErrLPNRange, lpn, f.capacity)
	}
	return nil
}

// ReadLPN implements FTL.
func (f *PageFTL) ReadLPN(lpn int64, done func([]byte, error)) {
	if err := f.checkLPN(lpn); err != nil {
		done(nil, err)
		return
	}
	f.stats.HostReads++
	if f.buf != nil {
		if data, ok := f.buf.get(lpn); ok {
			f.stats.BufferHits++
			f.eng.After(bufferHitLatency, func() { done(data, nil) })
			return
		}
	}
	ppa := f.mapping[lpn]
	if ppa == InvalidPPA {
		f.eng.After(unmappedLatency, func() { done(nil, nil) })
		return
	}
	f.readPhys(ppa, done)
}

// readPhys reads a physical page and applies ECC.
func (f *PageFTL) readPhys(ppa PPA, done func([]byte, error)) {
	f.arr.ReadPage(ppa, func(data, _ []byte, bitErrors int, err error) {
		if err != nil {
			done(nil, err)
			return
		}
		if _, eccErr := f.cfg.ECC.Decode(f.PageSize(), bitErrors, f.rng); eccErr != nil {
			f.stats.ReadErrors++
			done(nil, fmt.Errorf("%w: ppa %d: %v", ErrUncorrectable, ppa, eccErr))
			return
		}
		done(data, nil)
	})
}

// ReadPhys reads a physical page directly — the read half of the
// nameless-write interface. The caller owns address translation.
func (f *PageFTL) ReadPhys(ppa PPA, done func([]byte, error)) {
	f.stats.HostReads++
	f.readPhys(ppa, done)
}

// WriteLPN implements FTL.
func (f *PageFTL) WriteLPN(lpn int64, data []byte, done func(error)) {
	if err := f.checkLPN(lpn); err != nil {
		done(err)
		return
	}
	if data != nil && len(data) != f.PageSize() {
		done(fmt.Errorf("ftl: payload %d bytes, page is %d", len(data), f.PageSize()))
		return
	}
	f.stats.HostWrites++
	if f.buf != nil {
		f.buf.insert(lpn, data, done)
		return
	}
	f.writePhys(writeJob{lpn: lpn, data: data, done: func(_ PPA, err error) { done(err) }})
}

// WriteNameless writes a page the device places wherever it likes and
// returns the physical address to the host — the paper's §3 "nameless
// writes". The page participates in GC; relocations are announced via
// the relocation notifier.
func (f *PageFTL) WriteNameless(data []byte, done func(PPA, error)) {
	if data != nil && len(data) != f.PageSize() {
		done(InvalidPPA, fmt.Errorf("ftl: payload %d bytes, page is %d", len(data), f.PageSize()))
		return
	}
	f.stats.HostWrites++
	f.writePhys(writeJob{lpn: rmapNameless, data: data, done: done})
}

// Trim implements FTL: drops the logical mapping so GC never copies the
// page again.
func (f *PageFTL) Trim(lpn int64) error {
	if err := f.checkLPN(lpn); err != nil {
		return err
	}
	f.stats.HostTrims++
	if f.buf != nil {
		f.buf.drop(lpn)
	}
	if old := f.mapping[lpn]; old != InvalidPPA {
		f.mapping[lpn] = InvalidPPA
		f.invalidate(old)
	}
	return nil
}

// TrimPhys drops a nameless page by physical address.
func (f *PageFTL) TrimPhys(ppa PPA) error {
	if ppa < 0 || int64(ppa) >= f.arr.TotalPages() {
		return fmt.Errorf("%w: %d", ErrPPARange, ppa)
	}
	f.stats.HostTrims++
	if f.rmap[ppa] == rmapNameless {
		f.invalidate(ppa)
	}
	return nil
}

// Flush implements FTL: drains the write buffer and waits for all
// outstanding flash programs.
func (f *PageFTL) Flush(done func()) {
	if f.buf != nil {
		f.buf.drainAll()
	}
	if f.idle() {
		f.eng.After(0, done)
		return
	}
	f.flushWaiters = append(f.flushWaiters, done)
}

func (f *PageFTL) idle() bool {
	return f.inFlight == 0 && (f.buf == nil || f.buf.empty())
}

func (f *PageFTL) wakeFlushWaiters() {
	if len(f.flushWaiters) == 0 || !f.idle() {
		return
	}
	ws := f.flushWaiters
	f.flushWaiters = nil
	for _, w := range ws {
		w()
	}
}

// invalidate marks a physical page dead and decrements its block's
// valid count.
func (f *PageFTL) invalidate(ppa PPA) {
	if f.rmap[ppa] == rmapDead {
		return
	}
	f.rmap[ppa] = rmapDead
	f.blocks[f.arr.BlockOf(ppa)].valid--
}

// pickChip chooses the chip for a host write; ok is false when no chip
// can accept a write right now.
func (f *PageFTL) pickChip(lpn int64) (int, bool) {
	n := f.arr.Chips()
	if f.cfg.Placement == PlaceStatic && lpn >= 0 {
		return int(lpn % int64(n)), true
	}
	// Dynamic: chip with space whose LUN 0 frees earliest; round-robin
	// breaks ties so an idle array still stripes.
	best, bestAt := -1, sim.MaxTime
	for i := 0; i < n; i++ {
		c := (f.rr + i) % n
		if !f.hostSpace(c) {
			continue
		}
		at := f.arr.LUNFreeAt(c, 0)
		if at < bestAt {
			best, bestAt = c, at
		}
	}
	f.rr = (f.rr + 1) % n
	if best < 0 {
		return f.rr, false
	}
	return best, true
}

// headroomPages counts the free pages GC can still write into on a
// chip: whole free blocks plus the remainder of the GC frontier.
func (f *PageFTL) headroomPages(c int) int {
	cs := &f.chips[c]
	ppb := f.arr.PagesPerBlock()
	pages := len(cs.free) * ppb
	if cs.gcOpen != InvalidPBA {
		pages += ppb - int(f.blocks[cs.gcOpen].writePtr)
	}
	return pages
}

// hostSpace reports whether chip c can accept a host write now without
// eating into the headroom GC needs to keep reclaiming.
func (f *PageFTL) hostSpace(c int) bool {
	cs := &f.chips[c]
	if cs.open != InvalidPBA && int(f.blocks[cs.open].writePtr) < f.arr.PagesPerBlock() {
		return true
	}
	return f.headroomPages(c) >= (f.cfg.GCReserve+1)*f.arr.PagesPerBlock()
}

// writePhys routes a write job to a chip, possibly deferring it until GC
// reclaims space.
func (f *PageFTL) writePhys(job writeJob) {
	chip, ok := f.pickChip(job.lpn)
	if !ok && f.cfg.Placement != PlaceStatic {
		// No chip has immediate space: park the job where reclamation
		// can actually happen.
		f.reroute([]writeJob{job})
		return
	}
	f.writeOnChip(chip, job)
}

// reroute finds a home for jobs whose chip cannot reclaim space: first a
// chip with immediate room, then a chip whose GC is running or could
// run. Only when no chip anywhere holds reclaimable garbage do the jobs
// fail with ErrDeviceFull.
func (f *PageFTL) reroute(jobs []writeJob) {
	n := f.arr.Chips()
	for _, job := range jobs {
		placed := false
		for c := 0; c < n && !placed; c++ {
			if f.hostSpace(c) {
				f.writeOnChip(c, job)
				placed = true
			}
		}
		if placed {
			continue
		}
		for c := 0; c < n && !placed; c++ {
			cs := &f.chips[c]
			if cs.gcActive || f.pickVictim(c) != InvalidPBA {
				cs.pending = append(cs.pending, job)
				f.maybeStartGC(c)
				// GC may already be at its high watermark yet garbage
				// remains; force another pass for the parked job.
				if !cs.gcActive {
					f.setGCActive(c, true)
					f.gcStep(c)
				}
				placed = true
			}
		}
		// Emergency: no garbage anywhere, but frontier pages remain above
		// the GC evacuation floor. Writing there creates fresh garbage
		// (these are overwrites — the device is at logical capacity) and
		// restarts the reclamation cycle.
		for c := 0; c < n && !placed; c++ {
			if f.headroomPages(c) <= f.arr.PagesPerBlock() {
				continue
			}
			if ppa, ok := f.allocPage(c, true); ok {
				f.commitWrite(c, ppa, job)
				placed = true
			}
		}
		if !placed {
			job.done(InvalidPPA, fmt.Errorf("%w: all chips full of valid data", ErrDeviceFull))
		}
	}
}

func (f *PageFTL) writeOnChip(chip int, job writeJob) {
	ppa, ok := f.allocPage(chip, false)
	if !ok {
		cs := &f.chips[chip]
		if f.cfg.Placement == PlaceStatic || cs.gcActive || f.pickVictim(chip) != InvalidPBA {
			// Space will come back on this chip (or must, for static
			// placement): park the write here.
			cs.pending = append(cs.pending, job)
			f.maybeStartGC(chip)
			return
		}
		f.reroute([]writeJob{job})
		return
	}
	f.commitWrite(chip, ppa, job)
}

// commitWrite updates mapping state and issues the flash program.
func (f *PageFTL) commitWrite(chip int, ppa PPA, job writeJob) {
	blk := f.arr.BlockOf(ppa)
	if job.lpn >= 0 {
		if old := f.mapping[job.lpn]; old != InvalidPPA {
			f.invalidate(old)
		}
		f.mapping[job.lpn] = ppa
		f.rmap[ppa] = job.lpn
	} else {
		f.rmap[ppa] = rmapNameless
	}
	bm := &f.blocks[blk]
	bm.valid++
	bm.lastWrite = f.eng.Now()
	f.inFlight++
	f.arr.WritePage(ppa, job.data, oobFor(job.lpn), func(ok bool) {
		f.inFlight--
		if !ok {
			f.handleProgramFailure(chip, ppa, job)
			return
		}
		f.maybeStartGC(chip)
		job.done(ppa, nil)
		f.wakeFlushWaiters()
	})
}

// handleProgramFailure retires the block and relocates the write.
func (f *PageFTL) handleProgramFailure(chip int, ppa PPA, job writeJob) {
	blk := f.arr.BlockOf(ppa)
	// Undo the failed page's bookkeeping.
	if f.rmap[ppa] != rmapDead {
		f.rmap[ppa] = rmapDead
		f.blocks[blk].valid--
	}
	if job.lpn >= 0 && f.mapping[job.lpn] == ppa {
		f.mapping[job.lpn] = InvalidPPA
	}
	f.retireBlock(chip, blk)
	// Rewrite elsewhere.
	f.writeOnChip(f.pickChipExcept(chip, job.lpn), job)
}

func (f *PageFTL) pickChipExcept(except int, lpn int64) int {
	n := f.arr.Chips()
	if n == 1 {
		return 0
	}
	c, _ := f.pickChip(lpn)
	if c == except {
		c = (c + 1) % n
	}
	return c
}

// retireBlock marks a block bad after a program failure, moving any
// remaining valid pages out (the error management of Myth 1: the device
// must be able to redirect live data away from failing media).
func (f *PageFTL) retireBlock(chip int, blk PBA) {
	bm := &f.blocks[blk]
	if bm.state == blockBad {
		return
	}
	cs := &f.chips[chip]
	if cs.open == blk {
		cs.open = InvalidPBA
	}
	if cs.gcOpen == blk {
		cs.gcOpen = InvalidPBA
	}
	bm.state = blockBad
	_, baddr, err := f.arr.SplitPBA(blk)
	if err == nil {
		f.arr.Chip(chip).MarkBad(baddr)
	}
	// Relocate surviving valid pages.
	if bm.valid > 0 {
		f.evacuateBlock(chip, blk, 0, func() {})
	}
}

// allocPage hands out the next physical page on a chip frontier.
// forGC selects the GC frontier, which may dig into the reserve.
func (f *PageFTL) allocPage(chip int, forGC bool) (PPA, bool) {
	cs := &f.chips[chip]
	openPtr := &cs.open
	if forGC {
		openPtr = &cs.gcOpen
	}
	for {
		if *openPtr != InvalidPBA {
			bm := &f.blocks[*openPtr]
			if int(bm.writePtr) < f.arr.PagesPerBlock() {
				pg := int(bm.writePtr)
				bm.writePtr++
				ppa := f.arr.PPAOfBlock(*openPtr, pg)
				if int(bm.writePtr) == f.arr.PagesPerBlock() {
					bm.state = blockFull
					*openPtr = InvalidPBA
				}
				return ppa, true
			}
			bm.state = blockFull
			*openPtr = InvalidPBA
		}
		pba, ok := f.allocBlock(chip, forGC)
		if !ok {
			return InvalidPPA, false
		}
		*openPtr = pba
		f.blocks[pba].state = blockOpen
	}
}

// allocBlock pops the least-worn free block (dynamic wear leveling).
// Host allocations must leave GC a full reserve of headroom pages; GC
// allocations only need any free block at all.
func (f *PageFTL) allocBlock(chip int, forGC bool) (PBA, bool) {
	cs := &f.chips[chip]
	if len(cs.free) == 0 {
		return InvalidPBA, false
	}
	if !forGC && f.headroomPages(chip) < (f.cfg.GCReserve+1)*f.arr.PagesPerBlock() {
		return InvalidPBA, false
	}
	best := 0
	for i := 1; i < len(cs.free); i++ {
		if f.blocks[cs.free[i]].eraseCount < f.blocks[cs.free[best]].eraseCount {
			best = i
		}
	}
	pba := cs.free[best]
	cs.free[best] = cs.free[len(cs.free)-1]
	cs.free = cs.free[:len(cs.free)-1]
	return pba, true
}

// drainPending re-admits writes stalled on chip for want of space.
func (f *PageFTL) drainPending(chip int) {
	cs := &f.chips[chip]
	for len(cs.pending) > 0 && f.hostSpace(chip) {
		job := cs.pending[0]
		cs.pending = cs.pending[0:copy(cs.pending, cs.pending[1:])]
		f.writeOnChip(chip, job)
	}
}
