package ftl

import (
	"errors"

	"repro/internal/ecc"
)

// FTL-level errors.
var (
	// ErrLPNRange reports a logical page number beyond exported capacity.
	ErrLPNRange = errors.New("ftl: logical page out of range")
	// ErrDeviceFull reports exhaustion of writable space (GC could not
	// reclaim anything — the device is over-filled beyond its physical
	// capacity, which only happens on misconfiguration).
	ErrDeviceFull = errors.New("ftl: no writable space")
	// ErrUncorrectable reports a read whose raw bit errors exceeded the
	// ECC scheme.
	ErrUncorrectable = errors.New("ftl: uncorrectable read")
)

// FTL is the common contract of all translation layers: an asynchronous
// logical page store. All completion callbacks run in virtual time.
type FTL interface {
	// ReadLPN fetches a logical page. Reading a never-written page
	// yields a nil payload with no error (block devices read zeros).
	ReadLPN(lpn int64, done func(data []byte, err error))
	// WriteLPN stores a logical page. data may be nil for traffic-only
	// experiments; otherwise it must be exactly one page.
	WriteLPN(lpn int64, data []byte, done func(err error))
	// Trim declares a logical page unused (the ATA TRIM of the paper),
	// letting the FTL drop its mapping and skip copying it at GC time.
	Trim(lpn int64) error
	// Flush forces all buffered state durable; done fires when complete.
	Flush(done func())
	// Capacity reports the exported logical size in pages.
	Capacity() int64
	// PageSize reports the logical/physical page size in bytes.
	PageSize() int
	// Stats returns a snapshot of traffic counters.
	Stats() Stats
}

// GCPolicy selects the garbage-collection victim policy.
type GCPolicy int

// Victim selection policies.
const (
	// GCGreedy picks the block with the fewest valid pages.
	GCGreedy GCPolicy = iota
	// GCCostBenefit weighs reclaimable space against block age
	// (Rosenblum's cleaning heuristic), separating hot and cold data.
	GCCostBenefit
)

// Placement selects how writes are spread over chips.
type Placement int

// Placement policies.
const (
	// PlaceDynamic lets the scheduler put each write on the chip whose
	// LUN frees earliest — the freedom the paper says page mapping buys.
	PlaceDynamic Placement = iota
	// PlaceStatic stripes by logical address (lpn modulo chips), the
	// placement a host would impose through a chip-exposing interface —
	// used to reproduce the paper's "bimodal FTL" self-criticism (E4).
	PlaceStatic
)

// Stats counts FTL traffic. Flash-level counters live on the Array; the
// ratio of flash programs to host page writes is the write
// amplification.
type Stats struct {
	HostReads    int64
	HostWrites   int64
	HostTrims    int64
	BufferHits   int64 // reads served from the write buffer
	BufferStalls int64 // host writes that waited for buffer space
	GCMoves      int64 // valid pages relocated by GC
	GCErases     int64
	WearMoves    int64 // pages moved by static wear leveling
	MergeOps     int64 // block/hybrid FTL full-merge operations
	SwitchMerges int64 // hybrid FTL switch merges (cheap remaps)
	MapReads     int64 // DFTL translation-page reads
	MapWrites    int64 // DFTL translation-page write-backs
	ReadErrors   int64 // uncorrectable reads
}

// Option tuning shared by FTL implementations.
type Config struct {
	// OverProvision is the fraction of physical pages hidden from the
	// logical capacity (enterprise 2012 parts: 0.07–0.28).
	OverProvision float64
	// GCLowWater starts GC when a chip's free-block count drops below
	// it; GCHighWater stops GC once reached.
	GCLowWater, GCHighWater int
	// GCReserve blocks per chip are allocatable only by GC, so cleaning
	// can always proceed.
	GCReserve int
	// GCDeferFloor is the hard floor of host→device GC deferral
	// (gccoord.go), in free blocks per chip: a chip at or below it
	// collects even while the host holds a deferral session. Zero means
	// GCReserve; values below the reserve are raised to it, and
	// GCLowWater is raised if needed so the floor always sits strictly
	// below it — deferral may spend the discretionary headroom between
	// the low watermark and the floor, never the reserve itself.
	GCDeferFloor int
	// GCPolicy selects the victim policy.
	GCPolicy GCPolicy
	// Placement selects the write-scheduling policy.
	Placement Placement
	// BufferPages sizes the controller write-back buffer; 0 means
	// write-through (no buffer).
	BufferPages int
	// BufferSafe marks the buffer battery-backed: contents survive
	// Crash. High-end 2012 SSDs; consumer buffers are volatile.
	BufferSafe bool
	// FlushFanout bounds concurrent buffer-flush programs (0 = #chips).
	FlushFanout int
	// ECC is the correction scheme applied to every flash read.
	ECC ecc.Scheme
	// StaticWearThreshold triggers static wear leveling when the
	// erase-count spread within a chip exceeds it (0 disables).
	StaticWearThreshold int
	// Seed drives ECC error placement sampling.
	Seed uint64
}

// DefaultConfig is a sane 2012 page-mapped configuration.
func DefaultConfig() Config {
	return Config{
		OverProvision:       0.07,
		GCLowWater:          4,
		GCHighWater:         8,
		GCReserve:           2,
		GCPolicy:            GCGreedy,
		Placement:           PlaceDynamic,
		BufferPages:         1024,
		BufferSafe:          true,
		ECC:                 ecc.BCH8Per512,
		StaticWearThreshold: 0,
		Seed:                1,
	}
}

func (c *Config) normalize() {
	if c.GCLowWater < 2 {
		c.GCLowWater = 2
	}
	if c.GCReserve < 1 {
		c.GCReserve = 1
	}
	if c.GCDeferFloor < c.GCReserve {
		c.GCDeferFloor = c.GCReserve
	}
	// The floor must sit strictly below the low watermark: a floor at
	// or above it would make every chip cycling at the watermarks read
	// as urgent, silently refusing all deferral. Raise the low
	// watermark rather than lower the floor — the floor is a safety
	// bound.
	if c.GCLowWater <= c.GCDeferFloor {
		c.GCLowWater = c.GCDeferFloor + 1
	}
	if c.GCHighWater <= c.GCLowWater {
		c.GCHighWater = c.GCLowWater + 2
	}
	if c.OverProvision < 0 {
		c.OverProvision = 0
	}
	if c.OverProvision > 0.5 {
		c.OverProvision = 0.5
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// WriteAmplification reports flash programs per host page write for an
// FTL over array arr. On-chip copybacks program a page too, so they
// count.
func WriteAmplification(f FTL, arr *Array) float64 {
	s := f.Stats()
	if s.HostWrites == 0 {
		return 0
	}
	return float64(arr.PagePrograms+arr.CopyBacks) / float64(s.HostWrites)
}
