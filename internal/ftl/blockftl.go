package ftl

import (
	"fmt"

	"repro/internal/sim"
)

// BlockFTL is a pure block-mapped translation layer, the cheapest FTL of
// the earliest flash devices: one mapping entry per logical *block*, and
// a page's offset inside its block is fixed. Overwriting any page forces
// a read-modify-write of the whole block (a "full merge"): copy the
// still-valid pages plus the new page into a fresh block, remap, erase
// the old block. Sequential writes fill blocks in order and only pay a
// cheap remap ("switch merge"); random writes pay a merge per write —
// the pathology behind Myth 2's "random writes are very costly".
type BlockFTL struct {
	eng *sim.Engine
	arr *Array

	ops opQueue

	capacity   int64   // exported pages
	lbnToPbn   []PBA   // logical block -> physical block
	written    []bool  // logical slot holds live data
	burned     []bool  // physical slot of the mapped block is programmed
	freeBlocks [][]PBA // per chip
	rr         int

	stats Stats
}

var _ FTL = (*BlockFTL)(nil)

// NewBlockFTL builds a block-mapped FTL over arr. A small fraction of
// blocks is held back as merge scratch space. The chips must support
// random page programming (the old parts these FTLs shipped with).
func NewBlockFTL(arr *Array, overProvision float64) (*BlockFTL, error) {
	if !arr.Spec().SupportsRandomProgram {
		return nil, fmt.Errorf("%w: block mapping needs random-page-program chips", ErrArrayGeometry)
	}
	if overProvision < 0.05 {
		overProvision = 0.05
	}
	if overProvision > 0.5 {
		overProvision = 0.5
	}
	f := &BlockFTL{eng: arr.Engine(), arr: arr}
	totalBlocks := arr.TotalBlocks()
	exported := int64(float64(totalBlocks) * (1 - overProvision))
	f.capacity = exported * int64(arr.PagesPerBlock())
	f.lbnToPbn = make([]PBA, exported)
	for i := range f.lbnToPbn {
		f.lbnToPbn[i] = InvalidPBA
	}
	f.written = make([]bool, f.capacity)
	f.burned = make([]bool, f.capacity)
	f.freeBlocks = make([][]PBA, arr.Chips())
	for c := 0; c < arr.Chips(); c++ {
		for b := int64(0); b < arr.BlocksPerChip(); b++ {
			pba := PBA(int64(c)*arr.BlocksPerChip() + b)
			_, baddr, err := arr.SplitPBA(pba)
			if err != nil {
				return nil, err
			}
			if arr.Chip(c).IsBad(baddr) {
				continue
			}
			f.freeBlocks[c] = append(f.freeBlocks[c], pba)
		}
		if len(f.freeBlocks[c]) < 2 {
			return nil, fmt.Errorf("%w: chip %d unusable", ErrArrayGeometry, c)
		}
	}
	return f, nil
}

// Capacity implements FTL.
func (f *BlockFTL) Capacity() int64 { return f.capacity }

// PageSize implements FTL.
func (f *BlockFTL) PageSize() int { return f.arr.PageSize() }

// Stats implements FTL.
func (f *BlockFTL) Stats() Stats { return f.stats }

// Flush implements FTL (block FTLs hold no volatile state).
func (f *BlockFTL) Flush(done func()) { f.eng.After(0, done) }

func (f *BlockFTL) split(lpn int64) (lbn int64, off int) {
	return lpn / int64(f.arr.PagesPerBlock()), int(lpn % int64(f.arr.PagesPerBlock()))
}

func (f *BlockFTL) checkLPN(lpn int64) error {
	if lpn < 0 || lpn >= f.capacity {
		return fmt.Errorf("%w: lpn %d, capacity %d", ErrLPNRange, lpn, f.capacity)
	}
	return nil
}

// ReadLPN implements FTL. Commands execute one at a time (see opQueue).
func (f *BlockFTL) ReadLPN(lpn int64, done func([]byte, error)) {
	if err := f.checkLPN(lpn); err != nil {
		done(nil, err)
		return
	}
	f.ops.run(func(next func()) {
		f.readLPN(lpn, func(d []byte, err error) {
			done(d, err)
			next()
		})
	})
}

func (f *BlockFTL) readLPN(lpn int64, done func([]byte, error)) {
	f.stats.HostReads++
	lbn, off := f.split(lpn)
	pbn := f.lbnToPbn[lbn]
	if pbn == InvalidPBA || !f.written[lpn] {
		f.eng.After(unmappedLatency, func() { done(nil, nil) })
		return
	}
	f.arr.ReadPage(f.arr.PPAOfBlock(pbn, off), func(data, _ []byte, _ int, err error) {
		done(data, err)
	})
}

// allocBlock takes a free block from the chip with the most headroom.
func (f *BlockFTL) allocBlock(preferred int) (PBA, bool) {
	n := f.arr.Chips()
	for i := 0; i < n; i++ {
		c := (preferred + i) % n
		if len(f.freeBlocks[c]) > 0 {
			fb := f.freeBlocks[c]
			pba := fb[len(fb)-1]
			f.freeBlocks[c] = fb[:len(fb)-1]
			return pba, true
		}
	}
	return InvalidPBA, false
}

func (f *BlockFTL) freeBlock(pba PBA) {
	c := f.arr.ChipOfBlock(pba)
	f.freeBlocks[c] = append(f.freeBlocks[c], pba)
}

// WriteLPN implements FTL. Three cases:
//
//  1. the logical block is unmapped: allocate a block, program the page;
//  2. the target page slot is still erased and no later slot is written
//     (in-order fill): program in place;
//  3. otherwise: full merge.
func (f *BlockFTL) WriteLPN(lpn int64, data []byte, done func(err error)) {
	if err := f.checkLPN(lpn); err != nil {
		done(err)
		return
	}
	if data != nil && len(data) != f.PageSize() {
		done(fmt.Errorf("ftl: payload %d bytes, page is %d", len(data), f.PageSize()))
		return
	}
	f.ops.run(func(next func()) {
		f.writeLPN(lpn, data, func(err error) {
			done(err)
			next()
		})
	})
}

func (f *BlockFTL) writeLPN(lpn int64, data []byte, done func(err error)) {
	f.stats.HostWrites++
	lbn, off := f.split(lpn)
	pbn := f.lbnToPbn[lbn]
	chipHint := int(lbn) % f.arr.Chips()
	if pbn == InvalidPBA {
		newPbn, ok := f.allocBlock(chipHint)
		if !ok {
			done(fmt.Errorf("%w: no free blocks", ErrDeviceFull))
			return
		}
		f.lbnToPbn[lbn] = newPbn
		f.programInto(newPbn, lbn, off, data, done)
		return
	}
	if f.canProgramInPlace(pbn, lbn, off) {
		f.programInto(pbn, lbn, off, data, done)
		return
	}
	f.fullMerge(pbn, lbn, off, data, done)
}

// canProgramInPlace reports whether page off of the mapped block is
// still erased (these chips program pages in any order, so that is the
// only requirement).
func (f *BlockFTL) canProgramInPlace(pbn PBA, lbn int64, off int) bool {
	return !f.burned[lbn*int64(f.arr.PagesPerBlock())+int64(off)]
}

func (f *BlockFTL) programInto(pbn PBA, lbn int64, off int, data []byte, done func(error)) {
	lpn := lbn*int64(f.arr.PagesPerBlock()) + int64(off)
	f.written[lpn] = true
	f.burned[lpn] = true
	f.arr.WritePage(f.arr.PPAOfBlock(pbn, off), data, oobFor(lpn), func(ok bool) {
		if !ok {
			done(fmt.Errorf("ftl: program failure at block %d", pbn))
			return
		}
		done(nil)
	})
}

// fullMerge rewrites a whole logical block to fold in one new page: the
// random-write pathology. It reads every other valid page of the old
// block, programs them plus the new page into a fresh block, remaps, and
// erases the old block.
func (f *BlockFTL) fullMerge(oldPbn PBA, lbn int64, off int, data []byte, done func(error)) {
	f.stats.MergeOps++
	newPbn, ok := f.allocBlock(f.arr.ChipOfBlock(oldPbn))
	if !ok {
		done(fmt.Errorf("%w: no merge block", ErrDeviceFull))
		return
	}
	base := lbn * int64(f.arr.PagesPerBlock())
	f.lbnToPbn[lbn] = newPbn
	f.written[base+int64(off)] = true

	// Snapshot which source slots must move before rewriting burn state.
	move := make([]bool, f.arr.PagesPerBlock())
	for p := 0; p < f.arr.PagesPerBlock(); p++ {
		move[p] = p != off && f.written[base+int64(p)] && f.burned[base+int64(p)]
		f.burned[base+int64(p)] = p == off || move[p]
	}

	var step func(p int)
	step = func(p int) {
		if p >= f.arr.PagesPerBlock() {
			f.arr.EraseBlock(oldPbn, func(ok bool) {
				if ok {
					f.freeBlock(oldPbn)
				}
				done(nil)
			})
			return
		}
		dst := f.arr.PPAOfBlock(newPbn, p)
		if p == off {
			f.arr.WritePage(dst, data, oobFor(base+int64(p)), func(bool) { step(p + 1) })
			return
		}
		if !move[p] {
			step(p + 1)
			return
		}
		f.arr.CopyPage(f.arr.PPAOfBlock(oldPbn, p), dst, func(bool) { step(p + 1) })
	}
	step(0)
}

// Trim implements FTL. Block mapping can only drop whole logical blocks;
// trimming a single page just clears its written bit (and the block is
// reclaimed when every page is trimmed).
func (f *BlockFTL) Trim(lpn int64) error {
	if err := f.checkLPN(lpn); err != nil {
		return err
	}
	f.stats.HostTrims++
	f.written[lpn] = false
	lbn, _ := f.split(lpn)
	base := lbn * int64(f.arr.PagesPerBlock())
	for p := 0; p < f.arr.PagesPerBlock(); p++ {
		if f.written[base+int64(p)] {
			return nil
		}
	}
	// Whole block dead: unmap and erase it lazily.
	if pbn := f.lbnToPbn[lbn]; pbn != InvalidPBA {
		f.lbnToPbn[lbn] = InvalidPBA
		for p := 0; p < f.arr.PagesPerBlock(); p++ {
			f.burned[base+int64(p)] = false
		}
		f.arr.EraseBlock(pbn, func(ok bool) {
			if ok {
				f.freeBlock(pbn)
			}
		})
	}
	return nil
}
