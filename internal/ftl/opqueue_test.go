package ftl

import "testing"

func TestOpQueueRunsInFIFOOrder(t *testing.T) {
	var q opQueue
	var order []int
	var dones []func()
	for i := 0; i < 5; i++ {
		i := i
		q.run(func(done func()) {
			order = append(order, i)
			dones = append(dones, done)
		})
	}
	// Only the first op may have started; the rest wait for completions.
	if len(order) != 1 || order[0] != 0 {
		t.Fatalf("started %v, want just op 0", order)
	}
	for len(dones) > 0 {
		d := dones[0]
		dones = dones[1:]
		d()
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("execution order %v, want FIFO", order)
		}
	}
	if len(order) != 5 {
		t.Fatalf("ran %d ops, want 5", len(order))
	}
}

func TestOpQueueSerializesOps(t *testing.T) {
	var q opQueue
	running := 0
	maxRunning := 0
	var finish []func()
	for i := 0; i < 8; i++ {
		q.run(func(done func()) {
			running++
			if running > maxRunning {
				maxRunning = running
			}
			finish = append(finish, func() {
				running--
				done()
			})
		})
	}
	for len(finish) > 0 {
		f := finish[0]
		finish = finish[1:]
		f()
	}
	if maxRunning != 1 {
		t.Fatalf("max concurrent ops %d, want 1 (legacy controllers are not reentrant)", maxRunning)
	}
}

func TestOpQueueIdlesAndRestarts(t *testing.T) {
	var q opQueue
	ran := 0
	sync := func(done func()) {
		ran++
		done()
	}
	q.run(sync)
	if q.busy {
		t.Fatal("queue still busy after synchronous op drained")
	}
	q.run(sync)
	q.run(sync)
	if ran != 3 {
		t.Fatalf("ran %d ops, want 3", ran)
	}
	if q.busy || len(q.q) != 0 {
		t.Fatal("queue must be idle and empty after draining")
	}
}

func TestOpQueueReentrantEnqueue(t *testing.T) {
	var q opQueue
	var order []string
	q.run(func(done func()) {
		order = append(order, "outer")
		// An op enqueueing another op (merge state machines do this)
		// must not recurse into it; it runs after the outer completes.
		q.run(func(inner func()) {
			order = append(order, "inner")
			inner()
		})
		order = append(order, "outer-end")
		done()
	})
	want := []string{"outer", "outer-end", "inner"}
	if len(order) != len(want) {
		t.Fatalf("order %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}
