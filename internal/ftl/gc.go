package ftl

import "fmt"

// This file implements garbage collection and static wear leveling for
// PageFTL — the Figure 2 modules whose traffic "interferes with the IOs
// submitted by the applications" because it shares the same LUNs and
// channels.

// maybeStartGC kicks the per-chip GC loop when the free pool drops below
// the low watermark — unless the host holds a deferral session and this
// chip still has discretionary headroom above the defer floor
// (gccoord.go), in which case collection stays parked until the session
// ends or the floor forces the issue.
func (f *PageFTL) maybeStartGC(chip int) {
	cs := &f.chips[chip]
	if cs.gcActive || len(cs.free) >= f.cfg.GCLowWater {
		return
	}
	if f.deferredNow(chip) {
		return
	}
	f.setGCActive(chip, true)
	f.gcStep(chip)
}

// gcStep reclaims one victim block, then reschedules itself until the
// stop watermark is met (the high watermark normally, the low one while
// the host is deferring GC).
func (f *PageFTL) gcStep(chip int) {
	cs := &f.chips[chip]
	if len(cs.free) >= f.gcStopWater(chip) {
		f.setGCActive(chip, false)
		f.drainPending(chip)
		f.maybeStaticWL(chip)
		return
	}
	victim := f.pickVictim(chip)
	if victim == InvalidPBA {
		// Nothing reclaimable on this chip right now. Under pressure,
		// hand parked writes the GC frontier itself (down to the floor
		// one worst-case victim evacuation needs): overwrites create
		// fresh garbage, which restarts the reclamation cycle.
		floor := f.arr.PagesPerBlock()
		for len(cs.pending) > 0 && f.headroomPages(chip) > floor {
			job := cs.pending[0]
			cs.pending = cs.pending[0:copy(cs.pending, cs.pending[1:])]
			ppa, ok := f.allocPage(chip, true)
			if !ok {
				cs.pending = append([]writeJob{job}, cs.pending...)
				break
			}
			f.commitWrite(chip, ppa, job)
		}
		f.setGCActive(chip, false)
		jobs := cs.pending
		cs.pending = nil
		if len(jobs) > 0 {
			f.reroute(jobs)
		}
		return
	}
	f.evacuateBlock(chip, victim, 0, func() {
		f.eraseAndFree(chip, victim, func() { f.gcStep(chip) })
	})
}

// pickVictim selects the next GC victim on a chip, or InvalidPBA when no
// block would yield free space.
func (f *PageFTL) pickVictim(chip int) PBA {
	blocksPerChip := f.arr.BlocksPerChip()
	start := PBA(int64(chip) * blocksPerChip)
	pagesPerBlock := int32(f.arr.PagesPerBlock())
	now := f.eng.Now()

	best := InvalidPBA
	var bestScore float64
	for b := start; b < start+PBA(blocksPerChip); b++ {
		bm := &f.blocks[b]
		if bm.state != blockFull || bm.valid >= pagesPerBlock {
			continue
		}
		var score float64
		switch f.cfg.GCPolicy {
		case GCCostBenefit:
			// Rosenblum/Ousterhout: benefit/cost = (1-u)*age / (1+u).
			u := float64(bm.valid) / float64(pagesPerBlock)
			age := float64(now-bm.lastWrite) + 1
			score = (1 - u) * age / (1 + u)
		default: // GCGreedy: fewest valid pages wins.
			score = float64(pagesPerBlock - bm.valid)
		}
		if best == InvalidPBA || score > bestScore {
			best, bestScore = b, score
		}
	}
	return best
}

// evacuateBlock copies the valid pages of victim (from page index pg
// onward) to the chip's GC frontier, then calls done.
func (f *PageFTL) evacuateBlock(chip int, victim PBA, pg int, done func()) {
	pagesPerBlock := f.arr.PagesPerBlock()
	for ; pg < pagesPerBlock; pg++ {
		src := f.arr.PPAOfBlock(victim, pg)
		owner := f.rmap[src]
		if owner == rmapDead {
			continue
		}
		dst, ok := f.allocPage(chip, true)
		if !ok {
			panic(fmt.Sprintf("ftl: GC starved of reserve blocks on chip %d: %v", chip, ErrDeviceFull))
		}
		f.stats.GCMoves++
		f.inFlight++
		next := pg + 1
		f.arr.CopyPage(src, dst, func(ok bool) {
			f.inFlight--
			f.finishMove(src, dst, owner, ok)
			f.evacuateBlock(chip, victim, next, done)
			f.wakeFlushWaiters()
		})
		return
	}
	done()
}

// finishMove commits (or discards) one GC page move. The page may have
// been overwritten or trimmed by the host while the copy was in flight,
// in which case the destination is garbage.
func (f *PageFTL) finishMove(src, dst PPA, owner int64, ok bool) {
	dstBlk := f.arr.BlockOf(dst)
	if !ok {
		// Program failure at the destination: retire that block; source
		// stays live and a later GC pass will retry it.
		f.retireBlock(f.arr.ChipOf(dst), dstBlk)
		return
	}
	if f.rmap[src] != owner {
		// Died in flight: leave dst dead.
		f.rmap[dst] = rmapDead
		return
	}
	f.rmap[src] = rmapDead
	f.blocks[f.arr.BlockOf(src)].valid--
	f.rmap[dst] = owner
	bm := &f.blocks[dstBlk]
	bm.valid++
	bm.lastWrite = f.eng.Now()
	if owner >= 0 {
		f.mapping[owner] = dst
	} else if owner == rmapNameless && f.relocate != nil {
		f.relocate(src, dst)
	}
}

// eraseAndFree erases a fully-evacuated block and returns it to the free
// pool.
func (f *PageFTL) eraseAndFree(chip int, victim PBA, done func()) {
	bm := &f.blocks[victim]
	if bm.valid != 0 {
		panic(fmt.Sprintf("ftl: erasing block %d with %d valid pages", victim, bm.valid))
	}
	f.stats.GCErases++
	f.inFlight++
	f.arr.EraseBlock(victim, func(ok bool) {
		f.inFlight--
		cs := &f.chips[chip]
		if !ok {
			bm.state = blockBad
		} else {
			bm.state = blockFree
			bm.writePtr = 0
			bm.eraseCount++
			cs.free = append(cs.free, victim)
			cs.erases++
		}
		f.drainPending(chip)
		done()
		f.wakeFlushWaiters()
	})
}

// maybeStaticWL runs static wear leveling: when the erase-count spread
// on a chip exceeds the threshold, the coldest full block is forcibly
// rewritten so its barely-worn cells rejoin the allocation pool.
func (f *PageFTL) maybeStaticWL(chip int) {
	if f.cfg.StaticWearThreshold <= 0 {
		return
	}
	if f.gcDeferUntil > f.eng.Now() {
		// Static wear leveling is the most discretionary background work
		// there is: a host deferral session parks it outright (it resumes
		// with the first post-session GC pass).
		return
	}
	cs := &f.chips[chip]
	if cs.gcActive || cs.erases-cs.lastWLCheck < staticWLCheckRate {
		return
	}
	cs.lastWLCheck = cs.erases
	blocksPerChip := f.arr.BlocksPerChip()
	start := PBA(int64(chip) * blocksPerChip)
	var coldest PBA = InvalidPBA
	minEC, maxEC := int32(1<<30), int32(-1)
	for b := start; b < start+PBA(blocksPerChip); b++ {
		bm := &f.blocks[b]
		if bm.state == blockBad {
			continue
		}
		if bm.eraseCount > maxEC {
			maxEC = bm.eraseCount
		}
		if bm.state == blockFull && bm.eraseCount < minEC {
			minEC = bm.eraseCount
			coldest = b
		}
	}
	if coldest == InvalidPBA || int(maxEC-minEC) <= f.cfg.StaticWearThreshold {
		return
	}
	f.setGCActive(chip, true) // reuse the GC interlock
	moved := f.blocks[coldest].valid
	f.evacuateBlock(chip, coldest, 0, func() {
		f.stats.WearMoves += int64(moved)
		f.eraseAndFree(chip, coldest, func() {
			f.setGCActive(chip, false)
			f.drainPending(chip)
		})
	})
}
