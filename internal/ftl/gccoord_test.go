package ftl

import (
	"testing"

	"repro/internal/sim"
)

// coordConfig is a write-through config with room between the low
// watermark (3) and the defer floor (the reserve, 1): deferral has a
// real suppression zone (free = 2) before the floor forces collection.
func coordConfig() Config {
	cfg := writeThroughConfig()
	cfg.GCLowWater = 3
	cfg.GCHighWater = 5
	return cfg
}

// fillSeq writes lpns [0, n) once, so later overwrites create garbage.
func fillSeq(t *testing.T, eng *sim.Engine, f *PageFTL, n int64) {
	t.Helper()
	for lpn := int64(0); lpn < n; lpn++ {
		mustWrite(t, eng, f, lpn, byte(lpn))
	}
}

// submitWrites queues n overwrites of lpns drawn by pick without
// running the engine (a DeferGC deadline arms a timer, so running to
// idle between writes would fast-forward straight past the session).
// It returns counters the write callbacks settle once the engine runs.
func submitWrites(f *PageFTL, n int, pick func(i int) int64) (completed *int, firstErr *error) {
	completed, firstErr = new(int), new(error)
	for i := 0; i < n; i++ {
		f.WriteLPN(pick(i), pageData(f.PageSize(), byte(i)), func(err error) {
			*completed++
			if err != nil && *firstErr == nil {
				*firstErr = err
			}
		})
	}
	return completed, firstErr
}

// TestGCDeferralStopsAtFloorUnderPressure is the safety property of the
// host→device half: a host that holds a deferral and keeps writing
// cannot starve the device. The floor forces collection, every write
// completes (no ErrDeviceFull), and the observed headroom never drops
// below the GC reserve.
func TestGCDeferralStopsAtFloorUnderPressure(t *testing.T) {
	cfg := coordConfig()
	eng, f := newTinyFTL(t, cfg)
	span := int64(64)
	fillSeq(t, eng, f, span)

	if !f.DeferGC(eng.Now() + sim.Second) {
		t.Fatal("DeferGC refused on a healthy device")
	}
	// Sustained random overwrites under the deferral: far more write
	// traffic than the free pools can absorb without collecting.
	rng := sim.NewRNG(7)
	completed, firstErr := submitWrites(f, 300, func(int) int64 { return rng.Int63n(span) })
	eng.Run()

	if *firstErr != nil {
		t.Fatalf("write failed under deferral pressure: %v", *firstErr)
	}
	if *completed != 300 {
		t.Fatalf("completed %d of 300 writes — deferral starved the device", *completed)
	}
	coord := f.GCCoord()
	if coord.Defers != 1 {
		t.Fatalf("Defers = %d, want 1", coord.Defers)
	}
	if coord.FloorHits == 0 || coord.ForcedResumes == 0 {
		t.Fatalf("floor never engaged under pressure: %+v", coord)
	}
	ppb := f.Array().PagesPerBlock()
	if coord.MinHeadroomPages < cfg.GCReserve*ppb {
		t.Errorf("deferral starved the free pool below the reserve: min headroom %d pages, reserve %d pages",
			coord.MinHeadroomPages, cfg.GCReserve*ppb)
	}
	if f.Stats().GCErases == 0 {
		t.Error("no GC erases despite floor hits — forced collection never reclaimed")
	}
	// Every page must still read back (the device stayed consistent
	// through forced collection).
	for lpn := int64(0); lpn < span; lpn++ {
		if mustRead(t, eng, f, lpn) == nil {
			t.Fatalf("lpn %d vanished", lpn)
		}
	}
}

// TestGCDeferralParksAndExpires drives chips below the low watermark
// while a deferral session is active — collection must stay parked —
// then lets the deadline lapse and checks that GC resumed on its own.
func TestGCDeferralParksAndExpires(t *testing.T) {
	eng, f := newTinyFTL(t, coordConfig())
	span := int64(64)
	fillSeq(t, eng, f, span)
	if got := f.Stats().GCErases; got != 0 {
		t.Fatalf("GC ran during the plain fill (erases = %d); the fixture needs a quiet start", got)
	}

	deadline := eng.Now() + 50*sim.Millisecond
	if !f.DeferGC(deadline) {
		t.Fatal("DeferGC refused")
	}
	// Enough overwrites to pull chips below the low watermark, few
	// enough to stay above the floor. They finish in a few virtual
	// milliseconds, well before the deadline.
	completed, firstErr := submitWrites(f, 24, func(i int) int64 { return int64(i) })
	// Probe just before the deadline: the session must still be parked.
	var erasesBefore int64
	var activeBefore, deferredBefore = -1, false
	eng.Schedule(deadline-sim.Millisecond, func() {
		erasesBefore = f.Stats().GCErases
		activeBefore = f.GCActiveChips()
		deferredBefore = f.GCDeferred()
	})
	eng.Run()

	if *firstErr != nil || *completed != 24 {
		t.Fatalf("writes: %d/24 completed, err %v", *completed, *firstErr)
	}
	if !deferredBefore {
		t.Fatal("session not active just before the deadline")
	}
	if erasesBefore != 0 || activeBefore != 0 {
		t.Fatalf("GC ran during an honored deferral (erases %d, active chips %d)", erasesBefore, activeBefore)
	}
	coord := f.GCCoord()
	if coord.MinHeadroomPages < 0 {
		t.Fatal("no chip consulted the deferral — the overwrites never created GC pressure")
	}
	if coord.FloorHits != 0 {
		t.Fatalf("floor hit during the parked phase (%+v); fixture writes too heavy", coord)
	}
	if coord.Expires != 1 {
		t.Fatalf("Expires = %d, want 1 (coord %+v)", coord.Expires, coord)
	}
	if f.GCDeferred() {
		t.Fatal("still deferred after the deadline")
	}
	if f.Stats().GCErases == 0 {
		t.Fatal("GC never resumed after the deadline expired")
	}
}

// TestGCResumeReleasesEarly is the cooperative path: the host releases
// the deferral before the deadline and collection starts immediately.
func TestGCResumeReleasesEarly(t *testing.T) {
	eng, f := newTinyFTL(t, coordConfig())
	span := int64(64)
	fillSeq(t, eng, f, span)

	deadline := eng.Now() + sim.Second
	if !f.DeferGC(deadline) {
		t.Fatal("DeferGC refused")
	}
	completed, firstErr := submitWrites(f, 24, func(i int) int64 { return int64(i) })
	resumeAt := eng.Now() + 20*sim.Millisecond
	var erasesAtResume int64 = -1
	eng.Schedule(resumeAt, func() {
		erasesAtResume = f.Stats().GCErases
		f.ResumeGC()
	})
	eng.Run()

	if *firstErr != nil || *completed != 24 {
		t.Fatalf("writes: %d/24 completed, err %v", *completed, *firstErr)
	}
	if erasesAtResume != 0 {
		t.Fatalf("GC erased %d blocks before the host resumed", erasesAtResume)
	}
	if f.GCDeferred() {
		t.Fatal("still deferred after ResumeGC")
	}
	if f.Stats().GCErases == 0 {
		t.Fatal("GC never ran after ResumeGC")
	}
	if coord := f.GCCoord(); coord.Expires != 0 {
		t.Fatalf("resumed session also counted as expired: %+v", coord)
	}
}

// TestGCDeferRenewalAccounting checks the lease bookkeeping: covered
// deadlines are free, later deadlines renew, past deadlines are
// rejected outright.
func TestGCDeferRenewalAccounting(t *testing.T) {
	eng, f := newTinyFTL(t, coordConfig())
	now := eng.Now()
	if f.DeferGC(now) {
		t.Fatal("a deadline in the past must be refused")
	}
	if !f.DeferGC(now + sim.Millisecond) {
		t.Fatal("fresh defer refused")
	}
	if !f.DeferGC(now + sim.Millisecond/2) {
		t.Fatal("a covered (earlier) deadline is a no-op success")
	}
	if !f.DeferGC(now + 2*sim.Millisecond) {
		t.Fatal("renewal refused")
	}
	coord := f.GCCoord()
	if coord.Defers != 1 || coord.Renewals != 1 {
		t.Fatalf("Defers/Renewals = %d/%d, want 1/1", coord.Defers, coord.Renewals)
	}
	if !f.GCDeferred() {
		t.Fatal("not deferred after granted leases")
	}
	eng.Run() // both expiry timers fire; only the final one expires the session
	coord = f.GCCoord()
	if coord.Expires != 1 {
		t.Fatalf("Expires = %d, want exactly 1", coord.Expires)
	}
	if f.GCDeferred() {
		t.Fatal("still deferred after expiry")
	}
}
