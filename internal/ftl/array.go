package ftl

import (
	"errors"
	"fmt"

	"repro/internal/bus"
	"repro/internal/nand"
	"repro/internal/sim"
)

// Array errors.
var (
	// ErrArrayGeometry reports inconsistent array construction.
	ErrArrayGeometry = errors.New("ftl: invalid array geometry")
	// ErrPPARange reports a physical page address outside the array.
	ErrPPARange = errors.New("ftl: physical page address out of range")
)

// PPA is a flat physical page address across the whole array.
type PPA int64

// InvalidPPA marks an unmapped or discarded page.
const InvalidPPA PPA = -1

// PBA is a flat physical block address across the whole array.
type PBA int64

// InvalidPBA marks no-block.
const InvalidPBA PBA = -1

// Array is the physical flash fabric: nChannels channels, each with
// chipsPerChannel chips, all of one spec. It provides timed composite
// operations (channel transfer + chip array op) and flat physical
// addressing.
type Array struct {
	eng      *sim.Engine
	spec     nand.Spec
	channels []*bus.Channel
	chips    []*nand.Chip // chip i sits on channel i / chipsPerChannel... see chanOf
	perChan  int

	pagesPerChip  int64
	blocksPerChip int64
	pagesPerBlock int64

	// Counters for traffic accounting (write amplification etc.).
	PageReads    int64
	PagePrograms int64
	BlockErases  int64
	CopyBacks    int64
}

// ArrayConfig sizes an array.
type ArrayConfig struct {
	Channels        int
	ChipsPerChannel int
	Chip            nand.Spec
	Channel         bus.Config
}

// NewArray builds the fabric on eng. seed drives per-chip reliability
// randomness; pass rngSeed 0 to disable wear/error randomness entirely
// (fully deterministic content experiments).
func NewArray(eng *sim.Engine, cfg ArrayConfig, rngSeed uint64) (*Array, error) {
	if cfg.Channels <= 0 || cfg.ChipsPerChannel <= 0 {
		return nil, fmt.Errorf("%w: %d channels x %d chips", ErrArrayGeometry, cfg.Channels, cfg.ChipsPerChannel)
	}
	if err := cfg.Chip.Geometry.Validate(); err != nil {
		return nil, err
	}
	a := &Array{
		eng:     eng,
		spec:    cfg.Chip,
		perChan: cfg.ChipsPerChannel,
	}
	g := cfg.Chip.Geometry
	a.pagesPerChip = int64(g.PagesPerChip())
	a.blocksPerChip = int64(g.BlocksPerChip())
	a.pagesPerBlock = int64(g.PagesPerBlock)
	for c := 0; c < cfg.Channels; c++ {
		ch, err := bus.NewChannel(eng, fmt.Sprintf("ch%d", c), cfg.Channel)
		if err != nil {
			return nil, err
		}
		a.channels = append(a.channels, ch)
		for k := 0; k < cfg.ChipsPerChannel; k++ {
			var rng *sim.RNG
			if rngSeed != 0 {
				rng = sim.NewRNG(rngSeed + uint64(c*cfg.ChipsPerChannel+k)*0x9e37)
			}
			chip, err := nand.NewChip(eng, cfg.Chip, rng, fmt.Sprintf("ch%d.chip%d", c, k))
			if err != nil {
				return nil, err
			}
			a.chips = append(a.chips, chip)
		}
	}
	return a, nil
}

// Engine returns the simulation engine.
func (a *Array) Engine() *sim.Engine { return a.eng }

// Spec returns the chip parameterization.
func (a *Array) Spec() nand.Spec { return a.spec }

// Chips reports the number of chips.
func (a *Array) Chips() int { return len(a.chips) }

// Channels reports the number of channels.
func (a *Array) Channels() int { return len(a.channels) }

// Chip returns chip i.
func (a *Array) Chip(i int) *nand.Chip { return a.chips[i] }

// Channel returns channel i.
func (a *Array) Channel(i int) *bus.Channel { return a.channels[i] }

// ChannelOf returns the channel serving chip i.
func (a *Array) ChannelOf(chip int) *bus.Channel { return a.channels[chip/a.perChan] }

// PageSize returns the page size in bytes.
func (a *Array) PageSize() int { return a.spec.Geometry.PageSize }

// PagesPerBlock returns pages per block.
func (a *Array) PagesPerBlock() int { return int(a.pagesPerBlock) }

// TotalPages reports all data pages in the array.
func (a *Array) TotalPages() int64 { return a.pagesPerChip * int64(len(a.chips)) }

// TotalBlocks reports all blocks in the array.
func (a *Array) TotalBlocks() int64 { return a.blocksPerChip * int64(len(a.chips)) }

// BlocksPerChip reports blocks in one chip.
func (a *Array) BlocksPerChip() int64 { return a.blocksPerChip }

// MakePPA builds a flat PPA from chip index and chip-local address.
func (a *Array) MakePPA(chip int, addr nand.Addr) PPA {
	g := a.spec.Geometry
	idx := ((int64(addr.LUN)*int64(g.PlanesPerLUN)+int64(addr.Plane))*int64(g.BlocksPerPlane)+int64(addr.Block))*a.pagesPerBlock + int64(addr.Page)
	return PPA(int64(chip)*a.pagesPerChip + idx)
}

// SplitPPA decomposes a flat PPA.
func (a *Array) SplitPPA(p PPA) (chip int, addr nand.Addr, err error) {
	if p < 0 || int64(p) >= a.TotalPages() {
		return 0, nand.Addr{}, fmt.Errorf("%w: %d", ErrPPARange, p)
	}
	g := a.spec.Geometry
	chip = int(int64(p) / a.pagesPerChip)
	idx := int64(p) % a.pagesPerChip
	addr.Page = int(idx % a.pagesPerBlock)
	idx /= a.pagesPerBlock
	addr.Block = int(idx % int64(g.BlocksPerPlane))
	idx /= int64(g.BlocksPerPlane)
	addr.Plane = int(idx % int64(g.PlanesPerLUN))
	addr.LUN = int(idx / int64(g.PlanesPerLUN))
	return chip, addr, nil
}

// MakePBA builds a flat block address.
func (a *Array) MakePBA(chip int, b nand.BlockAddr) PBA {
	g := a.spec.Geometry
	idx := (int64(b.LUN)*int64(g.PlanesPerLUN)+int64(b.Plane))*int64(g.BlocksPerPlane) + int64(b.Block)
	return PBA(int64(chip)*a.blocksPerChip + idx)
}

// SplitPBA decomposes a flat block address.
func (a *Array) SplitPBA(b PBA) (chip int, addr nand.BlockAddr, err error) {
	if b < 0 || int64(b) >= a.TotalBlocks() {
		return 0, nand.BlockAddr{}, fmt.Errorf("%w: block %d", ErrPPARange, b)
	}
	g := a.spec.Geometry
	chip = int(int64(b) / a.blocksPerChip)
	idx := int64(b) % a.blocksPerChip
	addr.Block = int(idx % int64(g.BlocksPerPlane))
	idx /= int64(g.BlocksPerPlane)
	addr.Plane = int(idx % int64(g.PlanesPerLUN))
	addr.LUN = int(idx / int64(g.PlanesPerLUN))
	return chip, addr, nil
}

// PPAOfBlock returns the PPA of page pg within block b.
func (a *Array) PPAOfBlock(b PBA, pg int) PPA {
	chip, addr, err := a.SplitPBA(b)
	if err != nil {
		return InvalidPPA
	}
	return a.MakePPA(chip, nand.Addr{LUN: addr.LUN, Plane: addr.Plane, Block: addr.Block, Page: pg})
}

// BlockOf returns the block containing PPA p.
func (a *Array) BlockOf(p PPA) PBA {
	chip, addr, err := a.SplitPPA(p)
	if err != nil {
		return InvalidPBA
	}
	return a.MakePBA(chip, addr.BlockAddr())
}

// ChipOf returns the chip index of a PPA.
func (a *Array) ChipOf(p PPA) int { return int(int64(p) / a.pagesPerChip) }

// ChipOfBlock returns the chip index of a PBA.
func (a *Array) ChipOfBlock(b PBA) int { return int(int64(b) / a.blocksPerChip) }

// ReadPage performs a timed page read: LUN busy for tR, then the data
// moves across the chip's channel. done receives payload, OOB, the raw
// bit-error count (for the ECC layer), and any chip error.
func (a *Array) ReadPage(p PPA, done func(data, oob []byte, bitErrors int, err error)) {
	a.readPage(p, "read", "xfer-out", done)
}

// readPage is ReadPage with explicit LUN and channel occupancy labels,
// so GC relocation traffic attributes to its own cause.
func (a *Array) readPage(p PPA, lunLabel, chanLabel string, done func(data, oob []byte, bitErrors int, err error)) {
	chip, addr, err := a.SplitPPA(p)
	if err != nil {
		done(nil, nil, 0, err)
		return
	}
	a.PageReads++
	ch := a.ChannelOf(chip)
	rerr := a.chips[chip].ReadAs(addr, lunLabel, func(res nand.ReadResult, rerr error) {
		if rerr != nil {
			done(nil, nil, 0, rerr)
			return
		}
		ch.TransferFrom(a.eng.Now(), a.PageSize(), chanLabel, func(_, _ sim.Time) {
			done(res.Data, res.OOB, res.BitErrors, nil)
		})
	})
	if rerr != nil {
		done(nil, nil, 0, rerr)
	}
}

// WritePage performs a timed page program: data crosses the channel,
// then the LUN is busy for tPROG, with the program chained behind the
// transfer. done receives ok=false on a wear-induced program failure.
// Constraint violations (C2/C3) indicate FTL bugs and panic.
func (a *Array) WritePage(p PPA, data, oob []byte, done func(ok bool)) {
	a.writePage(p, data, oob, "prog", "xfer-in", done)
}

// writePage is WritePage with explicit LUN and channel occupancy labels
// (see readPage).
func (a *Array) writePage(p PPA, data, oob []byte, lunLabel, chanLabel string, done func(ok bool)) {
	chip, addr, err := a.SplitPPA(p)
	if err != nil {
		panic(fmt.Sprintf("ftl: WritePage: %v", err))
	}
	a.PagePrograms++
	ch := a.ChannelOf(chip)
	xferEnd := ch.Transfer(a.PageSize(), chanLabel, nil)
	if perr := a.chips[chip].ProgramFromAs(xferEnd, addr, data, oob, lunLabel, done); perr != nil {
		panic(fmt.Sprintf("ftl: program %v: %v", addr, perr))
	}
}

// EraseBlock performs a timed erase: a command cycle on the channel,
// then the LUN busy for tBERS.
func (a *Array) EraseBlock(b PBA, done func(ok bool)) {
	chip, addr, err := a.SplitPBA(b)
	if err != nil {
		panic(fmt.Sprintf("ftl: EraseBlock: %v", err))
	}
	a.BlockErases++
	ch := a.ChannelOf(chip)
	cmdEnd := ch.Command("erase-cmd", nil)
	if eerr := a.chips[chip].EraseFrom(cmdEnd, addr, done); eerr != nil {
		panic(fmt.Sprintf("ftl: erase %v: %v", addr, eerr))
	}
}

// CopyPage moves one page src -> dst. When both live in the same plane
// of the same chip it uses on-chip copyback (no channel occupancy);
// otherwise it reads across the channel and programs across the
// destination channel. done receives ok=false on program failure.
func (a *Array) CopyPage(src, dst PPA, done func(ok bool)) {
	sc, saddr, err := a.SplitPPA(src)
	if err != nil {
		panic(fmt.Sprintf("ftl: CopyPage src: %v", err))
	}
	dc, daddr, err := a.SplitPPA(dst)
	if err != nil {
		panic(fmt.Sprintf("ftl: CopyPage dst: %v", err))
	}
	if sc == dc && saddr.LUN == daddr.LUN && saddr.Plane == daddr.Plane {
		a.CopyBacks++
		if cerr := a.chips[sc].CopyBack(saddr, daddr, done); cerr != nil {
			panic(fmt.Sprintf("ftl: copyback %v->%v: %v", saddr, daddr, cerr))
		}
		return
	}
	// The cross-plane fallback moves the page over the channels like any
	// host I/O would, but it is housekeeping: label the LUN and channel
	// occupancy as GC copy so resource attribution (obs.Profiler) splits
	// relocation traffic from the host's. Every CopyPage caller is a
	// GC/merge/relocation path.
	a.readPage(src, "gc-read", "gc-xfer-out", func(data, oob []byte, _ int, rerr error) {
		if rerr != nil {
			done(false)
			return
		}
		a.writePage(dst, data, oob, "gc-prog", "gc-xfer-in", done)
	})
}

// SetTimingScale applies a service-time drift to every chip in the
// array (see nand.Chip.SetTimingScale): the fabric-wide aging knob
// experiments use to slow a device mid-run and watch the host's
// calibration follow.
func (a *Array) SetTimingScale(read, program, erase float64) {
	for _, c := range a.chips {
		c.SetTimingScale(read, program, erase)
	}
}

// LUNFreeAt reports when the LUN holding PPA p frees up — the signal the
// write scheduler uses to pick the least-busy chip.
func (a *Array) LUNFreeAt(chip, lun int) sim.Time {
	return a.chips[chip].LUNServer(lun).FreeAt()
}
