package ftl

import (
	"container/list"

	"repro/internal/sim"
)

// DFTL wraps a PageFTL with a demand-paged mapping table (Gupta et al.,
// ASPLOS 2009 — cited by the paper as the way controllers afford page
// mapping without controller RAM for the full map). Mapping lookups hit
// a cached mapping table (CMT); misses charge a flash read of the
// translation page, and evicting a dirty CMT entry charges a flash
// program. Translation traffic shares the same chips and channels as
// data, so a cold mapping cache is visible as extra latency.
type DFTL struct {
	inner *PageFTL

	entriesPerPage int64 // mapping entries per translation page
	capacity       int   // CMT capacity in translation pages

	lru   *list.List // front = most recent; values are int64 tpns
	index map[int64]*list.Element
	dirty map[int64]bool
}

var _ FTL = (*DFTL)(nil)

// NewDFTL builds a DFTL view over a PageFTL. cmtPages is how many
// translation pages fit in controller RAM (each covers
// pageSize/8 logical pages).
func NewDFTL(inner *PageFTL, cmtPages int) *DFTL {
	if cmtPages < 1 {
		cmtPages = 1
	}
	return &DFTL{
		inner:          inner,
		entriesPerPage: int64(inner.PageSize() / 8),
		capacity:       cmtPages,
		lru:            list.New(),
		index:          make(map[int64]*list.Element),
		dirty:          make(map[int64]bool),
	}
}

// Inner returns the wrapped PageFTL.
func (d *DFTL) Inner() *PageFTL { return d.inner }

// Capacity implements FTL.
func (d *DFTL) Capacity() int64 { return d.inner.Capacity() }

// PageSize implements FTL.
func (d *DFTL) PageSize() int { return d.inner.PageSize() }

// Stats implements FTL: translation counters live on the inner stats.
func (d *DFTL) Stats() Stats { return d.inner.stats }

// Flush implements FTL.
func (d *DFTL) Flush(done func()) { d.inner.Flush(done) }

// Trim implements FTL.
func (d *DFTL) Trim(lpn int64) error {
	if err := d.inner.checkLPN(lpn); err != nil {
		return err
	}
	if _, ok := d.index[lpn/d.entriesPerPage]; ok {
		d.dirty[lpn/d.entriesPerPage] = true
	}
	return d.inner.Trim(lpn)
}

// ReadLPN implements FTL: translation first, then the data read.
func (d *DFTL) ReadLPN(lpn int64, done func([]byte, error)) {
	if err := d.inner.checkLPN(lpn); err != nil {
		done(nil, err)
		return
	}
	d.ensure(lpn, false, func() { d.inner.ReadLPN(lpn, done) })
}

// WriteLPN implements FTL: the translation page becomes dirty.
func (d *DFTL) WriteLPN(lpn int64, data []byte, done func(error)) {
	if err := d.inner.checkLPN(lpn); err != nil {
		done(err)
		return
	}
	d.ensure(lpn, true, func() { d.inner.WriteLPN(lpn, data, done) })
}

// ensure loads the translation page covering lpn into the CMT, charging
// flash traffic on miss, then runs next.
func (d *DFTL) ensure(lpn int64, write bool, next func()) {
	tpn := lpn / d.entriesPerPage
	if el, ok := d.index[tpn]; ok {
		d.lru.MoveToFront(el)
		if write {
			d.dirty[tpn] = true
		}
		next()
		return
	}
	evict := func(then func()) { then() }
	if d.lru.Len() >= d.capacity {
		tail := d.lru.Back()
		victim := tail.Value.(int64)
		d.lru.Remove(tail)
		delete(d.index, victim)
		if d.dirty[victim] {
			delete(d.dirty, victim)
			evict = func(then func()) { d.chargeTransWrite(victim, then) }
		}
	}
	evict(func() {
		d.chargeTransRead(tpn, func() {
			d.index[tpn] = d.lru.PushFront(tpn)
			if write {
				d.dirty[tpn] = true
			}
			next()
		})
	})
}

// transChip spreads translation pages round-robin over chips.
func (d *DFTL) transChip(tpn int64) int {
	return int(tpn % int64(d.inner.arr.Chips()))
}

// chargeTransRead occupies the chip and channel like a real page read of
// the translation page.
func (d *DFTL) chargeTransRead(tpn int64, done func()) {
	d.inner.stats.MapReads++
	arr := d.inner.arr
	chip := d.transChip(tpn)
	spec := arr.Spec()
	lun := arr.Chip(chip).LUNServer(0)
	ch := arr.ChannelOf(chip)
	lun.Use(spec.Timing.ReadPage, "map-read", func(_, end sim.Time) {
		ch.TransferFrom(end, arr.PageSize(), "map-xfer", func(_, _ sim.Time) { done() })
	})
}

// chargeTransWrite occupies the channel and chip like a real page
// program of a dirty translation page.
func (d *DFTL) chargeTransWrite(tpn int64, done func()) {
	d.inner.stats.MapWrites++
	arr := d.inner.arr
	chip := d.transChip(tpn)
	spec := arr.Spec()
	lun := arr.Chip(chip).LUNServer(0)
	ch := arr.ChannelOf(chip)
	end := ch.Transfer(arr.PageSize(), "map-xfer", nil)
	lun.UseFrom(end, spec.Timing.ProgramPage, "map-prog", func(_, _ sim.Time) { done() })
}
