package serve

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// AutoscaleConfig bounds the fabric's SLO controller. The controller
// is the actuation half of the control plane at the serving boundary:
// it reads each shard's interval deadline-miss and reject rates (the
// same ShardStats the experiments print) and walks that shard's worker
// pool and admission token rate inside these bounds — capacity follows
// the observed SLO instead of a provisioning guess.
type AutoscaleConfig struct {
	// Enabled turns the controller on.
	Enabled bool
	// Interval is the control period (zero = 5ms). Each tick looks only
	// at the interval's delta counters, so old sins age out.
	Interval sim.Time
	// MinWorkers and MaxWorkers bound the per-shard worker pool (zeros
	// mean 1 and 4 × WorkersPerShard).
	MinWorkers, MaxWorkers int
	// MissHigh and MissLow are the deadband on the interval miss rate:
	// above MissHigh the controller adds capacity (or sheds load at the
	// worker ceiling), below MissLow it may return capacity. Inside the
	// band it does nothing — a steady workload must not make a steady
	// controller fidget. Zeros mean 0.10 and 0.02.
	MissHigh, MissLow float64
	// RateStep is the multiplicative step for admission-rate walks
	// (zero = 1.25). MinRate and MaxRate bound the walked rate (zeros
	// mean 1/4 and 4 × Admission.Rate); with no admission rate
	// configured the controller leaves rates alone.
	RateStep         float64
	MinRate, MaxRate float64
	// Cooldown is how many intervals the controller holds a shard after
	// changing it (zero = 2): every actuation must be observed through
	// at least one full interval before the next, which is what keeps a
	// marginal shard from flapping between two sizes.
	Cooldown int
}

// Autoscaler drives the per-shard control loop. Its counters are the
// oscillation evidence experiments quote: a converging controller
// shows a short burst of walks and then silence.
// The per-shard state is keyed by the shard, not its position: live
// migration (package place) grows and shrinks the fabric's shard list
// mid-run, and a positional snapshot would drift — or index out of
// range — the first time a replica is grafted in or retired.
type Autoscaler struct {
	fab  *Fabric
	cfg  AutoscaleConfig
	prev map[*Shard]metrics.ShardCounters // last tick's counter snapshot
	hold map[*Shard]int                   // cooldown intervals remaining

	// Grows/Shrinks count worker-pool walks; RateUps/RateDowns count
	// admission-rate walks; Ticks counts control periods.
	Grows, Shrinks, RateUps, RateDowns, Ticks int64
}

// newAutoscaler applies defaults against the fabric's (already
// defaulted) config.
func newAutoscaler(f *Fabric, cfg AutoscaleConfig) *Autoscaler {
	if cfg.Interval <= 0 {
		cfg.Interval = 5 * sim.Millisecond
	}
	if cfg.MinWorkers < 1 {
		cfg.MinWorkers = 1
	}
	if cfg.MaxWorkers <= 0 {
		cfg.MaxWorkers = 4 * f.cfg.WorkersPerShard
	}
	if cfg.MaxWorkers < cfg.MinWorkers {
		cfg.MaxWorkers = cfg.MinWorkers
	}
	if cfg.MissHigh <= 0 {
		cfg.MissHigh = 0.10
	}
	if cfg.MissLow <= 0 {
		cfg.MissLow = 0.02
	}
	if cfg.RateStep <= 1 {
		cfg.RateStep = 1.25
	}
	if base := f.cfg.Admission.Rate; base > 0 {
		if cfg.MinRate <= 0 {
			cfg.MinRate = base / 4
		}
		if cfg.MaxRate <= 0 {
			cfg.MaxRate = base * 4
		}
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 2
	}
	return &Autoscaler{
		fab:  f,
		cfg:  cfg,
		prev: make(map[*Shard]metrics.ShardCounters, len(f.shards)),
		hold: make(map[*Shard]int, len(f.shards)),
	}
}

// Config reports the controller's bounds after defaulting.
func (a *Autoscaler) Config() AutoscaleConfig { return a.cfg }

// forget drops a retired shard's controller state (called by
// Fabric.Retire, so recurring migrations cannot grow the maps).
func (a *Autoscaler) forget(sh *Shard) {
	delete(a.prev, sh)
	delete(a.hold, sh)
}

// Walks sums every actuation the controller ever made — the number an
// oscillation check bounds.
func (a *Autoscaler) Walks() int64 { return a.Grows + a.Shrinks + a.RateUps + a.RateDowns }

// run is the controller process: one tick per interval until the
// fabric stops.
func (a *Autoscaler) run(p *sim.Proc) {
	for !a.fab.stopped {
		p.Sleep(a.cfg.Interval)
		if a.fab.stopped {
			return
		}
		if a.fab.crashing {
			continue // never rescale a fabric mid-recovery
		}
		a.Ticks++
		for _, sh := range append([]*Shard(nil), a.fab.shards...) {
			a.tickShard(sh)
		}
	}
}

// tickShard makes one control decision for one shard from its interval
// delta counters.
func (a *Autoscaler) tickShard(sh *Shard) {
	if sh.retired {
		return
	}
	cur := *sh.stats
	d := cur
	p := a.prev[sh]
	d.Submitted -= p.Submitted
	d.Served -= p.Served
	d.Rejected -= p.Rejected
	d.DeadlineMissed -= p.DeadlineMissed
	a.prev[sh] = cur

	if a.hold[sh] > 0 {
		a.hold[sh]--
		return
	}
	if d.Submitted < 0 || d.Served < 0 || d.Rejected < 0 || d.DeadlineMissed < 0 {
		// The counters were reset under us (Fabric.ResetStats after a
		// warm-up): the snapshot above resynced, but this interval's
		// deltas describe the discarded epoch — never a control input.
		return
	}
	if d.Served == 0 {
		return // nothing observed; nothing to conclude
	}
	miss := float64(d.DeadlineMissed) / float64(d.Served)
	var rej float64
	if d.Submitted > 0 {
		rej = float64(d.Rejected) / float64(d.Submitted)
	}
	switch {
	case miss > a.cfg.MissHigh:
		// The SLO is failing: add serving capacity, and once the pool is
		// at its ceiling shed load at admission instead — a smaller "yes"
		// beats a late one.
		if sh.target < a.cfg.MaxWorkers {
			sh.setWorkers(sh.target + 1)
			a.Grows++
			a.hold[sh] = a.cfg.Cooldown
			a.fab.emitAutoscale(sh, fmt.Sprintf("grew workers to %d (miss %.0f%%)", sh.target, 100*miss), float64(sh.target))
		} else if sh.rate > 0 && sh.rate > a.cfg.MinRate {
			next := sh.rate / a.cfg.RateStep
			if next < a.cfg.MinRate {
				next = a.cfg.MinRate
			}
			sh.setRate(next)
			a.RateDowns++
			a.hold[sh] = a.cfg.Cooldown
			a.fab.emitAutoscale(sh, fmt.Sprintf("cut admission rate to %.0f/s (miss %.0f%%)", next, 100*miss), next)
		}
	case miss < a.cfg.MissLow:
		// The SLO has slack. First hand back admission headroom that an
		// earlier tick took (rejects with a healthy SLO mean the gate,
		// not the shard, is the bottleneck); only then consider
		// shrinking, and only a provably idle pool — an empty queue at
		// the tick and fewer interval serves than one worker could do.
		if sh.rate > 0 && rej > 0.05 && sh.rate < a.cfg.MaxRate {
			next := sh.rate * a.cfg.RateStep
			if next > a.cfg.MaxRate {
				next = a.cfg.MaxRate
			}
			sh.setRate(next)
			a.RateUps++
			a.hold[sh] = a.cfg.Cooldown
			a.fab.emitAutoscale(sh, fmt.Sprintf("raised admission rate to %.0f/s (rej %.0f%%)", next, 100*rej), next)
		} else if sh.target > a.cfg.MinWorkers && sh.qn == 0 && rej == 0 {
			sh.setWorkers(sh.target - 1)
			a.Shrinks++
			a.hold[sh] = a.cfg.Cooldown
			a.fab.emitAutoscale(sh, fmt.Sprintf("shrank workers to %d", sh.target), float64(sh.target))
		}
	}
}

// Table renders the controller's end state and walk counts, one row
// per shard plus the event totals.
func (a *Autoscaler) Table(title string) *metrics.Table {
	t := metrics.NewTable(title, "shard", "workers", "rate (req/s)")
	for _, sh := range a.fab.shards {
		t.AddRow(sh.name, sh.target, fmt.Sprintf("%.0f", sh.rate))
	}
	t.AddRow("walks", fmt.Sprintf("+%d/-%d", a.Grows, a.Shrinks),
		fmt.Sprintf("+%d/-%d", a.RateUps, a.RateDowns))
	return t
}
