package serve

import (
	"testing"

	"repro/internal/sim"
)

// TestFrontendRoutingSpreadsKeys: the hash router must give every
// shard a meaningful slice of the key space at 1, 4 and 16 shards —
// no empty shard, no shard further than 2x from the fair share.
func TestFrontendRoutingSpreadsKeys(t *testing.T) {
	for _, shards := range []int{1, 4, 16} {
		shards := shards
		withFabric(t, baseConfig(shards), func(p *sim.Proc, f *Fabric) {
			const keys = 4096
			fe := NewFrontend(f, keys, 32)
			counts := make(map[*Shard]int)
			for i := int64(0); i < keys; i++ {
				tgt := fe.TargetFor(fe.Key(i))
				sh, ok := tgt.(*Shard)
				if !ok {
					t.Fatalf("default router target is %T, want *Shard", tgt)
				}
				if again := fe.TargetFor(fe.Key(i)); again != tgt {
					t.Fatalf("key %d routed to two targets", i)
				}
				if sh != fe.ShardFor(fe.Key(i)) {
					t.Fatalf("key %d: TargetFor and ShardFor disagree", i)
				}
				counts[sh]++
			}
			if len(counts) != shards {
				t.Fatalf("%d shards reached, want %d", len(counts), shards)
			}
			fair := keys / shards
			for _, sh := range f.Shards() {
				got := counts[sh]
				if got < fair/2 || got > 2*fair {
					t.Errorf("%d shards: %s got %d keys, fair share %d (outside [1/2, 2]x)",
						shards, sh.Name(), got, fair)
				}
			}
		})
	}
}

// TestFrontendRoutingStableAcrossReopen: a key's shard assignment must
// survive a whole-fabric crash and reopen — the shards' stores are
// rebuilt, but the routing table (and so the key→region mapping the
// preloaded data depends on) cannot move.
func TestFrontendRoutingStableAcrossReopen(t *testing.T) {
	cfg := baseConfig(4)
	withFabric(t, cfg, func(p *sim.Proc, f *Fabric) {
		const keys = 256
		fe := NewFrontend(f, keys, 32)
		if err := fe.Preload(p); err != nil {
			t.Fatalf("preload: %v", err)
		}
		before := make([]int, keys)
		for i := int64(0); i < keys; i++ {
			before[i] = fe.ShardFor(fe.Key(i)).Index()
		}
		if err := f.Crash(p); err != nil {
			t.Fatalf("crash: %v", err)
		}
		for i := int64(0); i < keys; i++ {
			sh := fe.ShardFor(fe.Key(i))
			if sh.Index() != before[i] {
				t.Fatalf("key %d moved from shard %d to %d across reopen", i, before[i], sh.Index())
			}
			// And the reopened shard really holds the key it is routed
			// for — assignment stability is what makes recovery find the
			// data where the router sends the reads.
			if _, err := sh.System().Store.Get(p, fe.Key(i)); err != nil {
				t.Fatalf("key %d missing from its shard after reopen: %v", i, err)
			}
		}
	})
}
