package serve

import (
	"errors"
	"fmt"

	"repro/internal/blockdev"
	"repro/internal/kvstore"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/pcm"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/ssd"
)

// Package errors.
var (
	// ErrRejected reports a request refused at shard admission (queue
	// full or token bucket empty).
	ErrRejected = errors.New("serve: admission rejected")
	// ErrStopped reports a request arriving at, or abandoned by, a
	// stopped fabric.
	ErrStopped = errors.New("serve: fabric stopped")
	// ErrCrashed reports a request lost to a fabric crash (queued at the
	// moment of power loss, or arriving during recovery). Unlike
	// ErrStopped, serving resumes: clients should back off and retry.
	ErrCrashed = errors.New("serve: request lost to fabric crash")
	// ErrDeviceDown reports a request routed at a shard whose device has
	// died (KillDevice). The shard never serves again; replica groups
	// (package place) drop it and serve degraded from the survivors.
	ErrDeviceDown = errors.New("serve: device down")
)

// AdmissionConfig bounds a shard's request queue. The zero value
// disables admission control (requests backlog without limit — the
// baseline E16 measures against).
type AdmissionConfig struct {
	// Enabled turns admission control on.
	Enabled bool
	// QueueLimit is the per-shard queued-request bound; arrivals past it
	// are rejected immediately. Zero means 64.
	QueueLimit int
	// LatencyDeadline and ThroughputDeadline are the per-class
	// completion targets: a served request whose end-to-end time exceeds
	// its class deadline counts as a deadline miss. Zeros mean 2ms and
	// 20ms.
	LatencyDeadline    sim.Time
	ThroughputDeadline sim.Time
	// Rate caps per-shard admitted throughput (requests/sec) with a
	// token bucket of Burst tokens; an empty bucket rejects immediately
	// rather than queueing. Zero Rate means uncapped.
	Rate  float64
	Burst int
	// Adaptive derives admission from the observed service-time
	// distribution instead of the static constants above: each class's
	// admission target becomes DeadlineFactor × its observed p99
	// service time (clamped to [1/2, 2] × the static deadline, which
	// stays the seed until the estimator window fills), and every
	// arrival's completion is predicted from its queue position — a
	// request whose predicted wait already implies a deadline miss is
	// rejected now (p99-aware early drop) instead of served late and
	// counted against the SLO. Deadline-miss accounting stays scored
	// against the static deadlines, so adaptive and static fabrics
	// grade against the same SLO.
	Adaptive bool
	// DeadlineFactor scales the observed p99 service time into the
	// derived deadline (zero = 4).
	DeadlineFactor float64
	// EstimatorWindow is the per-shard service-time estimator's
	// sub-window; the full observation window is 4 sub-windows
	// (zero = 2ms).
	EstimatorWindow sim.Time
}

// BatchConfig turns on the ring serving path: workers drain admission
// queues in batches instead of one op per cond wakeup, consecutive
// puts in a drained batch commit through kvstore.ApplyBatch (one log
// append run + one group-commit sync for the whole run), the device
// stacks run their batched submission/completion rings
// (blockdev.Config.Batch), and submit-side worker wakeups coalesce to
// at most one per batch. The zero value is the per-request path E16
// measured — BatchConfig only changes who pays fixed costs, never
// admission outcomes or span accounting.
type BatchConfig struct {
	// Enabled turns the ring path on.
	Enabled bool
	// MaxOps bounds how many queued ops one worker drains per batch
	// (zero = 8).
	MaxOps int
	// OpCost is the per-op CPU cost after the first in a drained batch;
	// the first op pays full ServeCost (zero = ServeCost/4).
	OpCost sim.Time
}

// Config parameterizes a Fabric.
type Config struct {
	// Shards is the number of logical KV shards (minimum 1).
	Shards int
	// Devices is the number of flash devices shards are spread over,
	// round-robin (0 = 1; raised to Replicas so replicas land on
	// distinct devices).
	Devices int
	// Replicas is the number of device-backed replicas per logical
	// shard (0 or 1 = single placement, the pre-replication fabric).
	// With R > 1 the fabric builds Shards×R physical shards, replica r
	// of logical shard i on device (i+r) mod Devices, so no logical
	// shard ever has two replicas on one device. The raw fabric does
	// not make replicas coherent — quorum writes, steered reads and
	// live migration live in package place, which routes the frontend
	// to replica groups instead of physical shards.
	Replicas int
	// Spares is the number of extra devices built, scheduled and carved
	// exactly like the placed ones but left empty: live-migration
	// destinations (place.Mover).
	Spares int
	// Mode selects the submission path of every device's stack.
	Mode blockdev.Mode
	// DeviceOptions scales the flash devices (preset Enterprise2012;
	// BufferPages < 0 drops the safe buffer, which also forfeits the
	// progressive assembly's atomic meta writes).
	DeviceOptions ssd.Options
	// Scheduled attaches a sched.Scheduler per device, one tenant per
	// shard, with device GC notifications wired in.
	Scheduled bool
	// Sched tunes the per-device scheduler (zero = sched.DefaultConfig).
	Sched sched.Config
	// GCCoordinate turns on host→device GC coordination (shorthand for
	// Sched.GCCoordinate): each device's scheduler leases GC deferrals
	// while any of that device's shards has latency-class work queued,
	// and releases them when the burst drains — so the fabric shapes
	// per-device GC across all the shards sharing that device. Implies
	// Scheduled (coordination runs inside the per-device scheduler).
	GCCoordinate bool
	// WriteCost is the DRR billing for writes vs reads on the scheduled
	// path (zero = blockdev default).
	WriteCost int
	// Calibrate turns on online cost calibration in every device's
	// stack (blockdev.Config.Calibrate): the DRR read/write billing
	// follows observed device service times, with WriteCost as the
	// seed, so an aging device is billed at what its ops cost today.
	// CalibrateWindow is the stack estimator's sub-window (zero =
	// blockdev default).
	Calibrate       bool
	CalibrateWindow sim.Time
	// Autoscale enables the fabric's per-shard SLO controller, walking
	// worker pools and admission token rates from the observed
	// deadline-miss and reject rates, within the configured bounds.
	Autoscale AutoscaleConfig
	// QueueDepth bounds requests outstanding at each device (zero =
	// blockdev default).
	QueueDepth int
	// Progressive assembles shards the paper's way: WAL on shared
	// memory-bus PCM, atomic meta flips, trims. Otherwise each shard's
	// WAL lives in the first LogPages of its flash region behind the
	// stack (the conservative assembly).
	Progressive bool
	// LogPages is the conservative per-shard WAL region (0 = 24 pages).
	LogPages int64
	// LogBytes is the progressive per-shard PCM WAL region (0 = 128 KiB).
	LogBytes int64
	// WorkersPerShard is each shard's serving concurrency (0 = 2).
	WorkersPerShard int
	// ServeCost is the CPU time a worker spends on each request outside
	// storage I/O — parsing, routing, serialization (0 = 2µs). It also
	// keeps virtual time honest: a request served entirely from cache
	// must not be free, or closed-loop clients would spin the simulation
	// at one instant.
	ServeCost sim.Time
	// Batch selects the ring serving path (batched worker drains, batch
	// commit, batched device submission/completion). The zero value is
	// the per-request path.
	Batch BatchConfig
	// Store tunes each shard's KV engine (meta/trim fields are
	// overridden by the assembly).
	Store kvstore.Config
	// Admission is the shard-boundary admission policy.
	Admission AdmissionConfig
	// Trace enables per-request span tracing (package obs): the
	// frontend opens a span per request, every layer stamps its stage,
	// and the fabric's Tracer aggregates per class × stage breakdowns
	// plus a slowest-N flight recorder. Off by default: the hot path
	// then carries only nil checks.
	Trace bool
	// TraceKeep bounds the flight recorder (slowest spans kept per
	// class; 0 = 8).
	TraceKeep int
	// Sample enables the continuous time-series sampler (obs.Sampler):
	// a sim-clock-driven tick snapshots every fabric ledger into
	// fixed-capacity rings — counters, gauges, and per-shard latency
	// histograms diffed into interval statistics. Sampling charges zero
	// virtual time, so a sampled fabric serves exactly what an
	// unsampled one does.
	Sample obs.SampleConfig
	// Monitor enables the SLO health engine (obs.Monitor) over the
	// sampled series: per-class burn-rate alerts, device drift watches,
	// GC-storm / floor-proximity / admission-collapse detection, and
	// typed health events from the acting layers. Implies Sample.
	Monitor obs.MonitorConfig
	// Profile enables the resource profiler (obs.Profiler): every NAND
	// chip, bus channel, host link, submission/completion core and
	// submission lock in the fabric is tapped and its busy time
	// attributed per cause, with the per-device schedulers' dispatch
	// waits as an overlay. Profiling charges zero virtual time. With
	// Sample also on, per-kind utilization gauges (fabric.util.*) and
	// the device-0 chip heatmap (device.chip.*) join the sampler.
	Profile bool
}

// deviceGroup is one flash device with its stack and scheduler.
type deviceGroup struct {
	dev   ssd.Dev
	stack *blockdev.Stack
	sched *sched.Scheduler
	down  bool // device killed (KillDevice); never serves again
}

// Fabric is the assembled serving system.
type Fabric struct {
	eng      *sim.Engine
	cfg      Config
	groups   []*deviceGroup
	shards   []*Shard
	membus   *pcm.MemBus
	stats    *metrics.ShardStats
	shardLat *metrics.TenantLatencies
	scaler   *Autoscaler
	tracer   *obs.Tracer
	registry *obs.Registry
	sampler  *obs.Sampler
	monitor  *obs.Monitor
	profiler *obs.Profiler
	byClass  [2]ClassLedger
	stopped  bool
	crashing bool

	// Region bookkeeping: every device (spares included) is carved into
	// the same number of equal page regions ("slots"); slotOwner tracks
	// which shard holds each one, so live migration can carve a fresh
	// replica on any device with a free slot and retiring a shard frees
	// its slot for reuse.
	placed    int // devices holding initial placements (the rest are spares)
	slots     int // regions per device
	slotSpan  int64
	slotOwner [][]*Shard
	grafts    int      // migrated-in replicas built so far (names stay unique)
	targets   []Target // cached default routing table (nil after shard set changes)

	// onDeviceDown callbacks fire inside the KillDevice event, after the
	// device's shards have failed their backlogs — the device-health
	// signal replica placement subscribes to.
	onDeviceDown []func(d int)

	// Errors counts served requests that failed in the storage engine
	// (not admission rejects) — should stay zero in a sized fabric.
	Errors int64
}

// New assembles a fabric on eng. It must be called from a simulated
// process (shard recovery does I/O). Serving starts immediately:
// WorkersPerShard processes per shard pull from the admission queues
// until Stop.
func New(p *sim.Proc, eng *sim.Engine, cfg Config) (*Fabric, error) {
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.Devices < 1 {
		cfg.Devices = 1
	}
	if cfg.Replicas < 1 {
		cfg.Replicas = 1
	}
	if cfg.Spares < 0 {
		cfg.Spares = 0
	}
	// Replicas of one shard must land on distinct devices, and devices
	// beyond one per physical shard would sit empty.
	if cfg.Devices < cfg.Replicas {
		cfg.Devices = cfg.Replicas
	}
	if physical := cfg.Shards * cfg.Replicas; cfg.Devices > physical {
		cfg.Devices = physical
	}
	if cfg.WorkersPerShard < 1 {
		cfg.WorkersPerShard = 2
	}
	if cfg.ServeCost <= 0 {
		cfg.ServeCost = 2 * sim.Microsecond
	}
	if cfg.Batch.Enabled {
		if cfg.Batch.MaxOps <= 0 {
			cfg.Batch.MaxOps = 8
		}
		if cfg.Batch.OpCost <= 0 {
			cfg.Batch.OpCost = cfg.ServeCost / 4
		}
	}
	if cfg.LogPages <= 0 {
		cfg.LogPages = 24
	}
	if cfg.LogBytes <= 0 {
		cfg.LogBytes = 128 << 10
	}
	if cfg.Admission.QueueLimit <= 0 {
		cfg.Admission.QueueLimit = 64
	}
	if cfg.Admission.LatencyDeadline <= 0 {
		cfg.Admission.LatencyDeadline = 2 * sim.Millisecond
	}
	if cfg.Admission.ThroughputDeadline <= 0 {
		cfg.Admission.ThroughputDeadline = 20 * sim.Millisecond
	}
	if cfg.Admission.Burst < 1 {
		cfg.Admission.Burst = 1
	}
	if cfg.Admission.DeadlineFactor <= 0 {
		cfg.Admission.DeadlineFactor = 4
	}
	if cfg.Admission.EstimatorWindow <= 0 {
		cfg.Admission.EstimatorWindow = 2 * sim.Millisecond
	}
	if cfg.Sched == (sched.Config{}) {
		cfg.Sched = sched.DefaultConfig()
	}
	if cfg.GCCoordinate {
		// Coordination lives inside the per-device scheduler; asking for
		// it implies scheduling (a silent no-op here would let a user
		// measure "coordination on" that was actually off).
		cfg.Scheduled = true
		cfg.Sched.GCCoordinate = true
	}

	if cfg.Monitor.Enabled {
		cfg.Sample.Enabled = true
	}

	f := &Fabric{
		eng:      eng,
		cfg:      cfg,
		stats:    metrics.NewShardStats(),
		shardLat: metrics.NewTenantLatencies(),
		registry: obs.NewRegistry(),
	}
	if cfg.Trace {
		f.tracer = obs.NewTracer(cfg.TraceKeep)
	}
	f.attachRegistrySources()

	// Placement: replica r of logical shard i on device (i+r) mod
	// Devices. Every device — spares included — is carved into the same
	// number of region slots (the most any placed device holds), so a
	// migrated replica fits any device with a free slot.
	shardsOn := make([]int, cfg.Devices)
	for i := 0; i < cfg.Shards; i++ {
		for r := 0; r < cfg.Replicas; r++ {
			shardsOn[(i+r)%cfg.Devices]++
		}
	}
	slots := 0
	for _, n := range shardsOn {
		if n > slots {
			slots = n
		}
	}
	totalDevices := cfg.Devices + cfg.Spares
	f.placed = cfg.Devices
	f.slots = slots

	preset := ssd.Enterprise2012
	if cfg.Progressive {
		// The atomic meta flip needs the safe buffer; PCM WAL regions
		// share one memory bus (one region per slot fabric-wide, so
		// migrated-in replicas have their own WAL region too).
		buscfg := pcm.DefaultConfig()
		need := int64(totalDevices*slots) * cfg.LogBytes
		if buscfg.CapacityBytes < need {
			buscfg.CapacityBytes = need
		}
		pdev, err := pcm.New(eng, "fabric-pcm", buscfg)
		if err != nil {
			return nil, err
		}
		f.membus = pcm.NewMemBus(eng, pdev)
	}

	workersPerDevice := (slots + 1) * cfg.WorkersPerShard
	for d := 0; d < totalDevices; d++ {
		opts := cfg.DeviceOptions
		opts.Seed = uint64(d + 1)
		dev, err := ssd.Build(eng, preset, opts)
		if err != nil {
			return nil, err
		}
		scfg := blockdev.DefaultConfig(cfg.Mode)
		scfg.CPUs = workersPerDevice + 2
		if cfg.QueueDepth > 0 {
			scfg.QueueDepth = cfg.QueueDepth
		}
		scfg.WriteCost = cfg.WriteCost
		scfg.Calibrate = cfg.Calibrate
		scfg.CalibrateWindow = cfg.CalibrateWindow
		scfg.Batch = cfg.Batch.Enabled
		stack, err := blockdev.New(eng, dev, scfg)
		if err != nil {
			return nil, err
		}
		g := &deviceGroup{dev: dev, stack: stack}
		stack.SetTracer(f.tracer)
		if cfg.Scheduled {
			g.sched = sched.New(eng, cfg.Sched)
			stack.AttachScheduler(g.sched)
			if xd, ok := dev.(*ssd.Device); ok {
				if err := xd.SetGCNotifier(g.sched.SetGCActiveChips); err != nil {
					return nil, err
				}
			}
		}
		f.groups = append(f.groups, g)
	}

	// Carve per-shard regions and open the stores.
	f.slotSpan = f.groups[0].dev.Capacity() / int64(slots)
	f.slotOwner = make([][]*Shard, totalDevices)
	for d := range f.slotOwner {
		f.slotOwner[d] = make([]*Shard, slots)
	}
	for i := 0; i < cfg.Shards; i++ {
		for r := 0; r < cfg.Replicas; r++ {
			name := fmt.Sprintf("shard%d", i)
			if cfg.Replicas > 1 {
				name = fmt.Sprintf("shard%d.r%d", i, r)
			}
			if _, err := f.buildShard(p, name, i, r, (i+r)%cfg.Devices); err != nil {
				return nil, err
			}
		}
	}
	if cfg.Autoscale.Enabled {
		f.scaler = newAutoscaler(f, cfg.Autoscale)
		eng.Go(f.scaler.run)
	}
	if cfg.Profile {
		f.attachProfiler()
	}
	f.startTelemetry()
	return f, nil
}

// buildShard carves a free region slot on device d and opens a physical
// shard there: its own scheduler tenant, WAL region, admission state
// and worker pool. Both the initial placement and live migration
// destinations come through here.
func (f *Fabric) buildShard(p *sim.Proc, name string, logical, replica, d int) (*Shard, error) {
	g := f.groups[d]
	slot := -1
	for s, owner := range f.slotOwner[d] {
		if owner == nil {
			slot = s
			break
		}
	}
	if slot < 0 {
		return nil, fmt.Errorf("serve: no free region slot on device %d", d)
	}
	region := kvstore.ShardRegion{
		Base:       int64(slot) * f.slotSpan,
		Span:       f.slotSpan,
		LogPages:   f.cfg.LogPages,
		LogBase:    int64(d*f.slots+slot) * f.cfg.LogBytes,
		LogBytes:   f.cfg.LogBytes,
		SubmitCore: slot * f.cfg.WorkersPerShard,
	}
	if g.sched != nil {
		// Every shard serves a hash-slice of every tenant's keys, so
		// shards are peers: equal weight, latency class (GC deferral
		// stays a per-request policy, not a per-shard one).
		region.Tenant = g.sched.AddTenant(name, sched.LatencySensitive, 1)
	}
	var sys *kvstore.System
	var err error
	if f.cfg.Progressive {
		sys, err = kvstore.BuildShardProgressive(p, f.eng, g.stack, f.membus, region, f.cfg.Store)
	} else {
		sys, err = kvstore.BuildShardConservative(p, f.eng, g.stack, region, f.cfg.Store)
	}
	if err != nil {
		return nil, fmt.Errorf("serve: shard %s: %w", name, err)
	}
	sh := &Shard{
		fab:     f,
		idx:     len(f.shards),
		name:    name,
		logical: logical,
		replica: replica,
		dev:     d,
		slot:    slot,
		group:   g,
		sys:     sys,
		tenant:  region.Tenant,
		stats:   f.stats.Shard(name),
		rate:    f.cfg.Admission.Rate,
		bucket:  sched.NewTokenBucket(f.cfg.Admission.Rate, f.cfg.Admission.Burst, f.eng.Now()),
	}
	if f.cfg.Admission.Adaptive {
		// The estimator exists only when a policy consumes it, so the
		// static plane's serving hot path pays no measurement cost.
		sh.svc = metrics.NewEstimator(int64(f.cfg.Admission.EstimatorWindow), 4, 0.1)
	}
	f.slotOwner[d][slot] = sh
	f.shards = append(f.shards, sh)
	f.targets = nil
	sh.setWorkers(f.cfg.WorkersPerShard)
	// Shards built after startTelemetry (migrated-in replicas) join the
	// sampler here; the initial set is attached in one pass at startup.
	if f.sampler != nil {
		f.attachShardProbes(sh)
	}
	return sh, nil
}

// AddReplica builds a fresh physical shard for logical shard logical on
// device d — the destination of a live migration (place.Mover). The
// new shard is empty, serves through its own admission queue and
// workers, and is not routed to until a replica group adopts it. It
// fails when device d has no free region slot.
func (f *Fabric) AddReplica(p *sim.Proc, logical, d int) (*Shard, error) {
	if logical < 0 || logical >= f.cfg.Shards {
		return nil, fmt.Errorf("serve: logical shard %d out of range", logical)
	}
	if d < 0 || d >= len(f.groups) {
		return nil, fmt.Errorf("serve: device %d out of range", d)
	}
	f.grafts++
	return f.buildShard(p, fmt.Sprintf("shard%d.m%d", logical, f.grafts), logical, -1, d)
}

// Retire permanently removes sh from service: queued requests fail with
// ErrStopped, its workers exit, and its region slot frees for a future
// AddReplica. Its counters stay in Stats (the ledger keeps history).
// Callers must stop routing to the shard first — package place swaps
// the replica set before retiring the old replica.
func (f *Fabric) Retire(sh *Shard) {
	if sh.retired {
		return
	}
	sh.retired = true
	sh.failBacklog(ErrStopped)
	ws := sh.waiters
	sh.waiters = nil
	for _, w := range ws {
		w.Fire()
	}
	f.slotOwner[sh.dev][sh.slot] = nil
	for i, s := range f.shards {
		if s == sh {
			f.shards = append(f.shards[:i], f.shards[i+1:]...)
			break
		}
	}
	if f.scaler != nil {
		f.scaler.forget(sh)
	}
	f.targets = nil
}

// FreeSlots reports device d's unused region slots — where a migrated
// replica could land.
func (f *Fabric) FreeSlots(d int) int {
	n := 0
	for _, owner := range f.slotOwner[d] {
		if owner == nil {
			n++
		}
	}
	return n
}

// Targets implements Router: the default routing table, one target per
// physical shard in creation order. Fabrics built with Replicas > 1
// must not be driven through this default — routing physical shards
// directly would scatter a key's replicas — package place supplies the
// replica-aware router instead.
func (f *Fabric) Targets() []Target {
	if f.targets == nil {
		f.targets = make([]Target, len(f.shards))
		for i, sh := range f.shards {
			f.targets[i] = sh
		}
	}
	return f.targets
}

// Engine returns the fabric's simulation engine.
func (f *Fabric) Engine() *sim.Engine { return f.eng }

// Config returns the fabric configuration after defaulting.
func (f *Fabric) Config() Config { return f.cfg }

// Shards returns the fabric's shards in index order.
func (f *Fabric) Shards() []*Shard { return f.shards }

// Stats returns the per-shard admission/serving counters.
func (f *Fabric) Stats() *metrics.ShardStats { return f.stats }

// ShardLatencies returns end-to-end served-request latencies keyed by
// shard name (the per-shard view; per-tenant views are recorded by
// Frontend.Drive).
func (f *Fabric) ShardLatencies() *metrics.TenantLatencies { return f.shardLat }

// ResetStats clears the per-shard counters, latency sets and trace
// aggregates (after a warmup or preload phase). Monitored fabrics also
// rebase drift baselines: the measurement epoch starts here, so drift
// is judged against the post-warmup steady state, not the cold start.
func (f *Fabric) ResetStats() {
	f.stats.Reset()
	f.shardLat.Reset()
	f.tracer.Reset()
	f.byClass = [2]ClassLedger{}
	f.monitor.Rebase()
	f.profiler.Rebase(f.eng.Now())
}

// Tracer returns the fabric's request tracer, or nil when Config.Trace
// is off (a nil tracer is valid and inert everywhere it is threaded).
func (f *Fabric) Tracer() *obs.Tracer { return f.tracer }

// Registry returns the fabric's telemetry registry: the merged,
// JSON-exportable snapshot of every ledger the stack keeps. The fabric
// attaches its own sources (shard counters, shard latencies, GC
// coordination, calibration, trace aggregates); other layers — replica
// placement, experiments — attach theirs to the same registry.
func (f *Fabric) Registry() *obs.Registry { return f.registry }

// attachRegistrySources registers the fabric-owned telemetry sources.
func (f *Fabric) attachRegistrySources() {
	f.registry.Attach("shard_stats", func() any {
		out := make(map[string]metrics.ShardCounters, len(f.stats.Shards())+1)
		for _, name := range f.stats.Shards() {
			out[name] = *f.stats.Shard(name)
		}
		out["total"] = f.stats.Totals()
		return out
	})
	f.registry.Attach("shard_latencies", func() any {
		return obs.SummarizeTenants(f.shardLat)
	})
	f.registry.Attach("gc_coord", func() any { return f.GCCoord() })
	f.registry.Attach("calibration", func() any {
		type devCal struct {
			Device string `json:"device"`
			Read   int    `json:"read_cost"`
			Write  int    `json:"write_cost"`
		}
		out := make([]devCal, 0, len(f.groups))
		for _, g := range f.groups {
			r, w := g.stack.CalibratedCosts()
			out = append(out, devCal{Device: g.dev.Name(), Read: r, Write: w})
		}
		return out
	})
	f.registry.Attach("trace", func() any { return f.tracer.Snapshot() })
}

// Scheduler returns device d's scheduler (nil when unscheduled).
func (f *Fabric) Scheduler(d int) *sched.Scheduler { return f.groups[d].sched }

// Autoscaler returns the SLO controller, or nil when autoscaling is
// off.
func (f *Fabric) Autoscaler() *Autoscaler { return f.scaler }

// GCCoord merges the GC-coordination ledgers of every device in the
// fabric — the host side (defer leases requested, resumes issued, from
// each device's scheduler) and the device side (sessions granted,
// refusals, floor hits, minimum headroom, from each FTL). The merged
// ledger is E17's proof that coordination engaged and that no device's
// free pool was starved below its floor.
func (f *Fabric) GCCoord() metrics.GCCoord {
	g := metrics.NewGCCoord()
	for _, grp := range f.groups {
		if grp.sched != nil {
			g.Add(grp.sched.GCCoord())
		}
		if xd, ok := grp.dev.(*ssd.Device); ok {
			g.Add(xd.GCCoord())
		}
	}
	return g
}

// Stack returns device d's block-layer stack.
func (f *Fabric) Stack(d int) *blockdev.Stack { return f.groups[d].stack }

// Devices reports the device count, spares included.
func (f *Fabric) Devices() int { return len(f.groups) }

// PlacedDevices reports the devices holding initial shard placements;
// devices [PlacedDevices, Devices) are spares (Config.Spares).
func (f *Fabric) PlacedDevices() int { return f.placed }

// Served sums served requests across shards.
func (f *Fabric) Served() int64 { return f.stats.Totals().Served }

// Stop ends serving: new submissions fail with ErrStopped. With drain
// set, queued requests are still served before the workers exit;
// otherwise they are dropped (counted in ShardStats, completed with
// ErrStopped) so a time-bounded experiment is not distorted by
// post-horizon queue draining.
func (f *Fabric) Stop(drain bool) {
	if f.stopped {
		return
	}
	f.stopped = true
	f.sampler.Stop()
	for _, sh := range f.shards {
		if !drain {
			sh.failBacklog(ErrStopped)
		}
		ws := sh.waiters
		sh.waiters = nil
		for _, w := range ws {
			w.Fire()
		}
	}
}

// StopAt schedules Stop(drain) at virtual time at.
func (f *Fabric) StopAt(at sim.Time, drain bool) {
	f.eng.Schedule(at, func() { f.Stop(drain) })
}

// Stopped reports whether the fabric has been stopped.
func (f *Fabric) Stopped() bool { return f.stopped }

// Crashing reports whether the fabric is mid-crash (replica routers
// fail writes with ErrCrashed instead of fanning them out).
func (f *Fabric) Crashing() bool { return f.crashing }

// Crash models whole-fabric power loss and restart: every queued
// request fails with ErrCrashed, in-flight requests finish (their acks
// raced the power loss and their writes reached the device first), then
// every device drops its volatile state once and every shard reopens
// from the surviving media, running recovery — the kvstore.System crash
// machinery applied per shard over shared hardware. No shard serves
// while any sibling is still reopening; submissions during the crash
// fail with ErrCrashed. Serving resumes once Crash returns.
func (f *Fabric) Crash(p *sim.Proc) error {
	f.crashing = true
	defer func() { f.crashing = false }()
	// Fail the backlog fabric-wide before touching any device, so no
	// shard can serve pre-crash host state while its siblings reopen.
	for _, sh := range f.shards {
		sh.failBacklog(ErrCrashed)
	}
	// Quiesce workers mid-request.
	for {
		busy := 0
		for _, sh := range f.shards {
			busy += sh.busy
		}
		if busy == 0 {
			break
		}
		p.Sleep(10 * sim.Microsecond)
	}
	for _, g := range f.groups {
		// A dead device has nothing left to lose and cannot reopen.
		if g.down {
			continue
		}
		if d, ok := g.dev.(*ssd.Device); ok {
			d.Crash()
		}
	}
	for _, sh := range f.shards {
		if sh.down {
			continue
		}
		fresh, err := sh.sys.Reopen(p)
		if err != nil {
			return fmt.Errorf("serve: reopen shard %d: %w", sh.idx, err)
		}
		sh.sys = fresh
	}
	return nil
}
