package serve

import (
	"errors"

	"repro/internal/kvstore"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/sim"
)

// OpKind identifies a client request type.
type OpKind int

// Request kinds.
const (
	// OpGet is a point lookup (a missing key is not an error).
	OpGet OpKind = iota
	// OpPut is a single-key upsert committed through the shard's WAL.
	OpPut
	// OpScan is a bounded in-order scan of the shard's keyspace.
	OpScan
)

// String names the kind for trace spans and tables.
func (k OpKind) String() string {
	switch k {
	case OpGet:
		return "get"
	case OpPut:
		return "put"
	case OpScan:
		return "scan"
	}
	return "op"
}

// Op is one client request at the serving boundary.
type Op struct {
	Kind  OpKind
	Key   []byte
	Value []byte
	// ScanLimit bounds OpScan visits (0 = 32).
	ScanLimit int
	// Class selects the deadline the request is held to:
	// sched.LatencySensitive or sched.Throughput.
	Class sched.Class

	// Span is the request's trace span (nil when tracing is off). The
	// frontend opens it; each layer stamps its stage in place. Ops are
	// passed by value, so the pointer rides every copy.
	Span *obs.Span

	arrived sim.Time
	done    func(error)
}

// Shard is one KV store slice of the fabric: a kvstore.System over a
// region of shared hardware, its own scheduler tenant, a bounded
// admission queue, and a pool of serving workers.
type Shard struct {
	fab     *Fabric
	idx     int
	name    string
	logical int // logical shard this physical shard replicates
	replica int // replica ordinal at placement (-1 for migrated-in)
	dev     int // device index in the fabric
	slot    int // region slot on that device
	retired bool
	down    bool // backing device died (Fabric.KillDevice)
	group   *deviceGroup
	sys     *kvstore.System
	tenant  *sched.Tenant
	stats   *metrics.ShardCounters

	// Admission queue: a power-of-two ring indexed from qhead holding
	// qn ops, so both the worker pop and the batch drain are O(1) per
	// op (the slice-shift this replaced copied the whole backlog on
	// every dequeue).
	queue   []*Op
	qhead   int
	qn      int
	waiters []*sim.Cond
	busy    int // workers mid-request (Fabric.Crash quiesces on this)

	// wakeArmed coalesces submit-side worker wakeups on the ring path:
	// any number of Submits in one instant arm at most one wake event.
	wakeArmed bool

	// Worker pool: target is the desired size (walked by the SLO
	// controller within its bounds), running the live process count.
	// Surplus workers exit at their next scheduling point.
	target  int
	running int

	// svc observes per-request service times (dequeue to completion,
	// classes "latency"/"throughput" plus svcAll) — what adaptive
	// deadlines and the early-drop predictor consume.
	svc *metrics.Estimator

	// Admission token bucket (requests, not device I/Os — the same
	// bucket mechanism sched uses for tenant rate caps) and the rate it
	// currently enforces.
	bucket sched.TokenBucket
	rate   float64
}

// svcAll is the estimator class aggregating every request class: queue
// drain predictions need the mixed-class service rate, not one class's.
const svcAll = "all"

// adaptiveMinSamples is how many windowed samples the estimator needs
// before adaptive deadlines and early drop replace the static policy.
const adaptiveMinSamples = 16

// Name returns the shard's name ("shardN"; "shardN.rR" replicated,
// "shardN.mK" migrated-in).
func (sh *Shard) Name() string { return sh.name }

// Index returns the shard's creation ordinal in the fabric.
func (sh *Shard) Index() int { return sh.idx }

// Logical returns the logical shard this physical shard replicates.
func (sh *Shard) Logical() int { return sh.logical }

// Replica returns the shard's replica ordinal at initial placement, or
// -1 for replicas grafted in by live migration.
func (sh *Shard) Replica() int { return sh.replica }

// DeviceIndex returns the fabric device the shard's region lives on.
func (sh *Shard) DeviceIndex() int { return sh.dev }

// Slot returns the shard's region slot on its device.
func (sh *Shard) Slot() int { return sh.slot }

// Retired reports whether the shard has been removed from service.
func (sh *Shard) Retired() bool { return sh.retired }

// Down reports whether the shard's backing device has died.
func (sh *Shard) Down() bool { return sh.down }

// System exposes the shard's KV system (tests and instrumentation).
func (sh *Shard) System() *kvstore.System { return sh.sys }

// Systems implements Target: the single backing store of an unreplicated
// target (replica groups return one per replica).
func (sh *Shard) Systems() []*kvstore.System { return []*kvstore.System{sh.sys} }

// Tenant returns the shard's scheduler tenant (nil when unscheduled).
func (sh *Shard) Tenant() *sched.Tenant { return sh.tenant }

// Stats returns the shard's serving counters.
func (sh *Shard) Stats() *metrics.ShardCounters { return sh.stats }

// QueueLen reports the shard's current admission-queue length.
func (sh *Shard) QueueLen() int { return sh.qn }

// qPush appends op to the admission ring, doubling capacity (kept a
// power of two so indexing is a mask) when full.
func (sh *Shard) qPush(op *Op) {
	if sh.qn == len(sh.queue) {
		next := make([]*Op, max(16, 2*len(sh.queue)))
		for i := 0; i < sh.qn; i++ {
			next[i] = sh.queue[(sh.qhead+i)&(len(sh.queue)-1)]
		}
		sh.queue = next
		sh.qhead = 0
	}
	sh.queue[(sh.qhead+sh.qn)&(len(sh.queue)-1)] = op
	sh.qn++
}

// qPop removes and returns the admission ring's head op.
func (sh *Shard) qPop() *Op {
	op := sh.queue[sh.qhead]
	sh.queue[sh.qhead] = nil
	sh.qhead = (sh.qhead + 1) & (len(sh.queue) - 1)
	sh.qn--
	return op
}

// Workers reports the shard's target worker-pool size.
func (sh *Shard) Workers() int { return sh.target }

// AdmissionRate reports the shard's current admission token rate
// (requests/sec; 0 = uncapped).
func (sh *Shard) AdmissionRate() float64 { return sh.rate }

// ServiceEstimator exposes the shard's observed service-time estimator
// (classes "latency"/"throughput"/"all"), or nil when adaptive
// admission is off and nothing is measured.
func (sh *Shard) ServiceEstimator() *metrics.Estimator { return sh.svc }

// setWorkers walks the worker pool to n processes (minimum 1). Growth
// spawns immediately; shrink marks the surplus and wakes idle workers
// so they exit without waiting for traffic.
func (sh *Shard) setWorkers(n int) {
	if n < 1 {
		n = 1
	}
	sh.target = n
	for sh.running < sh.target {
		sh.running++
		sh.fab.eng.Go(sh.worker)
	}
	if sh.running > sh.target && len(sh.waiters) > 0 {
		ws := sh.waiters
		sh.waiters = nil
		for _, w := range ws {
			w.Fire()
		}
	}
}

// setRate rewalks the admission token rate to perSec (the SLO
// controller's actuator). The fresh bucket starts full, granting one
// burst at the new rate.
func (sh *Shard) setRate(perSec float64) {
	sh.rate = perSec
	sh.bucket = sched.NewTokenBucket(perSec, sh.fab.cfg.Admission.Burst, sh.fab.eng.Now())
}

// Submit routes one request through admission control. done always
// fires exactly once: with ErrRejected at admission refusal, ErrStopped
// (ErrCrashed) if the fabric stops (crashes) first, or the storage
// engine's outcome once served. Rejection is immediate — the point of
// admission control is that overload answers now instead of queueing
// forever. Requests arriving at a stopped or crashing fabric are not
// part of the admission ledger.
func (sh *Shard) Submit(op Op, done func(error)) {
	if sh.fab.stopped || sh.fab.crashing || sh.retired || sh.down {
		if done != nil {
			switch {
			case sh.down:
				done(ErrDeviceDown)
			case sh.fab.crashing:
				done(ErrCrashed)
			default:
				done(ErrStopped)
			}
		}
		return
	}
	sh.stats.Submitted++
	ac := &sh.fab.cfg.Admission
	if ac.Enabled {
		if sh.qn >= ac.QueueLimit {
			sh.stats.Rejected++
			sh.fab.classLedger(op.Class).Rejected++
			if done != nil {
				done(ErrRejected)
			}
			return
		}
		if ac.Adaptive && sh.predictMiss(op.Class) {
			// Early drop: the queue already ahead of this request implies
			// a deadline miss — answering "no" now is cheaper for both
			// sides than serving a late "yes". Checked before the token
			// take, so a doomed request never burns admission budget an
			// admittable one could have used.
			sh.stats.Rejected++
			sh.stats.EarlyDropped++
			sh.fab.classLedger(op.Class).Rejected++
			if done != nil {
				done(ErrRejected)
			}
			return
		}
		if !sh.bucket.TryTake(sh.fab.eng.Now()) {
			sh.stats.Rejected++
			sh.fab.classLedger(op.Class).Rejected++
			if done != nil {
				done(ErrRejected)
			}
			return
		}
	}
	sh.stats.Admitted++
	op.arrived = sh.fab.eng.Now()
	op.Span.MarkArrived(op.arrived)
	op.done = done
	sh.qPush(&op)
	if sh.qn > sh.stats.MaxQueue {
		sh.stats.MaxQueue = sh.qn
	}
	if sh.fab.cfg.Batch.Enabled {
		sh.armWake()
		return
	}
	if n := len(sh.waiters); n > 0 {
		w := sh.waiters[n-1]
		sh.waiters = sh.waiters[:n-1]
		w.Fire()
	}
}

// armWake schedules at most one wake event per instant on the ring
// path: when it fires, enough idle workers are woken to drain the
// backlog at MaxOps per worker. A burst of Submits in one instant
// costs one event and one waiter scan instead of one wakeup per op.
func (sh *Shard) armWake() {
	if sh.wakeArmed || len(sh.waiters) == 0 {
		return
	}
	sh.wakeArmed = true
	sh.fab.eng.Schedule(sh.fab.eng.Now(), func() {
		sh.wakeArmed = false
		want := (sh.qn + sh.fab.cfg.Batch.MaxOps - 1) / sh.fab.cfg.Batch.MaxOps
		for want > 0 && len(sh.waiters) > 0 {
			n := len(sh.waiters)
			w := sh.waiters[n-1]
			sh.waiters = sh.waiters[:n-1]
			w.Fire()
			want--
		}
	})
}

// Admits reports whether a request of class c arriving right now would
// pass admission, without consuming anything: the queue bound, the
// early-drop prediction and the token balance are peeked, not taken.
// Because the simulation is single-threaded, a caller that checks
// Admits on several shards and then Submits to all of them in the same
// event sees consistent answers — which is how replica groups (package
// place) keep a quorum write from being half-applied: either every
// replica admits it, or no replica sees it.
func (sh *Shard) Admits(c sched.Class) bool {
	if sh.fab.stopped || sh.fab.crashing || sh.retired || sh.down {
		return false
	}
	ac := &sh.fab.cfg.Admission
	if !ac.Enabled {
		return true
	}
	if sh.qn >= ac.QueueLimit {
		return false
	}
	if ac.Adaptive && sh.predictMiss(c) {
		return false
	}
	if sh.bucket.Active() && sh.bucket.Tokens(sh.fab.eng.Now()) < 1 {
		return false
	}
	return true
}

// failBacklog fails every queued request with err and settles the drop
// ledger (Stop without drain, and the moment of a fabric crash).
func (sh *Shard) failBacklog(err error) {
	for sh.qn > 0 {
		op := sh.qPop()
		sh.stats.Dropped++
		if op.done != nil {
			op.done(err)
		}
	}
	sh.queue, sh.qhead = nil, 0
}

// staticDeadlineFor maps a request class to its configured completion
// target — the seed and anchor of the adaptive policy.
func (sh *Shard) staticDeadlineFor(c sched.Class) sim.Time {
	if c == sched.LatencySensitive {
		return sh.fab.cfg.Admission.LatencyDeadline
	}
	return sh.fab.cfg.Admission.ThroughputDeadline
}

// deadlineFor maps a request class to the completion target admission
// predicts against. With Admission.Adaptive and a warm estimator it is
// derived from the observed distribution — DeadlineFactor × the
// class's windowed p99 service time — clamped to [1/2, 2] × the static
// deadline so the admission target tracks what the device can do
// without wandering away from what was promised. It governs the
// early-drop prediction only; deadline-miss *scoring* always uses
// staticDeadlineFor (see worker).
func (sh *Shard) deadlineFor(c sched.Class) sim.Time {
	static := sh.staticDeadlineFor(c)
	ac := &sh.fab.cfg.Admission
	if !ac.Adaptive {
		return static
	}
	ce := sh.svc.Class(c.String())
	ce.Observe(int64(sh.fab.eng.Now()))
	if ce.WindowCount() < adaptiveMinSamples {
		return static
	}
	d := sim.Time(ac.DeadlineFactor * float64(ce.Quantile(0.99)))
	if d < static/2 {
		d = static / 2
	}
	if d > 2*static {
		d = 2 * static
	}
	return d
}

// predictMiss reports whether a request admitted now would already
// miss its deadline given the queue ahead of it: the queue drains at
// the observed all-class mean service rate across the worker pool, and
// the request itself is held to its class's observed p99. Cold
// estimators never drop — the static policy needs no prediction.
func (sh *Shard) predictMiss(c sched.Class) bool {
	now := int64(sh.fab.eng.Now())
	all := sh.svc.Class(svcAll)
	all.Observe(now)
	if all.WindowCount() < adaptiveMinSamples {
		return false
	}
	workers := sh.target
	if workers < 1 {
		workers = 1
	}
	wait := float64(sh.qn) * all.EWMA() / float64(workers)
	ce := sh.svc.Class(c.String())
	ce.Observe(now) // a stale post-idle window must age out, not drop
	tail := float64(ce.Quantile(0.99))
	if tail <= 0 {
		tail = all.EWMA()
	}
	return sim.Time(wait+tail) > sh.deadlineFor(c)
}

// worker is one serving process: pull, execute, settle the deadline
// ledger, feed the service-time estimator. Workers exit when the
// fabric stops and their queue is empty (Stop without drain empties it
// for them), or when the pool shrank past them — handing any work they
// were woken for to a remaining waiter.
func (sh *Shard) worker(p *sim.Proc) {
	defer func() { sh.running-- }()
	for {
		for sh.qn == 0 {
			if sh.fab.stopped || sh.retired || sh.down || sh.running > sh.target {
				return
			}
			c := sim.NewCond(p.Engine())
			sh.waiters = append(sh.waiters, c)
			c.Await(p)
		}
		if sh.running > sh.target {
			// Shrunk while work arrived: pass the wake-up on so the queue
			// is not orphaned behind this exit.
			if n := len(sh.waiters); n > 0 {
				w := sh.waiters[n-1]
				sh.waiters = sh.waiters[:n-1]
				w.Fire()
			}
			return
		}
		if bc := &sh.fab.cfg.Batch; bc.Enabled {
			sh.serveBatch(p, bc)
			continue
		}
		op := sh.qPop()
		sh.busy++
		start := p.Now()
		if op.Span != nil {
			// Admission-queue wait ends here; bind the span to this
			// worker so the block layer can stamp the I/Os it issues
			// while executing this one request.
			op.Span.Stamp(obs.StageAdmission, start-op.arrived)
			sh.fab.tracer.Bind(p, op.Span)
		}
		// Per-request CPU work before the storage engine runs.
		p.Sleep(sh.fab.cfg.ServeCost)
		err := sh.execute(p, op)
		if op.Span != nil {
			sh.fab.tracer.Unbind(p)
		}
		sh.busy--
		sh.settle(p, op, start, err)
	}
}

// settle closes one request's serving ledger: failures count as engine
// errors, successes feed the service-time estimator and the per-class
// deadline scoring, and done fires either way. Misses are always
// scored against the configured SLO, never the derived admission
// target: an adaptive fabric must not grade itself on a relaxed curve,
// or static-vs-adaptive miss rates would compare different success
// criteria.
func (sh *Shard) settle(p *sim.Proc, op *Op, start sim.Time, err error) {
	if err != nil {
		// Engine failures are neither served nor latency samples.
		sh.fab.Errors++
		sh.stats.Failed++
	} else {
		now := p.Now()
		if sh.svc != nil {
			svc := int64(now - start)
			sh.svc.Record(op.Class.String(), int64(now), svc)
			sh.svc.Record(svcAll, int64(now), svc)
		}
		sh.stats.Served++
		sh.fab.classLedger(op.Class).Served++
		sh.fab.shardLat.Record(sh.name, int64(now-op.arrived))
		if d := sh.staticDeadlineFor(op.Class); d > 0 && now-op.arrived > d {
			sh.stats.DeadlineMissed++
			sh.fab.classLedger(op.Class).Missed++
		}
	}
	if op.done != nil {
		op.done(err)
	}
}

// serveBatch drains up to MaxOps queued ops and serves them as one
// batch: admission-wait stamps settle in one pass at the drain
// instant, a run of consecutive puts commits through one
// kvstore.ApplyBatch (one log append run + one group-commit sync for
// the whole run), and worker CPU is charged full ServeCost once per
// batch plus OpCost per further op — the fixed parse/route/serialize
// work is paid once, the marginal per-op work every time.
func (sh *Shard) serveBatch(p *sim.Proc, bc *BatchConfig) {
	start := p.Now()
	batch := make([]*Op, 0, bc.MaxOps)
	for sh.qn > 0 && len(batch) < bc.MaxOps {
		op := sh.qPop()
		if op.Span != nil {
			op.Span.Stamp(obs.StageAdmission, start-op.arrived)
		}
		batch = append(batch, op)
	}
	sh.busy++
	firstGroup := true
	for lo := 0; lo < len(batch); {
		hi := lo + 1
		if batch[lo].Kind == OpPut {
			for hi < len(batch) && batch[hi].Kind == OpPut {
				hi++
			}
		}
		group := batch[lo:hi]
		// Bind the group's first traced span so the block layer stamps
		// the I/Os this group issues; grouped siblings share the same
		// storage round trip, so one span carrying it is exact for the
		// batch total (the invariant E20 checks), not double-counted.
		var bound *obs.Span
		for _, op := range group {
			if op.Span != nil {
				bound = op.Span
				break
			}
		}
		if bound != nil {
			sh.fab.tracer.Bind(p, bound)
		}
		cost := sim.Time(len(group)-1) * bc.OpCost
		if firstGroup {
			cost += sh.fab.cfg.ServeCost
			firstGroup = false
		} else {
			cost += bc.OpCost
		}
		p.Sleep(cost)
		var err error
		if len(group) > 1 {
			ops := make([]kvstore.BatchOp, len(group))
			for i, op := range group {
				ops[i] = kvstore.BatchOp{Key: op.Key, Value: op.Value}
			}
			err = sh.sys.Store.ApplyBatch(p, ops)
		} else {
			err = sh.execute(p, group[0])
		}
		if bound != nil {
			sh.fab.tracer.Unbind(p)
		}
		for _, op := range group {
			sh.settle(p, op, start, err)
		}
		lo = hi
	}
	sh.busy--
}

// execute runs one request against the shard's store.
func (sh *Shard) execute(p *sim.Proc, op *Op) error {
	st := sh.sys.Store
	switch op.Kind {
	case OpGet:
		_, err := st.Get(p, op.Key)
		if errors.Is(err, kvstore.ErrNotFound) {
			return nil
		}
		return err
	case OpPut:
		tx := st.Begin()
		tx.Put(op.Key, op.Value)
		return tx.Commit(p)
	default: // OpScan
		limit := op.ScanLimit
		if limit <= 0 {
			limit = 32
		}
		n := 0
		return st.Scan(p, func(_, _ []byte) bool {
			n++
			return n < limit
		})
	}
}
