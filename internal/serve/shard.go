package serve

import (
	"errors"

	"repro/internal/kvstore"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/sim"
)

// OpKind identifies a client request type.
type OpKind int

// Request kinds.
const (
	// OpGet is a point lookup (a missing key is not an error).
	OpGet OpKind = iota
	// OpPut is a single-key upsert committed through the shard's WAL.
	OpPut
	// OpScan is a bounded in-order scan of the shard's keyspace.
	OpScan
)

// Op is one client request at the serving boundary.
type Op struct {
	Kind  OpKind
	Key   []byte
	Value []byte
	// ScanLimit bounds OpScan visits (0 = 32).
	ScanLimit int
	// Class selects the deadline the request is held to:
	// sched.LatencySensitive or sched.Throughput.
	Class sched.Class

	arrived sim.Time
	done    func(error)
}

// Shard is one KV store slice of the fabric: a kvstore.System over a
// region of shared hardware, its own scheduler tenant, a bounded
// admission queue, and a pool of serving workers.
type Shard struct {
	fab    *Fabric
	idx    int
	name   string
	group  *deviceGroup
	sys    *kvstore.System
	tenant *sched.Tenant
	stats  *metrics.ShardCounters

	queue   []*Op
	waiters []*sim.Cond
	busy    int // workers mid-request (Fabric.Crash quiesces on this)

	// Admission token bucket (requests, not device I/Os — the same
	// bucket mechanism sched uses for tenant rate caps).
	bucket sched.TokenBucket
}

// Name returns the shard's name ("shardN").
func (sh *Shard) Name() string { return sh.name }

// Index returns the shard's index in the fabric.
func (sh *Shard) Index() int { return sh.idx }

// System exposes the shard's KV system (tests and instrumentation).
func (sh *Shard) System() *kvstore.System { return sh.sys }

// Tenant returns the shard's scheduler tenant (nil when unscheduled).
func (sh *Shard) Tenant() *sched.Tenant { return sh.tenant }

// Stats returns the shard's serving counters.
func (sh *Shard) Stats() *metrics.ShardCounters { return sh.stats }

// QueueLen reports the shard's current admission-queue length.
func (sh *Shard) QueueLen() int { return len(sh.queue) }

// Submit routes one request through admission control. done always
// fires exactly once: with ErrRejected at admission refusal, ErrStopped
// (ErrCrashed) if the fabric stops (crashes) first, or the storage
// engine's outcome once served. Rejection is immediate — the point of
// admission control is that overload answers now instead of queueing
// forever. Requests arriving at a stopped or crashing fabric are not
// part of the admission ledger.
func (sh *Shard) Submit(op Op, done func(error)) {
	if sh.fab.stopped || sh.fab.crashing {
		if done != nil {
			if sh.fab.crashing {
				done(ErrCrashed)
			} else {
				done(ErrStopped)
			}
		}
		return
	}
	sh.stats.Submitted++
	ac := &sh.fab.cfg.Admission
	if ac.Enabled {
		if len(sh.queue) >= ac.QueueLimit || !sh.bucket.TryTake(sh.fab.eng.Now()) {
			sh.stats.Rejected++
			if done != nil {
				done(ErrRejected)
			}
			return
		}
	}
	sh.stats.Admitted++
	op.arrived = sh.fab.eng.Now()
	op.done = done
	sh.queue = append(sh.queue, &op)
	if n := len(sh.queue); n > sh.stats.MaxQueue {
		sh.stats.MaxQueue = n
	}
	if n := len(sh.waiters); n > 0 {
		w := sh.waiters[n-1]
		sh.waiters = sh.waiters[:n-1]
		w.Fire()
	}
}

// failBacklog fails every queued request with err and settles the drop
// ledger (Stop without drain, and the moment of a fabric crash).
func (sh *Shard) failBacklog(err error) {
	for _, op := range sh.queue {
		sh.stats.Dropped++
		if op.done != nil {
			op.done(err)
		}
	}
	sh.queue = nil
}

// deadlineFor maps a request class to its completion target.
func (sh *Shard) deadlineFor(c sched.Class) sim.Time {
	if c == sched.LatencySensitive {
		return sh.fab.cfg.Admission.LatencyDeadline
	}
	return sh.fab.cfg.Admission.ThroughputDeadline
}

// worker is one serving process: pull, execute, settle the deadline
// ledger. Workers exit when the fabric stops and their queue is empty
// (Stop without drain empties it for them).
func (sh *Shard) worker(p *sim.Proc) {
	for {
		for len(sh.queue) == 0 {
			if sh.fab.stopped {
				return
			}
			c := sim.NewCond(p.Engine())
			sh.waiters = append(sh.waiters, c)
			c.Await(p)
		}
		op := sh.queue[0]
		sh.queue = sh.queue[0:copy(sh.queue, sh.queue[1:])]
		sh.busy++
		// Per-request CPU work before the storage engine runs.
		p.Sleep(sh.fab.cfg.ServeCost)
		err := sh.execute(p, op)
		sh.busy--
		if err != nil {
			// Engine failures are neither served nor latency samples.
			sh.fab.Errors++
			sh.stats.Failed++
		} else {
			sh.stats.Served++
			sh.fab.shardLat.Record(sh.name, int64(p.Now()-op.arrived))
			if d := sh.deadlineFor(op.Class); d > 0 && p.Now()-op.arrived > d {
				sh.stats.DeadlineMissed++
			}
		}
		if op.done != nil {
			op.done(err)
		}
	}
}

// execute runs one request against the shard's store.
func (sh *Shard) execute(p *sim.Proc, op *Op) error {
	st := sh.sys.Store
	switch op.Kind {
	case OpGet:
		_, err := st.Get(p, op.Key)
		if errors.Is(err, kvstore.ErrNotFound) {
			return nil
		}
		return err
	case OpPut:
		tx := st.Begin()
		tx.Put(op.Key, op.Value)
		return tx.Commit(p)
	default: // OpScan
		limit := op.ScanLimit
		if limit <= 0 {
			limit = 32
		}
		n := 0
		return st.Scan(p, func(_, _ []byte) bool {
			n++
			return n < limit
		})
	}
}
