package serve

import (
	"fmt"

	"repro/internal/blockdev"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/ssd"
)

// ClassLedger counts per-request-class serving outcomes fabric-wide.
// metrics.ShardCounters is deliberately class-blind (the shard ledger
// predates classes); SLO error budgets are per class, so the fabric
// keeps this thin parallel ledger for the monitor's burn-rate watches.
type ClassLedger struct {
	Served   int64 `json:"served"`
	Missed   int64 `json:"missed"`
	Rejected int64 `json:"rejected"`
}

// classIdx maps a request class onto the fabric's per-class ledger
// slots (latency first, everything else billed as throughput).
func classIdx(c sched.Class) int {
	if c == sched.LatencySensitive {
		return 0
	}
	return 1
}

func (f *Fabric) classLedger(c sched.Class) *ClassLedger {
	return &f.byClass[classIdx(c)]
}

// ClassLedgerFor reports the fabric-wide serving outcomes of one
// request class.
func (f *Fabric) ClassLedgerFor(c sched.Class) ClassLedger {
	return f.byClass[classIdx(c)]
}

// Sampler returns the fabric's time-series sampler, or nil when
// Config.Sample (and Config.Monitor) is off.
func (f *Fabric) Sampler() *obs.Sampler { return f.sampler }

// Monitor returns the fabric's SLO health engine, or nil when
// Config.Monitor is off (a nil monitor is valid and inert everywhere
// it is threaded).
func (f *Fabric) Monitor() *obs.Monitor { return f.monitor }

// Profiler returns the fabric's resource profiler, or nil when
// Config.Profile is off (a nil profiler is valid and inert).
func (f *Fabric) Profiler() *obs.Profiler { return f.profiler }

// attachProfiler taps every busy-time server in the fabric — each
// chip's LUN group, each bus channel, each device's host link, each
// stack core and submission lock — and wires the per-device scheduler
// dispatch waits in as overlay sources. Runs once at assembly, before
// any shard opens; ResetStats rebases the window after preload.
func (f *Fabric) attachProfiler() {
	f.profiler = obs.NewProfiler()
	for d, g := range f.groups {
		name := fmt.Sprintf("dev%d", d)
		if xd, ok := g.dev.(*ssd.Device); ok {
			arr := xd.Array()
			for c := 0; c < arr.Chips(); c++ {
				chip := arr.Chip(c)
				luns := make([]*sim.Server, chip.Geometry().LUNsPerChip)
				for l := range luns {
					luns[l] = chip.LUNServer(l)
				}
				f.profiler.Attach(obs.ResChip, fmt.Sprintf("%s.chip%d", name, c), luns...)
			}
			for c := 0; c < arr.Channels(); c++ {
				f.profiler.Attach(obs.ResChannel, fmt.Sprintf("%s.ch%d", name, c), arr.Channel(c).Server())
			}
			f.profiler.Attach(obs.ResLink, name+".link", xd.Link())
		}
		for i := 0; i < g.stack.CPUs(); i++ {
			f.profiler.Attach(obs.ResCPU, fmt.Sprintf("%s.cpu%d", name, i), g.stack.CPU(i))
		}
		if l := g.stack.Lock(); l != nil {
			f.profiler.Attach(obs.ResLock, name+".lock", l)
		}
		if g.sched != nil {
			sink := f.profiler.WaitSink(name + ".sched")
			g.sched.SetWaitObserver(func(c sched.Class, d sim.Time) { sink(c.String(), d) })
		}
	}
	f.profiler.Rebase(f.eng.Now())
	f.registry.Attach("profile", func() any { return f.profiler.Snapshot() })
	// If a live HTTP exposition exists (deathbench -serve), its
	// /profile endpoint follows this fabric.
	obs.PublishLiveProfiler(f.profiler)
}

// SLO error budgets the monitor burns against: the tolerated
// deadline-miss fraction per class. Latency traffic gets the tight
// budget; throughput traffic the loose one.
const (
	latencySLOBudget    = 0.05
	throughputSLOBudget = 0.10
)

// collapseRejectFraction is the short-window rejected/submitted
// fraction past which admission is collapsing: the gate is answering
// "no" to most of the offered load.
const collapseRejectFraction = 0.5

// stormFloorHitsPerTick is the short-window floor-hit rate (per
// sampling tick) past which deferred GC is storming through its leases.
const stormFloorHitsPerTick = 2

// proximityHeadroomPages is the min-headroom gauge level (pages) at or
// below which the free pool is scraping the hard floor.
const proximityHeadroomPages = 4

// startTelemetry assembles the continuous-monitoring layer when
// configured: the sampler with probes over every fabric ledger, the
// monitor with its derived-alert watches, event sinks in the acting
// layers, and the registry sources that expose both. Runs after the
// fabric is fully built; the first tick fires one sampling interval
// into serving.
func (f *Fabric) startTelemetry() {
	if !f.cfg.Sample.Enabled {
		return
	}
	f.sampler = obs.NewSampler(f.cfg.Sample.Interval, f.cfg.Sample.Capacity)
	f.attachProbes()
	if f.cfg.Monitor.Enabled {
		f.monitor = obs.NewMonitor(f.sampler, f.tracer, f.cfg.Monitor)
		f.attachWatches()
		// Event emitters in the acting layers: lease decisions from each
		// device's scheduler, floor hits and forced collection from each
		// device's FTL. Migration and autoscale events route through
		// Monitor()/emitAutoscale at their call sites.
		for i, g := range f.groups {
			label := fmt.Sprintf("dev%d", i)
			if g.sched != nil {
				g.sched.SetEventSink(f.monitor, label)
			}
			if xd, ok := g.dev.(*ssd.Device); ok {
				xd.SetEventSink(f.monitor)
			}
		}
	}
	f.registry.Attach("series", func() any { return f.sampler.Dump() })
	if f.monitor != nil {
		f.registry.Attach("monitor", func() any { return f.monitor.Snapshot() })
	}
	// If a live HTTP exposition exists (deathbench -serve), this fabric
	// becomes the run it shows.
	obs.PublishLive(f.registry, f.sampler, f.monitor)
	f.sampler.Start(f.eng)
}

// attachProbes registers the standard probe set: fabric-total and
// per-class counters, the GC-coordination ledger, per-device
// calibration and observed service times, and per-shard latency
// histograms (initial shards here; migrated-in replicas add theirs in
// buildShard).
func (f *Fabric) attachProbes() {
	s := f.sampler

	s.AddCounter("fabric.submitted", func() float64 { return float64(f.stats.Totals().Submitted) })
	s.AddCounter("fabric.admitted", func() float64 { return float64(f.stats.Totals().Admitted) })
	s.AddCounter("fabric.rejected", func() float64 { return float64(f.stats.Totals().Rejected) })
	s.AddCounter("fabric.early_dropped", func() float64 { return float64(f.stats.Totals().EarlyDropped) })
	s.AddCounter("fabric.served", func() float64 { return float64(f.stats.Totals().Served) })
	s.AddCounter("fabric.missed", func() float64 { return float64(f.stats.Totals().DeadlineMissed) })
	// Completion-fed throughput: the served-count delta since the last
	// sample over the elapsed interval, so E23's ops/sec ceiling is
	// visible live on /metrics while the sweep runs.
	var lastServed float64
	var lastAt sim.Time
	s.AddGauge("fabric.throughput.ops_per_sec", func() float64 {
		now := f.eng.Now()
		served := float64(f.stats.Totals().Served)
		rate := 0.0
		if now > lastAt {
			rate = (served - lastServed) / (now - lastAt).Seconds()
			lastServed, lastAt = served, now
		}
		return rate
	})

	for idx, class := range []sched.Class{sched.LatencySensitive, sched.Throughput} {
		idx, name := idx, "class."+class.String()
		s.AddCounter(name+".served", func() float64 { return float64(f.byClass[idx].Served) })
		s.AddCounter(name+".missed", func() float64 { return float64(f.byClass[idx].Missed) })
		s.AddCounter(name+".rejected", func() float64 { return float64(f.byClass[idx].Rejected) })
	}

	s.AddCounter("gc.defers", func() float64 { return float64(f.GCCoord().Defers) })
	s.AddCounter("gc.floor_hits", func() float64 { return float64(f.GCCoord().FloorHits) })
	s.AddCounter("gc.refused", func() float64 { return float64(f.GCCoord().Refused) })
	s.AddCounter("gc.declined", func() float64 { return float64(f.GCCoord().HostDeclined) })
	s.AddGauge("gc.min_headroom_pages", func() float64 { return float64(f.GCCoord().MinHeadroomPages) })

	for i := 0; i < f.placed; i++ {
		g, name := f.groups[i], fmt.Sprintf("dev%d", i)
		s.AddGauge(name+".cal_ratio", func() float64 {
			r, w := g.stack.CalibratedCosts()
			if r <= 0 {
				return 0
			}
			return float64(w) / float64(r)
		})
		if est := g.stack.ServiceEstimator(); est != nil {
			for _, svc := range []string{blockdev.SvcRead, blockdev.SvcWrite} {
				ce := est.Class(svc)
				s.AddGauge(fmt.Sprintf("%s.svc_%s_us", name, svc), func() float64 {
					ce.Observe(int64(f.eng.Now()))
					return ce.EWMA() / 1e3
				})
			}
		}
	}

	for _, sh := range f.shards {
		f.attachShardProbes(sh)
	}
	if f.tracer != nil {
		for _, class := range []sched.Class{sched.LatencySensitive, sched.Throughput} {
			cname := class.String()
			s.AddHist("trace."+cname, func() *metrics.Histogram {
				return f.tracer.TotalHist(cname)
			})
		}
	}

	if f.profiler != nil {
		// Per-kind saturation gauges plus the device-0 chip heatmap:
		// the live view of where the machine's time goes, fed by the
		// same ledger the /profile flame export reads.
		for _, kind := range []obs.ResourceKind{obs.ResChip, obs.ResChannel, obs.ResCPU, obs.ResLink} {
			kind := kind
			s.AddGauge(fmt.Sprintf("fabric.util.%s_max", kind), func() float64 {
				return f.profiler.MaxUtil(kind)
			})
		}
		if xd, ok := f.groups[0].dev.(*ssd.Device); ok {
			for c := 0; c < xd.Array().Chips(); c++ {
				rname := fmt.Sprintf("dev0.chip%d", c)
				s.AddGauge(fmt.Sprintf("device.chip.%d.util", c), func() float64 {
					return f.profiler.UtilOf(obs.ResChip, rname)
				})
			}
		}
	}
}

// attachShardProbes adds one shard's served-latency histogram to the
// sampler (interval count/mean/p50/p99/min/stddev sub-series).
func (f *Fabric) attachShardProbes(sh *Shard) {
	if f.sampler == nil {
		return
	}
	name := sh.name
	f.sampler.AddHist(name+".latency", func() *metrics.Histogram {
		return f.shardLat.Hist(name)
	})
}

// attachWatches wires the monitor's derived alerts over the sampled
// series: per-class SLO burn, per-device write-service drift, GC
// storming, floor proximity, and admission collapse.
func (f *Fabric) attachWatches() {
	m := f.monitor
	m.WatchSLO("slo.latency", "class.latency.missed", "class.latency.served",
		latencySLOBudget, sched.LatencySensitive.String())
	m.WatchSLO("slo.throughput", "class.throughput.missed", "class.throughput.served",
		throughputSLOBudget, sched.Throughput.String())
	m.WatchRateFraction(obs.EventAdmissionCollapse, "admission",
		"fabric.rejected", "fabric.submitted", collapseRejectFraction,
		sched.LatencySensitive.String())
	m.WatchCounterRate(obs.EventGCStorm, "gc_storm", "gc.floor_hits",
		stormFloorHitsPerTick, "")
	m.WatchGaugeBelow(obs.EventFloorProximity, "floor_headroom",
		"gc.min_headroom_pages", proximityHeadroomPages, "")
	if f.cfg.Calibrate {
		for i := 0; i < f.placed; i++ {
			name := fmt.Sprintf("dev%d", i)
			m.WatchDrift(name+".drift", name+".svc_write_us",
				sched.LatencySensitive.String())
		}
	}
}

// emitAutoscale reports one controller actuation as a health event.
func (f *Fabric) emitAutoscale(sh *Shard, detail string, value float64) {
	if f.monitor == nil {
		return
	}
	f.monitor.Emit(obs.HealthEvent{
		Kind: obs.EventAutoscaleWalk, At: f.eng.Now(), Name: sh.name,
		Detail: detail, Value: value,
	})
}
