package serve

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/blockdev"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/ssd"
	"repro/internal/workload"
)

// smallDevice keeps fabric tests fast.
var smallDevice = ssd.Options{Channels: 2, ChipsPerChannel: 2, BlocksPerPlane: 48, PagesPerBlock: 16}

// withFabric runs fn in a simulated process over a fresh fabric and
// drains the engine, stopping the fabric afterwards so worker processes
// exit cleanly.
func withFabric(t *testing.T, cfg Config, fn func(p *sim.Proc, f *Fabric)) {
	t.Helper()
	eng := sim.NewEngine()
	eng.Go(func(p *sim.Proc) {
		f, err := New(p, eng, cfg)
		if err != nil {
			t.Errorf("new fabric: %v", err)
			return
		}
		fn(p, f)
		f.Stop(true)
	})
	eng.Run()
}

func baseConfig(shards int) Config {
	return Config{
		Shards:        shards,
		Mode:          blockdev.MultiQueue,
		DeviceOptions: smallDevice,
		Scheduled:     true,
		WriteCost:     16,
		QueueDepth:    4,
	}
}

func TestFabricServesAcrossShards(t *testing.T) {
	withFabric(t, baseConfig(4), func(p *sim.Proc, f *Fabric) {
		fe := NewFrontend(f, 64, 32)
		for i := int64(0); i < 64; i++ {
			if err := fe.Put(p, i, fe.valueFor(i, 0)); err != nil {
				t.Fatalf("put %d: %v", i, err)
			}
		}
		for i := int64(0); i < 64; i++ {
			if err := fe.Get(p, i); err != nil {
				t.Fatalf("get %d: %v", i, err)
			}
		}
		if err := fe.Scan(p, 0, 8); err != nil {
			t.Fatalf("scan: %v", err)
		}
		// Routing spreads 64 keys over every shard, and each shard's
		// store holds exactly what was routed to it.
		for _, sh := range f.Shards() {
			if sh.Stats().Served == 0 {
				t.Errorf("shard %s served nothing", sh.Name())
			}
		}
		for i := int64(0); i < 64; i++ {
			sh := fe.ShardFor(fe.Key(i))
			got, err := sh.System().Store.Get(p, fe.Key(i))
			if err != nil || !bytes.Equal(got, fe.valueFor(i, 0)) {
				t.Fatalf("key %d on %s: %q %v", i, sh.Name(), got, err)
			}
		}
		if f.Errors != 0 {
			t.Errorf("engine errors: %d", f.Errors)
		}
	})
}

func TestAdmissionBoundsQueueAndRejects(t *testing.T) {
	cfg := baseConfig(1)
	cfg.WorkersPerShard = 1
	cfg.Admission = AdmissionConfig{Enabled: true, QueueLimit: 4}
	withFabric(t, cfg, func(p *sim.Proc, f *Fabric) {
		fe := NewFrontend(f, 16, 32)
		const n = 50
		wg := sim.NewWaitGroup(p.Engine())
		wg.Add(n)
		rejects := 0
		for i := 0; i < n; i++ {
			fe.Submit(Op{Kind: OpPut, Key: fe.Key(int64(i % 16)), Value: fe.valueFor(0, 0), Class: sched.Throughput},
				func(err error) {
					if errors.Is(err, ErrRejected) {
						rejects++
					}
					wg.Done()
				})
		}
		wg.Wait(p)
		st := f.Stats().Shard("shard0")
		if st.MaxQueue > 4 {
			t.Errorf("queue high-water %d exceeds limit 4", st.MaxQueue)
		}
		if st.Rejected == 0 || rejects != int(st.Rejected) {
			t.Errorf("rejects: callback saw %d, stats say %d (want > 0, equal)", rejects, st.Rejected)
		}
		if st.Admitted+st.Rejected != st.Submitted || st.Submitted != n {
			t.Errorf("admission ledger inconsistent: %+v", *st)
		}
	})
}

func TestAdmissionTokenBucketEmptyRejectsImmediately(t *testing.T) {
	cfg := baseConfig(1)
	cfg.Admission = AdmissionConfig{Enabled: true, QueueLimit: 1000, Rate: 1000, Burst: 2}
	withFabric(t, cfg, func(p *sim.Proc, f *Fabric) {
		fe := NewFrontend(f, 16, 32)
		rejects := 0
		for i := 0; i < 10; i++ {
			fe.Submit(Op{Kind: OpGet, Key: fe.Key(0), Class: sched.LatencySensitive}, func(err error) {
				if errors.Is(err, ErrRejected) {
					rejects++
				}
			})
		}
		// Burst of 2 admitted at t=0; the other 8 find the bucket empty
		// and are rejected on the spot, not queued behind it.
		if rejects != 8 {
			t.Errorf("rejects = %d, want 8 (burst 2 of 10)", rejects)
		}
		// A millisecond refills one token.
		p.Sleep(1100 * sim.Microsecond)
		fe.Submit(Op{Kind: OpGet, Key: fe.Key(0), Class: sched.LatencySensitive}, func(err error) {
			if err != nil {
				t.Errorf("post-refill submit rejected: %v", err)
			}
		})
	})
}

func TestDeadlineMissAccounting(t *testing.T) {
	cfg := baseConfig(1)
	cfg.Admission = AdmissionConfig{Enabled: true, QueueLimit: 64, LatencyDeadline: 1, ThroughputDeadline: 1}
	withFabric(t, cfg, func(p *sim.Proc, f *Fabric) {
		fe := NewFrontend(f, 16, 32)
		for i := int64(0); i < 8; i++ {
			if err := fe.Put(p, i, fe.valueFor(i, 0)); err != nil {
				t.Fatalf("put: %v", err)
			}
		}
		st := f.Stats().Shard("shard0")
		if st.DeadlineMissed != st.Served || st.Served == 0 {
			t.Errorf("1ns deadline: missed %d of %d served, want all", st.DeadlineMissed, st.Served)
		}
	})
}

// TestAdaptiveEarlyDropEngages floods one slow shard through adaptive
// admission: once the estimator warms, requests whose queue position
// already implies a deadline miss must be refused at the door, counted
// as early drops inside the reject ledger. (Errors inside the fabric
// proc use t.Errorf: t.Fatalf would Goexit mid-handoff and wedge the
// engine.)
func TestAdaptiveEarlyDropEngages(t *testing.T) {
	cfg := baseConfig(1)
	cfg.WorkersPerShard = 1
	cfg.Admission = AdmissionConfig{
		Enabled:            true,
		QueueLimit:         1000, // the early drop, not the queue bound, must say no
		LatencyDeadline:    300 * sim.Microsecond,
		ThroughputDeadline: 500 * sim.Microsecond,
		Adaptive:           true,
		EstimatorWindow:    10 * sim.Millisecond,
	}
	withFabric(t, cfg, func(p *sim.Proc, f *Fabric) {
		fe := NewFrontend(f, 16, 32)
		if err := fe.Preload(p); err != nil {
			t.Errorf("preload: %v", err)
			return
		}
		f.ResetStats()
		rejects := 0
		wg := sim.NewWaitGroup(p.Engine())
		const n = 600
		wg.Add(n)
		for i := 0; i < n; i++ {
			// Puts commit through the WAL to flash, so each one is slow
			// enough to pile a real backlog the predictor can see doom in.
			fe.Submit(Op{Kind: OpPut, Key: fe.Key(int64(i % 16)), Value: fe.valueFor(int64(i%16), 1),
				Class: sched.LatencySensitive},
				func(err error) {
					if errors.Is(err, ErrRejected) {
						rejects++
					}
					wg.Done()
				})
			// A sustained trickle, not an instantaneous burst: the
			// estimator needs completions to learn from mid-flood.
			p.Sleep(50 * sim.Microsecond)
		}
		wg.Wait(p)
		st := f.Stats().Shard("shard0")
		if st.EarlyDropped == 0 {
			t.Errorf("no early drops under a %d-deep doomed backlog: %+v", st.MaxQueue, *st)
		}
		if st.EarlyDropped > st.Rejected {
			t.Errorf("early drops %d exceed rejects %d (must be a subset)", st.EarlyDropped, st.Rejected)
		}
		if rejects != int(st.Rejected) {
			t.Errorf("callback saw %d rejects, ledger says %d", rejects, st.Rejected)
		}
		if st.Admitted+st.Rejected != st.Submitted {
			t.Errorf("admission ledger inconsistent: %+v", *st)
		}
	})
}

// TestAdaptiveDeadlineStaysClamped: the derived deadline never leaves
// [1/2, 2] × the static deadline, whatever the observed distribution
// does.
func TestAdaptiveDeadlineStaysClamped(t *testing.T) {
	cfg := baseConfig(1)
	cfg.Admission = AdmissionConfig{
		Enabled:         true,
		QueueLimit:      64,
		LatencyDeadline: 500 * sim.Microsecond,
		Adaptive:        true,
	}
	withFabric(t, cfg, func(p *sim.Proc, f *Fabric) {
		fe := NewFrontend(f, 16, 32)
		if err := fe.Preload(p); err != nil {
			t.Errorf("preload: %v", err)
			return
		}
		sh := f.Shards()[0]
		static := cfg.Admission.LatencyDeadline
		// Cold estimator: the static deadline is the seed.
		if d := sh.deadlineFor(sched.LatencySensitive); d != static {
			t.Errorf("cold deadline = %v, want static %v", d, static)
		}
		for i := int64(0); i < 64; i++ {
			if err := fe.Get(p, i%16); err != nil {
				t.Errorf("get: %v", err)
				return
			}
		}
		d := sh.deadlineFor(sched.LatencySensitive)
		if d < static/2 || d > 2*static {
			t.Errorf("derived deadline %v outside [%v, %v]", d, static/2, 2*static)
		}
	})
}

// TestAutoscalerGrowsUnderMissesWithinBounds overloads one undersized
// shard: the controller must add workers, never exceed MaxWorkers,
// never drop below MinWorkers, and make a bounded number of walks (the
// no-unbounded-oscillation contract).
func TestAutoscalerGrowsUnderMissesWithinBounds(t *testing.T) {
	cfg := baseConfig(1)
	cfg.WorkersPerShard = 1
	cfg.Admission = AdmissionConfig{
		Enabled:            true,
		QueueLimit:         32,
		LatencyDeadline:    200 * sim.Microsecond,
		ThroughputDeadline: 500 * sim.Microsecond,
	}
	cfg.Autoscale = AutoscaleConfig{
		Enabled:    true,
		Interval:   sim.Millisecond,
		MinWorkers: 1,
		MaxWorkers: 3,
	}
	withFabric(t, cfg, func(p *sim.Proc, f *Fabric) {
		fe := NewFrontend(f, 32, 32)
		if err := fe.Preload(p); err != nil {
			t.Errorf("preload: %v", err)
			return
		}
		f.ResetStats()
		sh := f.Shards()[0]
		stop := p.Now() + 40*sim.Millisecond
		// Closed-loop put flood from 8 clients (puts commit to flash, so
		// these deadlines miss constantly): the controller must grow the
		// pool. Rejections complete synchronously, so every loop sleeps a
		// beat — a client that retried at the same instant would freeze
		// virtual time.
		for c := 0; c < 8; c++ {
			p.Engine().Go(func(cp *sim.Proc) {
				for cp.Now() < stop {
					k := int64(cp.Now()) % 32
					op := Op{Kind: OpPut, Key: fe.Key(k), Value: fe.valueFor(k, 1), Class: sched.LatencySensitive}
					c := sim.NewCond(cp.Engine())
					fe.Submit(op, func(error) { c.Fire() })
					c.Await(cp)
					cp.Sleep(10 * sim.Microsecond)
				}
			})
		}
		for p.Now() < stop {
			p.Sleep(sim.Millisecond)
			if w := sh.Workers(); w < 1 || w > 3 {
				t.Errorf("workers = %d outside [1, 3]", w)
				return
			}
		}
		a := f.Autoscaler()
		if a.Grows == 0 {
			t.Errorf("controller never grew an overloaded shard (ticks=%d)", a.Ticks)
		}
		if sh.Workers() != 3 {
			t.Errorf("workers = %d after sustained overload, want the ceiling 3", sh.Workers())
		}
		// Bounded actuation: worker walks can at most sweep the range
		// once per direction change; a flapping controller would dwarf
		// this.
		if a.Grows+a.Shrinks > 8 {
			t.Errorf("worker pool walked %d times in 40ms (flapping)", a.Grows+a.Shrinks)
		}
	})
}

// TestAutoscalerSteadyWorkloadDoesNotFlap serves a light steady load:
// after the controller settles (it may return over-provisioned
// workers), it must go quiet — zero walks over the second half of the
// run.
func TestAutoscalerSteadyWorkloadDoesNotFlap(t *testing.T) {
	cfg := baseConfig(1)
	cfg.WorkersPerShard = 2
	cfg.Admission = AdmissionConfig{Enabled: true, QueueLimit: 64}
	cfg.Autoscale = AutoscaleConfig{
		Enabled:    true,
		Interval:   sim.Millisecond,
		MinWorkers: 1,
		MaxWorkers: 4,
	}
	withFabric(t, cfg, func(p *sim.Proc, f *Fabric) {
		fe := NewFrontend(f, 32, 32)
		if err := fe.Preload(p); err != nil {
			t.Errorf("preload: %v", err)
			return
		}
		f.ResetStats()
		sh := f.Shards()[0]
		drive := func(ms int) bool {
			until := p.Now() + sim.Time(ms)*sim.Millisecond
			for p.Now() < until {
				if err := fe.Get(p, int64(p.Now())%32); err != nil {
					t.Errorf("get: %v", err)
					return false
				}
				p.Sleep(150 * sim.Microsecond)
			}
			return true
		}
		if !drive(15) { // settle
			return
		}
		settled := f.Autoscaler().Walks()
		if !drive(15) { // steady half: the controller must hold still
			return
		}
		if got := f.Autoscaler().Walks(); got != settled {
			t.Errorf("controller walked %d more times on a steady workload", got-settled)
		}
		if w := sh.Workers(); w < 1 || w > 4 {
			t.Errorf("workers = %d outside bounds", w)
		}
	})
}

func TestStopWithoutDrainDropsBacklog(t *testing.T) {
	cfg := baseConfig(1)
	cfg.WorkersPerShard = 1
	withFabric(t, cfg, func(p *sim.Proc, f *Fabric) {
		fe := NewFrontend(f, 16, 32)
		stopped := 0
		for i := 0; i < 30; i++ {
			fe.Submit(Op{Kind: OpPut, Key: fe.Key(int64(i % 16)), Value: fe.valueFor(0, 0), Class: sched.Throughput},
				func(err error) {
					if errors.Is(err, ErrStopped) {
						stopped++
					}
				})
		}
		f.Stop(false)
		if stopped == 0 {
			t.Error("no queued requests were dropped at stop")
		}
		st := f.Stats().Shard("shard0")
		if int(st.Dropped) != stopped {
			t.Errorf("dropped ledger %d != callbacks %d", st.Dropped, stopped)
		}
		if err := fe.Get(p, 0); !errors.Is(err, ErrStopped) {
			t.Errorf("submit after stop: %v, want ErrStopped", err)
		}
	})
}

func TestFabricCrashReopenPerShard(t *testing.T) {
	for _, progressive := range []bool{false, true} {
		name := "conservative"
		if progressive {
			name = "progressive"
		}
		t.Run(name, func(t *testing.T) {
			cfg := baseConfig(3)
			cfg.Progressive = progressive
			// Checkpoint often so every shard has flipped meta at least
			// once before the crash and reopening runs real recovery.
			cfg.Store.CheckpointBytes = 1 << 10
			withFabric(t, cfg, func(p *sim.Proc, f *Fabric) {
				fe := NewFrontend(f, 48, 32)
				for i := int64(0); i < 48; i++ {
					if err := fe.Put(p, i, fe.valueFor(i, 0)); err != nil {
						t.Fatalf("put %d: %v", i, err)
					}
				}
				// Flip every shard's meta at least once so reopening runs
				// real recovery (checkpoint + WAL replay), then lay down a
				// post-checkpoint tail that only the WAL holds.
				for _, sh := range f.Shards() {
					if err := sh.System().Store.Checkpoint(p); err != nil {
						t.Fatalf("checkpoint %s: %v", sh.Name(), err)
					}
				}
				for i := int64(0); i < 12; i++ {
					if err := fe.Put(p, i, fe.valueFor(i, 0)); err != nil {
						t.Fatalf("tail put %d: %v", i, err)
					}
				}
				if err := f.Crash(p); err != nil {
					t.Fatalf("crash: %v", err)
				}
				// Every shard reopened from its surviving region: all
				// committed keys readable, both through the frontend and
				// directly from each recovered store.
				for i := int64(0); i < 48; i++ {
					sh := fe.ShardFor(fe.Key(i))
					got, err := sh.System().Store.Get(p, fe.Key(i))
					if err != nil || !bytes.Equal(got, fe.valueFor(i, 0)) {
						t.Fatalf("after crash, key %d on %s: %q %v", i, sh.Name(), got, err)
					}
				}
				if err := fe.Get(p, 0); err != nil {
					t.Fatalf("serving after crash: %v", err)
				}
				for _, sh := range f.Shards() {
					if sh.System().Store.Recoveries == 0 {
						t.Errorf("shard %s did not run recovery", sh.Name())
					}
				}
			})
		})
	}
}

func TestCrashWhileServingResumes(t *testing.T) {
	cfg := baseConfig(2)
	cfg.WorkersPerShard = 1
	withFabric(t, cfg, func(p *sim.Proc, f *Fabric) {
		fe := NewFrontend(f, 32, 32)
		for i := int64(0); i < 32; i++ {
			if err := fe.Put(p, i, fe.valueFor(i, 0)); err != nil {
				t.Fatalf("put %d: %v", i, err)
			}
		}
		// Pile up a backlog, then pull the plug mid-serving: every queued
		// request must fail with ErrCrashed (not ErrStopped — the fabric
		// comes back), and in-flight work must settle before the device
		// loses volatile state.
		crashed, settled := 0, 0
		const burst = 20
		for i := 0; i < burst; i++ {
			fe.Submit(Op{Kind: OpGet, Key: fe.Key(int64(i % 32)), Class: sched.LatencySensitive},
				func(err error) {
					settled++
					if errors.Is(err, ErrCrashed) {
						crashed++
					}
				})
		}
		if err := f.Crash(p); err != nil {
			t.Fatalf("crash: %v", err)
		}
		if settled != burst {
			t.Fatalf("only %d of %d requests settled through the crash", settled, burst)
		}
		if crashed == 0 {
			t.Fatal("no queued requests were failed with ErrCrashed")
		}
		// Serving resumes: committed data is intact and new requests flow.
		for i := int64(0); i < 32; i++ {
			sh := fe.ShardFor(fe.Key(i))
			got, err := sh.System().Store.Get(p, fe.Key(i))
			if err != nil || !bytes.Equal(got, fe.valueFor(i, 0)) {
				t.Fatalf("after crash, key %d: %q %v", i, got, err)
			}
		}
		if err := fe.Get(p, 3); err != nil {
			t.Fatalf("serving after crash: %v", err)
		}
		if err := fe.Put(p, 40, fe.valueFor(40, 0)); err != nil {
			t.Fatalf("writing after crash: %v", err)
		}
	})
}

func TestFrontendDrivesTenantMix(t *testing.T) {
	cfg := baseConfig(2)
	cfg.Admission = AdmissionConfig{Enabled: true, QueueLimit: 32}
	eng := sim.NewEngine()
	var fab *Fabric
	lat := metrics.NewTenantLatencies()
	eng.Go(func(p *sim.Proc) {
		f, err := New(p, eng, cfg)
		if err != nil {
			t.Errorf("new fabric: %v", err)
			return
		}
		fab = f
		fe := NewFrontend(f, 96, 32)
		if err := fe.Preload(p); err != nil {
			t.Errorf("preload: %v", err)
			return
		}
		f.Stats().Reset()
		horizon := p.Now() + 5*sim.Millisecond
		if err := fe.Drive(workload.MixedRWMix(), horizon, lat); err != nil {
			t.Errorf("drive: %v", err)
		}
		f.StopAt(horizon, false)
	})
	eng.Run()
	if fab == nil {
		t.Fatal("fabric never built")
	}
	tot := fab.Stats().Totals()
	if tot.Served == 0 {
		t.Fatal("mix drove no served requests")
	}
	// Every tenant in the mix recorded completed requests.
	for _, spec := range workload.MixedRWMix() {
		if lat.Hist(spec.Name).Count() == 0 {
			t.Errorf("tenant %s recorded no latencies", spec.Name)
		}
	}
	if fab.Errors != 0 {
		t.Errorf("engine errors during drive: %d", fab.Errors)
	}
}

// TestFabricGCCoordinationLedger: a coordinated fabric's latency-class
// traffic leases GC deferrals from its devices, and the fabric merges
// the host- and device-side ledgers.
func TestFabricGCCoordinationLedger(t *testing.T) {
	cfg := baseConfig(2)
	cfg.GCCoordinate = true
	withFabric(t, cfg, func(p *sim.Proc, f *Fabric) {
		if !f.Config().Sched.GCCoordinate {
			t.Fatal("GCCoordinate not plumbed into the scheduler config")
		}
		fe := NewFrontend(f, 32, 32)
		for i := int64(0); i < 32; i++ {
			if err := fe.Put(p, i, fe.valueFor(i, 0)); err != nil {
				t.Fatalf("put %d: %v", i, err)
			}
		}
		for i := int64(0); i < 32; i++ {
			if err := fe.Get(p, i); err != nil {
				t.Fatalf("get %d: %v", i, err)
			}
		}
		g := f.GCCoord()
		if g.HostRequests == 0 {
			t.Fatal("no deferral leases requested by a coordinated fabric under latency traffic")
		}
		if g.HostResumes == 0 {
			t.Fatal("no leases released even though every burst drained")
		}
	})
}

// TestFabricUncoordinatedSendsNoControlTraffic: the default fabric must
// not lease deferrals.
func TestFabricUncoordinatedSendsNoControlTraffic(t *testing.T) {
	withFabric(t, baseConfig(2), func(p *sim.Proc, f *Fabric) {
		fe := NewFrontend(f, 16, 32)
		for i := int64(0); i < 16; i++ {
			if err := fe.Put(p, i, fe.valueFor(i, 0)); err != nil {
				t.Fatalf("put %d: %v", i, err)
			}
		}
		if g := f.GCCoord(); g.HostRequests != 0 {
			t.Fatalf("uncoordinated fabric leased %d deferrals", g.HostRequests)
		}
	})
}
