package serve

import (
	"fmt"
	"hash/fnv"

	"repro/internal/kvstore"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Target is one routable serving destination: a physical Shard in the
// default single-placement fabric, or a replica group (package place)
// that fans a request out behind the same submit surface.
type Target interface {
	// Submit routes one request through the target's admission path;
	// done fires exactly once.
	Submit(op Op, done func(error))
	// Systems lists the KV systems that must hold every key routed to
	// this target — one per replica. Preload and churn write all of
	// them, so replicas start identical.
	Systems() []*kvstore.System
}

// Router supplies the frontend's routing table: key k is served by
// Targets()[FNV32a(k) mod len]. The table's order must be stable for
// the life of the router — that is what keeps a key's assignment
// stable across crashes and reopens.
type Router interface {
	Targets() []Target
}

// Frontend is the client-facing edge of the fabric: it hash-routes keys
// to targets (physical shards by default, replica groups when a router
// from package place is attached) and drives client populations from
// workload.TenantSpec mixes. Keys are "userNNNNNNNN" over [0, Keys).
type Frontend struct {
	fab    *Fabric
	router Router // nil = the fabric's own shard table
	// Keys is the frontend's key-space size.
	Keys int64
	// ValueSize is the payload per written key.
	ValueSize int
	// ScanLimit bounds scan requests issued for sequential-read tenants.
	ScanLimit int
	// RejectBackoff is how long a closed-loop client sleeps after an
	// admission reject before its next request (retry storms otherwise
	// collapse virtual time to a busy loop).
	RejectBackoff sim.Time

	churned int // completed churn rounds, the running value salt
}

// NewFrontend builds a frontend over fab with the given key space.
func NewFrontend(fab *Fabric, keys int64, valueSize int) *Frontend {
	if keys < 1 {
		keys = 1
	}
	if valueSize <= 0 {
		valueSize = 64
	}
	return &Frontend{
		fab:           fab,
		Keys:          keys,
		ValueSize:     valueSize,
		ScanLimit:     32,
		RejectBackoff: 100 * sim.Microsecond,
	}
}

// Key renders key index i.
func (f *Frontend) Key(i int64) []byte {
	return []byte(fmt.Sprintf("user%08d", i))
}

// SetRouter replaces the frontend's routing table (package place
// attaches its replica groups here). A nil router restores the default
// fabric shard table.
func (f *Frontend) SetRouter(r Router) { f.router = r }

// targets returns the live routing table.
func (f *Frontend) targets() []Target {
	if f.router != nil {
		return f.router.Targets()
	}
	return f.fab.Targets()
}

// routeIndex hashes a key into an n-entry routing table (FNV-1a over
// the key bytes).
func routeIndex(key []byte, n int) int {
	h := fnv.New32a()
	h.Write(key)
	return int(h.Sum32() % uint32(n))
}

// TargetFor routes a key to its serving target.
func (f *Frontend) TargetFor(key []byte) Target {
	ts := f.targets()
	return ts[routeIndex(key, len(ts))]
}

// ShardFor routes a key to its physical shard on the default router.
// With a replica-aware router attached, use TargetFor — the fabric's
// raw shard table no longer is the routing table.
func (f *Frontend) ShardFor(key []byte) *Shard {
	return f.fab.shards[routeIndex(key, len(f.fab.shards))]
}

// Submit routes op to its key's target through admission control.
// With tracing on, this is where the request's span opens — and the
// span closes exactly when done fires, so span totals and client
// latencies measure the same interval.
func (f *Frontend) Submit(op Op, done func(error)) {
	if tr := f.fab.tracer; tr != nil && op.Span == nil {
		sp := tr.Open(op.Class.String(), op.Kind.String(), f.fab.eng.Now())
		op.Span = sp
		inner := done
		done = func(err error) {
			sp.Close(f.fab.eng.Now(), err)
			if inner != nil {
				inner(err)
			}
		}
	}
	f.TargetFor(op.Key).Submit(op, done)
}

// do submits op and blocks the calling process until it settles.
func (f *Frontend) do(p *sim.Proc, op Op) error {
	c := sim.NewCond(p.Engine())
	var oerr error
	f.Submit(op, func(err error) {
		oerr = err
		c.Fire()
	})
	c.Await(p)
	return oerr
}

// Get point-reads key index i through admission (a missing key is not
// an error).
func (f *Frontend) Get(p *sim.Proc, i int64) error {
	return f.do(p, Op{Kind: OpGet, Key: f.Key(i), Class: sched.LatencySensitive})
}

// Put upserts key index i through admission.
func (f *Frontend) Put(p *sim.Proc, i int64, value []byte) error {
	return f.do(p, Op{Kind: OpPut, Key: f.Key(i), Value: value, Class: sched.Throughput})
}

// Scan runs a bounded scan on key index i's shard through admission.
func (f *Frontend) Scan(p *sim.Proc, i int64, limit int) error {
	return f.do(p, Op{Kind: OpScan, Key: f.Key(i), ScanLimit: limit, Class: sched.Throughput})
}

// valueFor builds key i's deterministic payload (salt varies content
// between churn rounds so rewrites are real page updates).
func (f *Frontend) valueFor(i int64, salt byte) []byte {
	v := make([]byte, f.ValueSize)
	for j := range v {
		v[j] = byte(int64(j)+i) ^ salt
	}
	return v
}

// writeAll writes every key once, straight into every backing store of
// its target (bypassing admission — and writing every replica, so
// replicated placements start identical), then checkpoints each store
// so the trees land on flash.
func (f *Frontend) writeAll(p *sim.Proc, salt byte) error {
	const batch = 8
	ts := f.targets()
	txns := make([][]*kvstore.Txn, len(ts))
	counts := make([]int, len(ts))
	for ti, t := range ts {
		txns[ti] = make([]*kvstore.Txn, len(t.Systems()))
	}
	for i := int64(0); i < f.Keys; i++ {
		key := f.Key(i)
		ti := routeIndex(key, len(ts))
		for si, sys := range ts[ti].Systems() {
			if txns[ti][si] == nil {
				txns[ti][si] = sys.Store.Begin()
			}
			txns[ti][si].Put(key, f.valueFor(i, salt))
		}
		if counts[ti]++; counts[ti]%batch == 0 {
			for si, tx := range txns[ti] {
				if tx != nil {
					if err := tx.Commit(p); err != nil {
						return fmt.Errorf("serve: preload target %d: %w", ti, err)
					}
					txns[ti][si] = nil
				}
			}
		}
	}
	for ti := range txns {
		for _, tx := range txns[ti] {
			if tx != nil {
				if err := tx.Commit(p); err != nil {
					return fmt.Errorf("serve: preload target %d: %w", ti, err)
				}
			}
		}
	}
	for ti, t := range ts {
		for _, sys := range t.Systems() {
			if err := sys.Store.Checkpoint(p); err != nil {
				return fmt.Errorf("serve: preload checkpoint target %d: %w", ti, err)
			}
		}
	}
	return nil
}

// Preload writes every key once, straight into the shard stores
// (bypassing admission), and checkpoints each shard so a measurement
// window starts from a warm tree on flash instead of an empty memtable
// that would serve reads without any device I/O. Call before Drive,
// from a simulated process, with no concurrent clients.
func (f *Frontend) Preload(p *sim.Proc) error { return f.writeAll(p, 0) }

// Churn rewrites every key rounds more times (fresh values each round,
// checkpoint after each pass). Every rewrite invalidates flash pages,
// so churn drags the devices' free pools down toward the GC watermarks
// — a measurement window that follows starts with garbage collection
// live, the steady state of a served device, instead of on
// factory-fresh flash that would never collect inside the window. The
// salt keeps rotating across separate Churn calls, so callers that
// churn one round at a time (checking device state between rounds)
// still write fresh values every pass.
func (f *Frontend) Churn(p *sim.Proc, rounds int) error {
	for r := 0; r < rounds; r++ {
		f.churned++
		if err := f.writeAll(p, byte(f.churned)); err != nil {
			return err
		}
	}
	return nil
}

// opFor maps one generated access to a serving request. Sequential
// reads from throughput tenants become bounded scans (the analytics
// stream of ScanHeavyMix); everything else maps read→get, write→put.
func (f *Frontend) opFor(spec *workload.TenantSpec, a workload.Access) Op {
	class := sched.Throughput
	if spec.LatencySensitive {
		class = sched.LatencySensitive
	}
	if a.Kind == workload.Write {
		return Op{Kind: OpPut, Key: f.Key(a.LPN), Value: f.valueFor(a.LPN, 0), Class: class}
	}
	if spec.Pattern == workload.SR && !spec.LatencySensitive {
		return Op{Kind: OpScan, Key: f.Key(a.LPN), ScanLimit: f.ScanLimit, Class: class}
	}
	return Op{Kind: OpGet, Key: f.Key(a.LPN), Class: class}
}

// Drive spawns client processes for the tenant mix over the fabric and
// returns immediately; clients stop issuing at horizon. Served-request
// latencies are recorded per tenant into lat (rejected and dropped
// requests appear only in ShardStats — they never occupied the
// system). Open-loop tenants (ThinkTime > 0) issue on the clock
// regardless of completions; closed-loop tenants run Depth concurrent
// request loops and back off RejectBackoff after a reject.
func (f *Frontend) Drive(specs []workload.TenantSpec, horizon sim.Time, lat *metrics.TenantLatencies) error {
	eng := f.fab.eng
	for i := range specs {
		spec := specs[i]
		gen, err := workload.NewTenantGenerator(spec, f.Keys)
		if err != nil {
			return err
		}
		if spec.ThinkTime > 0 {
			eng.Go(func(p *sim.Proc) {
				for p.Now() < horizon {
					op := f.opFor(&spec, gen.Next())
					t0 := p.Now()
					f.Submit(op, func(err error) {
						if err == nil {
							lat.Record(spec.Name, int64(eng.Now()-t0))
						}
					})
					p.Sleep(spec.ThinkTime)
				}
			})
			continue
		}
		for d := 0; d < spec.Depth; d++ {
			eng.Go(func(p *sim.Proc) {
				for p.Now() < horizon {
					op := f.opFor(&spec, gen.Next())
					t0 := p.Now()
					err := f.do(p, op)
					switch err {
					case nil:
						lat.Record(spec.Name, int64(p.Now()-t0))
					case ErrRejected, ErrCrashed:
						// Crashed requests are lost, not fatal: the fabric
						// reopens and the client population must survive it.
						p.Sleep(f.RejectBackoff)
					case ErrStopped:
						return
					default:
						// Engine error: recorded in Fabric.Errors; keep
						// driving so one failure does not idle the client.
						p.Sleep(f.RejectBackoff)
					}
				}
			})
		}
	}
	return nil
}
