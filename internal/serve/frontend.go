package serve

import (
	"fmt"
	"hash/fnv"

	"repro/internal/kvstore"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Frontend is the client-facing edge of the fabric: it hash-routes keys
// to shards and drives client populations from workload.TenantSpec
// mixes. Keys are "userNNNNNNNN" over [0, Keys).
type Frontend struct {
	fab *Fabric
	// Keys is the frontend's key-space size.
	Keys int64
	// ValueSize is the payload per written key.
	ValueSize int
	// ScanLimit bounds scan requests issued for sequential-read tenants.
	ScanLimit int
	// RejectBackoff is how long a closed-loop client sleeps after an
	// admission reject before its next request (retry storms otherwise
	// collapse virtual time to a busy loop).
	RejectBackoff sim.Time

	churned int // completed churn rounds, the running value salt
}

// NewFrontend builds a frontend over fab with the given key space.
func NewFrontend(fab *Fabric, keys int64, valueSize int) *Frontend {
	if keys < 1 {
		keys = 1
	}
	if valueSize <= 0 {
		valueSize = 64
	}
	return &Frontend{
		fab:           fab,
		Keys:          keys,
		ValueSize:     valueSize,
		ScanLimit:     32,
		RejectBackoff: 100 * sim.Microsecond,
	}
}

// Key renders key index i.
func (f *Frontend) Key(i int64) []byte {
	return []byte(fmt.Sprintf("user%08d", i))
}

// ShardFor routes a key to its shard (FNV-1a over the key bytes).
func (f *Frontend) ShardFor(key []byte) *Shard {
	h := fnv.New32a()
	h.Write(key)
	return f.fab.shards[h.Sum32()%uint32(len(f.fab.shards))]
}

// Submit routes op to its key's shard through admission control.
func (f *Frontend) Submit(op Op, done func(error)) {
	f.ShardFor(op.Key).Submit(op, done)
}

// do submits op and blocks the calling process until it settles.
func (f *Frontend) do(p *sim.Proc, op Op) error {
	c := sim.NewCond(p.Engine())
	var oerr error
	f.Submit(op, func(err error) {
		oerr = err
		c.Fire()
	})
	c.Await(p)
	return oerr
}

// Get point-reads key index i through admission (a missing key is not
// an error).
func (f *Frontend) Get(p *sim.Proc, i int64) error {
	return f.do(p, Op{Kind: OpGet, Key: f.Key(i), Class: sched.LatencySensitive})
}

// Put upserts key index i through admission.
func (f *Frontend) Put(p *sim.Proc, i int64, value []byte) error {
	return f.do(p, Op{Kind: OpPut, Key: f.Key(i), Value: value, Class: sched.Throughput})
}

// Scan runs a bounded scan on key index i's shard through admission.
func (f *Frontend) Scan(p *sim.Proc, i int64, limit int) error {
	return f.do(p, Op{Kind: OpScan, Key: f.Key(i), ScanLimit: limit, Class: sched.Throughput})
}

// valueFor builds key i's deterministic payload (salt varies content
// between churn rounds so rewrites are real page updates).
func (f *Frontend) valueFor(i int64, salt byte) []byte {
	v := make([]byte, f.ValueSize)
	for j := range v {
		v[j] = byte(int64(j)+i) ^ salt
	}
	return v
}

// writeAll writes every key once, straight into the shard stores
// (bypassing admission), then checkpoints each shard so the trees land
// on flash.
func (f *Frontend) writeAll(p *sim.Proc, salt byte) error {
	const batch = 8
	txns := make([]*kvstore.Txn, len(f.fab.shards))
	counts := make([]int, len(f.fab.shards))
	for i := int64(0); i < f.Keys; i++ {
		key := f.Key(i)
		sh := f.ShardFor(key)
		if txns[sh.idx] == nil {
			txns[sh.idx] = sh.sys.Store.Begin()
		}
		txns[sh.idx].Put(key, f.valueFor(i, salt))
		if counts[sh.idx]++; counts[sh.idx]%batch == 0 {
			if err := txns[sh.idx].Commit(p); err != nil {
				return fmt.Errorf("serve: preload shard %d: %w", sh.idx, err)
			}
			txns[sh.idx] = nil
		}
	}
	for idx, tx := range txns {
		if tx != nil {
			if err := tx.Commit(p); err != nil {
				return fmt.Errorf("serve: preload shard %d: %w", idx, err)
			}
		}
	}
	for _, sh := range f.fab.shards {
		if err := sh.sys.Store.Checkpoint(p); err != nil {
			return fmt.Errorf("serve: preload checkpoint shard %d: %w", sh.idx, err)
		}
	}
	return nil
}

// Preload writes every key once, straight into the shard stores
// (bypassing admission), and checkpoints each shard so a measurement
// window starts from a warm tree on flash instead of an empty memtable
// that would serve reads without any device I/O. Call before Drive,
// from a simulated process, with no concurrent clients.
func (f *Frontend) Preload(p *sim.Proc) error { return f.writeAll(p, 0) }

// Churn rewrites every key rounds more times (fresh values each round,
// checkpoint after each pass). Every rewrite invalidates flash pages,
// so churn drags the devices' free pools down toward the GC watermarks
// — a measurement window that follows starts with garbage collection
// live, the steady state of a served device, instead of on
// factory-fresh flash that would never collect inside the window. The
// salt keeps rotating across separate Churn calls, so callers that
// churn one round at a time (checking device state between rounds)
// still write fresh values every pass.
func (f *Frontend) Churn(p *sim.Proc, rounds int) error {
	for r := 0; r < rounds; r++ {
		f.churned++
		if err := f.writeAll(p, byte(f.churned)); err != nil {
			return err
		}
	}
	return nil
}

// opFor maps one generated access to a serving request. Sequential
// reads from throughput tenants become bounded scans (the analytics
// stream of ScanHeavyMix); everything else maps read→get, write→put.
func (f *Frontend) opFor(spec *workload.TenantSpec, a workload.Access) Op {
	class := sched.Throughput
	if spec.LatencySensitive {
		class = sched.LatencySensitive
	}
	if a.Kind == workload.Write {
		return Op{Kind: OpPut, Key: f.Key(a.LPN), Value: f.valueFor(a.LPN, 0), Class: class}
	}
	if spec.Pattern == workload.SR && !spec.LatencySensitive {
		return Op{Kind: OpScan, Key: f.Key(a.LPN), ScanLimit: f.ScanLimit, Class: class}
	}
	return Op{Kind: OpGet, Key: f.Key(a.LPN), Class: class}
}

// Drive spawns client processes for the tenant mix over the fabric and
// returns immediately; clients stop issuing at horizon. Served-request
// latencies are recorded per tenant into lat (rejected and dropped
// requests appear only in ShardStats — they never occupied the
// system). Open-loop tenants (ThinkTime > 0) issue on the clock
// regardless of completions; closed-loop tenants run Depth concurrent
// request loops and back off RejectBackoff after a reject.
func (f *Frontend) Drive(specs []workload.TenantSpec, horizon sim.Time, lat *metrics.TenantLatencies) error {
	eng := f.fab.eng
	for i := range specs {
		spec := specs[i]
		gen, err := workload.NewTenantGenerator(spec, f.Keys)
		if err != nil {
			return err
		}
		if spec.ThinkTime > 0 {
			eng.Go(func(p *sim.Proc) {
				for p.Now() < horizon {
					op := f.opFor(&spec, gen.Next())
					t0 := p.Now()
					f.Submit(op, func(err error) {
						if err == nil {
							lat.Record(spec.Name, int64(eng.Now()-t0))
						}
					})
					p.Sleep(spec.ThinkTime)
				}
			})
			continue
		}
		for d := 0; d < spec.Depth; d++ {
			eng.Go(func(p *sim.Proc) {
				for p.Now() < horizon {
					op := f.opFor(&spec, gen.Next())
					t0 := p.Now()
					err := f.do(p, op)
					switch err {
					case nil:
						lat.Record(spec.Name, int64(p.Now()-t0))
					case ErrRejected, ErrCrashed:
						// Crashed requests are lost, not fatal: the fabric
						// reopens and the client population must survive it.
						p.Sleep(f.RejectBackoff)
					case ErrStopped:
						return
					default:
						// Engine error: recorded in Fabric.Errors; keep
						// driving so one failure does not idle the client.
						p.Sleep(f.RejectBackoff)
					}
				}
			})
		}
	}
	return nil
}
