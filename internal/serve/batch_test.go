package serve

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// batchConfig is baseConfig with the ring serving path on.
func batchConfig(shards int) Config {
	cfg := baseConfig(shards)
	cfg.Batch = BatchConfig{Enabled: true}
	return cfg
}

func TestBatchedFabricServesCorrectly(t *testing.T) {
	withFabric(t, batchConfig(4), func(p *sim.Proc, f *Fabric) {
		fe := NewFrontend(f, 64, 32)
		for i := int64(0); i < 64; i++ {
			if err := fe.Put(p, i, fe.valueFor(i, 0)); err != nil {
				t.Fatalf("put %d: %v", i, err)
			}
		}
		for i := int64(0); i < 64; i++ {
			sh := fe.ShardFor(fe.Key(i))
			got, err := sh.System().Store.Get(p, fe.Key(i))
			if err != nil || !bytes.Equal(got, fe.valueFor(i, 0)) {
				t.Fatalf("key %d on %s: %q %v", i, sh.Name(), got, err)
			}
		}
		if f.Errors != 0 {
			t.Errorf("engine errors: %d", f.Errors)
		}
	})
}

// TestBatchedPutsGroupCommit checks the tentpole plumbing end to end:
// concurrent puts landing in one shard's admission ring are drained as
// a batch and committed through kvstore.ApplyBatch — many keys, one
// group commit — and every done callback fires exactly once.
func TestBatchedPutsGroupCommit(t *testing.T) {
	cfg := batchConfig(1)
	cfg.WorkersPerShard = 1
	withFabric(t, cfg, func(p *sim.Proc, f *Fabric) {
		fe := NewFrontend(f, 64, 32)
		const n = 48
		wg := sim.NewWaitGroup(p.Engine())
		wg.Add(n)
		fired := make([]int, n)
		for i := 0; i < n; i++ {
			i := i
			fe.Submit(Op{Kind: OpPut, Key: fe.Key(int64(i % 64)), Value: fe.valueFor(int64(i), 0), Class: sched.Throughput},
				func(err error) {
					fired[i]++
					if err != nil {
						t.Errorf("put %d: %v", i, err)
					}
					wg.Done()
				})
		}
		wg.Wait(p)
		for i, c := range fired {
			if c != 1 {
				t.Fatalf("put %d: done fired %d times", i, c)
			}
		}
		st := f.Shards()[0].System().Store
		if st.BatchCommits == 0 {
			t.Fatal("no batch commits: puts never grouped through ApplyBatch")
		}
		if st.BatchOps <= st.BatchCommits {
			t.Fatalf("batch ops %d / commits %d: no amortization", st.BatchOps, st.BatchCommits)
		}
	})
}

// TestBatchedSpanClosureCounts is E20's invariant under batching: with
// tracing on and a driven mix over the ring path, every opened span is
// closed and no span's stage accounting overruns its end-to-end time.
func TestBatchedSpanClosureCounts(t *testing.T) {
	cfg := batchConfig(4)
	cfg.Trace = true
	cfg.Admission = AdmissionConfig{Enabled: true, QueueLimit: 12, Rate: 6000, Burst: 32}
	var fab *Fabric
	withFabric(t, cfg, func(p *sim.Proc, f *Fabric) {
		fab = f
		fe := NewFrontend(f, 256, 32)
		if err := fe.Preload(p); err != nil {
			t.Fatalf("preload: %v", err)
		}
		f.ResetStats()
		lat := metrics.NewTenantLatencies()
		specs := []workload.TenantSpec{
			{Name: "readers", LatencySensitive: true, Weight: 2, Pattern: workload.RR, Depth: 4, Seed: 11},
			{Name: "writers", Weight: 1, Pattern: workload.RW, Depth: 8, Seed: 12},
		}
		horizon := p.Now() + 10*sim.Millisecond
		if err := fe.Drive(specs, horizon, lat); err != nil {
			t.Fatalf("drive: %v", err)
		}
		// Drive returns immediately; hold the fabric open through the
		// window (withFabric stops it with drain when fn returns, so
		// every admitted request still settles and closes its span).
		p.Sleep(horizon - p.Now())
	})
	// Assert after the engine drains: in-flight spans have closed.
	opened, closed, overruns := fab.Tracer().Opened(), fab.Tracer().Closed(), fab.Tracer().Overruns()
	if opened == 0 {
		t.Fatal("no spans opened")
	}
	if opened != closed {
		t.Fatalf("span leak under batching: opened %d, closed %d", opened, closed)
	}
	if overruns != 0 {
		t.Fatalf("%d span stage overruns under batching", overruns)
	}
	if fab.Served() == 0 {
		t.Fatal("nothing served through the ring path")
	}
}

// TestBatchedAdmissionRejectsPreserved is E16's contract on the ring
// path: overload still answers "no" at admission, the ledger stays
// consistent, and the queue high-water never exceeds the limit.
func TestBatchedAdmissionRejectsPreserved(t *testing.T) {
	cfg := batchConfig(1)
	cfg.WorkersPerShard = 1
	cfg.Admission = AdmissionConfig{Enabled: true, QueueLimit: 4}
	withFabric(t, cfg, func(p *sim.Proc, f *Fabric) {
		fe := NewFrontend(f, 16, 32)
		const n = 50
		wg := sim.NewWaitGroup(p.Engine())
		wg.Add(n)
		rejects := 0
		for i := 0; i < n; i++ {
			fe.Submit(Op{Kind: OpPut, Key: fe.Key(int64(i % 16)), Value: fe.valueFor(0, 0), Class: sched.Throughput},
				func(err error) {
					if errors.Is(err, ErrRejected) {
						rejects++
					}
					wg.Done()
				})
		}
		wg.Wait(p)
		st := f.Stats().Shard("shard0")
		if st.MaxQueue > 4 {
			t.Errorf("queue high-water %d exceeds limit 4", st.MaxQueue)
		}
		if st.Rejected == 0 || rejects != int(st.Rejected) {
			t.Errorf("rejects: callback saw %d, stats say %d (want > 0, equal)", rejects, st.Rejected)
		}
		if st.Admitted+st.Rejected != st.Submitted || st.Submitted != n {
			t.Errorf("admission ledger inconsistent: %+v", *st)
		}
	})
}
