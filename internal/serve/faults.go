package serve

// Fault control: the fabric-level surface the fault-injection harness
// (package faults) drives. Device death is the first-class event — it
// trips every shard on the device, emits a device-down health event,
// and fires the callbacks replica placement repairs on. Stalls, slow
// chips and single-device crashes are the milder injections the same
// harness schedules.

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/ssd"
)

// device returns group d's *ssd.Device, or nil when d is out of range
// or the device is some other Dev implementation (fault hooks are
// flash-device behavior).
func (f *Fabric) device(d int) *ssd.Device {
	if d < 0 || d >= len(f.groups) {
		return nil
	}
	xd, _ := f.groups[d].dev.(*ssd.Device)
	return xd
}

// KillDevice kills device d: the device drops its volatile buffer and
// fails every future command, every shard on it goes down (queued
// requests fail loudly with ErrDeviceDown, workers exit), the monitor
// records a device-down event, and the OnDeviceDown callbacks fire —
// in that order, all inside one simulation event, so a subscriber sees
// the fabric already degraded when it is told. Killing a dead device
// is a no-op.
func (f *Fabric) KillDevice(d int) {
	if d < 0 || d >= len(f.groups) || f.groups[d].down {
		return
	}
	g := f.groups[d]
	g.down = true
	if xd, ok := g.dev.(*ssd.Device); ok {
		xd.Kill()
	}
	lost := 0
	for _, sh := range f.shards {
		if sh.dev != d || sh.down {
			continue
		}
		lost++
		sh.down = true
		sh.failBacklog(ErrDeviceDown)
		ws := sh.waiters
		sh.waiters = nil
		for _, w := range ws {
			w.Fire()
		}
	}
	f.monitor.Emit(obs.HealthEvent{
		Kind: obs.EventDeviceDown, At: f.eng.Now(),
		Name:   g.dev.Name(),
		Detail: fmt.Sprintf("device %d down, %d replicas lost", d, lost),
		Value:  float64(lost),
	})
	for _, fn := range f.onDeviceDown {
		fn(d)
	}
}

// DeviceDown reports whether device d has been killed.
func (f *Fabric) DeviceDown(d int) bool {
	return d >= 0 && d < len(f.groups) && f.groups[d].down
}

// OnDeviceDown subscribes fn to device deaths; it fires inside the
// KillDevice event with the dead device's index.
func (f *Fabric) OnDeviceDown(fn func(d int)) {
	f.onDeviceDown = append(f.onDeviceDown, fn)
}

// StallDevice freezes device d's controller for dur (firmware hang):
// commands queue behind the stall and complete late.
func (f *Fabric) StallDevice(d int, dur sim.Time) {
	if xd := f.device(d); xd != nil {
		xd.Stall(dur)
	}
}

// SlowDevice scales device d's flash timings (read, program, erase
// latency factors) — media-level aging or thermal throttling, the
// drift signal the Mover evacuates on.
func (f *Fabric) SlowDevice(d int, read, program, erase float64) {
	if xd := f.device(d); xd != nil {
		xd.AgeTiming(read, program, erase)
	}
}

// Chips reports device d's flash chip count (0 when out of range or
// chipless).
func (f *Fabric) Chips(d int) int {
	if xd := f.device(d); xd != nil {
		return xd.Chips()
	}
	return 0
}

// KillChip kills one flash die on device d: programs and erases fail,
// reads return uncorrectable data, and the FTL retires its blocks.
func (f *Fabric) KillChip(d, chip int) {
	if xd := f.device(d); xd != nil {
		xd.KillChip(chip)
	}
}

// StallChip freezes one flash die on device d for dur.
func (f *Fabric) StallChip(d, chip int, dur sim.Time) {
	if xd := f.device(d); xd != nil {
		xd.StallChip(chip, dur)
	}
}

// SlowChip scales one flash die's latencies on device d.
func (f *Fabric) SlowChip(d, chip int, read, program, erase float64) {
	if xd := f.device(d); xd != nil {
		xd.SlowChip(chip, read, program, erase)
	}
}

// CrashDevice models sudden power loss and restart of a single device
// while the rest of the fabric keeps serving: device d drops its
// volatile state once, and every shard on it fails its backlog with
// ErrCrashed, quiesces, and reopens from the surviving media. Unlike
// fabric-wide Crash the other devices' shards serve throughout —
// which is exactly the stale-replica hazard: a reopened replica has
// lost its volatile acks while its survivors kept every one, so
// replica placement must resync it from a survivor before routing to
// it again (Placement.CrashDevice orchestrates that).
func (f *Fabric) CrashDevice(p *sim.Proc, d int) error {
	if d < 0 || d >= len(f.groups) {
		return fmt.Errorf("serve: device %d out of range", d)
	}
	if f.groups[d].down {
		return fmt.Errorf("serve: device %d is dead, not crashable", d)
	}
	var mine []*Shard
	for _, sh := range f.shards {
		if sh.dev == d {
			mine = append(mine, sh)
		}
	}
	for _, sh := range mine {
		sh.failBacklog(ErrCrashed)
	}
	for {
		busy := 0
		for _, sh := range mine {
			busy += sh.busy
		}
		if busy == 0 {
			break
		}
		p.Sleep(10 * sim.Microsecond)
	}
	if xd := f.device(d); xd != nil {
		xd.Crash()
	}
	for _, sh := range mine {
		fresh, err := sh.sys.Reopen(p)
		if err != nil {
			return fmt.Errorf("serve: reopen shard %d: %w", sh.idx, err)
		}
		sh.sys = fresh
	}
	return nil
}
