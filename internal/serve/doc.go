// Package serve is the sharded multi-tenant KV serving fabric: the
// layer that turns "storage stacks under a synthetic driver" into a
// servable system. A Fabric owns one or more flash devices, each behind
// one block-layer stack with an attached multi-tenant scheduler, and
// carves N Shards out of them — each shard a full kvstore.System
// (WAL + copy-on-write B+tree) registered as its own scheduler tenant,
// so the device-level arbiter isolates shards from each other's I/O. A
// Frontend hash-routes keys to shards and drives client populations
// from workload.TenantSpec mixes.
//
// # Admission semantics
//
// The fabric enforces per-shard SLOs at admission time, where the paper
// says policy belongs once host and device are communicating peers.
// With AdmissionConfig.Enabled, each shard has:
//
//   - a bounded request queue (QueueLimit): arrivals past it fail
//     immediately with ErrRejected rather than backlogging;
//   - a token-bucket arrival cap (Rate/Burst, the same
//     sched.TokenBucket currency used for tenant rate caps): an empty
//     bucket rejects rather than queueing;
//   - per-class deadlines (LatencyDeadline, ThroughputDeadline):
//     served requests that outlive their class deadline count as
//     deadline misses in metrics.ShardStats, next to the admission
//     ledger and metrics.TenantLatencies' latency ledger.
//
// Experiment E16 measures what that buys under overload.
//
// With AdmissionConfig.Adaptive, the static deadlines become the seed
// of an observed-service-time loop: each shard records per-request
// service times into a metrics.Estimator, per-class deadlines derive
// from the observed p99 (clamped around the static SLO), and arrivals
// whose queue position already implies a deadline miss are rejected at
// admission (p99-aware early drop). Config.Autoscale adds the SLO
// controller (Autoscaler): per control interval it walks each shard's
// worker pool and admission token rate from the interval's
// deadline-miss and reject deltas, inside configured bounds, with a
// deadband and per-shard cooldown so a steady workload never makes it
// fidget. Experiment E18 measures the adaptive plane against the
// static one on devices that age mid-run.
//
// # GC coordination across shards
//
// With Config.GCCoordinate (requires Scheduled), each device's
// scheduler also drives that device's GC control surface: because
// every shard on the device is a tenant of the same scheduler, the
// aggregate latency-class backlog of *all* its shards leases GC
// deferrals and releases them when the burst drains — per-device GC
// shaped fabric-wide, bounded by each device's own free-pool floor.
// Fabric.GCCoord merges the host- and device-side ledgers; experiment
// E17 measures the tail-latency and deadline-miss wins.
package serve
