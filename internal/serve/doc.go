// Package serve is the sharded multi-tenant KV serving fabric: the
// layer that turns "storage stacks under a synthetic driver" into a
// servable system. A Fabric owns one or more flash devices, each behind
// one block-layer stack with an attached multi-tenant scheduler, and
// carves N Shards out of them — each shard a full kvstore.System
// (WAL + copy-on-write B+tree) registered as its own scheduler tenant,
// so the device-level arbiter isolates shards from each other's I/O. A
// Frontend hash-routes keys to shards and drives client populations
// from workload.TenantSpec mixes.
//
// # Admission semantics
//
// The fabric enforces per-shard SLOs at admission time, where the paper
// says policy belongs once host and device are communicating peers.
// With AdmissionConfig.Enabled, each shard has:
//
//   - a bounded request queue (QueueLimit): arrivals past it fail
//     immediately with ErrRejected rather than backlogging;
//   - a token-bucket arrival cap (Rate/Burst, the same
//     sched.TokenBucket currency used for tenant rate caps): an empty
//     bucket rejects rather than queueing;
//   - per-class deadlines (LatencyDeadline, ThroughputDeadline):
//     served requests that outlive their class deadline count as
//     deadline misses in metrics.ShardStats, next to the admission
//     ledger and metrics.TenantLatencies' latency ledger.
//
// Experiment E16 measures what that buys under overload.
//
// # GC coordination across shards
//
// With Config.GCCoordinate (requires Scheduled), each device's
// scheduler also drives that device's GC control surface: because
// every shard on the device is a tenant of the same scheduler, the
// aggregate latency-class backlog of *all* its shards leases GC
// deferrals and releases them when the burst drains — per-device GC
// shaped fabric-wide, bounded by each device's own free-pool floor.
// Fabric.GCCoord merges the host- and device-side ledgers; experiment
// E17 measures the tail-latency and deadline-miss wins.
package serve
