package btree

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// memPager is an in-memory Pager for unit tests.
type memPager struct {
	pageSize int
	next     int64
	pages    map[int64][]byte
	freed    map[int64]bool
	writes   int
}

func newMemPager(pageSize int) *memPager {
	return &memPager{pageSize: pageSize, pages: map[int64][]byte{}, freed: map[int64]bool{}}
}

func (m *memPager) PageSize() int { return m.pageSize }
func (m *memPager) Alloc() int64  { m.next++; return m.next }
func (m *memPager) WritePage(_ *sim.Proc, id int64, data []byte) error {
	if m.freed[id] {
		return fmt.Errorf("write to freed page %d", id)
	}
	m.pages[id] = append([]byte(nil), data...)
	m.writes++
	return nil
}
func (m *memPager) ReadPage(_ *sim.Proc, id int64) ([]byte, error) {
	d, ok := m.pages[id]
	if !ok {
		return nil, fmt.Errorf("missing page %d", id)
	}
	return d, nil
}
func (m *memPager) Free(id int64) { m.freed[id] = true }

func entry(k, v string) Entry { return Entry{Key: []byte(k), Value: []byte(v)} }

func sortBatch(b []Entry) {
	sort.Slice(b, func(i, j int) bool { return bytes.Compare(b[i].Key, b[j].Key) < 0 })
}

func TestEmptyTreeGet(t *testing.T) {
	tr := New(newMemPager(256), NilPage, 0)
	if _, err := tr.Get(nil, []byte("x")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	if err := tr.Scan(nil, func(k, v []byte) bool { return true }); err != nil {
		t.Fatalf("scan empty: %v", err)
	}
}

func TestSingleBatchInsertAndGet(t *testing.T) {
	pg := newMemPager(256)
	tr := New(pg, NilPage, 0)
	batch := []Entry{entry("a", "1"), entry("b", "2"), entry("c", "3")}
	tr2, err := tr.ApplyBatch(nil, batch)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range batch {
		got, err := tr2.Get(nil, e.Key)
		if err != nil || !bytes.Equal(got, e.Value) {
			t.Fatalf("get %s: %v %v", e.Key, got, err)
		}
	}
	if _, err := tr2.Get(nil, []byte("zz")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing key: %v", err)
	}
	if tr2.Height() != 1 {
		t.Fatalf("height = %d", tr2.Height())
	}
}

func TestBatchNotSortedRejected(t *testing.T) {
	tr := New(newMemPager(256), NilPage, 0)
	if _, err := tr.ApplyBatch(nil, []Entry{entry("b", "1"), entry("a", "2")}); err == nil {
		t.Fatal("unsorted batch accepted")
	}
	if _, err := tr.ApplyBatch(nil, []Entry{entry("a", "1"), entry("a", "2")}); err == nil {
		t.Fatal("duplicate keys accepted")
	}
}

func TestEmptyBatchIsNoop(t *testing.T) {
	tr := New(newMemPager(256), NilPage, 0)
	tr2, err := tr.ApplyBatch(nil, nil)
	if err != nil || tr2 != tr {
		t.Fatal("empty batch should return the same tree")
	}
}

func TestGrowsToMultipleLevels(t *testing.T) {
	pg := newMemPager(128) // tiny pages force splits
	tr := New(pg, NilPage, 0)
	var batch []Entry
	for i := 0; i < 200; i++ {
		batch = append(batch, entry(fmt.Sprintf("key%04d", i), fmt.Sprintf("val%04d", i)))
	}
	sortBatch(batch)
	tr2, err := tr.ApplyBatch(nil, batch)
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Height() < 2 {
		t.Fatalf("height = %d, want >= 2", tr2.Height())
	}
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("key%04d", i)
		got, err := tr2.Get(nil, []byte(k))
		if err != nil {
			t.Fatalf("get %s: %v", k, err)
		}
		if string(got) != fmt.Sprintf("val%04d", i) {
			t.Fatalf("wrong value for %s", k)
		}
	}
}

func TestScanInOrder(t *testing.T) {
	pg := newMemPager(128)
	tr := New(pg, NilPage, 0)
	var batch []Entry
	for i := 0; i < 100; i++ {
		batch = append(batch, entry(fmt.Sprintf("k%03d", i), "v"))
	}
	sortBatch(batch)
	tr2, err := tr.ApplyBatch(nil, batch)
	if err != nil {
		t.Fatal(err)
	}
	var seen []string
	tr2.Scan(nil, func(k, v []byte) bool {
		seen = append(seen, string(k))
		return true
	})
	if len(seen) != 100 {
		t.Fatalf("scanned %d keys", len(seen))
	}
	for i := 1; i < len(seen); i++ {
		if seen[i-1] >= seen[i] {
			t.Fatalf("scan out of order at %d: %s >= %s", i, seen[i-1], seen[i])
		}
	}
}

func TestScanEarlyStop(t *testing.T) {
	pg := newMemPager(256)
	tr, _ := New(pg, NilPage, 0).ApplyBatch(nil, []Entry{entry("a", "1"), entry("b", "2"), entry("c", "3")})
	count := 0
	tr.Scan(nil, func(k, v []byte) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Fatalf("visited %d", count)
	}
}

func TestUpdatesAndTombstones(t *testing.T) {
	pg := newMemPager(256)
	tr, err := New(pg, NilPage, 0).ApplyBatch(nil, []Entry{entry("a", "1"), entry("b", "2"), entry("c", "3")})
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := tr.ApplyBatch(nil, []Entry{
		entry("a", "10"),
		{Key: []byte("b"), Tombstone: true},
		entry("d", "4"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := tr2.Get(nil, []byte("a")); string(got) != "10" {
		t.Fatalf("a = %q", got)
	}
	if _, err := tr2.Get(nil, []byte("b")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("b: %v", err)
	}
	if got, _ := tr2.Get(nil, []byte("c")); string(got) != "3" {
		t.Fatalf("c = %q", got)
	}
	if got, _ := tr2.Get(nil, []byte("d")); string(got) != "4" {
		t.Fatalf("d = %q", got)
	}
	// Old version still serves the old data (COW).
	if got, _ := tr.Get(nil, []byte("a")); string(got) != "1" {
		t.Fatalf("old version a = %q", got)
	}
}

func TestDeleteEverything(t *testing.T) {
	pg := newMemPager(256)
	tr, _ := New(pg, NilPage, 0).ApplyBatch(nil, []Entry{entry("a", "1"), entry("b", "2")})
	tr2, err := tr.ApplyBatch(nil, []Entry{
		{Key: []byte("a"), Tombstone: true},
		{Key: []byte("b"), Tombstone: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Root() != NilPage {
		t.Fatalf("root = %d, want NilPage", tr2.Root())
	}
}

func TestCOWNeverOverwrites(t *testing.T) {
	pg := newMemPager(128)
	tr := New(pg, NilPage, 0)
	for round := 0; round < 10; round++ {
		var batch []Entry
		for i := 0; i < 30; i++ {
			batch = append(batch, entry(fmt.Sprintf("k%02d", i), fmt.Sprintf("r%d", round)))
		}
		sortBatch(batch)
		var err error
		tr, err = tr.ApplyBatch(nil, batch)
		if err != nil {
			t.Fatal(err)
		}
	}
	// memPager errors on any write to a freed page; reaching here means
	// no page was ever overwritten.
	if len(pg.freed) == 0 {
		t.Fatal("no pages were ever freed")
	}
}

func TestOversizedEntryRejected(t *testing.T) {
	pg := newMemPager(128)
	tr := New(pg, NilPage, 0)
	big := make([]byte, 200)
	if _, err := tr.ApplyBatch(nil, []Entry{{Key: []byte("k"), Value: big}}); !errors.Is(err, ErrKeyTooLarge) {
		t.Fatalf("err = %v", err)
	}
}

// Property: any sequence of batches behaves like a map.
func TestPropertyTreeMatchesMap(t *testing.T) {
	f := func(ops []uint16) bool {
		pg := newMemPager(128)
		tr := New(pg, NilPage, 0)
		model := map[string]string{}
		// Group ops into batches of up to 8.
		for start := 0; start < len(ops); start += 8 {
			end := start + 8
			if end > len(ops) {
				end = len(ops)
			}
			seen := map[string]bool{}
			var batch []Entry
			for _, op := range ops[start:end] {
				k := fmt.Sprintf("k%02d", op%32)
				if seen[k] {
					continue
				}
				seen[k] = true
				if op%5 == 4 {
					batch = append(batch, Entry{Key: []byte(k), Tombstone: true})
					delete(model, k)
				} else {
					v := fmt.Sprintf("v%d", op)
					batch = append(batch, entry(k, v))
					model[k] = v
				}
			}
			sortBatch(batch)
			var err error
			tr, err = tr.ApplyBatch(nil, batch)
			if err != nil {
				return false
			}
		}
		// Verify against the model.
		for k, v := range model {
			got, err := tr.Get(nil, []byte(k))
			if err != nil || string(got) != v {
				return false
			}
		}
		count := 0
		tr.Scan(nil, func(k, v []byte) bool {
			count++
			if model[string(k)] != string(v) {
				count = -1 << 20
			}
			return true
		})
		return count == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
