// Package btree implements an immutable (copy-on-write) B+tree over
// fixed-size pages. Updates are applied in sorted batches: every page on
// a modified path is rewritten to a freshly allocated page, and the old
// pages are reported as freed — never overwritten. The engine flips its
// metadata root atomically after a batch, so any crash exposes either
// the old tree or the new one, and the freed pages become TRIM
// candidates. Out-of-place updates at the host level mirror what the
// FTL does at the device level, which is exactly the duplication §3
// says the interface redesign should exploit.
package btree

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/sim"
)

// Package errors.
var (
	// ErrKeyTooLarge reports a key/value pair no leaf could hold.
	ErrKeyTooLarge = errors.New("btree: entry exceeds page capacity")
	// ErrCorrupt reports an undecodable page.
	ErrCorrupt = errors.New("btree: corrupt page")
	// ErrNotFound reports a missing key.
	ErrNotFound = errors.New("btree: key not found")
)

// Pager is the storage the tree runs on: immutable page allocation,
// reads, and free notification. The engine implements it over a page
// store plus cache.
type Pager interface {
	PageSize() int
	// Alloc reserves a fresh page ID.
	Alloc() int64
	// WritePage persists data at pageID (a freshly allocated page).
	WritePage(p *sim.Proc, pageID int64, data []byte) error
	// ReadPage fetches a page.
	ReadPage(p *sim.Proc, pageID int64) ([]byte, error)
	// Free declares an old page version dead.
	Free(pageID int64)
}

// NilPage marks an absent page reference (empty tree).
const NilPage int64 = -1

// Page layout:
//
//	byte 0:   type (1 = leaf, 2 = internal)
//	byte 1-2: entry count (uint16)
//	leaf entries:     klen u16 | key | vlen u16 | value
//	internal layout:  child0 i64, then entries: klen u16 | key | child i64
//
// An internal node with N entries has N+1 children; entry i's key is the
// smallest key reachable under child i+1.
const (
	pageLeaf     = 1
	pageInternal = 2
	headerBytes  = 3
)

// Entry is one key/value pair in a batch. A nil Value is a tombstone
// (delete).
type Entry struct {
	Key   []byte
	Value []byte
	// Tombstone distinguishes "delete key" from "store empty value".
	Tombstone bool
}

// Tree is a handle to one immutable tree version.
type Tree struct {
	pager Pager
	root  int64
	// Height is maintained for diagnostics.
	height int
}

// New returns a handle on an existing root (NilPage for an empty tree).
func New(pager Pager, root int64, height int) *Tree {
	return &Tree{pager: pager, root: root, height: height}
}

// Root returns the current root page (NilPage when empty).
func (t *Tree) Root() int64 { return t.root }

// Height returns the tree height (0 when empty, 1 for a single leaf).
func (t *Tree) Height() int { return t.height }

// Get fetches the value for key.
func (t *Tree) Get(p *sim.Proc, key []byte) ([]byte, error) {
	if t.root == NilPage {
		return nil, ErrNotFound
	}
	pageID := t.root
	for {
		data, err := t.pager.ReadPage(p, pageID)
		if err != nil {
			return nil, err
		}
		switch data[0] {
		case pageLeaf:
			keys, vals, err := decodeLeaf(data)
			if err != nil {
				return nil, err
			}
			for i, k := range keys {
				if bytes.Equal(k, key) {
					return vals[i], nil
				}
			}
			return nil, ErrNotFound
		case pageInternal:
			keys, children, err := decodeInternal(data)
			if err != nil {
				return nil, err
			}
			pageID = children[routeTo(keys, key)]
		default:
			return nil, fmt.Errorf("%w: page %d type %d", ErrCorrupt, pageID, data[0])
		}
	}
}

// Scan visits all live entries in key order, stopping early if fn
// returns false.
func (t *Tree) Scan(p *sim.Proc, fn func(key, value []byte) bool) error {
	if t.root == NilPage {
		return nil
	}
	_, err := t.scanPage(p, t.root, fn)
	return err
}

func (t *Tree) scanPage(p *sim.Proc, pageID int64, fn func(k, v []byte) bool) (bool, error) {
	data, err := t.pager.ReadPage(p, pageID)
	if err != nil {
		return false, err
	}
	switch data[0] {
	case pageLeaf:
		keys, vals, err := decodeLeaf(data)
		if err != nil {
			return false, err
		}
		for i := range keys {
			if !fn(keys[i], vals[i]) {
				return false, nil
			}
		}
		return true, nil
	case pageInternal:
		_, children, err := decodeInternal(data)
		if err != nil {
			return false, err
		}
		for _, c := range children {
			cont, err := t.scanPage(p, c, fn)
			if err != nil || !cont {
				return cont, err
			}
		}
		return true, nil
	default:
		return false, fmt.Errorf("%w: page %d", ErrCorrupt, pageID)
	}
}

// routeTo returns the child index for key given separator keys.
func routeTo(seps [][]byte, key []byte) int {
	i := 0
	for i < len(seps) && bytes.Compare(key, seps[i]) >= 0 {
		i++
	}
	return i
}

// ApplyBatch builds a new tree version containing batch (sorted by key,
// unique keys). It returns the new tree; old pages on modified paths are
// reported to Pager.Free. The receiving tree remains valid (it is an
// older version).
func (t *Tree) ApplyBatch(p *sim.Proc, batch []Entry) (*Tree, error) {
	if len(batch) == 0 {
		return t, nil
	}
	for i := 1; i < len(batch); i++ {
		if bytes.Compare(batch[i-1].Key, batch[i].Key) >= 0 {
			return nil, fmt.Errorf("btree: batch not sorted/unique at %d", i)
		}
	}
	var nodes []nodeRef
	var err error
	if t.root == NilPage {
		nodes, err = t.buildLeaves(p, nil, nil, batch)
	} else {
		nodes, err = t.applyTo(p, t.root, batch)
	}
	if err != nil {
		return nil, err
	}
	height := t.height
	if t.root == NilPage {
		height = 1
	}
	// Collapse or grow to a single root.
	for len(nodes) > 1 {
		nodes, err = t.buildInternal(p, nodes)
		if err != nil {
			return nil, err
		}
		height++
	}
	if len(nodes) == 0 {
		return &Tree{pager: t.pager, root: NilPage, height: 0}, nil
	}
	return &Tree{pager: t.pager, root: nodes[0].pageID, height: height}, nil
}

// nodeRef is a freshly-written node and its minimum key.
type nodeRef struct {
	minKey []byte
	pageID int64
}

// applyTo rewrites the subtree at pageID with batch applied, returning
// the replacement node(s).
func (t *Tree) applyTo(p *sim.Proc, pageID int64, batch []Entry) ([]nodeRef, error) {
	data, err := t.pager.ReadPage(p, pageID)
	if err != nil {
		return nil, err
	}
	switch data[0] {
	case pageLeaf:
		keys, vals, err := decodeLeaf(data)
		if err != nil {
			return nil, err
		}
		t.pager.Free(pageID)
		return t.buildLeaves(p, keys, vals, batch)
	case pageInternal:
		seps, children, err := decodeInternal(data)
		if err != nil {
			return nil, err
		}
		t.pager.Free(pageID)
		var out []nodeRef
		// Split the batch among children and recurse only where needed.
		start := 0
		for ci := 0; ci < len(children); ci++ {
			end := len(batch)
			if ci < len(seps) {
				end = start
				for end < len(batch) && bytes.Compare(batch[end].Key, seps[ci]) < 0 {
					end++
				}
			}
			part := batch[start:end]
			start = end
			if len(part) == 0 {
				// Untouched subtree: keep as is, but we need its min key.
				mk, err := t.minKeyOf(p, children[ci])
				if err != nil {
					return nil, err
				}
				if mk == nil {
					continue // empty subtree (possible after deletes)
				}
				out = append(out, nodeRef{minKey: mk, pageID: children[ci]})
				continue
			}
			repl, err := t.applyTo(p, children[ci], part)
			if err != nil {
				return nil, err
			}
			out = append(out, repl...)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("%w: page %d", ErrCorrupt, pageID)
	}
}

// minKeyOf returns the smallest key in the subtree, or nil if empty.
func (t *Tree) minKeyOf(p *sim.Proc, pageID int64) ([]byte, error) {
	data, err := t.pager.ReadPage(p, pageID)
	if err != nil {
		return nil, err
	}
	switch data[0] {
	case pageLeaf:
		keys, _, err := decodeLeaf(data)
		if err != nil {
			return nil, err
		}
		if len(keys) == 0 {
			return nil, nil
		}
		return keys[0], nil
	case pageInternal:
		_, children, err := decodeInternal(data)
		if err != nil {
			return nil, err
		}
		for _, c := range children {
			mk, err := t.minKeyOf(p, c)
			if err != nil {
				return nil, err
			}
			if mk != nil {
				return mk, nil
			}
		}
		return nil, nil
	default:
		return nil, fmt.Errorf("%w: page %d", ErrCorrupt, pageID)
	}
}

// buildLeaves merges existing leaf entries with a batch and writes the
// results as one or more new leaves.
func (t *Tree) buildLeaves(p *sim.Proc, keys, vals [][]byte, batch []Entry) ([]nodeRef, error) {
	// Merge two sorted streams, batch wins on ties, tombstones drop.
	var mk, mv [][]byte
	i, j := 0, 0
	for i < len(keys) || j < len(batch) {
		var takeBatch bool
		switch {
		case i >= len(keys):
			takeBatch = true
		case j >= len(batch):
			takeBatch = false
		default:
			c := bytes.Compare(batch[j].Key, keys[i])
			if c == 0 {
				i++ // superseded
				takeBatch = true
			} else {
				takeBatch = c < 0
			}
		}
		if takeBatch {
			e := batch[j]
			j++
			if e.Tombstone {
				continue
			}
			mk = append(mk, e.Key)
			mv = append(mv, e.Value)
		} else {
			mk = append(mk, keys[i])
			mv = append(mv, vals[i])
			i++
		}
	}
	if len(mk) == 0 {
		return nil, nil
	}
	// Pack into leaves at most ~85% full so later single-key inserts
	// do not split immediately.
	limit := (t.pager.PageSize() - headerBytes) * 85 / 100
	var out []nodeRef
	start := 0
	used := 0
	flush := func(end int) error {
		if end <= start {
			return nil
		}
		data, err := encodeLeaf(t.pager.PageSize(), mk[start:end], mv[start:end])
		if err != nil {
			return err
		}
		id := t.pager.Alloc()
		if err := t.pager.WritePage(p, id, data); err != nil {
			return err
		}
		out = append(out, nodeRef{minKey: mk[start], pageID: id})
		start = end
		used = 0
		return nil
	}
	for idx := range mk {
		sz := 4 + len(mk[idx]) + len(mv[idx])
		if sz > limit {
			return nil, fmt.Errorf("%w: %d bytes", ErrKeyTooLarge, sz)
		}
		if used+sz > limit {
			if err := flush(idx); err != nil {
				return nil, err
			}
		}
		used += sz
	}
	if err := flush(len(mk)); err != nil {
		return nil, err
	}
	return out, nil
}

// buildInternal packs child refs into internal nodes one level up.
func (t *Tree) buildInternal(p *sim.Proc, children []nodeRef) ([]nodeRef, error) {
	limit := (t.pager.PageSize() - headerBytes - 8) * 85 / 100
	var out []nodeRef
	start := 0
	used := 0
	flush := func(end int) error {
		if end <= start {
			return nil
		}
		group := children[start:end]
		seps := make([][]byte, 0, len(group)-1)
		ids := make([]int64, 0, len(group))
		for gi, c := range group {
			if gi > 0 {
				seps = append(seps, c.minKey)
			}
			ids = append(ids, c.pageID)
		}
		data, err := encodeInternal(t.pager.PageSize(), seps, ids)
		if err != nil {
			return err
		}
		id := t.pager.Alloc()
		if err := t.pager.WritePage(p, id, data); err != nil {
			return err
		}
		out = append(out, nodeRef{minKey: group[0].minKey, pageID: id})
		start = end
		used = 0
		return nil
	}
	for idx := range children {
		sz := 2 + len(children[idx].minKey) + 8
		if used+sz > limit {
			if err := flush(idx); err != nil {
				return nil, err
			}
		}
		used += sz
	}
	if err := flush(len(children)); err != nil {
		return nil, err
	}
	return out, nil
}

// encodeLeaf serializes a leaf page.
func encodeLeaf(pageSize int, keys, vals [][]byte) ([]byte, error) {
	buf := make([]byte, pageSize)
	buf[0] = pageLeaf
	binary.LittleEndian.PutUint16(buf[1:], uint16(len(keys)))
	off := headerBytes
	for i := range keys {
		need := 4 + len(keys[i]) + len(vals[i])
		if off+need > pageSize {
			return nil, fmt.Errorf("%w: leaf overflow", ErrKeyTooLarge)
		}
		binary.LittleEndian.PutUint16(buf[off:], uint16(len(keys[i])))
		off += 2
		off += copy(buf[off:], keys[i])
		binary.LittleEndian.PutUint16(buf[off:], uint16(len(vals[i])))
		off += 2
		off += copy(buf[off:], vals[i])
	}
	return buf, nil
}

// decodeLeaf parses a leaf page.
func decodeLeaf(data []byte) (keys, vals [][]byte, err error) {
	n := int(binary.LittleEndian.Uint16(data[1:]))
	off := headerBytes
	for i := 0; i < n; i++ {
		if off+2 > len(data) {
			return nil, nil, fmt.Errorf("%w: leaf entry %d", ErrCorrupt, i)
		}
		kl := int(binary.LittleEndian.Uint16(data[off:]))
		off += 2
		if off+kl+2 > len(data) {
			return nil, nil, fmt.Errorf("%w: leaf key %d", ErrCorrupt, i)
		}
		k := data[off : off+kl]
		off += kl
		vl := int(binary.LittleEndian.Uint16(data[off:]))
		off += 2
		if off+vl > len(data) {
			return nil, nil, fmt.Errorf("%w: leaf value %d", ErrCorrupt, i)
		}
		v := data[off : off+vl]
		off += vl
		keys = append(keys, k)
		vals = append(vals, v)
	}
	return keys, vals, nil
}

// encodeInternal serializes an internal page.
func encodeInternal(pageSize int, seps [][]byte, children []int64) ([]byte, error) {
	if len(children) != len(seps)+1 {
		return nil, fmt.Errorf("btree: %d children for %d separators", len(children), len(seps))
	}
	buf := make([]byte, pageSize)
	buf[0] = pageInternal
	binary.LittleEndian.PutUint16(buf[1:], uint16(len(seps)))
	off := headerBytes
	if off+8 > pageSize {
		return nil, fmt.Errorf("%w: internal overflow", ErrKeyTooLarge)
	}
	binary.LittleEndian.PutUint64(buf[off:], uint64(children[0]))
	off += 8
	for i := range seps {
		need := 2 + len(seps[i]) + 8
		if off+need > pageSize {
			return nil, fmt.Errorf("%w: internal overflow", ErrKeyTooLarge)
		}
		binary.LittleEndian.PutUint16(buf[off:], uint16(len(seps[i])))
		off += 2
		off += copy(buf[off:], seps[i])
		binary.LittleEndian.PutUint64(buf[off:], uint64(children[i+1]))
		off += 8
	}
	return buf, nil
}

// InternalChildren returns the child page IDs of an encoded internal
// page — used by the engine's liveness walk when rebuilding its page
// free list at recovery.
func InternalChildren(data []byte) ([]int64, error) {
	if len(data) == 0 || data[0] != pageInternal {
		return nil, fmt.Errorf("%w: not an internal page", ErrCorrupt)
	}
	_, children, err := decodeInternal(data)
	return children, err
}

// decodeInternal parses an internal page.
func decodeInternal(data []byte) (seps [][]byte, children []int64, err error) {
	n := int(binary.LittleEndian.Uint16(data[1:]))
	off := headerBytes
	if off+8 > len(data) {
		return nil, nil, fmt.Errorf("%w: internal header", ErrCorrupt)
	}
	children = append(children, int64(binary.LittleEndian.Uint64(data[off:])))
	off += 8
	for i := 0; i < n; i++ {
		if off+2 > len(data) {
			return nil, nil, fmt.Errorf("%w: internal entry %d", ErrCorrupt, i)
		}
		kl := int(binary.LittleEndian.Uint16(data[off:]))
		off += 2
		if off+kl+8 > len(data) {
			return nil, nil, fmt.Errorf("%w: internal key %d", ErrCorrupt, i)
		}
		seps = append(seps, data[off:off+kl])
		off += kl
		children = append(children, int64(binary.LittleEndian.Uint64(data[off:])))
		off += 8
	}
	return seps, children, nil
}
