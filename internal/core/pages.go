package core

import (
	"fmt"

	"repro/internal/blockdev"
	"repro/internal/sched"
	"repro/internal/sim"
)

// StackPages adapts a block-layer stack into a PageStore, optionally
// offsetting the logical space (so a log region can share the device in
// the conservative assembly).
type StackPages struct {
	stack  *blockdev.Stack
	offset int64
	cap    int64
	tenant *sched.Tenant // tag for every request, when scheduling
	rr     int           // round-robin submit core for async writes
}

var _ PageStore = (*StackPages)(nil)

// NewStackPages exposes the whole device under stack as pages.
func NewStackPages(stack *blockdev.Stack) *StackPages {
	return NewStackPagesOffset(stack, 0)
}

// NewStackPagesOffset exposes the device minus its first offset pages.
func NewStackPagesOffset(stack *blockdev.Stack, offset int64) *StackPages {
	return &StackPages{
		stack:  stack,
		offset: offset,
		cap:    stack.Device().Capacity() - offset,
	}
}

// NewStackPagesRegion exposes only pages [offset, offset+pages) of the
// device under stack — the multi-shard assembly, where several stores
// carve disjoint regions out of one device behind one stack.
func NewStackPagesRegion(stack *blockdev.Stack, offset, pages int64) (*StackPages, error) {
	if offset < 0 || pages <= 0 || offset+pages > stack.Device().Capacity() {
		return nil, fmt.Errorf("core: page region [%d,%d) outside device (%d pages)",
			offset, offset+pages, stack.Device().Capacity())
	}
	return &StackPages{stack: stack, offset: offset, cap: pages}, nil
}

// Stack exposes the underlying block-layer stack (for scheduler
// attachment and instrumentation).
func (s *StackPages) Stack() *blockdev.Stack { return s.stack }

// SetTenant tags every subsequent request from this page store with
// tenant t, routing it through the stack's attached scheduler.
func (s *StackPages) SetTenant(t *sched.Tenant) { s.tenant = t }

// PageSize implements PageStore.
func (s *StackPages) PageSize() int { return s.stack.Device().PageSize() }

// Capacity implements PageStore.
func (s *StackPages) Capacity() int64 { return s.cap }

func (s *StackPages) check(lpn int64) error {
	if lpn < 0 || lpn >= s.cap {
		return fmt.Errorf("core: page %d out of range (%d)", lpn, s.cap)
	}
	return nil
}

// ReadPage implements PageStore.
func (s *StackPages) ReadPage(p *sim.Proc, lpn int64) ([]byte, error) {
	if err := s.check(lpn); err != nil {
		return nil, err
	}
	return s.stack.ReadSyncAs(p, s.tenant, s.nextCore(), lpn+s.offset)
}

// WritePage implements PageStore.
func (s *StackPages) WritePage(p *sim.Proc, lpn int64, data []byte) error {
	if err := s.check(lpn); err != nil {
		return err
	}
	return s.stack.WriteSyncAs(p, s.tenant, s.nextCore(), lpn+s.offset, data)
}

// WritePageAsync implements PageStore.
func (s *StackPages) WritePageAsync(lpn int64, data []byte, done func(error)) {
	if err := s.check(lpn); err != nil {
		done(err)
		return
	}
	s.stack.Submit(s.nextCore(), blockdev.Request{
		Op: blockdev.OpWrite, LPN: lpn + s.offset, Data: data, Tenant: s.tenant,
		Done: func(_ []byte, err error) { done(err) },
	})
}

// Trim implements PageStore.
func (s *StackPages) Trim(lpn int64) error {
	if err := s.check(lpn); err != nil {
		return err
	}
	return s.stack.Device().Trim(lpn + s.offset)
}

// Flush implements PageStore.
func (s *StackPages) Flush(p *sim.Proc) error {
	return s.stack.FlushSync(p, s.nextCore())
}

func (s *StackPages) nextCore() int {
	s.rr++
	return s.rr
}
