package core

import (
	"fmt"

	"repro/internal/blockdev"
	"repro/internal/pcm"
	"repro/internal/sched"
	"repro/internal/sim"
)

// PCMLog is the progressive synchronous domain: an append-only byte log
// in PCM on the memory bus. Append is a CPU store; Sync is a persist
// barrier — tens of nanoseconds to single microseconds, against the
// block path's page write + flush.
type PCMLog struct {
	bus  *pcm.MemBus
	base int64
	size int64

	head int64 // truncated prefix
	tail int64
}

var _ LogDevice = (*PCMLog)(nil)

// NewPCMLog carves [base, base+size) out of the PCM device as a log.
func NewPCMLog(bus *pcm.MemBus, base, size int64) (*PCMLog, error) {
	if size <= 0 || base < 0 || base+size > bus.Device().Config().CapacityBytes {
		return nil, fmt.Errorf("core: pcm log region [%d,%d) invalid", base, base+size)
	}
	return &PCMLog{bus: bus, base: base, size: size}, nil
}

// Append implements LogDevice: a store into the persistence domain.
// The tail is reserved before the stores begin so concurrent appenders
// get disjoint regions.
func (l *PCMLog) Append(p *sim.Proc, data []byte) (int64, error) {
	if l.tail-l.head+int64(len(data)) > l.size {
		return 0, fmt.Errorf("%w: %d live bytes, %d capacity", ErrLogFull, l.tail-l.head, l.size)
	}
	off := l.tail
	l.tail += int64(len(data))
	// The log is a ring over its region.
	pos := l.base + off%l.size
	first := l.size - off%l.size
	if int64(len(data)) <= first {
		if err := l.bus.Store(p, pos, data); err != nil {
			return 0, err
		}
	} else {
		if err := l.bus.Store(p, pos, data[:first]); err != nil {
			return 0, err
		}
		if err := l.bus.Store(p, l.base, data[first:]); err != nil {
			return 0, err
		}
	}
	return off, nil
}

// Sync implements LogDevice: the persist barrier.
func (l *PCMLog) Sync(p *sim.Proc) error {
	l.bus.Persist(p)
	return nil
}

// ReadAt implements LogDevice.
func (l *PCMLog) ReadAt(p *sim.Proc, off int64, n int) ([]byte, error) {
	if off < l.head || off+int64(n) > l.tail {
		return nil, fmt.Errorf("core: log read [%d,%d) outside [%d,%d)", off, off+int64(n), l.head, l.tail)
	}
	pos := l.base + off%l.size
	first := l.size - off%l.size
	if int64(n) <= first {
		return l.bus.Load(p, pos, n)
	}
	a, err := l.bus.Load(p, pos, int(first))
	if err != nil {
		return nil, err
	}
	b, err := l.bus.Load(p, l.base, n-int(first))
	if err != nil {
		return nil, err
	}
	return append(a, b...), nil
}

// RawReadAt implements LogDevice: bounds-free ring reads for recovery.
func (l *PCMLog) RawReadAt(p *sim.Proc, off int64, n int) ([]byte, error) {
	if off < 0 || n < 0 || int64(n) > l.size {
		return nil, fmt.Errorf("core: raw read [%d,%d) invalid", off, off+int64(n))
	}
	pos := l.base + off%l.size
	first := l.size - off%l.size
	if int64(n) <= first {
		return l.bus.Load(p, pos, n)
	}
	a, err := l.bus.Load(p, pos, int(first))
	if err != nil {
		return nil, err
	}
	b, err := l.bus.Load(p, l.base, n-int(first))
	if err != nil {
		return nil, err
	}
	return append(a, b...), nil
}

// Reset implements LogDevice.
func (l *PCMLog) Reset(_ *sim.Proc, head, tail int64) error {
	if head < 0 || tail < head || tail-head > l.size {
		return fmt.Errorf("core: reset [%d,%d] invalid", head, tail)
	}
	l.head, l.tail = head, tail
	return nil
}

// Truncate implements LogDevice.
func (l *PCMLog) Truncate(head int64) error {
	if head < l.head || head > l.tail {
		return fmt.Errorf("core: truncate %d outside [%d,%d]", head, l.head, l.tail)
	}
	l.head = head
	return nil
}

// Tail implements LogDevice.
func (l *PCMLog) Tail() int64 { return l.tail }

// Capacity implements LogDevice.
func (l *PCMLog) Capacity() int64 { return l.size }

// BlockLog is the conservative synchronous domain: the same append-only
// log kept in a page region of a block device. Appends buffer in host
// RAM; Sync writes every dirty page (including the partially-filled
// tail page, rewritten on the next Sync — the small-write penalty of
// page granularity) and issues a device flush.
type BlockLog struct {
	stack    *blockdev.Stack
	basePage int64
	pages    int64
	pageSize int

	tenant *sched.Tenant // scheduler tag for every log I/O
	core   int           // submitting core for log I/O

	head int64
	tail int64

	buf       map[int64][]byte // pageIdx -> staged content
	dirtyFrom int64            // first byte not yet durable
}

var _ LogDevice = (*BlockLog)(nil)

// NewBlockLog carves pages [basePage, basePage+pages) of the device
// under stack into a log.
func NewBlockLog(stack *blockdev.Stack, basePage, pages int64) (*BlockLog, error) {
	dev := stack.Device()
	if pages <= 0 || basePage < 0 || basePage+pages > dev.Capacity() {
		return nil, fmt.Errorf("core: block log region [%d,%d) invalid", basePage, basePage+pages)
	}
	return &BlockLog{
		stack:    stack,
		basePage: basePage,
		pages:    pages,
		pageSize: dev.PageSize(),
		buf:      make(map[int64][]byte),
	}, nil
}

// SetTenant tags every subsequent log I/O with tenant t, routing it
// through the stack's attached scheduler (multi-shard assemblies give
// each shard's WAL the shard's tenant).
func (l *BlockLog) SetTenant(t *sched.Tenant) { l.tenant = t }

// SetSubmitCore picks the stack core that issues this log's I/O, so
// shards sharing one stack do not all serialize their WAL syncs behind
// core 0.
func (l *BlockLog) SetSubmitCore(c int) { l.core = c }

// Append implements LogDevice: staged in RAM until Sync.
func (l *BlockLog) Append(p *sim.Proc, data []byte) (int64, error) {
	if l.tail-l.head+int64(len(data)) > l.Capacity() {
		return 0, fmt.Errorf("%w: %d live bytes, %d capacity", ErrLogFull, l.tail-l.head, l.Capacity())
	}
	off := l.tail
	l.tail += int64(len(data))
	for cur := off; cur < off+int64(len(data)); {
		pageIdx := (cur / int64(l.pageSize)) % l.pages
		inPage := cur % int64(l.pageSize)
		page := l.buf[pageIdx]
		if page == nil {
			page = make([]byte, l.pageSize)
			l.buf[pageIdx] = page
		}
		n := copy(page[inPage:], data[cur-off:])
		cur += int64(n)
	}
	return off, nil
}

// Sync implements LogDevice: write dirty pages, then flush the device.
func (l *BlockLog) Sync(p *sim.Proc) error {
	if l.dirtyFrom >= l.tail {
		return nil
	}
	firstPage := l.dirtyFrom / int64(l.pageSize)
	lastPage := (l.tail - 1) / int64(l.pageSize)
	if l.stack.Config().Batch {
		// Ring path: every dirty page rides one batched submission —
		// one amortized trip through the submit path instead of one
		// full-cost serial round trip per page. The flush stays a
		// separate barrier so durability ordering is unchanged.
		var reqs []blockdev.Request
		for pg := firstPage; pg <= lastPage; pg++ {
			idx := pg % l.pages
			page := l.buf[idx]
			if page == nil {
				continue
			}
			reqs = append(reqs, blockdev.Request{
				Op: blockdev.OpWrite, LPN: l.basePage + idx, Data: page, Tenant: l.tenant,
			})
		}
		if err := l.stack.SubmitBatchSync(p, l.core, reqs); err != nil {
			return fmt.Errorf("core: block log sync: %w", err)
		}
	} else {
		for pg := firstPage; pg <= lastPage; pg++ {
			idx := pg % l.pages
			page := l.buf[idx]
			if page == nil {
				continue
			}
			lpn := l.basePage + idx
			if err := l.stack.WriteSyncAs(p, l.tenant, l.core, lpn, page); err != nil {
				return fmt.Errorf("core: block log sync: %w", err)
			}
		}
	}
	if err := l.stack.FlushSync(p, l.core); err != nil {
		return fmt.Errorf("core: block log flush: %w", err)
	}
	// The tail page stays buffered: the next Sync rewrites it if more
	// bytes landed in it. Full pages stay cached for reads until
	// Truncate drops them.
	l.dirtyFrom = (l.tail / int64(l.pageSize)) * int64(l.pageSize)
	return nil
}

// ReadAt implements LogDevice: served from the buffer when possible,
// otherwise from the device (recovery).
func (l *BlockLog) ReadAt(p *sim.Proc, off int64, n int) ([]byte, error) {
	if off < l.head || off+int64(n) > l.tail {
		return nil, fmt.Errorf("core: log read [%d,%d) outside [%d,%d)", off, off+int64(n), l.head, l.tail)
	}
	out := make([]byte, 0, n)
	for cur := off; cur < off+int64(n); {
		pageIdx := (cur / int64(l.pageSize)) % l.pages
		inPage := cur % int64(l.pageSize)
		want := int64(n) - (cur - off)
		if rest := int64(l.pageSize) - inPage; want > rest {
			want = rest
		}
		if page := l.buf[pageIdx]; page != nil {
			out = append(out, page[inPage:inPage+want]...)
		} else {
			data, err := l.stack.ReadSyncAs(p, l.tenant, l.core, l.basePage+pageIdx)
			if err != nil {
				return nil, err
			}
			if data == nil {
				data = make([]byte, l.pageSize)
			}
			out = append(out, data[inPage:inPage+want]...)
		}
		cur += want
	}
	return out, nil
}

// RawReadAt implements LogDevice: reads straight from the device pages,
// ignoring host bookkeeping (recovery after the buffer is gone).
func (l *BlockLog) RawReadAt(p *sim.Proc, off int64, n int) ([]byte, error) {
	if off < 0 || n < 0 || int64(n) > l.Capacity() {
		return nil, fmt.Errorf("core: raw read [%d,%d) invalid", off, off+int64(n))
	}
	out := make([]byte, 0, n)
	for cur := off; cur < off+int64(n); {
		pageIdx := (cur / int64(l.pageSize)) % l.pages
		inPage := cur % int64(l.pageSize)
		want := off + int64(n) - cur
		if rest := int64(l.pageSize) - inPage; want > rest {
			want = rest
		}
		data, err := l.stack.ReadSyncAs(p, l.tenant, l.core, l.basePage+pageIdx)
		if err != nil {
			return nil, err
		}
		if data == nil {
			data = make([]byte, l.pageSize)
		}
		out = append(out, data[inPage:inPage+want]...)
		cur += want
	}
	return out, nil
}

// Reset implements LogDevice: rewinds bookkeeping after recovery and
// reloads the partial tail page so later appends do not clobber it.
func (l *BlockLog) Reset(p *sim.Proc, head, tail int64) error {
	if head < 0 || tail < head || tail-head > l.Capacity() {
		return fmt.Errorf("core: reset [%d,%d] invalid", head, tail)
	}
	l.head, l.tail = head, tail
	l.dirtyFrom = tail
	l.buf = make(map[int64][]byte)
	if tail%int64(l.pageSize) != 0 {
		idx := (tail / int64(l.pageSize)) % l.pages
		data, err := l.stack.ReadSyncAs(p, l.tenant, l.core, l.basePage+idx)
		if err != nil {
			return err
		}
		page := make([]byte, l.pageSize)
		copy(page, data)
		l.buf[idx] = page
	}
	return nil
}

// Truncate implements LogDevice: trims fully-dead log pages.
func (l *BlockLog) Truncate(head int64) error {
	if head < l.head || head > l.tail {
		return fmt.Errorf("core: truncate %d outside [%d,%d]", head, l.head, l.tail)
	}
	oldFirst := l.head / int64(l.pageSize)
	newFirst := head / int64(l.pageSize)
	for pg := oldFirst; pg < newFirst; pg++ {
		idx := pg % l.pages
		delete(l.buf, idx)
		// Tell the device these log pages are dead — the TRIM the paper
		// highlights.
		_ = l.stack.Device().Trim(l.basePage + idx)
	}
	l.head = head
	return nil
}

// Tail implements LogDevice.
func (l *BlockLog) Tail() int64 { return l.tail }

// Capacity implements LogDevice.
func (l *BlockLog) Capacity() int64 { return l.pages * int64(l.pageSize) }
