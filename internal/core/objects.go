package core

import (
	"fmt"

	"repro/internal/ftl"
	"repro/internal/sim"
	"repro/internal/ssd"
)

// Token is a stable host-side handle for a nameless object. The paper's
// communication abstraction lets the device move the physical page at
// GC time; the token stays valid because the device announces
// relocations ("communicating peers").
type Token int64

// ObjectStore is the nameless-write object interface over a flash
// device's extended command set: the host allocates nothing and names
// nothing — the device returns physical addresses, and relocation
// callbacks keep the host's translation current. This removes the
// redundant host-side allocation/naming layer the paper criticizes
// ("extent-based allocation is irrelevant, nameless writes are
// interesting").
type ObjectStore struct {
	dev *ssd.Device

	next    Token
	byToken map[Token]ftl.PPA
	byPPA   map[ftl.PPA]Token

	// Relocations counts device-announced GC moves of live objects.
	Relocations int64
}

// NewObjectStore binds the extended commands of dev.
func NewObjectStore(dev *ssd.Device) (*ObjectStore, error) {
	s := &ObjectStore{
		dev:     dev,
		byToken: make(map[Token]ftl.PPA),
		byPPA:   make(map[ftl.PPA]Token),
	}
	if err := dev.SetRelocationNotifier(s.onRelocate); err != nil {
		return nil, fmt.Errorf("core: device lacks nameless writes: %w", err)
	}
	return s, nil
}

func (s *ObjectStore) onRelocate(old, new ftl.PPA) {
	tok, ok := s.byPPA[old]
	if !ok {
		return
	}
	delete(s.byPPA, old)
	s.byPPA[new] = tok
	s.byToken[tok] = new
	s.Relocations++
}

// Live reports the number of live objects.
func (s *ObjectStore) Live() int { return len(s.byToken) }

// Put stores one page-sized object; the device chooses its location.
func (s *ObjectStore) Put(p *sim.Proc, data []byte) (Token, error) {
	c := sim.NewCond(p.Engine())
	var ppa ftl.PPA
	var perr error
	s.dev.WriteNameless(data, func(got ftl.PPA, err error) {
		ppa, perr = got, err
		c.Fire()
	})
	c.Await(p)
	if perr != nil {
		return 0, perr
	}
	s.next++
	tok := s.next
	s.byToken[tok] = ppa
	s.byPPA[ppa] = tok
	return tok, nil
}

// Get fetches an object by token.
func (s *ObjectStore) Get(p *sim.Proc, tok Token) ([]byte, error) {
	ppa, ok := s.byToken[tok]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrBadToken, tok)
	}
	c := sim.NewCond(p.Engine())
	var data []byte
	var rerr error
	s.dev.ReadPhys(ppa, func(d []byte, err error) {
		data, rerr = d, err
		c.Fire()
	})
	c.Await(p)
	return data, rerr
}

// Delete trims an object: the device learns immediately that the page
// is dead, so GC never copies it.
func (s *ObjectStore) Delete(tok Token) error {
	ppa, ok := s.byToken[tok]
	if !ok {
		return fmt.Errorf("%w: %d", ErrBadToken, tok)
	}
	delete(s.byToken, tok)
	delete(s.byPPA, ppa)
	return s.dev.TrimPhys(ppa)
}

// Update replaces an object's contents, returning the same token
// (write-new + trim-old under the hood — out-of-place, like the FTL
// itself works).
func (s *ObjectStore) Update(p *sim.Proc, tok Token, data []byte) error {
	oldPPA, ok := s.byToken[tok]
	if !ok {
		return fmt.Errorf("%w: %d", ErrBadToken, tok)
	}
	c := sim.NewCond(p.Engine())
	var newPPA ftl.PPA
	var perr error
	s.dev.WriteNameless(data, func(got ftl.PPA, err error) {
		newPPA, perr = got, err
		c.Fire()
	})
	c.Await(p)
	if perr != nil {
		return perr
	}
	delete(s.byPPA, oldPPA)
	if err := s.dev.TrimPhys(oldPPA); err != nil {
		return err
	}
	s.byToken[tok] = newPPA
	s.byPPA[newPPA] = tok
	return nil
}

// AtomicWrite exposes the device's atomic group write for page-store
// LPNs (used by the engine's checkpointer to drop double-write
// journaling).
func AtomicWrite(p *sim.Proc, dev *ssd.Device, lpns []int64, pages [][]byte) error {
	c := sim.NewCond(p.Engine())
	var werr error
	dev.AtomicWrite(lpns, pages, func(err error) {
		werr = err
		c.Fire()
	})
	c.Await(p)
	return werr
}
