// Package core implements the paper's contribution: the storage
// interface that should replace the block device (§3, "Secondary
// storage revisited"). It rests on three principles:
//
//  1. Synchronous and asynchronous persistence are separated (Mohan):
//     synchronous patterns — log writes, commits — go to PCM on the
//     memory bus at store/fence granularity; asynchronous patterns —
//     lazy page writes, prefetching, reads — go to flash SSDs as I/O.
//
//  2. The memory abstraction gives way to a communication abstraction:
//     host and device are peers. The host can issue nameless writes
//     (the device picks the address and returns it), trim dead data,
//     and group writes atomically; the device notifies the host when
//     garbage collection relocates host-addressed pages.
//
//  3. The stack is streamlined like low-latency networking: the async
//     domain runs over the direct submission path, not the shared-lock
//     block layer.
//
// The same storage engine (package kvstore) runs over this interface
// and over the conservative block-device stack, which is the
// paper-versus-baseline comparison of experiments E10-E12.
package core

import (
	"errors"
	"fmt"

	"repro/internal/blockdev"
	"repro/internal/pcm"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/ssd"
)

// Package errors.
var (
	// ErrLogFull reports sync-log exhaustion (checkpoint required).
	ErrLogFull = errors.New("core: sync log full")
	// ErrBadToken reports an unknown or deleted object token.
	ErrBadToken = errors.New("core: unknown object token")
)

// LogDevice is the synchronous persistence domain: an append-only byte
// log with explicit durability points. Two implementations exist: the
// progressive PCMLog (memory bus) and the conservative BlockLog
// (page-granular writes + flush through the block layer).
type LogDevice interface {
	// Append stages data at the log tail and returns its offset.
	// Durability requires Sync. The tail is reserved before the device
	// operation starts, so concurrent appenders never interleave bytes.
	Append(p *sim.Proc, data []byte) (int64, error)
	// Sync makes everything appended so far durable.
	Sync(p *sim.Proc) error
	// ReadAt reads n bytes at off within [head, tail).
	ReadAt(p *sim.Proc, off int64, n int) ([]byte, error)
	// RawReadAt reads bytes at any offset without bounds bookkeeping —
	// the crash-recovery scan path, where the host has lost head/tail
	// and validates records by checksum and embedded LSN instead.
	RawReadAt(p *sim.Proc, off int64, n int) ([]byte, error)
	// Reset rewinds host bookkeeping to the given window after
	// recovery decided where the valid log ends.
	Reset(p *sim.Proc, head, tail int64) error
	// Truncate discards the log prefix below head (checkpointing).
	Truncate(head int64) error
	// Tail reports the current append offset.
	Tail() int64
	// Capacity reports the usable log bytes.
	Capacity() int64
}

// PageStore is the asynchronous persistence domain: page-granular
// storage for data pages, with trim and flush.
type PageStore interface {
	PageSize() int
	Capacity() int64
	// ReadPage fetches a page, blocking the calling process.
	ReadPage(p *sim.Proc, lpn int64) ([]byte, error)
	// WritePage stores a page, blocking until acknowledged.
	WritePage(p *sim.Proc, lpn int64, data []byte) error
	// WritePageAsync stores a page without blocking (lazy write-back).
	WritePageAsync(lpn int64, data []byte, done func(error))
	// Trim declares a page dead.
	Trim(lpn int64) error
	// Flush drains device buffers, blocking the calling process.
	Flush(p *sim.Proc) error
}

// Store is the assembled progressive interface: a PCM sync domain, a
// flash async domain on the direct path, and the extended command set.
type Store struct {
	eng *sim.Engine

	// Log is the synchronous domain (PCM unless configured otherwise).
	Log LogDevice
	// Pages is the asynchronous domain.
	Pages PageStore
	// Objects is the nameless-write object store (may be nil when the
	// device lacks the extended commands).
	Objects *ObjectStore
}

// NewProgressive assembles the paper's proposed stack: log on PCM via
// the memory bus, data pages on a flash device through the direct
// submission path, nameless objects enabled when supported.
func NewProgressive(eng *sim.Engine, membus *pcm.MemBus, logBytes int64, flash *ssd.Device, cpus int) (*Store, error) {
	log, err := NewPCMLog(membus, 0, logBytes)
	if err != nil {
		return nil, err
	}
	cfg := blockdev.DefaultConfig(blockdev.Direct)
	if cpus > 0 {
		cfg.CPUs = cpus
	}
	stack, err := blockdev.New(eng, flash, cfg)
	if err != nil {
		return nil, err
	}
	s := &Store{
		eng:   eng,
		Log:   log,
		Pages: NewStackPages(stack),
	}
	if obj, err := NewObjectStore(flash); err == nil {
		s.Objects = obj
	}
	return s, nil
}

// NewConservative assembles the baseline: one flash device behind the
// classic single-queue block layer carrying both the log and the data
// pages (the architecture the paper says to abandon). logPages pages at
// the start of the device hold the log; the rest hold data.
func NewConservative(eng *sim.Engine, flash ssd.Dev, logPages int64, cpus int) (*Store, error) {
	cfg := blockdev.DefaultConfig(blockdev.SingleQueue)
	if cpus > 0 {
		cfg.CPUs = cpus
	}
	stack, err := blockdev.New(eng, flash, cfg)
	if err != nil {
		return nil, err
	}
	if logPages <= 0 || logPages >= flash.Capacity() {
		return nil, fmt.Errorf("core: log region %d pages out of range", logPages)
	}
	log, err := NewBlockLog(stack, 0, logPages)
	if err != nil {
		return nil, err
	}
	return &Store{
		eng:   eng,
		Log:   log,
		Pages: NewStackPagesOffset(stack, logPages),
	}, nil
}

// AttachScheduler inserts a multi-tenant scheduler on this store's
// async submission path and, when the device supports it, wires the
// device's GC-activity notifications into the scheduler — the
// communicating-peers loop closed: the device reports relocation state
// up, the host adjusts tenant arbitration down.
func (s *Store) AttachScheduler(sc *sched.Scheduler) error {
	sp, ok := s.Pages.(*StackPages)
	if !ok {
		return fmt.Errorf("core: page store %T exposes no stack to schedule", s.Pages)
	}
	sp.Stack().AttachScheduler(sc)
	if dev, ok := sp.Stack().Device().(*ssd.Device); ok {
		// PCM SSDs and legacy FTLs have no GC to report; the scheduler
		// simply never sees relocation pressure then.
		_ = dev.SetGCNotifier(sc.SetGCActiveChips)
	}
	return nil
}

// SetPageTenant tags all async-domain traffic with tenant t (see
// StackPages.SetTenant). It is a no-op for non-stack page stores.
func (s *Store) SetPageTenant(t *sched.Tenant) {
	if sp, ok := s.Pages.(*StackPages); ok {
		sp.SetTenant(t)
	}
}
