package core

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/pcm"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/ssd"
)

// buildFlash makes a small safe-buffered enterprise device.
func buildFlash(t *testing.T, eng *sim.Engine) *ssd.Device {
	t.Helper()
	d, err := ssd.Build(eng, ssd.Enterprise2012, ssd.Options{
		Channels: 2, ChipsPerChannel: 2, BlocksPerPlane: 32, PagesPerBlock: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d.(*ssd.Device)
}

func buildMemBus(t *testing.T, eng *sim.Engine) *pcm.MemBus {
	t.Helper()
	cfg := pcm.DefaultConfig()
	cfg.CapacityBytes = 1 << 22
	dev, err := pcm.New(eng, "pcm0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	return pcm.NewMemBus(eng, dev)
}

func TestPCMLogAppendSyncRead(t *testing.T) {
	eng := sim.NewEngine()
	mb := buildMemBus(t, eng)
	log, err := NewPCMLog(mb, 0, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	eng.Go(func(p *sim.Proc) {
		off1, err := log.Append(p, []byte("hello "))
		if err != nil {
			t.Errorf("append: %v", err)
		}
		off2, _ := log.Append(p, []byte("world"))
		if off1 != 0 || off2 != 6 {
			t.Errorf("offsets %d,%d", off1, off2)
		}
		if err := log.Sync(p); err != nil {
			t.Errorf("sync: %v", err)
		}
		got, err := log.ReadAt(p, 0, 11)
		if err != nil {
			t.Errorf("read: %v", err)
		}
		if string(got) != "hello world" {
			t.Errorf("got %q", got)
		}
	})
	eng.Run()
}

func TestPCMLogWrapsAround(t *testing.T) {
	eng := sim.NewEngine()
	mb := buildMemBus(t, eng)
	log, err := NewPCMLog(mb, 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	eng.Go(func(p *sim.Proc) {
		// Fill 48 bytes, truncate 32, append 40 (wraps).
		if _, err := log.Append(p, bytes.Repeat([]byte{1}, 48)); err != nil {
			t.Fatalf("fill: %v", err)
		}
		if err := log.Truncate(32); err != nil {
			t.Fatalf("truncate: %v", err)
		}
		payload := bytes.Repeat([]byte{7}, 40)
		off, err := log.Append(p, payload)
		if err != nil {
			t.Fatalf("wrap append: %v", err)
		}
		got, err := log.ReadAt(p, off, 40)
		if err != nil {
			t.Fatalf("wrap read: %v", err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatal("wrapped data corrupted")
		}
	})
	eng.Run()
}

func TestPCMLogFullRejected(t *testing.T) {
	eng := sim.NewEngine()
	mb := buildMemBus(t, eng)
	log, _ := NewPCMLog(mb, 0, 16)
	eng.Go(func(p *sim.Proc) {
		if _, err := log.Append(p, make([]byte, 17)); !errors.Is(err, ErrLogFull) {
			t.Errorf("err = %v, want ErrLogFull", err)
		}
	})
	eng.Run()
}

func TestPCMLogSyncCheapVsBlockLogSync(t *testing.T) {
	// The §3 principle 1 claim in miniature: a commit-sized append+sync
	// on PCM must be orders of magnitude faster than on the block path.
	eng := sim.NewEngine()
	mb := buildMemBus(t, eng)
	plog, _ := NewPCMLog(mb, 0, 1<<16)
	var pcmDur sim.Time
	eng.Go(func(p *sim.Proc) {
		start := p.Now()
		plog.Append(p, make([]byte, 128))
		plog.Sync(p)
		pcmDur = p.Now() - start
	})
	eng.Run()

	eng2 := sim.NewEngine()
	flash := buildFlash(t, eng2)
	st, err := NewConservative(eng2, flash, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	var blockDur sim.Time
	eng2.Go(func(p *sim.Proc) {
		start := p.Now()
		if _, err := st.Log.Append(p, make([]byte, 128)); err != nil {
			t.Errorf("append: %v", err)
		}
		if err := st.Log.Sync(p); err != nil {
			t.Errorf("sync: %v", err)
		}
		blockDur = p.Now() - start
	})
	eng2.Run()
	if pcmDur*20 > blockDur {
		t.Fatalf("PCM commit %v vs block commit %v: want >=20x gap", pcmDur, blockDur)
	}
}

func TestBlockLogRoundTripAndRecoveryRead(t *testing.T) {
	eng := sim.NewEngine()
	flash := buildFlash(t, eng)
	st, err := NewConservative(eng, flash, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	log := st.Log
	eng.Go(func(p *sim.Proc) {
		var recs [][]byte
		for i := 0; i < 20; i++ {
			recs = append(recs, bytes.Repeat([]byte{byte(i + 1)}, 100+i))
		}
		var offs []int64
		for _, r := range recs {
			off, err := log.Append(p, r)
			if err != nil {
				t.Fatalf("append: %v", err)
			}
			offs = append(offs, off)
		}
		if err := log.Sync(p); err != nil {
			t.Fatalf("sync: %v", err)
		}
		for i, r := range recs {
			got, err := log.ReadAt(p, offs[i], len(r))
			if err != nil {
				t.Fatalf("read %d: %v", i, err)
			}
			if !bytes.Equal(got, r) {
				t.Fatalf("record %d corrupted", i)
			}
		}
	})
	eng.Run()
}

func TestBlockLogTruncateTrims(t *testing.T) {
	eng := sim.NewEngine()
	flash := buildFlash(t, eng)
	st, err := NewConservative(eng, flash, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	log := st.Log
	ps := int64(flash.PageSize())
	before := flash.FTL().Stats().HostTrims
	eng.Go(func(p *sim.Proc) {
		log.Append(p, make([]byte, 3*ps))
		log.Sync(p)
		if err := log.Truncate(2 * ps); err != nil {
			t.Errorf("truncate: %v", err)
		}
	})
	eng.Run()
	if flash.FTL().Stats().HostTrims != before+2 {
		t.Fatalf("expected 2 trims, got %d", flash.FTL().Stats().HostTrims-before)
	}
}

func TestStackPagesRoundTripAndOffset(t *testing.T) {
	eng := sim.NewEngine()
	flash := buildFlash(t, eng)
	st, err := NewConservative(eng, flash, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	pgs := st.Pages
	if pgs.Capacity() != flash.Capacity()-16 {
		t.Fatalf("offset capacity wrong: %d", pgs.Capacity())
	}
	eng.Go(func(p *sim.Proc) {
		data := bytes.Repeat([]byte{0xAB}, pgs.PageSize())
		if err := pgs.WritePage(p, 0, data); err != nil {
			t.Errorf("write: %v", err)
		}
		got, err := pgs.ReadPage(p, 0)
		if err != nil || got[0] != 0xAB {
			t.Errorf("read: %v %v", got, err)
		}
		// Page 0 of the data region must not collide with the log region.
		if err := st.Log.Sync(p); err != nil {
			t.Errorf("log sync: %v", err)
		}
		if err := pgs.Trim(0); err != nil {
			t.Errorf("trim: %v", err)
		}
		if err := pgs.Flush(p); err != nil {
			t.Errorf("flush: %v", err)
		}
		if _, err := pgs.ReadPage(p, pgs.Capacity()); err == nil {
			t.Error("out-of-range read accepted")
		}
	})
	eng.Run()
}

func TestStackPagesAsyncWrite(t *testing.T) {
	eng := sim.NewEngine()
	flash := buildFlash(t, eng)
	st, err := NewConservative(eng, flash, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	acked := 0
	for i := int64(0); i < 8; i++ {
		st.Pages.WritePageAsync(i, nil, func(err error) {
			if err != nil {
				t.Errorf("async write: %v", err)
			}
			acked++
		})
	}
	eng.Run()
	if acked != 8 {
		t.Fatalf("acked = %d", acked)
	}
}

func TestProgressiveAssembly(t *testing.T) {
	eng := sim.NewEngine()
	flash := buildFlash(t, eng)
	mb := buildMemBus(t, eng)
	st, err := NewProgressive(eng, mb, 1<<20, flash, 2)
	if err != nil {
		t.Fatal(err)
	}
	if st.Objects == nil {
		t.Fatal("progressive store lacks nameless objects")
	}
	eng.Go(func(p *sim.Proc) {
		if _, err := st.Log.Append(p, []byte("commit")); err != nil {
			t.Errorf("log: %v", err)
		}
		st.Log.Sync(p)
		if err := st.Pages.WritePage(p, 3, nil); err != nil {
			t.Errorf("page: %v", err)
		}
	})
	eng.Run()
}

func TestObjectStorePutGetUpdateDelete(t *testing.T) {
	eng := sim.NewEngine()
	flash := buildFlash(t, eng)
	obj, err := NewObjectStore(flash)
	if err != nil {
		t.Fatal(err)
	}
	eng.Go(func(p *sim.Proc) {
		a := bytes.Repeat([]byte{1}, flash.PageSize())
		b := bytes.Repeat([]byte{2}, flash.PageSize())
		tok, err := obj.Put(p, a)
		if err != nil {
			t.Fatalf("put: %v", err)
		}
		got, err := obj.Get(p, tok)
		if err != nil || got[0] != 1 {
			t.Fatalf("get: %v %v", got, err)
		}
		if err := obj.Update(p, tok, b); err != nil {
			t.Fatalf("update: %v", err)
		}
		got, err = obj.Get(p, tok)
		if err != nil || got[0] != 2 {
			t.Fatalf("get after update: %v %v", got, err)
		}
		if obj.Live() != 1 {
			t.Fatalf("live = %d", obj.Live())
		}
		if err := obj.Delete(tok); err != nil {
			t.Fatalf("delete: %v", err)
		}
		if _, err := obj.Get(p, tok); !errors.Is(err, ErrBadToken) {
			t.Fatalf("get deleted: %v", err)
		}
		if err := obj.Delete(tok); !errors.Is(err, ErrBadToken) {
			t.Fatalf("double delete: %v", err)
		}
	})
	eng.Run()
}

func TestObjectStoreSurvivesGCRelocation(t *testing.T) {
	eng := sim.NewEngine()
	// Tiny device to force GC quickly.
	d, err := ssd.Build(eng, ssd.Enterprise2012, ssd.Options{
		Channels: 1, ChipsPerChannel: 2, BlocksPerPlane: 8, PagesPerBlock: 4,
		BufferPages: -1, OverProvision: 0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	flash := d.(*ssd.Device)
	obj, err := NewObjectStore(flash)
	if err != nil {
		t.Fatal(err)
	}
	eng.Go(func(p *sim.Proc) {
		data := bytes.Repeat([]byte{0x77}, flash.PageSize())
		tok, err := obj.Put(p, data)
		if err != nil {
			t.Fatalf("put: %v", err)
		}
		// Churn logical pages to force GC around the object.
		n := flash.Capacity()
		for round := 0; round < 30; round++ {
			for l := int64(0); l < n*3/4; l++ {
				if err := flash.FTL().(interface {
					Trim(int64) error
				}).Trim(l); err != nil {
					t.Fatalf("trim: %v", err)
				}
				c := sim.NewCond(eng)
				flash.Write(l, nil, func(error) { c.Fire() })
				c.Await(p)
			}
		}
		got, err := obj.Get(p, tok)
		if err != nil {
			t.Fatalf("get after churn: %v", err)
		}
		if got[0] != 0x77 {
			t.Fatal("object corrupted by GC")
		}
	})
	eng.Run()
	if obj.Relocations == 0 {
		t.Fatal("object never relocated despite churn; test not exercising the peer protocol")
	}
}

func TestAtomicWriteHelper(t *testing.T) {
	eng := sim.NewEngine()
	flash := buildFlash(t, eng)
	eng.Go(func(p *sim.Proc) {
		pages := [][]byte{
			bytes.Repeat([]byte{5}, flash.PageSize()),
			bytes.Repeat([]byte{6}, flash.PageSize()),
		}
		if err := AtomicWrite(p, flash, []int64{10, 11}, pages); err != nil {
			t.Fatalf("atomic: %v", err)
		}
	})
	eng.Run()
}

func TestConservativeRejectsBadLogRegion(t *testing.T) {
	eng := sim.NewEngine()
	flash := buildFlash(t, eng)
	if _, err := NewConservative(eng, flash, 0, 1); err == nil {
		t.Fatal("zero log pages accepted")
	}
	if _, err := NewConservative(eng, flash, flash.Capacity(), 1); err == nil {
		t.Fatal("log covering whole device accepted")
	}
}

// TestAttachSchedulerOnDirectPath wires a tenant scheduler into the
// progressive store's async domain: page traffic is charged to the
// tenant and the device's GC notifications reach the scheduler.
func TestAttachSchedulerOnDirectPath(t *testing.T) {
	eng := sim.NewEngine()
	mb := buildMemBus(t, eng)
	flash := buildFlash(t, eng)
	st, err := NewProgressive(eng, mb, 1<<20, flash, 2)
	if err != nil {
		t.Fatal(err)
	}
	sc := sched.New(eng, sched.DefaultConfig())
	tenant := sc.AddTenant("engine", sched.LatencySensitive, 4)
	if err := st.AttachScheduler(sc); err != nil {
		t.Fatal(err)
	}
	st.SetPageTenant(tenant)
	eng.Go(func(p *sim.Proc) {
		data := make([]byte, st.Pages.PageSize())
		data[0] = 0x5a
		if err := st.Pages.WritePage(p, 3, data); err != nil {
			t.Errorf("write: %v", err)
		}
		got, err := st.Pages.ReadPage(p, 3)
		if err != nil || got[0] != 0x5a {
			t.Errorf("read back: %v %v", got, err)
		}
	})
	eng.Run()
	if tenant.Dispatched < 2 {
		t.Fatalf("tenant saw %d dispatches, want the page write+read", tenant.Dispatched)
	}
	// The GC notifier is connected but no GC has run on a fresh device.
	if sc.GCActiveChips() != 0 {
		t.Fatalf("no GC ran yet, scheduler sees %d active chips", sc.GCActiveChips())
	}
}

// TestAttachSchedulerRejectsNonStackPages guards the error path.
func TestAttachSchedulerRejectsNonStackPages(t *testing.T) {
	eng := sim.NewEngine()
	st := &Store{eng: eng, Pages: nil}
	if err := st.AttachScheduler(sched.New(eng, sched.DefaultConfig())); err == nil {
		t.Fatal("nil page store accepted")
	}
}
