package obs

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/sim"
)

// EventKind classifies a health event.
type EventKind int

// The event taxonomy. Lease, floor, forced-GC, migration, autoscale,
// device-down, and repair events are emitted by the layer that acts
// (sched, ftl, place, serve); storm, collapse, proximity, drift, and
// burn events are derived by the Monitor from sampled ledger deltas.
const (
	EventLeaseGrant EventKind = iota
	EventLeaseDecline
	EventFloorHit
	EventForcedGC
	EventGCStorm
	EventAdmissionCollapse
	EventFloorProximity
	EventDrift
	EventSLOBurn
	EventSLOClear
	EventMigrationStart
	EventMigrationFinish
	EventMigrationAbort
	EventAutoscaleWalk
	EventDeviceDown
	EventRepairStart
	EventRepairDone
	EventRepairAbort
	numEventKinds
)

var eventKindNames = [numEventKinds]string{
	"lease_grant", "lease_decline", "floor_hit", "forced_gc",
	"gc_storm", "admission_collapse", "floor_proximity", "drift",
	"slo_burn", "slo_clear",
	"migration_start", "migration_finish", "migration_abort",
	"autoscale_walk",
	"device_down", "repair_start", "repair_done", "repair_abort",
}

// String names the kind for rendering and JSON.
func (k EventKind) String() string {
	if k < 0 || k >= numEventKinds {
		return "unknown"
	}
	return eventKindNames[k]
}

// HealthEvent is one typed occurrence on the health timeline: what
// happened, when in virtual time, a human-readable detail line, the
// measured value that triggered it, and — for derived alerts — an
// explanation built from the flight recorder's slowest spans in the
// alert window.
type HealthEvent struct {
	Kind     EventKind `json:"-"`
	KindName string    `json:"kind"`
	At       sim.Time  `json:"at_ns"`
	Name     string    `json:"name"`
	Detail   string    `json:"detail,omitempty"`
	Value    float64   `json:"value"`
	Explain  string    `json:"explain,omitempty"`
}

// EventSink receives health events; Monitor implements it, and the
// acting layers (sched, ftl, place, serve) hold one to report into.
type EventSink interface {
	Emit(ev HealthEvent)
}

// MonitorConfig tunes the health engine. Zero values take defaults.
type MonitorConfig struct {
	Enabled bool

	Events int // event ring capacity (default 512)

	// Multi-window burn-rate alerting (Google-SRE style): an SLO alert
	// fires when the error budget burns at BurnThreshold× the
	// sustainable rate over both the long and the short window — the
	// long window proves it is not a blip, the short window proves it
	// is still happening. It clears only after the short-window burn
	// stays below ClearFraction×threshold for ClearTicks consecutive
	// samples, so a rate hovering at the threshold cannot flap.
	LongWindow    int     // sampling ticks (default 8)
	ShortWindow   int     // sampling ticks (default 2)
	BurnThreshold float64 // ×budget (default 2)
	ClearFraction float64 // of threshold (default 0.5)
	ClearTicks    int     // consecutive quiet ticks (default 3)

	// Drift detection mirrors metrics.DriftAlarm on sampled series:
	// the baseline is the mean of the first DriftBaseline non-zero
	// samples, the alarm arms after that, trips once the value holds
	// at DriftThreshold× baseline for DriftConfirm consecutive
	// samples, and latches (aging does not heal).
	DriftBaseline  int     // warm samples to average (default 4)
	DriftConfirm   int     // consecutive trip samples (default 2)
	DriftThreshold float64 // ×baseline (default 1.5)

	ExplainSpans int // slowest spans quoted per alert (default 3)
}

func (c MonitorConfig) withDefaults() MonitorConfig {
	if c.Events <= 0 {
		c.Events = 512
	}
	if c.LongWindow <= 0 {
		c.LongWindow = 8
	}
	if c.ShortWindow <= 0 {
		c.ShortWindow = 2
	}
	if c.BurnThreshold <= 0 {
		c.BurnThreshold = 2
	}
	if c.ClearFraction <= 0 || c.ClearFraction >= 1 {
		c.ClearFraction = 0.5
	}
	if c.ClearTicks <= 0 {
		c.ClearTicks = 3
	}
	if c.DriftBaseline <= 0 {
		c.DriftBaseline = 4
	}
	if c.DriftConfirm <= 0 {
		c.DriftConfirm = 2
	}
	if c.DriftThreshold <= 1 {
		c.DriftThreshold = 1.5
	}
	if c.ExplainSpans <= 0 {
		c.ExplainSpans = 3
	}
	return c
}

// watch is one derived-alert state machine evaluated every sampling
// tick. eval returns the measured value, whether the trip condition
// holds this tick, and whether the value is quiet enough to count
// toward clearing.
type watch struct {
	kind    EventKind
	name    string
	class   string // trace class for Explain correlation, if any
	latched bool   // once fired, never clears (drift)
	confirm int    // consecutive trip ticks required to fire

	eval  func() (value float64, trip bool, quiet bool, ready bool)
	reset func() // rebase hook: drop baselines and latches (Rebase)

	firing    bool
	tripRun   int
	quietRun  int
	firedOnce bool
	windowLo  sim.Time // start of the current excursion, for Explain
}

// Monitor is the SLO health engine: it hangs off a Sampler's OnSample
// hook, evaluates burn-rate / drift / threshold watches against the
// sampled series, collects typed health events from the acting layers
// (it is the fabric's EventSink), and correlates derived alerts with
// the trace flight recorder so an alert can quote the slowest spans
// inside its own window.
type Monitor struct {
	mu     sync.Mutex
	cfg    MonitorConfig
	sam    *Sampler
	tracer *Tracer

	events []HealthEvent // ring, oldest at head once full
	head   int
	full   bool
	counts [numEventKinds]int64

	watches []*watch
	now     sim.Time
}

// NewMonitor builds a monitor over the sampler's series and registers
// it on the sampler's tick hook. The tracer may be nil (alerts then
// carry no span explanations).
func NewMonitor(sam *Sampler, tracer *Tracer, cfg MonitorConfig) *Monitor {
	m := &Monitor{cfg: cfg.withDefaults(), sam: sam, tracer: tracer}
	sam.OnSample(m.onSample)
	return m
}

// Emit records a typed health event. Safe from any layer; Monitor
// implements EventSink. Nil-safe.
func (m *Monitor) Emit(ev HealthEvent) {
	if m == nil {
		return
	}
	ev.KindName = ev.Kind.String()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.push(ev)
}

func (m *Monitor) push(ev HealthEvent) {
	if ev.Kind >= 0 && ev.Kind < numEventKinds {
		m.counts[ev.Kind]++
	}
	if len(m.events) < m.cfg.Events && !m.full {
		m.events = append(m.events, ev)
		return
	}
	m.full = true
	m.events[m.head] = ev
	m.head = (m.head + 1) % len(m.events)
}

// Events returns the retained events, oldest first.
func (m *Monitor) Events() []HealthEvent {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]HealthEvent, 0, len(m.events))
	start := 0
	if m.full {
		start = m.head
	}
	for i := 0; i < len(m.events); i++ {
		out = append(out, m.events[(start+i)%len(m.events)])
	}
	return out
}

// Count reports how many events of a kind have been recorded (including
// any that have fallen off the ring).
func (m *Monitor) Count(kind EventKind) int64 {
	if m == nil || kind < 0 || kind >= numEventKinds {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counts[kind]
}

// Counts reports per-kind event totals keyed by kind name.
func (m *Monitor) Counts() map[string]int64 {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]int64, numEventKinds)
	for k := EventKind(0); k < numEventKinds; k++ {
		if m.counts[k] > 0 {
			out[k.String()] = m.counts[k]
		}
	}
	return out
}

// Firing lists the names of watches currently in the firing state.
func (m *Monitor) Firing() []string {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []string
	for _, w := range m.watches {
		if w.firing {
			out = append(out, w.kind.String()+":"+w.name)
		}
	}
	return out
}

// Snapshot exports the monitor state for the registry: per-kind event
// counts, currently-firing alerts, and the most recent events.
func (m *Monitor) Snapshot() map[string]any {
	if m == nil {
		return nil
	}
	events := m.Events()
	const tail = 32
	if len(events) > tail {
		events = events[len(events)-tail:]
	}
	return map[string]any{
		"counts": m.Counts(),
		"firing": m.Firing(),
		"recent": events,
	}
}

// windowDelta computes the change in a counter series over the last n
// sampling intervals (0 if the ring holds fewer points).
func (m *Monitor) windowDelta(series string, n int) (float64, bool) {
	pts := m.sam.Last(series, n+1)
	if len(pts) < n+1 {
		return 0, false
	}
	return pts[len(pts)-1].V - pts[0].V, true
}

// WatchSLO adds a multi-window burn-rate watch: errSeries and
// totalSeries are counter series; budget is the tolerated error
// fraction (the SLO's error budget, e.g. 0.01 for 99%). class, when
// non-empty, names the trace class whose slowest spans explain the
// alert. Nil-safe.
func (m *Monitor) WatchSLO(name, errSeries, totalSeries string, budget float64, class string) {
	if m == nil || budget <= 0 {
		return
	}
	cfg := m.cfg
	w := &watch{kind: EventSLOBurn, name: name, class: class, confirm: 1}
	w.eval = func() (float64, bool, bool, bool) {
		longErr, okLE := m.windowDelta(errSeries, cfg.LongWindow)
		longTot, okLT := m.windowDelta(totalSeries, cfg.LongWindow)
		shortErr, okSE := m.windowDelta(errSeries, cfg.ShortWindow)
		shortTot, okST := m.windowDelta(totalSeries, cfg.ShortWindow)
		if !okLE || !okLT || !okSE || !okST {
			return 0, false, false, false
		}
		burn := func(errD, totD float64) float64 {
			if totD <= 0 {
				return 0
			}
			return (errD / totD) / budget
		}
		longBurn, shortBurn := burn(longErr, longTot), burn(shortErr, shortTot)
		trip := longBurn >= cfg.BurnThreshold && shortBurn >= cfg.BurnThreshold
		quiet := shortBurn < cfg.ClearFraction*cfg.BurnThreshold
		return shortBurn, trip, quiet, true
	}
	m.addWatch(w)
}

// WatchDrift adds a latched drift watch on a gauge series: the
// baseline is the mean of the first DriftBaseline non-zero samples;
// the alarm trips once the sampled value holds at DriftThreshold×
// baseline for DriftConfirm consecutive ticks. Nil-safe.
func (m *Monitor) WatchDrift(name, series string, class string) {
	if m == nil {
		return
	}
	cfg := m.cfg
	var baseSum float64
	var baseN int
	var baseline float64
	w := &watch{kind: EventDrift, name: name, class: class, latched: true, confirm: cfg.DriftConfirm}
	w.reset = func() { baseSum, baseN, baseline = 0, 0, 0 }
	w.eval = func() (float64, bool, bool, bool) {
		pts := m.sam.Last(series, 1)
		if len(pts) == 0 || pts[0].V <= 0 {
			return 0, false, true, false
		}
		v := pts[0].V
		if baseN < cfg.DriftBaseline {
			baseSum += v
			baseN++
			baseline = baseSum / float64(baseN)
			return v, false, true, false
		}
		return v / baseline, v >= cfg.DriftThreshold*baseline, true, true
	}
	m.addWatch(w)
}

// WatchRateFraction adds a watch on the windowed ratio of two counter
// series (e.g. rejected/submitted for admission collapse): it fires
// when the short-window fraction reaches frac and clears with the
// standard hysteresis. Nil-safe.
func (m *Monitor) WatchRateFraction(kind EventKind, name, numSeries, denSeries string, frac float64, class string) {
	if m == nil || frac <= 0 {
		return
	}
	cfg := m.cfg
	w := &watch{kind: kind, name: name, class: class, confirm: 1}
	w.eval = func() (float64, bool, bool, bool) {
		num, okN := m.windowDelta(numSeries, cfg.ShortWindow)
		den, okD := m.windowDelta(denSeries, cfg.ShortWindow)
		if !okN || !okD || den <= 0 {
			return 0, false, true, okN && okD
		}
		f := num / den
		return f, f >= frac, f < cfg.ClearFraction*frac, true
	}
	m.addWatch(w)
}

// WatchCounterRate adds a watch on a counter's short-window rate in
// events per sampled interval (e.g. floor hits per tick for a GC
// storm). Nil-safe.
func (m *Monitor) WatchCounterRate(kind EventKind, name, series string, perTick float64, class string) {
	if m == nil || perTick <= 0 {
		return
	}
	cfg := m.cfg
	w := &watch{kind: kind, name: name, class: class, confirm: 1}
	w.eval = func() (float64, bool, bool, bool) {
		d, ok := m.windowDelta(series, cfg.ShortWindow)
		if !ok {
			return 0, false, true, false
		}
		r := d / float64(cfg.ShortWindow)
		return r, r >= perTick, r < cfg.ClearFraction*perTick, true
	}
	m.addWatch(w)
}

// WatchGaugeBelow adds a watch that fires while a gauge sits at or
// below floor (e.g. GC free-pool headroom nearing the hard floor) and
// clears once it recovers above floor for ClearTicks samples.
// Negative samples are ignored (gauge not yet meaningful). Nil-safe.
func (m *Monitor) WatchGaugeBelow(kind EventKind, name, series string, floor float64, class string) {
	if m == nil {
		return
	}
	w := &watch{kind: kind, name: name, class: class, confirm: 1}
	w.eval = func() (float64, bool, bool, bool) {
		pts := m.sam.Last(series, 1)
		if len(pts) == 0 || pts[0].V < 0 {
			return 0, false, true, false
		}
		v := pts[0].V
		return v, v <= floor, v > floor, true
	}
	m.addWatch(w)
}

func (m *Monitor) addWatch(w *watch) {
	m.mu.Lock()
	m.watches = append(m.watches, w)
	m.mu.Unlock()
}

// Rebase restarts every watch's state machine — drift baselines are
// dropped and re-armed from the samples that follow, latches release,
// and in-flight excursions clear. Called when a measurement epoch
// starts (serve.Fabric.ResetStats), so drift is judged against the
// post-warm-up steady state, never the cold start. Nil-safe.
func (m *Monitor) Rebase() {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, w := range m.watches {
		w.firing = false
		w.tripRun = 0
		w.quietRun = 0
		w.firedOnce = false
		if w.reset != nil {
			w.reset()
		}
	}
}

// explainWindow quotes the slowest flight-recorder spans of a class
// that started inside [since, now] — the concrete requests behind an
// alert.
func (m *Monitor) explainWindow(class string, since sim.Time) string {
	if m.tracer == nil || class == "" {
		return ""
	}
	recs := m.tracer.Slowest(class)
	inWindow := recs[:0]
	for _, r := range recs {
		if r.Start >= since {
			inWindow = append(inWindow, r)
		}
	}
	if len(inWindow) == 0 {
		return ""
	}
	sort.Slice(inWindow, func(i, j int) bool { return inWindow[i].Total > inWindow[j].Total })
	if len(inWindow) > m.cfg.ExplainSpans {
		inWindow = inWindow[:m.cfg.ExplainSpans]
	}
	out := ""
	for i, r := range inWindow {
		if i > 0 {
			out += "; "
		}
		out += r.Explain()
	}
	return out
}

// onSample advances every watch's state machine at each sampler tick.
func (m *Monitor) onSample(at sim.Time) {
	m.mu.Lock()
	m.now = at
	watches := append([]*watch(nil), m.watches...)
	m.mu.Unlock()

	var fired []HealthEvent
	for _, w := range watches {
		value, trip, quiet, ready := w.eval()
		if !ready {
			continue
		}
		if w.latched && w.firedOnce {
			continue
		}
		switch {
		case !w.firing && trip:
			w.tripRun++
			if w.tripRun >= w.confirm {
				w.firing = true
				w.firedOnce = true
				w.quietRun = 0
				w.windowLo = at - sim.Time(m.cfg.LongWindow)*m.sam.Interval()
				if w.windowLo < 0 {
					w.windowLo = 0
				}
				fired = append(fired, HealthEvent{
					Kind:    w.kind,
					At:      at,
					Name:    w.name,
					Value:   value,
					Detail:  fmt.Sprintf("%s tripped at %.3g", w.name, value),
					Explain: m.explainWindow(w.class, w.windowLo),
				})
			}
		case !w.firing:
			w.tripRun = 0
		case w.firing && quiet:
			w.quietRun++
			if w.quietRun >= m.cfg.ClearTicks && !w.latched {
				w.firing = false
				w.tripRun = 0
				if w.kind == EventSLOBurn {
					fired = append(fired, HealthEvent{
						Kind:   EventSLOClear,
						At:     at,
						Name:   w.name,
						Value:  value,
						Detail: fmt.Sprintf("%s cleared at %.3g", w.name, value),
					})
				}
			}
		default: // firing, not quiet: excursion continues
			w.quietRun = 0
		}
	}
	if len(fired) == 0 {
		return
	}
	m.mu.Lock()
	for i := range fired {
		fired[i].KindName = fired[i].Kind.String()
		m.push(fired[i])
	}
	m.mu.Unlock()
}
