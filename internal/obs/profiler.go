package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/sim"
)

// ResourceKind types a profiled resource.
type ResourceKind string

// Resource kinds, in stack order: flash chips and bus channels inside
// the device, the device's host link, the block layer's submission/
// completion cores and shared submission lock on the host.
const (
	ResChip    ResourceKind = "chip"
	ResChannel ResourceKind = "channel"
	ResLink    ResourceKind = "link"
	ResCPU     ResourceKind = "cpu"
	ResLock    ResourceKind = "lock"
)

// DeviceSide reports whether a kind lives below the host link boundary
// (chip, channel, link) — the "device-bound vs host-bound" split the
// bottleneck report names.
func (k ResourceKind) DeviceSide() bool {
	return k == ResChip || k == ResChannel || k == ResLink
}

// causeOf normalizes a server occupancy label into the cause taxonomy
// the profile reports: what kind of work held the resource. Labels a
// kind does not recognize land in "other", which a closed profile
// requires to be empty — a new label added anywhere in the stack must
// be claimed here before E24 passes again.
func causeOf(kind ResourceKind, label string) string {
	switch kind {
	case ResChip:
		switch label {
		case "read":
			return "read"
		case "prog":
			return "program"
		case "erase":
			return "erase"
		case "copyback", "gc-read", "gc-prog":
			return "gc-copy"
		case "map-read", "map-prog":
			return "map"
		}
	case ResChannel:
		switch label {
		case "xfer-out":
			return "read"
		case "xfer-in":
			return "program"
		case "erase-cmd":
			return "erase"
		case "gc-xfer-out", "gc-xfer-in":
			return "gc-copy"
		case "map-xfer":
			return "map"
		}
	case ResLink:
		switch label {
		case "cmd", "flush-cmd":
			return "command"
		case "read-xfer":
			return "read-transfer"
		case "write-xfer", "nameless-xfer", "atomic-xfer":
			return "write-transfer"
		}
	case ResCPU:
		switch {
		case label == "complete" || label == "complete-batch":
			return "complete"
		case strings.HasSuffix(label, "-submit") || strings.HasSuffix(label, "-submit-batch"):
			return "submit"
		}
	case ResLock:
		if label == "queue-lock" {
			return "hold"
		}
	}
	return "other"
}

// profResource is one attributed resource: a named group of sim.Servers
// (a chip is its LUN servers, a channel/CPU/lock/link is one server).
type profResource struct {
	kind    ResourceKind
	name    string
	servers []*sim.Server

	base   sim.Time            // Σ server Busy() at attach/rebase
	seen   sim.Time            // Σ server Busy() at the last tap (absolute)
	causes map[string]sim.Time // attributed busy per cause
	waitNs sim.Time            // queue wait behind the resource (overlay)
}

// Profiler attributes every unit of server busy time to a typed
// resource and a cause, by tapping each attached server's reservations
// (sim.Server.SetTap). Attribution is two-path by construction: the
// tap-fed cause ledger must close exactly against the busy counters the
// servers keep on their own — a missed wiring, a tap replaced by a
// double attach, or a mid-window StartTrace (which resets Busy) shows
// up as unattributed or double-counted time instead of silently wrong
// percentages. Profiling charges zero virtual time: taps only
// accumulate host-side counters.
//
// Attach and Rebase must run on the sim thread (they read server busy
// counters directly); Snapshot and the utilization reads are
// mutex-guarded and safe from any goroutine (HTTP exposition).
type Profiler struct {
	mu        sync.Mutex
	resources []*profResource
	waits     map[string]map[string]sim.Time
	since     sim.Time // window start (attach or last rebase)
	lastAt    sim.Time // most recent tap (window end; race-free now)
}

// NewProfiler returns an empty profiler.
func NewProfiler() *Profiler {
	return &Profiler{waits: map[string]map[string]sim.Time{}}
}

// Attach registers one resource backed by the given servers and taps
// them. Each server belongs to exactly one resource: attaching a server
// twice silently replaces its tap, which the closure check surfaces as
// drift on the first resource. Nil-safe.
func (p *Profiler) Attach(kind ResourceKind, name string, servers ...*sim.Server) {
	if p == nil || len(servers) == 0 {
		return
	}
	r := &profResource{kind: kind, name: name, servers: servers, causes: map[string]sim.Time{}}
	for _, s := range servers {
		r.base += s.Busy()
	}
	r.seen = r.base
	p.mu.Lock()
	p.resources = append(p.resources, r)
	p.mu.Unlock()
	for _, s := range servers {
		s.SetTap(func(label string, wait, busy, at sim.Time) {
			p.mu.Lock()
			r.causes[causeOf(kind, label)] += busy
			r.waitNs += wait
			// Re-read the group's busy counters (sim thread; the tap
			// fires inside Use) so Snapshot never touches a server.
			var tot sim.Time
			for _, srv := range r.servers {
				tot += srv.Busy()
			}
			r.seen = tot
			if at > p.lastAt {
				p.lastAt = at
			}
			p.mu.Unlock()
		})
	}
}

// WaitSink registers a named wait-overlay source (scheduler dispatch
// wait) and returns the sink its owner pushes per-class waits into.
// The sink is mutex-guarded; callers invoke it from the sim thread.
// Nil-safe: a nil profiler returns an inert sink.
func (p *Profiler) WaitSink(name string) func(class string, d sim.Time) {
	if p == nil {
		return func(string, sim.Time) {}
	}
	p.mu.Lock()
	if p.waits[name] == nil {
		p.waits[name] = map[string]sim.Time{}
	}
	m := p.waits[name]
	p.mu.Unlock()
	return func(class string, d sim.Time) {
		p.mu.Lock()
		m[class] += d
		p.mu.Unlock()
	}
}

// Rebase restarts the attribution window at now: cause ledgers and
// wait overlays clear, and each resource's busy baseline re-reads its
// servers. Call on the sim thread (after warmup/preload, next to the
// fabric's stat reset). Nil-safe.
func (p *Profiler) Rebase(now sim.Time) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.since, p.lastAt = now, now
	for _, r := range p.resources {
		r.base = 0
		for _, s := range r.servers {
			r.base += s.Busy()
		}
		r.seen = r.base
		r.causes = map[string]sim.Time{}
		r.waitNs = 0
	}
	for _, m := range p.waits {
		for k := range m {
			delete(m, k)
		}
	}
}

// ResourceProfile is one resource's attributed window.
type ResourceProfile struct {
	Kind ResourceKind `json:"kind"`
	Name string       `json:"name"`
	// BusyNs is the measured busy delta: the servers' own counters,
	// independent of the cause ledger.
	BusyNs int64 `json:"busy_ns"`
	// AttributedNs sums the cause ledger; a closed profile has
	// AttributedNs == BusyNs exactly.
	AttributedNs    int64 `json:"attributed_ns"`
	UnattributedNs  int64 `json:"unattributed_ns"`
	DoubleCountedNs int64 `json:"double_counted_ns"`
	// OtherNs is busy time whose label no cause claims — attributed,
	// but unexplained; zero in a fully named profile.
	OtherNs int64 `json:"other_ns,omitempty"`
	// WaitNs is the queue-wait overlay: how long reservations waited
	// behind earlier work on this resource (not part of the closure).
	WaitNs int64 `json:"wait_ns,omitempty"`
	// Utilization is attributed busy over window × server count
	// (a chip with 4 LUNs divides by 4× the window).
	Utilization float64          `json:"utilization"`
	Causes      map[string]int64 `json:"causes,omitempty"`
}

// Profile is one profiler snapshot: every resource's attribution over
// the window, the wait-overlay sources, and the folded-stack flame
// export.
type Profile struct {
	WindowNs  int64                       `json:"window_ns"`
	Resources []ResourceProfile           `json:"resources"`
	Waits     map[string]map[string]int64 `json:"waits,omitempty"`
	// Folded is the flame export: one "kind;name;cause value" line per
	// non-zero cause, renderable by standard flamegraph tooling.
	Folded string `json:"folded"`
}

// Snapshot exports the current attribution. Safe from any goroutine.
func (p *Profiler) Snapshot() Profile {
	if p == nil {
		return Profile{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	window := p.lastAt - p.since
	pr := Profile{WindowNs: int64(window)}
	for _, r := range p.resources {
		rp := ResourceProfile{
			Kind:   r.kind,
			Name:   r.name,
			BusyNs: int64(r.seen - r.base),
			WaitNs: int64(r.waitNs),
			Causes: make(map[string]int64, len(r.causes)),
		}
		for cause, ns := range r.causes {
			rp.Causes[cause] = int64(ns)
			rp.AttributedNs += int64(ns)
		}
		rp.OtherNs = rp.Causes["other"]
		if gap := rp.BusyNs - rp.AttributedNs; gap > 0 {
			rp.UnattributedNs = gap
		} else {
			rp.DoubleCountedNs = -gap
		}
		if window > 0 {
			rp.Utilization = float64(rp.AttributedNs) / (float64(window) * float64(len(r.servers)))
		}
		pr.Resources = append(pr.Resources, rp)
	}
	sort.Slice(pr.Resources, func(i, j int) bool {
		a, b := pr.Resources[i], pr.Resources[j]
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Name < b.Name
	})
	if len(p.waits) > 0 {
		pr.Waits = make(map[string]map[string]int64, len(p.waits))
		for name, m := range p.waits {
			out := make(map[string]int64, len(m))
			for class, ns := range m {
				out[class] = int64(ns)
			}
			pr.Waits[name] = out
		}
	}
	pr.Folded = pr.fold()
	return pr
}

// fold renders the folded-stack flame lines, sorted for determinism.
func (pr Profile) fold() string {
	var lines []string
	for _, r := range pr.Resources {
		for cause, ns := range r.Causes {
			if ns > 0 {
				lines = append(lines, fmt.Sprintf("%s;%s;%s %d", r.Kind, r.Name, cause, ns))
			}
		}
	}
	sort.Strings(lines)
	if len(lines) == 0 {
		return ""
	}
	return strings.Join(lines, "\n") + "\n"
}

// UnattributedNs sums busy time the cause ledger missed; DoubleCountedNs
// sums ledger time past the measured busy. A closed profile has both
// zero on every resource.
func (pr Profile) UnattributedNs() int64 {
	var n int64
	for _, r := range pr.Resources {
		n += r.UnattributedNs
	}
	return n
}

// DoubleCountedNs sums over-attributed time (see UnattributedNs).
func (pr Profile) DoubleCountedNs() int64 {
	var n int64
	for _, r := range pr.Resources {
		n += r.DoubleCountedNs
	}
	return n
}

// OtherNs sums busy time attributed only to the fallback "other" cause.
func (pr Profile) OtherNs() int64 {
	var n int64
	for _, r := range pr.Resources {
		n += r.OtherNs
	}
	return n
}

// TopResource is one entry of the saturation report: the most-utilized
// resource of a kind and the cause holding most of its time.
type TopResource struct {
	Resource    ResourceProfile `json:"resource"`
	TopCause    string          `json:"top_cause"`
	CauseNs     int64           `json:"cause_ns"`
	CauseShare  float64         `json:"cause_share"`
	DeviceBound bool            `json:"device_bound"`
}

// topCause names a resource's dominant cause (ties broken by name for
// determinism).
func topCause(r ResourceProfile) (string, int64) {
	var name string
	var max int64 = -1
	causes := make([]string, 0, len(r.Causes))
	for c := range r.Causes {
		causes = append(causes, c)
	}
	sort.Strings(causes)
	for _, c := range causes {
		if r.Causes[c] > max {
			name, max = c, r.Causes[c]
		}
	}
	if max < 0 {
		return "", 0
	}
	return name, max
}

// TopResources reports the saturated resource per kind, most-utilized
// kinds first — the "where does the machine's time go" answer. Kinds
// with no attributed time are omitted.
func (pr Profile) TopResources() []TopResource {
	best := map[ResourceKind]ResourceProfile{}
	for _, r := range pr.Resources {
		b, ok := best[r.Kind]
		if !ok || r.Utilization > b.Utilization ||
			(r.Utilization == b.Utilization && r.Name < b.Name) {
			best[r.Kind] = r
		}
	}
	var out []TopResource
	for _, r := range best {
		if r.AttributedNs == 0 {
			continue
		}
		cause, ns := topCause(r)
		t := TopResource{Resource: r, TopCause: cause, CauseNs: ns, DeviceBound: r.Kind.DeviceSide()}
		if r.AttributedNs > 0 {
			t.CauseShare = float64(ns) / float64(r.AttributedNs)
		}
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Resource.Utilization != b.Resource.Utilization {
			return a.Resource.Utilization > b.Resource.Utilization
		}
		return a.Resource.Name < b.Resource.Name
	})
	return out
}

// Top returns the single most-utilized resource, or false when nothing
// has attributed time yet.
func (pr Profile) Top() (TopResource, bool) {
	tops := pr.TopResources()
	if len(tops) == 0 {
		return TopResource{}, false
	}
	return tops[0], true
}

// MaxUtil reports the highest utilization among resources of the given
// kind — the sampler gauges behind the fabric.util.* series. Safe from
// any goroutine.
func (p *Profiler) MaxUtil(kind ResourceKind) float64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	window := p.lastAt - p.since
	if window <= 0 {
		return 0
	}
	var max float64
	for _, r := range p.resources {
		if r.kind != kind {
			continue
		}
		var attr sim.Time
		for _, ns := range r.causes {
			attr += ns
		}
		if u := float64(attr) / (float64(window) * float64(len(r.servers))); u > max {
			max = u
		}
	}
	return max
}

// UtilOf reports one named resource's utilization (the per-chip heatmap
// gauges). Safe from any goroutine; unknown names read 0.
func (p *Profiler) UtilOf(kind ResourceKind, name string) float64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	window := p.lastAt - p.since
	if window <= 0 {
		return 0
	}
	for _, r := range p.resources {
		if r.kind != kind || r.name != name {
			continue
		}
		var attr sim.Time
		for _, ns := range r.causes {
			attr += ns
		}
		return float64(attr) / (float64(window) * float64(len(r.servers)))
	}
	return 0
}
