package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// SeriesKind tells a reader how to interpret a series' points.
type SeriesKind string

// Series kinds: gauges sample an instantaneous value, counters sample a
// cumulative total (rates come from consecutive-point deltas), and hist
// series are derived per-interval statistics of a cumulative histogram.
const (
	KindGauge   SeriesKind = "gauge"
	KindCounter SeriesKind = "counter"
	KindHist    SeriesKind = "hist"
)

// SeriesPoint is one sample: virtual time and value.
type SeriesPoint struct {
	T sim.Time `json:"t"`
	V float64  `json:"v"`
}

// seriesRing is a fixed-capacity ring of points. Old points fall off
// the front once capacity wraps; the previous raw value survives the
// wrap so counter deltas stay exact.
type seriesRing struct {
	name string
	kind SeriesKind
	pts  []SeriesPoint
	head int // next write position
	full bool
}

func (r *seriesRing) push(p SeriesPoint) {
	if !r.full && len(r.pts) < cap(r.pts) {
		r.pts = append(r.pts, p)
		return
	}
	r.full = true
	r.pts[r.head] = p
	r.head = (r.head + 1) % len(r.pts)
}

// last returns up to n most-recent points, oldest first.
func (r *seriesRing) last(n int) []SeriesPoint {
	total := len(r.pts)
	if n > total {
		n = total
	}
	out := make([]SeriesPoint, 0, n)
	start := 0
	if r.full {
		start = r.head
	}
	for i := total - n; i < total; i++ {
		out = append(out, r.pts[(start+i)%total])
	}
	return out
}

// SeriesData is one exported series: its points in time order plus,
// for counters, the per-interval rates (units/second of virtual time)
// computed from consecutive deltas.
type SeriesData struct {
	Name   string        `json:"name"`
	Kind   SeriesKind    `json:"kind"`
	Points []SeriesPoint `json:"points"`
	Rates  []SeriesPoint `json:"rates,omitempty"`
}

// SeriesDump is the full sampler state as a JSON artifact: every ring,
// plus the sampling interval and tick count that scale the rates.
type SeriesDump struct {
	IntervalUs float64      `json:"interval_us"`
	Ticks      int64        `json:"ticks"`
	Series     []SeriesData `json:"series"`
}

// SampleConfig sizes a Sampler.
type SampleConfig struct {
	Enabled  bool
	Interval sim.Time // sampling period; default 1ms of virtual time
	Capacity int      // ring capacity per series; default 256 points
}

// Sampler turns the registry's end-of-run snapshots into continuous
// telemetry: driven by the sim clock, it periodically reads every
// attached probe and appends to fixed-capacity per-series rings.
// Sampling charges zero virtual time (probes are pure reads evaluated
// inside one event callback) and is deterministic — the tick schedule
// depends only on the interval, never on wall time.
//
// Probes come in three shapes: gauges (instantaneous values), counters
// (cumulative totals; Rates derives units/sec from consecutive
// deltas), and histograms (each tick diffs the cumulative histogram
// against the previous tick's clone and pushes interval count, mean,
// p50, p99, min, and stddev as sub-series).
//
// The ring state is mutex-guarded: the sim thread writes ticks while
// HTTP exposition handlers read dumps concurrently.
type Sampler struct {
	mu       sync.Mutex
	interval sim.Time
	capacity int

	gauges   []probe
	counters []probe
	hists    []histProbe

	rings map[string]*seriesRing
	order []string

	observers []func(at sim.Time)

	ticks   int64
	stopped bool
	started bool
}

type probe struct {
	name string
	fn   func() float64
}

type histProbe struct {
	name string
	fn   func() *metrics.Histogram
	prev *metrics.Histogram
}

// histSubSeries are the derived per-interval statistics every histogram
// probe expands into, in ring-attachment order.
var histSubSeries = []string{"count", "mean_us", "p50_us", "p99_us", "min_us", "stddev_us"}

// NewSampler returns a sampler with the given period and per-series
// ring capacity; zero values take the defaults (1ms, 256 points).
func NewSampler(interval sim.Time, capacity int) *Sampler {
	if interval <= 0 {
		interval = 1 * sim.Millisecond
	}
	if capacity <= 0 {
		capacity = 256
	}
	return &Sampler{
		interval: interval,
		capacity: capacity,
		rings:    make(map[string]*seriesRing),
	}
}

// Interval reports the sampling period.
func (s *Sampler) Interval() sim.Time {
	if s == nil {
		return 0
	}
	return s.interval
}

func (s *Sampler) ring(name string, kind SeriesKind) *seriesRing {
	r, ok := s.rings[name]
	if !ok {
		r = &seriesRing{name: name, kind: kind, pts: make([]SeriesPoint, 0, s.capacity)}
		s.rings[name] = r
		s.order = append(s.order, name)
	}
	return r
}

// AddGauge registers an instantaneous-value probe. Nil-safe.
func (s *Sampler) AddGauge(name string, fn func() float64) {
	if s == nil || fn == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gauges = append(s.gauges, probe{name, fn})
	s.ring(name, KindGauge)
}

// AddCounter registers a cumulative-total probe; rates are derived at
// export time from consecutive point deltas. Nil-safe.
func (s *Sampler) AddCounter(name string, fn func() float64) {
	if s == nil || fn == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.counters = append(s.counters, probe{name, fn})
	s.ring(name, KindCounter)
}

// AddHist registers a cumulative-histogram probe. Each tick the
// histogram is diffed against the previous tick's clone and the
// interval's count/mean/p50/p99/min/stddev land in sub-series named
// "<name>.<stat>". Nil-safe; the probe may return nil.
func (s *Sampler) AddHist(name string, fn func() *metrics.Histogram) {
	if s == nil || fn == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hists = append(s.hists, histProbe{name: name, fn: fn})
	for _, sub := range histSubSeries {
		s.ring(name+"."+sub, KindHist)
	}
}

// OnSample registers an observer called after every tick with the tick
// time, on the sim thread with the sampler unlocked — observers may
// call Last/Dump. The Monitor hangs off this hook. Nil-safe.
func (s *Sampler) OnSample(fn func(at sim.Time)) {
	if s == nil || fn == nil {
		return
	}
	s.mu.Lock()
	s.observers = append(s.observers, fn)
	s.mu.Unlock()
}

// Start schedules the first tick. Ticks self-reschedule every interval
// until Stop; forgetting Stop would keep the event loop alive forever,
// which is why Fabric.Stop owns the pairing. Nil-safe; Start is
// idempotent while running.
func (s *Sampler) Start(eng *sim.Engine) {
	if s == nil || eng == nil {
		return
	}
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.stopped = false
	s.mu.Unlock()
	eng.After(s.interval, func() { s.tick(eng) })
}

// Stop halts ticking after the current event; the rings keep their
// contents for export. Nil-safe.
func (s *Sampler) Stop() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.stopped = true
	s.started = false
	s.mu.Unlock()
}

// Ticks reports how many sampling ticks have fired.
func (s *Sampler) Ticks() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ticks
}

func (s *Sampler) tick(eng *sim.Engine) {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	now := eng.Now()
	for _, p := range s.gauges {
		s.rings[p.name].push(SeriesPoint{T: now, V: p.fn()})
	}
	for _, p := range s.counters {
		s.rings[p.name].push(SeriesPoint{T: now, V: p.fn()})
	}
	for i := range s.hists {
		hp := &s.hists[i]
		cur := hp.fn()
		delta := cur.DeltaFrom(hp.prev)
		hp.prev = cur.Clone()
		stats := make([]float64, len(histSubSeries))
		if delta.Count() > 0 {
			stats = []float64{
				float64(delta.Count()),
				delta.Mean() / 1e3,
				float64(delta.P50()) / 1e3,
				float64(delta.P99()) / 1e3,
				float64(delta.Min()) / 1e3,
				math.Sqrt(delta.Variance()) / 1e3,
			}
		}
		for j, sub := range histSubSeries {
			s.rings[hp.name+"."+sub].push(SeriesPoint{T: now, V: stats[j]})
		}
	}
	s.ticks++
	observers := s.observers
	s.mu.Unlock()
	for _, fn := range observers {
		fn(now)
	}
	eng.After(s.interval, func() { s.tick(eng) })
}

// Last returns up to n most-recent points of the named series, oldest
// first. Nil-safe; unknown series return nil.
func (s *Sampler) Last(name string, n int) []SeriesPoint {
	if s == nil || n <= 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.rings[name]
	if !ok {
		return nil
	}
	return r.last(n)
}

// Names lists every series in attachment order.
func (s *Sampler) Names() []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, len(s.order))
	copy(out, s.order)
	return out
}

// rates derives units-per-second-of-virtual-time points from
// consecutive counter samples.
func rates(pts []SeriesPoint) []SeriesPoint {
	if len(pts) < 2 {
		return nil
	}
	out := make([]SeriesPoint, 0, len(pts)-1)
	for i := 1; i < len(pts); i++ {
		dt := pts[i].T - pts[i-1].T
		if dt <= 0 {
			continue
		}
		dv := pts[i].V - pts[i-1].V
		out = append(out, SeriesPoint{T: pts[i].T, V: dv / (float64(dt) / 1e9)})
	}
	return out
}

// Dump exports every ring, oldest point first, with counter rates
// attached. Safe to call from any goroutine.
func (s *Sampler) Dump() SeriesDump {
	if s == nil {
		return SeriesDump{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	d := SeriesDump{IntervalUs: float64(s.interval) / 1e3, Ticks: s.ticks}
	for _, name := range s.order {
		r := s.rings[name]
		sd := SeriesData{Name: name, Kind: r.kind, Points: r.last(len(r.pts))}
		if r.kind == KindCounter {
			sd.Rates = rates(sd.Points)
		}
		d.Series = append(d.Series, sd)
	}
	return d
}

// JSON marshals the dump, indented for artifact files.
func (s *Sampler) JSON() ([]byte, error) {
	return json.MarshalIndent(s.Dump(), "", "  ")
}

// promName sanitizes a series name into a Prometheus metric name:
// dots and dashes become underscores, and everything gets the necro_
// namespace prefix.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("necro_")
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// PromText renders the latest value of every series in the Prometheus
// text exposition format (one # TYPE line and one sample per series,
// timestamped with virtual-time milliseconds). Histograms' derived
// sub-series export as gauges — they are per-interval statistics, not
// cumulative buckets.
func (s *Sampler) PromText() string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	names := append([]string(nil), s.order...)
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		r := s.rings[name]
		last := r.last(1)
		if len(last) == 0 {
			continue
		}
		pn := promName(name)
		typ := "gauge"
		if r.kind == KindCounter {
			typ = "counter"
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", pn, typ)
		fmt.Fprintf(&b, "%s %g %d\n", pn, last[0].V, int64(last[0].T)/1e6)
	}
	return b.String()
}
