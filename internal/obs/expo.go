package obs

import (
	"encoding/json"
	"net/http"
	"sync"
)

// Exposition serves live telemetry over HTTP: /metrics renders the
// sampler's latest values in the Prometheus text format, /snapshot the
// registry's merged JSON document, /series the full ring dump, /events
// the monitor's health timeline, and /profile the resource profiler's
// folded flame stacks (?format=json for the structured snapshot). The
// underlying sources are
// swappable mid-flight (Set), so one server can follow a sequence of
// experiment runs; handlers are safe against the sim thread because
// Sampler, Monitor, and Registry each guard their own state.
type Exposition struct {
	mu   sync.Mutex
	reg  *Registry
	sam  *Sampler
	mon  *Monitor
	prof *Profiler
}

// NewExposition returns an exposition with no sources; endpoints
// respond 503 until Set installs some.
func NewExposition() *Exposition { return &Exposition{} }

// Set swaps the live sources. Any of them may be nil. Nil-safe.
func (e *Exposition) Set(reg *Registry, sam *Sampler, mon *Monitor) {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.reg, e.sam, e.mon = reg, sam, mon
	e.mu.Unlock()
}

// SetProfiler swaps the live resource profiler (may be nil). Separate
// from Set so existing callers keep their signature. Nil-safe.
func (e *Exposition) SetProfiler(p *Profiler) {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.prof = p
	e.mu.Unlock()
}

func (e *Exposition) sources() (*Registry, *Sampler, *Monitor) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.reg, e.sam, e.mon
}

func (e *Exposition) profiler() *Profiler {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.prof
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func unavailable(w http.ResponseWriter) {
	http.Error(w, "no live run attached", http.StatusServiceUnavailable)
}

// The process-wide live exposition. Fabrics publish their telemetry
// here as they are built (serve.startTelemetry calls PublishLive), so
// a long-lived HTTP server — deathbench -serve — always shows the most
// recently started run without the experiments knowing it exists.
var (
	liveMu   sync.Mutex
	liveExpo *Exposition
)

// LiveExposition returns the process-wide exposition, creating it on
// first use. Until it is requested, PublishLive is a no-op, so runs
// that never serve HTTP keep no global references.
func LiveExposition() *Exposition {
	liveMu.Lock()
	defer liveMu.Unlock()
	if liveExpo == nil {
		liveExpo = NewExposition()
	}
	return liveExpo
}

// PublishLive points the process-wide exposition, if anyone asked for
// one, at the given sources. Any of them may be nil.
func PublishLive(reg *Registry, sam *Sampler, mon *Monitor) {
	liveMu.Lock()
	e := liveExpo
	liveMu.Unlock()
	e.Set(reg, sam, mon)
}

// PublishLiveProfiler points the process-wide exposition's /profile
// endpoint at the given profiler (may be nil). Nil-safe like
// PublishLive: a no-op until LiveExposition is requested.
func PublishLiveProfiler(p *Profiler) {
	liveMu.Lock()
	e := liveExpo
	liveMu.Unlock()
	e.SetProfiler(p)
}

// Handler returns the HTTP mux serving the five endpoints.
func (e *Exposition) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		_, sam, _ := e.sources()
		if sam == nil {
			unavailable(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_, _ = w.Write([]byte(sam.PromText()))
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, r *http.Request) {
		reg, _, _ := e.sources()
		if reg == nil {
			unavailable(w)
			return
		}
		writeJSON(w, reg.Export())
	})
	mux.HandleFunc("/series", func(w http.ResponseWriter, r *http.Request) {
		_, sam, _ := e.sources()
		if sam == nil {
			unavailable(w)
			return
		}
		writeJSON(w, sam.Dump())
	})
	mux.HandleFunc("/profile", func(w http.ResponseWriter, r *http.Request) {
		prof := e.profiler()
		if prof == nil {
			unavailable(w)
			return
		}
		snap := prof.Snapshot()
		if r.URL.Query().Get("format") == "json" {
			writeJSON(w, snap)
			return
		}
		// Default is the folded flame text: pipe straight into
		// flamegraph.pl / speedscope.
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte(snap.Folded))
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		_, _, mon := e.sources()
		if mon == nil {
			unavailable(w)
			return
		}
		writeJSON(w, map[string]any{
			"counts": mon.Counts(),
			"firing": mon.Firing(),
			"events": mon.Events(),
		})
	})
	return mux
}
