package obs

import (
	"testing"

	"repro/internal/sim"
)

// burnRig drives a monitored sampler through a per-tick error plan:
// each tick the total counter advances by 100 and the error counter by
// plan[i] (the plan's last value repeats when ticks outrun it).
type burnRig struct {
	s   *Sampler
	m   *Monitor
	run func(plan []float64, ticks int)
}

func newBurnRig(cfg MonitorConfig, budget float64) *burnRig {
	s := NewSampler(sim.Millisecond, 64)
	var errs, total float64
	s.AddCounter("errs", func() float64 { return errs })
	s.AddCounter("total", func() float64 { return total })
	m := NewMonitor(s, nil, cfg)
	m.WatchSLO("slo", "errs", "total", budget, "")
	rig := &burnRig{s: s, m: m}
	rig.run = func(plan []float64, ticks int) {
		runSampled(s, ticks, func(i int) {
			d := plan[len(plan)-1]
			if i < len(plan) {
				d = plan[i]
			}
			errs += d
			total += 100
		})
	}
	return rig
}

// TestBurnRateFiresAndExplainsOnce: sustained burn above threshold
// fires exactly one alert, which stays firing (no clear, no re-fire)
// while the burn continues.
func TestBurnRateFiresAndExplainsOnce(t *testing.T) {
	cfg := MonitorConfig{Enabled: true, LongWindow: 4, ShortWindow: 2, ClearTicks: 2}
	rig := newBurnRig(cfg, 0.05)
	// Budget 0.05, threshold 2: trip at error fraction >= 0.1.
	rig.run([]float64{0, 0, 0, 0, 0, 20, 20, 20, 20, 20, 20}, 11)
	if got := rig.m.Count(EventSLOBurn); got != 1 {
		t.Fatalf("burn events = %d, want exactly 1", got)
	}
	if got := rig.m.Count(EventSLOClear); got != 0 {
		t.Fatalf("clear events = %d, want 0 while burning", got)
	}
	firing := rig.m.Firing()
	if len(firing) != 1 || firing[0] != "slo_burn:slo" {
		t.Fatalf("firing = %v", firing)
	}
}

// TestBurnRateHysteresisNoFlap: an error rate hovering at the firing
// threshold — dipping just below, rising just back — must not flap.
// The alert fires once; it only clears after the rate falls below
// ClearFraction×threshold for ClearTicks consecutive samples, and a
// hover in between (below trip, above clear) keeps it firing silently.
func TestBurnRateHysteresisNoFlap(t *testing.T) {
	cfg := MonitorConfig{Enabled: true, LongWindow: 4, ShortWindow: 2, ClearTicks: 3}
	rig := newBurnRig(cfg, 0.05)
	plan := []float64{0, 0, 0, 0, 0} // warm the windows
	// Fire: fraction 0.2 = burn 4.
	plan = append(plan, 20, 20, 20)
	// Hover around the threshold (burn 2): alternate 11/9 per tick —
	// short-window burns oscillate ~1.8-2.2, never below the clear
	// fraction (1.0). A naive threshold alert would flap every tick.
	for i := 0; i < 12; i++ {
		if i%2 == 0 {
			plan = append(plan, 11)
		} else {
			plan = append(plan, 9)
		}
	}
	// Recover: zero errors long enough to clear...
	plan = append(plan, 0, 0, 0, 0, 0)
	// ...then burn hard again: a second, legitimate alert.
	plan = append(plan, 30, 30, 30)
	rig.run(plan, len(plan))

	if got := rig.m.Count(EventSLOBurn); got != 2 {
		t.Fatalf("burn events = %d, want 2 (fire, hover silently, clear, re-fire)", got)
	}
	if got := rig.m.Count(EventSLOClear); got != 1 {
		t.Fatalf("clear events = %d, want exactly 1", got)
	}
}

// TestDriftWatchLatchesAndRebases: the drift watch arms its baseline
// from the first samples, needs DriftConfirm consecutive ticks above
// threshold to fire, fires exactly once (latched — aging does not
// heal), and Rebase re-arms it from post-reset samples.
func TestDriftWatchLatchesAndRebases(t *testing.T) {
	s := NewSampler(sim.Millisecond, 64)
	var svc float64 = 100
	s.AddGauge("svc", func() float64 { return svc })
	cfg := MonitorConfig{Enabled: true, DriftBaseline: 3, DriftConfirm: 2, DriftThreshold: 1.5}
	m := NewMonitor(s, nil, cfg)
	m.WatchDrift("drift", "svc", "")

	eng := sim.NewEngine()
	s.Start(eng)
	eng.Go(func(p *sim.Proc) {
		p.Sleep(s.Interval() / 2)
		for i := 0; i < 20; i++ {
			switch {
			case i == 5:
				svc = 200 // 2× baseline: trips after DriftConfirm ticks
			case i == 10:
				svc = 100 // recovery must not un-latch or re-arm
			case i == 12:
				svc = 300
			}
			p.Sleep(s.Interval())
		}
	})
	eng.Schedule(21*s.Interval(), s.Stop)
	eng.Run()

	if got := m.Count(EventDrift); got != 1 {
		t.Fatalf("drift events = %d, want 1 (latched)", got)
	}
	ev := m.Events()[0]
	if ev.Kind != EventDrift || ev.Value < 1.9 || ev.Value > 2.1 {
		t.Fatalf("drift event = %+v, want ~2× baseline", ev)
	}
	// A new measurement epoch: baselines drop and re-arm at the current
	// (elevated) level, so the old excursion is no longer drift.
	m.Rebase()
	s2ticks := s.Ticks()
	eng2 := sim.NewEngine()
	s3 := s // same sampler keeps ticking on a fresh engine
	s3.Start(eng2)
	eng2.Go(func(p *sim.Proc) {
		p.Sleep(s3.Interval() / 2)
		for i := 0; i < 8; i++ {
			p.Sleep(s3.Interval())
		}
	})
	eng2.Schedule(9*s3.Interval(), s3.Stop)
	eng2.Run()
	if s.Ticks() <= s2ticks {
		t.Fatal("sampler did not resume after rebase")
	}
	if got := m.Count(EventDrift); got != 1 {
		t.Fatalf("drift re-fired after rebase at a steady level: %d events", got)
	}
}

// TestWatchThresholds: the rate-fraction, counter-rate, and gauge-floor
// watches fire on their documented conditions.
func TestWatchThresholds(t *testing.T) {
	s := NewSampler(sim.Millisecond, 64)
	var rejected, submitted, floorHits float64
	headroom := float64(-1)
	s.AddCounter("rej", func() float64 { return rejected })
	s.AddCounter("sub", func() float64 { return submitted })
	s.AddCounter("hits", func() float64 { return floorHits })
	s.AddGauge("headroom", func() float64 { return headroom })
	m := NewMonitor(s, nil, MonitorConfig{Enabled: true, ShortWindow: 2, ClearTicks: 2})
	m.WatchRateFraction(EventAdmissionCollapse, "adm", "rej", "sub", 0.5, "")
	m.WatchCounterRate(EventGCStorm, "storm", "hits", 2, "")
	m.WatchGaugeBelow(EventFloorProximity, "floor", "headroom", 4, "")

	runSampled(s, 13, func(i int) {
		submitted += 100
		switch {
		case i < 4: // healthy: 10% rejects, no floor pressure
			rejected += 10
		case i < 8: // collapse: 80% rejects, storming GC, headroom gone
			rejected += 80
			floorHits += 5
			headroom = 2
		default: // recovered
			rejected += 10
			headroom = 16
		}
	})

	for kind, name := range map[EventKind]string{
		EventAdmissionCollapse: "admission collapse",
		EventGCStorm:           "gc storm",
		EventFloorProximity:    "floor proximity",
	} {
		if got := m.Count(kind); got != 1 {
			t.Errorf("%s events = %d, want 1", name, got)
		}
	}
	// All three conditions ended: nothing may still be firing after the
	// recovery ticks.
	if firing := m.Firing(); len(firing) != 0 {
		t.Errorf("still firing after recovery: %v", firing)
	}
}

// TestMonitorEventRing: the ring keeps the newest Events-capacity
// events while Count survives eviction.
func TestMonitorEventRing(t *testing.T) {
	s := NewSampler(sim.Millisecond, 8)
	m := NewMonitor(s, nil, MonitorConfig{Enabled: true, Events: 4})
	for i := 0; i < 10; i++ {
		m.Emit(HealthEvent{Kind: EventLeaseGrant, At: sim.Time(i), Name: "dev0"})
	}
	evs := m.Events()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d, want 4", len(evs))
	}
	if evs[0].At != 6 || evs[3].At != 9 {
		t.Fatalf("ring kept %v..%v, want newest 6..9", evs[0].At, evs[3].At)
	}
	if got := m.Count(EventLeaseGrant); got != 10 {
		t.Fatalf("count = %d, want 10 despite eviction", got)
	}
	if evs[0].KindName != "lease_grant" {
		t.Fatalf("kind name = %q", evs[0].KindName)
	}
	// Nil monitor: every accessor inert.
	var nm *Monitor
	nm.Emit(HealthEvent{Kind: EventDrift})
	nm.Rebase()
	nm.WatchSLO("x", "a", "b", 0.1, "")
	nm.WatchDrift("x", "a", "")
	if nm.Events() != nil || nm.Count(EventDrift) != 0 || nm.Firing() != nil || nm.Snapshot() != nil {
		t.Fatal("nil monitor not inert")
	}
}
