// Package obs is the observability spine of the serving stack: a
// per-request trace span threaded from the frontend through admission,
// the multi-tenant scheduler, the OS block layer and the device, so
// every nanosecond of a request's life is attributed to a stage and
// any tail-latency number can be explained rather than guessed at.
//
// The paper's core complaint is that the block interface hides where
// time goes — a GC strike looks like random device slowness. Owning
// every layer lets us do the opposite: serve.Frontend opens a Span,
// serve.Shard stamps the admission-queue wait, sched stamps DRR queue
// wait (plus tokens-blocked and GC-deferral overlays), blockdev stamps
// dispatch→complete device service, and the FTL annotates GC
// interference (did the op land on a collecting chip? under an active
// defer lease? did a forced collection fire in its shadow?).
//
// Stages are exclusive: frontend routing, admission queue, scheduler
// queue and device service are measured directly; the serve stage
// (shard CPU + storage-engine work between I/Os) is the closing
// remainder, so per-span accounting always sums to the end-to-end
// latency. Tokens-blocked and GC-deferred time overlap the scheduler
// stage and are kept as overlays, outside the closure sum.
//
// A Tracer aggregates closed spans per class × stage into
// metrics.Histogram machinery and keeps a bounded flight recorder —
// the slowest-N complete spans per class — so a p99 can be unpacked
// into "71% sched queue, 22% device service on a collecting chip".
// All methods are nil-safe: with tracing off every hook is a nil check.
package obs

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// Stage identifies one exclusive segment of a request's life.
type Stage int

const (
	// StageFrontend is routing: span open to shard-queue arrival.
	StageFrontend Stage = iota
	// StageAdmission is the shard admission-queue wait: arrival to
	// worker dequeue.
	StageAdmission
	// StageSched is scheduler queue wait: DRR enqueue to dispatch,
	// summed over every I/O the request issued (includes any
	// queue-depth gating in the block layer).
	StageSched
	// StageDevice is device service: dispatch to completion, summed
	// over every I/O the request issued.
	StageDevice
	// StageServe is the closing remainder: shard CPU and
	// storage-engine work between I/Os, computed at span close as
	// end-to-end minus the measured stages.
	StageServe
	// NumStages bounds per-stage arrays.
	NumStages
)

var stageNames = [NumStages]string{"frontend", "admission", "sched", "device", "serve"}

// String names the stage.
func (s Stage) String() string {
	if s < 0 || s >= NumStages {
		return "unknown"
	}
	return stageNames[s]
}

// Span is one request's trace: stage durations, overlay waits and GC
// annotations, stamped in place by each layer as the request passes.
// Every method is safe on a nil receiver (tracing disabled) and safe
// to call from concurrent goroutines.
type Span struct {
	tr    *Tracer
	class string
	op    string

	start, end sim.Time
	stages     [NumStages]sim.Time

	// Overlays: waits that overlap StageSched rather than extending
	// the closure sum.
	tokensBlocked sim.Time
	gcDeferred    sim.Time

	// GC interference annotations.
	gcChip       int
	gcCollisions int
	gcLeaseHits  int
	gcForced     int64
	steered      int
	avoidedGC    int

	ios    int
	closed bool
}

// SpanRecord is an immutable copy of a closed span, kept by the flight
// recorder and exported in snapshots.
type SpanRecord struct {
	Class         string              `json:"class"`
	Op            string              `json:"op"`
	Start         sim.Time            `json:"start_ns"`
	Total         sim.Time            `json:"total_ns"`
	Stages        [NumStages]sim.Time `json:"stages_ns"`
	TokensBlocked sim.Time            `json:"tokens_blocked_ns"`
	GCDeferred    sim.Time            `json:"gc_deferred_ns"`
	GCChip        int                 `json:"gc_chip"`
	GCCollisions  int                 `json:"gc_collisions"`
	GCLeaseHits   int                 `json:"gc_lease_hits"`
	GCForced      int64               `json:"gc_forced"`
	Steered       int                 `json:"steered"`
	AvoidedGC     int                 `json:"avoided_gc"`
	IOs           int                 `json:"ios"`
}

// StagePct is the named stage's share of the record's total, in
// percent.
func (r SpanRecord) StagePct(s Stage) float64 {
	if r.Total <= 0 {
		return 0
	}
	return 100 * float64(r.Stages[s]) / float64(r.Total)
}

// Explain renders the record as a one-line attribution, e.g.
// "812.4us get: 71% sched, 22% device (chip 3 collecting), 5% admission".
func (r SpanRecord) Explain() string {
	type part struct {
		s   Stage
		pct float64
	}
	parts := make([]part, 0, NumStages)
	for s := Stage(0); s < NumStages; s++ {
		if pct := r.StagePct(s); pct >= 0.5 {
			parts = append(parts, part{s, pct})
		}
	}
	sort.Slice(parts, func(i, j int) bool { return parts[i].pct > parts[j].pct })
	out := fmt.Sprintf("%.1fus %s %s:", float64(r.Total)/1e3, r.Class, r.Op)
	for i, p := range parts {
		if i > 0 {
			out += ","
		}
		out += fmt.Sprintf(" %.0f%% %s", p.pct, p.s)
		if p.s == StageDevice && r.GCCollisions > 0 {
			out += fmt.Sprintf(" (chip %d collecting", r.GCChip)
			if r.GCLeaseHits > 0 {
				out += ", lease active"
			}
			if r.GCForced > 0 {
				out += ", forced GC"
			}
			out += ")"
		}
		if p.s == StageSched && r.TokensBlocked > 0 {
			out += fmt.Sprintf(" (%.1fus tokens-blocked)", float64(r.TokensBlocked)/1e3)
		}
	}
	return out
}

// Stamp adds d to the stage's accumulated duration. Negative stamps
// are dropped.
func (s *Span) Stamp(st Stage, d sim.Time) {
	if s == nil || d <= 0 || st < 0 || st >= NumStages {
		return
	}
	s.tr.mu.Lock()
	s.stages[st] += d
	s.tr.mu.Unlock()
}

// MarkArrived stamps the frontend stage: span open to shard-queue
// arrival. First arrival wins (quorum writes carry the span on one
// replica only).
func (s *Span) MarkArrived(at sim.Time) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	if s.stages[StageFrontend] == 0 && at > s.start {
		s.stages[StageFrontend] = at - s.start
	}
	s.tr.mu.Unlock()
}

// NoteIO counts one device I/O issued on the span's behalf.
func (s *Span) NoteIO() {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.ios++
	s.tr.mu.Unlock()
}

// NoteTokensBlocked adds overlay time the request's tenant spent
// blocked on rate-cap tokens while this request headed the queue.
func (s *Span) NoteTokensBlocked(d sim.Time) {
	if s == nil || d <= 0 {
		return
	}
	s.tr.mu.Lock()
	s.tokensBlocked += d
	s.tr.mu.Unlock()
}

// NoteGCDeferred adds overlay time the request spent parked by the
// GC-aware deferral policy.
func (s *Span) NoteGCDeferred(d sim.Time) {
	if s == nil || d <= 0 {
		return
	}
	s.tr.mu.Lock()
	s.gcDeferred += d
	s.tr.mu.Unlock()
}

// NoteGC annotates one I/O's GC context: the chip it touched, whether
// that chip was collecting, whether a host defer lease was active, and
// how many forced collections (defer-floor hits) fired in its shadow.
func (s *Span) NoteGC(chip int, collecting, lease bool, forced int64) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	if collecting {
		s.gcCollisions++
		s.gcChip = chip
	}
	if lease {
		s.gcLeaseHits++
	}
	if forced > 0 {
		s.gcForced += forced
	}
	s.tr.mu.Unlock()
}

// NoteSteered annotates a read routed by live device signals to a
// replica the round-robin cursor would not have picked; avoided
// marks the subset that dodged a collecting device.
func (s *Span) NoteSteered(avoided bool) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.steered++
	if avoided {
		s.avoidedGC++
	}
	s.tr.mu.Unlock()
}

// Close seals the span at time at: the serve stage becomes the
// remainder (end-to-end minus measured stages), and the span is folded
// into the tracer's aggregates and flight recorder. Spans closed with
// a non-nil error are counted but not aggregated (they are not latency
// samples). Closing twice is a no-op.
func (s *Span) Close(at sim.Time, err error) {
	if s == nil {
		return
	}
	tr := s.tr
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	s.end = at
	total := s.end - s.start
	if total < 0 {
		total = 0
	}
	var measured sim.Time
	for st := Stage(0); st < NumStages; st++ {
		if st != StageServe {
			measured += s.stages[st]
		}
	}
	if measured > total {
		// Stages over-count the request's life — double-stamped
		// somewhere. Surface it instead of hiding it in the remainder.
		tr.overruns++
		s.stages[StageServe] = 0
	} else {
		s.stages[StageServe] = total - measured
	}
	tr.closed++
	if err != nil {
		tr.errored++
		return
	}
	agg := tr.agg(s.class)
	agg.total.Record(int64(total))
	for st := Stage(0); st < NumStages; st++ {
		agg.stages[st].Record(int64(s.stages[st]))
	}
	agg.tokensBlocked.Record(int64(s.tokensBlocked))
	agg.gcDeferred.Record(int64(s.gcDeferred))
	agg.gcCollisions += int64(s.gcCollisions)
	agg.gcLeaseHits += int64(s.gcLeaseHits)
	agg.gcForced += s.gcForced
	agg.steered += int64(s.steered)
	agg.avoidedGC += int64(s.avoidedGC)
	agg.ios += int64(s.ios)
	agg.offer(s.record(total))
}

// record builds the immutable copy; caller holds tr.mu.
func (s *Span) record(total sim.Time) SpanRecord {
	return SpanRecord{
		Class:         s.class,
		Op:            s.op,
		Start:         s.start,
		Total:         total,
		Stages:        s.stages,
		TokensBlocked: s.tokensBlocked,
		GCDeferred:    s.gcDeferred,
		GCChip:        s.gcChip,
		GCCollisions:  s.gcCollisions,
		GCLeaseHits:   s.gcLeaseHits,
		GCForced:      s.gcForced,
		Steered:       s.steered,
		AvoidedGC:     s.avoidedGC,
		IOs:           s.ios,
	}
}

// classAgg is one class's per-stage aggregates plus its flight
// recorder ring (slowest-N closed spans, descending by total).
type classAgg struct {
	total         metrics.Histogram
	stages        [NumStages]metrics.Histogram
	tokensBlocked metrics.Histogram
	gcDeferred    metrics.Histogram

	gcCollisions int64
	gcLeaseHits  int64
	gcForced     int64
	steered      int64
	avoidedGC    int64
	ios          int64

	keep int
	ring []SpanRecord
}

// offer inserts rec into the ring if it ranks among the slowest keep
// spans, evicting the fastest resident.
func (a *classAgg) offer(rec SpanRecord) {
	if a.keep <= 0 {
		return
	}
	if len(a.ring) < a.keep {
		a.ring = append(a.ring, rec)
	} else if rec.Total > a.ring[len(a.ring)-1].Total {
		a.ring[len(a.ring)-1] = rec
	} else {
		return
	}
	sort.SliceStable(a.ring, func(i, j int) bool { return a.ring[i].Total > a.ring[j].Total })
}

// Tracer opens spans, aggregates closed ones per class × stage, and
// binds in-flight spans to the simulated worker process executing
// them so lower layers can find the active span without threading it
// through every call. A nil *Tracer is a valid disabled tracer.
type Tracer struct {
	mu   sync.Mutex
	keep int

	order   []string
	classes map[string]*classAgg
	procs   map[*sim.Proc]*Span

	opened   int64
	closed   int64
	errored  int64
	overruns int64
}

// NewTracer returns a tracer whose flight recorder keeps the slowest
// keep spans per class (0 means 8).
func NewTracer(keep int) *Tracer {
	if keep <= 0 {
		keep = 8
	}
	return &Tracer{
		keep:    keep,
		classes: make(map[string]*classAgg),
		procs:   make(map[*sim.Proc]*Span),
	}
}

// Enabled reports whether tracing is on (the tracer is non-nil).
func (tr *Tracer) Enabled() bool { return tr != nil }

// agg returns the class aggregate, creating it; caller holds tr.mu.
func (tr *Tracer) agg(class string) *classAgg {
	a, ok := tr.classes[class]
	if !ok {
		a = &classAgg{keep: tr.keep}
		tr.classes[class] = a
		tr.order = append(tr.order, class)
	}
	return a
}

// Open starts a span for one request at time at. Returns nil on a nil
// tracer, so callers thread the result unconditionally.
func (tr *Tracer) Open(class, op string, at sim.Time) *Span {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	tr.opened++
	tr.mu.Unlock()
	return &Span{tr: tr, class: class, op: op, start: at, gcChip: -1}
}

// Bind associates the span with the simulated process executing its
// request, for the duration of the shard's execute phase.
func (tr *Tracer) Bind(p *sim.Proc, s *Span) {
	if tr == nil || p == nil {
		return
	}
	tr.mu.Lock()
	tr.procs[p] = s
	tr.mu.Unlock()
}

// Unbind clears the process's span binding.
func (tr *Tracer) Unbind(p *sim.Proc) {
	if tr == nil || p == nil {
		return
	}
	tr.mu.Lock()
	delete(tr.procs, p)
	tr.mu.Unlock()
}

// At returns the span bound to the process, or nil.
func (tr *Tracer) At(p *sim.Proc) *Span {
	if tr == nil || p == nil {
		return nil
	}
	tr.mu.Lock()
	s := tr.procs[p]
	tr.mu.Unlock()
	return s
}

// Opened counts spans opened; Closed counts spans closed; Errored
// counts spans closed with an error; Overruns counts spans whose
// measured stages exceeded their end-to-end time (should be zero).
func (tr *Tracer) Opened() int64 {
	if tr == nil {
		return 0
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.opened
}

// Closed counts spans closed (with or without error).
func (tr *Tracer) Closed() int64 {
	if tr == nil {
		return 0
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.closed
}

// Errored counts spans closed with a non-nil error.
func (tr *Tracer) Errored() int64 {
	if tr == nil {
		return 0
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.errored
}

// Overruns counts closure violations (measured stages > end-to-end).
func (tr *Tracer) Overruns() int64 {
	if tr == nil {
		return 0
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.overruns
}

// Classes lists traced classes in first-seen order.
func (tr *Tracer) Classes() []string {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	out := make([]string, len(tr.order))
	copy(out, tr.order)
	return out
}

// TotalHist returns the class's end-to-end latency histogram (nil if
// the class has no closed spans).
func (tr *Tracer) TotalHist(class string) *metrics.Histogram {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	a, ok := tr.classes[class]
	if !ok {
		return nil
	}
	return &a.total
}

// StageHist returns the class's histogram for one stage (nil if the
// class has no closed spans).
func (tr *Tracer) StageHist(class string, st Stage) *metrics.Histogram {
	if tr == nil || st < 0 || st >= NumStages {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	a, ok := tr.classes[class]
	if !ok {
		return nil
	}
	return &a.stages[st]
}

// Slowest returns the class's flight-recorder contents, slowest first.
func (tr *Tracer) Slowest(class string) []SpanRecord {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	a, ok := tr.classes[class]
	if !ok {
		return nil
	}
	out := make([]SpanRecord, len(a.ring))
	copy(out, a.ring)
	return out
}

// AtQuantile returns the flight-recorder span whose total is nearest
// the class's q-quantile end-to-end latency — the concrete request
// that explains a p99 number.
func (tr *Tracer) AtQuantile(class string, q float64) (SpanRecord, bool) {
	if tr == nil {
		return SpanRecord{}, false
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	a, ok := tr.classes[class]
	if !ok || len(a.ring) == 0 {
		return SpanRecord{}, false
	}
	target := a.total.Quantile(q)
	best := a.ring[0]
	bestDiff := diff64(int64(best.Total), target)
	for _, rec := range a.ring[1:] {
		if d := diff64(int64(rec.Total), target); d < bestDiff {
			best, bestDiff = rec, d
		}
	}
	return best, true
}

func diff64(a, b int64) int64 {
	if a > b {
		return a - b
	}
	return b - a
}

// Explain renders the class's near-p99 flight-recorder span as a
// one-line stage attribution, or "" with no data.
func (tr *Tracer) Explain(class string) string {
	rec, ok := tr.AtQuantile(class, 0.99)
	if !ok {
		return ""
	}
	return "p99 " + rec.Explain()
}

// BreakdownTable renders the per-class × per-stage aggregate: sample
// count, mean/p50/p99 in microseconds and each stage's share of the
// mean end-to-end latency, followed by the overlay rows.
func (tr *Tracer) BreakdownTable(title string) *metrics.Table {
	tbl := metrics.NewTable(title, "class", "stage", "count", "mean us", "p50 us", "p99 us", "share %")
	if tr == nil {
		return tbl
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	for _, class := range tr.order {
		a := tr.classes[class]
		totalMean := a.total.Mean()
		for st := Stage(0); st < NumStages; st++ {
			h := &a.stages[st]
			share := 0.0
			if totalMean > 0 {
				share = 100 * h.Mean() / totalMean
			}
			tbl.AddRow(class, st.String(), h.Count(), h.Mean()/1e3,
				float64(h.P50())/1e3, float64(h.P99())/1e3, share)
		}
		tbl.AddRow(class, "total", a.total.Count(), totalMean/1e3,
			float64(a.total.P50())/1e3, float64(a.total.P99())/1e3, 100.0)
	}
	return tbl
}

// StageShare returns the stage's share (percent) of the class's mean
// end-to-end latency.
func (tr *Tracer) StageShare(class string, st Stage) float64 {
	if tr == nil || st < 0 || st >= NumStages {
		return 0
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	a, ok := tr.classes[class]
	if !ok {
		return 0
	}
	totalMean := a.total.Mean()
	if totalMean <= 0 {
		return 0
	}
	return 100 * a.stages[st].Mean() / totalMean
}

// Reset clears aggregates, rings and counters but keeps proc bindings
// (in-flight requests keep tracing into the fresh aggregates).
func (tr *Tracer) Reset() {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	tr.order = nil
	tr.classes = make(map[string]*classAgg)
	tr.opened, tr.closed, tr.errored, tr.overruns = 0, 0, 0, 0
}

// StageTrace is one stage's aggregate in a snapshot.
type StageTrace struct {
	Stage    string      `json:"stage"`
	Hist     HistSummary `json:"latency"`
	SharePct float64     `json:"share_pct"`
}

// ClassTrace is one class's aggregate in a snapshot.
type ClassTrace struct {
	Class         string       `json:"class"`
	Total         HistSummary  `json:"total"`
	Stages        []StageTrace `json:"stages"`
	TokensBlocked HistSummary  `json:"tokens_blocked"`
	GCDeferred    HistSummary  `json:"gc_deferred"`
	GCCollisions  int64        `json:"gc_collisions"`
	GCLeaseHits   int64        `json:"gc_lease_hits"`
	GCForced      int64        `json:"gc_forced"`
	Steered       int64        `json:"steered"`
	AvoidedGC     int64        `json:"avoided_gc"`
	IOs           int64        `json:"ios"`
	Slowest       []SpanRecord `json:"slowest"`
}

// TraceSnapshot is the tracer's full exportable state.
type TraceSnapshot struct {
	Opened   int64        `json:"opened"`
	Closed   int64        `json:"closed"`
	Errored  int64        `json:"errored"`
	Overruns int64        `json:"overruns"`
	Classes  []ClassTrace `json:"classes"`
}

// Snapshot exports the tracer's aggregates and flight recorder as a
// JSON-able document.
func (tr *Tracer) Snapshot() TraceSnapshot {
	var snap TraceSnapshot
	if tr == nil {
		return snap
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	snap.Opened, snap.Closed = tr.opened, tr.closed
	snap.Errored, snap.Overruns = tr.errored, tr.overruns
	for _, class := range tr.order {
		a := tr.classes[class]
		ct := ClassTrace{
			Class:         class,
			Total:         Summarize(&a.total),
			TokensBlocked: Summarize(&a.tokensBlocked),
			GCDeferred:    Summarize(&a.gcDeferred),
			GCCollisions:  a.gcCollisions,
			GCLeaseHits:   a.gcLeaseHits,
			GCForced:      a.gcForced,
			Steered:       a.steered,
			AvoidedGC:     a.avoidedGC,
			IOs:           a.ios,
		}
		totalMean := a.total.Mean()
		for st := Stage(0); st < NumStages; st++ {
			share := 0.0
			if totalMean > 0 {
				share = 100 * a.stages[st].Mean() / totalMean
			}
			ct.Stages = append(ct.Stages, StageTrace{
				Stage:    st.String(),
				Hist:     Summarize(&a.stages[st]),
				SharePct: share,
			})
		}
		ct.Slowest = append(ct.Slowest, a.ring...)
		snap.Classes = append(snap.Classes, ct)
	}
	return snap
}
