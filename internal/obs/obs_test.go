package obs

import (
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"

	"repro/internal/sim"
)

// TestSpanClosure: the serve stage closes the accounting — stages sum
// exactly to end-to-end, overlays stay outside the sum.
func TestSpanClosure(t *testing.T) {
	tr := NewTracer(4)
	sp := tr.Open("latency", "get", 100)
	sp.MarkArrived(110)          // frontend 10
	sp.Stamp(StageAdmission, 40) // admission 40
	sp.Stamp(StageSched, 200)    // sched 200
	sp.Stamp(StageDevice, 500)   // device 500
	sp.NoteTokensBlocked(150)    // overlay
	sp.NoteGCDeferred(60)        // overlay
	sp.NoteGC(3, true, true, 1)  // annotation
	sp.Close(1100, nil)          // total 1000 => serve = 250

	recs := tr.Slowest("latency")
	if len(recs) != 1 {
		t.Fatalf("flight recorder has %d records, want 1", len(recs))
	}
	rec := recs[0]
	if rec.Total != 1000 {
		t.Fatalf("total = %d, want 1000", rec.Total)
	}
	want := [NumStages]sim.Time{10, 40, 200, 500, 250}
	if rec.Stages != want {
		t.Fatalf("stages = %v, want %v", rec.Stages, want)
	}
	var sum sim.Time
	for _, d := range rec.Stages {
		sum += d
	}
	if sum != rec.Total {
		t.Fatalf("stage sum %d != total %d", sum, rec.Total)
	}
	if rec.TokensBlocked != 150 || rec.GCDeferred != 60 {
		t.Fatalf("overlays = %d/%d, want 150/60", rec.TokensBlocked, rec.GCDeferred)
	}
	if rec.GCChip != 3 || rec.GCCollisions != 1 || rec.GCLeaseHits != 1 || rec.GCForced != 1 {
		t.Fatalf("gc annotations = %+v", rec)
	}
	if tr.Overruns() != 0 {
		t.Fatalf("overruns = %d, want 0", tr.Overruns())
	}
	if !strings.Contains(tr.Explain("latency"), "device") {
		t.Fatalf("Explain missing device stage: %q", tr.Explain("latency"))
	}
}

// TestSpanOverrun: stamping more stage time than the span lived is
// surfaced as an overrun, not hidden in a negative remainder.
func TestSpanOverrun(t *testing.T) {
	tr := NewTracer(2)
	sp := tr.Open("latency", "get", 0)
	sp.Stamp(StageDevice, 2000)
	sp.Close(1000, nil)
	if tr.Overruns() != 1 {
		t.Fatalf("overruns = %d, want 1", tr.Overruns())
	}
	rec := tr.Slowest("latency")[0]
	if rec.Stages[StageServe] != 0 {
		t.Fatalf("serve remainder = %d, want 0 on overrun", rec.Stages[StageServe])
	}
}

// TestErroredSpansNotAggregated: error closes count but do not become
// latency samples.
func TestErroredSpansNotAggregated(t *testing.T) {
	tr := NewTracer(2)
	tr.Open("latency", "get", 0).Close(100, errors.New("rejected"))
	if tr.Opened() != 1 || tr.Closed() != 1 || tr.Errored() != 1 {
		t.Fatalf("counts = %d/%d/%d", tr.Opened(), tr.Closed(), tr.Errored())
	}
	if h := tr.TotalHist("latency"); h != nil && h.Count() != 0 {
		t.Fatalf("errored span recorded into aggregates")
	}
}

// TestNilSafety: every hook must be a no-op on a nil tracer/span —
// that is the tracing-off fast path.
func TestNilSafety(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	sp := tr.Open("latency", "get", 0)
	if sp != nil {
		t.Fatal("nil tracer opened a span")
	}
	sp.MarkArrived(1)
	sp.Stamp(StageSched, 1)
	sp.NoteIO()
	sp.NoteTokensBlocked(1)
	sp.NoteGCDeferred(1)
	sp.NoteGC(0, true, true, 1)
	sp.NoteSteered(true)
	sp.Close(1, nil)
	tr.Bind(nil, nil)
	tr.Unbind(nil)
	if tr.At(nil) != nil {
		t.Fatal("nil tracer bound a span")
	}
	tr.Reset()
	if tr.Opened() != 0 || len(tr.Classes()) != 0 || tr.Explain("x") != "" {
		t.Fatal("nil tracer not inert")
	}
}

// TestRingEviction: the flight recorder keeps the true slowest-N under
// out-of-order arrival and eviction pressure.
func TestRingEviction(t *testing.T) {
	tr := NewTracer(4)
	totals := []sim.Time{300, 900, 100, 700, 500, 1100, 200, 800}
	for _, total := range totals {
		sp := tr.Open("latency", "get", 0)
		sp.Close(total, nil)
	}
	recs := tr.Slowest("latency")
	if len(recs) != 4 {
		t.Fatalf("ring holds %d, want 4", len(recs))
	}
	want := []sim.Time{1100, 900, 800, 700}
	for i, rec := range recs {
		if rec.Total != want[i] {
			t.Fatalf("ring[%d].Total = %d, want %d (ring %v)", i, rec.Total, want[i], recs)
		}
	}
	rec, ok := tr.AtQuantile("latency", 0.99)
	if !ok || rec.Total != 1100 {
		t.Fatalf("AtQuantile(0.99) = %v/%v, want slowest span", rec.Total, ok)
	}
}

// TestConcurrentSpanLifecycle exercises open/stamp/close from separate
// worker and completion goroutines — the shape the serving stack uses
// — under the race detector.
func TestConcurrentSpanLifecycle(t *testing.T) {
	tr := NewTracer(8)
	const workers = 8
	const perWorker = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var inner sync.WaitGroup
			for i := 0; i < perWorker; i++ {
				sp := tr.Open("latency", "get", sim.Time(i))
				sp.MarkArrived(sim.Time(i + 1))
				sp.Stamp(StageAdmission, 5)
				// Completion-side stamps race the worker-side ones.
				inner.Add(1)
				go func(sp *Span, i int) {
					defer inner.Done()
					sp.Stamp(StageDevice, 20)
					sp.NoteGC(1, i%3 == 0, false, 0)
					sp.NoteIO()
					sp.Close(sim.Time(i+1000), nil)
				}(sp, i)
			}
			inner.Wait()
		}(w)
	}
	wg.Wait()
	if tr.Opened() != workers*perWorker || tr.Closed() != workers*perWorker {
		t.Fatalf("opened/closed = %d/%d, want %d", tr.Opened(), tr.Closed(), workers*perWorker)
	}
	if h := tr.TotalHist("latency"); h.Count() != workers*perWorker {
		t.Fatalf("aggregated %d spans, want %d", h.Count(), workers*perWorker)
	}
}

// TestConcurrentBindings: proc bindings are safe across goroutines.
func TestConcurrentBindings(t *testing.T) {
	tr := NewTracer(2)
	eng := sim.NewEngine()
	procs := make([]*sim.Proc, 4)
	done := make(chan struct{})
	for i := range procs {
		i := i
		eng.Go(func(p *sim.Proc) {
			procs[i] = p
			if i == len(procs)-1 {
				close(done)
			}
			p.Sleep(1)
		})
	}
	eng.Run()
	<-done
	var wg sync.WaitGroup
	for _, p := range procs {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				sp := tr.Open("latency", "get", 0)
				tr.Bind(p, sp)
				if got := tr.At(p); got == nil {
					t.Error("bound span lost")
					return
				}
				tr.Unbind(p)
				sp.Close(1, nil)
			}
		}()
	}
	wg.Wait()
	for _, p := range procs {
		if tr.At(p) != nil {
			t.Fatal("binding leaked after unbind")
		}
	}
}

// TestRegistry: attached sources export as one JSON document; Attach
// replaces by name.
func TestRegistry(t *testing.T) {
	reg := NewRegistry()
	reg.Attach("alpha", func() any { return map[string]int{"x": 1} })
	reg.Attach("beta", func() any { return "old" })
	reg.Attach("beta", func() any { return "new" })
	doc := reg.Export()
	if len(doc) != 2 || doc["beta"] != "new" {
		t.Fatalf("export = %v", doc)
	}
	raw, err := reg.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	var back map[string]any
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if back["beta"] != "new" {
		t.Fatalf("round-trip = %v", back)
	}
	var nilReg *Registry
	nilReg.Attach("x", func() any { return 1 })
	if nilReg.Export() != nil || nilReg.Sources() != nil {
		t.Fatal("nil registry not inert")
	}
}

// TestSnapshotShares: snapshot stage shares sum to ~100% of the mean.
func TestSnapshotShares(t *testing.T) {
	tr := NewTracer(4)
	for i := 1; i <= 50; i++ {
		sp := tr.Open("latency", "get", 0)
		sp.Stamp(StageSched, sim.Time(30*i))
		sp.Stamp(StageDevice, sim.Time(60*i))
		sp.Close(sim.Time(100*i), nil)
	}
	snap := tr.Snapshot()
	if len(snap.Classes) != 1 {
		t.Fatalf("classes = %d", len(snap.Classes))
	}
	var share float64
	for _, st := range snap.Classes[0].Stages {
		share += st.SharePct
	}
	if share < 95 || share > 105 {
		t.Fatalf("stage shares sum to %.1f%%, want ~100%%", share)
	}
	if len(snap.Classes[0].Slowest) != 4 {
		t.Fatalf("snapshot ring = %d, want 4", len(snap.Classes[0].Slowest))
	}
}
