package obs

import (
	"io"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/sim"
)

// TestProfilerClosureAndCauses: the tap-fed cause ledger closes exactly
// against the servers' own busy counters, labels map to the cause
// taxonomy, and utilization normalizes by group capacity (a chip's LUN
// servers share one resource).
func TestProfilerClosureAndCauses(t *testing.T) {
	eng := sim.NewEngine()
	lun0 := sim.NewServer(eng, "lun0")
	lun1 := sim.NewServer(eng, "lun1")
	ch := sim.NewServer(eng, "ch")

	p := NewProfiler()
	p.Attach(ResChip, "chip0", lun0, lun1)
	p.Attach(ResChannel, "ch0", ch)

	lun0.Use(100, "read", nil)
	lun0.Use(200, "prog", nil)
	lun1.Use(50, "erase", nil)
	lun1.Use(25, "copyback", nil)
	ch.Use(40, "xfer-out", nil)
	ch.Use(60, "gc-xfer-in", nil)
	eng.Schedule(1000, func() { ch.Use(0, "xfer-out", nil) }) // pin window end
	eng.Run()

	snap := p.Snapshot()
	if snap.UnattributedNs() != 0 || snap.DoubleCountedNs() != 0 || snap.OtherNs() != 0 {
		t.Fatalf("profile did not close: %+v", snap.Resources)
	}
	if snap.WindowNs != 1000 {
		t.Fatalf("window = %d, want 1000", snap.WindowNs)
	}
	byName := map[string]ResourceProfile{}
	for _, r := range snap.Resources {
		byName[r.Name] = r
	}
	chip := byName["chip0"]
	if chip.Causes["read"] != 100 || chip.Causes["program"] != 200 ||
		chip.Causes["erase"] != 50 || chip.Causes["gc-copy"] != 25 {
		t.Fatalf("chip causes = %v", chip.Causes)
	}
	// 375 ns attributed over a 1000 ns window shared by 2 LUN servers.
	if got, want := chip.Utilization, 375.0/2000.0; got != want {
		t.Fatalf("chip utilization = %v, want %v", got, want)
	}
	chp := byName["ch0"]
	if chp.Causes["read"] != 40 || chp.Causes["gc-copy"] != 60 {
		t.Fatalf("channel causes = %v", chp.Causes)
	}
}

// TestCauseTaxonomy: every live occupancy label in the stack has a
// named cause; anything unknown lands in "other".
func TestCauseTaxonomy(t *testing.T) {
	cases := []struct {
		kind  ResourceKind
		label string
		want  string
	}{
		{ResChip, "read", "read"},
		{ResChip, "prog", "program"},
		{ResChip, "erase", "erase"},
		{ResChip, "copyback", "gc-copy"},
		{ResChip, "gc-read", "gc-copy"},
		{ResChip, "gc-prog", "gc-copy"},
		{ResChip, "map-read", "map"},
		{ResChip, "map-prog", "map"},
		{ResChannel, "xfer-out", "read"},
		{ResChannel, "xfer-in", "program"},
		{ResChannel, "erase-cmd", "erase"},
		{ResChannel, "gc-xfer-out", "gc-copy"},
		{ResChannel, "gc-xfer-in", "gc-copy"},
		{ResChannel, "map-xfer", "map"},
		{ResLink, "cmd", "command"},
		{ResLink, "flush-cmd", "command"},
		{ResLink, "read-xfer", "read-transfer"},
		{ResLink, "write-xfer", "write-transfer"},
		{ResLink, "nameless-xfer", "write-transfer"},
		{ResLink, "atomic-xfer", "write-transfer"},
		{ResCPU, "complete", "complete"},
		{ResCPU, "complete-batch", "complete"},
		{ResCPU, "read-submit", "submit"},
		{ResCPU, "write-submit-batch", "submit"},
		{ResLock, "queue-lock", "hold"},
		{ResChip, "mystery", "other"},
		{ResLock, "read", "other"},
	}
	for _, c := range cases {
		if got := causeOf(c.kind, c.label); got != c.want {
			t.Errorf("causeOf(%s, %q) = %q, want %q", c.kind, c.label, got, c.want)
		}
	}
}

// TestProfilerOtherBucket: an unrecognized label is still attributed
// (the profile closes) but flagged as unexplained, so E24's other==0
// gate catches new labels nobody claimed.
func TestProfilerOtherBucket(t *testing.T) {
	eng := sim.NewEngine()
	s := sim.NewServer(eng, "s")
	p := NewProfiler()
	p.Attach(ResChip, "chip0", s)
	s.Use(70, "mystery-op", nil)
	eng.Run()
	snap := p.Snapshot()
	if snap.UnattributedNs() != 0 || snap.DoubleCountedNs() != 0 {
		t.Fatalf("unknown label broke closure: %+v", snap.Resources)
	}
	if snap.OtherNs() != 70 {
		t.Fatalf("other = %d, want 70", snap.OtherNs())
	}
}

// TestProfilerDoubleAttachDrift: attaching a server to a second
// resource replaces its tap, and the first resource's closure check
// surfaces the theft as unattributed busy time instead of silently
// wrong percentages.
func TestProfilerDoubleAttachDrift(t *testing.T) {
	eng := sim.NewEngine()
	s1 := sim.NewServer(eng, "s1")
	s2 := sim.NewServer(eng, "s2")
	p := NewProfiler()
	p.Attach(ResChip, "groupA", s1, s2)
	p.Attach(ResChip, "groupB", s2) // steals s2's tap

	s2.Use(100, "read", nil) // attributed to groupB, busy counted by A
	s1.Use(10, "read", nil)  // fires A's tap, re-reading s1+s2 busy
	eng.Run()

	snap := p.Snapshot()
	var drift int64
	for _, r := range snap.Resources {
		if r.Name == "groupA" {
			drift = r.UnattributedNs
		}
	}
	if drift != 100 {
		t.Fatalf("double attach drift = %d ns unattributed on groupA, want 100", drift)
	}
}

// TestProfilerFoldedFormat: the flame export is sorted
// "kind;name;cause value" lines, one per non-zero cause.
func TestProfilerFoldedFormat(t *testing.T) {
	eng := sim.NewEngine()
	lun := sim.NewServer(eng, "lun")
	ch := sim.NewServer(eng, "ch")
	p := NewProfiler()
	p.Attach(ResChip, "chip0", lun)
	p.Attach(ResChannel, "ch0", ch)
	lun.Use(100, "read", nil)
	lun.Use(30, "erase", nil)
	ch.Use(40, "xfer-in", nil)
	eng.Run()

	folded := p.Snapshot().Folded
	if !strings.HasSuffix(folded, "\n") {
		t.Fatalf("folded output not newline-terminated: %q", folded)
	}
	lines := strings.Split(strings.TrimSuffix(folded, "\n"), "\n")
	want := []string{"channel;ch0;program 40", "chip;chip0;erase 30", "chip;chip0;read 100"}
	if len(lines) != len(want) {
		t.Fatalf("folded lines = %v, want %v", lines, want)
	}
	for i, l := range lines {
		if l != want[i] {
			t.Fatalf("folded line %d = %q, want %q", i, l, want[i])
		}
		stack, val, ok := strings.Cut(l, " ")
		if !ok || len(strings.Split(stack, ";")) != 3 {
			t.Fatalf("line %q does not parse as stack + value", l)
		}
		if _, err := strconv.ParseInt(val, 10, 64); err != nil {
			t.Fatalf("line %q value: %v", l, err)
		}
	}
}

// TestTopResourcesAndWaits: the report names the most-utilized resource
// per kind (device-bound flagged), and wait-overlay sinks land in the
// snapshot without affecting closure.
func TestTopResourcesAndWaits(t *testing.T) {
	eng := sim.NewEngine()
	hot := sim.NewServer(eng, "hot")
	cold := sim.NewServer(eng, "cold")
	cpu := sim.NewServer(eng, "cpu")
	p := NewProfiler()
	p.Attach(ResChip, "chip-hot", hot)
	p.Attach(ResChip, "chip-cold", cold)
	p.Attach(ResCPU, "cpu0", cpu)
	sink := p.WaitSink("dev0.sched")

	hot.Use(600, "prog", nil)
	cold.Use(100, "read", nil)
	cpu.Use(200, "write-submit", nil)
	sink("latency", 77)
	// Pin the window end at 1000 ns (waits don't advance it, taps do).
	eng.Schedule(1000, func() { cold.Use(0, "read", nil) })
	eng.Run()

	snap := p.Snapshot()
	tops := snap.TopResources()
	if len(tops) != 2 {
		t.Fatalf("top resources = %d kinds, want 2", len(tops))
	}
	if tops[0].Resource.Name != "chip-hot" || !tops[0].DeviceBound ||
		tops[0].TopCause != "program" || tops[0].CauseShare != 1 {
		t.Fatalf("top[0] = %+v", tops[0])
	}
	if tops[1].Resource.Name != "cpu0" || tops[1].DeviceBound {
		t.Fatalf("top[1] = %+v", tops[1])
	}
	top, ok := snap.Top()
	if !ok || top.Resource.Name != "chip-hot" {
		t.Fatalf("Top() = %+v, %v", top, ok)
	}
	if snap.Waits["dev0.sched"]["latency"] != 77 {
		t.Fatalf("waits = %v", snap.Waits)
	}
	if u := p.MaxUtil(ResChip); u != 0.6 {
		t.Fatalf("MaxUtil(chip) = %v, want 0.6", u)
	}
	if u := p.UtilOf(ResChip, "chip-cold"); u != 0.1 {
		t.Fatalf("UtilOf(chip-cold) = %v, want 0.1", u)
	}
}

// TestProfilerRebase: restarting the window clears ledgers and re-reads
// busy baselines, so pre-rebase work never leaks into the next window
// and closure still holds.
func TestProfilerRebase(t *testing.T) {
	eng := sim.NewEngine()
	s := sim.NewServer(eng, "s")
	p := NewProfiler()
	p.Attach(ResChip, "chip0", s)
	s.Use(500, "read", nil)
	eng.Run()

	p.Rebase(eng.Now())
	if snap := p.Snapshot(); len(snap.Resources) != 1 || snap.Resources[0].AttributedNs != 0 {
		t.Fatalf("rebase did not clear: %+v", snap.Resources)
	}
	s.Use(40, "prog", nil)
	eng.Run()
	snap := p.Snapshot()
	r := snap.Resources[0]
	if r.BusyNs != 40 || r.AttributedNs != 40 || r.Causes["program"] != 40 {
		t.Fatalf("post-rebase window = %+v", r)
	}
	if snap.UnattributedNs() != 0 || snap.DoubleCountedNs() != 0 {
		t.Fatalf("post-rebase closure broke: %+v", r)
	}
}

// TestProfilerNilSafety: a nil profiler is inert everywhere it is
// consulted (plain runs wire no profiler).
func TestProfilerNilSafety(t *testing.T) {
	var p *Profiler
	p.Attach(ResChip, "chip0", sim.NewServer(sim.NewEngine(), "s"))
	p.Rebase(0)
	p.WaitSink("x")("latency", 1)
	if snap := p.Snapshot(); snap.Resources != nil || snap.Folded != "" {
		t.Fatal("nil profiler produced a snapshot")
	}
	if p.MaxUtil(ResChip) != 0 || p.UtilOf(ResChip, "chip0") != 0 {
		t.Fatal("nil profiler reported utilization")
	}
}

// TestProfilerSnapshotRacesTaps: readers snapshot and read gauges from
// other goroutines while the sim thread drives taps — the shape a live
// HTTP exposition creates against a profiled run. Run under -race.
func TestProfilerSnapshotRacesTaps(t *testing.T) {
	eng := sim.NewEngine()
	luns := []*sim.Server{sim.NewServer(eng, "l0"), sim.NewServer(eng, "l1")}
	ch := sim.NewServer(eng, "ch")
	p := NewProfiler()
	p.Attach(ResChip, "chip0", luns...)
	p.Attach(ResChannel, "ch0", ch)
	sink := p.WaitSink("dev0.sched")

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					snap := p.Snapshot()
					_ = snap.Folded
					_ = snap.TopResources()
					_ = p.MaxUtil(ResChip)
					_ = p.UtilOf(ResChannel, "ch0")
				}
			}
		}()
	}
	eng.Go(func(proc *sim.Proc) {
		for i := 0; i < 2000; i++ {
			luns[i%2].Use(3, "read", nil)
			ch.Use(2, "xfer-out", nil)
			sink("latency", 1)
			proc.Sleep(5)
		}
	})
	eng.Run()
	close(stop)
	wg.Wait()

	snap := p.Snapshot()
	if snap.UnattributedNs() != 0 || snap.DoubleCountedNs() != 0 || snap.OtherNs() != 0 {
		t.Fatalf("closure broke under concurrent readers: %+v", snap.Resources)
	}
}

// TestExpositionProfileConcurrent: /profile serves folded text and JSON
// from concurrent requests while the sim thread keeps attributing, and
// 503s when no profiler is live. Run under -race.
func TestExpositionProfileConcurrent(t *testing.T) {
	e := NewExposition()
	srv := httptest.NewServer(e.Handler())
	defer srv.Close()

	if resp, err := srv.Client().Get(srv.URL + "/profile"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != 503 {
			t.Fatalf("no-profiler status = %d, want 503", resp.StatusCode)
		}
	}

	eng := sim.NewEngine()
	s := sim.NewServer(eng, "s")
	p := NewProfiler()
	p.Attach(ResChip, "chip0", s)
	e.SetProfiler(p)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			url := srv.URL + "/profile"
			if i%2 == 1 {
				url += "?format=json"
			}
			for {
				select {
				case <-stop:
					return
				default:
					resp, err := srv.Client().Get(url)
					if err != nil {
						t.Error(err)
						return
					}
					_, _ = io.ReadAll(resp.Body)
					resp.Body.Close()
				}
			}
		}()
	}
	eng.Go(func(proc *sim.Proc) {
		for i := 0; i < 1000; i++ {
			s.Use(2, "read", nil)
			proc.Sleep(3)
		}
	})
	eng.Run()
	close(stop)
	wg.Wait()

	resp, err := srv.Client().Get(srv.URL + "/profile")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if want := "chip;chip0;read 2000\n"; string(body) != want {
		t.Fatalf("folded body = %q, want %q", body, want)
	}
}
