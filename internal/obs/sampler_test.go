package obs

import (
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// runSampled drives a sampler for n ticks of virtual time: the mutate
// hook runs between consecutive ticks (at the half-interval offset), so
// every tick observes the state the previous mutation left.
func runSampled(s *Sampler, n int, mutate func(tick int)) {
	eng := sim.NewEngine()
	s.Start(eng)
	if mutate != nil {
		eng.Go(func(p *sim.Proc) {
			p.Sleep(s.Interval() / 2)
			for i := 0; i < n; i++ {
				mutate(i)
				p.Sleep(s.Interval())
			}
		})
	}
	eng.Schedule(sim.Time(n)*s.Interval()+s.Interval()/2, s.Stop)
	eng.Run()
}

// TestSamplerCounterDeltasAcrossWrap: counter rates stay exact after
// the ring wraps — the pre-wrap raw value is gone, but consecutive
// surviving points still difference correctly.
func TestSamplerCounterDeltasAcrossWrap(t *testing.T) {
	s := NewSampler(sim.Millisecond, 4)
	var total float64
	s.AddCounter("c", func() float64 { return total })

	const ticks = 10
	runSampled(s, ticks, func(i int) { total += float64((i + 1) * 100) })

	if s.Ticks() != ticks {
		t.Fatalf("ticks = %d, want %d", s.Ticks(), ticks)
	}
	pts := s.Last("c", 10)
	if len(pts) != 4 {
		t.Fatalf("ring holds %d points, want capacity 4", len(pts))
	}
	// Ticks 7..10 survive: cumulative sums 100+...+700, ..., +1000.
	want := []float64{2800, 3600, 4500, 5500}
	for i, p := range pts {
		if p.V != want[i] {
			t.Fatalf("point %d = %v, want %v (ring %v)", i, p.V, want[i], pts)
		}
	}
	d := s.Dump()
	if d.Ticks != ticks {
		t.Fatalf("dump ticks = %d", d.Ticks)
	}
	var sd *SeriesData
	for i := range d.Series {
		if d.Series[i].Name == "c" {
			sd = &d.Series[i]
		}
	}
	if sd == nil || sd.Kind != KindCounter {
		t.Fatalf("series c missing or wrong kind: %+v", sd)
	}
	// Rates are per second of virtual time: delta 800 over 1ms = 800k/s.
	if len(sd.Rates) != 3 {
		t.Fatalf("rates = %d points, want 3", len(sd.Rates))
	}
	for i, wantD := range []float64{800, 900, 1000} {
		if got := sd.Rates[i].V; math.Abs(got-wantD*1000) > 1e-6 {
			t.Fatalf("rate %d = %v, want %v", i, got, wantD*1000)
		}
	}
}

// TestSamplerHistDeltas: histogram probes export per-interval
// statistics diffed from the cumulative histogram, including across a
// tick that records nothing.
func TestSamplerHistDeltas(t *testing.T) {
	s := NewSampler(sim.Millisecond, 8)
	h := &metrics.Histogram{}
	s.AddHist("lat", func() *metrics.Histogram { return h })

	runSampled(s, 3, func(i int) {
		switch i {
		case 0:
			h.Record(1000)
			h.Record(3000)
		case 1: // idle interval: all stats must read zero, not repeat
		case 2:
			h.Record(2000)
		}
	})

	count := s.Last("lat.count", 3)
	if len(count) != 3 {
		t.Fatalf("count points = %d, want 3", len(count))
	}
	for i, want := range []float64{2, 0, 1} {
		if count[i].V != want {
			t.Fatalf("interval %d count = %v, want %v", i, count[i].V, want)
		}
	}
	mean := s.Last("lat.mean_us", 3)
	if mean[0].V != 2 || mean[1].V != 0 || mean[2].V != 2 {
		t.Fatalf("mean_us = %v, want [2 0 2]", mean)
	}
	// The last interval's min must be the interval's own value, not the
	// cumulative minimum from the first interval.
	min := s.Last("lat.min_us", 1)
	if min[0].V < 1.5 {
		t.Fatalf("interval min_us = %v, want the interval's own ~2", min[0].V)
	}
}

// TestSamplerStopHaltsTicks: a stopped sampler must not reschedule —
// otherwise eng.Run() never drains.
func TestSamplerStopHaltsTicks(t *testing.T) {
	s := NewSampler(sim.Millisecond, 8)
	s.AddGauge("g", func() float64 { return 1 })
	runSampled(s, 5, nil) // runSampled returning at all proves the stop
	if got := s.Ticks(); got != 5 {
		t.Fatalf("ticks = %d, want 5", got)
	}
}

// TestSamplerPromText: the exposition renders every series with a TYPE
// line, sanitized names, and the necro namespace.
func TestSamplerPromText(t *testing.T) {
	s := NewSampler(sim.Millisecond, 8)
	var n float64
	s.AddCounter("fabric.served", func() float64 { return n })
	s.AddGauge("dev0.cal-ratio", func() float64 { return 2.5 })
	runSampled(s, 2, func(int) { n += 10 })

	text := s.PromText()
	for _, want := range []string{
		"# TYPE necro_fabric_served counter",
		"necro_fabric_served 20",
		"# TYPE necro_dev0_cal_ratio gauge",
		"necro_dev0_cal_ratio 2.5",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("PromText missing %q:\n%s", want, text)
		}
	}
}

// TestSamplerNilSafety: a nil sampler is inert everywhere the fabric
// threads one.
func TestSamplerNilSafety(t *testing.T) {
	var s *Sampler
	s.AddGauge("g", func() float64 { return 1 })
	s.AddCounter("c", func() float64 { return 1 })
	s.AddHist("h", func() *metrics.Histogram { return nil })
	s.OnSample(func(sim.Time) {})
	s.Start(sim.NewEngine())
	s.Stop()
	if s.Ticks() != 0 || s.Last("g", 1) != nil || s.Names() != nil {
		t.Fatal("nil sampler not inert")
	}
	if d := s.Dump(); d.Series != nil {
		t.Fatal("nil sampler dumped series")
	}
	if s.PromText() != "" {
		t.Fatal("nil sampler rendered text")
	}
}

// TestRegistryAttachRacesExport: sources attach while exports run — the
// shape a live HTTP exposition creates against a starting fabric. Run
// under -race.
func TestRegistryAttachRacesExport(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				reg.Export()
				reg.Sources()
			}
		}
	}()
	names := []string{"a", "b", "c", "d"}
	for i := 0; i < 200; i++ {
		i := i
		reg.Attach(names[i%len(names)], func() any { return i })
	}
	close(stop)
	wg.Wait()
	if got := len(reg.Sources()); got != len(names) {
		t.Fatalf("sources = %d, want %d", got, len(names))
	}
}

// TestTracerEvictionRacesClose: spans close (forcing flight-recorder
// ring evictions) while readers walk the rings. Run under -race.
func TestTracerEvictionRacesClose(t *testing.T) {
	tr := NewTracer(4)
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
				tr.Slowest("latency")
				tr.Explain("latency")
				tr.Snapshot()
			}
		}
	}()
	const writers = 4
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				sp := tr.Open("latency", "get", sim.Time(i))
				sp.Stamp(StageDevice, sim.Time(i%7))
				sp.Close(sim.Time(100+(w*i)%1000), nil)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-readerDone
	if got := len(tr.Slowest("latency")); got != 4 {
		t.Fatalf("ring holds %d, want 4", got)
	}
}
