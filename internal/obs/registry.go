package obs

import (
	"encoding/json"
	"math"
	"sync"

	"repro/internal/metrics"
)

// HistSummary is a histogram reduced to its exportable quantiles, in
// microseconds. StddevUs carries the spread so a series of interval
// summaries can tell a tail blowup (p99 and stddev explode, p50 and
// min hold) from a uniform slowdown (everything shifts together).
type HistSummary struct {
	Count    int64   `json:"count"`
	MeanUs   float64 `json:"mean_us"`
	StddevUs float64 `json:"stddev_us"`
	MinUs    float64 `json:"min_us"`
	P50Us    float64 `json:"p50_us"`
	P95Us    float64 `json:"p95_us"`
	P99Us    float64 `json:"p99_us"`
	MaxUs    float64 `json:"max_us"`
}

// Summarize reduces a histogram to its exportable quantiles.
func Summarize(h *metrics.Histogram) HistSummary {
	if h == nil || h.Count() == 0 {
		return HistSummary{}
	}
	return HistSummary{
		Count:    h.Count(),
		MeanUs:   h.Mean() / 1e3,
		StddevUs: math.Sqrt(h.Variance()) / 1e3,
		MinUs:    float64(h.Min()) / 1e3,
		P50Us:    float64(h.P50()) / 1e3,
		P95Us:    float64(h.P95()) / 1e3,
		P99Us:    float64(h.P99()) / 1e3,
		MaxUs:    float64(h.Max()) / 1e3,
	}
}

// SummarizeTenants reduces a per-tenant latency ledger to exportable
// quantiles, keyed by tenant name.
func SummarizeTenants(t *metrics.TenantLatencies) map[string]HistSummary {
	if t == nil {
		return nil
	}
	out := make(map[string]HistSummary, len(t.Tenants()))
	for _, name := range t.Tenants() {
		out[name] = Summarize(t.Hist(name))
	}
	return out
}

// Registry merges the stack's scattered ledgers — shard admission
// counters, per-shard latencies, GC coordination counters, calibration
// state, placement steering, trace aggregates — into one exportable
// JSON document. Layers attach named sources (closures over their live
// state); Export evaluates every source at snapshot time, so one call
// sees a consistent picture of a finished (or paused) run.
type Registry struct {
	mu      sync.Mutex
	order   []string
	sources map[string]func() any
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{sources: make(map[string]func() any)}
}

// Attach registers (or replaces) a named snapshot source. The closure
// is evaluated at Export time and must return a JSON-marshalable
// value. Nil-safe.
func (r *Registry) Attach(name string, fn func() any) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	if _, ok := r.sources[name]; !ok {
		r.order = append(r.order, name)
	}
	r.sources[name] = fn
	r.mu.Unlock()
}

// Sources lists attached source names in first-attached order.
func (r *Registry) Sources() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.order))
	copy(out, r.order)
	return out
}

// Export evaluates every source and returns the merged document.
func (r *Registry) Export() map[string]any {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, len(r.order))
	copy(names, r.order)
	fns := make([]func() any, len(names))
	for i, name := range names {
		fns[i] = r.sources[name]
	}
	r.mu.Unlock()
	out := make(map[string]any, len(names))
	for i, name := range names {
		out[name] = fns[i]()
	}
	return out
}

// JSON marshals the merged document, indented for artifact files.
func (r *Registry) JSON() ([]byte, error) {
	return json.MarshalIndent(r.Export(), "", "  ")
}
