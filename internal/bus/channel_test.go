package bus

import (
	"testing"

	"repro/internal/sim"
)

func newTestChannel(t *testing.T, cfg Config) (*sim.Engine, *Channel) {
	t.Helper()
	eng := sim.NewEngine()
	ch, err := NewChannel(eng, "ch0", cfg)
	if err != nil {
		t.Fatalf("NewChannel: %v", err)
	}
	return eng, ch
}

func TestTransferTime(t *testing.T) {
	_, ch := newTestChannel(t, Config{MBPerSec: 200, CmdOverhead: 0})
	// 4096 bytes at 200 MB/s = 20.48 µs.
	got := ch.TransferTime(4096)
	want := sim.Time(4096 * int64(sim.Second) / 200_000_000)
	if got != want {
		t.Fatalf("TransferTime(4096) = %v, want %v", got, want)
	}
	if ch.TransferTime(0) != 0 || ch.TransferTime(-1) != 0 {
		t.Fatal("non-positive sizes should transfer in zero time")
	}
}

func TestTransfersSerialize(t *testing.T) {
	eng, ch := newTestChannel(t, Config{MBPerSec: 100, CmdOverhead: 0})
	// 1000 bytes at 100MB/s = 10µs each.
	var ends []sim.Time
	eng.Schedule(0, func() {
		ch.Transfer(1000, "a", func(_, end sim.Time) { ends = append(ends, end) })
		ch.Transfer(1000, "b", func(_, end sim.Time) { ends = append(ends, end) })
	})
	eng.Run()
	if len(ends) != 2 || ends[0] != 10*sim.Microsecond || ends[1] != 20*sim.Microsecond {
		t.Fatalf("ends = %v, want [10µs 20µs]", ends)
	}
}

func TestCmdOverheadCharged(t *testing.T) {
	eng, ch := newTestChannel(t, Config{MBPerSec: 100, CmdOverhead: 5 * sim.Microsecond})
	var end sim.Time
	eng.Schedule(0, func() {
		ch.Transfer(1000, "x", func(_, e sim.Time) { end = e })
	})
	eng.Run()
	if end != 15*sim.Microsecond {
		t.Fatalf("end = %v, want 15µs (5 cmd + 10 data)", end)
	}
}

func TestCommandOnly(t *testing.T) {
	eng, ch := newTestChannel(t, Config{MBPerSec: 100, CmdOverhead: 2 * sim.Microsecond})
	var end sim.Time
	eng.Schedule(0, func() {
		ch.Command("erase", func(_, e sim.Time) { end = e })
	})
	eng.Run()
	if end != 2*sim.Microsecond {
		t.Fatalf("command end = %v, want 2µs", end)
	}
}

func TestTransferFromChainsAfterReady(t *testing.T) {
	eng, ch := newTestChannel(t, Config{MBPerSec: 100, CmdOverhead: 0})
	var start sim.Time
	eng.Schedule(0, func() {
		// Data ready at 50µs (e.g. chip tR); channel idle before that.
		ch.TransferFrom(50*sim.Microsecond, 1000, "out", func(s, _ sim.Time) { start = s })
	})
	eng.Run()
	if start != 50*sim.Microsecond {
		t.Fatalf("transfer started at %v, want 50µs", start)
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	eng := sim.NewEngine()
	if _, err := NewChannel(eng, "x", Config{MBPerSec: 0}); err == nil {
		t.Error("zero bandwidth accepted")
	}
	if _, err := NewChannel(eng, "x", Config{MBPerSec: 100, CmdOverhead: -1}); err == nil {
		t.Error("negative overhead accepted")
	}
}

func TestServerExposed(t *testing.T) {
	_, ch := newTestChannel(t, ONFI2)
	if ch.Server() == nil || ch.Server().Name() != "ch0" {
		t.Fatal("Server() not exposed correctly")
	}
}

func TestPresets(t *testing.T) {
	if ONFI2.MBPerSec != 200 || ONFI1.MBPerSec != 40 {
		t.Fatal("preset bandwidths changed unexpectedly")
	}
}
