// Package bus models the shared channels that connect an SSD controller
// to its flash chips. A channel serializes command and data transfers for
// every chip attached to it, while chip array operations proceed in
// parallel — the split that makes reads tend channel-bound and writes
// tend chip-bound (the paper's Figure 1).
package bus

import (
	"fmt"

	"repro/internal/sim"
)

// Channel is one shared flash interface bus.
type Channel struct {
	srv         *sim.Server
	bytesPerSec int64
	cmdOverhead sim.Time
}

// Config parameterizes a channel.
type Config struct {
	// MBPerSec is the raw transfer bandwidth in megabytes (1e6)/second.
	// ONFI 1.x ~40, ONFI 2.x ~200, ONFI 3.x ~400.
	MBPerSec int
	// CmdOverhead is the fixed command+address occupancy per operation.
	CmdOverhead sim.Time
}

// ONFI2 is the default channel configuration for 2012-era devices.
var ONFI2 = Config{MBPerSec: 200, CmdOverhead: 1 * sim.Microsecond}

// ONFI1 is a slow legacy channel (pre-2009 consumer devices).
var ONFI1 = Config{MBPerSec: 40, CmdOverhead: 2 * sim.Microsecond}

// NewChannel returns a channel on eng with the given configuration.
func NewChannel(eng *sim.Engine, name string, cfg Config) (*Channel, error) {
	if cfg.MBPerSec <= 0 {
		return nil, fmt.Errorf("bus: bandwidth %d MB/s must be positive", cfg.MBPerSec)
	}
	if cfg.CmdOverhead < 0 {
		return nil, fmt.Errorf("bus: negative command overhead %v", cfg.CmdOverhead)
	}
	return &Channel{
		srv:         sim.NewServer(eng, name),
		bytesPerSec: int64(cfg.MBPerSec) * 1_000_000,
		cmdOverhead: cfg.CmdOverhead,
	}, nil
}

// Server exposes the underlying timing server for tracing and
// utilization measurements.
func (c *Channel) Server() *sim.Server { return c.srv }

// TransferTime reports how long moving n bytes occupies the channel
// (excluding command overhead).
func (c *Channel) TransferTime(n int) sim.Time {
	if n <= 0 {
		return 0
	}
	return sim.Time(int64(n) * int64(sim.Second) / c.bytesPerSec)
}

// Transfer reserves the channel for a command plus an n-byte transfer
// starting as soon as the channel frees. done (optional) runs at the end
// of the occupancy.
func (c *Channel) Transfer(n int, label string, done func(start, end sim.Time)) sim.Time {
	return c.srv.Use(c.cmdOverhead+c.TransferTime(n), label, done)
}

// TransferFrom is Transfer but starting no earlier than ready — used to
// chain the data-out transfer after a chip read completes.
func (c *Channel) TransferFrom(ready sim.Time, n int, label string, done func(start, end sim.Time)) sim.Time {
	return c.srv.UseFrom(ready, c.cmdOverhead+c.TransferTime(n), label, done)
}

// Command reserves the channel for a command-only cycle (erase issue,
// status poll).
func (c *Channel) Command(label string, done func(start, end sim.Time)) sim.Time {
	return c.srv.Use(c.cmdOverhead, label, done)
}
