package sim

import (
	"testing"
	"testing/quick"
)

func TestServerFIFO(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, "chip")
	var ends []Time
	e.Schedule(0, func() {
		s.Use(10, "a", func(_, end Time) { ends = append(ends, end) })
		s.Use(10, "b", func(_, end Time) { ends = append(ends, end) })
		s.Use(10, "c", func(_, end Time) { ends = append(ends, end) })
	})
	e.Run()
	want := []Time{10, 20, 30}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("ends = %v, want %v (FIFO serialization)", ends, want)
		}
	}
}

func TestServerIdleGap(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, "chip")
	var start2 Time
	e.Schedule(0, func() { s.Use(10, "a", nil) })
	e.Schedule(100, func() {
		s.Use(5, "b", func(start, _ Time) { start2 = start })
	})
	e.Run()
	if start2 != 100 {
		t.Fatalf("second op started at %v, want 100 (no time travel)", start2)
	}
}

func TestServerUseFromRespectsReadyTime(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, "chan")
	var start Time
	e.Schedule(0, func() {
		// Server free, but op not ready until 50.
		s.UseFrom(50, 10, "x", func(st, _ Time) { start = st })
	})
	e.Run()
	if start != 50 {
		t.Fatalf("op started at %v, want 50", start)
	}
}

func TestServerUseFromQueuesBehindBusy(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, "chan")
	var start Time
	e.Schedule(0, func() {
		s.Use(100, "busy", nil)
		s.UseFrom(50, 10, "x", func(st, _ Time) { start = st })
	})
	e.Run()
	if start != 100 {
		t.Fatalf("op started at %v, want 100 (behind busy reservation)", start)
	}
}

func TestServerBusyAndUtilization(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, "chip")
	e.Schedule(0, func() {
		s.Use(30, "a", nil)
		s.Use(20, "b", nil)
	})
	e.Schedule(100, func() {}) // extend the clock
	e.Run()
	if s.Busy() != 50 {
		t.Fatalf("Busy = %v, want 50", s.Busy())
	}
	if got := s.Utilization(); got != 0.5 {
		t.Fatalf("Utilization = %v, want 0.5", got)
	}
	if s.Uses() != 2 {
		t.Fatalf("Uses = %d, want 2", s.Uses())
	}
}

func TestServerTrace(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, "chip")
	s.StartTrace()
	e.Schedule(0, func() {
		s.Use(10, "read", nil)
		s.Use(20, "write", nil)
	})
	e.Run()
	tr := s.Trace()
	if len(tr) != 2 {
		t.Fatalf("trace has %d intervals, want 2", len(tr))
	}
	if tr[0].Label != "read" || tr[0].Start != 0 || tr[0].End != 10 {
		t.Fatalf("trace[0] = %+v", tr[0])
	}
	if tr[1].Label != "write" || tr[1].Start != 10 || tr[1].End != 30 {
		t.Fatalf("trace[1] = %+v", tr[1])
	}
}

func TestServerQueueDelay(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, "chip")
	e.Schedule(0, func() {
		s.Use(100, "long", nil)
		if d := s.QueueDelay(); d != 100 {
			t.Errorf("QueueDelay = %v, want 100", d)
		}
	})
	e.Schedule(200, func() {
		if d := s.QueueDelay(); d != 0 {
			t.Errorf("QueueDelay after idle = %v, want 0", d)
		}
	})
	e.Run()
}

func TestServerNegativeDurationPanics(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, "chip")
	defer func() {
		if recover() == nil {
			t.Error("negative duration did not panic")
		}
	}()
	s.Use(-1, "bad", nil)
}

// Property: N back-to-back uses of duration d complete at exactly N*d, and
// intervals never overlap.
func TestPropertyServerSerialization(t *testing.T) {
	f := func(durs []uint8) bool {
		e := NewEngine()
		s := NewServer(e, "x")
		s.StartTrace()
		var sum Time
		e.Schedule(0, func() {
			for _, d := range durs {
				s.Use(Time(d), "", nil)
				sum += Time(d)
			}
		})
		e.Run()
		tr := s.Trace()
		var prevEnd Time
		for _, iv := range tr {
			if iv.Start < prevEnd {
				return false // overlap
			}
			prevEnd = iv.End
		}
		return s.FreeAt() == sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
