package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds matched %d/100 draws", same)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn(17) = %d out of range", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	r := NewRNG(1)
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(9)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean of Float64 = %v, want ~0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		r := NewRNG(seed)
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestExpMean(t *testing.T) {
	r := NewRNG(11)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Exp(100)
	}
	mean := sum / n
	if math.Abs(mean-100) > 2 {
		t.Fatalf("mean of Exp(100) = %v, want ~100", mean)
	}
}

func TestZipfRangeAndSkew(t *testing.T) {
	r := NewRNG(5)
	z := NewZipf(r, 1000, 0.9)
	counts := make([]int, 1000)
	const n = 200000
	for i := 0; i < n; i++ {
		v := z.Next()
		if v < 0 || v >= 1000 {
			t.Fatalf("Zipf out of range: %d", v)
		}
		counts[v]++
	}
	// Item 0 must be by far the hottest, and the head should dominate.
	if counts[0] < counts[500]*10 {
		t.Fatalf("skew too weak: counts[0]=%d counts[500]=%d", counts[0], counts[500])
	}
	head := 0
	for i := 0; i < 100; i++ {
		head += counts[i]
	}
	if float64(head)/n < 0.4 {
		t.Fatalf("head mass = %v, want >= 0.4 for theta=0.9", float64(head)/n)
	}
}

func TestZipfPanics(t *testing.T) {
	r := NewRNG(1)
	for _, c := range []struct {
		n     int64
		theta float64
	}{{0, 0.5}, {10, 0}, {10, 1}, {10, 1.5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewZipf(%d, %v) did not panic", c.n, c.theta)
				}
			}()
			NewZipf(r, c.n, c.theta)
		}()
	}
}

func TestBoolProbability(t *testing.T) {
	r := NewRNG(13)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-0.25) > 0.01 {
		t.Fatalf("Bool(0.25) hit rate = %v", got)
	}
}

func TestShuffle(t *testing.T) {
	r := NewRNG(21)
	vals := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	seen := make([]bool, len(vals))
	for _, v := range vals {
		seen[v] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("value %d missing after shuffle", i)
		}
	}
}
