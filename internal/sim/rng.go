package sim

import "math"

// RNG is a small, fast, deterministic random number generator
// (splitmix64). Every experiment owns its own seeded RNG so results are
// reproducible and independent of map iteration or scheduling order.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with n <= 0")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Exp returns an exponentially distributed value with the given mean
// (for inter-arrival times in open-loop workloads).
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Zipf generates values in [0, n) following a Zipf-like distribution
// with skew theta in (0, 1); higher theta is more skewed. It uses the
// standard CDF-inversion approximation of Gray et al. so item 0 is the
// hottest.
type Zipf struct {
	rng   *RNG
	n     int64
	theta float64
	zetan float64
	alpha float64
	eta   float64
	zeta2 float64
}

// NewZipf returns a Zipf generator over [0, n) with skew theta.
// theta must be in (0, 1); n must be positive.
func NewZipf(rng *RNG, n int64, theta float64) *Zipf {
	if n <= 0 {
		panic("sim: Zipf with n <= 0")
	}
	if theta <= 0 || theta >= 1 {
		panic("sim: Zipf theta must be in (0,1)")
	}
	z := &Zipf{rng: rng, n: n, theta: theta}
	z.zetan = zeta(n, theta)
	z.zeta2 = zeta(2, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	return z
}

func zeta(n int64, theta float64) float64 {
	sum := 0.0
	for i := int64(1); i <= n; i++ {
		sum += 1.0 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next returns the next sample in [0, n).
func (z *Zipf) Next() int64 {
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+math.Pow(0.5, z.theta) {
		return 1
	}
	v := int64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if v < 0 {
		v = 0
	}
	if v >= z.n {
		v = z.n - 1
	}
	return v
}
