// Package sim provides a deterministic discrete-event simulation kernel:
// a virtual clock, an event queue, FIFO resource servers, a cooperative
// process (coroutine) abstraction for writing synchronous-style simulated
// clients, and a seedable random number generator.
//
// All device models in this repository (NAND chips, channels, PCM, the
// block layer) are expressed as event handlers and servers on one Engine,
// so every experiment is exactly reproducible: the same seed and
// parameters always yield the same virtual-time trace.
package sim

import "fmt"

// Time is a virtual timestamp or duration in nanoseconds.
//
// It is deliberately distinct from time.Duration so that simulated time
// cannot be accidentally mixed with wall-clock time.
type Time int64

// Convenient duration units, mirroring package time.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// MaxTime is the largest representable virtual time.
const MaxTime Time = 1<<63 - 1

// Micros reports t as a floating-point number of microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis reports t as a floating-point number of milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time with an adaptive unit, e.g. "25µs" or "3.5ms".
func (t Time) String() string {
	neg := ""
	if t < 0 {
		neg, t = "-", -t
	}
	switch {
	case t < Microsecond:
		return fmt.Sprintf("%s%dns", neg, int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%s%gµs", neg, float64(t)/float64(Microsecond))
	case t < Second:
		return fmt.Sprintf("%s%gms", neg, float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%s%gs", neg, float64(t)/float64(Second))
	}
}
