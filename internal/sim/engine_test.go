package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
}

func TestScheduleRunsInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(30, func() { order = append(order, 3) })
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v, want [1 2 3]", order)
	}
	if e.Now() != 30 {
		t.Fatalf("Now() = %v, want 30", e.Now())
	}
}

func TestEqualTimesFireInScheduleOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d, want %d (ties must fire FIFO)", i, v, i)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	e := NewEngine()
	var fired Time = -1
	e.Schedule(100, func() {
		e.After(50, func() { fired = e.Now() })
	})
	e.Run()
	if fired != 150 {
		t.Fatalf("fired at %v, want 150", fired)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.Schedule(50, func() {})
	})
	e.Run()
}

func TestNegativeAfterPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("After(-1) did not panic")
		}
	}()
	e.After(-1, func() {})
}

func TestRunUntilStopsAtBoundary(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		e.Schedule(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(25)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 10 and 20 only", fired)
	}
	if e.Now() != 25 {
		t.Fatalf("Now() = %v, want 25", e.Now())
	}
	e.RunUntil(100)
	if len(fired) != 4 {
		t.Fatalf("fired %v, want all 4 events", fired)
	}
}

func TestRunUntilInclusive(t *testing.T) {
	e := NewEngine()
	ran := false
	e.Schedule(25, func() { ran = true })
	e.RunUntil(25)
	if !ran {
		t.Fatal("event at the RunUntil boundary did not run")
	}
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

func TestPending(t *testing.T) {
	e := NewEngine()
	e.Schedule(1, func() {})
	e.Schedule(2, func() {})
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", e.Pending())
	}
	e.Step()
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", e.Pending())
	}
}

// Property: for any set of scheduled delays, events fire in sorted order
// and the clock never goes backwards.
func TestPropertyEventOrdering(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		e := NewEngine()
		var fired []Time
		for _, d := range delays {
			at := Time(d)
			e.Schedule(at, func() { fired = append(fired, at) })
		}
		e.Run()
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500, "500ns"},
		{25 * Microsecond, "25µs"},
		{3 * Millisecond, "3ms"},
		{2 * Second, "2s"},
		{-3 * Millisecond, "-3ms"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestTimeConversions(t *testing.T) {
	if (1500 * Nanosecond).Micros() != 1.5 {
		t.Error("Micros conversion wrong")
	}
	if (2500 * Microsecond).Millis() != 2.5 {
		t.Error("Millis conversion wrong")
	}
	if (1500 * Millisecond).Seconds() != 1.5 {
		t.Error("Seconds conversion wrong")
	}
}
