package sim

import (
	"container/heap"
	"fmt"
)

// event is a scheduled callback. Events at equal times fire in the order
// they were scheduled (seq breaks ties), which keeps runs deterministic.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulation loop. The zero value is not
// usable; construct with NewEngine.
//
// The engine is single-threaded by design: exactly one entity (the event
// loop or one Proc) runs at any instant, so model code needs no locking.
type Engine struct {
	now    Time
	events eventHeap
	seq    uint64

	// handoff stack for the cooperative process protocol; see proc.go.
	stack []chan struct{}

	// procs counts live processes so Run can detect deadlock (processes
	// blocked forever with no pending events).
	procs int

	stepping bool
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	e := &Engine{}
	heap.Init(&e.events)
	return e
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Schedule arranges for fn to run at virtual time at. Scheduling in the
// past panics: it would silently corrupt causality.
func (e *Engine) Schedule(at Time, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	e.seq++
	heap.Push(&e.events, &event{at: at, seq: e.seq, fn: fn})
}

// After arranges for fn to run d nanoseconds from now.
func (e *Engine) After(d Time, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	e.Schedule(e.now+d, fn)
}

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return len(e.events) }

// Step runs the single earliest event, advancing the clock to its time.
// It reports false if no events remain.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*event)
	e.now = ev.at
	e.stepping = true
	ev.fn()
	e.stepping = false
	return true
}

// Run executes events until none remain. If live processes remain
// blocked when the event queue drains, Run panics: the model has
// deadlocked (a Cond was never fired).
func (e *Engine) Run() {
	for e.Step() {
	}
	if e.procs > 0 {
		panic(fmt.Sprintf("sim: deadlock: %d process(es) blocked with no pending events", e.procs))
	}
}

// RunUntil executes events with timestamps <= t, then sets the clock to
// t. Events after t remain queued.
func (e *Engine) RunUntil(t Time) {
	for len(e.events) > 0 && e.events[0].at <= t {
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}
