package sim

import "testing"

func TestProcSleep(t *testing.T) {
	e := NewEngine()
	var woke Time = -1
	e.Go(func(p *Proc) {
		p.Sleep(100)
		woke = p.Now()
	})
	e.Run()
	if woke != 100 {
		t.Fatalf("proc woke at %v, want 100", woke)
	}
}

func TestProcSleepZeroIsNoop(t *testing.T) {
	e := NewEngine()
	ran := false
	e.Go(func(p *Proc) {
		p.Sleep(0)
		p.Sleep(-5)
		ran = true
	})
	e.Run()
	if !ran {
		t.Fatal("proc did not complete")
	}
}

func TestTwoProcsInterleaveDeterministically(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Go(func(p *Proc) {
		order = append(order, "a0")
		p.Sleep(10)
		order = append(order, "a10")
		p.Sleep(20)
		order = append(order, "a30")
	})
	e.Go(func(p *Proc) {
		order = append(order, "b0")
		p.Sleep(15)
		order = append(order, "b15")
	})
	e.Run()
	want := []string{"a0", "b0", "a10", "b15", "a30"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestCondFireBeforeAwait(t *testing.T) {
	e := NewEngine()
	c := NewCond(e)
	c.Fire()
	done := false
	e.Go(func(p *Proc) {
		c.Await(p) // must not block
		done = true
	})
	e.Run()
	if !done {
		t.Fatal("Await on fired cond blocked")
	}
}

func TestCondFireWakesWaiter(t *testing.T) {
	e := NewEngine()
	c := NewCond(e)
	var woke Time = -1
	e.Go(func(p *Proc) {
		c.Await(p)
		woke = p.Now()
	})
	e.Schedule(42, c.Fire)
	e.Run()
	if woke != 42 {
		t.Fatalf("waiter woke at %v, want 42", woke)
	}
}

func TestCondDoubleFireIsNoop(t *testing.T) {
	e := NewEngine()
	c := NewCond(e)
	c.Fire()
	c.Fire()
	if !c.Fired() {
		t.Fatal("cond not fired")
	}
}

func TestProcFiresAnotherProcsCond(t *testing.T) {
	e := NewEngine()
	c := NewCond(e)
	var events []string
	e.Go(func(p *Proc) {
		events = append(events, "waiter:await")
		c.Await(p)
		events = append(events, "waiter:woke")
	})
	e.Go(func(p *Proc) {
		p.Sleep(5)
		events = append(events, "firer:fire")
		c.Fire()
		events = append(events, "firer:after")
	})
	e.Run()
	want := []string{"waiter:await", "firer:fire", "waiter:woke", "firer:after"}
	for i := range want {
		if i >= len(events) || events[i] != want[i] {
			t.Fatalf("events = %v, want %v", events, want)
		}
	}
}

func TestWaitGroup(t *testing.T) {
	e := NewEngine()
	wg := NewWaitGroup(e)
	var finished Time = -1
	for i := 1; i <= 3; i++ {
		i := i
		wg.Add(1)
		e.Go(func(p *Proc) {
			p.Sleep(Time(i * 10))
			wg.Done()
		})
	}
	e.Go(func(p *Proc) {
		wg.Wait(p)
		finished = p.Now()
	})
	e.Run()
	if finished != 30 {
		t.Fatalf("waiter finished at %v, want 30", finished)
	}
}

func TestWaitGroupZeroCountDoesNotBlock(t *testing.T) {
	e := NewEngine()
	wg := NewWaitGroup(e)
	done := false
	e.Go(func(p *Proc) {
		wg.Wait(p)
		done = true
	})
	e.Run()
	if !done {
		t.Fatal("Wait on zero wait group blocked")
	}
}

func TestDeadlockPanics(t *testing.T) {
	e := NewEngine()
	c := NewCond(e)
	e.Go(func(p *Proc) {
		c.Await(p) // never fired
	})
	defer func() {
		if recover() == nil {
			t.Error("Run with a permanently blocked proc did not panic")
		}
	}()
	e.Run()
}

func TestYieldRunsQueuedEventsFirst(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Go(func(p *Proc) {
		e.After(0, func() { order = append(order, "event") })
		p.Yield()
		order = append(order, "proc")
	})
	e.Run()
	if len(order) != 2 || order[0] != "event" || order[1] != "proc" {
		t.Fatalf("order = %v, want [event proc]", order)
	}
}

func TestManyProcsHeavyInterleaving(t *testing.T) {
	e := NewEngine()
	const n = 50
	total := 0
	for i := 0; i < n; i++ {
		i := i
		e.Go(func(p *Proc) {
			for j := 0; j < 20; j++ {
				p.Sleep(Time(1 + (i+j)%7))
			}
			total++
		})
	}
	e.Run()
	if total != n {
		t.Fatalf("completed %d procs, want %d", total, n)
	}
}
