package sim

// Server models an exclusive resource with FIFO service: a flash channel,
// a LUN, a CPU core, a lock. Work is reserved in arrival order; a
// reservation starts when the resource becomes free and occupies it for
// the requested duration.
type Server struct {
	eng  *Engine
	name string

	freeAt Time // when the last reservation ends
	busy   Time // total occupied time, for utilization
	uses   int64

	trace     []Interval
	tracing   bool
	traceFrom Time

	tap Tap
}

// Tap observes every reservation on a server at the moment it is made:
// the label, how long the reservation waits behind earlier work, the
// busy time it charges, and the (virtual) time of the reservation. The
// tap fires synchronously inside Use/UseFrom — exactly where busy is
// credited — so an observer that sums busy per tap closes exactly
// against the server's own Busy() counter. Taps charge no virtual time.
type Tap func(label string, wait, busy, at Time)

// Interval is one occupancy span of a traced server.
type Interval struct {
	Start, End Time
	Label      string
}

// NewServer returns an idle server named name on eng.
func NewServer(eng *Engine, name string) *Server {
	return &Server{eng: eng, name: name}
}

// Name returns the server's name.
func (s *Server) Name() string { return s.name }

// FreeAt reports when the server next becomes free (which may be in the
// past if it is idle).
func (s *Server) FreeAt() Time { return s.freeAt }

// Busy reports the cumulative occupied time.
func (s *Server) Busy() Time { return s.busy }

// Uses reports the number of completed or queued reservations.
func (s *Server) Uses() int64 { return s.uses }

// Utilization reports busy time as a fraction of the window from trace
// start (or zero) to now.
func (s *Server) Utilization() float64 {
	window := s.eng.Now() - s.traceFrom
	if window <= 0 {
		return 0
	}
	return float64(s.busy) / float64(window)
}

// StartTrace begins recording occupancy intervals for Gantt rendering
// and resets the utilization window.
func (s *Server) StartTrace() {
	s.tracing = true
	s.trace = s.trace[:0]
	s.traceFrom = s.eng.Now()
	s.busy = 0
}

// Trace returns the recorded occupancy intervals.
func (s *Server) Trace() []Interval { return s.trace }

// SetTap installs the reservation observer (nil removes it). A server
// has at most one tap: setting a second silently replaces the first,
// which a two-path accounting check (obs.Profiler) surfaces as drift
// rather than double counting.
func (s *Server) SetTap(fn Tap) { s.tap = fn }

// Use reserves the server for d nanoseconds starting as soon as it is
// free (FIFO behind earlier reservations). done, if non-nil, runs at the
// end of the reservation and receives the actual start and end times.
// Use returns the reservation's end time.
func (s *Server) Use(d Time, label string, done func(start, end Time)) Time {
	if d < 0 {
		panic("sim: negative service time")
	}
	now := s.eng.Now()
	start := s.freeAt
	if start < now {
		start = now
	}
	end := start + d
	s.freeAt = end
	s.busy += d
	s.uses++
	if s.tracing {
		s.trace = append(s.trace, Interval{Start: start, End: end, Label: label})
	}
	if s.tap != nil {
		s.tap(label, start-now, d, now)
	}
	if done != nil {
		s.eng.Schedule(end, func() { done(start, end) })
	}
	return end
}

// UseFrom reserves the server for d nanoseconds starting no earlier than
// ready (used to chain a reservation after an upstream stage completes,
// when scheduling eagerly). It returns the end time.
func (s *Server) UseFrom(ready Time, d Time, label string, done func(start, end Time)) Time {
	if ready < s.eng.Now() {
		ready = s.eng.Now()
	}
	if d < 0 {
		panic("sim: negative service time")
	}
	start := s.freeAt
	if start < ready {
		start = ready
	}
	end := start + d
	s.freeAt = end
	s.busy += d
	s.uses++
	if s.tracing {
		s.trace = append(s.trace, Interval{Start: start, End: end, Label: label})
	}
	if s.tap != nil {
		s.tap(label, start-ready, d, s.eng.Now())
	}
	if done != nil {
		s.eng.Schedule(end, func() { done(start, end) })
	}
	return end
}

// QueueDelay reports how long a reservation made now would wait before
// starting.
func (s *Server) QueueDelay() Time {
	now := s.eng.Now()
	if s.freeAt <= now {
		return 0
	}
	return s.freeAt - now
}
