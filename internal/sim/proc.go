package sim

// This file implements a cooperative process model on top of the event
// loop, so higher layers (the storage engine, workload clients) can be
// written in ordinary blocking style while still executing in virtual
// time.
//
// Protocol: exactly one entity runs at a time — either the event loop or
// one process. Control transfers are strict handoffs through unbuffered
// channels. When entity A wakes process P, A pushes a return channel on
// the engine's handoff stack, resumes P, and blocks on the return
// channel; when P suspends (or exits), it pops the stack and signals the
// channel, returning control to A. The stack supports nested wakeups
// (a process firing another process's condition).

// Proc is a simulated process (a goroutine scheduled in virtual time).
type Proc struct {
	eng    *Engine
	resume chan struct{}
	done   bool
}

// Engine returns the engine this process runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Now reports the current virtual time.
func (p *Proc) Now() Time { return p.eng.Now() }

// Go starts fn as a simulated process at the current virtual time.
// fn runs on its own goroutine but under the strict handoff protocol, so
// model state never needs locking.
func (e *Engine) Go(fn func(p *Proc)) {
	e.procs++
	p := &Proc{eng: e, resume: make(chan struct{})}
	e.Schedule(e.now, func() {
		go func() {
			<-p.resume
			fn(p)
			p.done = true
			p.eng.procs--
			p.yield()
		}()
		e.handoff(p)
	})
}

// handoff transfers control to p and blocks until p suspends or exits.
// It must be called by the currently running entity.
func (e *Engine) handoff(p *Proc) {
	ret := make(chan struct{})
	e.stack = append(e.stack, ret)
	p.resume <- struct{}{}
	<-ret
}

// yield returns control to the most recent waker. Called by the running
// process when it suspends or exits.
func (p *Proc) yield() {
	n := len(p.eng.stack)
	ret := p.eng.stack[n-1]
	p.eng.stack[n-1] = nil
	p.eng.stack = p.eng.stack[:n-1]
	ret <- struct{}{}
}

// suspend parks the process until something resumes it via handoff.
func (p *Proc) suspend() {
	p.yield()
	<-p.resume
}

// Sleep blocks the process for d nanoseconds of virtual time.
func (p *Proc) Sleep(d Time) {
	if d <= 0 {
		return
	}
	c := NewCond(p.eng)
	p.eng.After(d, c.Fire)
	c.Await(p)
}

// Yield reschedules the process after all events already queued at the
// current instant, giving them a chance to run.
func (p *Proc) Yield() {
	c := NewCond(p.eng)
	p.eng.After(0, c.Fire)
	c.Await(p)
}

// Cond is a one-shot condition processes can await and any entity
// (an event handler or another process) can fire. Firing before the
// await completes immediately; firing twice is a no-op. Multiple
// waiters wake in await order.
type Cond struct {
	eng     *Engine
	fired   bool
	waiters []*Proc
}

// NewCond returns an unfired condition bound to eng.
func NewCond(eng *Engine) *Cond { return &Cond{eng: eng} }

// Fired reports whether the condition has been fired.
func (c *Cond) Fired() bool { return c.fired }

// Fire marks the condition done and wakes every waiting process, each
// running until it suspends again.
func (c *Cond) Fire() {
	if c.fired {
		return
	}
	c.fired = true
	ws := c.waiters
	c.waiters = nil
	for _, w := range ws {
		c.eng.handoff(w)
	}
}

// Await blocks process p until the condition fires.
func (c *Cond) Await(p *Proc) {
	if c.fired {
		return
	}
	c.waiters = append(c.waiters, p)
	p.suspend()
}

// WaitGroup counts outstanding work items in virtual time. A process can
// Wait for the count to reach zero.
type WaitGroup struct {
	eng   *Engine
	count int
	cond  *Cond
}

// NewWaitGroup returns a wait group bound to eng.
func NewWaitGroup(eng *Engine) *WaitGroup { return &WaitGroup{eng: eng} }

// Add increments the count by n (n may be negative; Done is Add(-1)).
func (w *WaitGroup) Add(n int) {
	w.count += n
	if w.count < 0 {
		panic("sim: negative WaitGroup count")
	}
	if w.count == 0 && w.cond != nil {
		c := w.cond
		w.cond = nil
		c.Fire()
	}
}

// Done decrements the count by one.
func (w *WaitGroup) Done() { w.Add(-1) }

// Wait blocks p until the count reaches zero.
func (w *WaitGroup) Wait(p *Proc) {
	if w.count == 0 {
		return
	}
	if w.cond == nil {
		w.cond = NewCond(w.eng)
	}
	w.cond.Await(p)
}
