// Package pcm models phase-change memory, the paper's second
// non-volatile technology (§2.4, §3): byte-addressable, in-place
// updates, no erase, read latency near DRAM, writes several times
// slower, and per-cell endurance far above flash but still finite.
//
// Two presentations are provided:
//
//   - Device: a raw PCM array with per-cache-line timing, suitable as a
//     chip in a PCM-based SSD;
//   - MemBus: the memory-bus attachment the paper (citing Condit et al.
//     and Mohan) argues synchronous database state should use, with
//     store + persist-barrier semantics.
package pcm

import (
	"errors"
	"fmt"

	"repro/internal/sim"
)

// Sentinel errors.
var (
	// ErrOutOfRange reports an access beyond the device capacity.
	ErrOutOfRange = errors.New("pcm: access out of range")
	// ErrWornOut reports a write to a line past its endurance rating.
	ErrWornOut = errors.New("pcm: line worn out")
)

// Config parameterizes a PCM device. Defaults follow 2012-era prototypes
// (Onyx, Samsung parts): ~100ns-class reads, sub-µs line writes.
type Config struct {
	CapacityBytes int64
	LineSize      int      // access granularity in bytes (typically 64)
	ReadLatency   sim.Time // per line
	WriteLatency  sim.Time // per line (SET/RESET is the slow path)
	Endurance     int64    // writes per line; 0 disables wear tracking
}

// DefaultConfig is a 2012-flavoured 1 GiB PCM part.
func DefaultConfig() Config {
	return Config{
		CapacityBytes: 1 << 30,
		LineSize:      64,
		ReadLatency:   115 * sim.Nanosecond,
		WriteLatency:  800 * sim.Nanosecond,
		Endurance:     100_000_000,
	}
}

// Device is a raw PCM array behind a single access port (one bank
// server). In-place updates are legal: there is no erase and no
// sequential-programming constraint — exactly the contrast with flash
// the paper draws.
type Device struct {
	eng *sim.Engine
	cfg Config
	srv *sim.Server

	// Sparse storage: 4 KiB chunks allocated on first write.
	chunks map[int64][]byte
	// wear counts writes per line (sparse).
	wear map[int64]int64

	writes int64
	reads  int64
}

const chunkSize = 4096

// New returns a PCM device on eng.
func New(eng *sim.Engine, name string, cfg Config) (*Device, error) {
	if cfg.CapacityBytes <= 0 {
		return nil, fmt.Errorf("pcm: capacity %d must be positive", cfg.CapacityBytes)
	}
	if cfg.LineSize <= 0 {
		return nil, fmt.Errorf("pcm: line size %d must be positive", cfg.LineSize)
	}
	if cfg.ReadLatency < 0 || cfg.WriteLatency < 0 {
		return nil, fmt.Errorf("pcm: negative latency")
	}
	return &Device{
		eng:    eng,
		cfg:    cfg,
		srv:    sim.NewServer(eng, name),
		chunks: make(map[int64][]byte),
		wear:   make(map[int64]int64),
	}, nil
}

// Config returns the device parameterization.
func (d *Device) Config() Config { return d.cfg }

// Server exposes the port server for utilization and tracing.
func (d *Device) Server() *sim.Server { return d.srv }

// Reads reports completed read operations.
func (d *Device) Reads() int64 { return d.reads }

// Writes reports completed write operations.
func (d *Device) Writes() int64 { return d.writes }

// lines reports how many cache lines an [off, off+n) access touches.
func (d *Device) lines(off int64, n int) int64 {
	if n <= 0 {
		return 0
	}
	ls := int64(d.cfg.LineSize)
	first := off / ls
	last := (off + int64(n) - 1) / ls
	return last - first + 1
}

func (d *Device) checkRange(off int64, n int) error {
	if off < 0 || n < 0 || off+int64(n) > d.cfg.CapacityBytes {
		return fmt.Errorf("%w: off=%d n=%d cap=%d", ErrOutOfRange, off, n, d.cfg.CapacityBytes)
	}
	return nil
}

// Read starts a byte-granular read of n bytes at off. done receives a
// fresh copy of the data. Unwritten bytes read as zero.
func (d *Device) Read(off int64, n int, done func([]byte, error)) error {
	if err := d.checkRange(off, n); err != nil {
		return err
	}
	dur := sim.Time(d.lines(off, n)) * d.cfg.ReadLatency
	d.reads++
	d.srv.Use(dur, "read", func(_, _ sim.Time) {
		buf := make([]byte, n)
		d.copyOut(off, buf)
		done(buf, nil)
	})
	return nil
}

// Write starts a byte-granular in-place write. done receives ErrWornOut
// if any touched line exceeded its endurance (data is still written:
// real wear failures corrupt silently, but we surface the event).
func (d *Device) Write(off int64, data []byte, done func(error)) error {
	if err := d.checkRange(off, len(data)); err != nil {
		return err
	}
	dur := sim.Time(d.lines(off, len(data))) * d.cfg.WriteLatency
	var wearErr error
	if d.cfg.Endurance > 0 {
		ls := int64(d.cfg.LineSize)
		for line := off / ls; line <= (off+int64(len(data))-1)/ls && len(data) > 0; line++ {
			d.wear[line]++
			if d.wear[line] > d.cfg.Endurance && wearErr == nil {
				wearErr = fmt.Errorf("%w: line %d", ErrWornOut, line)
			}
		}
	}
	d.copyIn(off, data)
	d.writes++
	d.srv.Use(dur, "write", func(_, _ sim.Time) { done(wearErr) })
	return nil
}

// WearOf reports the write count of the line containing off.
func (d *Device) WearOf(off int64) int64 {
	return d.wear[off/int64(d.cfg.LineSize)]
}

func (d *Device) copyIn(off int64, data []byte) {
	for len(data) > 0 {
		ci := off / chunkSize
		co := off % chunkSize
		chunk := d.chunks[ci]
		if chunk == nil {
			chunk = make([]byte, chunkSize)
			d.chunks[ci] = chunk
		}
		n := copy(chunk[co:], data)
		data = data[n:]
		off += int64(n)
	}
}

func (d *Device) copyOut(off int64, buf []byte) {
	for len(buf) > 0 {
		ci := off / chunkSize
		co := off % chunkSize
		var n int
		if chunk := d.chunks[ci]; chunk != nil {
			n = copy(buf, chunk[co:])
		} else {
			n = len(buf)
			if rem := chunkSize - int(co); n > rem {
				n = rem
			}
			for i := 0; i < n; i++ {
				buf[i] = 0
			}
		}
		buf = buf[n:]
		off += int64(n)
	}
}
