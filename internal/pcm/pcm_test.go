package pcm

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func testConfig() Config {
	return Config{
		CapacityBytes: 1 << 20,
		LineSize:      64,
		ReadLatency:   100 * sim.Nanosecond,
		WriteLatency:  800 * sim.Nanosecond,
		Endurance:     0,
	}
}

func newTestDevice(t *testing.T, cfg Config) (*sim.Engine, *Device) {
	t.Helper()
	eng := sim.NewEngine()
	d, err := New(eng, "pcm0", cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return eng, d
}

func TestWriteReadRoundTrip(t *testing.T) {
	eng, d := newTestDevice(t, testConfig())
	want := []byte("the necessary death of the block device interface")
	d.Write(100, want, func(err error) {
		if err != nil {
			t.Errorf("write: %v", err)
		}
	})
	var got []byte
	d.Read(100, len(want), func(b []byte, err error) {
		if err != nil {
			t.Errorf("read: %v", err)
		}
		got = b
	})
	eng.Run()
	if !bytes.Equal(got, want) {
		t.Fatalf("got %q, want %q", got, want)
	}
}

func TestUnwrittenReadsZero(t *testing.T) {
	eng, d := newTestDevice(t, testConfig())
	var got []byte
	d.Read(5000, 10, func(b []byte, _ error) { got = b })
	eng.Run()
	for _, v := range got {
		if v != 0 {
			t.Fatal("unwritten bytes not zero")
		}
	}
}

func TestInPlaceUpdate(t *testing.T) {
	eng, d := newTestDevice(t, testConfig())
	d.Write(0, []byte("aaaa"), func(error) {})
	d.Write(0, []byte("bbbb"), func(error) {}) // no erase needed — PCM
	var got []byte
	d.Read(0, 4, func(b []byte, _ error) { got = b })
	eng.Run()
	if string(got) != "bbbb" {
		t.Fatalf("in-place update failed: %q", got)
	}
}

func TestCrossChunkWrite(t *testing.T) {
	eng, d := newTestDevice(t, testConfig())
	want := make([]byte, 10000) // spans 3 chunks
	for i := range want {
		want[i] = byte(i * 7)
	}
	d.Write(chunkSize-100, want, func(error) {})
	var got []byte
	d.Read(chunkSize-100, len(want), func(b []byte, _ error) { got = b })
	eng.Run()
	if !bytes.Equal(got, want) {
		t.Fatal("cross-chunk round trip failed")
	}
}

func TestLatencyPerLine(t *testing.T) {
	eng, d := newTestDevice(t, testConfig())
	var end sim.Time
	// 64 bytes at offset 0 = 1 line; 65 bytes = 2 lines.
	d.Write(0, make([]byte, 65), func(error) { end = eng.Now() })
	eng.Run()
	if end != 1600*sim.Nanosecond {
		t.Fatalf("2-line write ended at %v, want 1.6µs", end)
	}
	start := eng.Now()
	d.Read(0, 64, func([]byte, error) { end = eng.Now() })
	eng.Run()
	if end-start != 100*sim.Nanosecond {
		t.Fatalf("1-line read took %v, want 100ns", end-start)
	}
}

func TestMisalignedAccessTouchesExtraLine(t *testing.T) {
	_, d := newTestDevice(t, testConfig())
	// 64 bytes starting at offset 32 spans lines 0 and 1.
	if got := d.lines(32, 64); got != 2 {
		t.Fatalf("lines(32,64) = %d, want 2", got)
	}
	if got := d.lines(0, 64); got != 1 {
		t.Fatalf("lines(0,64) = %d, want 1", got)
	}
	if got := d.lines(0, 0); got != 0 {
		t.Fatalf("lines(0,0) = %d, want 0", got)
	}
}

func TestOutOfRangeRejected(t *testing.T) {
	_, d := newTestDevice(t, testConfig())
	if err := d.Read(1<<20, 1, nil); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("read past end: %v", err)
	}
	if err := d.Write(-1, []byte("x"), nil); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("negative offset: %v", err)
	}
	if err := d.Write(1<<20-1, []byte("xx"), nil); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("write spanning end: %v", err)
	}
}

func TestEnduranceWearOut(t *testing.T) {
	cfg := testConfig()
	cfg.Endurance = 5
	eng, d := newTestDevice(t, cfg)
	var lastErr error
	for i := 0; i < 6; i++ {
		d.Write(0, []byte("x"), func(err error) { lastErr = err })
		eng.Run()
	}
	if !errors.Is(lastErr, ErrWornOut) {
		t.Fatalf("6th write to endurance-5 line: err = %v, want ErrWornOut", lastErr)
	}
	if d.WearOf(0) != 6 {
		t.Fatalf("WearOf = %d, want 6", d.WearOf(0))
	}
}

func TestPortSerializes(t *testing.T) {
	eng, d := newTestDevice(t, testConfig())
	var ends []sim.Time
	d.Write(0, make([]byte, 64), func(error) { ends = append(ends, eng.Now()) })
	d.Write(64, make([]byte, 64), func(error) { ends = append(ends, eng.Now()) })
	eng.Run()
	if len(ends) != 2 || ends[1] != 2*ends[0] {
		t.Fatalf("ends = %v: writes should serialize on the port", ends)
	}
}

func TestCountersAndConfig(t *testing.T) {
	eng, d := newTestDevice(t, testConfig())
	d.Write(0, []byte("a"), func(error) {})
	d.Read(0, 1, func([]byte, error) {})
	eng.Run()
	if d.Writes() != 1 || d.Reads() != 1 {
		t.Fatalf("counters = %d writes, %d reads", d.Writes(), d.Reads())
	}
	if d.Config().LineSize != 64 {
		t.Fatal("Config not exposed")
	}
	if d.Server() == nil {
		t.Fatal("Server not exposed")
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	eng := sim.NewEngine()
	for _, cfg := range []Config{
		{CapacityBytes: 0, LineSize: 64},
		{CapacityBytes: 100, LineSize: 0},
		{CapacityBytes: 100, LineSize: 64, ReadLatency: -1},
	} {
		if _, err := New(eng, "bad", cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestDefaultConfigSane(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.WriteLatency <= cfg.ReadLatency {
		t.Fatal("PCM writes should be slower than reads")
	}
	if cfg.CapacityBytes <= 0 || cfg.Endurance <= 0 {
		t.Fatal("default config incomplete")
	}
}

// Property: any sequence of writes then reads behaves like a flat byte
// array (in-place semantics).
func TestPropertyFlatArraySemantics(t *testing.T) {
	type op struct {
		Off  uint16
		Data []byte
	}
	f := func(ops []op) bool {
		eng, _ := sim.NewEngine(), 0
		d, err := New(eng, "prop", testConfig())
		if err != nil {
			return false
		}
		model := make([]byte, 1<<17)
		for _, o := range ops {
			if len(o.Data) == 0 {
				continue
			}
			off := int64(o.Off)
			if off+int64(len(o.Data)) > int64(len(model)) {
				continue
			}
			d.Write(off, o.Data, func(error) {})
			copy(model[off:], o.Data)
		}
		eng.Run()
		ok := true
		d.Read(0, len(model), func(b []byte, _ error) { ok = bytes.Equal(b, model) })
		eng.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestMemBusStorePersistLoad(t *testing.T) {
	eng, d := newTestDevice(t, testConfig())
	mb := NewMemBus(eng, d)
	var loaded []byte
	var persistTime, storeTime sim.Time
	eng.Go(func(p *sim.Proc) {
		if err := mb.Store(p, 0, []byte("commit-record")); err != nil {
			t.Errorf("store: %v", err)
		}
		storeTime = p.Now()
		mb.Persist(p)
		persistTime = p.Now()
		b, err := mb.Load(p, 0, 13)
		if err != nil {
			t.Errorf("load: %v", err)
		}
		loaded = b
	})
	eng.Run()
	if string(loaded) != "commit-record" {
		t.Fatalf("loaded %q", loaded)
	}
	if storeTime == 0 {
		t.Fatal("store should cost CPU time")
	}
	if persistTime <= storeTime {
		t.Fatal("persist should cost more than store")
	}
}

func TestMemBusPersistEmptyIsCheap(t *testing.T) {
	eng, d := newTestDevice(t, testConfig())
	mb := NewMemBus(eng, d)
	var elapsed sim.Time
	eng.Go(func(p *sim.Proc) {
		start := p.Now()
		mb.Persist(p)
		elapsed = p.Now() - start
	})
	eng.Run()
	if elapsed != mb.BarrierCost {
		t.Fatalf("empty persist took %v, want barrier cost %v", elapsed, mb.BarrierCost)
	}
}

func TestMemBusStoreVisibleBeforePersist(t *testing.T) {
	eng, d := newTestDevice(t, testConfig())
	mb := NewMemBus(eng, d)
	var got []byte
	eng.Go(func(p *sim.Proc) {
		mb.Store(p, 10, []byte("xyz"))
		b, _ := mb.Load(p, 10, 3)
		got = b
	})
	eng.Run()
	if string(got) != "xyz" {
		t.Fatal("store-to-load forwarding broken")
	}
}

func TestMemBusOutOfRange(t *testing.T) {
	eng, d := newTestDevice(t, testConfig())
	mb := NewMemBus(eng, d)
	eng.Go(func(p *sim.Proc) {
		if err := mb.Store(p, 1<<20, []byte("x")); err == nil {
			t.Error("out-of-range store accepted")
		}
		if _, err := mb.Load(p, -1, 4); err == nil {
			t.Error("out-of-range load accepted")
		}
	})
	eng.Run()
}
