package pcm

import "repro/internal/sim"

// MemBus presents a PCM device as memory-bus-attached storage-class
// memory: the CPU stores to it directly and makes data durable with a
// persist barrier (the clflush/clwb+fence analogue), instead of going
// through a driver and block layer. This is the §3 "synchronous path".
//
// Stores land in a (volatile) write-combining queue at store cost;
// Persist drains the queue to the PCM array and only returns when every
// queued line is durable.
type MemBus struct {
	eng *sim.Engine
	dev *Device

	// StoreCost is the CPU-visible cost of one cached store burst
	// (filling a line in the store buffer).
	StoreCost sim.Time
	// BarrierCost is the fixed cost of the fence instruction sequence.
	BarrierCost sim.Time

	pendingLines int64 // queued, not yet persisted
	pendingOff   int64
	pendingLen   int
	pendingBuf   []byte
}

// NewMemBus wraps dev as memory-mapped storage-class memory.
func NewMemBus(eng *sim.Engine, dev *Device) *MemBus {
	return &MemBus{
		eng:         eng,
		dev:         dev,
		StoreCost:   10 * sim.Nanosecond,
		BarrierCost: 100 * sim.Nanosecond,
	}
}

// Device returns the underlying PCM array.
func (m *MemBus) Device() *Device { return m.dev }

// Store writes data at off into the persistence domain's queue. It is
// cheap (store-buffer speed); durability requires Persist. The data is
// staged immediately so a later Load observes it (store-to-load
// forwarding).
func (m *MemBus) Store(p *sim.Proc, off int64, data []byte) error {
	if err := m.dev.checkRange(off, len(data)); err != nil {
		return err
	}
	m.dev.copyIn(off, data)
	m.pendingLines += m.dev.lines(off, len(data))
	p.Sleep(m.StoreCost * sim.Time(1+len(data)/m.dev.cfg.LineSize))
	return nil
}

// Persist blocks until every line stored since the last Persist is
// durable in PCM: barrier cost plus the PCM write time of the queued
// lines, serialized on the device port.
func (m *MemBus) Persist(p *sim.Proc) {
	lines := m.pendingLines
	m.pendingLines = 0
	p.Sleep(m.BarrierCost)
	if lines == 0 {
		return
	}
	dur := sim.Time(lines) * m.dev.cfg.WriteLatency
	c := sim.NewCond(p.Engine())
	m.dev.writes++
	m.dev.srv.Use(dur, "persist", func(_, _ sim.Time) { c.Fire() })
	c.Await(p)
}

// Load reads n bytes at off at memory speed (PCM read latency per line),
// blocking the calling process.
func (m *MemBus) Load(p *sim.Proc, off int64, n int) ([]byte, error) {
	if err := m.dev.checkRange(off, n); err != nil {
		return nil, err
	}
	dur := sim.Time(m.dev.lines(off, n)) * m.dev.cfg.ReadLatency
	c := sim.NewCond(p.Engine())
	var out []byte
	m.dev.reads++
	m.dev.srv.Use(dur, "load", func(_, _ sim.Time) {
		out = make([]byte, n)
		m.dev.copyOut(off, out)
		c.Fire()
	})
	c.Await(p)
	return out, nil
}
