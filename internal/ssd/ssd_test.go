package ssd

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/bus"
	"repro/internal/ecc"
	"repro/internal/ftl"
	"repro/internal/nand"
	"repro/internal/pcm"
	"repro/internal/sim"
)

// smallFlash builds a small Enterprise-style device for tests.
func smallFlash(t *testing.T, buffered bool) (*sim.Engine, *Device) {
	t.Helper()
	eng := sim.NewEngine()
	spec := nand.Spec{
		Name: "t",
		Geometry: nand.Geometry{
			PageSize: 512, OOBSize: 16, PagesPerBlock: 4,
			BlocksPerPlane: 16, PlanesPerLUN: 1, LUNsPerChip: 1,
		},
		Timing: nand.Timing{
			ReadPage:    50 * sim.Microsecond,
			ProgramPage: 600 * sim.Microsecond,
			EraseBlock:  3 * sim.Millisecond,
		},
		Reliability: nand.Reliability{RatedCycles: 1_000_000},
	}
	arr, err := ftl.NewArray(eng, ftl.ArrayConfig{
		Channels: 2, ChipsPerChannel: 2,
		Chip:    spec,
		Channel: bus.Config{MBPerSec: 200, CmdOverhead: sim.Microsecond},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ftl.Config{
		OverProvision: 0.2,
		GCLowWater:    2, GCHighWater: 3, GCReserve: 1,
		ECC:  ecc.BCH8Per512,
		Seed: 1,
	}
	if buffered {
		cfg.BufferPages = 32
		cfg.BufferSafe = true
	}
	f, err := ftl.NewPageFTL(arr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDevice(eng, "test-ssd", f, arr, SATA3)
	if err != nil {
		t.Fatal(err)
	}
	return eng, d
}

func devWrite(t *testing.T, eng *sim.Engine, d Dev, lpn int64, fill byte) {
	t.Helper()
	data := make([]byte, d.PageSize())
	for i := range data {
		data[i] = fill
	}
	var gotErr error
	ok := false
	d.Write(lpn, data, func(err error) { gotErr, ok = err, true })
	eng.Run()
	if !ok || gotErr != nil {
		t.Fatalf("device write %d: ok=%v err=%v", lpn, ok, gotErr)
	}
}

func devRead(t *testing.T, eng *sim.Engine, d Dev, lpn int64) []byte {
	t.Helper()
	var data []byte
	var gotErr error
	ok := false
	d.Read(lpn, func(b []byte, err error) { data, gotErr, ok = b, err, true })
	eng.Run()
	if !ok || gotErr != nil {
		t.Fatalf("device read %d: ok=%v err=%v", lpn, ok, gotErr)
	}
	return data
}

func TestDeviceRoundTrip(t *testing.T) {
	eng, d := smallFlash(t, false)
	devWrite(t, eng, d, 3, 0x7E)
	got := devRead(t, eng, d, 3)
	if got[0] != 0x7E {
		t.Fatal("round trip failed")
	}
	if d.Metrics().Reads.Ops != 1 || d.Metrics().Writes.Ops != 1 {
		t.Fatal("metrics not recorded")
	}
}

func TestDeviceLatencyIncludesLinkAndFlash(t *testing.T) {
	eng, d := smallFlash(t, false)
	devWrite(t, eng, d, 0, 1)
	w := d.Metrics().WriteLat.Max()
	// Write-through: link (10µs cmd + ~0.85µs data) + channel (~3.5µs) +
	// program 600µs. Must exceed raw program time.
	if w < int64(600*sim.Microsecond) {
		t.Fatalf("write latency %dns below program time", w)
	}
	devRead(t, eng, d, 0)
	r := d.Metrics().ReadLat.Max()
	if r < int64(50*sim.Microsecond) || r > int64(200*sim.Microsecond) {
		t.Fatalf("read latency %dns outside plausible range", r)
	}
	if w < 2*r {
		t.Fatalf("unbuffered write (%d) should be much slower than read (%d)", w, r)
	}
}

func TestDeviceBufferedWriteLatencyCollapses(t *testing.T) {
	eng, d := smallFlash(t, true)
	devWrite(t, eng, d, 0, 1)
	w := d.Metrics().WriteLat.Max()
	// Buffered: ack after link transfer + buffer insert, no program wait.
	if w > int64(50*sim.Microsecond) {
		t.Fatalf("buffered write latency %dns; want cache speed", w)
	}
}

func TestDeviceTrimAndFlush(t *testing.T) {
	eng, d := smallFlash(t, true)
	devWrite(t, eng, d, 5, 9)
	if err := d.Trim(5); err != nil {
		t.Fatal(err)
	}
	flushed := false
	d.Flush(func() { flushed = true })
	eng.Run()
	if !flushed {
		t.Fatal("flush did not complete")
	}
	if got := devRead(t, eng, d, 5); got != nil {
		t.Fatal("trimmed lpn still readable")
	}
}

func TestDeviceAtomicWrite(t *testing.T) {
	eng, d := smallFlash(t, true)
	lpns := []int64{1, 2, 3}
	pages := make([][]byte, 3)
	for i := range pages {
		pages[i] = bytes.Repeat([]byte{byte(i + 10)}, d.PageSize())
	}
	var gotErr error
	ok := false
	d.AtomicWrite(lpns, pages, func(err error) { gotErr, ok = err, true })
	eng.Run()
	if !ok || gotErr != nil {
		t.Fatalf("atomic write: ok=%v err=%v", ok, gotErr)
	}
	for i, lpn := range lpns {
		if got := devRead(t, eng, d, lpn); got[0] != byte(i+10) {
			t.Fatalf("atomic page %d wrong", lpn)
		}
	}
}

func TestDeviceAtomicWriteNeedsSafeBuffer(t *testing.T) {
	eng, d := smallFlash(t, false)
	var gotErr error
	d.AtomicWrite([]int64{0}, [][]byte{make([]byte, 512)}, func(err error) { gotErr = err })
	eng.Run()
	if !errors.Is(gotErr, ErrAtomicUnsupported) {
		t.Fatalf("err = %v, want ErrAtomicUnsupported", gotErr)
	}
}

func TestDeviceAtomicWriteMismatchedArgs(t *testing.T) {
	eng, d := smallFlash(t, true)
	var gotErr error
	d.AtomicWrite([]int64{0, 1}, [][]byte{make([]byte, 512)}, func(err error) { gotErr = err })
	eng.Run()
	if gotErr == nil {
		t.Fatal("mismatched lpns/pages accepted")
	}
}

func TestDeviceNamelessRoundTrip(t *testing.T) {
	eng, d := smallFlash(t, false)
	data := bytes.Repeat([]byte{0xCD}, d.PageSize())
	var ppa ftl.PPA = ftl.InvalidPPA
	d.WriteNameless(data, func(p ftl.PPA, err error) {
		if err != nil {
			t.Errorf("nameless: %v", err)
		}
		ppa = p
	})
	eng.Run()
	if ppa == ftl.InvalidPPA {
		t.Fatal("no ppa")
	}
	var got []byte
	d.ReadPhys(ppa, func(b []byte, err error) {
		if err != nil {
			t.Errorf("readphys: %v", err)
		}
		got = b
	})
	eng.Run()
	if !bytes.Equal(got, data) {
		t.Fatal("nameless round trip failed")
	}
	if err := d.TrimPhys(ppa); err != nil {
		t.Fatal(err)
	}
	if err := d.SetRelocationNotifier(func(o, n ftl.PPA) {}); err != nil {
		t.Fatal(err)
	}
}

func TestDeviceCrashLosesVolatileAcks(t *testing.T) {
	eng := sim.NewEngine()
	spec := nand.MLC
	spec.Geometry.BlocksPerPlane = 16
	spec.Reliability.FactoryBadBlockRate = 0
	arr, err := ftl.NewArray(eng, ftl.ArrayConfig{
		Channels: 1, ChipsPerChannel: 1, Chip: spec, Channel: bus.ONFI2,
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ftl.DefaultConfig()
	cfg.BufferPages = 64
	cfg.BufferSafe = false // consumer-grade volatile cache
	f, err := ftl.NewPageFTL(arr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDevice(eng, "volatile", f, arr, SATA3)
	if err != nil {
		t.Fatal(err)
	}
	devWrite(t, eng, d, 0, 0xAA) // acked from cache
	lost := d.Crash()
	if len(lost) == 0 {
		t.Fatal("crash lost nothing despite volatile cache")
	}
}

func TestPresetsBuildAndWork(t *testing.T) {
	for _, p := range []Preset{Consumer2008, Enterprise2012, Enterprise2012Unbuffered, DFTL2012, PCM2012} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			eng := sim.NewEngine()
			opt := Options{Channels: 1, ChipsPerChannel: 2, BlocksPerPlane: 32}
			d, err := Build(eng, p, opt)
			if err != nil {
				t.Fatalf("Build(%v): %v", p, err)
			}
			if d.Capacity() <= 0 || d.PageSize() <= 0 {
				t.Fatal("degenerate geometry")
			}
			devWrite(t, eng, d, 1, 0x33)
			d.Flush(func() {})
			eng.Run()
			if got := devRead(t, eng, d, 1); got[0] != 0x33 {
				t.Fatalf("%v round trip failed", p)
			}
		})
	}
}

func TestPresetStrings(t *testing.T) {
	if Consumer2008.String() != "Consumer2008" || Preset(99).String() == "" {
		t.Fatal("preset names wrong")
	}
}

func TestPCMSSDBasics(t *testing.T) {
	eng := sim.NewEngine()
	cfg := pcm.DefaultConfig()
	cfg.CapacityBytes = 1 << 20
	d, err := NewPCMSSD(eng, "pcm", 2, 4096, cfg, PCIe4)
	if err != nil {
		t.Fatal(err)
	}
	if d.Capacity() != 2*(1<<20)/4096 {
		t.Fatalf("capacity = %d", d.Capacity())
	}
	devWrite(t, eng, d, 0, 0x11)
	devWrite(t, eng, d, 1, 0x22) // other bank
	if devRead(t, eng, d, 0)[0] != 0x11 || devRead(t, eng, d, 1)[0] != 0x22 {
		t.Fatal("bank striping broke data")
	}
	// In-place overwrite needs no erase.
	devWrite(t, eng, d, 0, 0x99)
	if devRead(t, eng, d, 0)[0] != 0x99 {
		t.Fatal("in-place update failed")
	}
	if err := d.Trim(0); err != nil {
		t.Fatal(err)
	}
	if err := d.Trim(d.Capacity()); err == nil {
		t.Fatal("out-of-range trim accepted")
	}
	fl := false
	d.Flush(func() { fl = true })
	eng.Run()
	if !fl {
		t.Fatal("flush")
	}
}

func TestPCMSSDFasterThanFlashForSmallWrites(t *testing.T) {
	engF, flash := smallFlash(t, false)
	devWrite(t, engF, flash, 0, 1)
	flashW := flash.Metrics().WriteLat.Max()

	engP := sim.NewEngine()
	cfg := pcm.DefaultConfig()
	cfg.CapacityBytes = 1 << 20
	pd, err := NewPCMSSD(engP, "pcm", 2, 512, cfg, PCIe4)
	if err != nil {
		t.Fatal(err)
	}
	devWrite(t, engP, pd, 0, 1)
	pcmW := pd.Metrics().WriteLat.Max()
	if pcmW >= flashW {
		t.Fatalf("PCM write (%d) should beat unbuffered flash write (%d)", pcmW, flashW)
	}
}
