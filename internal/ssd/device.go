// Package ssd assembles flash arrays, FTLs and a host interface into
// complete storage devices — the black boxes the paper insists we stop
// treating as black boxes. It provides the era presets the experiments
// compare (Consumer2008, Enterprise2012, a PCM SSD), per-device latency
// metrics, and the extended command set of §3 (atomic writes, nameless
// writes, trim) alongside the classic block command set.
package ssd

import (
	"errors"
	"fmt"

	"repro/internal/ftl"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Device-level errors.
var (
	// ErrAtomicUnsupported reports atomic writes on a device without a
	// safe (battery/capacitor-backed) write buffer.
	ErrAtomicUnsupported = errors.New("ssd: atomic writes need a safe write buffer")
	// ErrNamelessUnsupported reports nameless writes on an FTL that
	// cannot hand out physical addresses.
	ErrNamelessUnsupported = errors.New("ssd: nameless writes unsupported by this FTL")
	// ErrDeviceDead reports a command issued to a killed device (fault
	// injection): the controller never answers with data again.
	ErrDeviceDead = errors.New("ssd: device dead")
)

// Dev is the host-visible contract of every simulated device.
type Dev interface {
	Name() string
	PageSize() int
	Capacity() int64 // in pages
	Read(lpn int64, done func([]byte, error))
	Write(lpn int64, data []byte, done func(error))
	Trim(lpn int64) error
	Flush(done func())
	Metrics() *DeviceMetrics
}

// DeviceMetrics aggregates host-visible performance counters.
type DeviceMetrics struct {
	ReadLat  metrics.Histogram
	WriteLat metrics.Histogram
	Reads    metrics.Counter
	Writes   metrics.Counter
}

// Reset clears all recorded metrics (between experiment phases).
func (m *DeviceMetrics) Reset() {
	m.ReadLat.Reset()
	m.WriteLat.Reset()
	m.Reads = metrics.Counter{}
	m.Writes = metrics.Counter{}
}

// Interface models the host link (SATA/PCIe): bandwidth plus a fixed
// controller command overhead.
type Interface struct {
	MBPerSec    int
	CmdOverhead sim.Time
}

// Era-accurate host interfaces.
var (
	SATA2 = Interface{MBPerSec: 300, CmdOverhead: 20 * sim.Microsecond}
	SATA3 = Interface{MBPerSec: 600, CmdOverhead: 10 * sim.Microsecond}
	PCIe4 = Interface{MBPerSec: 1600, CmdOverhead: 3 * sim.Microsecond}
)

// Device is a flash SSD: an FTL behind a host interface.
type Device struct {
	eng  *sim.Engine
	name string
	f    ftl.FTL
	arr  *ftl.Array

	link        *sim.Server
	linkBytesNs int64 // bytes per second
	cmdOverhead sim.Time

	// dead marks a killed device (Kill): volatile state is gone and
	// every command fails with ErrDeviceDead after its command cycle.
	dead bool
	// stallUntil freezes the controller (Stall): commands arriving
	// before it queue behind the stall instead of starting.
	stallUntil sim.Time
	// onDeath callbacks fire once, inside the Kill event — the
	// device-health signal hosts subscribe to.
	onDeath []func()

	m DeviceMetrics
}

var _ Dev = (*Device)(nil)

// NewDevice wraps an FTL as a host-visible device.
func NewDevice(eng *sim.Engine, name string, f ftl.FTL, arr *ftl.Array, link Interface) (*Device, error) {
	if link.MBPerSec <= 0 {
		return nil, fmt.Errorf("ssd: link bandwidth %d must be positive", link.MBPerSec)
	}
	return &Device{
		eng:         eng,
		name:        name,
		f:           f,
		arr:         arr,
		link:        sim.NewServer(eng, name+"/link"),
		linkBytesNs: int64(link.MBPerSec) * 1_000_000,
		cmdOverhead: link.CmdOverhead,
	}, nil
}

// Name implements Dev.
func (d *Device) Name() string { return d.name }

// PageSize implements Dev.
func (d *Device) PageSize() int { return d.f.PageSize() }

// Capacity implements Dev.
func (d *Device) Capacity() int64 { return d.f.Capacity() }

// Metrics implements Dev.
func (d *Device) Metrics() *DeviceMetrics { return &d.m }

// FTL exposes the translation layer (for experiment instrumentation).
func (d *Device) FTL() ftl.FTL { return d.f }

// Array exposes the flash fabric (for tracing and utilization).
func (d *Device) Array() *ftl.Array { return d.arr }

// Link exposes the host-link server (for utilization attribution).
func (d *Device) Link() *sim.Server { return d.link }

// linkTime is the host-link occupancy of an n-byte transfer.
func (d *Device) linkTime(n int) sim.Time {
	if n <= 0 {
		return 0
	}
	return sim.Time(int64(n) * int64(sim.Second) / d.linkBytesNs)
}

// gate defers a command past any active controller stall; a responsive
// device dispatches immediately. Death is checked at dispatch (inside
// the link occupancy), not here: a device that dies while a command is
// queued behind the stall still fails that command.
func (d *Device) gate(fn func()) {
	if d.stallUntil > d.eng.Now() {
		d.eng.Schedule(d.stallUntil, fn)
		return
	}
	fn()
}

// Read implements Dev: command overhead, FTL read, then the data crosses
// the host link.
func (d *Device) Read(lpn int64, done func([]byte, error)) {
	start := d.eng.Now()
	d.gate(func() { d.read(start, lpn, done) })
}

func (d *Device) read(start sim.Time, lpn int64, done func([]byte, error)) {
	d.link.Use(d.cmdOverhead, "cmd", func(_, _ sim.Time) {
		if d.dead {
			done(nil, ErrDeviceDead)
			return
		}
		d.f.ReadLPN(lpn, func(data []byte, err error) {
			if err != nil {
				done(nil, err)
				return
			}
			d.link.Use(d.linkTime(d.PageSize()), "read-xfer", func(_, end sim.Time) {
				d.m.ReadLat.Record(int64(end - start))
				d.m.Reads.Add(d.PageSize())
				done(data, nil)
			})
		})
	})
}

// Write implements Dev: the data crosses the host link, then the FTL
// stores it (which, with a write-back buffer, acks quickly).
func (d *Device) Write(lpn int64, data []byte, done func(error)) {
	start := d.eng.Now()
	d.gate(func() {
		d.link.Use(d.cmdOverhead+d.linkTime(d.PageSize()), "write-xfer", func(_, _ sim.Time) {
			if d.dead {
				done(ErrDeviceDead)
				return
			}
			d.f.WriteLPN(lpn, data, func(err error) {
				if err != nil {
					done(err)
					return
				}
				d.m.WriteLat.Record(int64(d.eng.Now() - start))
				d.m.Writes.Add(d.PageSize())
				done(nil)
			})
		})
	})
}

// Trim implements Dev (the ATA TRIM command the paper highlights as the
// first crack in the block interface).
func (d *Device) Trim(lpn int64) error {
	if d.dead {
		return ErrDeviceDead
	}
	return d.f.Trim(lpn)
}

// Flush implements Dev. On a dead device the completion still fires
// (there is nothing left to make durable and callers must not hang);
// the loss is reported by the writes themselves.
func (d *Device) Flush(done func()) {
	d.gate(func() {
		d.link.Use(d.cmdOverhead, "flush-cmd", func(_, _ sim.Time) {
			if d.dead {
				done()
				return
			}
			d.f.Flush(done)
		})
	})
}

// pageFTL returns the underlying PageFTL if this device has one.
func (d *Device) pageFTL() *ftl.PageFTL {
	switch f := d.f.(type) {
	case *ftl.PageFTL:
		return f
	case *ftl.DFTL:
		return f.Inner()
	default:
		return nil
	}
}

// WriteNameless is the §3 extended command: the device places the page
// and returns its physical address.
func (d *Device) WriteNameless(data []byte, done func(ftl.PPA, error)) {
	pf := d.pageFTL()
	if pf == nil {
		done(ftl.InvalidPPA, ErrNamelessUnsupported)
		return
	}
	d.gate(func() {
		d.link.Use(d.cmdOverhead+d.linkTime(d.PageSize()), "nameless-xfer", func(_, _ sim.Time) {
			if d.dead {
				done(ftl.InvalidPPA, ErrDeviceDead)
				return
			}
			pf.WriteNameless(data, done)
		})
	})
}

// ReadPhys reads by physical address (the host tracked it from a
// nameless write).
func (d *Device) ReadPhys(ppa ftl.PPA, done func([]byte, error)) {
	pf := d.pageFTL()
	if pf == nil {
		done(nil, ErrNamelessUnsupported)
		return
	}
	d.link.Use(d.cmdOverhead, "cmd", func(_, _ sim.Time) {
		if d.dead {
			done(nil, ErrDeviceDead)
			return
		}
		pf.ReadPhys(ppa, func(data []byte, err error) {
			if err != nil {
				done(nil, err)
				return
			}
			d.link.Use(d.linkTime(d.PageSize()), "read-xfer", func(_, _ sim.Time) {
				done(data, nil)
			})
		})
	})
}

// TrimPhys trims by physical address.
func (d *Device) TrimPhys(ppa ftl.PPA) error {
	pf := d.pageFTL()
	if pf == nil {
		return ErrNamelessUnsupported
	}
	return pf.TrimPhys(ppa)
}

// SetRelocationNotifier forwards GC relocation callbacks to the host —
// the device-to-host half of "communicating peers".
func (d *Device) SetRelocationNotifier(fn func(old, new ftl.PPA)) error {
	pf := d.pageFTL()
	if pf == nil {
		return ErrNamelessUnsupported
	}
	pf.SetRelocationNotifier(fn)
	return nil
}

// SetGCNotifier forwards device GC-activity notifications to the host:
// fn receives the number of chips currently garbage-collecting (or
// wear-leveling) every time that number changes. Host-side schedulers
// use it to keep latency-sensitive traffic out of GC's way — device
// state the block interface never exposed.
func (d *Device) SetGCNotifier(fn func(activeChips int)) error {
	pf := d.pageFTL()
	if pf == nil {
		return ErrNamelessUnsupported
	}
	pf.SetGCNotifier(fn)
	return nil
}

// GCControllable reports whether this device's GC can be shaped by the
// host: true only for page-mapped FTLs (directly or behind DFTL).
// Block- and hybrid-mapped devices answer every DeferGC with a refusal,
// so hosts should not bother wiring them (blockdev.Stack.GCControl
// probes this).
func (d *Device) GCControllable() bool { return d.pageFTL() != nil }

// DeferGC is the host→device half of the peer interface: it asks the
// device to park background garbage collection until the virtual-time
// deadline, and reports whether the device honored the request. The
// deferral is bounded by the device's own free-pool floor (it refuses
// when urgent, and a chip that reaches the floor collects anyway), so
// the host can be greedy without being dangerous. Devices without a
// page-mapped FTL have no controllable GC and report false. Deferral
// is a control-plane message: it costs no link time.
func (d *Device) DeferGC(deadline sim.Time) bool {
	pf := d.pageFTL()
	if pf == nil {
		return false
	}
	return pf.DeferGC(deadline)
}

// ResumeGC releases an active GC deferral early (the burst the host was
// protecting has drained). A no-op on devices without controllable GC.
func (d *Device) ResumeGC() {
	if pf := d.pageFTL(); pf != nil {
		pf.ResumeGC()
	}
}

// GCUrgency reports the device's reclamation pressure (relaxed,
// elevated, urgent) — what a host scheduler polls to know how much
// deferral headroom remains. FTLs without controllable GC report
// relaxed.
func (d *Device) GCUrgency() ftl.GCUrgency {
	if pf := d.pageFTL(); pf != nil {
		return pf.GCUrgency()
	}
	return ftl.GCRelaxed
}

// SetEventSink wires a health-event sink for device-side GC
// coordination moments (floor hits, forced collection), labeled with
// this device's name. A no-op on devices without controllable GC.
func (d *Device) SetEventSink(sink obs.EventSink) {
	if pf := d.pageFTL(); pf != nil {
		pf.SetEventSink(sink, d.name)
	}
}

// GCCoord returns the device-side GC-coordination ledger.
func (d *Device) GCCoord() metrics.GCCoord {
	if pf := d.pageFTL(); pf != nil {
		return pf.GCCoord()
	}
	return metrics.NewGCCoord()
}

// GCTouch probes the GC context of one logical page (which chip holds
// it, whether that chip is collecting, whether a defer lease is
// active) for trace-span annotation. Devices without a page-mapped FTL
// report a zero probe with Chip -1.
func (d *Device) GCTouch(lpn int64) ftl.GCTouch {
	if pf := d.pageFTL(); pf != nil {
		return pf.GCTouch(lpn)
	}
	return ftl.GCTouch{Chip: -1}
}

// AtomicWrite stores a group of pages all-or-nothing (Ouyang et al.'s
// "beyond block I/O" primitive, cited in §3). The group lands in the
// safe write buffer in one step, so a crash either preserves the whole
// group (battery) or the ack was never sent. It requires a safe-buffered
// page FTL, like the capacitor-backed devices that shipped the feature.
func (d *Device) AtomicWrite(lpns []int64, pages [][]byte, done func(error)) {
	pf := d.pageFTL()
	if pf == nil || !pf.BufferSafe() {
		done(ErrAtomicUnsupported)
		return
	}
	if len(lpns) != len(pages) {
		done(fmt.Errorf("ssd: %d lpns but %d pages", len(lpns), len(pages)))
		return
	}
	if len(lpns) == 0 {
		d.eng.After(d.cmdOverhead, func() { done(nil) })
		return
	}
	start := d.eng.Now()
	total := d.cmdOverhead + d.linkTime(d.PageSize()*len(lpns))
	d.link.Use(total, "atomic-xfer", func(_, _ sim.Time) {
		if d.dead {
			done(ErrDeviceDead)
			return
		}
		remaining := len(lpns)
		var firstErr error
		for i := range lpns {
			d.f.WriteLPN(lpns[i], pages[i], func(err error) {
				if err != nil && firstErr == nil {
					firstErr = err
				}
				remaining--
				if remaining == 0 {
					if firstErr == nil {
						d.m.WriteLat.Record(int64(d.eng.Now() - start))
						d.m.Writes.Add(d.PageSize() * len(lpns))
					}
					done(firstErr)
				}
			})
		}
	})
}

// AgeTiming applies mid-life service-time drift to the device's flash:
// every chip's read/program/erase latencies become the given multiples
// of their datasheet values (a factor <= 0 restores that operation's
// datasheet timing; calls replace, not compound). The block interface
// would hide this drift behind the same LBA contract forever; the
// adaptive control plane exists to notice it from the outside, so
// experiments age a device mid-run and watch the host's calibrated
// costs follow.
func (d *Device) AgeTiming(read, program, erase float64) {
	if d.arr != nil {
		d.arr.SetTimingScale(read, program, erase)
	}
}

// Crash models sudden power loss: volatile buffer contents vanish. It
// returns the LPNs whose acknowledged writes were silently lost — the
// durability trap behind "writes complete as soon as they hit the
// cache". Devices with safe buffers lose nothing.
func (d *Device) Crash() []int64 {
	if pf := d.pageFTL(); pf != nil {
		return pf.DropVolatileBuffer()
	}
	return nil
}

// Kill is whole-device death (fault injection): the volatile buffer is
// gone for good, every command from now on fails with ErrDeviceDead
// after its command cycle, and the registered death callbacks fire —
// the device-health signal a serving fabric degrades and repairs on.
// Unlike Crash there is no reopen: a killed device never serves again.
func (d *Device) Kill() {
	if d.dead {
		return
	}
	d.dead = true
	if pf := d.pageFTL(); pf != nil {
		pf.DropVolatileBuffer()
	}
	fns := d.onDeath
	d.onDeath = nil
	for _, fn := range fns {
		fn()
	}
}

// Dead reports whether the device has been killed.
func (d *Device) Dead() bool { return d.dead }

// OnDeath registers a callback to fire inside the Kill event. A dead
// device invokes it immediately.
func (d *Device) OnDeath(fn func()) {
	if d.dead {
		fn()
		return
	}
	d.onDeath = append(d.onDeath, fn)
}

// Stall freezes the controller for dur (firmware hang, fault
// injection): commands arriving inside the window queue behind it.
// Overlapping stalls extend, never shorten.
func (d *Device) Stall(dur sim.Time) {
	if until := d.eng.Now() + dur; until > d.stallUntil {
		d.stallUntil = until
	}
}

// Chips reports the device's flash chip count (0 without an array —
// chip-level faults need flash to aim at).
func (d *Device) Chips() int {
	if d.arr == nil {
		return 0
	}
	return d.arr.Chips()
}

// KillChip kills one flash die: its programs and erases fail, its
// reads come back uncorrectable, and the FTL's own error handling
// (block retirement, relocation) deals with the fallout.
func (d *Device) KillChip(chip int) {
	if d.arr != nil && chip >= 0 && chip < d.arr.Chips() {
		d.arr.Chip(chip).Fail()
	}
}

// StallChip freezes one flash die for dur: its queued operations start
// only after the stall passes.
func (d *Device) StallChip(chip int, dur sim.Time) {
	if d.arr != nil && chip >= 0 && chip < d.arr.Chips() {
		d.arr.Chip(chip).Stall(d.eng.Now() + dur)
	}
}

// SlowChip scales one flash die's datasheet latencies (AgeTiming for a
// single chip): factors replace, a factor <= 0 restores.
func (d *Device) SlowChip(chip int, read, program, erase float64) {
	if d.arr != nil && chip >= 0 && chip < d.arr.Chips() {
		d.arr.Chip(chip).SetTimingScale(read, program, erase)
	}
}
