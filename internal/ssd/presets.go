package ssd

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/ecc"
	"repro/internal/ftl"
	"repro/internal/nand"
	"repro/internal/pcm"
	"repro/internal/sim"
)

// Preset identifies a ready-made device configuration.
type Preset int

// Device presets spanning the generations the paper contrasts.
const (
	// Consumer2008: hybrid log-block FTL on legacy SLC behind one slow
	// channel pair — the device generation for which "avoid random
	// writes" was true.
	Consumer2008 Preset = iota
	// Enterprise2012: page-mapped FTL, battery-backed write buffer, four
	// ONFI-2 channels of MLC — the generation that falsified Myth 2.
	Enterprise2012
	// Enterprise2012Unbuffered: the same device without its write
	// buffer, to isolate the buffer's contribution.
	Enterprise2012Unbuffered
	// DFTL2012: Enterprise2012 with a demand-paged mapping cache instead
	// of a full in-RAM page map.
	DFTL2012
	// PCM2012: a pure PCM SSD (Onyx-style) behind the same block
	// interface.
	PCM2012
)

// String names the preset.
func (p Preset) String() string {
	switch p {
	case Consumer2008:
		return "Consumer2008"
	case Enterprise2012:
		return "Enterprise2012"
	case Enterprise2012Unbuffered:
		return "Enterprise2012Unbuffered"
	case DFTL2012:
		return "DFTL2012"
	case PCM2012:
		return "PCM2012"
	default:
		return fmt.Sprintf("Preset(%d)", int(p))
	}
}

// Options scales a preset down for fast experiments.
type Options struct {
	// Channels and ChipsPerChannel override the fabric size (0 keeps
	// the preset default).
	Channels, ChipsPerChannel int
	// BlocksPerPlane overrides chip capacity (0 keeps default). Smaller
	// devices reach GC steady state faster.
	BlocksPerPlane int
	// PagesPerBlock overrides block size (0 keeps default).
	PagesPerBlock int
	// BufferPages overrides the write-buffer size (-1 disables, 0 keeps
	// default).
	BufferPages int
	// BufferVolatile drops the write buffer's battery backing: buffered
	// acks vanish on a crash instead of surviving it. Fault-injection
	// experiments use it to expose the volatile-ack durability trap.
	BufferVolatile bool
	// Placement overrides the write placement policy.
	Placement ftl.Placement
	// GCPolicy overrides the GC victim policy.
	GCPolicy ftl.GCPolicy
	// OverProvision overrides the spare fraction (0 keeps default).
	OverProvision float64
	// GCLowWater and GCHighWater override the FTL's GC watermarks in
	// free blocks per chip (0 keeps defaults). Raising the low watermark
	// widens the discretionary headroom host→device GC deferral may
	// spend before hitting the floor.
	GCLowWater, GCHighWater int
	// GCDeferFloor overrides the deferral hard floor in free blocks per
	// chip (0 keeps the default: the GC reserve).
	GCDeferFloor int
	// Seed drives all randomness (0 -> deterministic content, seed 1).
	Seed uint64
}

// Build constructs the preset device on eng.
func Build(eng *sim.Engine, p Preset, opt Options) (Dev, error) {
	if opt.Seed == 0 {
		opt.Seed = 1
	}
	switch p {
	case Consumer2008:
		spec := nand.LegacySLC
		if opt.BlocksPerPlane > 0 {
			spec.Geometry.BlocksPerPlane = opt.BlocksPerPlane
		}
		if opt.PagesPerBlock > 0 {
			spec.Geometry.PagesPerBlock = opt.PagesPerBlock
		}
		spec.Reliability.FactoryBadBlockRate = 0
		cfg := ftl.ArrayConfig{
			Channels:        pick(opt.Channels, 1),
			ChipsPerChannel: pick(opt.ChipsPerChannel, 4),
			Chip:            spec,
			Channel:         bus.ONFI1,
		}
		arr, err := ftl.NewArray(eng, cfg, 0)
		if err != nil {
			return nil, err
		}
		op := opt.OverProvision
		if op == 0 {
			op = 0.08
		}
		f, err := ftl.NewHybridFTL(arr, op, 8)
		if err != nil {
			return nil, err
		}
		return NewDevice(eng, p.String(), f, arr, SATA2)

	case Enterprise2012, Enterprise2012Unbuffered, DFTL2012:
		spec := nand.MLC
		if opt.BlocksPerPlane > 0 {
			spec.Geometry.BlocksPerPlane = opt.BlocksPerPlane
		}
		if opt.PagesPerBlock > 0 {
			spec.Geometry.PagesPerBlock = opt.PagesPerBlock
		}
		spec.Reliability.FactoryBadBlockRate = 0
		cfg := ftl.ArrayConfig{
			Channels:        pick(opt.Channels, 4),
			ChipsPerChannel: pick(opt.ChipsPerChannel, 4),
			Chip:            spec,
			Channel:         bus.ONFI2,
		}
		arr, err := ftl.NewArray(eng, cfg, 0)
		if err != nil {
			return nil, err
		}
		fcfg := ftl.DefaultConfig()
		fcfg.Seed = opt.Seed
		fcfg.Placement = opt.Placement
		fcfg.GCPolicy = opt.GCPolicy
		fcfg.ECC = ecc.BCH8Per512
		if opt.OverProvision != 0 {
			fcfg.OverProvision = opt.OverProvision
		}
		if opt.GCLowWater > 0 {
			fcfg.GCLowWater = opt.GCLowWater
		}
		if opt.GCHighWater > 0 {
			fcfg.GCHighWater = opt.GCHighWater
		}
		if opt.GCDeferFloor > 0 {
			fcfg.GCDeferFloor = opt.GCDeferFloor
		}
		switch {
		case p == Enterprise2012Unbuffered || opt.BufferPages < 0:
			fcfg.BufferPages = 0
		case opt.BufferPages > 0:
			fcfg.BufferPages = opt.BufferPages
		}
		if opt.BufferVolatile {
			fcfg.BufferSafe = false
		}
		pf, err := ftl.NewPageFTL(arr, fcfg)
		if err != nil {
			return nil, err
		}
		var f ftl.FTL = pf
		if p == DFTL2012 {
			// CMT sized to cover ~1/16 of the logical space.
			entriesPerPage := int64(arr.PageSize() / 8)
			cmt := int(pf.Capacity() / entriesPerPage / 16)
			if cmt < 2 {
				cmt = 2
			}
			f = ftl.NewDFTL(pf, cmt)
		}
		return NewDevice(eng, p.String(), f, arr, SATA3)

	case PCM2012:
		cfg := pcm.DefaultConfig()
		cfg.CapacityBytes = 1 << 28 // 256 MiB per bank
		banks := pick(opt.Channels, 4)
		return NewPCMSSD(eng, p.String(), banks, 4096, cfg, PCIe4)

	default:
		return nil, fmt.Errorf("ssd: unknown preset %d", int(p))
	}
}

func pick(v, def int) int {
	if v > 0 {
		return v
	}
	return def
}
