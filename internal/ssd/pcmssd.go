package ssd

import (
	"fmt"

	"repro/internal/pcm"
	"repro/internal/sim"
)

// PCMSSD is a PCM-based SSD behind a block interface (§2.4: "even if we
// contemplate pure PCM-based SSDs [Onyx], the issues of parallelism,
// wear leveling and error management will likely introduce significant
// complexity"). There is no FTL — PCM updates in place — but the device
// still has banks whose ports serialize, a controller, and a host link,
// so it is *not* the same thing as a PCM chip (Myth 1 again).
type PCMSSD struct {
	eng  *sim.Engine
	name string

	banks    []*pcm.Device
	pageSize int
	capacity int64 // pages

	link        *sim.Server
	linkBytesNs int64
	cmdOverhead sim.Time

	m DeviceMetrics
}

var _ Dev = (*PCMSSD)(nil)

// NewPCMSSD builds a PCM SSD with nBanks banks of cfg each.
func NewPCMSSD(eng *sim.Engine, name string, nBanks, pageSize int, cfg pcm.Config, link Interface) (*PCMSSD, error) {
	if nBanks <= 0 || pageSize <= 0 {
		return nil, fmt.Errorf("ssd: pcm geometry %d banks x %d page", nBanks, pageSize)
	}
	if link.MBPerSec <= 0 {
		return nil, fmt.Errorf("ssd: link bandwidth must be positive")
	}
	d := &PCMSSD{
		eng:         eng,
		name:        name,
		pageSize:    pageSize,
		link:        sim.NewServer(eng, name+"/link"),
		linkBytesNs: int64(link.MBPerSec) * 1_000_000,
		cmdOverhead: link.CmdOverhead,
	}
	for i := 0; i < nBanks; i++ {
		b, err := pcm.New(eng, fmt.Sprintf("%s/bank%d", name, i), cfg)
		if err != nil {
			return nil, err
		}
		d.banks = append(d.banks, b)
	}
	d.capacity = int64(nBanks) * (cfg.CapacityBytes / int64(pageSize))
	return d, nil
}

// Name implements Dev.
func (d *PCMSSD) Name() string { return d.name }

// PageSize implements Dev.
func (d *PCMSSD) PageSize() int { return d.pageSize }

// Capacity implements Dev.
func (d *PCMSSD) Capacity() int64 { return d.capacity }

// Metrics implements Dev.
func (d *PCMSSD) Metrics() *DeviceMetrics { return &d.m }

// Bank returns bank i (for utilization probes).
func (d *PCMSSD) Bank(i int) *pcm.Device { return d.banks[i] }

func (d *PCMSSD) locate(lpn int64) (*pcm.Device, int64, error) {
	if lpn < 0 || lpn >= d.capacity {
		return nil, 0, fmt.Errorf("ssd: lpn %d out of range (%d)", lpn, d.capacity)
	}
	bank := int(lpn % int64(len(d.banks)))
	slot := lpn / int64(len(d.banks))
	return d.banks[bank], slot * int64(d.pageSize), nil
}

func (d *PCMSSD) linkTime(n int) sim.Time {
	if n <= 0 {
		return 0
	}
	return sim.Time(int64(n) * int64(sim.Second) / d.linkBytesNs)
}

// Read implements Dev.
func (d *PCMSSD) Read(lpn int64, done func([]byte, error)) {
	bank, off, err := d.locate(lpn)
	if err != nil {
		done(nil, err)
		return
	}
	start := d.eng.Now()
	d.link.Use(d.cmdOverhead, "cmd", func(_, _ sim.Time) {
		rerr := bank.Read(off, d.pageSize, func(data []byte, err error) {
			if err != nil {
				done(nil, err)
				return
			}
			d.link.Use(d.linkTime(d.pageSize), "read-xfer", func(_, end sim.Time) {
				d.m.ReadLat.Record(int64(end - start))
				d.m.Reads.Add(d.pageSize)
				done(data, nil)
			})
		})
		if rerr != nil {
			done(nil, rerr)
		}
	})
}

// Write implements Dev: in-place, no erase, no GC — but still serialized
// on the bank port and host link.
func (d *PCMSSD) Write(lpn int64, data []byte, done func(error)) {
	bank, off, err := d.locate(lpn)
	if err != nil {
		done(err)
		return
	}
	if data == nil {
		data = make([]byte, d.pageSize)
	}
	if len(data) != d.pageSize {
		done(fmt.Errorf("ssd: payload %d bytes, page is %d", len(data), d.pageSize))
		return
	}
	start := d.eng.Now()
	d.link.Use(d.cmdOverhead+d.linkTime(d.pageSize), "write-xfer", func(_, _ sim.Time) {
		werr := bank.Write(off, data, func(err error) {
			if err != nil {
				done(err)
				return
			}
			d.m.WriteLat.Record(int64(d.eng.Now() - start))
			d.m.Writes.Add(d.pageSize)
			done(nil)
		})
		if werr != nil {
			done(werr)
		}
	})
}

// Trim implements Dev: PCM needs no trim; accepted and ignored.
func (d *PCMSSD) Trim(lpn int64) error {
	_, _, err := d.locate(lpn)
	return err
}

// Flush implements Dev: PCM writes are durable on completion.
func (d *PCMSSD) Flush(done func()) {
	d.eng.After(d.cmdOverhead, done)
}
