package experiments

import (
	"fmt"
	"strings"

	"repro/internal/blockdev"
	"repro/internal/kvstore"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/sim"
)

// E24ResourceProfile answers the question E20 and E21 could not:
// where does the *machine's* time go. The E23 saturation mix is
// replayed on the ring path with the resource profiler on — every NAND
// chip, bus channel, host link, stack core and submission lock tapped,
// busy time attributed per cause (read/program/erase/GC-copy,
// submit/complete, lock hold) — at 1/4/16 shards on all three stacks.
// Three invariants gate the run: attribution closes exactly (per-
// resource cause sums equal the servers' own busy counters — 0
// unattributed, 0 double-counted, 0 unexplained "other"), profiling
// charges zero virtual time (served counts identical profiled vs
// plain), and the TopResources report names a per-configuration
// bottleneck that shifts as shards scale — the first measured answer
// to which resource caps each stack at each scale.
func E24ResourceProfile(scale Scale) (*Result, error) {
	res := &Result{
		ID:    "E24",
		Title: "resource profiling: per-chip/channel/CPU busy-time attribution + bottleneck identification",
		Claim: "owning every layer makes saturation explainable: each resource's busy time decomposes exactly into named causes at zero virtual-time cost, so the profile names which chip, channel, link, core or lock caps every configuration — and shows the bottleneck migrating as the fabric scales",
	}
	t := metrics.NewTable("Saturation sweep under the profiler (ring path)",
		"stack", "shards",
		"top resource", "util", "top cause", "share",
		"chip max", "cpu max",
		"ls sched wait (ms)", "overhead %")

	modes := []blockdev.Mode{blockdev.SingleQueue, blockdev.MultiQueue, blockdev.Direct}
	shardCounts := []int{1, 4, 16}

	res.Headline = map[string]float64{}
	closed := 0
	var unattrib, doubled, other int64
	var worstOverheadPct float64
	shifts := 0
	var findings []string

	window := sim.Time(scale.pick(20, 60)) * sim.Millisecond
	for _, mode := range modes {
		topAt := map[int]obs.TopResource{}
		queueBoundAt := map[int]bool{}
		for _, n := range shardCounts {
			sample := mode == blockdev.MultiQueue && n == 16
			prof, err := runProfileConfig(scale, mode, n, true, sample)
			if err != nil {
				return nil, err
			}
			plain, err := runProfileConfig(scale, mode, n, false, false)
			if err != nil {
				return nil, err
			}
			// Zero virtual-time overhead: taps and ledgers are pure
			// host-side bookkeeping, so a profiled fabric must serve
			// exactly what a plain one does.
			overhead := 0.0
			if plain.served > 0 {
				overhead = 100 * float64(plain.served-prof.served) / float64(plain.served)
				if overhead < 0 {
					overhead = -overhead
				}
			}
			if overhead > worstOverheadPct {
				worstOverheadPct = overhead
			}

			snap := prof.profile
			unattrib += snap.UnattributedNs()
			doubled += snap.DoubleCountedNs()
			other += snap.OtherNs()
			if snap.UnattributedNs() == 0 && snap.DoubleCountedNs() == 0 && snap.OtherNs() == 0 {
				closed++
			}

			top, ok := snap.Top()
			if !ok {
				return nil, fmt.Errorf("e24: no attributed busy time (%s, %d shards)", mode, n)
			}
			topAt[n] = top
			// A configuration is queue-bound when latency-sensitive
			// requests collectively spend more than one full measurement
			// window waiting for dispatch: the constraint clients feel is
			// the scheduler queue in front of the saturated device, not
			// the device service time itself.
			queueBoundAt[n] = prof.lsSchedWaitNs > int64(window)
			t.AddRow(mode.String(), n,
				top.Resource.Name, fmt.Sprintf("%.0f%%", 100*top.Resource.Utilization),
				top.TopCause, fmt.Sprintf("%.0f%%", 100*top.CauseShare),
				fmt.Sprintf("%.0f%%", 100*kindUtil(snap, obs.ResChip)),
				fmt.Sprintf("%.0f%%", 100*kindUtil(snap, obs.ResCPU)),
				fmt.Sprintf("%.1f", float64(prof.lsSchedWaitNs)/1e6),
				fmt.Sprintf("%.2f", overhead))

			if sample && prof.series != nil {
				res.Series = prof.series
			}
			if sample && prof.obs != nil {
				res.Obs = prof.obs
			}
			if sample {
				p := snap
				res.Profile = &p
			}
			if n == 16 {
				res.Headline["top_util_"+mode.String()+"_16"] = top.Resource.Utilization
			}
		}
		// The bottleneck shift: what caps 1 shard must not be what caps
		// 16 — either the hottest resource itself moves, or the binding
		// regime does (device-bound at 1 shard, dispatch-queue-bound once
		// enough shards pile work in front of the saturated device).
		t1, t16 := topAt[1], topAt[16]
		if t1.Resource.Name != t16.Resource.Name || queueBoundAt[1] != queueBoundAt[16] {
			shifts++
		}
		findings = append(findings, fmt.Sprintf("%s %s@1→%s@16", mode,
			sideName(t1, queueBoundAt[1]), sideName(t16, queueBoundAt[16])))
	}

	// Acceptance gates, not table columns: the whole sweep must close
	// exactly and every stack's bottleneck must move with scale.
	if unattrib != 0 || doubled != 0 || other != 0 {
		return nil, fmt.Errorf("e24: attribution did not close: %d ns unattributed, %d ns double-counted, %d ns unexplained",
			unattrib, doubled, other)
	}
	if shifts != len(modes) {
		return nil, fmt.Errorf("e24: bottleneck did not shift between 1 and 16 shards on %d of %d stacks",
			len(modes)-shifts, len(modes))
	}
	res.Tables = append(res.Tables, t)
	res.Headline["closed_configs_of_9"] = float64(closed)
	res.Headline["unattributed_ns"] = float64(unattrib)
	res.Headline["double_counted_ns"] = float64(doubled)
	res.Headline["other_ns"] = float64(other)
	res.Headline["overhead_pct_max"] = worstOverheadPct
	res.Headline["bottleneck_shifts_of_3"] = float64(shifts)
	res.Finding = fmt.Sprintf(
		"attribution closes exactly on %d/9 configurations (0 ns unattributed, double-counted or unexplained) at %.2f%% virtual-time overhead, and the bottleneck shifts with scale on 3/3 stacks: %s",
		closed, worstOverheadPct, strings.Join(findings, "; "))
	return res, nil
}

// sideName renders a top resource for the finding line: its name, which
// side of the host-link boundary it sits on, its utilization, and
// whether the scheduler queue (rather than the resource's service time)
// is what requests actually wait on.
func sideName(t obs.TopResource, queueBound bool) string {
	side := "host"
	if t.DeviceBound {
		side = "device"
	}
	if queueBound {
		side += ",queue-bound"
	}
	return fmt.Sprintf("%s(%s,%.0f%%)", t.Resource.Name, side, 100*t.Resource.Utilization)
}

// kindUtil reads the max utilization of one resource kind out of a
// snapshot (the per-kind saturation columns).
func kindUtil(pr obs.Profile, kind obs.ResourceKind) float64 {
	for _, top := range pr.TopResources() {
		if top.Resource.Kind == kind {
			return top.Resource.Utilization
		}
	}
	return 0
}

// profileRun is one profiled (or plain) saturation run's outcome.
type profileRun struct {
	served        int64
	profile       obs.Profile
	lsSchedWaitNs int64
	series        *obs.SeriesDump
	obs           map[string]any
}

// runProfileConfig builds one ring-path fabric (E23's saturation
// configuration), profiled or plain, saturates it for the window, and
// snapshots the attribution.
func runProfileConfig(scale Scale, mode blockdev.Mode, shards int, profile, sample bool) (*profileRun, error) {
	eng := sim.NewEngine()
	cfg := serve.Config{
		Shards:        shards,
		Mode:          mode,
		DeviceOptions: smallOptions(scale),
		Scheduled:     true,
		WriteCost:     16,
		QueueDepth:    4,
		LogPages:      12,
		Store:         kvstore.Config{CacheFrames: 4, CheckpointBytes: 4 << 10},
		Admission: serve.AdmissionConfig{
			Enabled:            true,
			QueueLimit:         12,
			LatencyDeadline:    2 * sim.Millisecond,
			ThroughputDeadline: 20 * sim.Millisecond,
			Rate:               6000,
			Burst:              32,
		},
		Trace:   true,
		Batch:   serve.BatchConfig{Enabled: true},
		Profile: profile,
	}
	if sample {
		cfg.Sample = obs.SampleConfig{Enabled: true}
	}
	run := &profileRun{}
	lat := metrics.NewTenantLatencies()
	var fab *serve.Fabric
	var ferr error
	eng.Go(func(p *sim.Proc) {
		f, err := serve.New(p, eng, cfg)
		if err != nil {
			ferr = err
			return
		}
		fab = f
		fe := serve.NewFrontend(f, int64(shards*scale.pick(320, 480)), 48)
		if err := fe.Preload(p); err != nil {
			ferr = err
			return
		}
		f.ResetStats()
		window := sim.Time(scale.pick(20, 60)) * sim.Millisecond
		horizon := p.Now() + window
		if err := fe.Drive(saturationSpecs(shards), horizon, lat); err != nil {
			ferr = err
			return
		}
		f.StopAt(horizon, false)
	})
	eng.Run()
	if ferr != nil {
		return nil, ferr
	}
	run.served = fab.Stats().Totals().Served
	if profile {
		run.profile = fab.Profiler().Snapshot()
		for name, classes := range run.profile.Waits {
			if strings.HasSuffix(name, ".sched") {
				run.lsSchedWaitNs += classes["latency"]
			}
		}
	}
	if sample {
		dump := fab.Sampler().Dump()
		var keep []obs.SeriesData
		for _, s := range dump.Series {
			if strings.HasPrefix(s.Name, "fabric.util.") || strings.HasPrefix(s.Name, "device.chip.") {
				keep = append(keep, s)
			}
		}
		dump.Series = keep
		run.series = &dump
		run.obs = fab.Registry().Export()
	}
	return run, nil
}
